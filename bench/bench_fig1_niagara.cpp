/// F1 — Figure 1 of the paper: the Sun Niagara multiprocessor chip (8 simple
/// cores x 4 threads, private L1s, shared L2 over a crossbar).
///
/// The figure is an architecture diagram; our substitute is the parameterized
/// machine model. This bench prints the simulated chip's topology and
/// per-layer latency/bandwidth/energy parameters, then validates the
/// structural properties the figure encodes: 32 hardware threads, intra-core
/// communication strictly faster than inter-core at every layer, and L2/router
/// contention visible as soon as several cores share them.

#include "core/core.hpp"
#include "machine/simulator.hpp"
#include "report/table.hpp"

#include <iostream>

int main() {
  using namespace stamp;

  const MachineModel m = presets::niagara();
  report::print_section(std::cout, "F1: Figure 1 — Niagara multiprocessor chip");
  std::cout << "Simulated machine '" << m.name << "': " << m.topology << "\n\n";

  report::Table topo("Topology", {"level", "count", "notes"});
  topo.add_row({std::string("chips"), static_cast<long long>(m.topology.chips),
                std::string("shared-memory CMP")});
  topo.add_row({std::string("processors/chip"),
                static_cast<long long>(m.topology.processors_per_chip),
                std::string("simple in-order cores")});
  topo.add_row({std::string("threads/processor"),
                static_cast<long long>(m.topology.threads_per_processor),
                std::string("CMT hardware threads")});
  topo.add_row({std::string("total hardware threads"),
                static_cast<long long>(m.topology.total_threads()),
                std::string("the paper's '32 threads'")});
  topo.print(std::cout);

  report::Table params("Per-layer model parameters",
                       {"layer", "latency", "bandwidth g", "energy/op"});
  params.set_precision(2);
  params.add_row({std::string("intra shm (L1)"), m.params.ell_a, m.params.g_sh_a,
                  m.energy.w_d_r});
  params.add_row({std::string("inter shm (L2/crossbar)"), m.params.ell_e,
                  m.params.g_sh_e, m.energy.w_d_r});
  params.add_row({std::string("intra msg (core-local)"), m.params.L_a,
                  m.params.g_mp_a, m.energy.w_m_s});
  params.add_row({std::string("inter msg (router)"), m.params.L_e,
                  m.params.g_mp_e, m.energy.w_m_s});
  params.print(std::cout);

  // Structural validation: intra strictly cheaper at each layer.
  const bool ordering_ok = m.params.ell_a < m.params.ell_e &&
                           m.params.L_a < m.params.L_e &&
                           m.params.g_sh_a < m.params.g_sh_e &&
                           m.params.g_mp_a < m.params.g_mp_e;
  std::cout << "\nIntra < inter at every layer: " << (ordering_ok ? "yes" : "NO")
            << "\n\n";

  // Contention probe: k cores each issue 64 L2 reads; the shared L2 port
  // queues while private L1s do not.
  report::Table probe("Shared-L2 contention probe (64 inter-shm reads per core)",
                      {"active cores", "makespan via L2", "makespan via L1",
                       "L2 utilization"});
  probe.set_precision(2);
  for (int cores = 1; cores <= m.topology.processors_per_chip; cores *= 2) {
    const runtime::PlacementMap pm =
        runtime::PlacementMap::one_per_processor(m.topology, cores);
    std::vector<machine::ProcessTrace> l2_traces(
        static_cast<std::size_t>(cores),
        {machine::TraceOp{machine::TraceOp::Kind::ShmRead, 64, false, 0}});
    std::vector<machine::ProcessTrace> l1_traces(
        static_cast<std::size_t>(cores),
        {machine::TraceOp{machine::TraceOp::Kind::ShmRead, 64, true, 0}});
    const machine::SimResult l2 = machine::replay(l2_traces, pm, m);
    const machine::SimResult l1 = machine::replay(l1_traces, pm, m);
    probe.add_row({static_cast<long long>(cores), l2.makespan, l1.makespan,
                   l2.l2_utilization[0]});
  }
  probe.print(std::cout);

  std::cout <<
      "\nReading: L1 accesses scale perfectly with active cores (private\n"
      "ports); L2 makespan grows linearly with sharers (one port per chip,\n"
      "the crossbar of Figure 1). This is the structural content of the\n"
      "figure, reproduced as measurable behaviour.\n";
  return 0;
}
