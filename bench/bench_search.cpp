/// P3 — guided-search efficiency: branch-and-bound over the sweep grid
/// (search/search.hpp) versus exhaustive enumeration.
///
/// Where bench_sweep measures how fast the engine can visit *every* grid
/// point, this bench measures how few points the branch-and-bound search
/// needs to *prove* the optimum: the admissible per-subtree lower bound
/// (search/bound.hpp) prices whole axis-prefix subtrees without decoding
/// them, and anything that cannot beat the incumbent is pruned unvisited.
///
/// Two grid presets, mirroring bench_sweep:
///  - `--grid canonical`: the canonical 7 axes plus a `processes` bound axis
///    — 1152 points. Small; doubles as a smoke check.
///  - `--grid large` (default): `SweepConfig::large()` — 1,179,648 points.
///    This is the headline: the search visits a fraction of a percent of the
///    grid and still returns the bit-identical exhaustive winner.
///
/// The table reports wall time, tree nodes/s (expanded + pruned), the
/// fraction of subtree nodes pruned, and the fraction of grid points
/// actually priced. Gates:
///  - `--verify`: run the exhaustive search in-process (at the hardware
///    thread count) and fail unless the winning records are bit-identical.
///  - `--gate-frac X`: fail if the search priced more than fraction X of
///    the grid (the efficiency claim, default off).
///  - `--baseline FILE`: fail if tree nodes/sec regresses more than 20%
///    against the checked-in `BENCH_search.json` (grids must match).
///
/// Usage: bench_search [--grid canonical|large] [--out FILE] [--reps N]
///                     [--seed N] [--verify] [--gate-frac X]
///                     [--baseline FILE]

#include "core/hw.hpp"
#include "report/atomic_file.hpp"
#include "report/json.hpp"
#include "report/json_parse.hpp"
#include "report/table.hpp"
#include "search/search.hpp"
#include "sweep/pool.hpp"

#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>

namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best of `reps` runs: the search is deterministic, so the minimum is the
/// least-noisy estimate.
double best_seconds(int reps, const std::function<void()>& fn) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    const double s = seconds_of(fn);
    if (i == 0 || s < best) best = s;
  }
  return best;
}

/// The small bench grid: identical to bench_sweep's canonical preset.
stamp::sweep::SweepConfig canonical_bench_config() {
  stamp::sweep::SweepConfig cfg = stamp::sweep::SweepConfig::canonical();
  cfg.grid.axis(std::string(stamp::sweep::axes::kProcesses), {16, 64});
  cfg.workload = "uniform-comm-bench8";
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stamp;

  std::string grid_name = "large";
  std::string out_path = "BENCH_search.json";
  std::string baseline_path;
  int reps = 0;  // 0 = preset default (5 canonical, 3 large)
  std::uint64_t seed = 1;
  bool verify = false;
  double gate_frac = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "bench_search: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--grid") {
      grid_name = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--reps") {
      reps = std::stoi(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--gate-frac") {
      gate_frac = std::stod(next());
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bench_search [--grid canonical|large] [--out FILE] "
                   "[--reps N] [--seed N] [--verify] [--gate-frac X] "
                   "[--baseline FILE]\n";
      return 0;
    } else {
      std::cerr << "bench_search: unknown option '" << arg << "'\n";
      return 2;
    }
  }

  sweep::SweepConfig cfg;
  if (grid_name == "canonical") {
    cfg = canonical_bench_config();
    if (reps == 0) reps = 5;
  } else if (grid_name == "large") {
    cfg = sweep::SweepConfig::large();
    if (reps == 0) reps = 3;
  } else {
    std::cerr << "bench_search: unknown grid '" << grid_name
              << "' (canonical|large)\n";
    return 2;
  }

  report::print_section(std::cout, "P3: guided search vs exhaustive sweep");

  const std::size_t points = cfg.grid.size();
  const int hw = core::usable_hardware_threads();

  SearchRequest req;
  req.config = cfg;
  req.method = SearchMethod::BranchAndBound;
  req.seed = seed;
  req.threads = 1;  // BnB expansion is serial; leaves rarely clear the
                    // pool threshold, so one thread is the honest number.
  req.record_trace = false;

  SearchResult result;
  const double bnb_s =
      best_seconds(reps, [&] { result = search::run_search(req); });

  const std::uint64_t tree_nodes =
      result.stats.nodes_expanded + result.stats.nodes_pruned;
  const double nodes_per_sec = static_cast<double>(tree_nodes) / bnb_s;
  const double frac_pruned =
      tree_nodes > 0
          ? static_cast<double>(result.stats.nodes_pruned) / tree_nodes
          : 0.0;
  const double frac_evaluated =
      points > 0
          ? static_cast<double>(result.stats.points_evaluated) / points
          : 0.0;

  report::Table table(
      grid_name + " grid: " + std::to_string(points) + " points, best of " +
          std::to_string(reps) + ", " + std::to_string(hw) +
          " usable hw thread(s)",
      {"configuration", "time [ms]", "nodes/s", "pruned frac",
       "points priced", "priced frac"});
  table.set_precision(4);
  table.add_row({std::string("bnb"), bnb_s * 1e3, nodes_per_sec, frac_pruned,
                 static_cast<double>(result.stats.points_evaluated),
                 frac_evaluated});
  table.print(std::cout);

  std::cout << "\nReading: the bound prunes whole axis-prefix subtrees; the "
               "search proves\nthe optimum pricing the 'points priced' "
               "column, not the full grid.\n";
  if (result.found) {
    std::cout << "optimum: index " << result.best.index << ", "
              << to_string(cfg.objective) << " = "
              << metric_value(result.best.metrics, cfg.objective)
              << (result.best.feasible ? "" : " (infeasible)") << "\n";
  }

  // -- exhaustive cross-check -------------------------------------------------
  if (verify) {
    SearchRequest ex = req;
    ex.method = SearchMethod::Exhaustive;
    ex.threads = hw;
    sweep::Pool pool(hw);
    SearchResult oracle;
    const double ex_s =
        seconds_of([&] { oracle = search::run_search(ex, &pool); });
    std::cout << "verify: exhaustive(" << hw << " threads) " << ex_s * 1e3
              << " ms over " << oracle.stats.points_evaluated << " points\n";
    if (oracle.found != result.found || oracle.best != result.best) {
      std::cerr << "FAIL: bnb winner (index " << result.best.index
                << ") differs from exhaustive winner (index "
                << oracle.best.index << ")\n";
      return 1;
    }
    std::cout << "verify: bnb winner is bit-identical to the exhaustive "
                 "winner (index "
              << result.best.index << ")\n";
  }

  // -- machine-readable artifact ---------------------------------------------
  if (!out_path.empty()) {
    report::AtomicFileWriter writer(out_path);
    std::ostream& os = writer.stream();
    if (!writer.ok()) {
      std::cerr << "bench_search: cannot open '" << out_path << "'\n";
      return 2;
    }
    report::JsonWriter w(os);
    w.begin_object();
    w.kv("schema", "stamp-bench-search/v1");
    w.key("grid").begin_object();
    w.kv("name", grid_name);
    w.kv("axes", static_cast<long long>(cfg.grid.axes().size()));
    w.kv("points", static_cast<long long>(points));
    w.end_object();
    w.kv("reps", reps);
    w.kv("seed", static_cast<long long>(seed));
    w.kv("hardware_threads", hw);
    w.key("bnb").begin_object();
    w.kv("ms", bnb_s * 1e3);
    w.kv("nodes_per_sec", nodes_per_sec);
    w.kv("nodes_expanded", static_cast<long long>(result.stats.nodes_expanded));
    w.kv("nodes_pruned", static_cast<long long>(result.stats.nodes_pruned));
    w.kv("fraction_pruned", frac_pruned);
    w.kv("points_evaluated",
         static_cast<long long>(result.stats.points_evaluated));
    w.kv("fraction_evaluated", frac_evaluated);
    w.kv("best_index", result.found
                           ? static_cast<long long>(result.best.index)
                           : -1LL);
    w.end_object();
    w.end_object();
    os << "\n";
    try {
      writer.commit();
    } catch (const std::exception& e) {
      std::cerr << "bench_search: " << e.what() << "\n";
      return 2;
    }
    std::cout << "\nwrote " << out_path << "\n";
  }

  // -- efficiency gate --------------------------------------------------------
  if (gate_frac > 0) {
    std::cout << "gate-frac: priced " << frac_evaluated << " of the grid vs "
              << "allowed " << gate_frac << "\n";
    if (frac_evaluated > gate_frac) {
      std::cerr << "FAIL: search priced " << result.stats.points_evaluated
                << " of " << points << " points ("
                << frac_evaluated * 100.0 << "%), above the " << gate_frac * 100.0
                << "% gate\n";
      return 1;
    }
  }

  // -- regression gate against a checked-in baseline -------------------------
  if (!baseline_path.empty()) {
    std::ifstream is(baseline_path, std::ios::binary);
    if (!is) {
      std::cerr << "bench_search: cannot read baseline '" << baseline_path
                << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << is.rdbuf();
    double base_nps = 0;
    try {
      const report::JsonValue base = report::JsonValue::parse(text.str());
      const report::JsonValue* grid = base.find("grid");
      const report::JsonValue* name = grid ? grid->find("name") : nullptr;
      if (name != nullptr && name->as_string() != grid_name)
        throw std::runtime_error("baseline is for grid '" + name->as_string() +
                                 "', this run used '" + grid_name + "'");
      const report::JsonValue* bnb = base.find("bnb");
      const report::JsonValue* nps = bnb ? bnb->find("nodes_per_sec") : nullptr;
      if (!nps) throw std::runtime_error("missing bnb.nodes_per_sec");
      base_nps = nps->as_number();
    } catch (const std::exception& e) {
      std::cerr << "bench_search: bad baseline: " << e.what() << "\n";
      return 2;
    }
    const double ratio = nodes_per_sec / base_nps;
    std::cout << "gate: " << nodes_per_sec << " nodes/s vs baseline "
              << base_nps << " (" << ratio << "x)\n";
    if (ratio < 0.8) {
      std::cerr << "FAIL: tree nodes/sec regressed more than 20% against "
                << baseline_path << "\n";
      return 1;
    }
  }
  return 0;
}
