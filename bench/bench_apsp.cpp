/// E5 — Section 4's all-pairs-shortest-paths example:
/// [inter_proc, async_exec, async_comm] over a single-writer multi-reader
/// shared matrix.
///
/// Reproduces the example's claims:
///   * the asynchronous algorithm needs no synchronization and stays correct
///     (verified against Floyd–Warshall on every row)
///   * synch_comm vs async_comm: rounds to convergence and model cost
///   * the heterogeneity claim — "faster processors can ... help the slow
///     processors terminate after a smaller number of rounds": simulated on
///     the machine with per-core DVFS.

#include "algo/apsp.hpp"
#include "core/core.hpp"
#include "machine/simulator.hpp"
#include "report/table.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>

int main() {
  using namespace stamp;

  const MachineModel machine = presets::niagara();
  report::print_section(
      std::cout, "E5: APSP [inter_proc, async_exec, async_comm]");

  report::Table table("synch_comm vs async_comm across graph sizes",
                      {"n", "comm", "rounds max", "rounds mean", "correct",
                       "T model", "E model"});
  table.set_precision(1);

  for (int n : {8, 12, 16, 24}) {
    const algo::Graph g = algo::make_random_graph(n, 1000 + n, 0.3);
    const std::vector<double> exact = algo::floyd_warshall(g);
    for (const CommMode comm : {CommMode::Synchronous, CommMode::Asynchronous}) {
      algo::ApspOptions opt;
      opt.comm = comm;
      opt.max_rounds = 50 * n;
      const algo::ApspResult r = algo::apsp_distributed(g, machine.topology, opt);

      // Distributed relaxation sums path weights in a different order than
      // Floyd-Warshall; compare with a tolerance, not bitwise.
      bool correct = true;
      for (std::size_t i = 0; i < exact.size(); ++i) {
        const double a = r.distances[i];
        const double b = exact[i];
        if (std::isinf(a) != std::isinf(b) ||
            (!std::isinf(a) && std::abs(a - b) > 1e-9))
          correct = false;
      }
      int max_rounds = 0;
      double mean_rounds = 0;
      for (int rounds : r.rounds) {
        max_rounds = std::max(max_rounds, rounds);
        mean_rounds += rounds;
      }
      mean_rounds /= static_cast<double>(r.rounds.size());
      const Cost cost = r.run.total_cost(r.placement, machine.params, machine.energy);
      table.add_row({static_cast<long long>(n), std::string(keyword(comm)),
                     static_cast<long long>(max_rounds), mean_rounds,
                     std::string(correct ? "yes" : "NO"), cost.time,
                     cost.energy});
    }
  }
  table.print(std::cout);
  std::cout <<
      "\nReading: both variants match Floyd-Warshall exactly. The\n"
      "asynchronous variant needs no barrier; its extra rounds are cheap\n"
      "re-sweeps, while every synchronous round pays a global barrier.\n";

  // ---- heterogeneity: DVFS-simulated fast/slow cores ------------------------
  report::print_section(std::cout,
                        "E5b: asynchrony on heterogeneous-speed processors");
  const int n = 8;
  const algo::Graph g = algo::make_random_graph(n, 4242, 0.3);

  report::Table het("Simulated makespan, 8 processes one-per-core",
                    {"configuration", "comm", "makespan", "energy"});
  het.set_precision(1);

  for (const CommMode comm : {CommMode::Synchronous, CommMode::Asynchronous}) {
    algo::ApspOptions opt;
    opt.comm = comm;
    opt.max_rounds = 50 * n;
    const algo::ApspResult r = algo::apsp_distributed(g, machine.topology, opt);
    std::vector<machine::ProcessTrace> traces;
    for (const auto& rec : r.run.recorders)
      traces.push_back(machine::trace_of_recorder(rec, comm));

    const machine::SimResult uniform = machine::replay(traces, r.placement, machine);

    machine::SimConfig dvfs;
    dvfs.operating_points.assign(
        static_cast<std::size_t>(machine.topology.total_processors()),
        machine::OperatingPoint{.frequency = 1.0});
    // Half the cores run at 60% frequency (power-capped).
    for (int c = 0; c < machine.topology.total_processors(); c += 2)
      dvfs.operating_points[static_cast<std::size_t>(c)].frequency = 0.6;
    const machine::SimResult hetero =
        machine::replay(traces, r.placement, machine, dvfs);

    het.add_row({std::string("uniform f=1.0"), std::string(keyword(comm)),
                 uniform.makespan, uniform.energy});
    het.add_row({std::string("half cores f=0.6"), std::string(keyword(comm)),
                 hetero.makespan, hetero.energy});
  }
  het.print(std::cout);
  std::cout <<
      "\nReading: slowing half the cores hurts the barriered variant by the\n"
      "full slowdown every round (everyone waits for the slowest), while the\n"
      "asynchronous variant degrades less — fast processors keep sweeping,\n"
      "which is the example's final claim.\n";
  return 0;
}
