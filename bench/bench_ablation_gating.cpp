/// A1 (ablation) — the paper's first-order energy model "assumes an
/// architecture in which functional units are gated off in every cycle if
/// they are not used ... While this selective gating may be difficult to
/// achieve in a practical implementation, ... this measure gives an
/// algorithmic-based bound on the power dissipated."
///
/// This ablation quantifies the caveat: the same Jacobi run is re-simulated
/// with degrading clock-gating effectiveness and growing static leakage, and
/// the gap between the paper's bound (perfect gating) and the simulated
/// energy is reported. The model's E stays a *lower* bound on real energy,
/// exactly as claimed.

#include "algo/jacobi.hpp"
#include "core/core.hpp"
#include "machine/simulator.hpp"
#include "report/table.hpp"

#include <iostream>

int main() {
  using namespace stamp;

  const MachineModel m = presets::niagara();
  report::print_section(std::cout,
                        "A1: how much does the perfect-gating assumption hide?");

  const int n = 16;
  const algo::LinearSystem sys = algo::make_diagonally_dominant_system(n, 321);
  algo::JacobiOptions opt;
  opt.processes = 8;  // one per core: queueing/barrier waits show up as idle
  opt.distribution = Distribution::InterProc;
  const auto dist = algo::jacobi_distributed(sys, m.topology, opt);

  std::vector<machine::ProcessTrace> traces;
  for (const auto& rec : dist.run.recorders)
    traces.push_back(machine::trace_of_recorder(rec, CommMode::Synchronous));

  const Cost model = dist.run.total_cost(dist.placement, m.params, m.energy);
  std::cout << "Paper-model energy (gated per-op sum): " << model.energy
            << "\n\n";

  report::Table table("Simulated energy vs gating effectiveness and leakage",
                      {"gating", "static/core", "E dynamic", "E idle",
                       "E static", "E total", "vs model bound"});
  table.set_precision(1);
  for (double gating : {1.0, 0.9, 0.75, 0.5, 0.25, 0.0}) {
    for (double leak : {0.0, 0.5}) {
      machine::SimConfig cfg;
      cfg.gating_effectiveness = gating;
      cfg.static_power_per_core = leak;
      const machine::SimResult r =
          machine::replay(traces, dist.placement, m, cfg);
      table.add_row({gating, leak, r.energy_dynamic, r.energy_idle,
                     r.energy_static, r.energy, r.energy / model.energy});
    }
  }
  table.print(std::cout);

  std::cout <<
      "\nReading: with perfect gating and no leakage the simulator reproduces\n"
      "the model's energy exactly (ratio 1.0). Degrading gating or adding\n"
      "leakage only ever adds energy — the paper's E is an algorithmic lower\n"
      "bound, which is precisely how Section 3.1 positions it.\n";

  // Second axis: gating changes which *placement* wins on energy. Co-located
  // (intra) runs finish the same work with fewer idle gaps per occupied core.
  report::print_section(std::cout, "A1b: gating interacts with distribution");
  report::Table placements("8 processes, intra vs inter, ungated idle burn",
                           {"distribution", "gating", "cores used", "E total"});
  placements.set_precision(1);
  for (const Distribution d : {Distribution::IntraProc, Distribution::InterProc}) {
    algo::JacobiOptions o;
    o.processes = 8;
    o.distribution = d;
    const auto run = algo::jacobi_distributed(sys, m.topology, o);
    std::vector<machine::ProcessTrace> tr;
    for (const auto& rec : run.run.recorders)
      tr.push_back(machine::trace_of_recorder(rec, CommMode::Synchronous));
    int used = 0;
    for (int occ : run.placement.occupancy()) used += occ > 0 ? 1 : 0;
    for (double gating : {1.0, 0.0}) {
      machine::SimConfig cfg;
      cfg.gating_effectiveness = gating;
      const machine::SimResult r = machine::replay(tr, run.placement, m, cfg);
      placements.add_row({std::string(keyword(d)), gating,
                          static_cast<long long>(used), r.energy});
    }
  }
  placements.print(std::cout);
  std::cout <<
      "\nReading: under perfect gating the two placements burn identical\n"
      "energy (same operations). Without gating, spreading over more cores\n"
      "leaves more occupied-but-idle silicon, so inter_proc pays extra —\n"
      "a second-order effect the distribution attribute should weigh on\n"
      "poorly-gated machines.\n";
  return 0;
}
