/// T1 — Table 1 of the paper: the four legal combinations of execution mode
/// (trans_exec / async_exec) and communication mode (synch_comm / async_comm).
///
/// The paper's table only *enumerates* the combinations; this bench gives
/// them teeth: one workload (a shared histogram) runs in every quadrant, and
/// the harness reports, per quadrant, the STAMP model's execution time,
/// energy, and power, plus the observable synchrony artifacts (STM
/// commits/aborts, serialization kappa). All quadrants compute the identical
/// histogram — they differ exactly where the model says they should.

#include "algo/histogram.hpp"
#include "core/core.hpp"
#include "report/table.hpp"

#include <iostream>
#include <string>

int main() {
  using namespace stamp;

  const MachineModel machine = presets::niagara();
  algo::HistogramWorkload w;
  w.processes = 8;
  w.bins = 8;
  w.items_per_process = 2000;
  w.rounds = 8;
  w.skew = 1.0;
  w.preemption_points = true;  // make conflicts observable on any host

  report::print_section(std::cout, "T1: Table 1 — execution x communication modes");
  std::cout << "Workload: shared histogram, " << w.processes << " processes x "
            << w.items_per_process << " items, " << w.bins << " bins, skew "
            << w.skew << ", machine preset '" << machine.name << "'\n\n";

  report::Table table(
      "One workload in all four Table-1 quadrants",
      {"exec", "comm", "T (model)", "E (model)", "P=E/T", "commits", "aborts",
       "kappa", "correct"});
  table.set_precision(0);

  const std::vector<long long> reference = algo::histogram_reference(w);

  for (const ModeCombination& combo : table1_combinations()) {
    const algo::HistogramRunResult r =
        algo::run_histogram(machine.topology, w, combo.exec, combo.comm);
    const Cost cost = r.run.total_cost(r.placement, machine.params, machine.energy);
    double kappa = r.worst_serialization;
    for (const auto& rec : r.run.recorders)
      kappa = std::max(kappa, rec.totals().kappa);
    table.add_row({std::string(combo.exec_keyword),
                   std::string(combo.comm_keyword), cost.time, cost.energy,
                   cost.power(), static_cast<long long>(r.stm_commits),
                   static_cast<long long>(r.stm_aborts), kappa,
                   std::string(r.bins == reference ? "yes" : "NO")});
  }
  table.print(std::cout);

  std::cout <<
      "\nReading: all four quadrants produce the same histogram. The\n"
      "privatized async_exec/async_comm variant avoids shared accesses and\n"
      "is cheapest; trans_exec rows pay for optimistic retries (aborts feed\n"
      "kappa); synch_comm rows serialize at the hot cells.\n";
  return 0;
}
