/// E1 — Section 3.1: the T_S-round / E_S-round closed forms against the two
/// independent measurement paths.
///
/// Three columns per configuration:
///   analytic  — the paper's closed-form formulas on analytic counters
///   measured  — the instrumented runtime's counters fed into the same
///               formulas (counts measured, formulas shared)
///   simulated — trace replay on the explicit-resource machine simulator
///
/// Counts must match exactly; simulated time may differ from the analytic
/// bound by queueing/barrier effects but must track its growth; energy is
/// identical by construction at nominal frequency.

#include "algo/jacobi.hpp"
#include "core/core.hpp"
#include "machine/simulator.hpp"
#include "report/stats.hpp"
#include "report/table.hpp"

#include <iostream>

int main() {
  using namespace stamp;

  const MachineModel m = presets::niagara();
  report::print_section(
      std::cout, "E1: Section 3.1 formulas vs runtime counts vs simulation");

  report::Table table("Jacobi S-round: analytic vs measured vs simulated",
                      {"n", "T analytic", "T measured", "T simulated",
                       "E analytic", "E measured", "E simulated", "E rel.err"});
  table.set_precision(1);

  for (int n : {4, 8, 16, 24, 32}) {
    const algo::LinearSystem sys = algo::make_diagonally_dominant_system(n, 17);
    algo::JacobiOptions opt;
    opt.processes = std::min(n, m.topology.total_threads());
    opt.distribution = Distribution::InterProc;
    const algo::DistributedJacobiResult dist =
        algo::jacobi_distributed(sys, m.topology, opt);
    const int iters = dist.solution.iterations;

    // Analytic per-process cost: the closed-form counters per round, with all
    // communication inter-processor, repeated `iters` times.
    const CostCounters round = analysis::jacobi_round_counters(n);
    ProcessCounts pc;
    pc.inter = opt.processes - 1;
    const Cost analytic_round = s_round_cost(round, m.params, m.energy, pc);
    Cost analytic = analytic_round.scaled(iters);
    analytic += Cost{3.0 * iters, 3.0 * m.energy.w_int * iters};  // T_c, E_c
    // Parallel composition: time is the (identical) per-process time, energy
    // sums over the P processes.
    analytic.energy *= opt.processes;

    // Measured: runtime counters fed into the same formulas. Note the
    // measured version distributes components in blocks, so for p == n both
    // agree; with fewer processes each round carries n/p components.
    const Cost measured =
        dist.run.total_cost(dist.placement, m.params, m.energy);

    // Simulated: replay the recorded traces on the machine.
    std::vector<machine::ProcessTrace> traces;
    for (const auto& rec : dist.run.recorders)
      traces.push_back(machine::trace_of_recorder(rec, CommMode::Synchronous));
    const machine::SimResult sim =
        machine::replay(traces, dist.placement, m);

    table.add_row({static_cast<long long>(n), analytic.time, measured.time,
                   sim.makespan, analytic.energy, measured.energy, sim.energy,
                   report::relative_error(sim.energy, measured.energy)});
  }
  table.print(std::cout);

  std::cout <<
      "\nReading: measured == analytic when one component maps to one\n"
      "process (n <= 32 here, so exact agreement of counters). Simulated\n"
      "energy equals the model's (same per-op sums); simulated time adds\n"
      "queueing on the shared router plus barrier waits, so it upper-bounds\n"
      "the per-process model time and grows with the same slope in n.\n";

  // Parameter sweep: model time monotonicity in each symbolic parameter.
  report::Table sweep("T_S-round sensitivity (Jacobi n=16, inter placement)",
                      {"parameter", "x1", "x2", "x4", "monotone"});
  sweep.set_precision(1);
  const CostCounters round16 = analysis::jacobi_round_counters(16);
  ProcessCounts pc16;
  pc16.inter = 15;
  auto time_with = [&](auto field, double scale) {
    MachineParams p = m.params;
    p.*field = p.*field * scale;
    return s_round_time(round16, p, pc16);
  };
  struct Row {
    const char* name;
    double MachineParams::*field;
  };
  for (const Row& row : {Row{"L_e (message delay)", &MachineParams::L_e},
                         Row{"g_mp_e (bandwidth)", &MachineParams::g_mp_e},
                         Row{"ell_e (shm latency)", &MachineParams::ell_e}}) {
    const double t1 = time_with(row.field, 1);
    const double t2 = time_with(row.field, 2);
    const double t4 = time_with(row.field, 4);
    sweep.add_row({std::string(row.name), t1, t2, t4,
                   std::string(t1 <= t2 && t2 <= t4 ? "yes" : "NO")});
  }
  sweep.print(std::cout);
  return 0;
}
