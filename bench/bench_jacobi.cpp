/// E2 — Section 4's Jacobi analysis, end to end.
///
/// Reproduces every number the paper derives for the Jacobi example:
///   * T_S-round = 2n + L + 2gn - 2g and the matching E_S-round closed form
///   * the lower-bound instantiation L = 5, g = 3/(n(n-1)) giving
///     T_S-unit >= 2n + 6/n + 7 >= 2n
///   * the power bound P_S-unit <= (x + y) w_int for w_fp = x w_int,
///     w_ms = w_mr = y w_int
///   * the envelope conclusion: with a per-core cap of 3 (x+y) w_int on a
///     4-thread Niagara core, at most 3 threads may run the algorithm
/// and checks each against the instrumented runtime.

#include "algo/jacobi.hpp"
#include "core/core.hpp"
#include "report/table.hpp"

#include <iostream>

int main() {
  using namespace stamp;

  report::print_section(std::cout, "E2: the paper's Jacobi analysis");

  // ---- closed forms across n -----------------------------------------------
  const double x = 2, y = 2;  // the paper's premise: x, y >= 2
  EnergyParams e;
  e.w_int = 1;
  e.w_fp = x;
  e.w_m_s = e.w_m_r = y;
  e.w_d_r = e.w_d_w = 2;

  report::Table closed("Closed forms at the lower-bound parameters "
                       "(L = 5, g = 3/(n(n-1)))",
                       {"n", "T_S-round", "E_S-round", "T_S-unit lower",
                        "2n floor", "E_S-unit upper", "P_S-unit upper",
                        "(x+y)w_int bound"});
  closed.set_precision(2);
  for (int n : {4, 8, 16, 32, 64, 128}) {
    const analysis::JacobiParams p = analysis::jacobi_lower_bound_params(n);
    const analysis::JacobiAnalysis a = analysis::jacobi(n, p, e);
    closed.add_row({static_cast<long long>(n), a.T_s_round, a.E_s_round,
                    analysis::jacobi_T_s_unit_lower_bound(n), 2.0 * n,
                    a.E_s_unit_upper, a.P_s_unit_upper,
                    analysis::jacobi_power_upper_bound(x, y, e.w_int)});
  }
  closed.print(std::cout);
  std::cout << "\nPaper check: T_S-unit lower = 2n + 6/n + 7 >= 2n on every "
               "row; P_S-unit upper <= (x+y) w_int = "
            << analysis::jacobi_power_upper_bound(x, y, e.w_int) << ".\n";

  // ---- measured vs closed form ----------------------------------------------
  const Topology topo{.chips = 1, .processors_per_chip = 8,
                      .threads_per_processor = 4};
  // The paper's analysis "does not distinguish between the inter- and
  // intra-processor communications"; measure on a single wide processor so
  // one L applies, matching that simplification.
  const Topology wide{.chips = 1, .processors_per_chip = 1,
                      .threads_per_processor = 32};
  report::Table measured(
      "Instrumented runtime vs closed form (one component per process)",
      {"n", "iterations", "T/round closed", "T/round measured", "E/round closed",
       "E/round measured", "P measured", "P bound"});
  measured.set_precision(2);

  for (int n : {4, 8, 16, 24}) {
    const algo::LinearSystem sys = algo::make_diagonally_dominant_system(n, 29);
    algo::JacobiOptions opt;
    opt.processes = n;
    const algo::DistributedJacobiResult dist =
        algo::jacobi_distributed(sys, wide, opt);

    const analysis::JacobiParams lb = analysis::jacobi_lower_bound_params(n);
    MachineParams mp;
    mp.ell_a = mp.ell_e = 0;
    mp.g_sh_a = mp.g_sh_e = 0;
    mp.L_a = mp.L_e = lb.L;
    mp.g_mp_a = mp.g_mp_e = lb.g;

    const analysis::JacobiAnalysis a = analysis::jacobi(n, lb, e);
    const auto& rec = dist.run.recorders[0];
    const ProcessCounts pc = dist.placement.process_counts_for(0);
    const auto& round = rec.units().front().rounds[0];
    const double t_round = s_round_time(round, mp, pc);
    const double e_round = s_round_energy(round, e);

    const StampProcess proc = rec.to_process(Attributes{});
    const Cost unit_cost = proc.cost(mp, e, pc);

    measured.add_row({static_cast<long long>(n),
                      static_cast<long long>(dist.solution.iterations),
                      a.T_s_round, t_round, a.E_s_round, e_round,
                      unit_cost.power(),
                      analysis::jacobi_power_upper_bound(x, y, e.w_int)});
  }
  measured.print(std::cout);

  // ---- the power-envelope conclusion ----------------------------------------
  report::print_section(std::cout,
                        "E2b: power envelope — how many threads per core?");
  const double cap = 3 * (x + y) * e.w_int;
  std::cout << "Per-core cap: 3 (x+y) w_int = " << cap
            << "; per-thread bound: (x+y) w_int = "
            << analysis::jacobi_power_upper_bound(x, y, e.w_int) << "\n\n";

  report::Table envelope("Admissible Jacobi threads per 4-thread core",
                         {"cap (in w_int)", "admissible threads", "paper says"});
  envelope.set_precision(1);
  for (double scale : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    const double c = scale * (x + y) * e.w_int;
    const int admissible =
        analysis::jacobi_max_threads_per_processor(x, y, e.w_int, c, 4);
    envelope.add_row({c, static_cast<long long>(admissible),
                      std::string(scale == 3.0 ? "<= 3 of 4 threads (Sec. 4)"
                                               : "")});
  }
  envelope.print(std::cout);

  // Demonstrate the feasible configuration end to end: 8 processes on cores
  // capped at 3 threads each use 3 cores; the infeasible packing would use 2.
  const algo::LinearSystem sys = algo::make_diagonally_dominant_system(8, 31);
  algo::JacobiOptions capped;
  capped.processes = 8;
  capped.max_threads_per_processor = 3;
  const auto run3 = algo::jacobi_distributed(sys, topo, capped);
  algo::JacobiOptions full;
  full.processes = 8;
  const auto run4 = algo::jacobi_distributed(sys, topo, full);
  auto cores_used = [](const runtime::PlacementMap& pm) {
    int used = 0;
    for (int occ : pm.occupancy()) used += occ > 0 ? 1 : 0;
    return used;
  };
  std::cout << "\n8 Jacobi processes, cap 3/core -> cores used: "
            << cores_used(run3.placement)
            << " (occupancy 3+3+2); uncapped -> " << cores_used(run4.placement)
            << " (occupancy 4+4, which the envelope forbids).\n"
            << "Both converge to the same solution in "
            << run3.solution.iterations << " iterations.\n";
  return 0;
}
