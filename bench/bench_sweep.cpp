/// P2 — sweep-engine throughput: serial evaluation vs the range-claiming
/// work-stealing `sweep::Pool`, through the structure-of-arrays batch
/// evaluator (sweep/batch.hpp).
///
/// Two grid presets:
///  - `--grid canonical` (default): the canonical 7 axes plus a `processes`
///    bound axis — 1152 points. Small enough that the table doubles as a
///    smoke check, but per-point work barely outweighs pool overhead, so
///    scaling numbers on it are noise-bound.
///  - `--grid large`: `SweepConfig::large()` — 1,179,648 streaming points.
///    This is the scaling claim: with the batch evaluator amortizing decode,
///    machine validation and cache probes over claimed ranges, parallelism
///    finally has something to chew on, and the speedup curve is expected to
///    be monotone in thread count.
///
/// The table reports wall time, points/s, speedup over serial, memoization
/// hit rate, and how many range splits were stolen. Records are verified
/// identical to the serial run at every pool width (the artifact is
/// scheduling-independent).
///
/// Besides the human-readable table, the bench emits a machine-readable
/// `BENCH_sweep.json` (`stamp-bench-sweep/v1`). Gates:
///  - `--baseline FILE`: fail if serial points/sec regresses more than 20%
///    against the checked-in baseline (grids must match — comparing presets
///    is apples to oranges).
///  - `--gate-scaling X`: fail unless pool points/sec is monotone in thread
///    count (5% noise tolerance) and the widest run that fits the hardware
///    reaches min(X, hw/2)× serial. Thread counts above the *usable*
///    hardware parallelism (`core::usable_hardware_threads`, affinity-aware)
///    are reported but never gated; on a single-core box the gate is skipped
///    outright — oversubscribed "speedup" is meaningless either way.
///
/// Usage: bench_sweep [--grid canonical|large] [--out FILE]
///                    [--baseline FILE] [--reps N] [--gate-scaling X]

#include "core/hw.hpp"
#include "report/atomic_file.hpp"
#include "report/json.hpp"
#include "report/json_parse.hpp"
#include "report/table.hpp"
#include "sweep/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

// run_sweep/run_sweep_serial are deprecated in favor of Evaluator::sweep;
// this file exercises the sweep engine directly on purpose (it is the layer
// under test/measurement, below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best of `reps` runs: sweep evaluation is deterministic, so the minimum is
/// the least-noisy estimate.
double best_seconds(int reps, const std::function<void()>& fn) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    const double s = seconds_of(fn);
    if (i == 0 || s < best) best = s;
  }
  return best;
}

double hit_rate_of(const stamp::sweep::SweepStats& stats) {
  const double total =
      static_cast<double>(stats.cache_hits + stats.cache_misses);
  return total > 0 ? static_cast<double>(stats.cache_hits) / total : 0.0;
}

struct PoolSample {
  int threads = 0;
  double seconds = 0;
  double points_per_sec = 0;
  double hit_rate = 0;
  std::uint64_t steals = 0;
};

/// The small bench grid: the canonical 7 axes plus a `processes` bound axis,
/// so the JSON reports throughput on an 8-axis, 1152-point design space.
stamp::sweep::SweepConfig canonical_bench_config() {
  stamp::sweep::SweepConfig cfg = stamp::sweep::SweepConfig::canonical();
  cfg.grid.axis(std::string(stamp::sweep::axes::kProcesses), {16, 64});
  cfg.workload = "uniform-comm-bench8";
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stamp;

  std::string grid_name = "canonical";
  std::string out_path = "BENCH_sweep.json";
  std::string baseline_path;
  int reps = 0;  // 0 = preset default (5 canonical, 2 large)
  double gate_scaling = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "bench_sweep: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--grid") {
      grid_name = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--reps") {
      reps = std::stoi(next());
    } else if (arg == "--gate-scaling") {
      gate_scaling = std::stod(next());
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bench_sweep [--grid canonical|large] [--out FILE] "
                   "[--baseline FILE] [--reps N] [--gate-scaling X]\n";
      return 0;
    } else {
      std::cerr << "bench_sweep: unknown option '" << arg << "'\n";
      return 2;
    }
  }

  sweep::SweepConfig cfg;
  if (grid_name == "canonical") {
    cfg = canonical_bench_config();
    if (reps == 0) reps = 5;
  } else if (grid_name == "large") {
    cfg = sweep::SweepConfig::large();
    if (reps == 0) reps = 2;
  } else {
    std::cerr << "bench_sweep: unknown grid '" << grid_name
              << "' (canonical|large)\n";
    return 2;
  }

  report::print_section(std::cout, "P2: parameter-sweep engine throughput");

  const std::size_t points = cfg.grid.size();
  const int hw = core::usable_hardware_threads();

  // Reference: plain serial loop, no pool involved.
  sweep::SweepResult serial_result;
  const double serial_s =
      best_seconds(reps, [&] { serial_result = sweep::run_sweep_serial(cfg); });
  const double serial_pps = static_cast<double>(points) / serial_s;

  report::Table table(
      grid_name + " grid: " + std::to_string(points) + " points, best of " +
          std::to_string(reps) + ", " + std::to_string(hw) +
          " usable hw thread(s)",
      {"configuration", "time [ms]", "points/s", "speedup", "hit rate",
       "steals"});
  table.set_precision(2);
  table.add_row({std::string("serial"), serial_s * 1e3, serial_pps, 1.0,
                 hit_rate_of(serial_result.stats), 0.0});

  std::vector<int> widths{1, 2, 4, 8};
  if (std::find(widths.begin(), widths.end(), hw) == widths.end() && hw > 1)
    widths.push_back(hw);
  std::sort(widths.begin(), widths.end());

  std::vector<PoolSample> samples;
  for (const int threads : widths) {
    sweep::Pool pool(threads);
    sweep::SweepResult result;
    const std::uint64_t steals_before = pool.steals();
    const double s =
        best_seconds(reps, [&] { result = sweep::run_sweep(cfg, pool); });
    PoolSample sample;
    sample.threads = threads;
    sample.seconds = s;
    sample.points_per_sec = static_cast<double>(points) / s;
    sample.hit_rate = hit_rate_of(result.stats);
    sample.steals = pool.steals() - steals_before;  // across all reps
    samples.push_back(sample);
    table.add_row({"pool(" + std::to_string(threads) + ")", s * 1e3,
                   sample.points_per_sec, serial_s / s, sample.hit_rate,
                   static_cast<double>(sample.steals)});

    // The scaling contract: identical output at every pool width.
    if (result.records != serial_result.records) {
      std::cerr << "ERROR: pool(" << threads
                << ") records differ from serial records\n";
      return 1;
    }
  }
  table.print(std::cout);

  std::cout << "\nReading: records are verified identical to the serial run\n"
               "at every pool width (the artifact is scheduling-independent);\n"
               "the batch evaluator probes the memoization cache once per "
               "point.\n";

  // -- machine-readable artifact ---------------------------------------------
  if (!out_path.empty()) {
    // Atomic temp-file + rename: a crash mid-write must never leave a torn
    // report where the perf gate's baseline refresh would pick it up.
    report::AtomicFileWriter writer(out_path);
    std::ostream& os = writer.stream();
    if (!writer.ok()) {
      std::cerr << "bench_sweep: cannot open '" << out_path << "'\n";
      return 2;
    }
    report::JsonWriter w(os);
    w.begin_object();
    w.kv("schema", "stamp-bench-sweep/v1");
    w.key("grid").begin_object();
    w.kv("name", grid_name);
    w.kv("axes", static_cast<long long>(cfg.grid.axes().size()));
    w.kv("points", static_cast<long long>(points));
    w.end_object();
    w.kv("reps", reps);
    w.kv("hardware_threads", hw);
    w.key("serial").begin_object();
    w.kv("ms", serial_s * 1e3);
    w.kv("points_per_sec", serial_pps);
    w.kv("cache_hit_rate", hit_rate_of(serial_result.stats));
    w.end_object();
    w.key("pools").begin_array();
    for (const PoolSample& s : samples) {
      w.begin_object();
      w.kv("threads", s.threads);
      w.kv("ms", s.seconds * 1e3);
      w.kv("points_per_sec", s.points_per_sec);
      w.kv("cache_hit_rate", s.hit_rate);
      w.kv("steals", static_cast<long long>(s.steals));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
    try {
      writer.commit();
    } catch (const std::exception& e) {
      std::cerr << "bench_sweep: " << e.what() << "\n";
      return 2;
    }
    std::cout << "\nwrote " << out_path << "\n";
  }

  // -- strong-scaling gate ----------------------------------------------------
  if (gate_scaling > 0) {
    if (hw < 2) {
      std::cout << "gate-scaling: SKIPPED — only " << hw
                << " usable hardware thread(s); a parallel speedup cannot "
                   "exist here, run this gate on a multi-core runner\n";
    } else {
      bool ok = true;
      // Monotone in thread count over the widths the hardware can actually
      // run in parallel, with 5% noise tolerance. Oversubscribed widths
      // (threads > hw) are reported above but not gated.
      const PoolSample* prev = nullptr;
      const PoolSample* widest = nullptr;
      for (const PoolSample& s : samples) {
        if (s.threads > hw) {
          std::cout << "gate-scaling: pool(" << s.threads
                    << ") skipped (only " << hw << " usable hw threads)\n";
          continue;
        }
        if (prev != nullptr && s.points_per_sec < prev->points_per_sec * 0.95) {
          std::cerr << "FAIL: points/sec not monotone in thread count: pool("
                    << s.threads << ") " << s.points_per_sec << " < pool("
                    << prev->threads << ") " << prev->points_per_sec
                    << " (beyond 5% tolerance)\n";
          ok = false;
        }
        prev = &s;
        widest = &s;
      }
      // The widest gated run must beat serial by the requested factor,
      // scaled down to what the hardware can deliver: min(X, hw/2) leaves
      // 2x headroom for pool overhead on small machines.
      const double required =
          std::min(gate_scaling, static_cast<double>(hw) / 2.0);
      if (widest != nullptr) {
        const double speedup = widest->points_per_sec / serial_pps;
        std::cout << "gate-scaling: pool(" << widest->threads << ") speedup "
                  << speedup << "x vs required " << required << "x (requested "
                  << gate_scaling << "x, " << hw << " usable hw threads)\n";
        if (speedup < required) {
          std::cerr << "FAIL: pool(" << widest->threads << ") speedup "
                    << speedup << "x is below the required " << required
                    << "x\n";
          ok = false;
        }
      }
      if (!ok) return 1;
    }
  }

  // -- regression gate against a checked-in baseline -------------------------
  if (!baseline_path.empty()) {
    std::ifstream is(baseline_path, std::ios::binary);
    if (!is) {
      std::cerr << "bench_sweep: cannot read baseline '" << baseline_path
                << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << is.rdbuf();
    double base_pps = 0;
    try {
      const report::JsonValue base = report::JsonValue::parse(text.str());
      const report::JsonValue* grid = base.find("grid");
      const report::JsonValue* name = grid ? grid->find("name") : nullptr;
      if (name != nullptr && name->as_string() != grid_name)
        throw std::runtime_error("baseline is for grid '" + name->as_string() +
                                 "', this run used '" + grid_name + "'");
      const report::JsonValue* serial = base.find("serial");
      const report::JsonValue* pps =
          serial ? serial->find("points_per_sec") : nullptr;
      if (!pps) throw std::runtime_error("missing serial.points_per_sec");
      base_pps = pps->as_number();
    } catch (const std::exception& e) {
      std::cerr << "bench_sweep: bad baseline: " << e.what() << "\n";
      return 2;
    }
    const double ratio = serial_pps / base_pps;
    std::cout << "gate: serial " << serial_pps << " points/s vs baseline "
              << base_pps << " (" << ratio << "x)\n";
    if (ratio < 0.8) {
      std::cerr << "FAIL: serial points/sec regressed more than 20% against "
                << baseline_path << "\n";
      return 1;
    }
  }
  return 0;
}
