/// P2 — sweep-engine throughput: serial evaluation vs the work-stealing
/// `sweep::Pool` over the canonical 576-point machine-parameter grid.
///
/// This is the scaling claim behind the CI pipeline: turning the one-shot
/// benches into a grid sweep only pays off if the sweep itself runs as fast
/// as the hardware allows. The table reports wall time, points/s, speedup
/// over serial, memoization hit rate, and how many chunks were stolen —
/// stealing is what keeps the speedup near the worker count even though
/// grid points differ in cost (greedy placement at 16 cores is far more
/// work than fill-first at 2).

#include "report/table.hpp"
#include "sweep/sweep.hpp"

#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best of `reps` runs: sweep evaluation is deterministic, so the minimum is
/// the least-noisy estimate.
double best_seconds(int reps, const std::function<void()>& fn) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    const double s = seconds_of(fn);
    if (i == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
  using namespace stamp;

  report::print_section(std::cout, "P2: parameter-sweep engine throughput");

  const sweep::SweepConfig cfg = sweep::SweepConfig::canonical();
  const std::size_t points = cfg.grid.size();
  constexpr int kReps = 5;

  // Reference: plain serial loop, no pool involved.
  sweep::SweepResult serial_result;
  const double serial_s =
      best_seconds(kReps, [&] { serial_result = sweep::run_sweep_serial(cfg); });

  report::Table table(
      "Canonical grid: " + std::to_string(points) + " points, best of " +
          std::to_string(kReps),
      {"configuration", "time [ms]", "points/s", "speedup", "hit rate", "steals"});
  table.set_precision(2);

  const double serial_hit_rate =
      static_cast<double>(serial_result.stats.cache_hits) /
      static_cast<double>(serial_result.stats.cache_hits +
                          serial_result.stats.cache_misses);
  table.add_row({std::string("serial"), serial_s * 1e3,
                 static_cast<double>(points) / serial_s, 1.0, serial_hit_rate,
                 0.0});

  std::vector<int> widths{1, 2, 4};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 4) widths.push_back(hw);

  double speedup_at_4 = 0;
  for (const int threads : widths) {
    sweep::Pool pool(threads);
    sweep::SweepResult result;
    const double s =
        best_seconds(kReps, [&] { result = sweep::run_sweep(cfg, pool); });
    const double hit_rate =
        static_cast<double>(result.stats.cache_hits) /
        static_cast<double>(result.stats.cache_hits +
                            result.stats.cache_misses);
    const double speedup = serial_s / s;
    if (threads == 4) speedup_at_4 = speedup;
    table.add_row({"pool(" + std::to_string(threads) + ")", s * 1e3,
                   static_cast<double>(points) / s, speedup, hit_rate,
                   static_cast<double>(result.stats.pool_steals)});

    // The scaling contract: identical output at every pool width.
    if (result.records != serial_result.records) {
      std::cerr << "ERROR: pool(" << threads
                << ") records differ from serial records\n";
      return 1;
    }
  }
  table.print(std::cout);

  std::cout << "\nReading: records are verified identical to the serial run\n"
               "at every pool width (the artifact is scheduling-independent);\n"
               "memoization serves 3 of the 4 metric queries per point.\n";
  if (speedup_at_4 < 2.0) {
    if (hw < 4) {
      std::cout << "NOTE: pool(4) speedup " << speedup_at_4 << "x on "
                << hw << " hardware thread(s) — a >= 2x speedup needs >= 4 "
                   "cores; on one core the number above is pure pool "
                   "overhead (should stay near 1x).\n";
    } else {
      std::cout << "WARNING: pool(4) speedup " << speedup_at_4
                << "x is below the 2x acceptance floor (noisy machine?)\n";
    }
  }
  return 0;
}
