/// P2 — sweep-engine throughput: serial evaluation vs the range-claiming
/// work-stealing `sweep::Pool` over an 8-axis machine-parameter grid (the
/// canonical 7 axes plus a `processes` bound axis: 1152 points).
///
/// This is the scaling claim behind the CI pipeline: turning the one-shot
/// benches into a grid sweep only pays off if the sweep itself runs as fast
/// as the hardware allows. The table reports wall time, points/s, speedup
/// over serial, memoization hit rate, and how many range splits were stolen
/// — stealing is what keeps the speedup near the worker count even though
/// grid points differ in cost (greedy placement at 16 cores is far more
/// work than fill-first at 2).
///
/// Besides the human-readable table, the bench emits a machine-readable
/// `BENCH_sweep.json` (`stamp-bench-sweep/v1`): points/sec for the serial
/// path and each pool width, cache hit rate, and steal counts. CI's bench
/// job uploads it as an artifact and gates it against the checked-in
/// `bench/BENCH_sweep.json` baseline: the run fails if serial points/sec
/// regresses more than 20% (pass `--baseline FILE`; absolute throughput is
/// machine-dependent, so refresh the baseline when hardware changes).
///
/// Usage: bench_sweep [--out FILE] [--baseline FILE] [--reps N]

#include "report/atomic_file.hpp"
#include "report/json.hpp"
#include "report/json_parse.hpp"
#include "report/table.hpp"
#include "sweep/sweep.hpp"

#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best of `reps` runs: sweep evaluation is deterministic, so the minimum is
/// the least-noisy estimate.
double best_seconds(int reps, const std::function<void()>& fn) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    const double s = seconds_of(fn);
    if (i == 0 || s < best) best = s;
  }
  return best;
}

double hit_rate_of(const stamp::sweep::SweepStats& stats) {
  const double total =
      static_cast<double>(stats.cache_hits + stats.cache_misses);
  return total > 0 ? static_cast<double>(stats.cache_hits) / total : 0.0;
}

struct PoolSample {
  int threads = 0;
  double seconds = 0;
  double points_per_sec = 0;
  double hit_rate = 0;
  std::uint64_t steals = 0;
};

/// The bench grid: the canonical 7 axes plus a `processes` bound axis, so
/// the JSON reports throughput on an 8-axis, 1152-point design space.
stamp::sweep::SweepConfig bench_config() {
  stamp::sweep::SweepConfig cfg = stamp::sweep::SweepConfig::canonical();
  cfg.grid.axis(std::string(stamp::sweep::axes::kProcesses), {16, 64});
  cfg.workload = "uniform-comm-bench8";
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stamp;

  std::string out_path = "BENCH_sweep.json";
  std::string baseline_path;
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "bench_sweep: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--reps") {
      reps = std::stoi(next());
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bench_sweep [--out FILE] [--baseline FILE] "
                   "[--reps N]\n";
      return 0;
    } else {
      std::cerr << "bench_sweep: unknown option '" << arg << "'\n";
      return 2;
    }
  }

  report::print_section(std::cout, "P2: parameter-sweep engine throughput");

  const sweep::SweepConfig cfg = bench_config();
  const std::size_t points = cfg.grid.size();

  // Reference: plain serial loop, no pool involved.
  sweep::SweepResult serial_result;
  const double serial_s =
      best_seconds(reps, [&] { serial_result = sweep::run_sweep_serial(cfg); });
  const double serial_pps = static_cast<double>(points) / serial_s;

  report::Table table(
      "8-axis grid: " + std::to_string(points) + " points, best of " +
          std::to_string(reps),
      {"configuration", "time [ms]", "points/s", "speedup", "hit rate", "steals"});
  table.set_precision(2);
  table.add_row({std::string("serial"), serial_s * 1e3, serial_pps, 1.0,
                 hit_rate_of(serial_result.stats), 0.0});

  std::vector<int> widths{1, 2, 4, 8};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 8) widths.push_back(hw);

  std::vector<PoolSample> samples;
  double speedup_at_4 = 0;
  for (const int threads : widths) {
    sweep::Pool pool(threads);
    sweep::SweepResult result;
    const std::uint64_t steals_before = pool.steals();
    const double s =
        best_seconds(reps, [&] { result = sweep::run_sweep(cfg, pool); });
    PoolSample sample;
    sample.threads = threads;
    sample.seconds = s;
    sample.points_per_sec = static_cast<double>(points) / s;
    sample.hit_rate = hit_rate_of(result.stats);
    sample.steals = pool.steals() - steals_before;  // across all reps
    samples.push_back(sample);
    const double speedup = serial_s / s;
    if (threads == 4) speedup_at_4 = speedup;
    table.add_row({"pool(" + std::to_string(threads) + ")", s * 1e3,
                   sample.points_per_sec, speedup, sample.hit_rate,
                   static_cast<double>(sample.steals)});

    // The scaling contract: identical output at every pool width.
    if (result.records != serial_result.records) {
      std::cerr << "ERROR: pool(" << threads
                << ") records differ from serial records\n";
      return 1;
    }
  }
  table.print(std::cout);

  std::cout << "\nReading: records are verified identical to the serial run\n"
               "at every pool width (the artifact is scheduling-independent);\n"
               "memoization serves 3 of the 4 metric queries per point.\n";
  if (speedup_at_4 < 2.0) {
    if (hw < 4) {
      std::cout << "NOTE: pool(4) speedup " << speedup_at_4 << "x on "
                << hw << " hardware thread(s) — a >= 2x speedup needs >= 4 "
                   "cores; on one core the number above is pure pool "
                   "overhead (should stay near 1x).\n";
    } else {
      std::cout << "WARNING: pool(4) speedup " << speedup_at_4
                << "x is below the 2x acceptance floor (noisy machine?)\n";
    }
  }

  // -- machine-readable artifact ---------------------------------------------
  if (!out_path.empty()) {
    // Atomic temp-file + rename: a crash mid-write must never leave a torn
    // report where the perf gate's baseline refresh would pick it up.
    report::AtomicFileWriter writer(out_path);
    std::ostream& os = writer.stream();
    if (!writer.ok()) {
      std::cerr << "bench_sweep: cannot open '" << out_path << "'\n";
      return 2;
    }
    report::JsonWriter w(os);
    w.begin_object();
    w.kv("schema", "stamp-bench-sweep/v1");
    w.key("grid").begin_object();
    w.kv("axes", static_cast<long long>(cfg.grid.axes().size()));
    w.kv("points", static_cast<long long>(points));
    w.end_object();
    w.kv("reps", reps);
    w.kv("hardware_threads", hw);
    w.key("serial").begin_object();
    w.kv("ms", serial_s * 1e3);
    w.kv("points_per_sec", serial_pps);
    w.kv("cache_hit_rate", hit_rate_of(serial_result.stats));
    w.end_object();
    w.key("pools").begin_array();
    for (const PoolSample& s : samples) {
      w.begin_object();
      w.kv("threads", s.threads);
      w.kv("ms", s.seconds * 1e3);
      w.kv("points_per_sec", s.points_per_sec);
      w.kv("cache_hit_rate", s.hit_rate);
      w.kv("steals", static_cast<long long>(s.steals));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
    try {
      writer.commit();
    } catch (const std::exception& e) {
      std::cerr << "bench_sweep: " << e.what() << "\n";
      return 2;
    }
    std::cout << "\nwrote " << out_path << "\n";
  }

  // -- regression gate against a checked-in baseline -------------------------
  if (!baseline_path.empty()) {
    std::ifstream is(baseline_path, std::ios::binary);
    if (!is) {
      std::cerr << "bench_sweep: cannot read baseline '" << baseline_path
                << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << is.rdbuf();
    double base_pps = 0;
    try {
      const report::JsonValue base = report::JsonValue::parse(text.str());
      const report::JsonValue* serial = base.find("serial");
      const report::JsonValue* pps =
          serial ? serial->find("points_per_sec") : nullptr;
      if (!pps) throw std::runtime_error("missing serial.points_per_sec");
      base_pps = pps->as_number();
    } catch (const std::exception& e) {
      std::cerr << "bench_sweep: bad baseline: " << e.what() << "\n";
      return 2;
    }
    const double ratio = serial_pps / base_pps;
    std::cout << "gate: serial " << serial_pps << " points/s vs baseline "
              << base_pps << " (" << ratio << "x)\n";
    if (ratio < 0.8) {
      std::cerr << "FAIL: serial points/sec regressed more than 20% against "
                << baseline_path << "\n";
      return 1;
    }
  }
  return 0;
}
