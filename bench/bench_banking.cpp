/// E3 — Section 4's banking example: `transfer` as a nested trans_exec
/// transaction.
///
/// The paper gives the algorithm; this bench characterizes it: throughput,
/// commit/abort behaviour and the measured rollback bound kappa as contention
/// rises (hot-spot fraction), plus an ablation over contention managers —
/// the knob the trans_exec machinery hides behind.

#include "algo/banking.hpp"
#include "core/core.hpp"
#include "report/table.hpp"

#include <iostream>

int main() {
  using namespace stamp;

  const MachineModel machine = presets::niagara();
  report::print_section(std::cout,
                        "E3: banking transfer [intra_proc, trans_exec]");

  // ---- contention sweep ------------------------------------------------------
  report::Table sweep("Contention sweep (8 processes x 1500 transfers, "
                      "backoff manager, preemption points on)",
                      {"hot fraction", "committed", "insufficient", "aborts",
                       "abort ratio", "max kappa", "conserved", "T model",
                       "E model"});
  sweep.set_precision(3);

  for (double hot : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    algo::TransferWorkload w;
    w.processes = 8;
    w.transfers_per_process = 1500;
    w.accounts = 64;
    w.initial_balance = 1'000'000;  // deep accounts: contention, not drain
    w.hot_fraction = hot;
    w.preemption_points = true;
    const algo::TransferRunResult r =
        algo::run_transfer_workload(machine.topology, w, "backoff");

    double kappa = 0;
    for (const auto& rec : r.run.recorders)
      kappa = std::max(kappa, rec.totals().kappa);
    const double total =
        static_cast<double>(r.stm_commits) + static_cast<double>(r.stm_aborts);
    const Cost cost = r.run.total_cost(r.placement, machine.params, machine.energy);

    sweep.add_row({hot, r.committed, r.insufficient,
                   static_cast<long long>(r.stm_aborts),
                   total > 0 ? static_cast<double>(r.stm_aborts) / total : 0.0,
                   kappa,
                   std::string(r.balance_before == r.balance_after ? "yes" : "NO"),
                   cost.time, cost.energy});
  }
  sweep.print(std::cout);
  std::cout << "\nReading: kappa — the worst rollback chain, the model's\n"
               "serialization bound — climbs steadily with the hot fraction.\n"
               "Raw abort counts stay moderate because the backoff manager\n"
               "paces retries (compare the manager ablation below). The\n"
               "conservation invariant (total balance) holds on every row —\n"
               "the atomicity the trans_exec keyword promises.\n";

  // ---- contention-manager ablation -------------------------------------------
  report::Table managers("Contention managers at hot fraction 1.0",
                         {"manager", "aborts", "abort ratio", "max retries",
                          "wall ms"});
  managers.set_precision(3);
  for (const char* name : {"passive", "polite", "backoff", "karma"}) {
    algo::TransferWorkload w;
    w.processes = 8;
    w.transfers_per_process = 1000;
    w.accounts = 16;
    w.initial_balance = 1'000'000;
    w.hot_fraction = 1.0;
    w.preemption_points = true;
    const algo::TransferRunResult r =
        algo::run_transfer_workload(machine.topology, w, name);
    const double total =
        static_cast<double>(r.stm_commits) + static_cast<double>(r.stm_aborts);
    managers.add_row(
        {std::string(name), static_cast<long long>(r.stm_aborts),
         total > 0 ? static_cast<double>(r.stm_aborts) / total : 0.0,
         static_cast<long long>(r.stm_max_retries),
         static_cast<double>(r.run.wall_time.count()) / 1e6});
  }
  managers.print(std::cout);

  // ---- distribution attribute ------------------------------------------------
  report::Table dist("intra_proc vs inter_proc placement (model cost)",
                     {"distribution", "T model", "E model", "P model"});
  dist.set_precision(1);
  for (const Distribution d : {Distribution::IntraProc, Distribution::InterProc}) {
    algo::TransferWorkload w;
    w.processes = 4;
    w.transfers_per_process = 1000;
    w.accounts = 64;
    w.distribution = d;
    const algo::TransferRunResult r =
        algo::run_transfer_workload(machine.topology, w, "backoff");
    const Cost cost = r.run.total_cost(r.placement, machine.params, machine.energy);
    dist.add_row({std::string(keyword(d)), cost.time, cost.energy, cost.power()});
  }
  dist.print(std::cout);
  std::cout << "\nReading: the paper marks transfer intra_proc — co-located\n"
               "subtransactions hit L1-speed shared memory, so the intra row\n"
               "is cheaper in time at equal energy.\n";
  return 0;
}
