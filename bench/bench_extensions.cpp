/// X1 — extension algorithms: the STAMP model applied beyond the paper's
/// three examples. Parallel reduction (four substrate variants), prefix sum,
/// sample sort, dense matrix multiply, BFS and PageRank (sync vs async) —
/// each instrumented end to end and priced by the model.
///
/// The point: the model's columns (T, E, P, and the D/PDP/EDP/ED2P metrics)
/// come out of the same machinery for every algorithm; nothing is bespoke.

#include "algo/algo.hpp"
#include "core/core.hpp"
#include "report/table.hpp"

#include <iostream>

int main() {
  using namespace stamp;

  const MachineModel m = presets::niagara();

  // ---- reduction: one job, four substrates -----------------------------------
  report::print_section(std::cout, "X1a: reduction across substrates");
  report::Table red("Sum of 2^14 elements, 8 processes",
                    {"variant", "correct", "T model", "E model", "P",
                     "aborts", "kappa"});
  red.set_precision(0);
  for (const algo::ReduceVariant v :
       {algo::ReduceVariant::Tree, algo::ReduceVariant::Doubling,
        algo::ReduceVariant::Queued, algo::ReduceVariant::Stm}) {
    algo::ReduceWorkload w;
    w.processes = 8;
    w.elements = 1 << 14;
    const algo::ReduceRunResult r = run_reduce(m.topology, w, v);
    const Cost c = r.run.total_cost(r.placement, m.params, m.energy);
    red.add_row({std::string(to_string(v)),
                 std::string(r.correct() ? "yes" : "NO"), c.time, c.energy,
                 c.power(), static_cast<long long>(r.stm_aborts),
                 r.worst_serialization});
  }
  red.print(std::cout);

  // ---- prefix sum and sample sort ---------------------------------------------
  report::print_section(std::cout, "X1b: prefix sum and sample sort");
  report::Table scal("Scaling with process count",
                     {"algorithm", "p", "correct", "T model", "E model"});
  scal.set_precision(0);
  for (int p : {2, 4, 8, 16}) {
    {
      algo::PrefixSumWorkload w;
      w.processes = p;
      w.elements = 1 << 14;
      const algo::PrefixSumRunResult r = run_prefix_sum(m.topology, w);
      const Cost c = r.run.total_cost(r.placement, m.params, m.energy);
      scal.add_row({std::string("prefix-sum"), static_cast<long long>(p),
                    std::string(r.correct() ? "yes" : "NO"), c.time, c.energy});
    }
    {
      algo::SortWorkload w;
      w.processes = p;
      w.elements = 1 << 13;
      const algo::SortRunResult r = run_sample_sort(m.topology, w);
      const Cost c = r.run.total_cost(r.placement, m.params, m.energy);
      scal.add_row({std::string("sample-sort"), static_cast<long long>(p),
                    std::string(r.correct ? "yes" : "NO"), c.time, c.energy});
    }
  }
  scal.print(std::cout);

  // ---- matmul: model time vs panel count --------------------------------------
  report::print_section(std::cout, "X1c: 1-D SUMMA matrix multiply");
  report::Table mm("C = A x B, n = 48", {"p", "max |err|", "T model",
                                         "E model", "msgs total"});
  mm.set_precision(1);
  for (int p : {1, 2, 4, 8}) {
    algo::MatmulWorkload w;
    w.processes = p;
    w.n = 48;
    const algo::MatmulRunResult r = run_matmul(m.topology, w);
    const Cost c = r.run.total_cost(r.placement, m.params, m.energy);
    const CostCounters t = r.run.total_counters();
    mm.add_row({static_cast<long long>(p), r.max_abs_error, c.time, c.energy,
                t.m_s_a + t.m_s_e});
  }
  mm.print(std::cout);

  // ---- BFS / PageRank: sync vs async ------------------------------------------
  report::print_section(std::cout, "X1d: BFS and PageRank, synch vs async");
  const algo::Graph g = algo::make_random_graph(16, 909, 0.25);
  report::Table ga("16-vertex graph, 8 processes",
                   {"algorithm", "comm", "rounds max", "correct", "T model",
                    "E model"});
  ga.set_precision(0);
  for (const CommMode comm : {CommMode::Synchronous, CommMode::Asynchronous}) {
    {
      algo::BfsOptions opt;
      opt.processes = 8;
      opt.comm = comm;
      const algo::BfsResult r = bfs_distributed(g, m.topology, opt);
      int rounds = 0;
      for (int x : r.rounds) rounds = std::max(rounds, x);
      const Cost c = r.run.total_cost(r.placement, m.params, m.energy);
      ga.add_row({std::string("bfs"), std::string(keyword(comm)),
                  static_cast<long long>(rounds),
                  std::string(r.depth == algo::bfs_reference(g, 0) ? "yes" : "NO"),
                  c.time, c.energy});
    }
    {
      algo::PageRankOptions opt;
      opt.processes = 8;
      opt.comm = comm;
      opt.tolerance = 1e-10;
      opt.max_rounds = 3000;  // async chaotic sweeps publish more often
      const algo::PageRankResult r = pagerank_distributed(g, m.topology, opt);
      const std::vector<double> expected =
          algo::pagerank_reference(g, opt.damping, 1e-12, 500);
      bool ok = true;
      for (std::size_t i = 0; i < expected.size(); ++i)
        if (std::abs(r.ranks[i] - expected[i]) > 1e-5) ok = false;
      int rounds = 0;
      for (int x : r.rounds) rounds = std::max(rounds, x);
      const Cost c = r.run.total_cost(r.placement, m.params, m.energy);
      ga.add_row({std::string("pagerank"), std::string(keyword(comm)),
                  static_cast<long long>(rounds),
                  std::string(ok ? "yes" : "NO"), c.time, c.energy});
    }
  }
  ga.print(std::cout);

  // ---- replicated DB: the paper's own server use cases -----------------------
  report::print_section(std::cout,
                        "X1e: replicated database (the paper's server quadrants)");
  report::Table db("8 servers x 1000 ops, 64 keys",
                   {"mode", "quadrant", "hot", "consistent", "log kappa",
                    "msgs routed", "T model", "E model"});
  db.set_precision(0);
  for (const algo::DbMode mode : {algo::DbMode::SharedLog, algo::DbMode::Sharded}) {
    for (double hot : {0.0, 1.0}) {
      algo::DbWorkload w;
      w.servers = 8;
      w.ops_per_server = 1000;
      w.hot_fraction = hot;
      const algo::DbRunResult r = run_replicated_db(m.topology, w, mode);
      const Cost c = r.run.total_cost(r.placement, m.params, m.energy);
      db.add_row({std::string(to_string(mode)),
                  std::string(mode == algo::DbMode::SharedLog
                                  ? "async_exec+synch_comm"
                                  : "async_exec+async_comm"),
                  hot, std::string(r.consistent ? "yes" : "NO"),
                  r.worst_serialization, r.messages_routed, c.time, c.energy});
    }
  }
  db.print(std::cout);

  // ---- stencil: sparse halo exchange vs dense all-to-all ----------------------
  report::print_section(std::cout,
                        "X1g: halo-exchange stencil (O(1) msgs/round/process)");
  report::Table st("1-D heat stencil, 64 cells x 200 steps",
                   {"p", "correct", "msgs/process/round", "T model", "E model"});
  st.set_precision(0);
  for (int p : {1, 2, 4, 8}) {
    algo::StencilProblem prob;
    prob.cells = 64;
    algo::StencilOptions opt;
    opt.processes = p;
    opt.steps = 200;
    const algo::StencilResult r = algo::stencil_distributed(prob, m.topology, opt);
    const std::vector<double> expected =
        algo::stencil_sequential(prob, opt.steps);
    bool ok = r.temperature.size() == expected.size();
    for (std::size_t i = 0; ok && i < expected.size(); ++i)
      ok = r.temperature[i] == expected[i];
    const Cost c = r.run.total_cost(r.placement, m.params, m.energy);
    const CostCounters t = r.run.total_counters();
    st.add_row({static_cast<long long>(p), std::string(ok ? "yes" : "NO"),
                p > 1 ? (t.m_s_a + t.m_s_e) / (p * opt.steps) : 0.0, c.time,
                c.energy});
  }
  st.print(std::cout);
  std::cout << "\nReading: unlike Jacobi's all-to-all (p-1 messages per\n"
               "process per round), the stencil's halo exchange stays at ~2\n"
               "messages regardless of p — T keeps dropping as processes are\n"
               "added because communication does not grow back.\n";

  // ---- solver selection: Jacobi vs red-black Gauss-Seidel ---------------------
  report::print_section(std::cout,
                        "X1f: solver selection — Jacobi vs two-phase Gauss-Seidel");
  report::Table solvers("Same system, tolerance 1e-10, 4 processes",
                        {"solver", "iterations", "T model", "E model", "EDP"});
  solvers.set_precision(0);
  for (int n : {12, 24}) {
    const algo::LinearSystem sys = algo::make_diagonally_dominant_system(n, 777);
    {
      algo::JacobiOptions opt;
      opt.processes = 4;
      opt.tolerance = 1e-10;
      const auto r = algo::jacobi_distributed(sys, m.topology, opt);
      const Cost c = r.run.total_cost(r.placement, m.params, m.energy);
      solvers.add_row({std::string("jacobi n=") + std::to_string(n),
                       static_cast<long long>(r.solution.iterations), c.time,
                       c.energy, metric_value(c, Objective::EDP)});
    }
    {
      algo::GaussSeidelOptions opt;
      opt.processes = 4;
      opt.tolerance = 1e-10;
      const auto r = algo::gauss_seidel_distributed(sys, m.topology, opt);
      const Cost c = r.run.total_cost(r.placement, m.params, m.energy);
      solvers.add_row({std::string("gauss-seidel n=") + std::to_string(n),
                       static_cast<long long>(r.iterations), c.time, c.energy,
                       metric_value(c, Objective::EDP)});
    }
  }
  solvers.print(std::cout);

  std::cout <<
      "\nReading: every extension checks out against its sequential\n"
      "reference; the tree/doubling reductions replace Theta(p) hot-spot\n"
      "traffic with Theta(log p) rounds (visible in T and kappa); the async\n"
      "variants trade extra sweeps for barrier-free progress, as in the\n"
      "paper's APSP example.\n";
  return 0;
}
