/// E7 — Section 2.1's selection metrics: D, PDP, EDP, ED²P. "Algorithms
/// should be selected according to one of these four metrics ... according to
/// the environment where they are deployed."
///
/// The bench runs three implementations of the same job (the Table-1
/// histogram quadrants serve as algorithm variants) on three machine presets
/// (embedded / desktop / server) and shows which variant each metric selects
/// — different metrics genuinely pick different algorithms, which is the
/// point of carrying power in the model.

#include "algo/histogram.hpp"
#include "core/core.hpp"
#include "report/table.hpp"

#include <iostream>
#include <vector>

int main() {
  using namespace stamp;

  report::print_section(std::cout, "E7: D / PDP / EDP / ED2P selection");

  struct Variant {
    const char* name;
    ExecMode exec;
    CommMode comm;
  };
  const std::vector<Variant> variants{
      {"trans/synch", ExecMode::Transactional, CommMode::Synchronous},
      {"async/synch (serialized)", ExecMode::Asynchronous, CommMode::Synchronous},
      {"trans/async", ExecMode::Transactional, CommMode::Asynchronous},
      {"async/async (privatized)", ExecMode::Asynchronous, CommMode::Asynchronous},
  };

  for (const MachineModel& machine :
       {presets::embedded(), presets::desktop(), presets::server()}) {
    algo::HistogramWorkload w;
    w.processes = std::min(8, machine.topology.total_threads());
    w.bins = 8;
    w.items_per_process = 1500;
    w.rounds = 6;

    std::vector<Cost> costs;
    report::Table table("Machine preset: " + machine.name,
                        {"variant", "D", "PDP", "EDP", "ED2P"});
    table.set_precision(0);
    for (const Variant& v : variants) {
      const algo::HistogramRunResult r =
          algo::run_histogram(machine.topology, w, v.exec, v.comm);
      const Cost c = r.run.total_cost(r.placement, machine.params, machine.energy);
      costs.push_back(c);
      const Metrics mtr = metrics_from(c);
      table.add_row({std::string(v.name), mtr.D, mtr.PDP, mtr.EDP, mtr.ED2P});
    }
    table.print(std::cout);

    std::cout << "  selected:";
    for (const Objective o :
         {Objective::D, Objective::PDP, Objective::EDP, Objective::ED2P}) {
      const int best = select_best(costs, o);
      std::cout << "  " << to_string(o) << " -> "
                << variants[static_cast<std::size_t>(best)].name;
    }
    std::cout << "\n\n";
  }

  std::cout <<
      "Note: the privatized variant Pareto-dominates this workload (fewer\n"
      "operations, same work), so all four metrics agree. The metrics only\n"
      "disagree when time and energy genuinely trade off — as with DVFS\n"
      "operating points below.\n";

  // -- E7b: DVFS operating points: the classic D-vs-E trade-off. --------------
  report::print_section(std::cout,
                        "E7b: operating-point selection (time-energy trade)");
  {
    // A fixed compute job at frequency f: D ~ 1/f, E ~ f^2 (dynamic), plus a
    // small frequency-independent leakage charge that penalizes dawdling.
    const double work = 10'000;
    const double leak_power = 0.05;
    std::vector<Cost> points;
    report::Table dvfs("10k-op job across operating points (leakage 0.05)",
                       {"frequency", "D", "E", "P", "D pick", "PDP pick",
                        "EDP pick", "ED2P pick"});
    dvfs.set_precision(2);
    std::vector<double> freqs{0.25, 0.5, 0.75, 1.0, 1.25, 1.5};
    for (double f : freqs) {
      const double D = work / f;
      const double E = work * f * f + leak_power * D;
      points.push_back(Cost{D, E});
    }
    for (std::size_t i = 0; i < freqs.size(); ++i) {
      auto mark = [&](Objective o) {
        return std::string(select_best(points, o) == static_cast<int>(i) ? "<--"
                                                                         : "");
      };
      dvfs.add_row({freqs[i], points[i].time, points[i].energy,
                    points[i].power(), mark(Objective::D), mark(Objective::PDP),
                    mark(Objective::EDP), mark(Objective::ED2P)});
    }
    dvfs.print(std::cout);
    std::cout << "\nReading: D picks the highest frequency, PDP (= energy)\n"
                 "the lowest that amortizes leakage, EDP and ED2P interior\n"
                 "points biased progressively toward speed — four different\n"
                 "operating points from four deployment environments.\n";
  }

  // A synthetic pair that flips the decision: fast-and-hungry vs
  // slow-and-frugal — shows the four metrics genuinely disagree.
  report::print_section(std::cout, "E7c: the metrics disagree by design");
  const std::vector<Cost> pair{{10, 1000}, {40, 100}};
  report::Table flip("Algorithm A (fast, hungry) vs B (slow, frugal)",
                     {"metric", "A", "B", "winner"});
  flip.set_precision(0);
  for (const Objective o :
       {Objective::D, Objective::PDP, Objective::EDP, Objective::ED2P}) {
    const double a = metric_value(pair[0], o);
    const double b = metric_value(pair[1], o);
    flip.add_row({std::string(to_string(o)), a, b,
                  std::string(select_best(pair, o) == 0 ? "A" : "B")});
  }
  flip.print(std::cout);
  std::cout << "\nReading: D and ED2P pick the fast algorithm (server bias),\n"
               "PDP and EDP pick the frugal one (energy-limited bias) — the\n"
               "deployment environment decides, exactly as Section 2.1 says.\n";
  return 0;
}
