/// P1 — google-benchmark microbenchmarks of the substrates the STAMP runtime
/// is built from: mailbox send/receive, barriers, STM commit paths, queued
/// cells, the SWMR matrix, the cost-model evaluators, and the machine
/// simulator's replay loop.

#include "core/core.hpp"
#include "machine/simulator.hpp"
#include "msg/mailbox.hpp"
#include "runtime/barrier.hpp"
#include "shm/shared_region.hpp"
#include "shm/swmr_matrix.hpp"
#include "stm/stm.hpp"
#include "msg/collectives.hpp"
#include "runtime/quiescence.hpp"
#include "report/table.hpp"

#include <benchmark/benchmark.h>

#include <sstream>
#include <thread>

// run_distributed is deprecated in favor of Evaluator::run; this file drives
// the layer under test through the executor directly on purpose (it sits
// below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace {

using namespace stamp;

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

void BM_MailboxSendReceive(benchmark::State& state) {
  msg::Mailbox<int> box;
  for (auto _ : state) {
    box.send(42);
    benchmark::DoNotOptimize(box.receive());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MailboxSendReceive);

void BM_MailboxThroughputMPMC(benchmark::State& state) {
  const int producers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    msg::Mailbox<int> box;
    std::vector<std::jthread> threads;
    constexpr int kPerProducer = 1000;
    for (int p = 0; p < producers; ++p)
      threads.emplace_back([&box] {
        for (int i = 0; i < kPerProducer; ++i) box.send(i);
      });
    long long sum = 0;
    for (int i = 0; i < producers * kPerProducer; ++i) sum += box.receive();
    benchmark::DoNotOptimize(sum);
    threads.clear();
    state.SetItemsProcessed(state.items_processed() + producers * kPerProducer);
  }
}
BENCHMARK(BM_MailboxThroughputMPMC)->Arg(1)->Arg(2)->Arg(4);

void BM_PhaseBarrierSingle(benchmark::State& state) {
  runtime::PhaseBarrier barrier(1);
  for (auto _ : state) barrier.arrive_and_wait();
}
BENCHMARK(BM_PhaseBarrierSingle);

void BM_SenseBarrierSingle(benchmark::State& state) {
  runtime::SenseBarrier barrier(1);
  for (auto _ : state) barrier.arrive_and_wait();
}
BENCHMARK(BM_SenseBarrierSingle);

void BM_StmReadOnlyTxn(benchmark::State& state) {
  std::atomic<std::uint64_t> clock{0};
  stm::TVar<long> v(7);
  for (auto _ : state) {
    stm::Transaction tx(clock);
    benchmark::DoNotOptimize(tx.read(v));
    tx.commit();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StmReadOnlyTxn);

void BM_StmReadWriteTxn(benchmark::State& state) {
  std::atomic<std::uint64_t> clock{0};
  stm::TVar<long> v(0);
  for (auto _ : state) {
    stm::Transaction tx(clock);
    tx.write(v, tx.read(v) + 1);
    tx.commit();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StmReadWriteTxn);

void BM_StmWriteSetSize(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  std::atomic<std::uint64_t> clock{0};
  std::vector<std::unique_ptr<stm::TVar<long>>> tvars;
  for (int i = 0; i < vars; ++i)
    tvars.push_back(std::make_unique<stm::TVar<long>>(0));
  for (auto _ : state) {
    stm::Transaction tx(clock);
    for (auto& v : tvars) tx.write(*v, tx.read(*v) + 1);
    tx.commit();
  }
  state.SetItemsProcessed(state.iterations() * vars);
}
BENCHMARK(BM_StmWriteSetSize)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_VersionedLockCycle(benchmark::State& state) {
  stm::VersionedLock lock;
  std::uint64_t version = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lock.try_lock(version));
    lock.unlock_to_version(++version);
  }
}
BENCHMARK(BM_VersionedLockCycle);

void BM_CostModelSRound(benchmark::State& state) {
  const CostCounters c = analysis::jacobi_round_counters(64);
  const MachineModel m = presets::niagara();
  const ProcessCounts pc{.intra = 3, .inter = 60};
  for (auto _ : state) {
    benchmark::DoNotOptimize(s_round_cost(c, m.params, m.energy, pc));
  }
}
BENCHMARK(BM_CostModelSRound);

void BM_PlacementExact(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  MachineModel m = presets::niagara();
  m.envelope = PowerEnvelope{};
  ProcessProfile prof;
  prof.c_fp = 100;
  prof.m_s = prof.m_r = 4;
  prof.units = 10;
  const std::vector<ProcessProfile> profiles(static_cast<std::size_t>(n), prof);
  for (auto _ : state) {
    benchmark::DoNotOptimize(place_exact_uniform(profiles, m, Objective::D));
  }
}
BENCHMARK(BM_PlacementExact)->Arg(8)->Arg(16)->Arg(32);

void BM_SimulatorReplayAllToAll(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const MachineModel m = presets::niagara();
  const runtime::PlacementMap pm =
      runtime::PlacementMap::one_per_processor(m.topology, n);
  std::vector<machine::ProcessTrace> traces(
      static_cast<std::size_t>(n),
      {machine::TraceOp{machine::TraceOp::Kind::Compute, 100, true, 50},
       machine::TraceOp{machine::TraceOp::Kind::MsgSend,
                        static_cast<double>(n - 1), false, 0},
       machine::TraceOp{machine::TraceOp::Kind::MsgRecv,
                        static_cast<double>(n - 1), false, 0}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine::replay(traces, pm, m));
  }
}
BENCHMARK(BM_SimulatorReplayAllToAll)->Arg(2)->Arg(4)->Arg(8);

void BM_SwmrMatrixReadRow(benchmark::State& state) {
  const int n = 32;
  shm::SwmrMatrix<double> matrix(n, n, 1.0);
  const runtime::PlacementMap pm = runtime::PlacementMap::fill_first(kTopo, 1);
  runtime::Recorder rec;
  runtime::Context ctx(0, rec, pm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matrix.read_row(ctx, 0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SwmrMatrixReadRow);

void BM_QueuedCellUpdate(benchmark::State& state) {
  shm::QueuedCell<long> cell(0);
  const runtime::PlacementMap pm = runtime::PlacementMap::fill_first(kTopo, 1);
  runtime::Recorder rec;
  runtime::Context ctx(0, rec, pm);
  for (auto _ : state) {
    cell.update(ctx, [](long& v) { ++v; });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueuedCellUpdate);

void BM_CollectiveAllReduce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    msg::Communicator<long long> comm(n, CommMode::Asynchronous);
    std::atomic<long long> sink{0};
    const auto run = runtime::run_distributed(
        kTopo, n, Distribution::IntraProc, [&](runtime::Context& ctx) {
          sink += msg::all_reduce_doubling(
              ctx, comm, static_cast<long long>(ctx.id()),
              [](long long a, long long b) { return a + b; });
        });
    benchmark::DoNotOptimize(sink.load());
    (void)run;
  }
}
BENCHMARK(BM_CollectiveAllReduce)->Arg(2)->Arg(4)->Arg(8);

void BM_QuiescenceSinglePartyRound(benchmark::State& state) {
  for (auto _ : state) {
    runtime::QuiescenceDetector qd(1);
    benchmark::DoNotOptimize(
        runtime::run_to_quiescence(qd, 0, [] { return false; }, 8));
  }
}
BENCHMARK(BM_QuiescenceSinglePartyRound);

void BM_JsonTableExport(benchmark::State& state) {
  report::Table t("bench", {"a", "b", "c"});
  for (int i = 0; i < 64; ++i)
    t.add_row({report::Cell{static_cast<long long>(i)},
               report::Cell{i * 0.5},
               report::Cell{std::string("row")}});
  for (auto _ : state) {
    std::ostringstream os;
    t.write_json(os);
    benchmark::DoNotOptimize(os.str());
  }
}
BENCHMARK(BM_JsonTableExport);

}  // namespace

BENCHMARK_MAIN();
