/// X2 — crossover analysis: where the winner flips.
///
/// Every comparison the model supports has a crossover point, and locating it
/// is the practical payoff of a closed-form model (no hardware sweep needed).
/// Four of them:
///   1. equal-power core count where speedup passes 2 (the Section 2.1 claim)
///   2. serial fraction at which more cores stop paying at equal power
///   3. communication volume at which packing (intra_proc) overtakes
///      spreading (inter_proc) — below it the packed group's extra latency
///      bracket loses; above it the cheap intra bandwidth wins
///   4. message volume where BSP's barrier amortizes against LogP overheads

#include "core/core.hpp"
#include "models/models.hpp"
#include "models/speedup.hpp"
#include "report/table.hpp"

#include <cmath>
#include <iostream>

int main() {
  using namespace stamp;

  report::print_section(std::cout, "X2: where the crossovers fall");

  // ---- 1. equal-power speedup > 2 ---------------------------------------------
  {
    const CostFn deficit = [](long long p) {
      return 2.0 - models::equal_power_amdahl_speedup(0.0, static_cast<int>(p));
    };
    const CostFn zero = [](long long) { return 0.0; };
    const auto cores = first_win(deficit, zero, 1, 64);
    std::cout << "1. Cores needed for equal-power speedup > 2 (s = 0): "
              << (cores ? std::to_string(*cores) : "never")
              << "   (the paper uses 8; 3 already suffices)\n";
  }

  // ---- 2. optimal equal-power core count vs serial fraction -------------------
  report::Table amdahl("2. Equal-power optimum vs serial fraction (max 512 cores)",
                       {"serial fraction", "best cores", "speedup at best"});
  amdahl.set_precision(3);
  for (double s : {0.0, 0.01, 0.05, 0.1, 0.25, 0.5}) {
    const int best = models::optimal_equal_power_cores(s, 512);
    amdahl.add_row({s, static_cast<long long>(best),
                    models::equal_power_amdahl_speedup(s, best)});
  }
  amdahl.print(std::cout);
  std::cout << "Reading: even 5% serial work caps the power-optimal design at\n"
               "a few dozen cores — the flip side of the power-wall argument.\n\n";

  // ---- 3. placement crossover in communication volume -------------------------
  {
    MachineModel m = presets::niagara();
    m.envelope = PowerEnvelope{};
    // A synthetic process: fixed compute, sweep the communication volume.
    const double compute = 400;
    auto profile_for = [&](long long comm) {
      ProcessProfile p;
      p.c_fp = compute;
      p.m_s = p.m_r = static_cast<double>(comm);
      p.units = 10;
      return p;
    };
    auto cost_under = [&](Distribution d, long long comm) {
      const std::vector<ProcessProfile> profiles(8, profile_for(comm));
      const PlacementResult r =
          d == Distribution::IntraProc
              ? place_fill_first(profiles, m, Objective::D)
              : place_round_robin(profiles, m, Objective::D);
      return r.eval.objective;
    };
    const CostFn intra = [&](long long c) {
      return cost_under(Distribution::IntraProc, c);
    };
    const CostFn inter = [&](long long c) {
      return cost_under(Distribution::InterProc, c);
    };

    report::Table table("3. 8 processes, compute 400/unit, packed (2 cores) vs "
                        "spread (8 cores)",
                        {"msgs/unit", "T packed", "T spread", "winner"});
    table.set_precision(0);
    for (long long c : {1LL, 5LL, 20LL, 100LL, 500LL}) {
      const double ti = intra(c);
      const double te = inter(c);
      table.add_row({c, ti, te,
                     std::string(ti < te   ? "packed"
                                 : te < ti ? "spread"
                                           : "tie")});
    }
    table.print(std::cout);
    const auto c = find_crossover(inter, intra, 1, 2000);
    if (c) {
      std::cout << "Crossover at " << c->at
                << " msgs/unit: below it the spread placement wins (a packed\n"
                   "group still has remote peers, so it pays BOTH latency\n"
                   "brackets, L_a + L_e, per round); above it the packed\n"
                   "group's cheap intra bandwidth (g_mp_a < g_mp_e) dominates.\n"
                   "The keyword alone does not decide — the model does.\n\n";
    } else {
      std::cout << "No crossover in range.\n\n";
    }
  }

  // ---- 4. BSP vs LogP ----------------------------------------------------------
  {
    const models::BspParams bsp{.g = 4, .l = 50};
    const models::LogPParams logp{.L = 40, .o = 3, .g = 4};
    const CostFn bsp_cost = [&](long long msgs) {
      models::RoundSpec r;
      r.msgs_out = r.msgs_in = static_cast<double>(msgs);
      return models::bsp_round_time(r, bsp);
    };
    const CostFn logp_cost = [&](long long msgs) {
      models::RoundSpec r;
      r.msgs_out = r.msgs_in = static_cast<double>(msgs);
      return models::logp_round_time(r, logp);
    };
    const auto c = find_crossover(logp_cost, bsp_cost, 1, 10'000);
    if (c) {
      std::cout << "4. BSP vs LogP: LogP wins light rounds (no barrier), BSP\n"
                << "   amortizes its l = " << bsp.l << " barrier at "
                << c->at << " messages/round (LogP " << c->f_after << " vs BSP "
                << c->g_after << ").\n";
    }
  }

  std::cout << "\nAll four crossovers computed purely from the closed forms —\n"
               "no thread, no simulator, no hardware.\n";
  return 0;
}
