/// E8 — Section 2.2: STAMP against the models it is positioned against
/// (PRAM, BSP, LogP, LogGP, QSM).
///
/// All six models price the same per-round work (Jacobi exchange, APSP
/// shared-memory sweep, tree reduction). The bench reproduces the paper's
/// critique as numbers:
///   * PRAM ignores communication — its time barely moves as messages grow
///   * BSP/QSM charge bulk synchrony every round — they over-price
///     barrier-free (async_comm) algorithms
///   * none of them has an energy column; STAMP's is printed alongside.

#include "core/core.hpp"
#include "models/models.hpp"
#include "report/table.hpp"

#include <iostream>

int main() {
  using namespace stamp;
  using namespace stamp::models;

  report::print_section(std::cout, "E8: STAMP vs PRAM / BSP / LogP / LogGP / QSM");

  // Shared parameter story: bandwidth charge 4, latency ~40-50 across models.
  const BspParams bsp{.g = 4, .l = 50};
  const LogPParams logp{.L = 40, .o = 2, .g = 4};
  const LogGPParams loggp{.L = 40, .o = 2, .g = 4, .G = 0.5, .words_per_message = 1};
  const QsmParams qsm{.g = 4};
  MachineParams stamp_mp;
  stamp_mp.ell_a = 2;
  stamp_mp.ell_e = 40;
  stamp_mp.g_sh_a = 0.5;
  stamp_mp.g_sh_e = 4;
  stamp_mp.L_a = 5;
  stamp_mp.L_e = 40;
  stamp_mp.g_mp_a = 1;
  stamp_mp.g_mp_e = 4;
  const EnergyParams energy{};

  auto stamp_jacobi_time = [&](int n) {
    const CostCounters c = analysis::jacobi_round_counters(n);
    ProcessCounts pc;
    pc.inter = n - 1;
    return s_round_time(c, stamp_mp, pc);
  };
  auto stamp_jacobi_energy = [&](int n) {
    return s_round_energy(analysis::jacobi_round_counters(n), energy);
  };

  report::Table jac("Jacobi S-round (per process, inter-processor placement)",
                    {"n", "PRAM", "BSP", "LogP", "LogGP", "QSM", "STAMP T",
                     "STAMP E"});
  jac.set_precision(0);
  for (int n : {4, 16, 64, 256}) {
    const RoundSpec r = jacobi_round(n);
    jac.add_row({static_cast<long long>(n), pram_round_time(r),
                 bsp_round_time(r, bsp), logp_round_time(r, logp),
                 loggp_round_time(r, loggp), qsm_round_time(r, qsm),
                 stamp_jacobi_time(n), stamp_jacobi_energy(n)});
  }
  jac.print(std::cout);

  auto stamp_apsp = [&](int n) {
    const CostCounters c = analysis::apsp_round_counters(n);
    ProcessCounts pc;
    pc.inter = n - 1;
    return s_round_time(c, stamp_mp, pc);
  };
  report::Table apsp("APSP S-round (shared-memory, single-writer multi-reader)",
                     {"n", "PRAM", "BSP", "LogP", "QSM", "STAMP T"});
  apsp.set_precision(0);
  for (int n : {4, 8, 16, 32}) {
    const RoundSpec r = apsp_round(n);
    apsp.add_row({static_cast<long long>(n), pram_round_time(r),
                  bsp_round_time(r, bsp), logp_round_time(r, logp),
                  qsm_round_time(r, qsm), stamp_apsp(n)});
  }
  apsp.print(std::cout);

  // The over-synchrony critique: a barrier-free round (async_comm) of pure
  // local work plus one message each way.
  report::Table critique("Over-synchrony: 100 barrier-free rounds, 1 msg/round",
                         {"model", "total time", "why"});
  critique.set_precision(0);
  const RoundSpec light = reduction_step(10);
  critique.add_row({std::string("PRAM"), pram_time(light, 100),
                    std::string("communication free (underestimates)")});
  critique.add_row({std::string("BSP"), bsp_time(light, 100, bsp),
                    std::string("pays l = 50 barrier x 100 rounds")});
  critique.add_row({std::string("LogP"), logp_time(light, 100, logp),
                    std::string("no forced barrier")});
  critique.add_row({std::string("QSM"), qsm_time(light, 100, qsm),
                    std::string("phase max, still bulk-synchronous")});
  {
    CostCounters c;
    c.c_fp = 10;
    c.m_s_e = 1;
    c.m_r_e = 1;
    ProcessCounts pc;
    pc.inter = 1;
    critique.add_row({std::string("STAMP (async_comm)"),
                      100 * s_round_time(c, stamp_mp, pc),
                      std::string("latency+bandwidth, no barrier term")});
  }
  critique.print(std::cout);

  std::cout <<
      "\nReading: PRAM stays nearly flat as communication grows (its\n"
      "critique); BSP is dominated by the 50-unit barrier on light rounds\n"
      "(the over-synchronization critique of Section 2.2); STAMP tracks\n"
      "LogP-like costs while adding the energy column no prior model has.\n";
  return 0;
}
