/// E9 — the paper's stated purpose and future work: "a systematic way of
/// optimizing the overall performance of the multi-threaded machine based on
/// the complexity estimates."
///
/// The placement optimizer assigns STAMP processes to processors under the
/// hierarchical power envelope. Ablation: naive fill-first and round-robin
/// baselines vs the greedy power-aware packer vs exact search, across
/// communication-heavy and compute-heavy profiles and tightening envelopes.

#include "core/core.hpp"
#include "report/table.hpp"

#include <iostream>
#include <vector>

int main() {
  using namespace stamp;

  report::print_section(std::cout, "E9: power-aware thread placement");

  ProcessProfile chatty;  // communication-dominated: wants co-location
  chatty.c_fp = 50;
  chatty.c_int = 10;
  chatty.m_s = 8;
  chatty.m_r = 8;
  chatty.units = 100;

  ProcessProfile cruncher;  // compute-dominated: wants power spreading
  cruncher.c_fp = 400;
  cruncher.c_int = 50;
  cruncher.d_r = 4;
  cruncher.d_w = 2;
  cruncher.units = 100;

  struct Scenario {
    const char* name;
    ProcessProfile profile;
    int processes;
  };

  for (const Scenario& sc :
       {Scenario{"communication-heavy (8 procs)", chatty, 8},
        Scenario{"compute-heavy (8 procs)", cruncher, 8},
        Scenario{"communication-heavy (16 procs)", chatty, 16}}) {
    MachineModel m = presets::niagara();
    m.envelope = PowerEnvelope{};  // start unconstrained
    const std::vector<ProcessProfile> profiles(
        static_cast<std::size_t>(sc.processes), sc.profile);

    // Establish the solo power to scale the envelope meaningfully.
    const PlacementResult solo = place_round_robin(profiles, m, Objective::D);
    const double solo_power = solo.eval.process_costs[0].power();

    report::Table table(std::string("Scenario: ") + sc.name +
                            "  (solo power/process = " +
                            std::to_string(solo_power).substr(0, 5) + ")",
                        {"cap (x solo power)", "strategy", "objective D",
                         "cores used", "feasible", "examined"});
    table.set_precision(0);

    for (double cap_scale : {0.0, 4.5, 2.5, 1.5}) {
      m.envelope.per_processor = cap_scale * solo_power;
      for (const auto& [label, result] :
           {std::pair<const char*, PlacementResult>{
                "fill-first", place_fill_first(profiles, m, Objective::D)},
            {"round-robin", place_round_robin(profiles, m, Objective::D)},
            {"greedy", place_greedy(profiles, m, Objective::D)},
            {"exact", place_exact_uniform(profiles, m, Objective::D)}}) {
        int used = 0;
        for (int p = 0; p < m.topology.total_processors(); ++p)
          used += result.eval.placement.group_size(p) > 0 ? 1 : 0;
        table.add_row({cap_scale == 0 ? std::string("none")
                                      : std::to_string(cap_scale),
                       std::string(label), result.eval.objective,
                       static_cast<long long>(used),
                       std::string(result.eval.feasible ? "yes" : "NO"),
                       result.placements_examined});
      }
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout <<
      "Reading: with no cap, fill-first (max co-location) is optimal for\n"
      "communication-heavy processes and the exact search confirms it. As\n"
      "the per-core cap tightens, fill-first turns infeasible; the greedy\n"
      "packer spills processes to more cores (paying inter-processor\n"
      "communication) and matches the exact optimum's feasibility — the\n"
      "intra/inter trade-off of Section 3 made mechanical.\n";
  return 0;
}
