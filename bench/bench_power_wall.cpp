/// E6 — Section 2.1's power-wall arithmetic: "1 processor core clocked at
/// frequency f consumes the same dynamic power as 8 cores, each clocked at
/// f/2. Thus if we can get a speedup of more than 2 with the 8 cores, we will
/// get a better performance with the same power."
///
/// The bench reproduces the argument three ways: the closed-form f^3 algebra,
/// an equal-power frequency sweep over core counts, and a machine-simulator
/// run of a perfectly parallel workload under DVFS.

#include "core/core.hpp"
#include "machine/power.hpp"
#include "machine/simulator.hpp"
#include "report/table.hpp"

#include <iostream>

int main() {
  using namespace stamp;
  using machine::PowerWallPoint;

  report::print_section(std::cout, "E6: the power wall (Section 2.1)");

  // ---- the paper's 8-cores-at-f/2 example ------------------------------------
  const PowerWallPoint one{.cores = 1, .frequency = 1.0};
  const PowerWallPoint eight{.cores = 8, .frequency = 0.5};
  std::cout << "1 core @ f      : power " << one.total_power() << "\n"
            << "8 cores @ f/2   : power " << eight.total_power()
            << "   (equal, as claimed)\n"
            << "Perfect-parallel speedup of the 8-core config: "
            << one.parallel_time(1e6) / eight.parallel_time(1e6)
            << "x  (> 2, so better performance at the same power)\n";

  // ---- equal-power sweep ------------------------------------------------------
  report::Table sweep("Equal-power configurations (f chosen so cores * f^3 = 1)",
                      {"cores", "frequency", "total power", "speedup eff=1.0",
                       "speedup eff=0.5", "energy ratio eff=1.0"});
  sweep.set_precision(3);
  const double work = 1e6;
  for (int cores : {1, 2, 4, 8, 16, 32, 64}) {
    const double f = machine::equal_power_frequency(cores);
    const PowerWallPoint p{.cores = cores, .frequency = f};
    sweep.add_row({static_cast<long long>(cores), f, p.total_power(),
                   machine::equal_power_speedup(cores),
                   machine::equal_power_speedup(cores, 0.5),
                   p.energy(work) / one.energy(work)});
  }
  sweep.print(std::cout);
  std::cout << "\nReading: speedup at equal power is cores^(2/3); the\n"
               "crossover 'speedup > 2' falls between 2 and 4 cores\n"
               "(2^(3/2) ~ 2.83). Energy for fixed work drops as cores^(-2/3).\n";

  // ---- crossover with imperfect parallel efficiency ---------------------------
  report::Table eff("Efficiency needed for the 8-core config to beat 1 core 2x",
                    {"efficiency", "speedup (8 cores, f=1/2)", "beats 2x"});
  eff.set_precision(3);
  for (double efficiency : {1.0, 0.75, 0.5, 0.25, 0.1}) {
    const double speedup = machine::equal_power_speedup(8, efficiency);
    eff.add_row({efficiency, speedup, std::string(speedup > 2 ? "yes" : "no")});
  }
  eff.print(std::cout);

  // ---- machine-simulator confirmation ----------------------------------------
  report::Table sim_table("Simulator: 8192 ops perfectly parallel, equal power",
                          {"cores", "frequency", "makespan", "energy",
                           "avg power"});
  sim_table.set_precision(3);
  MachineModel m = presets::niagara();
  m.envelope = PowerEnvelope{};
  for (int cores : {1, 2, 4, 8}) {
    const double f = machine::equal_power_frequency(cores);
    const runtime::PlacementMap pm =
        runtime::PlacementMap::one_per_processor(m.topology, cores);
    const double ops = 8192.0 / cores;
    std::vector<machine::ProcessTrace> traces(
        static_cast<std::size_t>(cores),
        {machine::TraceOp{machine::TraceOp::Kind::Compute, ops, true, 0}});
    machine::SimConfig cfg;
    cfg.operating_points.assign(
        static_cast<std::size_t>(m.topology.total_processors()),
        machine::OperatingPoint{.frequency = f});
    const machine::SimResult r = machine::replay(traces, pm, m, cfg);
    sim_table.add_row({static_cast<long long>(cores), f, r.makespan, r.energy,
                       r.power()});
  }
  sim_table.print(std::cout);
  std::cout << "\nReading: average power stays ~constant while makespan falls\n"
               "as cores^(-2/3) — the simulator reproduces the closed form.\n";
  return 0;
}
