/// E4 — Section 4's airline-reservation example: `reserve` with three
/// independent leg subtransactions [trans_exec, async_comm] and the paper's
/// partial-commit decision procedure.
///
/// The bench compares the paper's Partial policy against AllOrNothing under
/// increasing seat scarcity: the flexibility async_comm + optimistic
/// execution buys shows up as higher booking yield, never as overbooking.

#include "algo/airline.hpp"
#include "core/core.hpp"
#include "report/table.hpp"

#include <iostream>

int main() {
  using namespace stamp;

  const MachineModel machine = presets::niagara();
  report::print_section(
      std::cout, "E4: airline reserve [inter_proc, trans_exec, async_comm]");

  report::Table table("Partial vs all-or-nothing under scarcity "
                      "(8 processes x 800 reservations, 12 legs)",
                      {"seats/leg", "policy", "succeeded", "failed",
                       "legs booked", "yield/att", "overbooked", "aborts"});
  table.set_precision(3);

  for (int seats : {400, 200, 100, 50}) {
    for (const algo::ReservePolicy policy :
         {algo::ReservePolicy::Partial, algo::ReservePolicy::AllOrNothing}) {
      algo::ReservationWorkload w;
      w.processes = 8;
      w.reservations_per_process = 800;
      w.legs = 12;
      w.seats_per_leg = seats;
      w.policy = policy;
      const algo::ReservationRunResult r =
          algo::run_reservation_workload(machine.topology, w, "backoff");
      table.add_row(
          {static_cast<long long>(seats),
           std::string(policy == algo::ReservePolicy::Partial ? "partial"
                                                              : "all-or-nothing"),
           r.succeeded, r.failed, r.legs_booked,
           static_cast<double>(r.legs_booked) / static_cast<double>(r.attempted),
           r.overbooked_legs, static_cast<long long>(r.stm_aborts)});
    }
  }
  table.print(std::cout);

  std::cout <<
      "\nReading: as seats get scarce the partial policy books strictly more\n"
      "legs per attempt than all-or-nothing (committed legs stand — the\n"
      "paper's 'the committed leg is not full' branch), and no row ever\n"
      "overbooks: each leg decrement is an atomic trans_exec subtransaction.\n";

  // Model cost of the two distributions (the paper marks reserve inter_proc).
  report::Table dist("Distribution attribute (model cost, 4 processes — one\n"
                     "core can host all of them under intra_proc)",
                     {"distribution", "T model", "E model", "P model",
                      "per-core power max"});
  dist.set_precision(1);
  for (const Distribution d : {Distribution::IntraProc, Distribution::InterProc}) {
    algo::ReservationWorkload w;
    w.processes = 4;
    w.reservations_per_process = 500;
    w.legs = 12;
    w.seats_per_leg = 100;
    w.distribution = d;
    const algo::ReservationRunResult r =
        algo::run_reservation_workload(machine.topology, w, "backoff");
    const std::vector<Cost> costs =
        r.run.process_costs(r.placement, machine.params, machine.energy);
    const Cost total = r.run.total_cost(r.placement, machine.params, machine.energy);
    // Worst per-core power under this placement.
    std::vector<double> per_core(
        static_cast<std::size_t>(machine.topology.total_processors()), 0);
    for (int i = 0; i < static_cast<int>(costs.size()); ++i)
      per_core[static_cast<std::size_t>(r.placement.processor_of(i))] +=
          costs[static_cast<std::size_t>(i)].power();
    double worst = 0;
    for (double p : per_core) worst = std::max(worst, p);
    dist.add_row({std::string(keyword(d)), total.time, total.energy,
                  total.power(), worst});
  }
  dist.print(std::cout);
  std::cout <<
      "\nReading: inter_proc costs more time (L2-speed conflicts) but spreads\n"
      "power across cores — the per-core maximum drops, which is why the\n"
      "paper assigns reserve inter_proc when the envelope binds.\n";
  return 0;
}
