#pragma once
/// \file inject.hpp
/// \brief Shared parsing of `--inject SITE=PROB[,mag=M][,max=N][,key=K]`
///        specs for the tools that arm a `fault::FaultPlan` from the
///        command line (stamp_serve, stamp_chaos).
///
/// Errors come back as messages, never as silent no-ops: an unknown site
/// name lists every valid site, and an out-of-range probability says which
/// bound it violated — a chaos run that quietly armed nothing would defeat
/// the robustness gate it exists to drive.
///
/// Header-only like cli.hpp: the tools are single-file executables.

#include "fault/plan.hpp"

#include <limits>
#include <optional>
#include <sstream>
#include <string>

namespace stamp::tools {

/// Every valid fault site name, comma-separated — for error messages and
/// help text.
[[nodiscard]] inline std::string fault_site_names() {
  std::string names;
  for (std::size_t i = 0; i < stamp::fault::kFaultSiteCount; ++i) {
    if (i > 0) names += ", ";
    names += stamp::fault::site_name(static_cast<stamp::fault::FaultSite>(i));
  }
  return names;
}

/// Parse one `SITE=PROB[,mag=M][,max=N][,key=K]` spec into `plan`. Returns
/// an empty optional on success, or a human-readable error.
[[nodiscard]] inline std::optional<std::string> parse_inject_spec(
    const std::string& spec, stamp::fault::FaultPlan& plan) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos)
    return "expected SITE=PROB[,mag=M][,max=N][,key=K], got '" + spec + "'";
  const std::string site_name = spec.substr(0, eq);
  const auto site = stamp::fault::site_from_name(site_name);
  if (!site.has_value())
    return "unknown fault site '" + site_name +
           "' (valid sites: " + fault_site_names() + ")";
  double probability = 0;
  double magnitude = 0;
  // No max= means unlimited, mirroring FaultPlan::with — a 0 here would arm
  // the site with a zero injection budget, i.e. silently never fire.
  std::uint64_t max_per_key = std::numeric_limits<std::uint64_t>::max();
  std::int64_t only_key = -1;
  std::istringstream rest(spec.substr(eq + 1));
  std::string field;
  bool first = true;
  while (std::getline(rest, field, ',')) {
    try {
      if (first) {
        probability = std::stod(field);
        first = false;
      } else if (field.rfind("mag=", 0) == 0) {
        magnitude = std::stod(field.substr(4));
      } else if (field.rfind("max=", 0) == 0) {
        max_per_key = std::stoull(field.substr(4));
      } else if (field.rfind("key=", 0) == 0) {
        only_key = std::stoll(field.substr(4));
      } else {
        return "unknown field '" + field + "' in '" + spec +
               "' (want mag=, max=, or key=)";
      }
    } catch (const std::exception&) {
      return "bad number in field '" + field + "' of '" + spec + "'";
    }
  }
  if (first) return "missing probability in '" + spec + "'";
  if (!(probability >= 0.0 && probability <= 1.0))
    return "probability " + std::to_string(probability) + " for site '" +
           site_name + "' is outside [0, 1]";
  if (magnitude < 0)
    return "magnitude " + std::to_string(magnitude) + " for site '" +
           site_name + "' is negative";
  plan.with(*site, probability, magnitude, max_per_key, only_key);
  return std::nullopt;
}

}  // namespace stamp::tools
