/// \file stamp_sweep.cpp
/// \brief CLI sweep runner: evaluate a parameter grid on the work-stealing
///        pool and emit the stable `stamp-sweep/v1` JSON artifact.
///
/// This is what CI (and scripts/run_all.sh) runs to produce the artifact the
/// regression gate compares against `sweeps/baseline.json`. The output is
/// byte-identical for any --threads value, so refreshing the baseline on a
/// different machine or core count is safe.
///
/// Usage:
///   stamp_sweep [--grid canonical|tiny] [--threads N] [--out FILE] [--stats]

#include "sweep/sweep.hpp"

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--grid canonical|tiny] [--threads N] [--out FILE] [--stats]\n"
               "  --grid     grid preset to evaluate (default: canonical)\n"
               "  --threads  pool width; 0 = hardware concurrency (default)\n"
               "  --out      output file (default: stdout)\n"
               "  --stats    print cache/steal statistics to stderr\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string grid = "canonical";
  std::string out_path;
  int threads = 0;
  bool stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--grid") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      grid = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      threads = std::atoi(v);
      if (threads < 0) return usage(argv[0]);
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      out_path = v;
    } else if (arg == "--stats") {
      stats = true;
    } else {
      return usage(argv[0]);
    }
  }

  stamp::sweep::SweepConfig cfg;
  if (grid == "canonical") {
    cfg = stamp::sweep::SweepConfig::canonical();
  } else if (grid == "tiny") {
    cfg = stamp::sweep::SweepConfig::tiny();
  } else {
    std::cerr << "unknown grid preset '" << grid << "'\n";
    return usage(argv[0]);
  }

  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
  }

  try {
    stamp::sweep::Pool pool(threads);
    const stamp::sweep::SweepResult result = stamp::sweep::run_sweep(cfg, pool);

    if (out_path.empty() || out_path == "-") {
      stamp::sweep::write_json(result, std::cout);
    } else {
      std::ofstream os(out_path, std::ios::binary);
      if (!os) {
        std::cerr << "cannot open '" << out_path << "' for writing\n";
        return 2;
      }
      stamp::sweep::write_json(result, os);
    }

    if (stats) {
      std::cerr << "sweep: " << result.records.size() << " points, "
                << threads << " threads, cache " << result.stats.cache_hits
                << " hits / " << result.stats.cache_misses << " misses, "
                << result.stats.pool_steals << " steals\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "stamp_sweep: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
