/// \file stamp_sweep.cpp
/// \brief CLI sweep runner: evaluate a parameter grid on the work-stealing
///        pool and emit the stable `stamp-sweep/v1` JSON artifact.
///
/// This is what CI (and scripts/run_all.sh) runs to produce the artifact the
/// regression gate compares against `sweeps/baseline.json`. The output is
/// byte-identical for any --threads value, so refreshing the baseline on a
/// different machine or core count is safe. Tracing (`--trace`) records the
/// sweep through the observability layer and additionally replays the best
/// feasible point's winning configuration on the machine simulator, so one
/// trace shows all three hot layers (sweep/pool/cache and the simulator);
/// the artifact itself is unaffected.
///
/// Durability: `--journal FILE` appends a checksummed `stamp-journal/v1`
/// record per completed point; `--resume FILE` replays such a journal and
/// evaluates only the missing points, producing an artifact byte-identical
/// to an uninterrupted run. SIGINT/SIGTERM trip a cooperative cancel token:
/// in-flight points drain and reach the journal before the process exits.
/// Artifacts land via an atomic temp-file + rename, never as a torn file.
///
/// Exit codes: 0 success; 2 usage or I/O error; 3 cancelled by signal
/// (journal preserved, no artifact); 4 evaluation failure (injected point
/// failure or per-point deadline; journal preserved, no artifact).
///
/// Usage: see `stamp_sweep --help` (generated from the option table).

#include "api/stamp.hpp"
#include "cli.hpp"
#include "signals.hpp"
#include "core/hw.hpp"
#include "report/atomic_file.hpp"
#include "sweep/journal.hpp"

#include <chrono>
#include <cmath>
#include <filesystem>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using stamp::tools::Cli;

/// Replay the winning point's configuration on the explicit-resource machine
/// simulator so the trace contains simulator spans alongside the sweep's own.
/// The winner is the same argmin the guided search (src/search/) computes.
void replay_winner(const stamp::sweep::SweepConfig& cfg,
                   const stamp::sweep::SweepResult& result) {
  if (result.records.empty()) return;
  const std::size_t w =
      stamp::search::best_record_index(result.records, cfg.objective);
  const stamp::sweep::SweepRecord& rec = result.records[w];
  const stamp::sweep::PointSetup setup = stamp::sweep::setup_point(cfg, rec.params);
  const int n = std::max(1, rec.processes);

  const stamp::runtime::PlacementMap placement =
      stamp::runtime::PlacementMap::for_distribution(
          setup.machine.topology, n, stamp::Distribution::IntraProc);
  const stamp::ProcessProfile per_process =
      stamp::sweep::strong_scaled(setup.profile, n);

  const int units = std::max(1, static_cast<int>(std::lround(per_process.units)));
  const auto un = static_cast<std::size_t>(n);

  std::vector<stamp::CostCounters> rounds(un);
  std::vector<long long> sends_intra(un, 0);
  std::vector<long long> sends_inter(un, 0);
  for (int p = 0; p < n; ++p) {
    const stamp::ProcessCounts pc = placement.process_counts_for(p);
    const int peers = pc.intra + pc.inter;
    const double intra_fraction =
        peers > 0 ? static_cast<double>(pc.intra) / peers : 0.0;
    rounds[static_cast<std::size_t>(p)] = per_process.split(intra_fraction);
    sends_intra[static_cast<std::size_t>(p)] =
        std::llround(rounds[static_cast<std::size_t>(p)].m_s_a);
    sends_inter[static_cast<std::size_t>(p)] =
        std::llround(rounds[static_cast<std::size_t>(p)].m_s_e);
  }

  // The simulator routes each sent message round-robin over the sender's
  // eligible peers (falling back to self), so per-receiver delivery counts
  // need not equal the profile's m_r. Emulate that routing — it depends only
  // on each sender's own cursor, so it is schedule-independent — and issue
  // exactly the delivered count as each round's receive, or the replay
  // deadlocks on a receive that can never be satisfied.
  std::vector<std::size_t> intra_cursor(un, 0);
  std::vector<std::size_t> inter_cursor(un, 0);
  auto pick_peer = [&](int from, bool intra) -> int {
    std::size_t& cursor = intra ? intra_cursor[static_cast<std::size_t>(from)]
                                : inter_cursor[static_cast<std::size_t>(from)];
    for (int tries = 0; tries < n; ++tries) {
      const int candidate = static_cast<int>((cursor + tries) % un);
      if (candidate == from) continue;
      if (placement.same_processor(from, candidate) == intra) {
        cursor = static_cast<std::size_t>(candidate) + 1;
        return candidate;
      }
    }
    return -1;
  };
  std::vector<std::vector<long long>> delivered(
      static_cast<std::size_t>(units), std::vector<long long>(un, 0));
  for (int u = 0; u < units; ++u) {
    for (int p = 0; p < n; ++p) {
      for (long long m = 0; m < sends_intra[static_cast<std::size_t>(p)]; ++m) {
        const int peer = pick_peer(p, true);
        ++delivered[static_cast<std::size_t>(u)]
                   [static_cast<std::size_t>(peer >= 0 ? peer : p)];
      }
      for (long long m = 0; m < sends_inter[static_cast<std::size_t>(p)]; ++m) {
        const int peer = pick_peer(p, false);
        ++delivered[static_cast<std::size_t>(u)]
                   [static_cast<std::size_t>(peer >= 0 ? peer : p)];
      }
    }
  }

  std::vector<stamp::machine::ProcessTrace> traces;
  traces.reserve(un);
  using Op = stamp::machine::TraceOp;
  for (int p = 0; p < n; ++p) {
    const stamp::CostCounters& round = rounds[static_cast<std::size_t>(p)];
    stamp::machine::ProcessTrace trace;
    auto push = [&](Op::Kind kind, double amount, bool intra, double fp = 0) {
      if (amount > 0) trace.push_back({kind, amount, intra, fp});
    };
    for (int u = 0; u < units; ++u) {
      // Not trace_of_round's canonical receive-first order: with every
      // process running the identical round, nobody would have sent yet.
      // Sends go ahead of receives; the barrier keeps units aligned.
      push(Op::Kind::Compute, round.local_ops(), false, round.c_fp);
      push(Op::Kind::ShmRead, round.d_r_a, true);
      push(Op::Kind::ShmRead, round.d_r_e, false);
      push(Op::Kind::ShmWrite, round.d_w_a, true);
      push(Op::Kind::ShmWrite, round.d_w_e, false);
      push(Op::Kind::MsgSend, round.m_s_a, true);
      push(Op::Kind::MsgSend, round.m_s_e, false);
      push(Op::Kind::MsgRecv,
           static_cast<double>(delivered[static_cast<std::size_t>(u)]
                                        [static_cast<std::size_t>(p)]),
           false);
      trace.push_back({Op::Kind::Barrier, 0, false, 0});
    }
    traces.push_back(std::move(trace));
  }

  const stamp::Evaluator eval({.machine = setup.machine});
  const stamp::machine::SimResult sim = eval.simulate(traces, placement);
  std::cerr << "trace: replayed winning point " << rec.index << " ("
            << n << " processes) on the simulator: makespan " << sim.makespan
            << ", energy " << sim.energy << "\n";
}

bool write_text(const std::string& path, const std::string& text) {
  try {
    stamp::report::AtomicFileWriter::write_file(path, text);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string grid = "canonical";
  std::string out_path;
  std::string trace_path;
  std::string metrics_path;
  std::string journal_path;
  std::string resume_path;
  int threads = 0;
  int point_deadline_ms = 0;
  int fail_seed = 0;
  double fail_prob = 0;
  bool stats = false;

  Cli cli("stamp_sweep",
          "Evaluate a STAMP parameter grid and emit the deterministic "
          "stamp-sweep/v1 JSON artifact.");
  cli.option_string("grid", &grid, "canonical|tiny|large",
                    "grid preset to evaluate (default: canonical)")
      .option_int("threads", &threads, "N",
                  "pool width; 0 = hardware concurrency (default)")
      .option_int("jobs", &threads, "N", "alias for --threads")
      .option_string("out", &out_path, "FILE", "output file (default: stdout)")
      .option_string("journal", &journal_path, "FILE",
                     "append a stamp-journal/v1 record per completed point "
                     "(crash-safe; enables resuming)")
      .option_string("resume", &resume_path, "FILE",
                     "replay a journal and evaluate only the missing points "
                     "(implies journaling to FILE unless --journal is given)")
      .option_int("point-deadline-ms", &point_deadline_ms, "MS",
                  "fail the sweep if one point evaluation exceeds MS "
                  "milliseconds (0 = no deadline)")
      .option_int("fail-seed", &fail_seed, "SEED",
                  "seed for injected sweep-point failures (chaos testing)")
      .option_double("fail-prob", &fail_prob, "P",
                     "per-point probability of an injected failure "
                     "(chaos testing; default 0 = off)")
      .option_string("trace", &trace_path, "FILE",
                     "record a Chrome trace of the sweep (plus a simulator "
                     "replay of the winning point) to FILE")
      .option_string("metrics", &metrics_path, "FILE",
                     "record the metrics registry as JSON to FILE")
      .flag("stats", &stats, "print cache/steal statistics to stderr");
  switch (cli.parse(argc, argv)) {
    case Cli::Parse::Help: return 0;
    case Cli::Parse::Error: return 2;
    case Cli::Parse::Ok: break;
  }

  // SIGINT/SIGTERM trip the shared shutdown token (graceful drain, exit 3);
  // a closed stdout pipe surfaces as a stream error (exit 2), not a kill
  // mid-artifact. Shared drain semantics: tools/signals.hpp.
  stamp::tools::install_shutdown_handlers();

  stamp::sweep::SweepConfig cfg;
  if (grid == "canonical") {
    cfg = stamp::sweep::SweepConfig::canonical();
  } else if (grid == "tiny") {
    cfg = stamp::sweep::SweepConfig::tiny();
  } else if (grid == "large") {
    cfg = stamp::sweep::SweepConfig::large();
  } else {
    std::cerr << "stamp_sweep: unknown grid preset '" << grid << "'\n";
    return 2;
  }

  if (threads == 0) threads = stamp::core::usable_hardware_threads();

  try {
    stamp::Evaluator::set_tracing(!trace_path.empty());
    stamp::Evaluator::set_metrics(!metrics_path.empty());

    // Resuming without an explicit journal keeps appending to the same file:
    // a second interruption must not lose the first run's completed points.
    if (journal_path.empty()) journal_path = resume_path;

    std::unique_ptr<stamp::sweep::ResumeState> resume;
    if (!resume_path.empty()) {
      if (std::filesystem::exists(resume_path)) {
        resume = std::make_unique<stamp::sweep::ResumeState>(
            stamp::sweep::ResumeState::load(resume_path, cfg));
        std::cerr << "stamp_sweep: resuming " << resume->completed_points()
                  << "/" << resume->grid_points() << " points from '"
                  << resume_path << "'"
                  << (resume->truncated() ? " (torn tail truncated)" : "")
                  << "\n";
      } else {
        std::cerr << "stamp_sweep: resume file '" << resume_path
                  << "' does not exist; starting fresh\n";
      }
    }

    std::unique_ptr<stamp::sweep::Journal> journal;
    if (!journal_path.empty())
      journal = std::make_unique<stamp::sweep::Journal>(journal_path, cfg,
                                                        resume.get());

    if (fail_prob > 0) {
      stamp::fault::FaultPlan plan;
      plan.seed = static_cast<std::uint64_t>(fail_seed);
      plan.with(stamp::fault::FaultSite::SweepPointFail, fail_prob);
      stamp::Evaluator::with_faults(plan);
    }

    stamp::sweep::SweepOptions opts;
    opts.cancel = &stamp::tools::shutdown_token();
    opts.journal = journal.get();
    opts.resume = resume.get();
    opts.point_deadline = std::chrono::milliseconds(point_deadline_ms);
    opts.threads = threads;

    const stamp::Evaluator eval({.machine = cfg.base, .objective = cfg.objective});
    stamp::sweep::SweepResult result;
    try {
      result = eval.sweep(cfg, opts);
    } catch (const std::exception& e) {
      // The journal object (if any) already synced its tail in run_sweep's
      // unwind path; completed points survive for --resume.
      std::cerr << "stamp_sweep: sweep failed: " << e.what() << "\n";
      if (journal)
        std::cerr << "stamp_sweep: journal preserved at '" << journal_path
                  << "'; rerun with --resume to continue\n";
      return 4;
    }

    if (result.cancelled) {
      std::cerr << "stamp_sweep: cancelled by signal after "
                << (result.records.size() - result.stats.skipped_points)
                << "/" << result.records.size() << " points";
      if (journal)
        std::cerr << "; journal preserved at '" << journal_path
                  << "', rerun with --resume to continue";
      std::cerr << "\n";
      return 3;
    }

    if (out_path.empty() || out_path == "-") {
      stamp::sweep::write_json(result, std::cout);
    } else {
      stamp::report::AtomicFileWriter writer(out_path);
      if (!writer.ok()) {
        std::cerr << "stamp_sweep: cannot open '" << out_path << "' for writing\n";
        return 2;
      }
      stamp::sweep::write_json(result, writer.stream());
      writer.commit();
    }

    if (!trace_path.empty()) {
      replay_winner(cfg, result);
      if (!write_text(trace_path, stamp::Evaluator::trace_json())) {
        std::cerr << "stamp_sweep: cannot write trace '" << trace_path << "'\n";
        return 2;
      }
    }
    if (!metrics_path.empty()) {
      std::ostringstream ss;
      stamp::Evaluator::write_metrics(ss);
      if (!write_text(metrics_path, ss.str())) {
        std::cerr << "stamp_sweep: cannot write metrics '" << metrics_path << "'\n";
        return 2;
      }
    }

    if (stats) {
      std::cerr << "sweep: " << result.records.size() << " points, "
                << threads << " threads, cache " << result.stats.cache_hits
                << " hits / " << result.stats.cache_misses << " misses / "
                << result.stats.cache_evictions << " evictions, "
                << result.stats.pool_steals << " steals, "
                << result.stats.resumed_points << " resumed, "
                << result.stats.journaled_points << " journaled\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "stamp_sweep: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
