/// \file stamp_gate.cpp
/// \brief CLI regression gate: compare a fresh sweep artifact against the
///        checked-in baseline.
///
/// Exit codes: 0 = within tolerance, 1 = drift or structural mismatch,
/// 2 = usage / IO error, 3 = an input file is not valid JSON (the message
/// names the offending file and the byte offset). CI treats anything
/// non-zero as a red PR; 3 specifically means "fix the artifact, not the
/// code".
///
/// Usage: see `stamp_gate --help` (generated from the option table).

#include "cli.hpp"
#include "report/json_parse.hpp"
#include "sweep/gate.hpp"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using stamp::tools::Cli;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  out = ss.str();
  return true;
}

bool apply_tolerance(stamp::sweep::GateTolerances& tol,
                     const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos) return false;
  const std::string name = spec.substr(0, eq);
  double value = 0;
  try {
    value = std::stod(spec.substr(eq + 1));
  } catch (...) {
    return false;
  }
  if (value < 0) return false;
  if (name == "D")
    tol.D = value;
  else if (name == "PDP")
    tol.PDP = value;
  else if (name == "EDP")
    tol.EDP = value;
  else if (name == "ED2P")
    tol.ED2P = value;
  else if (name == "models")
    tol.models = value;
  else
    return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string fresh_path;
  std::vector<std::string> tolerance_specs;

  Cli cli("stamp_gate",
          "Compare a fresh stamp-sweep/v1 artifact against a baseline. "
          "Exit 0 = within tolerance, 1 = drift, 2 = usage/IO error, "
          "3 = unparseable JSON input.");
  cli.positional("baseline.json", &baseline_path, "checked-in baseline artifact")
      .positional("fresh.json", &fresh_path, "freshly produced artifact")
      .option_list("tol", &tolerance_specs, "METRIC=REL",
                   "relative tolerance override; METRIC is one of "
                   "D, PDP, EDP, ED2P, models");
  switch (cli.parse(argc, argv)) {
    case Cli::Parse::Help: return 0;
    case Cli::Parse::Error: return 2;
    case Cli::Parse::Ok: break;
  }

  stamp::sweep::GateTolerances tol;
  for (const std::string& spec : tolerance_specs) {
    if (!apply_tolerance(tol, spec)) {
      std::cerr << "stamp_gate: bad --tol '" << spec
                << "' (expected METRIC=REL, METRIC in D|PDP|EDP|ED2P|models)\n";
      return 2;
    }
  }

  std::string baseline_text;
  std::string fresh_text;
  if (!read_file(baseline_path, baseline_text)) {
    std::cerr << "stamp_gate: cannot read baseline '" << baseline_path << "'\n";
    return 2;
  }
  if (!read_file(fresh_path, fresh_text)) {
    std::cerr << "stamp_gate: cannot read fresh sweep '" << fresh_path << "'\n";
    return 2;
  }

  // Pre-parse both inputs so an unparseable file gets its own exit code and
  // a message naming the file — a truncated or corrupt baseline should read
  // as "regenerate the artifact", not as model drift.
  const auto check_parses = [](const std::string& path,
                               const std::string& text) {
    try {
      static_cast<void>(stamp::report::JsonValue::parse(text));
      return true;
    } catch (const stamp::report::JsonParseError& e) {
      std::cerr << "stamp_gate: '" << path
                << "' is not valid JSON: " << e.what() << "\n";
      return false;
    }
  };
  if (!check_parses(baseline_path, baseline_text) ||
      !check_parses(fresh_path, fresh_text))
    return 3;

  try {
    const stamp::sweep::GateReport report =
        stamp::sweep::compare_sweeps_text(baseline_text, fresh_text, tol);
    stamp::sweep::print_report(report, std::cout);
    return report.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "stamp_gate: " << e.what() << "\n";
    return 2;
  }
}
