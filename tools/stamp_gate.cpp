/// \file stamp_gate.cpp
/// \brief CLI regression gate: compare a fresh sweep artifact against the
///        checked-in baseline.
///
/// Exit codes: 0 = within tolerance, 1 = drift or structural mismatch,
/// 2 = usage / IO / parse error. CI treats anything non-zero as a red PR.
///
/// Usage:
///   stamp_gate <baseline.json> <fresh.json> [--tol METRIC=REL ...]
///   (METRIC is one of D, PDP, EDP, ED2P, models)

#include "sweep/gate.hpp"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <baseline.json> <fresh.json> [--tol METRIC=REL ...]\n"
               "  METRIC: D | PDP | EDP | ED2P | models\n"
               "  exit 0 = within tolerance, 1 = drift, 2 = usage/IO error\n";
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  out = ss.str();
  return true;
}

bool apply_tolerance(stamp::sweep::GateTolerances& tol,
                     const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos) return false;
  const std::string name = spec.substr(0, eq);
  double value = 0;
  try {
    value = std::stod(spec.substr(eq + 1));
  } catch (...) {
    return false;
  }
  if (value < 0) return false;
  if (name == "D")
    tol.D = value;
  else if (name == "PDP")
    tol.PDP = value;
  else if (name == "EDP")
    tol.EDP = value;
  else if (name == "ED2P")
    tol.ED2P = value;
  else if (name == "models")
    tol.models = value;
  else
    return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string fresh_path;
  stamp::sweep::GateTolerances tol;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tol") {
      if (i + 1 >= argc || !apply_tolerance(tol, argv[++i]))
        return usage(argv[0]);
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (fresh_path.empty()) {
      fresh_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (baseline_path.empty() || fresh_path.empty()) return usage(argv[0]);

  std::string baseline_text;
  std::string fresh_text;
  if (!read_file(baseline_path, baseline_text)) {
    std::cerr << "stamp_gate: cannot read baseline '" << baseline_path << "'\n";
    return 2;
  }
  if (!read_file(fresh_path, fresh_text)) {
    std::cerr << "stamp_gate: cannot read fresh sweep '" << fresh_path << "'\n";
    return 2;
  }

  try {
    const stamp::sweep::GateReport report =
        stamp::sweep::compare_sweeps_text(baseline_text, fresh_text, tol);
    stamp::sweep::print_report(report, std::cout);
    return report.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "stamp_gate: " << e.what() << "\n";
    return 2;
  }
}
