/// \file stamp_call.cpp
/// \brief NDJSON client for stamp_serve: pipeline request lines over one
///        connection, collect responses by id, and retry unanswered requests
///        until everything is answered or a global timeout expires.
///
/// Requests are read from FILE (or stdin with `-`), one JSON object per line;
/// each must carry a unique non-negative `id`. Responses are written in
/// request order, deduplicated by id (the first response wins — the server's
/// mailbox may duplicate work under fault injection, and retries re-ask). The
/// engine is deterministic, so duplicates are byte-identical anyway; dedup
/// keeps the output line count equal to the request line count.
///
/// Retrying makes the client the availability half of the chaos story: a
/// dropped admission or a torn connection is survived by resending whatever
/// ids are still unanswered on a fresh connection.
///
/// Exit codes: 0 all requests answered; 1 timeout with unanswered requests;
/// 2 usage or I/O errors.

#include "cli.hpp"
#include "report/json_parse.hpp"
#include "serve/socket.hpp"
#include "signals.hpp"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace {

using stamp::report::JsonValue;
using stamp::serve::Socket;
using stamp::tools::Cli;
using ReadStatus = Socket::ReadStatus;

struct Pending {
  std::uint64_t id = 0;
  std::string line;      ///< Request line as read (no trailing newline).
  std::string response;  ///< First response seen for this id.
  bool answered = false;
};

/// Extract the `id` field of a request or response line; nullopt if the line
/// is not a JSON object with a non-negative integral `id`.
std::optional<std::uint64_t> line_id(const std::string& line) {
  JsonValue root;
  try {
    root = JsonValue::parse(line);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (root.kind() != JsonValue::Kind::Object) return std::nullopt;
  const JsonValue* v = root.find("id");
  if (v == nullptr || v->kind() != JsonValue::Kind::Number)
    return std::nullopt;
  const double d = v->as_number();
  if (d < 0 || d != static_cast<double>(static_cast<std::uint64_t>(d)))
    return std::nullopt;
  return static_cast<std::uint64_t>(d);
}

bool read_requests(std::istream& in, std::vector<Pending>& pending) {
  std::string line;
  std::unordered_map<std::uint64_t, bool> seen;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto id = line_id(line);
    if (!id.has_value()) {
      std::cerr << "stamp_call: request line without a valid id: " << line
                << "\n";
      return false;
    }
    if (!seen.emplace(*id, true).second) {
      std::cerr << "stamp_call: duplicate request id " << *id << "\n";
      return false;
    }
    pending.push_back({*id, line, {}, false});
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t port = 0;
  std::string port_file;
  std::string out_path;
  std::uint64_t timeout_ms = 30000;
  std::uint64_t retry_ms = 1000;
  bool quiet = false;
  std::string input_path;

  Cli cli("stamp_call",
          "Send newline-delimited stamp-serve/v1 requests from FILE (or "
          "stdin with '-') and print the responses in request order.");
  cli.option_u64("port", &port, "PORT", "server port on 127.0.0.1")
      .option_string("port-file", &port_file, "FILE",
                     "read the port number from FILE (stamp_serve "
                     "--port-file)")
      .option_string("out", &out_path, "FILE",
                     "write responses to FILE instead of stdout")
      .option_u64("timeout-ms", &timeout_ms, "MS",
                  "global deadline for the whole batch (default 30000)")
      .option_u64("retry-ms", &retry_ms, "MS",
                  "resend unanswered requests after this long without "
                  "progress (default 1000)")
      .flag("quiet", &quiet, "suppress the per-batch summary on stderr")
      .positional("requests", &input_path,
                  "file of request lines, or '-' for stdin");
  switch (cli.parse(argc, argv)) {
    case Cli::Parse::Help: return 0;
    case Cli::Parse::Error: return 2;
    case Cli::Parse::Ok: break;
  }

  stamp::tools::install_shutdown_handlers();

  if (!port_file.empty()) {
    std::ifstream pf(port_file);
    if (!(pf >> port)) {
      std::cerr << "stamp_call: cannot read port from '" << port_file << "'\n";
      return 2;
    }
  }
  if (port == 0 || port > 65535) {
    std::cerr << "stamp_call: need --port or --port-file\n";
    return 2;
  }

  std::vector<Pending> pending;
  if (input_path == "-") {
    if (!read_requests(std::cin, pending)) return 2;
  } else {
    std::ifstream in(input_path);
    if (!in) {
      std::cerr << "stamp_call: cannot open '" << input_path << "'\n";
      return 2;
    }
    if (!read_requests(in, pending)) return 2;
  }

  std::unordered_map<std::uint64_t, Pending*> by_id;
  by_id.reserve(pending.size());
  for (Pending& p : pending) by_id.emplace(p.id, &p);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::size_t unanswered = pending.size();
  std::uint64_t resent = 0;
  std::uint64_t reconnects = 0;
  Socket sock;

  while (unanswered > 0 && std::chrono::steady_clock::now() < deadline &&
         !stamp::tools::shutdown_requested()) {
    if (!sock.valid()) {
      sock = Socket::connect_to(static_cast<std::uint16_t>(port));
      if (!sock.valid()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      ++reconnects;
      // A fresh connection knows nothing of earlier sends: (re)send every
      // unanswered request. Dedup by id absorbs any duplicate responses.
      bool sent_ok = true;
      for (const Pending& p : pending) {
        if (p.answered) continue;
        if (!sock.write_all(p.line) || !sock.write_all("\n")) {
          sent_ok = false;
          break;
        }
      }
      if (!sent_ok) {
        sock.close();
        continue;
      }
    }

    std::string line;
    const auto now = std::chrono::steady_clock::now();
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const int wait_ms = static_cast<int>(std::min<std::int64_t>(
        static_cast<std::int64_t>(retry_ms),
        std::max<std::int64_t>(1, remaining.count())));
    const ReadStatus status = sock.read_line(line, wait_ms);
    if (status == ReadStatus::Line) {
      const auto id = line_id(line);
      if (id.has_value()) {
        const auto it = by_id.find(*id);
        if (it != by_id.end() && !it->second->answered) {
          it->second->answered = true;
          it->second->response = line;
          --unanswered;
        }
      }
      continue;
    }
    if (status == ReadStatus::Timeout) {
      // No progress within the retry window: resend the stragglers on the
      // same connection (the server may have dropped them at admission).
      for (const Pending& p : pending) {
        if (p.answered) continue;
        if (!sock.write_all(p.line) || !sock.write_all("\n")) {
          sock.close();
          break;
        }
        ++resent;
      }
      continue;
    }
    // Eof or Error: the connection is gone; rebuild it next iteration.
    sock.close();
  }

  std::ostringstream out;
  for (const Pending& p : pending)
    if (p.answered) out << p.response << "\n";
  if (out_path.empty()) {
    std::cout << out.str();
  } else {
    std::ofstream f(out_path, std::ios::trunc);
    f << out.str();
    if (!f.good()) {
      std::cerr << "stamp_call: cannot write '" << out_path << "'\n";
      return 2;
    }
  }

  if (!quiet)
    std::cerr << "stamp_call: " << (pending.size() - unanswered) << "/"
              << pending.size() << " answered, " << resent << " resent, "
              << reconnects << " connections\n";
  return unanswered == 0 ? 0 : 1;
}
