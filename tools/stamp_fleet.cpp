/// \file stamp_fleet.cpp
/// \brief Distributed sweep coordinator CLI: shard a grid across N
///        `stamp_serve` workers and merge a byte-identical artifact.
///
/// Two ways to get workers:
///   --workers N     spawn N `stamp_serve` children on ephemeral ports
///                   (each child echoes its port on stdout; that line is the
///                   only thing a worker ever prints there)
///   --connect PORT  attach to an externally managed worker (repeatable);
///                   the caller owns those processes — which is what the
///                   fleet-chaos script uses to kill one mid-sweep
///
/// Completed shards land in the PR 5 write-ahead journal, so the merge is
/// just the normal resume replay: after the coordinator finishes (or after
/// a *previous* coordinator was killed and this one runs with --resume),
/// `Evaluator::sweep` replays the journal and `write_json` emits an
/// artifact `cmp`-identical to a single-node `stamp_sweep` run — at any
/// worker count, with or without worker deaths in between.
///
/// Exit codes mirror stamp_sweep: 0 success; 2 usage or I/O error;
/// 3 cancelled by signal (journal preserved); 4 fleet/evaluation failure
/// (journal preserved; rerun with --resume).

#include "api/stamp.hpp"
#include "cli.hpp"
#include "dist/dist.hpp"
#include "report/atomic_file.hpp"
#include "signals.hpp"
#include "sweep/journal.hpp"

#include <sys/types.h>
#include <sys/wait.h>

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

namespace {

using stamp::tools::Cli;

struct WorkerProc {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

/// Read one '\n'-terminated line from `fd` (the spawned worker's stdout),
/// waiting at most `timeout_ms` in total. Empty string on timeout/EOF.
std::string read_line_fd(int fd, int timeout_ms) {
  std::string line;
  for (int waited = 0; waited < timeout_ms;) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int rc = ::poll(&p, 1, 100);
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0) return {};
    if (rc == 0) {
      waited += 100;
      continue;
    }
    char ch;
    const ssize_t n = ::read(fd, &ch, 1);
    if (n <= 0) return {};
    if (ch == '\n') return line;
    line.push_back(ch);
    if (line.size() > 64) return {};  // not a port number
  }
  return {};
}

/// Fork+exec one stamp_serve worker on an ephemeral port; the port is
/// parsed from the first stdout line the child prints.
std::unique_ptr<WorkerProc> spawn_worker(const std::string& serve_bin,
                                         const std::string& grid,
                                         int serve_threads) {
  int fds[2];
  if (::pipe(fds) != 0) return nullptr;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return nullptr;
  }
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    const std::string threads = std::to_string(serve_threads);
    ::execl(serve_bin.c_str(), "stamp_serve", "--port", "0", "--grid",
            grid.c_str(), "--workers", threads.c_str(),
            static_cast<char*>(nullptr));
    std::perror("stamp_fleet: exec stamp_serve");
    ::_exit(127);
  }
  ::close(fds[1]);
  const std::string line = read_line_fd(fds[0], 10000);
  ::close(fds[0]);
  auto worker = std::make_unique<WorkerProc>();
  worker->pid = pid;
  char* end = nullptr;
  const unsigned long port = std::strtoul(line.c_str(), &end, 10);
  if (line.empty() || end != line.c_str() + line.size() || port == 0 ||
      port > 65535) {
    ::kill(pid, SIGKILL);
    int ignored;
    ::waitpid(pid, &ignored, 0);
    return nullptr;
  }
  worker->port = static_cast<std::uint16_t>(port);
  return worker;
}

void stop_workers(std::vector<std::unique_ptr<WorkerProc>>& workers) {
  for (auto& w : workers)
    if (w && w->pid > 0) ::kill(w->pid, SIGTERM);
  for (auto& w : workers) {
    if (!w || w->pid <= 0) continue;
    int ignored;
    ::waitpid(w->pid, &ignored, 0);
    w->pid = -1;
  }
}

/// Default path of the stamp_serve binary: next to this executable.
std::string sibling_serve_bin(const char* argv0) {
  std::filesystem::path self(argv0 != nullptr ? argv0 : "");
  return (self.parent_path() / "stamp_serve").string();
}

}  // namespace

int main(int argc, char** argv) {
  std::string grid = "canonical";
  std::string out_path;
  std::string journal_path;
  std::string resume_path;
  std::string serve_bin = sibling_serve_bin(argc > 0 ? argv[0] : nullptr);
  std::vector<std::string> connect_specs;
  int workers = 0;
  int serve_threads = 2;
  std::uint64_t points_per_shard = 64;
  int timeout_ms = 120000;
  bool stats = false;

  Cli cli("stamp_fleet",
          "Shard a STAMP sweep across stamp_serve workers and merge an "
          "artifact byte-identical to a single-node stamp_sweep run.");
  cli.option_string("grid", &grid, "canonical|tiny",
                    "grid preset to evaluate (default: canonical)")
      .option_int("workers", &workers, "N",
                  "spawn N stamp_serve children on ephemeral ports")
      .option_list("connect", &connect_specs, "PORT",
                   "attach to an externally managed worker (repeatable; "
                   "mutually additive with --workers)")
      .option_string("out", &out_path, "FILE", "output file (default: stdout)")
      .option_string("journal", &journal_path, "FILE",
                     "coordination journal (default: a temp file, removed on "
                     "success; pass a path to keep it)")
      .option_string("resume", &resume_path, "FILE",
                     "resume a killed coordinator's journal; only missing "
                     "points are re-dispatched")
      .option_u64("points-per-shard", &points_per_shard, "N",
                  "shard granularity (default 64, max 4096)")
      .option_int("timeout-ms", &timeout_ms, "MS",
                  "per-shard response deadline before resend (default 120000)")
      .option_string("serve-bin", &serve_bin, "PATH",
                     "stamp_serve binary for --workers (default: next to "
                     "stamp_fleet)")
      .option_int("serve-workers", &serve_threads, "N",
                  "worker threads per spawned server (default 2)")
      .flag("stats", &stats, "print fleet statistics to stderr");
  switch (cli.parse(argc, argv)) {
    case Cli::Parse::Help: return 0;
    case Cli::Parse::Error: return 2;
    case Cli::Parse::Ok: break;
  }

  stamp::tools::install_shutdown_handlers();

  stamp::sweep::SweepConfig cfg;
  if (grid == "canonical") {
    cfg = stamp::sweep::SweepConfig::canonical();
  } else if (grid == "tiny") {
    cfg = stamp::sweep::SweepConfig::tiny();
  } else {
    // The serve engine only exposes presets it can pin in memory; "large"
    // is a streaming grid and has no server-side preset.
    std::cerr << "stamp_fleet: unknown grid preset '" << grid << "'\n";
    return 2;
  }

  stamp::dist::FleetOptions fleet;
  fleet.points_per_shard = static_cast<std::size_t>(points_per_shard);
  fleet.response_timeout_ms = timeout_ms;
  fleet.cancel = &stamp::tools::shutdown_token();

  for (const std::string& spec : connect_specs) {
    char* end = nullptr;
    const unsigned long port = std::strtoul(spec.c_str(), &end, 10);
    if (spec.empty() || end != spec.c_str() + spec.size() || port == 0 ||
        port > 65535) {
      std::cerr << "stamp_fleet: bad --connect port '" << spec << "'\n";
      return 2;
    }
    fleet.ports.push_back(static_cast<std::uint16_t>(port));
  }

  std::vector<std::unique_ptr<WorkerProc>> spawned;
  for (int i = 0; i < workers; ++i) {
    auto worker = spawn_worker(serve_bin, grid, serve_threads);
    if (!worker) {
      std::cerr << "stamp_fleet: failed to spawn stamp_serve worker " << i
                << " (binary: '" << serve_bin << "')\n";
      stop_workers(spawned);
      return 2;
    }
    fleet.ports.push_back(worker->port);
    spawned.push_back(std::move(worker));
  }

  if (fleet.ports.empty()) {
    std::cerr << "stamp_fleet: no workers (--workers N or --connect PORT)\n";
    return 2;
  }

  // Resuming without an explicit journal keeps appending to the same file;
  // with neither, the coordination journal is a temp file removed on success.
  if (journal_path.empty()) journal_path = resume_path;
  bool temp_journal = false;
  if (journal_path.empty()) {
    journal_path = (std::filesystem::temp_directory_path() /
                    ("stamp_fleet." + std::to_string(::getpid()) + ".journal"))
                       .string();
    temp_journal = true;
  }

  int exit_code = 0;
  try {
    std::unique_ptr<stamp::sweep::ResumeState> resume;
    if (!resume_path.empty() && std::filesystem::exists(resume_path)) {
      resume = std::make_unique<stamp::sweep::ResumeState>(
          stamp::sweep::ResumeState::load(resume_path, cfg));
      std::cerr << "stamp_fleet: resuming " << resume->completed_points() << "/"
                << resume->grid_points() << " points from '" << resume_path
                << "'" << (resume->truncated() ? " (torn tail truncated)" : "")
                << "\n";
    } else if (!resume_path.empty()) {
      std::cerr << "stamp_fleet: resume file '" << resume_path
                << "' does not exist; starting fresh\n";
    }

    {
      stamp::sweep::Journal journal(journal_path, cfg, resume.get());
      stamp::dist::Coordinator coordinator(cfg, fleet);
      const stamp::dist::FleetStats fstats =
          coordinator.run(journal, resume.get());
      if (stats || fstats.worker_failures > 0) {
        std::cerr << "fleet: " << fleet.ports.size() << " workers, "
                  << fstats.shards << " shards, " << fstats.dispatched
                  << " dispatched, " << fstats.completed << " completed, "
                  << fstats.reassigned << " reassigned, "
                  << fstats.worker_failures << " worker failures, "
                  << fstats.reconnects << " reconnects, " << fstats.records
                  << " records journaled\n";
      }
      if (fstats.cancelled) {
        std::cerr << "stamp_fleet: cancelled by signal; journal preserved at '"
                  << journal_path << "', rerun with --resume to continue\n";
        stop_workers(spawned);
        return 3;
      }
    }  // journal synced + closed here

    // Merge: replay the now-complete journal through the normal resume
    // machinery. Every point is journaled, so no evaluation happens — the
    // artifact bytes come from the same records a single-node run journals.
    const stamp::sweep::ResumeState merged =
        stamp::sweep::ResumeState::load(journal_path, cfg);
    if (merged.completed_points() != cfg.grid.size())
      throw std::runtime_error(
          "fleet: journal incomplete after run: " +
          std::to_string(merged.completed_points()) + "/" +
          std::to_string(cfg.grid.size()) + " points");
    stamp::sweep::SweepOptions opts;
    opts.resume = &merged;
    opts.threads = 1;
    const stamp::Evaluator eval(
        {.machine = cfg.base, .objective = cfg.objective});
    const stamp::sweep::SweepResult result = eval.sweep(cfg, opts);

    if (out_path.empty() || out_path == "-") {
      stamp::sweep::write_json(result, std::cout);
    } else {
      stamp::report::AtomicFileWriter writer(out_path);
      if (!writer.ok()) {
        std::cerr << "stamp_fleet: cannot open '" << out_path
                  << "' for writing\n";
        stop_workers(spawned);
        return 2;
      }
      stamp::sweep::write_json(result, writer.stream());
      writer.commit();
    }
    if (temp_journal) std::filesystem::remove(journal_path);
  } catch (const std::exception& e) {
    std::cerr << "stamp_fleet: " << e.what() << "\n";
    if (!temp_journal)
      std::cerr << "stamp_fleet: journal preserved at '" << journal_path
                << "'; rerun with --resume to continue\n";
    exit_code = 4;
  }

  stop_workers(spawned);
  return exit_code;
}
