#pragma once
/// \file cli.hpp
/// \brief Shared argv parsing for the STAMP CLIs.
///
/// Every tool used to hand-roll the same loop: walk argv, match `--name`,
/// fetch the value, fall through to a hand-formatted usage() on any mistake.
/// This header replaces that with a declarative option table; `--help`/-h and
/// the usage/help text are generated from the table, so the help can never
/// drift from what the parser actually accepts.
///
///   stamp::tools::Cli cli("stamp_sweep", "evaluate a parameter grid");
///   cli.option_string("grid", &grid, "canonical|tiny", "grid preset")
///      .option_int("threads", &threads, "N", "pool width; 0 = hardware")
///      .flag("stats", &stats, "print statistics to stderr");
///   switch (cli.parse(argc, argv)) {
///     case Cli::Parse::Help: return 0;
///     case Cli::Parse::Error: return 2;
///     case Cli::Parse::Ok: break;
///   }
///
/// Header-only on purpose: the tools are single-file executables and this
/// keeps them that way.

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace stamp::tools {

namespace detail {

/// Levenshtein distance; option and command names are short, so the
/// O(|a|·|b|) two-row DP is plenty.
inline std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j)
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1,
                         prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1)});
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

/// Help rows align on one column sized to the longest left-hand cell (not a
/// hard-coded width): a single long option used to wrap onto its own line
/// while every other row sat at the fixed column, which made subcommand-less
/// tools with one verbose flag read as two misaligned tables. The column is
/// still capped so one pathological row cannot push the help text off-screen.
inline constexpr std::size_t kMinHelpColumn = 26;
inline constexpr std::size_t kMaxHelpColumn = 34;

inline std::size_t help_column(
    const std::vector<std::pair<std::string, std::string>>& rows) {
  std::size_t column = kMinHelpColumn;
  for (const auto& [left, right] : rows)
    column = std::max(column, left.size() + 4);  // 2 indent + 2 gutter
  return std::min(column, kMaxHelpColumn);
}

inline void print_rows(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& rows) {
  const std::size_t column = help_column(rows);
  for (const auto& [left, right] : rows) {
    os << "  " << left;
    if (left.size() + 2 < column)
      os << std::string(column - left.size() - 2, ' ');
    else
      os << "\n" << std::string(column, ' ');
    os << right << "\n";
  }
}

}  // namespace detail

class Cli {
 public:
  enum class Parse { Ok, Help, Error };

  Cli(std::string program, std::string summary)
      : program_(std::move(program)), summary_(std::move(summary)) {}

  /// `--name` with no value; sets `*target` to true when present.
  Cli& flag(std::string name, bool* target, std::string help) {
    options_.push_back({std::move(name), "", std::move(help), Kind::Flag,
                        target, nullptr, nullptr, nullptr, nullptr, nullptr});
    return *this;
  }

  /// `--name VALUE`, stored as a string.
  Cli& option_string(std::string name, std::string* target,
                     std::string value_name, std::string help) {
    options_.push_back({std::move(name), std::move(value_name), std::move(help),
                        Kind::String, nullptr, target, nullptr, nullptr,
                        nullptr, nullptr});
    return *this;
  }

  /// `--name N`, parsed as a non-negative integer.
  Cli& option_int(std::string name, int* target, std::string value_name,
                  std::string help) {
    options_.push_back({std::move(name), std::move(value_name), std::move(help),
                        Kind::Int, nullptr, nullptr, target, nullptr, nullptr,
                        nullptr});
    return *this;
  }

  /// `--name N`, parsed as a non-negative 64-bit integer — ports, queue
  /// depths, TTLs and seeds outgrow `option_int`'s 1e9 cap.
  Cli& option_u64(std::string name, std::uint64_t* target,
                  std::string value_name, std::string help) {
    options_.push_back({std::move(name), std::move(value_name), std::move(help),
                        Kind::U64, nullptr, nullptr, nullptr, nullptr, nullptr,
                        target});
    return *this;
  }

  /// `--name X`, parsed as a non-negative floating-point number.
  Cli& option_double(std::string name, double* target, std::string value_name,
                     std::string help) {
    options_.push_back({std::move(name), std::move(value_name), std::move(help),
                        Kind::Double, nullptr, nullptr, nullptr, target,
                        nullptr, nullptr});
    return *this;
  }

  /// Repeatable `--name VALUE`; every occurrence appends to `*target`.
  Cli& option_list(std::string name, std::vector<std::string>* target,
                   std::string value_name, std::string help) {
    options_.push_back({std::move(name), std::move(value_name), std::move(help),
                        Kind::List, nullptr, nullptr, nullptr, nullptr,
                        target, nullptr});
    return *this;
  }

  /// Required positional argument, consumed in declaration order.
  Cli& positional(std::string name, std::string* target, std::string help) {
    positionals_.push_back({std::move(name), std::move(help), target});
    return *this;
  }

  /// Parse argv. Prints help to stdout on `--help`/`-h`; prints the problem
  /// plus a usage line to stderr on error.
  [[nodiscard]] Parse parse(int argc, char** argv) {
    std::size_t next_positional = 0;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        print_help(std::cout);
        return Parse::Help;
      }
      if (arg.rfind("--", 0) == 0) {
        const std::string name = arg.substr(2);
        Option* opt = find(name);
        if (opt == nullptr) {
          std::string message = "unknown option '" + arg + "'";
          const std::string near = nearest(name);
          if (!near.empty()) message += " (did you mean '--" + near + "'?)";
          return error(message);
        }
        if (opt->kind == Kind::Flag) {
          *opt->flag_target = true;  // idempotent; repeating it is harmless
          continue;
        }
        // Scalar options take exactly one value: a silent last-one-wins on
        // `--out a --out b` hides a typo'd command line, so repeats are
        // rejected loudly. Lists are repeatable by contract.
        if (opt->kind != Kind::List && opt->seen)
          return error("option '" + arg + "' given more than once");
        opt->seen = true;
        if (i + 1 >= argc)
          return error("option '" + arg + "' expects a value");
        const std::string value = argv[++i];
        switch (opt->kind) {
          case Kind::String:
            *opt->string_target = value;
            break;
          case Kind::Int: {
            const std::optional<int> n = parse_int(value);
            if (!n)
              return error("option '" + arg + "' expects a non-negative " +
                           "integer, got '" + value + "'");
            *opt->int_target = *n;
            break;
          }
          case Kind::Double: {
            const std::optional<double> x = parse_double(value);
            if (!x)
              return error("option '" + arg + "' expects a non-negative " +
                           "number, got '" + value + "'");
            *opt->double_target = *x;
            break;
          }
          case Kind::U64: {
            const std::optional<std::uint64_t> n = parse_u64(value);
            if (!n)
              return error("option '" + arg + "' expects a non-negative " +
                           "integer, got '" + value + "'");
            *opt->u64_target = *n;
            break;
          }
          case Kind::List:
            opt->list_target->push_back(value);
            break;
          case Kind::Flag:
            break;  // handled above
        }
        continue;
      }
      if (next_positional >= positionals_.size())
        return error("unexpected argument '" + arg + "'");
      *positionals_[next_positional++].target = arg;
    }
    if (next_positional < positionals_.size())
      return error("missing required argument <" +
                   positionals_[next_positional].name + ">");
    return Parse::Ok;
  }

  void print_usage(std::ostream& os) const {
    os << "usage: " << program_;
    if (!options_.empty()) os << " [options]";
    for (const Positional& p : positionals_) os << " <" << p.name << ">";
    os << "\n";
  }

  void print_help(std::ostream& os) const {
    print_usage(os);
    os << "\n" << summary_ << "\n";
    if (!positionals_.empty()) {
      os << "\narguments:\n";
      std::vector<std::pair<std::string, std::string>> rows;
      for (const Positional& p : positionals_)
        rows.emplace_back("<" + p.name + ">", p.help);
      detail::print_rows(os, rows);
    }
    os << "\noptions:\n";
    std::vector<std::pair<std::string, std::string>> rows;
    for (const Option& o : options_) {
      std::string left = "--" + o.name;
      if (o.kind != Kind::Flag) left += " " + o.value_name;
      rows.emplace_back(std::move(left),
                        o.help + (o.kind == Kind::List ? " (repeatable)" : ""));
    }
    rows.emplace_back("--help, -h", "show this help and exit");
    detail::print_rows(os, rows);
  }

 private:
  enum class Kind { Flag, String, Int, Double, List, U64 };

  struct Option {
    std::string name;
    std::string value_name;
    std::string help;
    Kind kind;
    bool* flag_target;
    std::string* string_target;
    int* int_target;
    double* double_target;
    std::vector<std::string>* list_target;
    std::uint64_t* u64_target;
    bool seen = false;  ///< a value-bearing scalar may appear only once
  };

  struct Positional {
    std::string name;
    std::string help;
    std::string* target;
  };

  Option* find(const std::string& name) {
    for (Option& o : options_)
      if (o.name == name) return &o;
    return nullptr;
  }

  static std::optional<int> parse_int(const std::string& s) {
    if (s.empty()) return std::nullopt;
    char* end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size() || v < 0 || v > 1'000'000'000)
      return std::nullopt;
    return static_cast<int>(v);
  }

  static std::optional<double> parse_double(const std::string& s) {
    if (s.empty()) return std::nullopt;
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size() || !(v >= 0)) return std::nullopt;
    return v;
  }

  static std::optional<std::uint64_t> parse_u64(const std::string& s) {
    // Require a leading digit, not merely "no leading sign": strtoull skips
    // leading whitespace, so " -1" would sail past a sign check and wrap to
    // ~2^64 — a negative value must be a parse error, never a wraparound.
    if (s.empty() || s[0] < '0' || s[0] > '9') return std::nullopt;
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size() || errno == ERANGE) return std::nullopt;
    return static_cast<std::uint64_t>(v);
  }

  /// The known option name closest to `name` by edit distance, or "" when
  /// nothing is close enough to plausibly be a typo.
  [[nodiscard]] std::string nearest(const std::string& name) const {
    std::string best;
    std::size_t best_d = name.size();  // worse than this is not a typo
    for (const Option& o : options_) {
      const std::size_t d = detail::edit_distance(name, o.name);
      if (d < best_d) {
        best = o.name;
        best_d = d;
      }
    }
    const std::size_t cutoff = std::max<std::size_t>(2, name.size() / 3);
    return best_d <= cutoff ? best : std::string();
  }

  Parse error(const std::string& message) const {
    std::cerr << program_ << ": " << message << "\n";
    print_usage(std::cerr);
    std::cerr << "run '" << program_ << " --help' for details\n";
    return Parse::Error;
  }

  std::string program_;
  std::string summary_;
  std::vector<Option> options_;
  std::vector<Positional> positionals_;
};

/// Subcommand dispatch for tools with several modes (`stamp_search bnb ...`).
/// `select` only picks `argv[1]`; the caller then parses the remaining
/// arguments with a per-subcommand `Cli` whose program name is
/// `"<program> <command>"` — so `<program> <command> --help` prints that
/// command's own option table:
///
///   stamp::tools::Subcommands commands("stamp_search", "find the optimum");
///   commands.add("bnb", "exact branch-and-bound")
///           .add("anneal", "seeded simulated annealing");
///   std::string command;
///   switch (commands.select(argc, argv, &command)) {
///     case Cli::Parse::Help: return 0;
///     case Cli::Parse::Error: return 2;
///     case Cli::Parse::Ok: break;
///   }
///   Cli cli(commands.program() + " " + command, ...);
///   ... cli.parse(argc - 1, argv + 1) ...
class Subcommands {
 public:
  Subcommands(std::string program, std::string summary)
      : program_(std::move(program)), summary_(std::move(summary)) {}

  Subcommands& add(std::string name, std::string summary) {
    commands_.push_back({std::move(name), std::move(summary)});
    return *this;
  }

  [[nodiscard]] const std::string& program() const noexcept {
    return program_;
  }

  /// Pick the subcommand named by `argv[1]`. Prints the command list on
  /// `--help`/`-h` (or a bare invocation is an error pointing at it);
  /// unknown commands get a did-you-mean suggestion like unknown options do.
  [[nodiscard]] Cli::Parse select(int argc, char** argv,
                                  std::string* command) const {
    if (argc < 2)
      return error("expected a command");
    const std::string first = argv[1];
    if (first == "--help" || first == "-h") {
      print_help(std::cout);
      return Cli::Parse::Help;
    }
    if (first.rfind("-", 0) == 0)
      return error("expected a command before options, got '" + first + "'");
    for (const Command& c : commands_) {
      if (c.name == first) {
        *command = first;
        return Cli::Parse::Ok;
      }
    }
    std::string message = "unknown command '" + first + "'";
    const std::string near = nearest(first);
    if (!near.empty()) message += " (did you mean '" + near + "'?)";
    return error(message);
  }

  void print_usage(std::ostream& os) const {
    os << "usage: " << program_ << " <command> [options]\n";
  }

  void print_help(std::ostream& os) const {
    print_usage(os);
    os << "\n" << summary_ << "\n\ncommands:\n";
    std::vector<std::pair<std::string, std::string>> rows;
    for (const Command& c : commands_) rows.emplace_back(c.name, c.summary);
    detail::print_rows(os, rows);
    os << "\nrun '" << program_ << " <command> --help' for command options\n";
  }

 private:
  struct Command {
    std::string name;
    std::string summary;
  };

  [[nodiscard]] std::string nearest(const std::string& name) const {
    std::string best;
    std::size_t best_d = name.size();
    for (const Command& c : commands_) {
      const std::size_t d = detail::edit_distance(name, c.name);
      if (d < best_d) {
        best = c.name;
        best_d = d;
      }
    }
    const std::size_t cutoff = std::max<std::size_t>(2, name.size() / 3);
    return best_d <= cutoff ? best : std::string();
  }

  Cli::Parse error(const std::string& message) const {
    std::cerr << program_ << ": " << message << "\n";
    print_usage(std::cerr);
    std::cerr << "run '" << program_ << " --help' for the command list\n";
    return Cli::Parse::Error;
  }

  std::string program_;
  std::string summary_;
  std::vector<Command> commands_;
};

}  // namespace stamp::tools
