#pragma once
/// \file signals.hpp
/// \brief Shared SIGINT/SIGTERM (and SIGPIPE) plumbing for the STAMP CLIs —
///        drain semantics defined once, used by stamp_sweep, stamp_serve and
///        stamp_chaos.
///
/// Every long-running tool wants the same lifecycle: a first SIGINT/SIGTERM
/// requests a *graceful* stop (trip a `core::CancelToken`, drain in-flight
/// work, flush artifacts, exit with a distinct code), a *second* delivery of
/// either signal restores the default disposition and re-raises — an
/// immediate hard exit, so a wedged drain (e.g. a worker stuck on a blocking
/// recv) is still killable with a plain Ctrl-C Ctrl-C instead of SIGKILL —
/// and a closed stdout pipe surfaces as a stream error rather than killing
/// the process mid-artifact. `stamp_sweep` grew this ad hoc in PR 5; this
/// header is that handler extracted so the tools cannot drift apart.
///
/// The handler itself is one lock-free atomic store (`request_cancel` is
/// documented async-signal-safe), so installing it is sound for any signal.
///
///   stamp::tools::install_shutdown_handlers();
///   ...
///   opts.cancel = &stamp::tools::shutdown_token();
///
/// Header-only on purpose, like cli.hpp: the tools are single-file
/// executables and this keeps them that way.

#include "core/cancel.hpp"

#include <atomic>
#include <csignal>

namespace stamp::tools {

/// The process-wide cancellation token the shutdown handlers trip. Tools
/// poll it (or hand it to SweepOptions/SearchRequest/ServerOptions) to drain
/// cooperatively instead of dying mid-write.
inline core::CancelToken& shutdown_token() noexcept {
  static core::CancelToken token;
  return token;
}

namespace detail {
/// Shutdown signals delivered so far (SIGINT and SIGTERM share the count:
/// Ctrl-C followed by a TERM from a supervisor must also hard-exit).
inline std::atomic<int>& shutdown_signal_count() noexcept {
  static std::atomic<int> count{0};
  return count;
}

extern "C" inline void handle_shutdown_signal(int sig) {
  if (shutdown_signal_count().fetch_add(1, std::memory_order_relaxed) == 0) {
    shutdown_token().request_cancel();
    return;
  }
  // Second delivery: the graceful drain is stuck or the user is insistent.
  // Restore the default disposition and re-raise so the process dies *by*
  // this signal (observable in wait status). Both calls are
  // async-signal-safe; nothing here re-trips the already-cancelled token.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}
}  // namespace detail

/// True once SIGINT or SIGTERM has been received (after
/// `install_shutdown_handlers`).
[[nodiscard]] inline bool shutdown_requested() noexcept {
  return shutdown_token().cancelled();
}

/// Route SIGINT/SIGTERM into `shutdown_token()` and (where it exists) ignore
/// SIGPIPE, so a closed output pipe surfaces as a failed stream write — and
/// a nonzero exit — instead of the default kill-mid-artifact disposition.
/// Idempotent; call once near the top of main().
inline void install_shutdown_handlers() noexcept {
  std::signal(SIGINT, detail::handle_shutdown_signal);
  std::signal(SIGTERM, detail::handle_shutdown_signal);
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);
#endif
}

}  // namespace stamp::tools
