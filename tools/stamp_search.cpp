/// \file stamp_search.cpp
/// \brief CLI for the guided search: find a grid's optimal point without
///        sweeping it, and emit the stable `stamp-search/v1` JSON artifact.
///
/// Subcommands select the engine (src/search/search.hpp):
///
///   stamp_search bnb        exact branch-and-bound — the bit-identical
///                           winner of the exhaustive sweep, visiting a
///                           fraction of the grid
///   stamp_search anneal     seeded simulated annealing + greedy polish —
///                           heuristic, a pure function of --seed
///   stamp_search exhaustive price every point (the oracle the other two
///                           are verified against in CI)
///
/// The artifact records the winner plus a deterministic trace of the search
/// (nodes expanded, bounds, prunes, incumbent updates): the search trajectory
/// is computed serially and worker threads only price leaf blocks, so the
/// output is byte-identical for any --jobs value and across repeated runs of
/// the same seed. Artifacts land via an atomic temp-file + rename.
///
/// Exit codes: 0 success; 2 usage or I/O error; 3 cancelled by signal.
///
/// Usage: see `stamp_search --help` and `stamp_search <command> --help`.

#include "api/stamp.hpp"
#include "cli.hpp"
#include "core/hw.hpp"
#include "report/atomic_file.hpp"

#include <csignal>
#include <iostream>
#include <sstream>
#include <string>

namespace {

using stamp::tools::Cli;
using stamp::tools::Subcommands;

/// Tripped by SIGINT/SIGTERM. `request_cancel` is one lock-free atomic
/// store, so calling it from the handler is async-signal-safe.
stamp::core::CancelToken g_cancel;

extern "C" void handle_cancel_signal(int) { g_cancel.request_cancel(); }

bool write_text(const std::string& path, const std::string& text) {
  try {
    stamp::report::AtomicFileWriter::write_file(path, text);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Subcommands commands(
      "stamp_search",
      "Find the optimal point of a STAMP parameter grid without sweeping "
      "it, and emit the deterministic stamp-search/v1 JSON artifact.");
  commands
      .add("bnb",
           "exact branch-and-bound (bit-identical to the sweep's argmin)")
      .add("anneal", "seeded simulated annealing + greedy local search")
      .add("exhaustive", "price every point (the verification oracle)");

  std::string command;
  switch (commands.select(argc, argv, &command)) {
    case Cli::Parse::Help: return 0;
    case Cli::Parse::Error: return 2;
    case Cli::Parse::Ok: break;
  }

  std::string grid = "canonical";
  std::string out_path;
  std::string metrics_path;
  int threads = 0;
  int seed = 1;
  int iterations = 4096;
  int leaf_block = 64;
  int max_trace = 100000;
  bool no_warm_start = false;
  bool no_trace = false;
  bool stats = false;

  Cli cli(commands.program() + " " + command,
          command == "bnb"
              ? "Exact search: prune subtrees whose admissible lower bound "
                "loses to the incumbent; the winner is byte-identical to "
                "the exhaustive sweep's."
          : command == "anneal"
              ? "Heuristic search: a simulated-annealing chain over "
                "single-axis steps plus a greedy polish, reproducible from "
                "--seed."
              : "Price the whole grid and scan for the argmin.");
  cli.option_string("grid", &grid, "canonical|tiny|large",
                    "grid preset to search (default: canonical)")
      .option_string("out", &out_path, "FILE", "output file (default: stdout)")
      .option_string("metrics", &metrics_path, "FILE",
                     "record the metrics registry as JSON to FILE");
  if (command != "anneal") {
    cli.option_int("jobs", &threads, "N",
                   "worker threads for exact point pricing; 0 = hardware "
                   "concurrency (the artifact does not depend on this)");
  }
  if (command != "exhaustive") {
    cli.option_int("seed", &seed, "N",
                   "PRNG seed for the annealing chain (default: 1)");
    cli.option_int("iterations", &iterations, "N",
                   "annealing chain length (default: 4096)");
  }
  if (command == "bnb") {
    cli.option_int("leaf-block", &leaf_block, "N",
                   "subtrees of at most N points are priced exactly instead "
                   "of expanded (default: 64)");
    cli.flag("no-warm-start", &no_warm_start,
             "skip the annealing warm start of the incumbent");
  }
  cli.flag("no-trace", &no_trace, "omit the per-event trace from the artifact")
      .option_int("max-trace", &max_trace, "N",
                  "keep at most N trace events (default: 100000)")
      .flag("stats", &stats, "print search statistics to stderr");
  switch (cli.parse(argc - 1, argv + 1)) {
    case Cli::Parse::Help: return 0;
    case Cli::Parse::Error: return 2;
    case Cli::Parse::Ok: break;
  }

#ifdef SIGPIPE
  // A closed stdout pipe must surface as a stream error (and exit 2), not
  // kill the process mid-artifact with the default SIGPIPE disposition.
  std::signal(SIGPIPE, SIG_IGN);
#endif

  stamp::SearchRequest req;
  if (grid == "canonical") {
    req.config = stamp::sweep::SweepConfig::canonical();
  } else if (grid == "tiny") {
    req.config = stamp::sweep::SweepConfig::tiny();
  } else if (grid == "large") {
    req.config = stamp::sweep::SweepConfig::large();
  } else {
    std::cerr << "stamp_search: unknown grid preset '" << grid << "'\n";
    return 2;
  }
  req.method = command == "bnb"      ? stamp::SearchMethod::BranchAndBound
               : command == "anneal" ? stamp::SearchMethod::Anneal
                                     : stamp::SearchMethod::Exhaustive;
  req.seed = static_cast<std::uint64_t>(seed);
  req.threads =
      threads == 0 ? stamp::core::usable_hardware_threads() : threads;
  req.warm_start = !no_warm_start;
  req.anneal_iterations = static_cast<std::uint64_t>(iterations);
  req.leaf_block = static_cast<std::size_t>(leaf_block);
  req.record_trace = !no_trace;
  req.max_trace_events = static_cast<std::size_t>(max_trace);
  req.cancel = &g_cancel;

  try {
    stamp::Evaluator::set_metrics(!metrics_path.empty());

    std::signal(SIGINT, handle_cancel_signal);
    std::signal(SIGTERM, handle_cancel_signal);

    const stamp::Evaluator eval(
        {.machine = req.config.base, .objective = req.config.objective});
    const stamp::SearchResult result = eval.optimize(req);

    if (result.cancelled) {
      std::cerr << "stamp_search: cancelled by signal after "
                << result.stats.points_evaluated << " evaluated points\n";
      return 3;
    }

    if (out_path.empty() || out_path == "-") {
      stamp::search::write_json(result, std::cout);
    } else {
      stamp::report::AtomicFileWriter writer(out_path);
      if (!writer.ok()) {
        std::cerr << "stamp_search: cannot open '" << out_path
                  << "' for writing\n";
        return 2;
      }
      stamp::search::write_json(result, writer.stream());
      writer.commit();
    }

    if (!metrics_path.empty()) {
      std::ostringstream ss;
      stamp::Evaluator::write_metrics(ss);
      if (!write_text(metrics_path, ss.str())) {
        std::cerr << "stamp_search: cannot write metrics '" << metrics_path
                  << "'\n";
        return 2;
      }
    }

    if (stats) {
      const stamp::SearchStats& s = result.stats;
      std::cerr << "search: " << to_string(result.method) << " over "
                << result.grid_points << " points: " << s.points_evaluated
                << " evaluated ("
                << (result.grid_points != 0
                        ? 100.0 * static_cast<double>(s.points_evaluated) /
                              static_cast<double>(result.grid_points)
                        : 0.0)
                << "%), " << s.nodes_expanded << " expanded, "
                << s.nodes_pruned << " pruned, " << s.bound_evaluations
                << " bounds, " << s.incumbent_updates
                << " incumbent updates\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "stamp_search: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
