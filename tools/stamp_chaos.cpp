/// \file stamp_chaos.cpp
/// \brief The chaos harness, two modes:
///
///  - `stamp_chaos run`: seeded chaos suite — arm a deterministic FaultPlan,
///    run the fixed scenario suite through the real subsystems (STM retry
///    loop, mailboxes, supervised executor, machine simulator, governor,
///    server, fleet), and emit a stamp-chaos/v1 JSON report.
///  - `stamp_chaos campaign`: systematic fault-space exploration over one
///    `chaos::Scenario` — enumerate single and pair-wise injection
///    schedules from the observed decision streams, replay each verbatim,
///    check artifact byte-identity against the uninjected reference, shrink
///    failures to minimal replayable repros (`--shrink`), and replay a
///    repro file (`--replay`). Emits stamp-campaign/v1.
///
/// Determinism contract: both reports are pure functions of their inputs
/// (seed / schedule space). Fault decisions are keyed by logical actor
/// (process id, task id, core id), never by thread identity, and the reports
/// contain no wall-clock data and no worker counts — so `--jobs 1` and
/// `--jobs 4` produce byte-identical output. CI diffs exactly that.
///
/// Exit codes: 0 clean, 2 usage error, 4 invariant violations found (or a
/// replayed repro failed — the expected outcome for a repro), 1 internal
/// error.

#include "api/evaluator.hpp"
#include "chaos/chaos.hpp"
#include "dist/dist.hpp"
#include "fault/fault.hpp"
#include "machine/governor.hpp"
#include "machine/trace.hpp"
#include "msg/mailbox.hpp"
#include "report/atomic_file.hpp"
#include "report/json.hpp"
#include "report/json_parse.hpp"
#include "runtime/executor.hpp"
#include "serve/serve.hpp"
#include "stm/stm.hpp"
#include "stm/tarray.hpp"
#include "sweep/journal.hpp"
#include "sweep/pool.hpp"
#include "sweep/sweep.hpp"
#include "cli.hpp"
#include "inject.hpp"
#include "signals.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

// The chaos harness drives the sweep engine directly (run_sweep with an
// explicit pool) to keep drain semantics identical at every --jobs; that
// entry point carries a facade-deprecation note which must stay quiet here.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace {

using stamp::Distribution;
using stamp::Evaluator;
using stamp::Topology;

struct ScenarioReport {
  std::string name;
  /// Integer observations (counts, ids, booleans as 0/1), insertion order.
  std::vector<std::pair<std::string, long long>> counts;
  /// Model quantities (makespans, energies, kappa), insertion order.
  std::vector<std::pair<std::string, double>> numbers;
  /// Injections by site, from the injector (site declaration order).
  std::vector<std::pair<std::string, std::uint64_t>> faults;
};

void snapshot_faults(ScenarioReport& report) {
  report.faults = Evaluator::injector().injected_by_site();
}

/// Disjoint-TVar transactions under a forced-abort storm: every abort is an
/// injected one, so the retry/kappa machinery is exercised with a schedule
/// that is deterministic per process stream.
ScenarioReport scenario_stm_storm(std::uint64_t seed) {
  constexpr int kProcesses = 4;
  constexpr int kTxnsPerProcess = 64;
  stamp::fault::FaultPlan plan;
  plan.seed = seed;
  plan.with(stamp::fault::FaultSite::StmAbort, 0.25);
  Evaluator::with_faults(plan);

  Evaluator eval;
  stamp::stm::StmRuntime rt;
  stamp::stm::TArray<int> slots(kProcesses, 0);
  const auto outcome = eval.run(
      kProcesses, Distribution::IntraProc, [&](stamp::runtime::Context& ctx) {
        for (int i = 0; i < kTxnsPerProcess; ++i) {
          rt.atomically(ctx, [&](stamp::stm::Transaction& tx) {
            auto& var = slots.var(static_cast<std::size_t>(ctx.id()));
            tx.write(var, tx.read(var) + 1);
          });
        }
      });

  ScenarioReport report;
  report.name = "stm_storm";
  report.counts.emplace_back(
      "commits", static_cast<long long>(rt.stats().commits.load()));
  report.counts.emplace_back(
      "aborts", static_cast<long long>(rt.stats().aborts.load()));
  report.counts.emplace_back(
      "max_retries", static_cast<long long>(rt.stats().max_retries.load()));
  report.numbers.emplace_back("kappa_total",
                              outcome.run.total_counters().kappa);
  snapshot_faults(report);
  Evaluator::clear_faults();
  return report;
}

/// A certain-abort site against a bounded retry budget: the first transaction
/// exhausts its budget (RetryExhausted), the per-key injection cap then runs
/// out mid-way through the second, and the rest commit clean.
ScenarioReport scenario_stm_retry_budget(std::uint64_t seed) {
  constexpr int kTxns = 4;
  stamp::fault::FaultPlan plan;
  plan.seed = seed;
  plan.with(stamp::fault::FaultSite::StmAbort, 1.0, 0.0, /*max_per_key=*/5);
  Evaluator::with_faults(plan);

  Evaluator eval;
  stamp::stm::StmRuntime rt;
  rt.set_retry_policy(stamp::fault::RetryPolicy::bounded(3));
  stamp::stm::TVar<int> v(0);
  long long exhausted = 0;
  const auto outcome =
      eval.run(1, Distribution::IntraProc, [&](stamp::runtime::Context& ctx) {
        for (int i = 0; i < kTxns; ++i) {
          try {
            rt.atomically(ctx, [&](stamp::stm::Transaction& tx) {
              tx.write(v, tx.read(v) + 1);
            });
          } catch (const stamp::fault::RetryExhausted&) {
            ++exhausted;
          }
        }
      });
  static_cast<void>(outcome);

  ScenarioReport report;
  report.name = "stm_retry_budget";
  report.counts.emplace_back(
      "commits", static_cast<long long>(rt.stats().commits.load()));
  report.counts.emplace_back(
      "aborts", static_cast<long long>(rt.stats().aborts.load()));
  report.counts.emplace_back("retry_exhausted", exhausted);
  report.counts.emplace_back("committed_value",
                             static_cast<long long>(v.peek()));
  snapshot_faults(report);
  Evaluator::clear_faults();
  return report;
}

/// Independent mailbox tasks fanned out over a work-stealing pool. Each task
/// scopes its own actor key, so drop/delay/duplicate decisions follow the
/// task, not the worker thread — this is the scenario that proves the
/// any-worker-count determinism guarantee.
ScenarioReport scenario_mailbox_pipeline(std::uint64_t seed, int jobs) {
  constexpr std::size_t kTasks = 16;
  constexpr int kMessagesPerTask = 32;
  stamp::fault::FaultPlan plan;
  plan.seed = seed;
  plan.with(stamp::fault::FaultSite::MsgDrop, 0.2);
  plan.with(stamp::fault::FaultSite::MsgDuplicate, 0.15);
  plan.with(stamp::fault::FaultSite::MsgDelay, 0.1, /*magnitude=*/1000.0);
  Evaluator::with_faults(plan);

  std::vector<long long> delivered(kTasks, 0);
  stamp::sweep::Pool pool(jobs);
  pool.parallel_for(kTasks, [&](std::size_t task) {
    const stamp::fault::ActorScope actor(100 + task);
    stamp::msg::Mailbox<int> box;
    for (int m = 0; m < kMessagesPerTask; ++m) box.send(m);
    while (box.try_receive()) ++delivered[task];
  });

  long long total_delivered = 0;
  for (const long long d : delivered) total_delivered += d;

  ScenarioReport report;
  report.name = "mailbox_pipeline";
  report.counts.emplace_back(
      "sent", static_cast<long long>(kTasks) * kMessagesPerTask);
  report.counts.emplace_back("delivered", total_delivered);
  snapshot_faults(report);
  Evaluator::clear_faults();
  return report;
}

/// Fail-stop exactly process 2 once; the supervised executor retires its
/// processor and re-runs on the survivors. The surviving run's counters must
/// equal a fault-free reference run on the same surviving placement.
ScenarioReport scenario_supervised_failover(std::uint64_t seed) {
  constexpr int kProcesses = 4;
  stamp::fault::FaultPlan plan;
  plan.seed = seed;
  plan.with(stamp::fault::FaultSite::ProcFailStop, 1.0, 0.0,
            /*max_per_key=*/1, /*only_key=*/2);
  Evaluator::with_faults(plan);

  const auto body = [](stamp::runtime::Context& ctx) {
    ctx.int_ops(100.0 * (ctx.id() + 1));
    ctx.fp_ops(10.0 * (ctx.id() + 1));
  };
  Evaluator eval;
  const auto supervised =
      eval.run_supervised(kProcesses, Distribution::IntraProc, body);

  ScenarioReport report;
  report.name = "supervised_failover";
  snapshot_faults(report);
  Evaluator::clear_faults();

  const auto reference =
      stamp::runtime::run_processes(supervised.placement, body);
  const auto got = supervised.result.total_counters();
  const auto want = reference.total_counters();
  const bool matches = got.c_int == want.c_int && got.c_fp == want.c_fp;

  report.counts.emplace_back("failed_over", supervised.failed_over() ? 1 : 0);
  report.counts.emplace_back("failed_process",
                             supervised.failed_processes.empty()
                                 ? -1
                                 : supervised.failed_processes.front());
  report.counts.emplace_back(
      "excluded_processor", supervised.excluded_processors.empty()
                                ? -1
                                : supervised.excluded_processors.front());
  report.counts.emplace_back("matches_reference", matches ? 1 : 0);
  report.numbers.emplace_back("total_int_ops", got.c_int);
  return report;
}

/// Kill simulated core 0 (replay throws CoreFailure), re-place around it,
/// and replay under latency spikes: the degraded makespan is the price of
/// surviving the failure.
ScenarioReport scenario_sim_degraded(std::uint64_t seed) {
  constexpr int kProcesses = 4;
  stamp::fault::FaultPlan plan;
  plan.seed = seed;
  plan.with(stamp::fault::FaultSite::SimCoreFail, 1.0, 0.0, /*max_per_key=*/1,
            /*only_key=*/0);
  plan.with(stamp::fault::FaultSite::SimLatencySpike, 0.4, /*magnitude=*/4.0);
  Evaluator::with_faults(plan);

  Evaluator eval;
  const Topology topo = eval.machine().topology;
  std::vector<stamp::machine::ProcessTrace> traces(
      static_cast<std::size_t>(kProcesses));
  for (auto& trace : traces) {
    trace.push_back(
        {stamp::machine::TraceOp::Kind::Compute, 100.0, false, 20.0});
    trace.push_back({stamp::machine::TraceOp::Kind::ShmRead, 50.0, true, 0.0});
    trace.push_back({stamp::machine::TraceOp::Kind::Compute, 50.0, false, 0.0});
    trace.push_back({stamp::machine::TraceOp::Kind::ShmWrite, 25.0, true, 0.0});
  }

  long long failed_core = -1;
  stamp::machine::SimResult result;
  auto placement =
      stamp::runtime::PlacementMap::one_per_processor(topo, kProcesses);
  try {
    result = eval.simulate(traces, placement);
  } catch (const stamp::fault::CoreFailure& failure) {
    failed_core = failure.core();
    placement = stamp::runtime::PlacementMap::fill_first_excluding(
        topo, kProcesses, {failure.core()});
    result = eval.simulate(traces, placement);
  }

  ScenarioReport report;
  report.name = "sim_degraded";
  report.counts.emplace_back("failed_core", failed_core);
  report.numbers.emplace_back("makespan", result.makespan);
  report.numbers.emplace_back("energy", result.energy);
  snapshot_faults(report);
  Evaluator::clear_faults();
  return report;
}

/// No injection: the governor's graceful-degradation lever alone. A per-core
/// cap worth 3 threads of nominal power on a 4-thread core must shed exactly
/// one thread — the paper's 3-of-4-threads conclusion.
ScenarioReport scenario_governor_degrade(std::uint64_t seed) {
  static_cast<void>(seed);
  Evaluator eval;
  const Topology topo = eval.machine().topology;
  stamp::PowerEnvelope envelope;
  envelope.per_processor = 3.0;  // 3x the per-thread nominal power below
  const auto degraded =
      stamp::machine::degrade_threads(1.0, topo, envelope);

  ScenarioReport report;
  report.name = "governor_degrade";
  report.counts.emplace_back("threads_per_processor",
                             degraded.threads_per_processor);
  report.counts.emplace_back("degraded", degraded.degraded ? 1 : 0);
  report.counts.emplace_back("feasible", degraded.feasible ? 1 : 0);
  report.numbers.emplace_back("min_frequency",
                              degraded.governor.min_frequency_used);
  report.numbers.emplace_back("worst_slowdown",
                              degraded.governor.worst_slowdown);
  return report;
}

/// Kill-and-resume through the write-ahead journal: a journaled tiny-grid
/// sweep dies on an injected SweepPointFail, the journal is reloaded, and the
/// resumed run must reproduce the clean reference artifact byte-for-byte.
/// The pool drains every non-failing point before the failure surfaces, so
/// `replayed` (= grid points minus injected failures) is deterministic at any
/// --jobs — which keeps the report under the byte-identical contract.
ScenarioReport scenario_sweep_resume(std::uint64_t seed, int jobs) {
  namespace sw = stamp::sweep;
  const sw::SweepConfig cfg = sw::SweepConfig::tiny();
  sw::Pool pool(jobs);
  const std::string want = sw::to_json(sw::run_sweep(cfg, pool));

  const std::string journal_path =
      (std::filesystem::temp_directory_path() /
       ("stamp_chaos_sweep_resume_" + std::to_string(seed) + "_" +
        std::to_string(jobs) + ".journal"))
          .string();
  std::filesystem::remove(journal_path);

  stamp::fault::FaultPlan plan;
  plan.seed = seed;
  plan.with(stamp::fault::FaultSite::SweepPointFail, 0.2);
  Evaluator::with_faults(plan);

  long long first_run_failed = 0;
  {
    sw::Journal journal(journal_path, cfg);
    sw::SweepOptions opts;
    opts.journal = &journal;
    try {
      static_cast<void>(sw::run_sweep(cfg, pool, opts));
    } catch (const stamp::fault::SweepPointFailure&) {
      // Which failing point surfaces first is scheduling-dependent, so the
      // report records only that the run failed, never the index.
      first_run_failed = 1;
    }
  }

  ScenarioReport report;
  report.name = "sweep_resume";
  snapshot_faults(report);
  Evaluator::clear_faults();  // the resumed run must evaluate cleanly

  const sw::ResumeState resume = sw::ResumeState::load(journal_path, cfg);
  sw::SweepOptions opts;
  opts.resume = &resume;
  const sw::SweepResult resumed = sw::run_sweep(cfg, pool, opts);
  std::filesystem::remove(journal_path);

  report.counts.emplace_back("first_run_failed", first_run_failed);
  report.counts.emplace_back("replayed",
                             static_cast<long long>(resume.completed_points()));
  report.counts.emplace_back(
      "evaluated_after_resume",
      static_cast<long long>(resumed.records.size() -
                             resume.completed_points()));
  report.counts.emplace_back("match", sw::to_json(resumed) == want ? 1 : 0);
  return report;
}

/// The serving layer under fire: every request's worker crashes once (the
/// supervisor retries it), half the admissions are dropped in transit (the
/// client resends them), and some sends dawdle — yet every response must be
/// byte-identical to an uninjected engine's answer, nothing may hang, and
/// the drain must come back clean with zero overload rejections.
///
/// Determinism: all three sites key on the request id, capped at one
/// injection per key, so the drop set, the crash count, and the resend set
/// are pure functions of the seed. The client's retry interval is long
/// enough that surviving responses land first, which keeps the resend set
/// exactly equal to the drop set. Nothing timing-dependent is reported.
ScenarioReport scenario_serve(std::uint64_t seed) {
  namespace sv = stamp::serve;
  // A fixed request mix over the tiny grid: point evaluations, both chunk
  // halves, the placement and search planners, and one burn (load op).
  const std::vector<std::string> lines = {
      R"({"id":1,"op":"evaluate","index":0})",
      R"({"id":2,"op":"evaluate","index":7})",
      R"({"id":3,"op":"evaluate","index":15})",
      R"({"id":4,"op":"sweep_chunk","begin":0,"end":8})",
      R"({"id":5,"op":"sweep_chunk","begin":8,"end":16})",
      R"({"id":6,"op":"best_placement","processes":2})",
      R"({"id":7,"op":"best_placement","processes":8})",
      R"({"id":8,"op":"search","method":"bnb","seed":7})",
      R"({"id":9,"op":"search","method":"anneal","seed":7})",
      R"({"id":10,"op":"search","method":"exhaustive"})",
      R"({"id":11,"op":"burn","busy_ms":20})",
      R"({"id":12,"op":"evaluate","index":3})",
  };

  // Ground truth from an uninjected twin engine: the wire responses under
  // chaos must match these byte for byte.
  Evaluator::clear_faults();
  std::vector<std::string> expected;
  expected.reserve(lines.size());
  {
    sv::ServeEngine truth{sv::EngineOptions{}};
    for (const std::string& line : lines)
      expected.push_back(truth.handle(sv::parse_request(line), nullptr));
  }

  stamp::fault::FaultPlan plan;
  plan.seed = seed;
  plan.with(stamp::fault::FaultSite::ServeWorkerFail, 1.0, 0, 1);
  plan.with(stamp::fault::FaultSite::MsgDrop, 0.5, 0, 1);
  plan.with(stamp::fault::FaultSite::MsgDelay, 0.25, 20e6, 1);
  Evaluator::with_faults(plan);

  sv::ServerOptions options;
  options.port = 0;
  options.workers = 2;        // fixed: the report must not depend on --jobs
  options.queue_depth = 64;   // ample: overload rejection is not under test
  sv::Server server(options);
  server.start();

  std::vector<std::string> responses(lines.size());
  std::vector<bool> answered(lines.size(), false);
  std::size_t unanswered = lines.size();
  long long resent = 0;
  {
    sv::Socket sock = sv::Socket::connect_to(server.port());
    if (!sock.valid())
      throw std::runtime_error("serve: cannot connect to own server");
    for (const std::string& line : lines)
      if (!sock.write_all(line) || !sock.write_all("\n"))
        throw std::runtime_error("serve: send failed");

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    std::string line;
    while (unanswered > 0 && std::chrono::steady_clock::now() < deadline) {
      const auto status = sock.read_line(line, /*timeout_ms=*/2000);
      if (status == sv::Socket::ReadStatus::Line) {
        const auto root = stamp::report::JsonValue::parse(line);
        const auto* idv = root.find("id");
        if (idv == nullptr) throw std::runtime_error("serve: response sans id");
        const auto idx = static_cast<std::size_t>(idv->as_number()) - 1;
        if (idx >= lines.size()) throw std::runtime_error("serve: bad id");
        if (answered[idx]) continue;  // duplicate delivery; first wins
        answered[idx] = true;
        responses[idx] = line;
        --unanswered;
      } else if (status == sv::Socket::ReadStatus::Timeout) {
        // Quiet for a whole retry window: everything still unanswered was
        // dropped at admission. Ask again.
        for (std::size_t i = 0; i < lines.size(); ++i) {
          if (answered[i]) continue;
          ++resent;
          if (!sock.write_all(lines[i]) || !sock.write_all("\n"))
            throw std::runtime_error("serve: resend failed");
        }
      } else {
        throw std::runtime_error("serve: connection lost");
      }
    }
  }
  server.drain();
  const sv::ServerStats stats = server.stats();

  long long matched = 0;
  for (std::size_t i = 0; i < lines.size(); ++i)
    if (answered[i] && responses[i] == expected[i]) ++matched;

  ScenarioReport report;
  report.name = "serve";
  report.counts.emplace_back("requests",
                             static_cast<long long>(lines.size()));
  report.counts.emplace_back(
      "answered", static_cast<long long>(lines.size() - unanswered));
  report.counts.emplace_back("matched", matched);
  report.counts.emplace_back("resent", resent);
  report.counts.emplace_back("worker_restarts",
                             static_cast<long long>(stats.worker_restarts));
  report.counts.emplace_back("rejected_overload",
                             static_cast<long long>(stats.rejected_overload));
  report.counts.emplace_back("deadline_hits",
                             static_cast<long long>(stats.deadline_hits));
  snapshot_faults(report);
  Evaluator::clear_faults();
  return report;
}

/// The distributed tier under fire: a three-worker in-process fleet sweeps
/// the tiny grid, and the worker holding shard 1 is killed (drained) the
/// moment that shard is handed to it. The coordinator must declare the
/// worker dead, hand the shard to a survivor, and still merge a journal
/// whose replay matches the clean single-node artifact byte for byte.
///
/// Determinism: the kill decision keys on the *shard index* (FleetWorkerKill,
/// only_key=1, max one injection), never on the worker slot or thread, so
/// exactly one worker dies no matter which slot drew the short straw. Only
/// schedule-independent quantities are reported — reconnect-cycle counts are
/// timing-dependent and deliberately left out.
ScenarioReport scenario_fleet(std::uint64_t seed) {
  namespace sw = stamp::sweep;
  namespace sv = stamp::serve;
  const sw::SweepConfig cfg = sw::SweepConfig::tiny();

  // Reference artifact from a clean single-node sweep, before arming faults.
  Evaluator::clear_faults();
  sw::Pool pool(1);
  const std::string want = sw::to_json(sw::run_sweep(cfg, pool));

  stamp::fault::FaultPlan plan;
  plan.seed = seed;
  plan.with(stamp::fault::FaultSite::FleetWorkerKill, 1.0, 0.0,
            /*max_per_key=*/1, /*only_key=*/1);
  Evaluator::with_faults(plan);

  constexpr std::size_t kWorkers = 3;
  std::vector<std::unique_ptr<sv::Server>> servers;
  stamp::dist::FleetOptions fleet;
  for (std::size_t i = 0; i < kWorkers; ++i) {
    sv::ServerOptions options;
    options.port = 0;
    options.workers = 1;
    options.engine.grid = "tiny";
    servers.push_back(std::make_unique<sv::Server>(options));
    servers.back()->start();
    fleet.ports.push_back(servers.back()->port());
  }

  std::mutex kill_mutex;
  std::vector<bool> alive(kWorkers, true);
  long long workers_killed = 0;
  fleet.points_per_shard = 4;   // tiny grid -> 4 shards, so the kill lands
  fleet.reconnect_attempts = 4;  // the dead worker should give up quickly
  fleet.reconnect_delay_ms = 10;
  fleet.on_dispatch = [&](std::size_t shard, std::size_t slot) {
    const auto hit = stamp::fault::Injector::global().decide(
        stamp::fault::FaultSite::FleetWorkerKill, shard);
    if (!hit.has_value()) return;
    std::lock_guard<std::mutex> lock(kill_mutex);
    if (!alive[slot]) return;
    alive[slot] = false;
    ++workers_killed;
    servers[slot]->drain();  // the shard's request lands on a dead worker
  };

  const std::string journal_path =
      (std::filesystem::temp_directory_path() /
       ("stamp_chaos_fleet_" + std::to_string(seed) + ".journal"))
          .string();
  std::filesystem::remove(journal_path);

  stamp::dist::FleetStats fstats;
  {
    sw::Journal journal(journal_path, cfg);
    stamp::dist::Coordinator coordinator(cfg, fleet);
    fstats = coordinator.run(journal, nullptr);
  }

  ScenarioReport report;
  report.name = "fleet";
  snapshot_faults(report);
  Evaluator::clear_faults();

  for (std::size_t i = 0; i < kWorkers; ++i)
    if (alive[i]) servers[i]->drain();

  // Merge exactly like stamp_fleet does: replay the journal through the
  // normal resume machinery and compare against the clean artifact.
  const sw::ResumeState merged = sw::ResumeState::load(journal_path, cfg);
  sw::SweepOptions opts;
  opts.resume = &merged;
  const std::string got = sw::to_json(sw::run_sweep(cfg, pool, opts));
  std::filesystem::remove(journal_path);

  report.counts.emplace_back("workers", static_cast<long long>(kWorkers));
  report.counts.emplace_back("shards", static_cast<long long>(fstats.shards));
  report.counts.emplace_back("completed",
                             static_cast<long long>(fstats.completed));
  report.counts.emplace_back("reassigned",
                             static_cast<long long>(fstats.reassigned));
  report.counts.emplace_back("worker_failures",
                             static_cast<long long>(fstats.worker_failures));
  report.counts.emplace_back("records", static_cast<long long>(fstats.records));
  report.counts.emplace_back("workers_killed", workers_killed);
  report.counts.emplace_back("match", got == want ? 1 : 0);
  return report;
}

void write_report(std::ostream& os, std::uint64_t seed,
                  const std::vector<ScenarioReport>& scenarios) {
  stamp::report::JsonWriter json(os);
  json.begin_object();
  json.kv("schema", "stamp-chaos/v1");
  json.kv("seed", static_cast<long long>(seed));
  json.key("scenarios").begin_array();
  for (const ScenarioReport& s : scenarios) {
    json.begin_object();
    json.kv("name", s.name);
    for (const auto& [k, v] : s.counts) json.kv(k, v);
    for (const auto& [k, v] : s.numbers) json.kv(k, v);
    json.key("faults").begin_object();
    for (const auto& [site, n] : s.faults)
      json.kv(site, static_cast<long long>(n));
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << "\n";
}

/// The classic seeded suite: `stamp_chaos run`.
int run_command(int argc, char** argv) {
  int seed = 42;
  int jobs = 1;
  std::string out;
  std::vector<std::string> only;
  bool list = false;

  stamp::tools::Cli cli("stamp_chaos run",
                        "run seeded fault-injection campaigns and emit a "
                        "stamp-chaos/v1 report (byte-identical at any --jobs)");
  cli.option_int("seed", &seed, "N", "fault plan seed (default 42)")
      .option_int("jobs", &jobs, "N",
                  "pool width for fan-out scenarios; 0 = hardware")
      .option_string("out", &out, "FILE",
                     "write the report here (default stdout)")
      .option_list("only", &only, "NAME", "run just this scenario")
      .flag("list", &list, "list scenario names and exit");
  switch (cli.parse(argc, argv)) {
    case stamp::tools::Cli::Parse::Help:
      return 0;
    case stamp::tools::Cli::Parse::Error:
      return 2;
    case stamp::tools::Cli::Parse::Ok:
      break;
  }
  // Shared tool signal setup — here mostly for the SIGPIPE ignore, which the
  // serve scenario's socket writes depend on.
  stamp::tools::install_shutdown_handlers();

  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw > 0 ? static_cast<int>(hw) : 1;
  }

  const std::vector<std::string> names = {
      "stm_storm",       "stm_retry_budget",    "mailbox_pipeline",
      "supervised_failover", "sim_degraded",    "governor_degrade",
      "sweep_resume",    "serve",               "fleet"};
  if (list) {
    for (const std::string& n : names) std::cout << n << "\n";
    return 0;
  }
  for (const std::string& n : only) {
    if (std::find(names.begin(), names.end(), n) == names.end()) {
      std::cerr << "stamp_chaos: unknown scenario '" << n << "'\n";
      return 2;
    }
  }
  const auto selected = [&](const std::string& n) {
    return only.empty() || std::find(only.begin(), only.end(), n) != only.end();
  };

  const auto useed = static_cast<std::uint64_t>(seed);
  std::vector<ScenarioReport> reports;
  try {
    if (selected("stm_storm")) reports.push_back(scenario_stm_storm(useed));
    if (selected("stm_retry_budget"))
      reports.push_back(scenario_stm_retry_budget(useed));
    if (selected("mailbox_pipeline"))
      reports.push_back(scenario_mailbox_pipeline(useed, jobs));
    if (selected("supervised_failover"))
      reports.push_back(scenario_supervised_failover(useed));
    if (selected("sim_degraded"))
      reports.push_back(scenario_sim_degraded(useed));
    if (selected("governor_degrade"))
      reports.push_back(scenario_governor_degrade(useed));
    if (selected("sweep_resume"))
      reports.push_back(scenario_sweep_resume(useed, jobs));
    if (selected("serve")) reports.push_back(scenario_serve(useed));
    if (selected("fleet")) reports.push_back(scenario_fleet(useed));
  } catch (const std::exception& e) {
    stamp::Evaluator::clear_faults();
    std::cerr << "stamp_chaos: scenario failed: " << e.what() << "\n";
    return 1;
  }

  std::ostringstream buffer;
  write_report(buffer, useed, reports);
  if (out.empty()) {
    std::cout << buffer.str();
    std::cout.flush();
    if (!std::cout.good()) {
      std::cerr << "stamp_chaos: write to stdout failed\n";
      return 2;
    }
  } else {
    try {
      stamp::report::AtomicFileWriter::write_file(out, buffer.str());
    } catch (const std::exception& e) {
      std::cerr << "stamp_chaos: " << e.what() << "\n";
      return 2;
    }
  }
  return 0;
}

/// Write `content` to `path` atomically, or to stdout when `path` is empty.
/// Returns false (with a message) on failure.
bool emit(const std::string& path, const std::string& content) {
  if (path.empty()) {
    std::cout << content;
    std::cout.flush();
    if (!std::cout.good()) {
      std::cerr << "stamp_chaos: write to stdout failed\n";
      return false;
    }
    return true;
  }
  try {
    stamp::report::AtomicFileWriter::write_file(path, content);
  } catch (const std::exception& e) {
    std::cerr << "stamp_chaos: " << e.what() << "\n";
    return false;
  }
  return true;
}

/// Replay a stamp-schedule/v1 repro file against the scenario and report
/// pass/fail. Exit 0 when the invariant holds, 4 when the repro still
/// violates it (the expected outcome for a minimal repro).
int replay_schedule(
    const std::shared_ptr<const stamp::chaos::Scenario>& scenario,
    const std::string& replay_path, int watchdog_ms, const std::string& out) {
  namespace chaos = stamp::chaos;
  std::ifstream in(replay_path);
  if (!in) {
    std::cerr << "stamp_chaos: cannot read replay file '" << replay_path
              << "'\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  stamp::fault::Schedule schedule;
  try {
    schedule = stamp::fault::Schedule::from_json(text.str());
  } catch (const std::exception& e) {
    std::cerr << "stamp_chaos: bad replay file '" << replay_path
              << "': " << e.what() << "\n";
    return 2;
  }

  const chaos::TrialRun reference = chaos::run_trial(
      scenario, stamp::fault::Schedule{}, watchdog_ms, nullptr);
  if (reference.outcome != chaos::TrialOutcome::Pass) {
    std::cerr << "stamp_chaos: reference run failed: " << reference.error
              << "\n";
    return 1;
  }
  const chaos::TrialRun trial =
      chaos::run_trial(scenario, schedule, watchdog_ms, &reference.artifact);

  std::ostringstream buffer;
  {
    stamp::report::JsonWriter json(buffer);
    json.begin_object();
    json.kv("schema", "stamp-campaign-replay/v1");
    json.kv("scenario", scenario->name());
    json.kv("outcome", chaos::outcome_name(trial.outcome));
    json.kv("reference", reference.artifact);
    json.kv("artifact", trial.artifact);
    json.kv("error", trial.error);
    json.kv("injected", static_cast<long long>(trial.fired.size()));
    json.end_object();
    buffer << "\n";
  }
  if (!emit(out, buffer.str())) return 2;
  return trial.outcome == chaos::TrialOutcome::Pass ? 0 : 4;
}

/// Systematic fault-space exploration: `stamp_chaos campaign`.
int campaign_command(int argc, char** argv) {
  namespace chaos = stamp::chaos;
  std::string scenario_name;
  std::vector<std::string> site_names;
  std::uint64_t budget = 16;
  std::uint64_t pair_budget = 64;
  std::uint64_t max_trials = 2048;
  std::uint64_t shrink_cap = 256;
  int jobs = 1;
  int watchdog_ms = 20000;
  bool shrink = false;
  bool list = false;
  std::string repro;
  std::string replay;
  std::string out;

  stamp::tools::Cli cli(
      "stamp_chaos campaign",
      "systematically explore a scenario's fault space: enumerate single and "
      "pair-wise injection schedules, replay each verbatim, check artifact "
      "byte-identity against the uninjected reference, and shrink failures "
      "to minimal replayable repros (stamp-campaign/v1; exit 4 on "
      "violations)");
  cli.option_string("scenario", &scenario_name, "NAME",
                    "scenario to explore (see --list)")
      .option_list("sites", &site_names, "SITE",
                   "restrict enumeration to this fault site")
      .option_u64("budget", &budget, "N",
                  "decision indices swept per (site,key) stream (default 16)")
      .option_u64("pair-budget", &pair_budget, "N",
                  "cap on pair-wise trials (default 64)")
      .option_u64("max-trials", &max_trials, "N",
                  "cap on single-injection trials (default 2048)")
      .option_int("jobs", &jobs, "N",
                  "trials run concurrently; 0 = hardware (default 1)")
      .option_int("watchdog-ms", &watchdog_ms, "MS",
                  "per-trial hang budget (default 20000)")
      .flag("shrink", &shrink, "delta-debug failing schedules to minimal")
      .option_u64("shrink-cap", &shrink_cap, "N",
                  "ddmin probe-trial budget per failure (default 256)")
      .option_string("repro", &repro, "FILE",
                     "write the first shrunk failure as a replayable "
                     "stamp-schedule/v1 repro (implies --shrink)")
      .option_string("replay", &replay, "FILE",
                     "replay a stamp-schedule/v1 repro instead of "
                     "enumerating; exit 4 if it still fails")
      .option_string("out", &out, "FILE",
                     "write the report here (default stdout)")
      .flag("list", &list, "list campaign scenario names and exit");
  switch (cli.parse(argc, argv)) {
    case stamp::tools::Cli::Parse::Help:
      return 0;
    case stamp::tools::Cli::Parse::Error:
      return 2;
    case stamp::tools::Cli::Parse::Ok:
      break;
  }
  stamp::tools::install_shutdown_handlers();

  if (list) {
    for (const std::string& name : chaos::scenario_names())
      std::cout << name << "\n";
    return 0;
  }
  if (scenario_name.empty()) {
    std::cerr << "stamp_chaos: --scenario is required (one of:";
    for (const std::string& name : chaos::scenario_names())
      std::cerr << " " << name;
    std::cerr << ")\n";
    return 2;
  }
  const auto scenario = chaos::make_scenario(scenario_name);
  if (scenario == nullptr) {
    std::cerr << "stamp_chaos: unknown scenario '" << scenario_name
              << "' (valid:";
    for (const std::string& name : chaos::scenario_names())
      std::cerr << " " << name;
    std::cerr << ")\n";
    return 2;
  }

  chaos::CampaignOptions options;
  for (const std::string& name : site_names) {
    const auto site = stamp::fault::site_from_name(name);
    if (!site.has_value()) {
      std::cerr << "stamp_chaos: unknown fault site '" << name
                << "' (valid sites: " << stamp::tools::fault_site_names()
                << ")\n";
      return 2;
    }
    options.sites.push_back(*site);
  }

  if (!replay.empty())
    return replay_schedule(scenario, replay, watchdog_ms, out);

  options.budget = budget;
  options.pair_budget = pair_budget;
  options.max_trials = max_trials;
  options.watchdog_ms = watchdog_ms;
  options.shrink = shrink || !repro.empty();
  options.shrink_trial_cap = shrink_cap;

  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw > 0 ? static_cast<int>(hw) : 1;
  }

  chaos::CampaignResult result;
  try {
    const chaos::Campaign campaign(scenario, options);
    stamp::sweep::Pool pool(jobs);
    result = campaign.run(pool);
  } catch (const std::exception& e) {
    std::cerr << "stamp_chaos: campaign failed: " << e.what() << "\n";
    return 1;
  }

  std::ostringstream buffer;
  chaos::write_campaign_json(buffer, result);
  if (!emit(out, buffer.str())) return 2;

  if (!repro.empty()) {
    if (result.minimal.empty()) {
      std::cerr << "stamp_chaos: no failures to write to --repro (campaign "
                << "came back clean)\n";
    } else if (!emit(repro, result.minimal.front().minimal.to_json() + "\n")) {
      return 2;
    }
  }

  std::cerr << "stamp_chaos: " << result.scenario << ": "
            << result.trials.size() << " trials (" << result.singles
            << " singles, " << result.pairs << " pairs), "
            << result.failures.size() << " violations\n";
  return result.failures.empty() ? 0 : 4;
}

}  // namespace

int main(int argc, char** argv) {
  stamp::tools::Subcommands commands(
      "stamp_chaos",
      "chaos engineering for the STAMP stack: seeded fault-injection suites "
      "and systematic fault-space campaigns with schedule record/replay");
  commands
      .add("run",
           "run the seeded scenario suite and emit a stamp-chaos/v1 report")
      .add("campaign",
           "explore a scenario's fault space, shrink failures to replayable "
           "repros (stamp-campaign/v1)");
  std::string command;
  switch (commands.select(argc, argv, &command)) {
    case stamp::tools::Cli::Parse::Help:
      return 0;
    case stamp::tools::Cli::Parse::Error:
      return 2;
    case stamp::tools::Cli::Parse::Ok:
      break;
  }
  if (command == "run") return run_command(argc - 1, argv + 1);
  return campaign_command(argc - 1, argv + 1);
}
