/// \file stamp_trace.cpp
/// \brief CLI trace inspector: validate and summarize Chrome trace_event JSON
///        produced by the observability layer (`stamp_sweep --trace`,
///        `stamp::Evaluator::write_trace`).
///
/// Exit codes: 0 = trace is well-formed, 1 = malformed trace, 2 = usage / IO
/// error. CI runs `stamp_trace --validate` over the artifact it uploads, so a
/// broken exporter turns the PR red instead of shipping an unloadable trace.
///
/// Usage: see `stamp_trace --help` (generated from the option table).

#include "cli.hpp"
#include "obs/export.hpp"
#include "report/json_parse.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

using stamp::tools::Cli;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  out = ss.str();
  return true;
}

void print_summary(const stamp::obs::TraceSummary& s, std::ostream& os) {
  os << "events:          " << s.events << "\n"
     << "complete spans:  " << s.complete_spans << "\n"
     << "instants:        " << s.instants << "\n"
     << "total span time: " << s.total_span_us << " us\n";
  os << "by category:\n";
  for (const auto& [category, count] : s.events_by_category)
    os << "  " << category << ": " << count << "\n";
}

void print_top(const stamp::obs::TraceSummary& s, std::size_t top,
               std::ostream& os) {
  std::vector<std::pair<std::string, std::size_t>> names(
      s.events_by_name.begin(), s.events_by_name.end());
  std::sort(names.begin(), names.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (names.size() > top) names.resize(top);
  os << "top events by count:\n";
  for (const auto& [name, count] : names)
    os << "  " << count << "  " << name << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  bool validate = false;
  bool summary = false;
  int top = 0;

  Cli cli("stamp_trace",
          "Validate and summarize a Chrome trace_event JSON file produced by "
          "the STAMP observability layer.");
  cli.positional("trace.json", &trace_path, "trace file to inspect")
      .flag("validate", &validate,
            "check well-formedness only; exit 0/1, no output on success")
      .flag("summary", &summary, "print event counts and span totals")
      .option_int("top", &top, "N", "print the N most frequent event names");
  switch (cli.parse(argc, argv)) {
    case Cli::Parse::Help: return 0;
    case Cli::Parse::Error: return 2;
    case Cli::Parse::Ok: break;
  }
  if (!validate && !summary && top == 0) summary = true;

  std::string text;
  if (!read_file(trace_path, text)) {
    std::cerr << "stamp_trace: cannot read '" << trace_path << "'\n";
    return 2;
  }

  stamp::obs::TraceSummary s;
  try {
    s = stamp::obs::summarize_chrome_trace(text);
  } catch (const std::exception& e) {
    std::cerr << "stamp_trace: malformed trace: " << e.what() << "\n";
    return 1;
  }

  if (summary) print_summary(s, std::cout);
  if (top > 0) print_top(s, static_cast<std::size_t>(top), std::cout);
  if (validate && !summary && top == 0)
    std::cerr << "stamp_trace: ok (" << s.events << " events)\n";
  return 0;
}
