/// \file stamp_serve.cpp
/// \brief The long-running evaluation server CLI: serve `stamp-serve/v1`
///        requests (evaluate / sweep_chunk / search / best_placement) over a
///        newline-delimited JSON socket on 127.0.0.1, with bounded admission
///        (503 on overload), per-request deadlines (504), supervised workers,
///        and graceful drain on SIGINT/SIGTERM.
///
/// Lifecycle: bind (ephemeral port with --port 0, written to --port-file so
/// scripts can find it), serve until SIGINT/SIGTERM, then drain — stop
/// accepting, finish every admitted request, flush metrics, exit 0. A failed
/// bind or bad flags exit 2. Fault injection (--inject) arms the same
/// deterministic injector the chaos harness uses, so CI can hammer a *real*
/// server process with seeded stalls/drops/crashes and diff the responses
/// against an uninjected run.
///
/// Usage: see `stamp_serve --help` (generated from the option table).

#include "api/stamp.hpp"
#include "cli.hpp"
#include "inject.hpp"
#include "report/atomic_file.hpp"
#include "serve/serve.hpp"
#include "signals.hpp"

#include <chrono>
#include <cstdint>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using stamp::tools::Cli;

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t port = 0;
  std::uint64_t workers = 2;
  std::uint64_t queue_depth = 64;
  std::uint64_t deadline_ms = 0;
  std::uint64_t admission_wait_ms = 0;
  std::uint64_t cache_entries = 4096;
  std::uint64_t cache_ttl_ms = 0;
  bool cache_no_admission = false;
  std::string grid = "tiny";
  std::string port_file;
  std::string metrics_path;
  std::vector<std::string> injects;
  std::uint64_t fault_seed = 42;

  Cli cli("stamp_serve",
          "Serve stamp-serve/v1 evaluation requests over newline-delimited "
          "JSON on 127.0.0.1; drain gracefully on SIGINT/SIGTERM.");
  cli.option_u64("port", &port, "PORT",
                 "TCP port on 127.0.0.1; 0 picks an ephemeral port "
                 "(default 0; see --port-file)")
      .option_u64("workers", &workers, "N", "worker threads (default 2)")
      .option_u64("queue-depth", &queue_depth, "N",
                  "admission queue capacity; a full queue answers 503 "
                  "(default 64)")
      .option_u64("deadline-ms", &deadline_ms, "MS",
                  "default per-request deadline; overdue requests answer 504 "
                  "(0 = none)")
      .option_u64("admission-wait-ms", &admission_wait_ms, "MS",
                  "how long admission waits for queue space before 503 "
                  "(default 0)")
      .option_string("grid", &grid, "tiny|canonical",
                     "grid preset served (default: tiny)")
      .option_u64("cache-entries", &cache_entries, "N",
                  "cost-cache bound per shard; 0 = unbounded (default 4096)")
      .option_u64("cache-ttl-ms", &cache_ttl_ms, "MS",
                  "cost-cache entry TTL; stale entries recompute (0 = never)")
      .flag("cache-no-admission", &cache_no_admission,
            "disable the cache doorkeeper (admit every key immediately)")
      .option_string("port-file", &port_file, "FILE",
                     "write the bound port number here (atomic), for scripts "
                     "using --port 0")
      .option_string("metrics", &metrics_path, "FILE",
                     "write the metrics registry as JSON here on drain")
      .option_list("inject", &injects, "SITE=P[,mag=M][,max=N][,key=K]",
                   "arm a fault site (repeatable), e.g. "
                   "serve_worker_fail=1.0,max=1")
      .option_u64("fault-seed", &fault_seed, "SEED",
                  "seed for --inject decisions (default 42)");
  switch (cli.parse(argc, argv)) {
    case Cli::Parse::Help: return 0;
    case Cli::Parse::Error: return 2;
    case Cli::Parse::Ok: break;
  }

  stamp::tools::install_shutdown_handlers();

  if (!injects.empty()) {
    stamp::fault::FaultPlan plan;
    plan.seed = fault_seed;
    for (const std::string& spec : injects) {
      if (const auto problem = stamp::tools::parse_inject_spec(spec, plan)) {
        std::cerr << "stamp_serve: bad --inject spec: " << *problem << "\n";
        return 2;
      }
    }
    stamp::Evaluator::with_faults(plan);
  }

  stamp::serve::ServerOptions options;
  options.port = static_cast<std::uint16_t>(port);
  options.workers = static_cast<int>(workers == 0 ? 1 : workers);
  options.queue_depth = queue_depth == 0 ? 1 : queue_depth;
  options.default_deadline = std::chrono::milliseconds(deadline_ms);
  options.admission_wait = std::chrono::milliseconds(admission_wait_ms);
  options.engine.grid = grid;
  options.engine.cache_entries_per_shard = cache_entries;
  options.engine.cache_ttl = std::chrono::milliseconds(cache_ttl_ms);
  options.engine.cache_admission = !cache_no_admission;

  stamp::Evaluator::set_metrics(!metrics_path.empty());

  try {
    stamp::serve::Server server(options);
    server.start();
    std::cerr << "stamp_serve: serving grid '" << grid << "' on 127.0.0.1:"
              << server.port() << " (workers " << options.workers
              << ", queue " << options.queue_depth << ")\n";
    // The bound port is the only thing ever printed on stdout, so callers
    // (scripts/serve_load.sh, stamp_fleet's spawn mode) can capture it from a
    // pipe without racing the --port-file write. endl flushes the pipe.
    std::cout << server.port() << std::endl;
    if (!port_file.empty())
      stamp::report::AtomicFileWriter::write_file(
          port_file, std::to_string(server.port()) + "\n");

    while (!stamp::tools::shutdown_requested())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::cerr << "stamp_serve: draining...\n";
    server.drain();
    const stamp::serve::ServerStats stats = server.stats();
    std::cerr << "stamp_serve: drained: " << stats.responses
              << " responses, " << stats.rejected_overload << " overloaded, "
              << stats.deadline_hits << " deadline, "
              << stats.worker_restarts << " worker restarts\n";

    if (!metrics_path.empty()) {
      std::ostringstream metrics;
      stamp::Evaluator::write_metrics(metrics);
      stamp::report::AtomicFileWriter::write_file(metrics_path, metrics.str());
    }
  } catch (const std::exception& e) {
    std::cerr << "stamp_serve: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
