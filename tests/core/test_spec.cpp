#include "core/spec.hpp"

#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace stamp::spec {
namespace {

MachineModel niagara_no_cap() {
  MachineModel m = presets::niagara();
  m.envelope = PowerEnvelope{};
  return m;
}

TEST(Spec, BuilderValidates) {
  ProcessBuilder b("p", Attributes{});
  EXPECT_THROW(b.replicas(0), ParamError);
}

TEST(Spec, TotalCountersAggregate) {
  ProcessBuilder b("p", Attributes{});
  b.loop(counters::message_passing(2, 2, 0, 0), 10, 0, 3).local(5, 5);
  const ProcessSpec spec = b.build();
  const CostCounters t = spec.total_counters();
  EXPECT_DOUBLE_EQ(t.m_s_a, 20);
  EXPECT_DOUBLE_EQ(t.m_r_a, 20);
  EXPECT_DOUBLE_EQ(t.c_int, 35);  // 10 loop checks (3 each) + 5 local
  EXPECT_DOUBLE_EQ(t.c_fp, 5);
}

TEST(Spec, TooManyProcessorsRejected) {
  Program prog;
  prog.add(ProcessBuilder("big", Attributes{.distribution = Distribution::InterProc})
               .replicas(9));  // niagara has 8 processors
  EXPECT_THROW((void)prog.evaluate(niagara_no_cap()), ParamError);
}

TEST(Spec, IntraSpecPacksInterSpecSpreads) {
  Program prog;
  prog.add(ProcessBuilder("packed",
                          Attributes{.distribution = Distribution::IntraProc})
               .replicas(4)
               .local(10, 0));
  prog.add(ProcessBuilder("spread",
                          Attributes{.distribution = Distribution::InterProc})
               .replicas(3)
               .local(10, 0));
  const Evaluation eval = prog.evaluate(niagara_no_cap());
  ASSERT_EQ(eval.specs.size(), 2u);
  EXPECT_EQ(eval.specs[0].processors_spanned, 1);  // 4 replicas on one core
  EXPECT_EQ(eval.specs[1].processors_spanned, 3);  // one per core
  EXPECT_EQ(eval.processors_used, 4);
  EXPECT_EQ(eval.hardware_threads_used, 7);
}

TEST(Spec, JacobiSpecMatchesClosedForm) {
  // The paper's Jacobi as a spec: n replicas, each looping over the S-round
  // counters of Section 4, evaluated at the lower-bound parameters.
  const int n = 8;
  const int iters = 20;
  const analysis::JacobiParams lb = analysis::jacobi_lower_bound_params(n);

  MachineModel m;
  m.topology = {.chips = 1, .processors_per_chip = 1,
                .threads_per_processor = n};  // single wide core: one L
  m.params = {.ell_a = 0, .ell_e = 0, .g_sh_a = 0, .g_sh_e = 0,
              .L_a = lb.L, .L_e = lb.L, .g_mp_a = lb.g, .g_mp_e = lb.g};
  m.energy.w_int = 1;
  m.energy.w_fp = 2;
  m.energy.w_m_s = m.energy.w_m_r = 2;

  Program prog;
  prog.add(ProcessBuilder(
               "jacobi", Attributes{Distribution::IntraProc,
                                    ExecMode::Asynchronous, CommMode::Synchronous})
               .replicas(n)
               .loop(analysis::jacobi_round_counters(n), iters, 0, 3));

  const Evaluation eval = prog.evaluate(m);
  const analysis::JacobiAnalysis a = analysis::jacobi(n, lb, m.energy);
  // Per-replica time = iters * (T_S-round + 3 outside ops).
  EXPECT_NEAR(eval.specs[0].per_replica.time, iters * (a.T_s_round + 3), 1e-9);
  EXPECT_NEAR(eval.specs[0].per_replica.energy, iters * (a.E_s_round + 3), 1e-9);
  // Power bound of the paper holds for the spec evaluation too.
  EXPECT_LE(eval.specs[0].power,
            analysis::jacobi_power_upper_bound(2, 2, 1) + 1e-9);
}

TEST(Spec, SplitFollowsPlacementNotKeyword) {
  // 8 replicas marked intra on 4-thread cores span 2 processors: only 3 of 7
  // peers are truly intra, so some communication must be charged inter.
  Program prog;
  CostCounters round = counters::message_passing(7, 7, 0, 0);
  round.c_int = 1;
  prog.add(ProcessBuilder("span",
                          Attributes{.distribution = Distribution::IntraProc})
               .replicas(8)
               .unit(round));
  const MachineModel m = niagara_no_cap();
  const Evaluation spanning = prog.evaluate(m);

  Program all_intra;
  all_intra.add(
      ProcessBuilder("fit", Attributes{.distribution = Distribution::IntraProc})
          .replicas(4)
          .unit(round));
  const Evaluation fitting = all_intra.evaluate(m);

  // The spanning spec pays inter latency/bandwidth; the fitting one does not.
  EXPECT_GT(spanning.specs[0].per_replica.time, fitting.specs[0].per_replica.time);
}

TEST(Spec, ParallelCompositionRules) {
  Program prog;
  prog.add(ProcessBuilder("slow", Attributes{}).local(100, 0));
  prog.add(ProcessBuilder("fast", Attributes{}).replicas(3).local(10, 0));
  const Evaluation eval = prog.evaluate(niagara_no_cap());
  const double w_fp = niagara_no_cap().energy.w_fp;
  EXPECT_DOUBLE_EQ(eval.total.time, 100);               // max
  EXPECT_DOUBLE_EQ(eval.total.energy, (100 + 30) * w_fp);  // sum
}

TEST(Spec, EnvelopeCheckedPerProcessor) {
  MachineModel m = presets::niagara();
  // Find the per-replica power of a hot spec, then cap below 4x it.
  Program prog;
  prog.add(ProcessBuilder("hot", Attributes{.distribution = Distribution::IntraProc})
               .replicas(4)
               .loop(counters::local(100, 0), 10));
  m.envelope = PowerEnvelope{};
  const Evaluation unconstrained = prog.evaluate(m);
  const double per = unconstrained.specs[0].power;

  m.envelope.per_processor = 3.5 * per;  // 4 co-located replicas exceed it
  m.envelope.per_chip = 0;
  m.envelope.system = 0;
  const Evaluation capped = prog.evaluate(m);
  EXPECT_FALSE(capped.fits_envelope);

  // The inter version spreads and fits.
  Program spread;
  spread.add(ProcessBuilder("hot", Attributes{.distribution = Distribution::InterProc})
                 .replicas(4)
                 .loop(counters::local(100, 0), 10));
  EXPECT_TRUE(spread.evaluate(m).fits_envelope);
}

TEST(Spec, DescribePrintsPaperStyle) {
  Program prog;
  prog.add(ProcessBuilder("transfer",
                          Attributes{Distribution::IntraProc,
                                     ExecMode::Transactional,
                                     CommMode::Synchronous})
               .replicas(2)
               .unit(analysis::transfer_counters(0, true)));
  std::ostringstream os;
  prog.describe(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("transfer [intra_proc, trans_exec, synch_comm] x2"),
            std::string::npos);
  EXPECT_NE(out.find("S-round"), std::string::npos);
}

TEST(Spec, MetricsDerivedFromTotal) {
  Program prog;
  prog.add(ProcessBuilder("p", Attributes{}).local(0, 10));
  const Evaluation eval = prog.evaluate(niagara_no_cap());
  EXPECT_DOUBLE_EQ(eval.metrics.D, eval.total.time);
  EXPECT_DOUBLE_EQ(eval.metrics.PDP, eval.total.energy);
  EXPECT_DOUBLE_EQ(eval.metrics.EDP, eval.total.energy * eval.total.time);
}

// Property sweeps over the spec evaluator.
class SpecReplicaSweep : public ::testing::TestWithParam<int> {};

TEST_P(SpecReplicaSweep, EnergyScalesLinearlyTimeStaysPerReplica) {
  // Local-only replicas: total energy is replicas x per-replica energy and
  // total time equals the per-replica time (parallel composition).
  const int r = GetParam();
  Program prog;
  prog.add(ProcessBuilder("w", Attributes{.distribution = Distribution::InterProc})
               .replicas(r)
               .local(100, 20));
  const MachineModel m = niagara_no_cap();
  if (r > m.topology.total_processors()) {
    EXPECT_THROW((void)prog.evaluate(m), ParamError);
    return;
  }
  const Evaluation eval = prog.evaluate(m);
  const double per_energy = 100 * m.energy.w_fp + 20 * m.energy.w_int;
  EXPECT_DOUBLE_EQ(eval.total.energy, r * per_energy);
  EXPECT_DOUBLE_EQ(eval.total.time, 120);
  EXPECT_EQ(eval.hardware_threads_used, r);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpecReplicaSweep,
                         ::testing::Values(1, 2, 5, 8, 9));

class SpecIntraGroupSweep : public ::testing::TestWithParam<int> {};

TEST_P(SpecIntraGroupSweep, MoreCoLocationNeverSlowsCommunication) {
  // For a communication-only spec on a machine with wide cores, raising the
  // thread count per processor (more true co-location) must not increase the
  // per-replica time.
  const int tpp = GetParam();
  MachineModel m = niagara_no_cap();
  m.topology.threads_per_processor = tpp;
  m.topology.processors_per_chip = 16;
  Program prog;
  CostCounters round = counters::message_passing(7, 7, 0, 0);
  round.c_int = 1;
  prog.add(ProcessBuilder("comm",
                          Attributes{.distribution = Distribution::IntraProc})
               .replicas(8)
               .unit(round));
  static double prev_time = -1;
  const Evaluation eval = prog.evaluate(m);
  if (prev_time >= 0) {
    EXPECT_LE(eval.total.time, prev_time + 1e-9);
  }
  prev_time = eval.total.time;
}

// Ordered sweep: growing thread width strictly improves co-location.
INSTANTIATE_TEST_SUITE_P(Sweep, SpecIntraGroupSweep,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace stamp::spec
