#include "core/function_ref.hpp"

#include <gtest/gtest.h>

#include <string>
#include <type_traits>

namespace stamp::core {
namespace {

int twice(int x) { return 2 * x; }

TEST(FunctionRef, BindsAFreeFunction) {
  function_ref<int(int)> f = twice;
  EXPECT_EQ(f(21), 42);
}

TEST(FunctionRef, BindsACapturingLambda) {
  int base = 100;
  auto add = [&base](int x) { return base + x; };
  function_ref<int(int)> f = add;
  EXPECT_EQ(f(7), 107);
  base = 200;  // a reference, not a copy: sees the update
  EXPECT_EQ(f(7), 207);
}

TEST(FunctionRef, BindsAMutableLambda) {
  int calls = 0;
  auto count = [calls]() mutable { return ++calls; };
  function_ref<int()> f = count;
  EXPECT_EQ(f(), 1);
  EXPECT_EQ(f(), 2);  // mutates the referenced lambda, not a copy
}

TEST(FunctionRef, BindsAConstCallable) {
  const auto square = [](int x) { return x * x; };
  function_ref<int(int)> f = square;
  EXPECT_EQ(f(9), 81);
}

TEST(FunctionRef, ForwardsReferenceArguments) {
  auto append = [](std::string& s) { s += "!"; };
  function_ref<void(std::string&)> f = append;
  std::string s = "hi";
  f(s);
  EXPECT_EQ(s, "hi!");
}

TEST(FunctionRef, TemporaryIsValidForTheDurationOfACall) {
  // The idiom every hot-path call site relies on: pass a lambda rvalue
  // straight into a function taking function_ref by value.
  auto invoke = [](function_ref<int(int)> f) { return f(5); };
  EXPECT_EQ(invoke([](int x) { return x + 1; }), 6);
}

TEST(FunctionRef, IsTwoPointersAndTriviallyCopyable) {
  using F = function_ref<void(int)>;
  EXPECT_LE(sizeof(F), 2 * sizeof(void*));
  EXPECT_TRUE(std::is_trivially_copyable_v<F>);
  EXPECT_FALSE(std::is_default_constructible_v<F>);
}

TEST(FunctionRef, CopiesAliasTheSameCallable) {
  int hits = 0;
  auto bump = [&hits] { ++hits; };
  function_ref<void()> a = bump;
  function_ref<void()> b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  a();
  b();
  EXPECT_EQ(hits, 2);
}

}  // namespace
}  // namespace stamp::core
