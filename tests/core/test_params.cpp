#include "core/params.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace stamp {
namespace {

TEST(Params, DefaultsValidate) {
  EXPECT_NO_THROW(MachineParams{}.validate());
  EXPECT_NO_THROW(EnergyParams{}.validate());
  EXPECT_NO_THROW(Topology{}.validate());
  EXPECT_NO_THROW(PowerEnvelope{}.validate());
  EXPECT_NO_THROW(MachineModel{}.validate());
}

TEST(Params, IntraFasterThanInterEnforced) {
  MachineParams p;
  p.ell_a = 30;
  p.ell_e = 10;  // intra slower than inter: nonsense
  EXPECT_THROW(p.validate(), ParamError);

  MachineParams q;
  q.L_a = 100;
  q.L_e = 10;
  EXPECT_THROW(q.validate(), ParamError);

  MachineParams r;
  r.g_sh_a = 9;
  r.g_sh_e = 1;
  EXPECT_THROW(r.validate(), ParamError);

  MachineParams s;
  s.g_mp_a = 9;
  s.g_mp_e = 1;
  EXPECT_THROW(s.validate(), ParamError);
}

TEST(Params, NegativeValuesRejected) {
  MachineParams p;
  p.ell_a = -1;
  EXPECT_THROW(p.validate(), ParamError);
  EnergyParams e;
  e.w_int = 0;  // zero energy per op is nonphysical
  EXPECT_THROW(e.validate(), ParamError);
}

TEST(Params, TopologyCounts) {
  const Topology t{.chips = 2, .processors_per_chip = 8, .threads_per_processor = 4};
  EXPECT_EQ(t.total_processors(), 16);
  EXPECT_EQ(t.total_threads(), 64);
}

TEST(Params, TopologyRejectsEmpty) {
  Topology t;
  t.chips = 0;
  EXPECT_THROW(t.validate(), ParamError);
  t = Topology{};
  t.processors_per_chip = 0;
  EXPECT_THROW(t.validate(), ParamError);
  t = Topology{};
  t.threads_per_processor = -1;
  EXPECT_THROW(t.validate(), ParamError);
}

TEST(Params, EnvelopeHierarchyChecked) {
  PowerEnvelope e;
  e.per_processor = 100;
  e.per_chip = 50;  // processor cap exceeds chip cap
  EXPECT_THROW(e.validate(), ParamError);

  PowerEnvelope f;
  f.per_chip = 100;
  f.system = 50;
  EXPECT_THROW(f.validate(), ParamError);

  PowerEnvelope g;
  g.per_processor = 10;  // chip unconstrained: fine
  g.system = 100;
  EXPECT_NO_THROW(g.validate());
}

// -- the inter-node (cluster) tier -------------------------------------------

TEST(Params, NetworkSlowerThanInterEnforced) {
  MachineParams p;
  p.L_net = p.L_e - 1;  // crossing nodes faster than crossing chips: nonsense
  EXPECT_THROW(p.validate(), ParamError);

  MachineParams q;
  q.g_net = q.g_mp_e - 1;
  EXPECT_THROW(q.validate(), ParamError);

  MachineParams r;
  r.L_net = -1;
  EXPECT_THROW(r.validate(), ParamError);

  EnergyParams e;
  e.w_net = -1;
  EXPECT_THROW(e.validate(), ParamError);
}

TEST(Params, TopologyNodesMultiplyAndValidate) {
  const Topology t{.nodes = 3, .chips = 2, .processors_per_chip = 8,
                   .threads_per_processor = 4};
  EXPECT_EQ(t.total_processors(), 48);
  EXPECT_EQ(t.total_threads(), 192);
  EXPECT_NO_THROW(t.validate());

  Topology bad;
  bad.nodes = 0;
  EXPECT_THROW(bad.validate(), ParamError);
}

// Single-node topologies must print exactly as they always have (the node
// tier is invisible until it is used), and multi-node ones must show it.
TEST(Params, TopologyPrintsNodesOnlyWhenClustered) {
  std::ostringstream single;
  single << Topology{};
  EXPECT_EQ(single.str().find("node"), std::string::npos);

  std::ostringstream cluster;
  cluster << Topology{.nodes = 4};
  EXPECT_NE(cluster.str().find("4 node(s)"), std::string::npos);
}

class PresetTest : public ::testing::TestWithParam<MachineModel (*)()> {};

TEST_P(PresetTest, PresetIsValid) {
  const MachineModel m = GetParam()();
  EXPECT_NO_THROW(m.validate());
  EXPECT_FALSE(m.name.empty());
}

TEST_P(PresetTest, PresetHasIntraAdvantage) {
  const MachineModel m = GetParam()();
  EXPECT_LT(m.params.ell_a, m.params.ell_e);
  EXPECT_LT(m.params.L_a, m.params.L_e);
  EXPECT_LT(m.params.g_sh_a, m.params.g_sh_e);
  EXPECT_LT(m.params.g_mp_a, m.params.g_mp_e);
}

TEST_P(PresetTest, StreamingWorks) {
  std::ostringstream os;
  os << GetParam()();
  EXPECT_FALSE(os.str().empty());
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetTest,
                         ::testing::Values(&presets::niagara, &presets::desktop,
                                           &presets::embedded, &presets::server));

TEST(Presets, NiagaraMatchesFigure1) {
  const MachineModel m = presets::niagara();
  // Figure 1: one chip, 8 processors, 4 threads each = 32 hardware threads.
  EXPECT_EQ(m.topology.chips, 1);
  EXPECT_EQ(m.topology.processors_per_chip, 8);
  EXPECT_EQ(m.topology.threads_per_processor, 4);
  EXPECT_EQ(m.topology.total_threads(), 32);
}

TEST(Presets, EmbeddedIsMostPowerConstrained) {
  EXPECT_LT(presets::embedded().envelope.per_processor,
            presets::desktop().envelope.per_processor);
  EXPECT_LT(presets::embedded().envelope.system, presets::niagara().envelope.system);
}

TEST(Presets, ServerHasLargestTopology) {
  EXPECT_GT(presets::server().topology.total_threads(),
            presets::niagara().topology.total_threads());
}

}  // namespace
}  // namespace stamp
