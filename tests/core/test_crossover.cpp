#include "core/crossover.hpp"

#include "core/analysis.hpp"
#include "core/cost_model.hpp"
#include "models/models.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stamp {
namespace {

TEST(Crossover, ValidatesBracket) {
  const CostFn f = [](long long x) { return static_cast<double>(x); };
  EXPECT_THROW((void)find_crossover(f, f, 5, 5), std::invalid_argument);
  EXPECT_THROW((void)find_crossover(f, f, 6, 5), std::invalid_argument);
}

TEST(Crossover, LinearVsConstant) {
  // f = x, g = 10: g wins until x < 10; winner flips at x = 10 (tie) -> 11.
  const CostFn f = [](long long x) { return static_cast<double>(x); };
  const CostFn g = [](long long) { return 10.0; };
  const auto c = find_crossover(f, g, 1, 100);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->at, 11);  // first x where g strictly wins over f's reign at lo
  EXPECT_LE(c->f_before, c->g_before);  // x = 10 is an exact tie
  EXPECT_GT(c->f_after, c->g_after);
}

TEST(Crossover, NoCrossoverReturnsEmpty) {
  const CostFn f = [](long long x) { return static_cast<double>(x); };
  const CostFn g = [](long long x) { return static_cast<double>(x) + 5; };
  EXPECT_FALSE(find_crossover(f, g, 1, 1000).has_value());
}

TEST(Crossover, FirstWinSemantics) {
  // f = 100/x (improves), g = 10 (flat): f starts losing, wins for x > 10.
  const CostFn f = [](long long x) { return 100.0 / static_cast<double>(x); };
  const CostFn g = [](long long) { return 10.0; };
  const auto x = first_win(f, g, 1, 1000);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(*x, 11);
  // Already winning at lo -> nothing to find.
  EXPECT_FALSE(first_win(f, g, 50, 1000).has_value());
  // Never winning -> empty.
  const CostFn h = [](long long) { return 1.0; };
  EXPECT_FALSE(first_win(g, h, 1, 1000).has_value());
}

TEST(Crossover, PaperPowerWallCrossover) {
  // Equal-power speedup p^(2/3) crosses 2 between p = 2 and p = 3
  // (2^1.5 ~ 2.83): the paper's "more than 2 with the 8 cores" has slack.
  const CostFn speedup_deficit = [](long long p) {
    return 2.0 - std::pow(static_cast<double>(p), 2.0 / 3.0);
  };
  const CostFn zero = [](long long) { return 0.0; };
  const auto c = first_win(speedup_deficit, zero, 1, 64);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, 3);  // first integer core count beating speedup 2
}

TEST(Crossover, PramVsStampGrowsApart) {
  // PRAM and a communication-charging model never cross back: the gap is
  // monotone, so no crossover exists once STAMP is more expensive.
  MachineParams mp;
  const CostFn pram = [](long long n) {
    return models::pram_round_time(models::jacobi_round(static_cast<int>(n)));
  };
  const CostFn stamp_cost = [&](long long n) {
    ProcessCounts pc;
    pc.inter = static_cast<int>(n) - 1;
    return s_round_time(analysis::jacobi_round_counters(static_cast<int>(n)),
                        mp, pc);
  };
  EXPECT_FALSE(find_crossover(pram, stamp_cost, 2, 4096).has_value());
}

TEST(Crossover, BspVsLogPBarrierAmortization) {
  // Light rounds: BSP pays the barrier, LogP doesn't -> LogP wins. As the
  // per-round h-relation grows, LogP's per-message overhead (o at both ends)
  // eventually exceeds BSP's bandwidth-only charge: a real crossover.
  const models::BspParams bsp{.g = 4, .l = 50};
  const models::LogPParams logp{.L = 40, .o = 3, .g = 4};
  const CostFn bsp_cost = [&](long long msgs) {
    models::RoundSpec r;
    r.msgs_out = r.msgs_in = static_cast<double>(msgs);
    return models::bsp_round_time(r, bsp);
  };
  const CostFn logp_cost = [&](long long msgs) {
    models::RoundSpec r;
    r.msgs_out = r.msgs_in = static_cast<double>(msgs);
    return models::logp_round_time(r, logp);
  };
  const auto c = find_crossover(logp_cost, bsp_cost, 1, 1000);
  ASSERT_TRUE(c.has_value());
  // At the crossover BSP becomes the cheaper model.
  EXPECT_LT(c->g_after, c->f_after);
  EXPECT_GT(c->at, 1);
}

// Property: the reported crossover is a true adjacent-integer winner change.
class CrossoverSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrossoverSweep, AdjacentWinnerChange) {
  const int k = GetParam();
  const CostFn f = [&](long long x) {
    return 3.0 * static_cast<double>(x) + 7;
  };
  const CostFn g = [&](long long x) {
    return static_cast<double>(x * x) / k;
  };
  const auto c = find_crossover(f, g, 1, 10'000);
  if (!c.has_value()) return;
  const double fb = f(c->at - 1), gb = g(c->at - 1);
  const double fa = f(c->at), ga = g(c->at);
  // The winner at `at` differs from the winner just before.
  EXPECT_NE(fb < gb, fa < ga);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrossoverSweep, ::testing::Values(1, 2, 5, 40, 300));

}  // namespace
}  // namespace stamp
