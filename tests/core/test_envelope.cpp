#include "core/envelope.hpp"

#include <gtest/gtest.h>

namespace stamp {
namespace {

TEST(Envelope, UnconstrainedAlwaysFeasible) {
  const std::vector<double> powers{100, 200, 300};
  const EnvelopeCheck c = check_processor(powers, PowerEnvelope{});
  EXPECT_TRUE(c.feasible);
  EXPECT_DOUBLE_EQ(c.demand, 600);
}

TEST(Envelope, CapRespected) {
  PowerEnvelope env;
  env.per_processor = 10;
  EXPECT_TRUE(check_processor(std::vector<double>{4, 5}, env).feasible);
  EXPECT_FALSE(check_processor(std::vector<double>{4, 7}, env).feasible);
  const EnvelopeCheck c = check_processor(std::vector<double>{4, 5}, env);
  EXPECT_DOUBLE_EQ(c.slack, 1);
}

TEST(Envelope, ExactBoundaryFeasible) {
  PowerEnvelope env;
  env.per_processor = 9;
  EXPECT_TRUE(check_processor(std::vector<double>{4.5, 4.5}, env).feasible);
}

TEST(Envelope, MaxProcessesAdmissionRule) {
  PowerEnvelope env;
  env.per_processor = 10;
  EXPECT_EQ(max_processes_per_processor(3, env, 8), 3);   // 3*3=9 <= 10 < 12
  EXPECT_EQ(max_processes_per_processor(5, env, 8), 2);
  EXPECT_EQ(max_processes_per_processor(10, env, 8), 1);
  EXPECT_EQ(max_processes_per_processor(11, env, 8), 0);  // can't host even one
}

TEST(Envelope, MaxProcessesExactDivision) {
  // The floating-point guard: cap exactly k * p must admit k.
  PowerEnvelope env;
  env.per_processor = 3 * 2.5;
  EXPECT_EQ(max_processes_per_processor(2.5, env, 8), 3);
}

TEST(Envelope, MaxProcessesThreadLimited) {
  PowerEnvelope env;
  env.per_processor = 1000;
  EXPECT_EQ(max_processes_per_processor(1, env, 4), 4);  // threads bind first
}

TEST(Envelope, ZeroPowerOrNoCapGivesThreadLimit) {
  EXPECT_EQ(max_processes_per_processor(0, PowerEnvelope{}, 4), 4);
  PowerEnvelope env;
  env.per_processor = 5;
  EXPECT_EQ(max_processes_per_processor(0, env, 4), 4);
}

TEST(Envelope, PaperJacobiExample) {
  // Per-thread power (x+y) w_int, cap 3 (x+y) w_int, 4-thread Niagara core:
  // at most 3 threads may run the algorithm.
  const double x = 2, y = 3, w_int = 1;
  const double per_thread = (x + y) * w_int;
  PowerEnvelope env;
  env.per_processor = 3 * (x + y) * w_int;
  EXPECT_EQ(max_processes_per_processor(per_thread, env, 4), 3);
}

TEST(SystemCheck, SizesMustMatch) {
  const std::vector<double> powers{1, 2};
  const std::vector<int> procs{0};
  EXPECT_THROW(check_system(powers, procs, Topology{}, PowerEnvelope{}),
               std::invalid_argument);
}

TEST(SystemCheck, OutOfRangeProcessorRejected) {
  const Topology topo{.chips = 1, .processors_per_chip = 2,
                      .threads_per_processor = 2};
  const std::vector<double> powers{1};
  const std::vector<int> procs{5};
  EXPECT_THROW(check_system(powers, procs, topo, PowerEnvelope{}),
               std::invalid_argument);
}

TEST(SystemCheck, PerProcessorViolationIdentified) {
  const Topology topo{.chips = 1, .processors_per_chip = 2,
                      .threads_per_processor = 2};
  PowerEnvelope env;
  env.per_processor = 5;
  const std::vector<double> powers{3, 3, 2};  // procs 0,0,1 -> proc0 demand 6
  const std::vector<int> procs{0, 0, 1};
  const SystemCheck c = check_system(powers, procs, topo, env);
  EXPECT_FALSE(c.feasible);
  EXPECT_EQ(c.first_violation_processor, 0);
  EXPECT_FALSE(c.processors[0].feasible);
  EXPECT_TRUE(c.processors[1].feasible);
}

TEST(SystemCheck, ChipCapAggregatesProcessors) {
  const Topology topo{.chips = 2, .processors_per_chip = 2,
                      .threads_per_processor = 2};
  PowerEnvelope env;
  env.per_chip = 10;
  // chip 0 hosts processors 0 and 1; total 12 > 10.
  const std::vector<double> powers{6, 6};
  const std::vector<int> procs{0, 1};
  EXPECT_FALSE(check_system(powers, procs, topo, env).feasible);
  // Spread over two chips: processors 0 and 2.
  const std::vector<int> spread{0, 2};
  EXPECT_TRUE(check_system(powers, spread, topo, env).feasible);
}

TEST(SystemCheck, SystemCapBindsLast) {
  const Topology topo{.chips = 2, .processors_per_chip = 2,
                      .threads_per_processor = 2};
  PowerEnvelope env;
  env.system = 10;
  const std::vector<double> powers{4, 4, 4};
  const std::vector<int> procs{0, 1, 2};
  const SystemCheck c = check_system(powers, procs, topo, env);
  EXPECT_FALSE(c.feasible);
  EXPECT_DOUBLE_EQ(c.system.demand, 12);
  EXPECT_FALSE(c.system.feasible);
}

// Property: demand is permutation-invariant and additive.
class SystemCheckPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SystemCheckPropertyTest, TotalDemandMatchesSum) {
  const int n = GetParam();
  const Topology topo{.chips = 2, .processors_per_chip = 4,
                      .threads_per_processor = 8};
  std::vector<double> powers;
  std::vector<int> procs;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    powers.push_back(1.0 + (i % 5));
    procs.push_back(i % topo.total_processors());
    sum += powers.back();
  }
  PowerEnvelope env;
  env.system = 1e9;
  const SystemCheck c = check_system(powers, procs, topo, env);
  EXPECT_DOUBLE_EQ(c.system.demand, sum);
  EXPECT_TRUE(c.feasible);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SystemCheckPropertyTest,
                         ::testing::Values(0, 1, 5, 16, 64));

}  // namespace
}  // namespace stamp
