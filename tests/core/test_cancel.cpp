#include "core/cancel.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace stamp::core {
namespace {

TEST(CancelToken, StartsClear) {
  const CancelToken token;
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, RequestSetsAndIsIdempotent) {
  CancelToken token;
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  token.request_cancel();  // repeating the request must be harmless
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, ResetRearmsForAnotherRun) {
  CancelToken token;
  token.request_cancel();
  token.reset();
  EXPECT_FALSE(token.cancelled());
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
}

// The cross-thread contract: a poller spinning on cancelled() must observe a
// trip requested by another thread (release store / acquire load pairing).
TEST(CancelToken, TripIsVisibleAcrossThreads) {
  CancelToken token;
  std::thread poller([&token] {
    while (!token.cancelled()) std::this_thread::yield();
  });
  token.request_cancel();
  poller.join();
  EXPECT_TRUE(token.cancelled());
}

}  // namespace
}  // namespace stamp::core
