#include "core/counters.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace stamp {
namespace {

TEST(Counters, DefaultIsZero) {
  const CostCounters c;
  EXPECT_EQ(c.local_ops(), 0);
  EXPECT_EQ(c.shm_accesses(), 0);
  EXPECT_EQ(c.msg_ops(), 0);
  EXPECT_FALSE(c.uses_shared_memory());
  EXPECT_FALSE(c.uses_message_passing());
  EXPECT_EQ(c.kappa, 0);
}

TEST(Counters, LocalBuilder) {
  const CostCounters c = counters::local(3, 5);
  EXPECT_EQ(c.c_fp, 3);
  EXPECT_EQ(c.c_int, 5);
  EXPECT_EQ(c.local_ops(), 8);
  EXPECT_FALSE(c.uses_shared_memory());
  EXPECT_FALSE(c.uses_message_passing());
}

TEST(Counters, SharedMemoryBuilder) {
  const CostCounters c = counters::shared_memory(1, 2, 3, 4, 5);
  EXPECT_EQ(c.d_r_a, 1);
  EXPECT_EQ(c.d_w_a, 2);
  EXPECT_EQ(c.d_r_e, 3);
  EXPECT_EQ(c.d_w_e, 4);
  EXPECT_EQ(c.kappa, 5);
  EXPECT_EQ(c.shm_accesses(), 10);
  EXPECT_TRUE(c.uses_shared_memory());
  EXPECT_FALSE(c.uses_message_passing());
}

TEST(Counters, MessagePassingBuilder) {
  const CostCounters c = counters::message_passing(1, 2, 3, 4);
  EXPECT_EQ(c.m_s_a, 1);
  EXPECT_EQ(c.m_r_a, 2);
  EXPECT_EQ(c.m_s_e, 3);
  EXPECT_EQ(c.m_r_e, 4);
  EXPECT_EQ(c.msg_ops(), 10);
  EXPECT_TRUE(c.uses_message_passing());
  EXPECT_FALSE(c.uses_shared_memory());
}

TEST(Counters, AdditionIsComponentwiseExceptKappa) {
  CostCounters a = counters::local(1, 2);
  a.kappa = 7;
  CostCounters b = counters::shared_memory(1, 1, 1, 1, 3);
  b.c_fp = 10;
  const CostCounters sum = a + b;
  EXPECT_EQ(sum.c_fp, 11);
  EXPECT_EQ(sum.c_int, 2);
  EXPECT_EQ(sum.shm_accesses(), 4);
  // kappa combines by max: it is a worst-case bound, not a count.
  EXPECT_EQ(sum.kappa, 7);
}

TEST(Counters, ScaledMultipliesAdditiveFieldsOnly) {
  CostCounters c = counters::message_passing(2, 2, 4, 4);
  c.c_fp = 3;
  c.kappa = 5;
  const CostCounters s = c.scaled(10);
  EXPECT_EQ(s.c_fp, 30);
  EXPECT_EQ(s.m_s_a, 20);
  EXPECT_EQ(s.m_r_e, 40);
  EXPECT_EQ(s.kappa, 5);  // a bound does not scale with repetition
}

TEST(Counters, MaxIsComponentwise) {
  CostCounters a = counters::local(5, 1);
  CostCounters b = counters::local(2, 9);
  b.kappa = 3;
  const CostCounters m = CostCounters::max(a, b);
  EXPECT_EQ(m.c_fp, 5);
  EXPECT_EQ(m.c_int, 9);
  EXPECT_EQ(m.kappa, 3);
}

TEST(Counters, EqualityAndStream) {
  CostCounters a = counters::local(1, 1);
  CostCounters b = counters::local(1, 1);
  EXPECT_EQ(a, b);
  b.c_int = 2;
  EXPECT_NE(a, b);
  std::ostringstream os;
  os << a;
  EXPECT_NE(os.str().find("c_fp=1"), std::string::npos);
}

TEST(Counters, StreamShowsOnlyUsedSections) {
  std::ostringstream os_local;
  os_local << counters::local(1, 1);
  EXPECT_EQ(os_local.str().find("d_r_a"), std::string::npos);
  EXPECT_EQ(os_local.str().find("m_s_a"), std::string::npos);

  std::ostringstream os_shm;
  os_shm << counters::shared_memory(1, 0, 0, 0);
  EXPECT_NE(os_shm.str().find("d_r_a"), std::string::npos);
}

// -- the inter-node (cluster) tier -------------------------------------------

TEST(Counters, InterNodeBuilder) {
  const CostCounters c = counters::inter_node(2, 3);
  EXPECT_EQ(c.m_s_n, 2);
  EXPECT_EQ(c.m_r_n, 3);
  EXPECT_EQ(c.net_ops(), 5);
  EXPECT_EQ(c.msg_ops(), 5);  // node-tier messages are still messages
  EXPECT_TRUE(c.uses_network());
  EXPECT_TRUE(c.uses_message_passing());
  EXPECT_FALSE(c.uses_shared_memory());
}

TEST(Counters, NodeCountersAddScaleAndMax) {
  const CostCounters sum =
      counters::inter_node(1, 2) + counters::inter_node(3, 4);
  EXPECT_EQ(sum.m_s_n, 4);
  EXPECT_EQ(sum.m_r_n, 6);
  const CostCounters s = counters::inter_node(2, 5).scaled(3);
  EXPECT_EQ(s.m_s_n, 6);
  EXPECT_EQ(s.m_r_n, 15);
  const CostCounters m =
      CostCounters::max(counters::inter_node(1, 9), counters::inter_node(4, 2));
  EXPECT_EQ(m.m_s_n, 4);
  EXPECT_EQ(m.m_r_n, 9);
}

TEST(Counters, StreamShowsNodeTierOnlyWhenUsed) {
  std::ostringstream off;
  off << counters::message_passing(1, 1, 1, 1);
  EXPECT_EQ(off.str().find("m_s_n"), std::string::npos);

  std::ostringstream on;
  on << counters::inter_node(2, 3);
  EXPECT_NE(on.str().find("m_s_n=2"), std::string::npos);
  EXPECT_NE(on.str().find("m_r_n=3"), std::string::npos);
}

// Property: (a + b) + c == a + (b + c) for the additive fields.
class CounterAssocTest : public ::testing::TestWithParam<int> {};

TEST_P(CounterAssocTest, AdditionAssociative) {
  const int k = GetParam();
  CostCounters a = counters::local(k, 2 * k);
  CostCounters b = counters::shared_memory(k, k, k, k, k);
  CostCounters c = counters::message_passing(1, k, 1, k);
  EXPECT_EQ((a + b) + c, a + (b + c));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CounterAssocTest,
                         ::testing::Values(0, 1, 2, 5, 17, 100, 1000));

// Property: scaled(k1).scaled(k2) == scaled(k1*k2).
class CounterScaleTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(CounterScaleTest, ScalingComposes) {
  const auto [k1, k2] = GetParam();
  CostCounters c = counters::message_passing(3, 3, 7, 7);
  c.c_fp = 11;
  c.c_int = 13;
  const CostCounters lhs = c.scaled(k1).scaled(k2);
  const CostCounters rhs = c.scaled(k1 * k2);
  EXPECT_DOUBLE_EQ(lhs.c_fp, rhs.c_fp);
  EXPECT_DOUBLE_EQ(lhs.m_s_e, rhs.m_s_e);
  EXPECT_DOUBLE_EQ(lhs.m_r_a, rhs.m_r_a);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CounterScaleTest,
    ::testing::Values(std::pair{1.0, 1.0}, std::pair{2.0, 3.0},
                      std::pair{0.5, 4.0}, std::pair{10.0, 0.1}));

}  // namespace
}  // namespace stamp
