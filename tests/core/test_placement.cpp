#include "core/placement.hpp"

#include <gtest/gtest.h>

// place_best is deprecated in favor of Evaluator::best_placement; this file
// tests the strategy layer directly (including the shim) on purpose.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace stamp {
namespace {

MachineModel machine_no_cap() {
  MachineModel m = presets::niagara();
  m.envelope = PowerEnvelope{};  // unconstrained
  return m;
}

ProcessProfile chatty_profile() {
  ProcessProfile p;
  p.c_fp = 100;
  p.c_int = 20;
  p.m_s = 6;
  p.m_r = 6;
  p.units = 10;
  return p;
}

ProcessProfile compute_profile() {
  ProcessProfile p;
  p.c_fp = 1000;
  p.c_int = 100;
  p.units = 10;
  return p;
}

TEST(ProcessProfile, SplitPartitionsCommunication) {
  ProcessProfile p;
  p.d_r = 10;
  p.d_w = 4;
  p.m_s = 6;
  p.m_r = 8;
  const CostCounters c = p.split(0.25);
  EXPECT_DOUBLE_EQ(c.d_r_a, 2.5);
  EXPECT_DOUBLE_EQ(c.d_r_e, 7.5);
  EXPECT_DOUBLE_EQ(c.d_w_a, 1);
  EXPECT_DOUBLE_EQ(c.d_w_e, 3);
  EXPECT_DOUBLE_EQ(c.m_s_a + c.m_s_e, 6);
  EXPECT_DOUBLE_EQ(c.m_r_a + c.m_r_e, 8);
}

TEST(ProcessProfile, SplitClampsFraction) {
  ProcessProfile p;
  p.d_r = 10;
  EXPECT_DOUBLE_EQ(p.split(2.0).d_r_a, 10);
  EXPECT_DOUBLE_EQ(p.split(-1.0).d_r_a, 0);
}

TEST(Placement, GroupSizeAndProcessorsUsed) {
  Placement pl;
  pl.processor_of = {0, 0, 1, 3, 3, 3};
  EXPECT_EQ(pl.group_size(0), 2);
  EXPECT_EQ(pl.group_size(1), 1);
  EXPECT_EQ(pl.group_size(2), 0);
  EXPECT_EQ(pl.group_size(3), 3);
  EXPECT_EQ(pl.processors_used(), 3);
}

TEST(EvaluatePlacement, CoLocationMakesCommunicationIntra) {
  const MachineModel m = machine_no_cap();
  const std::vector<ProcessProfile> profiles(4, chatty_profile());

  Placement together;
  together.processor_of = {0, 0, 0, 0};
  Placement apart;
  apart.processor_of = {0, 1, 2, 3};

  const auto eval_together =
      evaluate_placement(profiles, together, m, Objective::D);
  const auto eval_apart = evaluate_placement(profiles, apart, m, Objective::D);

  // Intra-processor communication is faster: co-location wins on time.
  EXPECT_LT(eval_together.total.time, eval_apart.total.time);
}

TEST(EvaluatePlacement, RejectsOversizedGroups) {
  const MachineModel m = machine_no_cap();  // 4 threads per processor
  const std::vector<ProcessProfile> profiles(5, chatty_profile());
  Placement pl;
  pl.processor_of = {0, 0, 0, 0, 0};
  EXPECT_THROW(evaluate_placement(profiles, pl, m, Objective::D),
               std::invalid_argument);
}

TEST(EvaluatePlacement, PowerCapViolationDetected) {
  MachineModel m = machine_no_cap();
  // Make the cap just below 2x the per-process power of a co-located pair.
  const std::vector<ProcessProfile> profiles(2, compute_profile());
  Placement pair;
  pair.processor_of = {0, 0};
  auto eval = evaluate_placement(profiles, pair, m, Objective::D);
  const double per_process = eval.process_costs[0].power();
  m.envelope.per_processor = 1.5 * per_process;
  m.envelope.per_chip = 0;
  m.envelope.system = 0;
  eval = evaluate_placement(profiles, pair, m, Objective::D);
  EXPECT_FALSE(eval.feasible);

  Placement spread;
  spread.processor_of = {0, 1};
  eval = evaluate_placement(profiles, spread, m, Objective::D);
  EXPECT_TRUE(eval.feasible);
}

TEST(Strategies, FillFirstCoLocates) {
  const MachineModel m = machine_no_cap();
  const std::vector<ProcessProfile> profiles(4, chatty_profile());
  const PlacementResult r = place_fill_first(profiles, m, Objective::D);
  EXPECT_EQ(r.eval.placement.group_size(0), 4);
  EXPECT_EQ(r.eval.placement.processors_used(), 1);
}

TEST(Strategies, RoundRobinSpreads) {
  const MachineModel m = machine_no_cap();
  const std::vector<ProcessProfile> profiles(4, chatty_profile());
  const PlacementResult r = place_round_robin(profiles, m, Objective::D);
  EXPECT_EQ(r.eval.placement.processors_used(), 4);
}

TEST(Strategies, CapacityGuards) {
  const MachineModel m = machine_no_cap();  // 32 threads total
  const std::vector<ProcessProfile> profiles(33, chatty_profile());
  EXPECT_THROW(place_fill_first(profiles, m, Objective::D), ParamError);
  EXPECT_THROW(place_round_robin(profiles, m, Objective::D), ParamError);
  EXPECT_THROW(place_greedy(profiles, m, Objective::D), ParamError);
}

TEST(Strategies, GreedyRespectsPowerCap) {
  MachineModel m = machine_no_cap();
  const std::vector<ProcessProfile> profiles(8, compute_profile());
  // Find solo power, then cap processors at ~2.5x that.
  Placement solo;
  solo.processor_of = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto eval = evaluate_placement(profiles, solo, m, Objective::D);
  m.envelope.per_processor = 2.5 * eval.process_costs[0].power();
  const PlacementResult r = place_greedy(profiles, m, Objective::D);
  EXPECT_TRUE(r.eval.feasible);
  for (int p = 0; p < m.topology.total_processors(); ++p)
    EXPECT_LE(r.eval.placement.group_size(p), 2);
}

TEST(Strategies, ExactUniformRequiresUniformProfiles) {
  const MachineModel m = machine_no_cap();
  std::vector<ProcessProfile> profiles{chatty_profile(), compute_profile()};
  EXPECT_THROW(place_exact_uniform(profiles, m, Objective::D), ParamError);
}

TEST(Strategies, ExactUniformBeatsOrMatchesBaselines) {
  MachineModel m = machine_no_cap();
  m.envelope.per_processor = 0;
  const std::vector<ProcessProfile> profiles(8, chatty_profile());
  const PlacementResult exact = place_exact_uniform(profiles, m, Objective::D);
  const PlacementResult fill = place_fill_first(profiles, m, Objective::D);
  const PlacementResult rr = place_round_robin(profiles, m, Objective::D);
  EXPECT_LE(exact.eval.objective, fill.eval.objective + 1e-9);
  EXPECT_LE(exact.eval.objective, rr.eval.objective + 1e-9);
  EXPECT_GT(exact.placements_examined, 1);
}

TEST(Strategies, PlaceBestPicksFeasibleOverFast) {
  MachineModel m = machine_no_cap();
  const std::vector<ProcessProfile> profiles(4, compute_profile());
  Placement all_one;
  all_one.processor_of = {0, 0, 0, 0};
  const auto dense = evaluate_placement(profiles, all_one, m, Objective::D);
  // Cap so only 1 process per processor is feasible.
  m.envelope.per_processor = 1.5 * dense.process_costs[0].power();
  const PlacementResult best = place_best(profiles, m, Objective::D);
  EXPECT_TRUE(best.eval.feasible);
  for (int p = 0; p < m.topology.total_processors(); ++p)
    EXPECT_LE(best.eval.placement.group_size(p), 1);
}

// Property: for communication-heavy uniform profiles with no power cap, the
// exact optimum under D co-locates as much as possible; for cap 0 < cap <
// solo power, no placement is feasible and the result is marked so.
class ExactPlacementTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactPlacementTest, OptimumCoLocatesWithoutCaps) {
  const int n = GetParam();
  MachineModel m = machine_no_cap();
  const std::vector<ProcessProfile> profiles(static_cast<std::size_t>(n),
                                             chatty_profile());
  const PlacementResult r = place_exact_uniform(profiles, m, Objective::D);
  EXPECT_TRUE(r.eval.feasible);
  // Communication dominated: groups should be as full as the hardware allows.
  const int tpp = m.topology.threads_per_processor;
  const int expected_full_groups = n / tpp;
  int full_groups = 0;
  for (int p = 0; p < m.topology.total_processors(); ++p)
    if (r.eval.placement.group_size(p) == tpp) ++full_groups;
  EXPECT_GE(full_groups, expected_full_groups);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExactPlacementTest,
                         ::testing::Values(2, 4, 7, 8, 16, 32));

}  // namespace
}  // namespace stamp
