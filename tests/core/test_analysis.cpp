#include "core/analysis.hpp"

#include <gtest/gtest.h>

namespace stamp::analysis {
namespace {

EnergyParams xy_energy(double x, double y) {
  EnergyParams e;
  e.w_int = 1;
  e.w_fp = x;
  e.w_m_s = y;
  e.w_m_r = y;
  e.w_d_r = 2;
  e.w_d_w = 2;
  return e;
}

TEST(JacobiAnalysis, RoundCountersMatchPaperCounts) {
  const int n = 10;
  const CostCounters c = jacobi_round_counters(n);
  // 2n local operations (2n-1 fp + 1 assignment), n-1 sends, n-1 receives.
  EXPECT_DOUBLE_EQ(c.local_ops(), 2.0 * n);
  EXPECT_DOUBLE_EQ(c.c_fp, 2.0 * n - 1);
  EXPECT_DOUBLE_EQ(c.m_s_e + c.m_s_a, n - 1.0);
  EXPECT_DOUBLE_EQ(c.m_r_e + c.m_r_a, n - 1.0);
}

TEST(JacobiAnalysis, TSRoundFormula) {
  // T_S-round = 2n + L + 2gn - 2g.
  const int n = 16;
  const JacobiParams p{.L = 5, .g = 0.25};
  const JacobiAnalysis a = jacobi(n, p, EnergyParams{});
  EXPECT_DOUBLE_EQ(a.T_s_round, 2.0 * n + 5 + 2 * 0.25 * n - 2 * 0.25);
}

TEST(JacobiAnalysis, ESRoundFormula) {
  // E_S-round = (2 w_fp + w_mr + w_ms) n - w_fp + w_int - w_mr - w_ms.
  const int n = 12;
  const EnergyParams e = xy_energy(4, 6);
  const JacobiAnalysis a = jacobi(n, {.L = 5, .g = 0}, e);
  const double expected = (2 * 4.0 + 6 + 6) * n - 4 + 1 - 6 - 6;
  EXPECT_DOUBLE_EQ(a.E_s_round, expected);
}

TEST(JacobiAnalysis, SUnitBounds) {
  const int n = 8;
  const EnergyParams e = xy_energy(2, 2);
  const JacobiAnalysis a = jacobi(n, {.L = 5, .g = 0.5}, e);
  EXPECT_DOUBLE_EQ(a.T_c_lower, 2);
  EXPECT_DOUBLE_EQ(a.E_c_upper, e.w_fp + 2 * e.w_int);
  EXPECT_DOUBLE_EQ(a.T_s_unit_lower, a.T_s_round + 2);
  EXPECT_DOUBLE_EQ(a.E_s_unit_upper, a.E_s_round + a.E_c_upper);
  EXPECT_DOUBLE_EQ(a.P_s_unit_upper, a.E_s_unit_upper / a.T_s_unit_lower);
}

TEST(JacobiAnalysis, LowerBoundParams) {
  const int n = 10;
  const JacobiParams p = jacobi_lower_bound_params(n);
  EXPECT_DOUBLE_EQ(p.L, 5);
  EXPECT_DOUBLE_EQ(p.g, 3.0 / (n * (n - 1.0)));
}

TEST(JacobiAnalysis, TSUnitLowerBoundFormula) {
  // 2n + 6/n + 7, and always >= 2n.
  for (int n : {2, 4, 8, 100, 1000}) {
    const double bound = jacobi_T_s_unit_lower_bound(n);
    EXPECT_DOUBLE_EQ(bound, 2.0 * n + 6.0 / n + 7.0);
    EXPECT_GE(bound, 2.0 * n);
  }
}

TEST(JacobiAnalysis, LowerBoundConsistentWithGeneralFormula) {
  // Evaluating the general T_S-unit at the lower-bound parameters must
  // reproduce 2n + 6/n + 7.
  const int n = 20;
  const JacobiParams p = jacobi_lower_bound_params(n);
  const JacobiAnalysis a = jacobi(n, p, EnergyParams{});
  EXPECT_NEAR(a.T_s_unit_lower, jacobi_T_s_unit_lower_bound(n), 1e-9);
}

TEST(JacobiAnalysis, PowerUpperBound) {
  EXPECT_DOUBLE_EQ(jacobi_power_upper_bound(2, 3, 1), 5);
  EXPECT_DOUBLE_EQ(jacobi_power_upper_bound(4, 2, 0.5), 3);
}

TEST(JacobiAnalysis, PaperPowerBoundDominatesExactRatio) {
  // The paper's bound P <= (x+y) w_int must dominate E_S-unit/T_S-unit at the
  // lower-bound parameters for the paper's premises x, y >= 2.
  for (double x : {2.0, 3.0, 8.0}) {
    for (double y : {2.0, 5.0, 10.0}) {
      for (int n : {4, 16, 64, 256}) {
        const EnergyParams e = xy_energy(x, y);
        const JacobiAnalysis a = jacobi(n, jacobi_lower_bound_params(n), e);
        EXPECT_LE(a.P_s_unit_upper, jacobi_power_upper_bound(x, y, 1) + 1e-9)
            << "x=" << x << " y=" << y << " n=" << n;
      }
    }
  }
}

TEST(JacobiAnalysis, MaxThreadsPaperConclusion) {
  // Cap 3 (x+y) w_int on a 4-thread core: exactly 3 threads admissible.
  const double x = 2, y = 2, w_int = 1;
  const double cap = 3 * (x + y) * w_int;
  EXPECT_EQ(jacobi_max_threads_per_processor(x, y, w_int, cap, 4), 3);
}

TEST(JacobiAnalysis, MaxThreadsBoundsBehave) {
  EXPECT_EQ(jacobi_max_threads_per_processor(2, 2, 1, 0, 4), 4);   // no cap
  EXPECT_EQ(jacobi_max_threads_per_processor(2, 2, 1, 100, 4), 4); // loose cap
  EXPECT_EQ(jacobi_max_threads_per_processor(2, 2, 1, 3.9, 4), 0); // tight cap
}

TEST(ApspAnalysis, RoundCounters) {
  const int n = 6;
  const CostCounters c = apsp_round_counters(n);
  EXPECT_DOUBLE_EQ(c.d_r_e, 36);
  EXPECT_DOUBLE_EQ(c.d_w_e, 6);
  EXPECT_DOUBLE_EQ(c.c_fp, 36);
  EXPECT_DOUBLE_EQ(c.c_int, 30 + 6);
  EXPECT_TRUE(c.uses_shared_memory());
  EXPECT_FALSE(c.uses_message_passing());
}

TEST(ApspAnalysis, ProcessCostScalesWithRounds) {
  const MachineParams mp;
  const EnergyParams e;
  const Cost one = apsp_process_cost(8, 1, mp, e);
  const Cost five = apsp_process_cost(8, 5, mp, e);
  EXPECT_DOUBLE_EQ(five.time, 5 * one.time);
  EXPECT_DOUBLE_EQ(five.energy, 5 * one.energy);
}

TEST(ClusterApspAnalysis, SingleNodeCollapsesToMessagePassingForm) {
  const int n = 6;
  const CostCounters c = cluster_apsp_round_counters(n, 1);
  // nodes = 1: no row ever leaves the node, so the third tier is silent.
  EXPECT_DOUBLE_EQ(c.net_ops(), 0);
  EXPECT_FALSE(c.uses_network());
  // Same local min-plus work as the shared-memory analysis...
  const CostCounters shm = apsp_round_counters(n);
  EXPECT_DOUBLE_EQ(c.c_fp, shm.c_fp);
  EXPECT_DOUBLE_EQ(c.c_int, shm.c_int);
  // ...with every n-entry row exchanged over the chip tier instead.
  EXPECT_DOUBLE_EQ(c.m_s_e, 6.0 * (6 - 1));
  EXPECT_DOUBLE_EQ(c.m_r_e, 6.0 * (6 - 1));
  const ProcessCounts pc = cluster_apsp_process_counts(n, 1);
  EXPECT_EQ(pc.node, 0);
  EXPECT_EQ(pc.inter, n - 1);
}

TEST(ClusterApspAnalysis, MultiNodeSplitsRowsByTier) {
  const int n = 6, nodes = 3;  // two processes per node
  const CostCounters c = cluster_apsp_round_counters(n, nodes);
  EXPECT_DOUBLE_EQ(c.m_s_e, 6.0 * 1);  // one co-resident peer
  EXPECT_DOUBLE_EQ(c.m_r_e, 6.0 * 1);
  EXPECT_DOUBLE_EQ(c.m_s_n, 6.0 * 4);  // four peers on other nodes
  EXPECT_DOUBLE_EQ(c.m_r_n, 6.0 * 4);
  EXPECT_TRUE(c.uses_network());
  const ProcessCounts pc = cluster_apsp_process_counts(n, nodes);
  EXPECT_EQ(pc.inter, 1);
  EXPECT_EQ(pc.node, 4);
}

TEST(ClusterApspAnalysis, SpreadingOverNodesNeverGetsCheaper) {
  // Validation forces the network tier to be no faster than the chip tier,
  // so spreading the same n processes over more nodes can only cost more.
  const MachineParams mp;
  const EnergyParams e;
  const Cost one = cluster_apsp_process_cost(12, 1, 4, mp, e);
  const Cost two = cluster_apsp_process_cost(12, 2, 4, mp, e);
  const Cost four = cluster_apsp_process_cost(12, 4, 4, mp, e);
  EXPECT_LE(one.time, two.time);
  EXPECT_LE(two.time, four.time);
  EXPECT_LE(one.energy, two.energy);
  EXPECT_LE(two.energy, four.energy);
}

TEST(ClusterApspAnalysis, ProcessCostScalesWithRounds) {
  const MachineParams mp;
  const EnergyParams e;
  const Cost one = cluster_apsp_process_cost(8, 2, 1, mp, e);
  const Cost five = cluster_apsp_process_cost(8, 2, 5, mp, e);
  EXPECT_DOUBLE_EQ(five.time, 5 * one.time);
  EXPECT_DOUBLE_EQ(five.energy, 5 * one.energy);
}

TEST(TransactionalAnalysis, TransferCountersScaleWithRollbacks) {
  const CostCounters clean = transfer_counters(0, true);
  const CostCounters retried = transfer_counters(2, true);
  EXPECT_DOUBLE_EQ(clean.d_r_a, 2);
  EXPECT_DOUBLE_EQ(clean.d_w_a, 2);
  EXPECT_DOUBLE_EQ(clean.kappa, 0);
  EXPECT_DOUBLE_EQ(retried.d_r_a, 6);
  EXPECT_DOUBLE_EQ(retried.kappa, 2);
  EXPECT_GT(retried.c_int, clean.c_int);
}

TEST(TransactionalAnalysis, TransferDistributionSelectsColumns) {
  const CostCounters intra = transfer_counters(0, true);
  const CostCounters inter = transfer_counters(0, false);
  EXPECT_GT(intra.d_r_a, 0);
  EXPECT_EQ(intra.d_r_e, 0);
  EXPECT_GT(inter.d_r_e, 0);
  EXPECT_EQ(inter.d_r_a, 0);
}

TEST(TransactionalAnalysis, ReserveCountersThreeLegs) {
  const CostCounters c = reserve_counters(0);
  EXPECT_DOUBLE_EQ(c.d_r_e, 3);
  EXPECT_DOUBLE_EQ(c.d_w_e, 3);
  const CostCounters retried = reserve_counters(1.5);
  EXPECT_DOUBLE_EQ(retried.d_r_e, 7.5);
  EXPECT_DOUBLE_EQ(retried.kappa, 1.5);
}

// Property: T_S-round grows linearly in n at fixed L, g.
class JacobiGrowthTest : public ::testing::TestWithParam<int> {};

TEST_P(JacobiGrowthTest, LinearGrowth) {
  const int n = GetParam();
  const JacobiParams p{.L = 5, .g = 0.5};
  const double t_n = jacobi(n, p, EnergyParams{}).T_s_round;
  const double t_2n = jacobi(2 * n, p, EnergyParams{}).T_s_round;
  // Doubling n doubles the linear part: T(2n) - T(n) = (2 + 2g) n.
  EXPECT_NEAR(t_2n - t_n, (2 + 2 * p.g) * n, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, JacobiGrowthTest,
                         ::testing::Values(2, 8, 32, 128, 1024));

}  // namespace
}  // namespace stamp::analysis
