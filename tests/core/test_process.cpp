#include "core/process.hpp"

#include <gtest/gtest.h>

namespace stamp {
namespace {

MachineParams params() {
  MachineParams p;
  p.ell_a = 2;
  p.ell_e = 10;
  p.g_sh_a = 0.5;
  p.g_sh_e = 2;
  p.L_a = 5;
  p.L_e = 50;
  p.g_mp_a = 1;
  p.g_mp_e = 4;
  return p;
}

EnergyParams energy() { return EnergyParams{}; }

const ProcessCounts kIntraOnly{.intra = 3, .inter = 0};

TEST(SUnit, SumsRoundsAndOutsideWork) {
  SUnit unit;
  unit.add_round(counters::local(10, 0));
  unit.add_round(counters::message_passing(2, 2, 0, 0));
  unit.add_local(1, 2);

  const Cost c = unit.cost(params(), energy(), kIntraOnly);
  // round1: 10 compute; round2: L_a + g_mp_a*4 = 9; outside: 3.
  EXPECT_DOUBLE_EQ(c.time, 10 + 9 + 3);

  const CostCounters totals = unit.total_counters();
  EXPECT_DOUBLE_EQ(totals.c_fp, 11);
  EXPECT_DOUBLE_EQ(totals.c_int, 2);
  EXPECT_DOUBLE_EQ(totals.m_s_a, 2);
}

TEST(SUnit, EachRoundPaysItsOwnLatency) {
  SUnit one_round;
  one_round.add_round(counters::message_passing(4, 4, 0, 0));
  SUnit two_rounds;
  two_rounds.add_round(counters::message_passing(2, 2, 0, 0));
  two_rounds.add_round(counters::message_passing(2, 2, 0, 0));

  const double t1 = one_round.cost(params(), energy(), kIntraOnly).time;
  const double t2 = two_rounds.cost(params(), energy(), kIntraOnly).time;
  // Same bandwidth total, but the split version pays L_a twice.
  EXPECT_DOUBLE_EQ(t2 - t1, params().L_a);
}

TEST(StampProcess, SumsUnits) {
  SUnit unit;
  unit.add_round(counters::local(5, 5));
  StampProcess proc(Attributes{}, "p");
  proc.add_unit(unit);
  proc.add_unit(unit);
  const Cost c = proc.cost(params(), energy(), kIntraOnly);
  EXPECT_DOUBLE_EQ(c.time, 20);
  EXPECT_EQ(proc.unit_count(), 2u);
}

TEST(StampProcess, RepeatedUnitsMatchExplicitCopies) {
  SUnit unit;
  unit.add_round(counters::message_passing(1, 1, 1, 1));
  unit.add_local(2, 0);

  StampProcess repeated;
  repeated.add_repeated(unit, 50);

  StampProcess explicit_copies;
  for (int i = 0; i < 50; ++i) explicit_copies.add_unit(unit);

  const Cost a = repeated.cost(params(), energy(), {.intra = 1, .inter = 1});
  const Cost b = explicit_copies.cost(params(), energy(), {.intra = 1, .inter = 1});
  EXPECT_DOUBLE_EQ(a.time, b.time);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
  EXPECT_EQ(repeated.unit_count(), 50u);
}

TEST(StampProcess, ZeroRepetitionsIgnored) {
  StampProcess p;
  p.add_repeated(SUnit{}, 0);
  EXPECT_EQ(p.unit_count(), 0u);
}

TEST(ParallelCost, MaxTimeTotalEnergy) {
  SUnit fast;
  fast.add_local(10, 0);
  SUnit slow;
  slow.add_local(100, 0);
  std::vector<StampProcess> procs;
  procs.emplace_back().add_unit(fast);
  procs.emplace_back().add_unit(slow);
  const Cost c = parallel_cost(procs, params(), energy(), kIntraOnly);
  EXPECT_DOUBLE_EQ(c.time, 100);
  EXPECT_DOUBLE_EQ(c.energy, 110 * EnergyParams{}.w_fp);
}

TEST(CostExpr, LeafKinds) {
  const Cost fixed = CostExpr::fixed({7, 3}).evaluate(params(), energy(), {});
  EXPECT_EQ(fixed, (Cost{7, 3}));

  const Cost local = CostExpr::local(2, 3).evaluate(params(), energy(), {});
  EXPECT_DOUBLE_EQ(local.time, 5);
}

TEST(CostExpr, SeqAndParCompose) {
  auto expr = CostExpr::seq({CostExpr::fixed({1, 1}),
                             CostExpr::par({CostExpr::fixed({10, 2}),
                                            CostExpr::fixed({4, 8})})});
  const Cost c = expr.evaluate(params(), energy(), {});
  EXPECT_DOUBLE_EQ(c.time, 1 + 10);
  EXPECT_DOUBLE_EQ(c.energy, 1 + 10);
}

TEST(CostExpr, RepeatScales) {
  auto expr = CostExpr::repeat(CostExpr::fixed({3, 2}), 7);
  const Cost c = expr.evaluate(params(), energy(), {});
  EXPECT_DOUBLE_EQ(c.time, 21);
  EXPECT_DOUBLE_EQ(c.energy, 14);
}

TEST(CostExpr, NestedStampsEvaluate) {
  // A nested STAMP: an outer process that spawns two parallel inner STAMPs,
  // each of which is a loop of 10 message rounds.
  auto inner = CostExpr::repeat(
      CostExpr::round(counters::message_passing(1, 1, 0, 0)), 10);
  auto outer = CostExpr::seq({CostExpr::local(5, 5),
                              CostExpr::par({inner, inner}),
                              CostExpr::local(0, 2)});
  const Cost c = outer.evaluate(params(), energy(), kIntraOnly);
  const double inner_t = 10 * (params().L_a + params().g_mp_a * 2);
  EXPECT_DOUBLE_EQ(c.time, 10 + inner_t + 2);
  EXPECT_EQ(outer.leaf_count(), 4u);
  EXPECT_EQ(outer.height(), 4u);  // seq -> par -> repeat -> round
}

TEST(CostExpr, LeafCountAndHeight) {
  auto leaf = CostExpr::fixed({1, 1});
  EXPECT_EQ(leaf.leaf_count(), 1u);
  EXPECT_EQ(leaf.height(), 1u);
  auto tree = CostExpr::par({leaf, CostExpr::seq({leaf, leaf, leaf})});
  EXPECT_EQ(tree.leaf_count(), 4u);
  EXPECT_EQ(tree.height(), 3u);
}

// Property: evaluating repeat(e, a+b) equals seq of repeat(e,a), repeat(e,b).
class RepeatSplitTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(RepeatSplitTest, RepeatDistributesOverSeq) {
  const auto [a, b] = GetParam();
  auto body = CostExpr::round(counters::shared_memory(2, 1, 1, 0, 1));
  const Cost lhs =
      CostExpr::repeat(body, a + b).evaluate(params(), energy(), kIntraOnly);
  const Cost rhs =
      CostExpr::seq({CostExpr::repeat(body, a), CostExpr::repeat(body, b)})
          .evaluate(params(), energy(), kIntraOnly);
  EXPECT_DOUBLE_EQ(lhs.time, rhs.time);
  EXPECT_DOUBLE_EQ(lhs.energy, rhs.energy);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RepeatSplitTest,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{0, 0},
                                           std::pair<std::size_t, std::size_t>{1, 0},
                                           std::pair<std::size_t, std::size_t>{3, 4},
                                           std::pair<std::size_t, std::size_t>{10, 90}));

}  // namespace
}  // namespace stamp
