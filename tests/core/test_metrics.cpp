#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stamp {
namespace {

TEST(Metrics, Definitions) {
  const Cost c{10, 50};  // T=10, E=50, P=5
  const Metrics m = metrics_from(c);
  EXPECT_DOUBLE_EQ(m.D, 10);
  EXPECT_DOUBLE_EQ(m.PDP, 50);          // P*D = E
  EXPECT_DOUBLE_EQ(m.EDP, 500);         // E*D
  EXPECT_DOUBLE_EQ(m.ED2P, 5000);       // E*D^2
}

TEST(Metrics, MetricValueSelectsField) {
  const Cost c{2, 8};
  EXPECT_DOUBLE_EQ(metric_value(c, Objective::D), 2);
  EXPECT_DOUBLE_EQ(metric_value(c, Objective::PDP), 8);
  EXPECT_DOUBLE_EQ(metric_value(c, Objective::EDP), 16);
  EXPECT_DOUBLE_EQ(metric_value(c, Objective::ED2P), 32);
}

TEST(Metrics, Names) {
  EXPECT_EQ(to_string(Objective::D), "D");
  EXPECT_EQ(to_string(Objective::PDP), "PDP");
  EXPECT_EQ(to_string(Objective::EDP), "EDP");
  EXPECT_EQ(to_string(Objective::ED2P), "ED2P");
}

TEST(Metrics, SelectBestEmpty) {
  EXPECT_EQ(select_best({}, Objective::D), -1);
}

TEST(Metrics, DifferentObjectivesPickDifferentAlgorithms) {
  // Algorithm A: fast but hungry. Algorithm B: slow but frugal.
  const std::vector<Cost> candidates{{10, 1000}, {40, 100}};
  EXPECT_EQ(select_best(candidates, Objective::D), 0);    // A wins on delay
  EXPECT_EQ(select_best(candidates, Objective::PDP), 1);  // B wins on energy
  // EDP: A = 10000, B = 4000 -> B. ED2P: A = 100000, B = 160000 -> A.
  EXPECT_EQ(select_best(candidates, Objective::EDP), 1);
  EXPECT_EQ(select_best(candidates, Objective::ED2P), 0);
}

TEST(Metrics, TiesResolveToFirst) {
  const std::vector<Cost> candidates{{5, 5}, {5, 5}};
  EXPECT_EQ(select_best(candidates, Objective::EDP), 0);
}

// Property: the selected candidate truly minimizes the objective.
class SelectionTest : public ::testing::TestWithParam<Objective> {};

TEST_P(SelectionTest, SelectedIsMinimal) {
  const Objective o = GetParam();
  std::vector<Cost> candidates;
  for (int i = 1; i <= 20; ++i)
    candidates.push_back(Cost{static_cast<double>((i * 13) % 7 + 1),
                              static_cast<double>((i * 29) % 11 + 1)});
  const int best = select_best(candidates, o);
  ASSERT_GE(best, 0);
  for (const Cost& c : candidates)
    EXPECT_LE(metric_value(candidates[static_cast<std::size_t>(best)], o),
              metric_value(c, o));
}

INSTANTIATE_TEST_SUITE_P(AllObjectives, SelectionTest,
                         ::testing::Values(Objective::D, Objective::PDP,
                                           Objective::EDP, Objective::ED2P));

// Property: scaling time by k scales D by k, PDP by 1 (unchanged energy...
// actually energy is unchanged), EDP by k, ED2P by k^2.
TEST(Metrics, ScalingLaws) {
  const Cost c{3, 7};
  const Cost scaled{6, 7};  // time doubled, energy equal
  const Metrics m1 = metrics_from(c);
  const Metrics m2 = metrics_from(scaled);
  EXPECT_DOUBLE_EQ(m2.D, 2 * m1.D);
  EXPECT_DOUBLE_EQ(m2.PDP, m1.PDP);
  EXPECT_DOUBLE_EQ(m2.EDP, 2 * m1.EDP);
  EXPECT_DOUBLE_EQ(m2.ED2P, 4 * m1.ED2P);
}

}  // namespace
}  // namespace stamp
