#include "core/cost_model.hpp"

#include <gtest/gtest.h>

namespace stamp {
namespace {

MachineParams simple_params() {
  MachineParams p;
  p.ell_a = 2;
  p.ell_e = 10;
  p.g_sh_a = 0.5;
  p.g_sh_e = 2;
  p.L_a = 5;
  p.L_e = 50;
  p.g_mp_a = 1;
  p.g_mp_e = 4;
  return p;
}

EnergyParams simple_energy() {
  EnergyParams e;
  e.w_fp = 4;
  e.w_int = 1;
  e.w_d_r = 2;
  e.w_d_w = 3;
  e.w_m_s = 6;
  e.w_m_r = 5;
  return e;
}

TEST(CostModel, LocalOnlyRoundChargesOnlyCompute) {
  const CostCounters c = counters::local(10, 20);
  const double t = s_round_time(c, simple_params(), {.intra = 3, .inter = 5});
  EXPECT_DOUBLE_EQ(t, 30);  // no communication => no latency/bandwidth terms
}

TEST(CostModel, SharedMemoryBracketAddsLatencyOnce) {
  CostCounters c = counters::shared_memory(4, 2, 0, 0);
  c.c_int = 10;
  const MachineParams p = simple_params();
  // c + kappa + ell_a (intra present) + g_sh_a * (4+2); no inter latency
  const double t = s_round_time(c, p, {.intra = 1, .inter = 0});
  EXPECT_DOUBLE_EQ(t, 10 + 0 + 2 + 0.5 * 6);
}

TEST(CostModel, InterLatencyRequiresInterProcesses) {
  CostCounters c = counters::shared_memory(0, 0, 3, 3);
  const MachineParams p = simple_params();
  const double t_without = s_round_time(c, p, {.intra = 0, .inter = 0});
  const double t_with = s_round_time(c, p, {.intra = 0, .inter = 2});
  EXPECT_DOUBLE_EQ(t_with - t_without, p.ell_e);
}

TEST(CostModel, KappaEntersSharedMemoryTimeOnly) {
  CostCounters shm = counters::shared_memory(1, 0, 0, 0, 7);
  CostCounters mp = counters::message_passing(1, 0, 0, 0);
  mp.kappa = 7;  // kappa on a message-only round must not be charged
  const MachineParams p = simple_params();
  const ProcessCounts pc{.intra = 1, .inter = 0};
  const double t_shm = s_round_time(shm, p, pc);
  const double t_shm_nokappa =
      s_round_time(counters::shared_memory(1, 0, 0, 0, 0), p, pc);
  EXPECT_DOUBLE_EQ(t_shm - t_shm_nokappa, 7);
  const CostCounters mp_nokappa = counters::message_passing(1, 0, 0, 0);
  EXPECT_DOUBLE_EQ(s_round_time(mp, p, pc), s_round_time(mp_nokappa, p, pc));
}

TEST(CostModel, MessagePassingFormulaMatchesPaper) {
  // T = c + [P_e>=1] L_e + [P_a>=1] L_a + g_a (m_s_a+m_r_a) + g_e (m_s_e+m_r_e)
  CostCounters c = counters::message_passing(2, 3, 4, 5);
  c.c_fp = 7;
  const MachineParams p = simple_params();
  const double t = s_round_time(c, p, {.intra = 1, .inter = 1});
  EXPECT_DOUBLE_EQ(t, 7 + 50 + 5 + 1 * (2 + 3) + 4 * (4 + 5));
}

TEST(CostModel, BothSubstratesChargeBothBrackets) {
  CostCounters c = counters::shared_memory(1, 1, 0, 0) +
                   counters::message_passing(1, 1, 0, 0);
  c.c_int = 1;
  const MachineParams p = simple_params();
  const double t = s_round_time(c, p, {.intra = 1, .inter = 0});
  EXPECT_DOUBLE_EQ(t, 1 + (0 + p.ell_a + p.g_sh_a * 2) + (p.L_a + p.g_mp_a * 2));
}

TEST(CostModel, EnergyFormulaMatchesPaper) {
  CostCounters c;
  c.c_fp = 2;
  c.c_int = 3;
  c.d_r_a = 1;
  c.d_r_e = 2;
  c.d_w_a = 3;
  c.d_w_e = 4;
  c.m_r_a = 5;
  c.m_r_e = 6;
  c.m_s_a = 7;
  c.m_s_e = 8;
  const EnergyParams e = simple_energy();
  const double expected = 2 * 4 + 3 * 1 + 2 * (1 + 2) + 3 * (3 + 4) +
                          5 * (5 + 6) + 6 * (7 + 8);
  EXPECT_DOUBLE_EQ(s_round_energy(c, e), expected);
}

TEST(CostModel, EnergyIgnoresKappaAndLatency) {
  CostCounters a = counters::shared_memory(2, 2, 2, 2, 0);
  CostCounters b = counters::shared_memory(2, 2, 2, 2, 50);
  EXPECT_DOUBLE_EQ(s_round_energy(a, simple_energy()),
                   s_round_energy(b, simple_energy()));
}

TEST(CostModel, PowerIsEnergyOverTime) {
  const Cost c{10, 40};
  EXPECT_DOUBLE_EQ(c.power(), 4);
  const Cost zero{0, 40};
  EXPECT_DOUBLE_EQ(zero.power(), 0);  // convention: no time, no power
}

TEST(CostModel, LocalCostRejectsCommunication) {
  EXPECT_THROW((void)local_cost(counters::shared_memory(1, 0, 0, 0),
                                simple_energy()),
               std::invalid_argument);
  EXPECT_THROW(
      (void)local_cost(counters::message_passing(0, 1, 0, 0), simple_energy()),
      std::invalid_argument);
  const Cost c = local_cost(counters::local(2, 3), simple_energy());
  EXPECT_DOUBLE_EQ(c.time, 5);
  EXPECT_DOUBLE_EQ(c.energy, 2 * 4 + 3 * 1);
}

// -- the inter-node (cluster) tier -------------------------------------------

TEST(CostModel, NetworkBracketChargesOnlyWithNodeCounters) {
  // A round that never crosses the node boundary must cost the same no matter
  // how slow the network is — the third tier is invisible until it is used.
  CostCounters c = counters::message_passing(1, 1, 1, 1);
  c.c_fp = 2;
  const MachineParams base = simple_params();
  MachineParams huge = base;
  huge.L_net = 1e6;
  huge.g_net = 1e6;
  const ProcessCounts pc{.intra = 1, .inter = 1, .node = 3};
  EXPECT_DOUBLE_EQ(s_round_time(c, huge, pc), s_round_time(c, base, pc));
}

TEST(CostModel, NetworkTierFormulaMatchesClusterExtension) {
  // T = c + [P_n>=1] L_net + g_net (m_s_n + m_r_n)
  CostCounters c = counters::inter_node(2, 3);
  c.c_int = 4;
  MachineParams p = simple_params();
  p.L_net = 100;
  p.g_net = 8;
  const double with_peers = s_round_time(c, p, {.intra = 0, .inter = 0, .node = 1});
  EXPECT_DOUBLE_EQ(with_peers, 4 + 100 + 8 * (2 + 3));
  // No off-node peers: the latency bracket is off, bandwidth still charged.
  const double no_peers = s_round_time(c, p, {.intra = 0, .inter = 0, .node = 0});
  EXPECT_DOUBLE_EQ(no_peers, 4 + 8 * (2 + 3));
}

TEST(CostModel, NetworkEnergyChargesPerMessagePlusNetworkInterface) {
  // Inter-node messages pay the usual send/receive energy plus w_net each.
  const CostCounters c = counters::inter_node(2, 3);
  EnergyParams e = simple_energy();
  e.w_net = 7;
  EXPECT_DOUBLE_EQ(s_round_energy(c, e), 6 * 2 + 5 * 3 + 7 * (2 + 3));
}

TEST(CostModel, LocalCostRejectsNodeCounters) {
  EXPECT_THROW((void)local_cost(counters::inter_node(1, 0), simple_energy()),
               std::invalid_argument);
  EXPECT_THROW((void)local_cost(counters::inter_node(0, 1), simple_energy()),
               std::invalid_argument);
}

TEST(CostModel, SequentialSumsBoth) {
  const Cost total = sequential({Cost{1, 2}, Cost{3, 4}, Cost{5, 6}});
  EXPECT_DOUBLE_EQ(total.time, 9);
  EXPECT_DOUBLE_EQ(total.energy, 12);
}

TEST(CostModel, ParallelTakesMaxTimeTotalEnergy) {
  const Cost total = parallel({Cost{1, 2}, Cost{10, 4}, Cost{5, 6}});
  EXPECT_DOUBLE_EQ(total.time, 10);
  EXPECT_DOUBLE_EQ(total.energy, 12);
}

TEST(CostModel, EmptyCompositionsAreZero) {
  EXPECT_EQ(sequential({}), (Cost{0, 0}));
  EXPECT_EQ(parallel({}), (Cost{0, 0}));
}

// Property: parallel time <= sequential time, parallel energy == sequential
// energy, for any collection of costs.
class CompositionTest : public ::testing::TestWithParam<int> {};

TEST_P(CompositionTest, ParallelNeverSlowerThanSequential) {
  const int n = GetParam();
  std::vector<Cost> parts;
  for (int i = 0; i < n; ++i)
    parts.push_back(Cost{static_cast<double>(i * i % 17 + 1),
                         static_cast<double>(i % 5 + 1)});
  const Cost seq = sequential(parts);
  const Cost par = parallel(parts);
  EXPECT_LE(par.time, seq.time);
  EXPECT_DOUBLE_EQ(par.energy, seq.energy);
  // Parallel power is >= sequential power (same energy in less or equal time).
  if (par.time > 0) {
    EXPECT_GE(par.power(), seq.power());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompositionTest,
                         ::testing::Values(1, 2, 3, 8, 33, 100));

// Property: time is monotone in every parameter.
class MonotoneParamTest : public ::testing::TestWithParam<double> {};

TEST_P(MonotoneParamTest, TimeMonotoneInLatencyAndBandwidth) {
  const double bump = GetParam();
  CostCounters c = counters::shared_memory(5, 5, 5, 5, 1) +
                   counters::message_passing(5, 5, 5, 5);
  c.c_fp = 3;
  const ProcessCounts pc{.intra = 2, .inter = 2};
  MachineParams base = simple_params();
  const double t0 = s_round_time(c, base, pc);

  for (double MachineParams::*field :
       {&MachineParams::ell_a, &MachineParams::ell_e, &MachineParams::g_sh_a,
        &MachineParams::g_sh_e, &MachineParams::L_a, &MachineParams::L_e,
        &MachineParams::g_mp_a, &MachineParams::g_mp_e}) {
    MachineParams p = base;
    p.*field += bump;
    EXPECT_GE(s_round_time(c, p, pc), t0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MonotoneParamTest,
                         ::testing::Values(0.0, 0.5, 1.0, 10.0, 1000.0));

}  // namespace
}  // namespace stamp
