#include "models/models.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace stamp::models {
namespace {

TEST(RoundSpecs, JacobiShape) {
  const RoundSpec r = jacobi_round(10);
  EXPECT_DOUBLE_EQ(r.local_ops, 20);
  EXPECT_DOUBLE_EQ(r.msgs_out, 9);
  EXPECT_DOUBLE_EQ(r.msgs_in, 9);
  EXPECT_DOUBLE_EQ(r.shm_reads, 0);
}

TEST(RoundSpecs, ApspShape) {
  const RoundSpec r = apsp_round(8);
  EXPECT_DOUBLE_EQ(r.local_ops, 128);
  EXPECT_DOUBLE_EQ(r.shm_reads, 64);
  EXPECT_DOUBLE_EQ(r.shm_writes, 8);
  EXPECT_DOUBLE_EQ(r.max_location_accesses, 8);
}

TEST(Pram, CommunicationIsUnitCost) {
  RoundSpec r;
  r.local_ops = 10;
  r.msgs_out = 5;
  r.msgs_in = 5;
  EXPECT_DOUBLE_EQ(pram_round_time(r), 20);
  // PRAM cannot distinguish a chatty round from a local one of equal ops:
  RoundSpec local;
  local.local_ops = 20;
  EXPECT_DOUBLE_EQ(pram_round_time(local), pram_round_time(r));
}

TEST(Bsp, ChargesBandwidthAndBarrier) {
  RoundSpec r;
  r.local_ops = 10;
  r.msgs_out = 4;
  r.msgs_in = 2;
  const BspParams p{.g = 3, .l = 50};
  // h = max(out, in) with no shm: 4. 10 + 3*4 + 50.
  EXPECT_DOUBLE_EQ(bsp_round_time(r, p), 72);
}

TEST(Bsp, BarrierChargedEvenWithoutCommunication) {
  RoundSpec r;
  r.local_ops = 10;
  const BspParams p{.g = 3, .l = 50};
  EXPECT_DOUBLE_EQ(bsp_round_time(r, p), 60);  // the over-synchrony critique
}

TEST(LogP, OverheadAndGapAndLatency) {
  RoundSpec r;
  r.local_ops = 10;
  r.msgs_out = 3;
  r.msgs_in = 3;
  const LogPParams p{.L = 40, .o = 2, .g = 4};
  // 10 + o*(3+3) + g*(3-1) + L = 10 + 12 + 8 + 40.
  EXPECT_DOUBLE_EQ(logp_round_time(r, p), 70);
}

TEST(LogP, NoCommunicationNoLatency) {
  RoundSpec r;
  r.local_ops = 10;
  EXPECT_DOUBLE_EQ(logp_round_time(r, LogPParams{}), 10);
}

TEST(LogGP, LongMessagesAddPerWordGap) {
  RoundSpec r;
  r.msgs_out = 2;
  r.msgs_in = 0;
  LogGPParams p{.L = 10, .o = 1, .g = 2, .G = 0.5, .words_per_message = 11};
  // 0 + o*2 + g*1 + G*10*2 + L = 2 + 2 + 10 + 10 = 24.
  EXPECT_DOUBLE_EQ(loggp_round_time(r, p), 24);
  // With 1-word messages LogGP degenerates to LogP.
  p.words_per_message = 1;
  const LogPParams lp{.L = 10, .o = 1, .g = 2};
  EXPECT_DOUBLE_EQ(loggp_round_time(r, p), logp_round_time(r, lp));
}

TEST(Qsm, PhaseIsMaxOfThreeTerms) {
  RoundSpec r;
  r.local_ops = 10;
  r.shm_reads = 2;
  r.shm_writes = 1;
  r.max_location_accesses = 100;  // a hot location dominates
  const QsmParams p{.g = 4};
  EXPECT_DOUBLE_EQ(qsm_round_time(r, p), 100);
  r.max_location_accesses = 1;
  EXPECT_DOUBLE_EQ(qsm_round_time(r, p), 12);  // bandwidth term 4*3
  r.shm_reads = 0;
  r.shm_writes = 0;
  EXPECT_DOUBLE_EQ(qsm_round_time(r, p), 10);  // compute term
}

TEST(AllModels, RoundsComposeLinearly) {
  const RoundSpec r = jacobi_round(8);
  EXPECT_DOUBLE_EQ(pram_time(r, 10), 10 * pram_round_time(r));
  EXPECT_DOUBLE_EQ(bsp_time(r, 10, BspParams{}), 10 * bsp_round_time(r, BspParams{}));
  EXPECT_DOUBLE_EQ(logp_time(r, 10, LogPParams{}),
                   10 * logp_round_time(r, LogPParams{}));
  EXPECT_DOUBLE_EQ(loggp_time(r, 10, LogGPParams{}),
                   10 * loggp_round_time(r, LogGPParams{}));
  EXPECT_DOUBLE_EQ(qsm_time(r, 10, QsmParams{}),
                   10 * qsm_round_time(r, QsmParams{}));
}

// The paper's Section 2.2 ordering argument: PRAM underestimates every
// communicating round; BSP charges at least the barrier over LogP-like
// models for barrier-free workloads.
class ModelOrderingTest : public ::testing::TestWithParam<int> {};

TEST_P(ModelOrderingTest, PramIsAlwaysTheCheapest) {
  const int n = GetParam();
  const BspParams bsp{.g = 4, .l = 50};
  const LogPParams logp{.L = 40, .o = 2, .g = 4};
  for (const RoundSpec& r : {jacobi_round(n), apsp_round(n)}) {
    const double pram = pram_round_time(r);
    EXPECT_LE(pram, bsp_round_time(r, bsp) + 1e-9);
    EXPECT_LE(pram, logp_round_time(r, logp) + 1e-9);
    // QSM can beat PRAM on compute-bound rounds (max vs sum) but not on the
    // communication-bound Jacobi exchange with g >= 1.
  }
}

TEST_P(ModelOrderingTest, ReductionStepCosts) {
  const int n = GetParam();
  (void)n;
  const RoundSpec step = reduction_step(1);
  EXPECT_DOUBLE_EQ(step.msgs_out, 1);
  EXPECT_DOUBLE_EQ(step.msgs_in, 1);
  const LogPParams logp{.L = 40, .o = 2, .g = 4};
  EXPECT_DOUBLE_EQ(logp_round_time(step, logp), 1 + 2 * 2 + 40);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ModelOrderingTest,
                         ::testing::Values(2, 4, 16, 64, 256));

// The batch entry point behind the sweep engine: bit-for-bit equal to the
// scalar round_time per element (same operations, same order), for every
// model kind, over rounds with varied shapes (compute-only, chatty,
// shm-heavy, fractional counters).
TEST(Batch, RoundTimeBatchIsBitIdenticalToScalar) {
  std::vector<RoundSpec> rounds = {jacobi_round(10), apsp_round(8),
                                   reduction_step(3), RoundSpec{}};
  RoundSpec odd;
  odd.local_ops = 0.3;
  odd.msgs_out = 7.7;
  odd.msgs_in = 2.1;
  odd.shm_reads = 13.9;
  odd.shm_writes = 0.1;
  odd.max_location_accesses = 5.5;
  rounds.push_back(odd);

  const std::size_t n = rounds.size();
  std::vector<double> local(n), out_msgs(n), in_msgs(n), reads(n), writes(n),
      max_loc(n);
  for (std::size_t i = 0; i < n; ++i) {
    local[i] = rounds[i].local_ops;
    out_msgs[i] = rounds[i].msgs_out;
    in_msgs[i] = rounds[i].msgs_in;
    reads[i] = rounds[i].shm_reads;
    writes[i] = rounds[i].shm_writes;
    max_loc[i] = rounds[i].max_location_accesses;
  }
  const RoundSpecBatch batch{local, out_msgs, in_msgs, reads, writes, max_loc};

  ClassicalParams p;
  p.bsp = {.g = 3.7, .l = 51.2};
  p.logp = {.L = 40.1, .o = 2.3, .g = 4.9};
  p.loggp = {.L = 40.1, .o = 2.3, .g = 4.9, .G = 0.61, .words_per_message = 9};
  p.qsm = {.g = 2.9};

  std::vector<double> got(n);
  for (int k = 0; k < kModelKindCount; ++k) {
    const auto kind = static_cast<ModelKind>(k);
    round_time_batch(kind, batch, p, got);
    for (std::size_t i = 0; i < n; ++i) {
      // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the contract is exact bits, not
      // 4-ulp closeness — sweep artifacts are gated with cmp.
      EXPECT_EQ(got[i], round_time(kind, rounds[i], p))
          << to_string(kind) << " round " << i;
    }
  }
}

TEST(Batch, RoundTimeBatchRejectsMismatchedSpans) {
  const std::vector<double> three(3, 1.0);
  const std::vector<double> two(2, 1.0);
  std::vector<double> out(3);
  const RoundSpecBatch ragged{three, three, two, three, three, three};
  EXPECT_THROW(
      round_time_batch(ModelKind::PRAM, ragged, ClassicalParams{}, out),
      std::invalid_argument);
  const RoundSpecBatch square{three, three, three, three, three, three};
  std::vector<double> short_out(2);
  EXPECT_THROW(
      round_time_batch(ModelKind::BSP, square, ClassicalParams{}, short_out),
      std::invalid_argument);
}

}  // namespace
}  // namespace stamp::models
