#include "models/speedup.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stamp::models {
namespace {

TEST(Speedup, ArgumentsValidated) {
  EXPECT_THROW((void)amdahl_speedup(-0.1, 4), std::invalid_argument);
  EXPECT_THROW((void)amdahl_speedup(1.1, 4), std::invalid_argument);
  EXPECT_THROW((void)amdahl_speedup(0.5, 0), std::invalid_argument);
  EXPECT_THROW((void)gustafson_speedup(0.5, 0), std::invalid_argument);
}

TEST(Speedup, AmdahlKnownValues) {
  EXPECT_DOUBLE_EQ(amdahl_speedup(0.0, 8), 8.0);     // perfect parallel
  EXPECT_DOUBLE_EQ(amdahl_speedup(1.0, 8), 1.0);     // fully serial
  EXPECT_DOUBLE_EQ(amdahl_speedup(0.5, 2), 4.0 / 3); // textbook
  EXPECT_NEAR(amdahl_speedup(0.1, 8), 1.0 / (0.1 + 0.9 / 8), 1e-12);
}

TEST(Speedup, GustafsonKnownValues) {
  EXPECT_DOUBLE_EQ(gustafson_speedup(0.0, 8), 8.0);
  EXPECT_DOUBLE_EQ(gustafson_speedup(1.0, 8), 1.0);
  EXPECT_DOUBLE_EQ(gustafson_speedup(0.25, 5), 4.0);  // 5 - 0.25*4
}

TEST(Speedup, AmdahlLimit) {
  EXPECT_TRUE(std::isinf(amdahl_limit(0.0)));
  EXPECT_DOUBLE_EQ(amdahl_limit(0.1), 10.0);
  EXPECT_DOUBLE_EQ(amdahl_limit(1.0), 1.0);
}

TEST(Speedup, EqualPowerPerfectParallelIsTwoThirdsLaw) {
  for (int p : {1, 8, 27, 64}) {
    EXPECT_NEAR(equal_power_amdahl_speedup(0.0, p),
                std::pow(static_cast<double>(p), 2.0 / 3.0), 1e-12);
  }
}

TEST(Speedup, SerialFractionCapsEqualPowerBenefit) {
  // With s = 10%, the equal-power speedup peaks and then declines: adding
  // cores forces f down while Amdahl saturates.
  const int best = optimal_equal_power_cores(0.1, 512);
  EXPECT_GT(best, 1);
  EXPECT_LT(best, 512);
  const double peak = equal_power_amdahl_speedup(0.1, best);
  EXPECT_GT(peak, equal_power_amdahl_speedup(0.1, 1));
  EXPECT_GT(peak, equal_power_amdahl_speedup(0.1, 512));
}

TEST(Speedup, FullyParallelWantsAllTheCores) {
  // s = 0: speedup = p^(2/3) is monotone, so the optimum is the max.
  EXPECT_EQ(optimal_equal_power_cores(0.0, 256), 256);
}

TEST(Speedup, FullySerialWantsOneCore) {
  // s = 1: parallelism never helps; frequency penalty always hurts.
  EXPECT_EQ(optimal_equal_power_cores(1.0, 256), 1);
}

// Property: Gustafson >= Amdahl for the same (s, p); both in [1, p].
class SpeedupSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(SpeedupSweep, LawsOrderedAndBounded) {
  const auto [s, p] = GetParam();
  const double a = amdahl_speedup(s, p);
  const double g = gustafson_speedup(s, p);
  EXPECT_GE(g + 1e-12, a);
  EXPECT_GE(a, 1.0 - 1e-12);
  EXPECT_LE(a, p + 1e-12);
  EXPECT_GE(g, 1.0 - 1e-12);
  EXPECT_LE(g, p + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpeedupSweep,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.3, 0.9, 1.0),
                       ::testing::Values(1, 2, 8, 64, 1024)));

}  // namespace
}  // namespace stamp::models
