#include "shm/shared_region.hpp"

#include <gtest/gtest.h>

#include <atomic>

// run_distributed is deprecated in favor of Evaluator::run; this file drives
// the layer under test through the executor directly on purpose (it sits
// below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace stamp::shm {
namespace {

using runtime::Context;
using runtime::PlacementMap;

const Topology kTopo{.chips = 1, .processors_per_chip = 4,
                     .threads_per_processor = 4};

TEST(ResolveIntra, ForcedScopes) {
  const PlacementMap pm =
      PlacementMap::for_distribution(kTopo, 4, Distribution::InterProc);
  EXPECT_TRUE(resolve_intra(Scope::Intra, pm));
  EXPECT_FALSE(resolve_intra(Scope::Inter, pm));
}

TEST(ResolveIntra, AutoFollowsPlacement) {
  const PlacementMap together =
      PlacementMap::for_distribution(kTopo, 4, Distribution::IntraProc);
  EXPECT_TRUE(resolve_intra(Scope::Auto, together));
  const PlacementMap apart =
      PlacementMap::for_distribution(kTopo, 4, Distribution::InterProc);
  EXPECT_FALSE(resolve_intra(Scope::Auto, apart));
}

TEST(SharedRegion, ReadWriteRoundTrip) {
  SharedRegion<int> region(5);
  (void)runtime::run_distributed(kTopo, 1, Distribution::IntraProc,
                                 [&](Context& ctx) {
                                   EXPECT_EQ(region.read(ctx), 5);
                                   region.write(ctx, 9);
                                   EXPECT_EQ(region.read(ctx), 9);
                                 });
  EXPECT_EQ(region.peek(), 9);
}

TEST(SharedRegion, AccessesAreCounted) {
  SharedRegion<int> region(0);
  const auto r = runtime::run_distributed(
      kTopo, 2, Distribution::IntraProc, [&](Context& ctx) {
        (void)region.read(ctx);
        (void)region.read(ctx);
        region.write(ctx, 1);
      });
  for (const auto& rec : r.recorders) {
    EXPECT_DOUBLE_EQ(rec.totals().d_r_a, 2);  // co-located: intra
    EXPECT_DOUBLE_EQ(rec.totals().d_w_a, 1);
    EXPECT_DOUBLE_EQ(rec.totals().d_r_e, 0);
  }
}

TEST(SharedRegion, InterPlacementChargesInter) {
  SharedRegion<int> region(0);
  const auto r = runtime::run_distributed(
      kTopo, 2, Distribution::InterProc,
      [&](Context& ctx) { (void)region.read(ctx); });
  EXPECT_DOUBLE_EQ(r.recorders[0].totals().d_r_e, 1);
  EXPECT_DOUBLE_EQ(r.recorders[0].totals().d_r_a, 0);
}

TEST(SharedRegion, ConcurrentUpdatesAreAtomic) {
  constexpr int kN = 8;
  constexpr int kIncrements = 2000;
  SharedRegion<long> region(0);
  (void)runtime::run_distributed(kTopo, kN, Distribution::IntraProc,
                                 [&](Context& ctx) {
                                   for (int i = 0; i < kIncrements; ++i)
                                     region.update(ctx, [](long& v) { ++v; });
                                 });
  EXPECT_EQ(region.peek(), static_cast<long>(kN) * kIncrements);
}

TEST(QueuedCell, SerializedUpdatesSumCorrectly) {
  constexpr int kN = 8;
  constexpr int kIncrements = 2000;
  QueuedCell<long> cell(0);
  (void)runtime::run_distributed(kTopo, kN, Distribution::IntraProc,
                                 [&](Context& ctx) {
                                   for (int i = 0; i < kIncrements; ++i)
                                     cell.update(ctx, [](long& v) { ++v; });
                                 });
  EXPECT_EQ(cell.peek(), static_cast<long>(kN) * kIncrements);
}

TEST(QueuedCell, SerializationObserved) {
  constexpr int kN = 8;
  QueuedCell<long> cell(0);
  const auto r = runtime::run_distributed(
      kTopo, kN, Distribution::IntraProc, [&](Context& ctx) {
        for (int i = 0; i < 5000; ++i) cell.update(ctx, [](long& v) { ++v; });
      });
  // Under heavy contention from 8 threads, some queueing must be visible.
  EXPECT_GE(cell.worst_serialization(), 1);
  EXPECT_LE(cell.worst_serialization(), kN);
  // kappa recorded at the accessors never exceeds the cell's worst queue.
  for (const auto& rec : r.recorders)
    EXPECT_LE(rec.totals().kappa, cell.worst_serialization());
}

TEST(QueuedCell, SingleAccessorKappaIsOne) {
  QueuedCell<int> cell(0);
  const auto r = runtime::run_distributed(
      kTopo, 1, Distribution::IntraProc,
      [&](Context& ctx) { cell.update(ctx, [](int& v) { v = 7; }); });
  EXPECT_DOUBLE_EQ(cell.worst_serialization(), 1);
  EXPECT_DOUBLE_EQ(r.recorders[0].totals().kappa, 1);
}

TEST(QueuedCell, UpdateReturnsValue) {
  QueuedCell<int> cell(10);
  (void)runtime::run_distributed(kTopo, 1, Distribution::IntraProc,
                                 [&](Context& ctx) {
                                   const int prev = cell.update(
                                       ctx, [](int& v) { return v++; });
                                   EXPECT_EQ(prev, 10);
                                 });
  EXPECT_EQ(cell.peek(), 11);
}

}  // namespace
}  // namespace stamp::shm
