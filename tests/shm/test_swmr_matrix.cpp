#include "shm/swmr_matrix.hpp"

#include <gtest/gtest.h>

// run_distributed is deprecated in favor of Evaluator::run; this file drives
// the layer under test through the executor directly on purpose (it sits
// below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace stamp::shm {
namespace {

using runtime::Context;

const Topology kTopo{.chips = 1, .processors_per_chip = 4,
                     .threads_per_processor = 4};

TEST(SwmrMatrix, DimensionsValidated) {
  EXPECT_THROW(SwmrMatrix<double>(0, 3), std::invalid_argument);
  EXPECT_THROW(SwmrMatrix<double>(3, 0), std::invalid_argument);
  const SwmrMatrix<double> m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m.peek(1, 2), 1.5);
}

TEST(SwmrMatrix, PokePeekRoundTrip) {
  SwmrMatrix<int> m(2, 2);
  m.poke(0, 1, 42);
  EXPECT_EQ(m.peek(0, 1), 42);
  EXPECT_EQ(m.peek(1, 0), 0);
}

TEST(SwmrMatrix, BoundsChecked) {
  SwmrMatrix<int> m(2, 2);
  EXPECT_THROW(m.poke(2, 0, 1), std::out_of_range);
  EXPECT_THROW(m.poke(0, -1, 1), std::out_of_range);
  EXPECT_THROW((void)m.peek(0, 2), std::out_of_range);
}

TEST(SwmrMatrix, OwnershipEnforced) {
  SwmrMatrix<int> m(4, 4);
  (void)runtime::run_distributed(kTopo, 4, Distribution::IntraProc,
                                 [&](Context& ctx) {
                                   m.write(ctx, ctx.id(), 0, ctx.id());
                                   const int other = (ctx.id() + 1) % 4;
                                   EXPECT_THROW(m.write(ctx, other, 0, 0),
                                                std::logic_error);
                                 });
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(m.peek(i, 0), i);
  }
}

TEST(SwmrMatrix, RowWriteSizeChecked) {
  SwmrMatrix<int> m(2, 3);
  (void)runtime::run_distributed(
      kTopo, 2, Distribution::IntraProc, [&](Context& ctx) {
        if (ctx.id() == 0) {
          EXPECT_THROW(m.write_row(ctx, 0, std::vector<int>{1, 2}),
                       std::invalid_argument);
        }
      });
}

TEST(SwmrMatrix, ReadCountsChargePerElement) {
  SwmrMatrix<double> m(4, 4);
  const auto r = runtime::run_distributed(
      kTopo, 4, Distribution::IntraProc, [&](Context& ctx) {
        (void)m.read_row(ctx, ctx.id());       // 4 reads
        (void)m.read(ctx, (ctx.id() + 1) % 4, 0);  // 1 read
      });
  const CostCounters c = r.recorders[0].totals();
  EXPECT_DOUBLE_EQ(c.d_r_a + c.d_r_e, 5);
}

TEST(SwmrMatrix, ReadAllChargesWholeMatrix) {
  SwmrMatrix<double> m(4, 4);
  const auto r = runtime::run_distributed(
      kTopo, 4, Distribution::IntraProc,
      [&](Context& ctx) { (void)m.read_all(ctx); });
  const CostCounters c = r.recorders[0].totals();
  EXPECT_DOUBLE_EQ(c.d_r_a + c.d_r_e, 16);
}

TEST(SwmrMatrix, IntraInterSplitFollowsRowOwner) {
  // InterProc placement: every peer is remote, own row is local.
  SwmrMatrix<double> m(4, 2);
  const auto r = runtime::run_distributed(
      kTopo, 4, Distribution::InterProc, [&](Context& ctx) {
        for (int row = 0; row < 4; ++row) (void)m.read_row(ctx, row);
      });
  const CostCounters c = r.recorders[0].totals();
  EXPECT_DOUBLE_EQ(c.d_r_a, 2);  // own row only
  EXPECT_DOUBLE_EQ(c.d_r_e, 6);  // three remote rows
}

TEST(SwmrMatrix, WritesVisibleToReaders) {
  constexpr int kN = 4;
  SwmrMatrix<long> m(kN, 1, -1);
  (void)runtime::run_distributed(
      kTopo, kN, Distribution::IntraProc, [&](Context& ctx) {
        m.write(ctx, ctx.id(), 0, 100 + ctx.id());
        // Spin until all rows are published (SWMR: no locks needed).
        for (int row = 0; row < kN; ++row) {
          while (m.read(ctx, row, 0) < 0) {
          }
        }
      });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(m.peek(i, 0), 100 + i);
}

TEST(SwmrMatrix, ConcurrentSingleWriterPerRowKeepsRowsIndependent) {
  constexpr int kN = 8;
  constexpr int kWrites = 1000;
  SwmrMatrix<long> m(kN, 4);
  (void)runtime::run_distributed(
      kTopo, kN, Distribution::IntraProc, [&](Context& ctx) {
        for (int w = 1; w <= kWrites; ++w) {
          std::vector<long> row(4, static_cast<long>(ctx.id()) * kWrites + w);
          m.write_row(ctx, ctx.id(), row);
        }
      });
  for (int i = 0; i < kN; ++i)
    for (int c = 0; c < 4; ++c)
      EXPECT_EQ(m.peek(i, c), static_cast<long>(i) * kWrites + kWrites);
}

}  // namespace
}  // namespace stamp::shm
