#include "chaos/shrink.hpp"

#include "chaos/scenario.hpp"

#include <gtest/gtest.h>

namespace stamp::chaos {
namespace {

TEST(Shrink, ReducesManyEntryFailureToMinimalPair) {
  const auto scenario = make_scenario("seeded_probe");
  // Six forced injections: far more than needed to corrupt the probe (which
  // tolerates exactly one). ddmin must reach a 1-minimal schedule — for this
  // scenario, exactly 2 entries.
  fault::Schedule failing;
  for (std::uint64_t key = 0; key < 6; ++key)
    failing.entries.push_back({fault::FaultSite::TestProbe, key, 0, 0.0});

  const ShrinkResult result =
      shrink_schedule(scenario, "state=ok", failing, /*watchdog_ms=*/20000,
                      /*max_trials=*/256);
  EXPECT_EQ(result.minimal.size(), 2u);
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.trials_used, 0u);
  EXPECT_LE(result.trials_used, 256u);
}

TEST(Shrink, AlreadyMinimalScheduleIsKept) {
  const auto scenario = make_scenario("seeded_probe");
  fault::Schedule failing;
  failing.entries.push_back({fault::FaultSite::TestProbe, 0, 0, 0.0});
  failing.entries.push_back({fault::FaultSite::TestProbe, 7, 0, 0.0});
  const ShrinkResult result =
      shrink_schedule(scenario, "state=ok", failing, /*watchdog_ms=*/20000,
                      /*max_trials=*/256);
  EXPECT_EQ(result.minimal.size(), 2u);
  EXPECT_TRUE(result.verified);
}

TEST(Shrink, DeterministicAcrossRuns) {
  const auto scenario = make_scenario("seeded_probe");
  fault::Schedule failing;
  for (std::uint64_t key = 0; key < 4; ++key)
    failing.entries.push_back({fault::FaultSite::TestProbe, key, 0, 0.0});
  const ShrinkResult first = shrink_schedule(scenario, "state=ok", failing,
                                             /*watchdog_ms=*/20000,
                                             /*max_trials=*/256);
  const ShrinkResult second = shrink_schedule(scenario, "state=ok", failing,
                                              /*watchdog_ms=*/20000,
                                              /*max_trials=*/256);
  EXPECT_EQ(first.minimal, second.minimal);
  EXPECT_EQ(first.trials_used, second.trials_used);
}

}  // namespace
}  // namespace stamp::chaos
