#include "chaos/scenario.hpp"

#include "fault/injector.hpp"

#include <gtest/gtest.h>

namespace stamp::chaos {
namespace {

TEST(Scenarios, EveryListedNameConstructs) {
  const auto names = scenario_names();
  EXPECT_FALSE(names.empty());
  for (const std::string& name : names) {
    const auto scenario = make_scenario(name);
    ASSERT_NE(scenario, nullptr) << name;
    EXPECT_EQ(scenario->name(), name);
    EXPECT_FALSE(scenario->sites().empty()) << name;
  }
  EXPECT_EQ(make_scenario("no_such_scenario"), nullptr);
}

TEST(Scenarios, UninjectedRunsAreDeterministic) {
  // Without any armed injector, two runs of the same scenario must produce
  // identical artifacts — the campaign's reference-run assumption.
  for (const std::string& name : scenario_names()) {
    const auto scenario = make_scenario(name);
    EXPECT_EQ(scenario->run(), scenario->run()) << name;
  }
}

TEST(Scenarios, SeededProbeToleratesOneInjectionButNotTwo) {
  const auto probe = make_scenario("seeded_probe");
  ASSERT_NE(probe, nullptr);

  fault::Injector injector;
  fault::Schedule one;
  one.entries.push_back({fault::FaultSite::TestProbe, 2, 0, 0.0});
  injector.arm_replay(one);
  {
    const fault::InjectorScope scope(injector);
    EXPECT_EQ(probe->run(), "state=ok");
  }

  fault::Schedule two = one;
  two.entries.push_back({fault::FaultSite::TestProbe, 5, 0, 0.0});
  injector.arm_replay(two);
  {
    const fault::InjectorScope scope(injector);
    EXPECT_EQ(probe->run(), "state=corrupted");
  }
  injector.disarm();
}

}  // namespace
}  // namespace stamp::chaos
