#include "chaos/campaign.hpp"

#include "chaos/scenario.hpp"
#include "sweep/pool.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace stamp::chaos {
namespace {

CampaignResult run_campaign(int jobs, bool shrink = false) {
  CampaignOptions options;
  options.shrink = shrink;
  const Campaign campaign(make_scenario("seeded_probe"), options);
  sweep::Pool pool(jobs);
  return campaign.run(pool);
}

TEST(Campaign, TrialAgainstMatchingReferencePasses) {
  const auto scenario = make_scenario("seeded_probe");
  const TrialRun reference =
      run_trial(scenario, fault::Schedule{}, /*watchdog_ms=*/20000, nullptr);
  ASSERT_EQ(reference.outcome, TrialOutcome::Pass);
  EXPECT_EQ(reference.artifact, "state=ok");
  EXPECT_TRUE(reference.fired.empty());
  EXPECT_FALSE(reference.streams.empty());  // observe mode walked the streams

  const TrialRun again = run_trial(scenario, fault::Schedule{},
                                   /*watchdog_ms=*/20000, &reference.artifact);
  EXPECT_EQ(again.outcome, TrialOutcome::Pass);
}

TEST(Campaign, TrialDetectsInvariantViolation) {
  const auto scenario = make_scenario("seeded_probe");
  fault::Schedule pair;
  pair.entries.push_back({fault::FaultSite::TestProbe, 0, 0, 0.0});
  pair.entries.push_back({fault::FaultSite::TestProbe, 1, 0, 0.0});
  const std::string reference = "state=ok";
  const TrialRun trial =
      run_trial(scenario, pair, /*watchdog_ms=*/20000, &reference);
  EXPECT_EQ(trial.outcome, TrialOutcome::Fail);
  EXPECT_EQ(trial.artifact, "state=corrupted");
  EXPECT_EQ(trial.fired.size(), 2u);  // both forced injections landed
}

TEST(Campaign, FindsTheSeededViolationInPairs) {
  const CampaignResult result = run_campaign(/*jobs=*/1);
  EXPECT_EQ(result.scenario, "seeded_probe");
  EXPECT_EQ(result.reference, "state=ok");
  // 8 TestProbe streams, budget 16 but only 1 decision each: 8 singles, all
  // passing; every pair of singles corrupts the probe.
  EXPECT_EQ(result.singles, 8u);
  EXPECT_GT(result.pairs, 0u);
  EXPECT_EQ(result.failures.size(), result.pairs);
  for (const std::size_t index : result.failures) {
    EXPECT_EQ(result.trials[index].outcome, TrialOutcome::Fail);
    EXPECT_EQ(result.trials[index].schedule.size(), 2u);
  }
}

TEST(Campaign, ArtifactIsByteIdenticalAcrossJobCounts) {
  const CampaignResult serial = run_campaign(/*jobs=*/1, /*shrink=*/true);
  const CampaignResult parallel = run_campaign(/*jobs=*/4, /*shrink=*/true);
  std::ostringstream a;
  std::ostringstream b;
  write_campaign_json(a, serial);
  write_campaign_json(b, parallel);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Campaign, ShrinksFailuresToTwoEntryVerifiedRepros) {
  const CampaignResult result = run_campaign(/*jobs=*/4, /*shrink=*/true);
  ASSERT_FALSE(result.minimal.empty());
  for (const ShrunkFailure& shrunk : result.minimal) {
    EXPECT_EQ(shrunk.minimal.size(), 2u);
    EXPECT_TRUE(shrunk.verified);
    EXPECT_GT(shrunk.trials_used, 0u);
  }
}

TEST(Campaign, CleanScenarioReportsNoViolations) {
  CampaignOptions options;
  options.budget = 2;
  options.pair_budget = 4;
  const Campaign campaign(make_scenario("stm_retry_budget"), options);
  sweep::Pool pool(2);
  const CampaignResult result = campaign.run(pool);
  EXPECT_GT(result.trials.size(), 0u);
  EXPECT_TRUE(result.failures.empty());
  EXPECT_TRUE(result.minimal.empty());
}

TEST(Campaign, SiteFilterRestrictsEnumeration) {
  CampaignOptions options;
  options.sites = {fault::FaultSite::MsgDrop};
  options.budget = 2;
  options.pair_budget = 0;
  const Campaign campaign(make_scenario("mailbox_pipeline"), options);
  sweep::Pool pool(2);
  const CampaignResult result = campaign.run(pool);
  for (const TrialResult& trial : result.trials)
    for (const fault::ScheduleEntry& entry : trial.schedule.entries)
      EXPECT_EQ(entry.site, fault::FaultSite::MsgDrop);
}

}  // namespace
}  // namespace stamp::chaos
