#include "stm/transaction.hpp"

#include "stm/tvar.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace stamp::stm {
namespace {

class TransactionTest : public ::testing::Test {
 protected:
  std::atomic<std::uint64_t> clock_{0};
};

TEST_F(TransactionTest, ReadSeesInitialValue) {
  TVar<int> v(42);
  Transaction tx(clock_);
  EXPECT_EQ(tx.read(v), 42);
  EXPECT_EQ(tx.reads(), 1u);
}

TEST_F(TransactionTest, ReadOwnWrite) {
  TVar<int> v(1);
  Transaction tx(clock_);
  tx.write(v, 5);
  EXPECT_EQ(tx.read(v), 5);
  EXPECT_EQ(v.peek(), 1);  // not yet committed
}

TEST_F(TransactionTest, WriteIsBufferedUntilCommit) {
  TVar<int> v(1);
  Transaction tx(clock_);
  tx.write(v, 9);
  EXPECT_EQ(v.peek(), 1);
  tx.commit();
  EXPECT_EQ(v.peek(), 9);
  EXPECT_EQ(v.lock().version(), clock_.load());
  EXPECT_FALSE(v.lock().locked());
}

TEST_F(TransactionTest, SecondWriteOverwritesBuffer) {
  TVar<int> v(0);
  Transaction tx(clock_);
  tx.write(v, 1);
  tx.write(v, 2);
  EXPECT_EQ(tx.writes(), 1u);  // one distinct variable
  tx.commit();
  EXPECT_EQ(v.peek(), 2);
}

TEST_F(TransactionTest, ReadOnlyCommitIsTrivial) {
  TVar<int> v(3);
  Transaction tx(clock_);
  (void)tx.read(v);
  EXPECT_NO_THROW(tx.commit());
  EXPECT_EQ(clock_.load(), 0u);  // no version consumed
}

TEST_F(TransactionTest, ReadConflictsWithLockedVar) {
  TVar<int> v(1);
  ASSERT_TRUE(v.lock().try_lock(0));  // someone else holds the write lock
  Transaction tx(clock_);
  EXPECT_THROW((void)tx.read(v), TxConflict);
}

TEST_F(TransactionTest, ReadConflictsWithNewerVersion) {
  TVar<int> v(1);
  Transaction tx(clock_);  // rv = 0
  // A committer bumps the version past the reader's snapshot.
  clock_.store(5);
  ASSERT_TRUE(v.lock().try_lock(5));
  v.store_committed(99);
  v.lock().unlock_to_version(5);
  EXPECT_THROW((void)tx.read(v), TxConflict);
}

TEST_F(TransactionTest, CommitConflictsWhenWriteTargetMoved) {
  TVar<int> v(1);
  Transaction tx(clock_);
  (void)tx.read(v);
  tx.write(v, 2);
  // Concurrent commit advances v's version beyond tx's read version.
  clock_.store(3);
  ASSERT_TRUE(v.lock().try_lock(3));
  v.store_committed(50);
  v.lock().unlock_to_version(3);
  EXPECT_THROW(tx.commit(), TxConflict);
  EXPECT_EQ(v.peek(), 50);  // loser's buffer discarded
  EXPECT_FALSE(v.lock().locked());
}

TEST_F(TransactionTest, FailedCommitReleasesAllAcquiredLocks) {
  TVar<int> a(1);
  TVar<int> b(2);
  Transaction tx(clock_);
  tx.write(a, 10);
  tx.write(b, 20);
  // Lock b externally so phase 1 fails partway.
  ASSERT_TRUE(b.lock().try_lock(0));
  EXPECT_THROW(tx.commit(), TxConflict);
  EXPECT_FALSE(a.lock().locked());  // a must have been restored
  b.lock().unlock_restore();
}

TEST_F(TransactionTest, ReadSetValidatedAtCommit) {
  TVar<int> read_var(1);
  TVar<int> write_var(2);
  Transaction tx(clock_);
  (void)tx.read(read_var);
  tx.write(write_var, 9);
  // Another transaction commits to read_var, invalidating the snapshot, and
  // also advances the clock so the rv+1 shortcut does not skip validation.
  clock_.store(1);
  ASSERT_TRUE(read_var.lock().try_lock(1));
  read_var.store_committed(100);
  read_var.lock().unlock_to_version(1);
  EXPECT_THROW(tx.commit(), TxConflict);
  EXPECT_EQ(write_var.peek(), 2);
}

TEST_F(TransactionTest, Tl2ShortcutSkipsValidationWhenNoInterleaving) {
  TVar<int> read_var(1);
  TVar<int> write_var(2);
  Transaction tx(clock_);
  (void)tx.read(read_var);
  tx.write(write_var, 9);
  // No concurrent commits: wv == rv+1 and the commit must succeed.
  EXPECT_NO_THROW(tx.commit());
  EXPECT_EQ(write_var.peek(), 9);
}

TEST_F(TransactionTest, MarkRollbackDropsSubtransactionWrites) {
  TVar<int> a(1);
  TVar<int> b(2);
  Transaction tx(clock_);
  tx.write(a, 10);
  const std::size_t mark = tx.mark();
  tx.write(b, 20);
  tx.rollback_to(mark);
  tx.commit();
  EXPECT_EQ(a.peek(), 10);
  EXPECT_EQ(b.peek(), 2);  // rolled back
}

TEST_F(TransactionTest, RollbackPastEndRejected) {
  Transaction tx(clock_);
  EXPECT_THROW(tx.rollback_to(3), TxUsageError);
}

TEST_F(TransactionTest, CancelThrows) {
  Transaction tx(clock_);
  EXPECT_THROW(tx.cancel(), TxCancelled);
}

TEST_F(TransactionTest, ModifyComposesReadAndWrite) {
  TVar<int> v(10);
  Transaction tx(clock_);
  tx.modify(v, [](int& x) { x *= 3; });
  tx.commit();
  EXPECT_EQ(v.peek(), 30);
}

TEST_F(TransactionTest, ManySequentialTransactionsAdvanceClock) {
  TVar<long> v(0);
  for (int i = 0; i < 100; ++i) {
    Transaction tx(clock_);
    tx.write(v, tx.read(v) + 1);
    tx.commit();
  }
  EXPECT_EQ(v.peek(), 100);
  EXPECT_EQ(clock_.load(), 100u);
  EXPECT_EQ(v.lock().version(), 100u);
}

TEST_F(TransactionTest, SixteenByteValuesSupported) {
  struct Wide {
    double a;
    double b;
  };
  TVar<Wide> v(Wide{1, 2});
  Transaction tx(clock_);
  const Wide w = tx.read(v);
  EXPECT_DOUBLE_EQ(w.a, 1);
  tx.write(v, Wide{3, 4});
  tx.commit();
  EXPECT_DOUBLE_EQ(v.peek().b, 4);
}

}  // namespace
}  // namespace stamp::stm
