#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/retry.hpp"
#include "obs/obs.hpp"
#include "runtime/executor.hpp"
#include "stm/stm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

// run_distributed is deprecated in favor of Evaluator::run; this file drives
// the layer under test through the executor directly on purpose (it sits
// below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace stamp::stm {
namespace {

using runtime::Context;

const Topology kTopo{.chips = 1, .processors_per_chip = 4,
                     .threads_per_processor = 4};

class ArmedPlan {
 public:
  explicit ArmedPlan(const fault::FaultPlan& plan) {
    fault::Injector::global().arm(plan);
  }
  ~ArmedPlan() { fault::Injector::global().disarm(); }
};

TEST(StmFaults, ForcedAbortsCountAsConflictsAndStillCommit) {
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::StmAbort, 1.0, 0, /*max_per_key=*/3);
  const ArmedPlan armed(plan);
  StmRuntime rt;
  TVar<int> v(0);
  const auto r = runtime::run_distributed(
      kTopo, 1, Distribution::IntraProc, [&](Context& ctx) {
        rt.atomically(ctx, [&](Transaction& tx) {
          tx.write(v, tx.read(v) + 1);
          return true;
        });
      });
  // 3 injected aborts, then the per-key cap lets the 4th attempt commit.
  EXPECT_EQ(v.peek(), 1);
  EXPECT_EQ(rt.stats().commits.load(), 1u);
  EXPECT_EQ(rt.stats().aborts.load(), 3u);
  EXPECT_EQ(rt.stats().max_retries.load(), 3u);
  // The rollbacks feed kappa exactly like organic conflicts.
  EXPECT_DOUBLE_EQ(r.recorders[0].totals().kappa, 3.0);
  EXPECT_EQ(fault::Injector::global().injected(fault::FaultSite::StmAbort),
            3u);
}

TEST(StmFaults, ForcedAbortsAppearInObsTrace) {
  obs::TraceRecorder::global().clear();
  obs::set_tracing_enabled(true);
  {
    fault::FaultPlan plan;
    plan.with(fault::FaultSite::StmAbort, 1.0, 0, /*max_per_key=*/2);
    const ArmedPlan armed(plan);
    StmRuntime rt;
    TVar<int> v(0);
    (void)runtime::run_distributed(kTopo, 1, Distribution::IntraProc,
                                   [&](Context& ctx) {
                                     rt.atomically(ctx, [&](Transaction& tx) {
                                       tx.write(v, 1);
                                       return true;
                                     });
                                   });
  }
  obs::set_tracing_enabled(false);
  int fault_instants = 0;
  for (const obs::TraceEvent& e : obs::TraceRecorder::global().snapshot())
    if (e.phase == 'i' && e.name == "fault.stm_abort") ++fault_instants;
  EXPECT_EQ(fault_instants, 2);
  obs::TraceRecorder::global().clear();
}

TEST(StmFaults, BoundedRetryPolicyThrowsRetryExhausted) {
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::StmAbort, 1.0);  // abort forever
  const ArmedPlan armed(plan);
  StmRuntime rt;
  rt.set_retry_policy(fault::RetryPolicy::bounded(4));
  TVar<int> v(0);
  int exhausted_retries = 0;
  (void)runtime::run_distributed(
      kTopo, 1, Distribution::IntraProc, [&](Context& ctx) {
        try {
          rt.atomically(ctx, [&](Transaction& tx) {
            tx.write(v, 1);
            return true;
          });
          ADD_FAILURE() << "expected RetryExhausted";
        } catch (const fault::RetryExhausted& e) {
          exhausted_retries = e.retries();
        }
      });
  EXPECT_EQ(exhausted_retries, 5);  // 5 aborted attempts = 1 first + 4 retries
  EXPECT_EQ(v.peek(), 0);           // nothing ever committed
  EXPECT_EQ(rt.stats().commits.load(), 0u);
  EXPECT_EQ(rt.stats().aborts.load(), 5u);
}

TEST(StmFaults, SetRetryPolicyValidates) {
  StmRuntime rt;
  fault::RetryPolicy bad;
  bad.jitter = 2.0;
  EXPECT_THROW(rt.set_retry_policy(bad), std::invalid_argument);
  EXPECT_LT(rt.retry_policy().max_retries, 0);  // default is unbounded
}

// Satellite: a forced-abort storm stressing StmStats and the contention
// manager from many threads at once, with a watcher thread reading the
// atomics concurrently. Run under TSan this must be race-free; under any
// build the conservation invariants must hold.
TEST(StmFaults, StatsStayConsistentUnderForcedAbortStorm) {
  constexpr int kProcesses = 8;
  constexpr int kTxnsPerProcess = 300;
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.with(fault::FaultSite::StmAbort, 0.5);  // every 2nd attempt dies
  const ArmedPlan armed(plan);
  StmRuntime rt(std::make_unique<KarmaManager>());
  TVar<long> hot(0);

  std::atomic<bool> done{false};
  std::atomic<bool> monotone{true};
  std::thread watcher([&] {
    // max_retries must only ever grow while the storm runs.
    std::uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t now = rt.stats().max_retries.load();
      if (now < last) monotone.store(false);
      last = now;
      std::this_thread::yield();
    }
  });

  std::uint64_t cancels_expected = 0;
  (void)runtime::run_distributed(
      kTopo, kProcesses, Distribution::IntraProc, [&](Context& ctx) {
        for (int i = 0; i < kTxnsPerProcess; ++i) {
          if (i % 10 == 9) {
            // Sprinkle business-level cancels into the storm.
            const auto result =
                rt.try_atomically(ctx, [&](Transaction& tx) -> int {
                  (void)tx.read(hot);
                  tx.cancel();
                });
            EXPECT_FALSE(result.has_value());
          } else {
            rt.atomically(ctx, [&](Transaction& tx) {
              tx.write(hot, tx.read(hot) + 1);
              return true;
            });
          }
        }
      });
  done.store(true, std::memory_order_release);
  watcher.join();

  cancels_expected = kProcesses * (kTxnsPerProcess / 10);
  const std::uint64_t commits_expected =
      static_cast<std::uint64_t>(kProcesses) * kTxnsPerProcess -
      cancels_expected;
  // Conservation: every atomically call ends in exactly one commit or one
  // cancel, no matter how many forced aborts preceded it.
  EXPECT_EQ(rt.stats().commits.load(), commits_expected);
  EXPECT_EQ(rt.stats().cancels.load(), cancels_expected);
  EXPECT_EQ(hot.peek(), static_cast<long>(commits_expected));
  // The storm really stormed, and the worst rollback chain is visible.
  EXPECT_GT(rt.stats().aborts.load(), 0u);
  EXPECT_GE(rt.stats().max_retries.load(), 1u);
  EXPECT_TRUE(monotone.load());
}

}  // namespace
}  // namespace stamp::stm
