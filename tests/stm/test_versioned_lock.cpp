#include "stm/versioned_lock.hpp"

#include <gtest/gtest.h>

namespace stamp::stm {
namespace {

TEST(VersionedLock, StartsUnlockedAtVersionZero) {
  const VersionedLock lock;
  EXPECT_FALSE(lock.locked());
  EXPECT_EQ(lock.version(), 0u);
  EXPECT_TRUE(lock.valid_for(0));
}

TEST(VersionedLock, WordDecoding) {
  EXPECT_TRUE(VersionedLock::is_locked(0b1));
  EXPECT_FALSE(VersionedLock::is_locked(0b10));
  EXPECT_EQ(VersionedLock::version_of(0b10), 1u);
  EXPECT_EQ(VersionedLock::version_of(0b101), 0b10u);
}

TEST(VersionedLock, TryLockSucceedsWhenFresh) {
  VersionedLock lock;
  EXPECT_TRUE(lock.try_lock(0));
  EXPECT_TRUE(lock.locked());
}

TEST(VersionedLock, TryLockFailsWhenLocked) {
  VersionedLock lock;
  ASSERT_TRUE(lock.try_lock(0));
  EXPECT_FALSE(lock.try_lock(100));
}

TEST(VersionedLock, TryLockFailsWhenVersionAdvanced) {
  VersionedLock lock;
  ASSERT_TRUE(lock.try_lock(0));
  lock.unlock_to_version(5);
  // A transaction with read version 3 must not lock version-5 data.
  EXPECT_FALSE(lock.try_lock(3));
  // But read version 5 (or later) may.
  EXPECT_TRUE(lock.try_lock(5));
}

TEST(VersionedLock, UnlockToVersionPublishes) {
  VersionedLock lock;
  ASSERT_TRUE(lock.try_lock(0));
  lock.unlock_to_version(9);
  EXPECT_FALSE(lock.locked());
  EXPECT_EQ(lock.version(), 9u);
}

TEST(VersionedLock, UnlockRestoreKeepsVersion) {
  VersionedLock lock;
  ASSERT_TRUE(lock.try_lock(0));
  lock.unlock_to_version(4);
  ASSERT_TRUE(lock.try_lock(4));
  lock.unlock_restore();
  EXPECT_FALSE(lock.locked());
  EXPECT_EQ(lock.version(), 4u);
}

TEST(VersionedLock, ValidForRespectsVersionAndLockBit) {
  VersionedLock lock;
  ASSERT_TRUE(lock.try_lock(0));
  EXPECT_FALSE(lock.valid_for(10));  // locked
  lock.unlock_to_version(7);
  EXPECT_FALSE(lock.valid_for(6));  // too new
  EXPECT_TRUE(lock.valid_for(7));
  EXPECT_TRUE(lock.valid_for(8));
}

TEST(VersionedLock, ValidForCommitterToleratesOwnLock) {
  VersionedLock lock;
  ASSERT_TRUE(lock.try_lock(0));
  EXPECT_TRUE(lock.valid_for_committer(0, /*owned_by_me=*/true));
  EXPECT_FALSE(lock.valid_for_committer(0, /*owned_by_me=*/false));
}

}  // namespace
}  // namespace stamp::stm
