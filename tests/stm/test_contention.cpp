#include "stm/contention.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace stamp::stm {
namespace {

TEST(Contention, FactoryKnowsAllPolicies) {
  for (const char* name : {"passive", "polite", "backoff", "karma"}) {
    const auto manager = make_manager(name);
    ASSERT_NE(manager, nullptr);
    EXPECT_EQ(manager->name(), name);
  }
}

TEST(Contention, FactoryRejectsUnknown) {
  EXPECT_THROW(make_manager("aggressive"), std::invalid_argument);
  EXPECT_THROW(make_manager(""), std::invalid_argument);
}

TEST(Contention, PassiveReturnsImmediately) {
  PassiveManager m;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000; ++i) m.on_abort({i, 10, 10});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(100));
}

TEST(Contention, PoliteSpinsWithoutSleeping) {
  PoliteManager m(16);
  // Just exercise a range of attempts; the contract is "terminates".
  for (int attempt = 1; attempt <= 12; ++attempt) m.on_abort({attempt, 0, 0});
  SUCCEED();
}

TEST(Contention, BackoffBoundedByCap) {
  BackoffManager m(std::chrono::nanoseconds(100), std::chrono::microseconds(50));
  const auto start = std::chrono::steady_clock::now();
  for (int attempt = 1; attempt <= 30; ++attempt) m.on_abort({attempt, 0, 0});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // 30 aborts, each <= ~50us sleep (+ scheduling): far below a second.
  EXPECT_LT(elapsed, std::chrono::seconds(1));
}

TEST(Contention, KarmaTerminatesAcrossWorkloads) {
  KarmaManager m(std::chrono::microseconds(1));
  for (int attempt = 1; attempt <= 10; ++attempt) {
    m.on_abort({attempt, 0, 0});        // no karma
    m.on_abort({attempt, 1000, 1000});  // lots of karma
  }
  SUCCEED();
}

TEST(Contention, ZeroBaseBackoffIsNoop) {
  BackoffManager m(std::chrono::nanoseconds(0), std::chrono::nanoseconds(0));
  const auto start = std::chrono::steady_clock::now();
  for (int i = 1; i < 100; ++i) m.on_abort({i, 0, 0});
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(100));
}

}  // namespace
}  // namespace stamp::stm
