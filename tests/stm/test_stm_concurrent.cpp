#include "stm/stm.hpp"

#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include <numeric>

// run_distributed is deprecated in favor of Evaluator::run; this file drives
// the layer under test through the executor directly on purpose (it sits
// below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace stamp::stm {
namespace {

using runtime::Context;

const Topology kTopo{.chips = 1, .processors_per_chip = 4,
                     .threads_per_processor = 4};

TEST(StmRuntime, AtomicallyCommitsAndCounts) {
  StmRuntime rt;
  TVar<int> v(0);
  (void)runtime::run_distributed(kTopo, 1, Distribution::IntraProc,
                                 [&](Context& ctx) {
                                   rt.atomically(ctx, [&](Transaction& tx) {
                                     tx.write(v, tx.read(v) + 1);
                                     return true;
                                   });
                                 });
  EXPECT_EQ(v.peek(), 1);
  EXPECT_EQ(rt.stats().commits.load(), 1u);
  EXPECT_EQ(rt.stats().aborts.load(), 0u);
}

TEST(StmRuntime, VoidBodySupported) {
  StmRuntime rt;
  TVar<int> v(0);
  (void)runtime::run_distributed(kTopo, 1, Distribution::IntraProc,
                                 [&](Context& ctx) {
                                   rt.atomically(ctx, [&](Transaction& tx) {
                                     tx.write(v, 7);
                                   });
                                 });
  EXPECT_EQ(v.peek(), 7);
}

TEST(StmRuntime, ReadsAndWritesChargedToRecorder) {
  StmRuntime rt;
  TVar<int> v(0);
  const auto r = runtime::run_distributed(
      kTopo, 2, Distribution::IntraProc, [&](Context& ctx) {
        rt.atomically(ctx, [&](Transaction& tx) {
          tx.write(v, tx.read(v) + 1);
          return 0;
        });
      });
  for (const auto& rec : r.recorders) {
    // Conflict-free run: exactly 1 read, 1 write. Under a conflict, reads of
    // failed attempts add on, so >= is the invariant.
    EXPECT_GE(rec.totals().d_r_a + rec.totals().d_r_e, 1);
    EXPECT_DOUBLE_EQ(rec.totals().d_w_a + rec.totals().d_w_e, 1);
  }
}

TEST(StmRuntime, TryAtomicallyReturnsEmptyOnCancel) {
  StmRuntime rt;
  TVar<int> v(5);
  (void)runtime::run_distributed(
      kTopo, 1, Distribution::IntraProc, [&](Context& ctx) {
        const std::optional<int> result =
            rt.try_atomically(ctx, [&](Transaction& tx) -> int {
              tx.write(v, 99);
              tx.cancel();  // business-level abort: write must not land
            });
        EXPECT_FALSE(result.has_value());
      });
  EXPECT_EQ(v.peek(), 5);
  EXPECT_EQ(rt.stats().cancels.load(), 1u);
  EXPECT_EQ(rt.stats().commits.load(), 0u);
}

TEST(StmRuntime, CounterIncrementsLinearize) {
  constexpr int kN = 8;
  constexpr int kIncrements = 2000;
  StmRuntime rt(std::make_unique<BackoffManager>());
  TVar<long> counter(0);
  (void)runtime::run_distributed(
      kTopo, kN, Distribution::IntraProc, [&](Context& ctx) {
        for (int i = 0; i < kIncrements; ++i) {
          rt.atomically(ctx, [&](Transaction& tx) {
            tx.write(counter, tx.read(counter) + 1);
            return true;
          });
        }
      });
  EXPECT_EQ(counter.peek(), static_cast<long>(kN) * kIncrements);
  EXPECT_EQ(rt.stats().commits.load(),
            static_cast<std::uint64_t>(kN) * kIncrements);
}

TEST(StmRuntime, DisjointWritesDontConflictMuch) {
  constexpr int kN = 8;
  StmRuntime rt;
  std::vector<std::unique_ptr<TVar<long>>> vars;
  for (int i = 0; i < kN; ++i) vars.push_back(std::make_unique<TVar<long>>(0));
  (void)runtime::run_distributed(
      kTopo, kN, Distribution::IntraProc, [&](Context& ctx) {
        for (int i = 0; i < 1000; ++i) {
          rt.atomically(ctx, [&](Transaction& tx) {
            TVar<long>& own = *vars[static_cast<std::size_t>(ctx.id())];
            tx.write(own, tx.read(own) + 1);
            return true;
          });
        }
      });
  for (const auto& v : vars) EXPECT_EQ(v->peek(), 1000);
  // Disjoint write sets: aborts can only come from clock-shortcut validation
  // races on freshly read vars, which cannot happen here (each tx reads only
  // what it writes). Expect zero aborts.
  EXPECT_EQ(rt.stats().aborts.load(), 0u);
}

TEST(StmRuntime, MoneyConservedUnderCrossTransfers) {
  constexpr int kN = 8;
  constexpr int kAccounts = 4;
  constexpr long kInitial = 1000;
  StmRuntime rt(std::make_unique<BackoffManager>());
  std::vector<std::unique_ptr<TVar<long>>> accounts;
  for (int i = 0; i < kAccounts; ++i)
    accounts.push_back(std::make_unique<TVar<long>>(kInitial));

  (void)runtime::run_distributed(
      kTopo, kN, Distribution::IntraProc, [&](Context& ctx) {
        for (int i = 0; i < 1500; ++i) {
          const int from = (ctx.id() + i) % kAccounts;
          const int to = (from + 1 + i % (kAccounts - 1)) % kAccounts;
          if (from == to) continue;
          rt.atomically(ctx, [&](Transaction& tx) {
            const long a = tx.read(*accounts[static_cast<std::size_t>(from)]);
            const long b = tx.read(*accounts[static_cast<std::size_t>(to)]);
            tx.write(*accounts[static_cast<std::size_t>(from)], a - 1);
            tx.write(*accounts[static_cast<std::size_t>(to)], b + 1);
            return true;
          });
        }
      });
  long total = 0;
  for (const auto& a : accounts) total += a->peek();
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST(StmRuntime, SnapshotsAreConsistentUnderConcurrentUpdates) {
  // Invariant: x + y == 0 at every commit. Readers must never observe a
  // violated invariant (the torn-snapshot test).
  StmRuntime rt(std::make_unique<BackoffManager>());
  TVar<long> x(0);
  TVar<long> y(0);
  std::atomic<bool> violation{false};
  (void)runtime::run_distributed(
      kTopo, 8, Distribution::IntraProc, [&](Context& ctx) {
        if (ctx.id() < 4) {
          for (int i = 0; i < 2000; ++i) {
            rt.atomically(ctx, [&](Transaction& tx) {
              const long v = tx.read(x);
              tx.write(x, v + 1);
              tx.write(y, tx.read(y) - 1);
              return true;
            });
          }
        } else {
          for (int i = 0; i < 2000; ++i) {
            const long sum = rt.atomically(ctx, [&](Transaction& tx) {
              return tx.read(x) + tx.read(y);
            });
            if (sum != 0) violation.store(true);
          }
        }
      });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(x.peek(), 4 * 2000);
  EXPECT_EQ(y.peek(), -4 * 2000);
}

TEST(StmRuntime, KappaRecordsRetries) {
  // Force conflicts: every process hammers one variable. max_retries and the
  // recorders' kappa must be consistent (kappa <= max_retries).
  StmRuntime rt;  // passive manager maximizes conflicts
  TVar<long> hot(0);
  const auto r = runtime::run_distributed(
      kTopo, 8, Distribution::IntraProc, [&](Context& ctx) {
        for (int i = 0; i < 500; ++i) {
          rt.atomically(ctx, [&](Transaction& tx) {
            tx.write(hot, tx.read(hot) + 1);
            return true;
          });
        }
      });
  EXPECT_EQ(hot.peek(), 8 * 500);
  for (const auto& rec : r.recorders)
    EXPECT_LE(rec.totals().kappa,
              static_cast<double>(rt.stats().max_retries.load()));
}

TEST(StmRuntime, WideValuesNeverTear) {
  // 16-byte TVar values under concurrent read/write transactions: every
  // snapshot must satisfy the pair invariant b == -a (no torn halves).
  struct Pair {
    double a;
    double b;
  };
  StmRuntime rt(std::make_unique<BackoffManager>());
  TVar<Pair> v(Pair{0, 0});
  std::atomic<bool> torn{false};
  (void)runtime::run_distributed(
      kTopo, 6, Distribution::IntraProc, [&](Context& ctx) {
        if (ctx.id() < 3) {
          for (int i = 1; i <= 1500; ++i) {
            const double x = ctx.id() * 10'000 + i;
            rt.atomically(ctx, [&](Transaction& tx) {
              tx.write(v, Pair{x, -x});
              return true;
            });
          }
        } else {
          for (int i = 0; i < 1500; ++i) {
            const Pair p = rt.atomically(
                ctx, [&](Transaction& tx) { return tx.read(v); });
            if (p.b != -p.a) torn.store(true);
          }
        }
      });
  EXPECT_FALSE(torn.load());
}

// Contention-manager sweep: all policies must preserve correctness.
class ManagerSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ManagerSweepTest, CounterCorrectUnderEveryManager) {
  StmRuntime rt(make_manager(GetParam()));
  TVar<long> counter(0);
  (void)runtime::run_distributed(
      kTopo, 6, Distribution::IntraProc, [&](Context& ctx) {
        for (int i = 0; i < 800; ++i) {
          rt.atomically(ctx, [&](Transaction& tx) {
            tx.write(counter, tx.read(counter) + 1);
            return true;
          });
        }
      });
  EXPECT_EQ(counter.peek(), 6 * 800);
}

INSTANTIATE_TEST_SUITE_P(AllManagers, ManagerSweepTest,
                         ::testing::Values("passive", "polite", "backoff",
                                           "karma"));

}  // namespace
}  // namespace stamp::stm
