#include "stm/tarray.hpp"

#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include <numeric>

// run_distributed is deprecated in favor of Evaluator::run; this file drives
// the layer under test through the executor directly on purpose (it sits
// below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace stamp::stm {
namespace {

using runtime::Context;

const Topology kTopo{.chips = 1, .processors_per_chip = 4,
                     .threads_per_processor = 4};

TEST(TArray, ConstructionValidated) {
  EXPECT_THROW(TArray<long>(0), std::invalid_argument);
  const TArray<long> a(4, 7);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a.peek(2), 7);
}

TEST(TArray, OutOfRangeThrows) {
  TArray<long> a(2);
  EXPECT_THROW((void)a.var(2), std::out_of_range);
  EXPECT_THROW((void)a.peek(5), std::out_of_range);
}

TEST(TArray, UpdateAndSnapshot) {
  TArray<long> a(4, 10);
  StmRuntime rt;
  (void)runtime::run_distributed(
      kTopo, 1, Distribution::IntraProc, [&](Context& ctx) {
        a.update(ctx, rt, 1, [](long& v) { v += 5; });
        const std::vector<long> snap = a.snapshot(ctx, rt);
        EXPECT_EQ(snap, (std::vector<long>{10, 15, 10, 10}));
      });
}

TEST(TArray, TransferPreservesSum) {
  TArray<long> a(4, 100);
  StmRuntime rt;
  (void)runtime::run_distributed(
      kTopo, 1, Distribution::IntraProc, [&](Context& ctx) {
        a.transfer(ctx, rt, 0, 3, 25);
        a.transfer(ctx, rt, 1, 1, 99);  // self-transfer is a no-op
      });
  EXPECT_EQ(a.peek(0), 75);
  EXPECT_EQ(a.peek(3), 125);
  EXPECT_EQ(a.peek(1), 100);
}

TEST(TArray, FoldIsAtomic) {
  TArray<long> a(8, 1);
  StmRuntime rt;
  (void)runtime::run_distributed(
      kTopo, 1, Distribution::IntraProc, [&](Context& ctx) {
        const long sum = a.fold(ctx, rt, 0L,
                                [](long acc, long v) { return acc + v; });
        EXPECT_EQ(sum, 8);
      });
}

TEST(TArray, ConcurrentTransfersConserveTotal) {
  constexpr int kN = 8;
  constexpr long kInitial = 1000;
  TArray<long> accounts(16, kInitial);
  StmRuntime rt(std::make_unique<BackoffManager>());
  (void)runtime::run_distributed(
      kTopo, kN, Distribution::IntraProc, [&](Context& ctx) {
        for (int i = 0; i < 800; ++i) {
          const std::size_t from = (ctx.id() * 3 + i) % 16;
          const std::size_t to = (from + 1 + i % 15) % 16;
          accounts.transfer(ctx, rt, from, to, 1);
        }
      });
  long total = 0;
  for (std::size_t i = 0; i < accounts.size(); ++i) total += accounts.peek(i);
  EXPECT_EQ(total, 16 * kInitial);
}

TEST(TArray, SnapshotsNeverTearUnderConcurrentTransfers) {
  TArray<long> a(4, 250);
  StmRuntime rt(std::make_unique<BackoffManager>());
  std::atomic<bool> torn{false};
  (void)runtime::run_distributed(
      kTopo, 8, Distribution::IntraProc, [&](Context& ctx) {
        if (ctx.id() < 4) {
          for (int i = 0; i < 1000; ++i)
            a.transfer(ctx, rt, ctx.id() % 4, (ctx.id() + 1) % 4, 1);
        } else {
          for (int i = 0; i < 1000; ++i) {
            const std::vector<long> snap = a.snapshot(ctx, rt);
            if (std::accumulate(snap.begin(), snap.end(), 0L) != 1000)
              torn.store(true);
          }
        }
      });
  EXPECT_FALSE(torn.load());
}

TEST(TArray, ComposesIntoLargerTransactions) {
  // Move from a[0] to a[1] and bump a counter var in ONE transaction.
  TArray<long> a(2, 50);
  TVar<long> ops(0);
  StmRuntime rt;
  (void)runtime::run_distributed(
      kTopo, 1, Distribution::IntraProc, [&](Context& ctx) {
        rt.atomically(ctx, [&](Transaction& tx) {
          a.set(tx, 0, a.get(tx, 0) - 10);
          a.set(tx, 1, a.get(tx, 1) + 10);
          tx.write(ops, tx.read(ops) + 1);
          return true;
        });
      });
  EXPECT_EQ(a.peek(0), 40);
  EXPECT_EQ(a.peek(1), 60);
  EXPECT_EQ(ops.peek(), 1);
}

}  // namespace
}  // namespace stamp::stm
