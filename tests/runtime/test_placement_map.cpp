#include "runtime/placement_map.hpp"

#include <gtest/gtest.h>

namespace stamp::runtime {
namespace {

const Topology kNiagara{.chips = 1, .processors_per_chip = 8,
                        .threads_per_processor = 4};
const Topology kServer{.chips = 2, .processors_per_chip = 4,
                       .threads_per_processor = 2};

TEST(PlacementMap, FillFirstCoLocates) {
  const PlacementMap pm = PlacementMap::fill_first(kNiagara, 6);
  // First four on processor 0, next two on processor 1.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(pm.processor_of(i), 0);
  EXPECT_EQ(pm.processor_of(4), 1);
  EXPECT_EQ(pm.processor_of(5), 1);
  EXPECT_TRUE(pm.same_processor(0, 3));
  EXPECT_FALSE(pm.same_processor(3, 4));
}

TEST(PlacementMap, FillFirstWithThreadLimit) {
  const PlacementMap pm = PlacementMap::fill_first(kNiagara, 6, 3);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(pm.processor_of(i), 0);
  for (int i = 3; i < 6; ++i) EXPECT_EQ(pm.processor_of(i), 1);
}

TEST(PlacementMap, OnePerProcessorSpreads) {
  const PlacementMap pm = PlacementMap::one_per_processor(kNiagara, 8);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(pm.processor_of(i), i);
  EXPECT_FALSE(pm.same_processor(0, 1));
}

TEST(PlacementMap, OnePerProcessorWrapsOntoSecondThread) {
  const PlacementMap pm = PlacementMap::one_per_processor(kNiagara, 10);
  EXPECT_EQ(pm.processor_of(8), 0);
  EXPECT_EQ(pm.slot_of(8).thread, 1);
  EXPECT_TRUE(pm.same_processor(0, 8));
}

TEST(PlacementMap, SpansChips) {
  const PlacementMap pm = PlacementMap::one_per_processor(kServer, 8);
  EXPECT_EQ(pm.slot_of(0).chip, 0);
  EXPECT_EQ(pm.slot_of(4).chip, 1);
  EXPECT_EQ(pm.processor_of(4), 4);
}

TEST(PlacementMap, CapacityEnforced) {
  EXPECT_THROW(PlacementMap::fill_first(kNiagara, 33), std::invalid_argument);
  EXPECT_THROW(PlacementMap::one_per_processor(kNiagara, 33),
               std::invalid_argument);
  EXPECT_NO_THROW(PlacementMap::fill_first(kNiagara, 32));
}

TEST(PlacementMap, SlotValidation) {
  std::vector<Slot> bad{{.chip = 0, .processor = 99, .thread = 0}};
  EXPECT_THROW(PlacementMap(kNiagara, bad), std::invalid_argument);
}

TEST(PlacementMap, DuplicateSlotRejected) {
  std::vector<Slot> dup{{.chip = 0, .processor = 0, .thread = 0},
                        {.chip = 0, .processor = 0, .thread = 0}};
  EXPECT_THROW(PlacementMap(kNiagara, dup), std::invalid_argument);
}

TEST(PlacementMap, ProcessCountsForDistribution) {
  const PlacementMap intra = PlacementMap::fill_first(kNiagara, 4);
  const ProcessCounts pc_intra = intra.process_counts_for(0);
  EXPECT_EQ(pc_intra.intra, 3);
  EXPECT_EQ(pc_intra.inter, 0);

  const PlacementMap inter = PlacementMap::one_per_processor(kNiagara, 4);
  const ProcessCounts pc_inter = inter.process_counts_for(0);
  EXPECT_EQ(pc_inter.intra, 0);
  EXPECT_EQ(pc_inter.inter, 3);
}

TEST(PlacementMap, Occupancy) {
  const PlacementMap pm = PlacementMap::fill_first(kNiagara, 6);
  const std::vector<int> occ = pm.occupancy();
  EXPECT_EQ(occ[0], 4);
  EXPECT_EQ(occ[1], 2);
  EXPECT_EQ(occ[2], 0);
}

TEST(PlacementMap, ForDistributionDispatch) {
  const PlacementMap a =
      PlacementMap::for_distribution(kNiagara, 4, Distribution::IntraProc);
  EXPECT_EQ(a.occupancy()[0], 4);
  const PlacementMap b =
      PlacementMap::for_distribution(kNiagara, 4, Distribution::InterProc);
  EXPECT_EQ(b.occupancy()[0], 1);
}

TEST(PlacementMap, OutOfRangeAccess) {
  const PlacementMap pm = PlacementMap::fill_first(kNiagara, 2);
  EXPECT_THROW((void)pm.slot_of(2), std::out_of_range);
  EXPECT_THROW((void)pm.slot_of(-1), std::out_of_range);
}

// Property: for any process count, intra+inter peers == n-1 for each process,
// and same_processor is symmetric.
class PlacementPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PlacementPropertyTest, PeerAccounting) {
  const int n = GetParam();
  for (const Distribution d : {Distribution::IntraProc, Distribution::InterProc}) {
    const PlacementMap pm = PlacementMap::for_distribution(kNiagara, n, d);
    for (int i = 0; i < n; ++i) {
      const ProcessCounts pc = pm.process_counts_for(i);
      EXPECT_EQ(pc.intra + pc.inter, n - 1);
      for (int j = 0; j < n; ++j)
        EXPECT_EQ(pm.same_processor(i, j), pm.same_processor(j, i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlacementPropertyTest,
                         ::testing::Values(1, 2, 3, 8, 17, 32));

}  // namespace
}  // namespace stamp::runtime
