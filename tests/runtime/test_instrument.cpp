#include "runtime/instrument.hpp"

#include <gtest/gtest.h>

namespace stamp::runtime {
namespace {

TEST(Recorder, EmptyTotalsAreZero) {
  const Recorder r;
  EXPECT_EQ(r.totals(), CostCounters{});
  EXPECT_EQ(r.unit_count(), 0u);
  EXPECT_FALSE(r.in_round());
}

TEST(Recorder, CountsOutsideAnyUnitGoToStray) {
  Recorder r;
  r.count_fp(3);
  r.msg_send(true, 2);
  EXPECT_EQ(r.unit_count(), 0u);
  EXPECT_DOUBLE_EQ(r.totals().c_fp, 3);
  EXPECT_DOUBLE_EQ(r.totals().m_s_a, 2);
  EXPECT_DOUBLE_EQ(r.stray().c_fp, 3);
}

TEST(Recorder, RoundAndOutsideSeparated) {
  Recorder r;
  r.begin_unit();
  r.count_int(1);  // outside round
  r.begin_round();
  r.count_fp(10);
  r.shm_read(false, 4);
  r.end_round();
  r.count_int(2);  // outside again
  r.end_unit();

  ASSERT_EQ(r.units().size(), 1u);
  const Recorder::UnitRecord& u = r.units().front();
  ASSERT_EQ(u.rounds.size(), 1u);
  EXPECT_DOUBLE_EQ(u.rounds[0].c_fp, 10);
  EXPECT_DOUBLE_EQ(u.rounds[0].d_r_e, 4);
  EXPECT_DOUBLE_EQ(u.outside.c_int, 3);
}

TEST(Recorder, BeginRoundOpensUnitImplicitly) {
  Recorder r;
  r.begin_round();
  r.count_fp(1);
  r.end_round();
  r.end_unit();
  EXPECT_EQ(r.unit_count(), 1u);
}

TEST(Recorder, BeginRoundClosesPreviousRound) {
  Recorder r;
  r.begin_unit();
  r.begin_round();
  r.count_fp(1);
  r.begin_round();  // implicit end of round 1
  r.count_fp(2);
  r.end_round();
  r.end_unit();
  ASSERT_EQ(r.units().front().rounds.size(), 2u);
  EXPECT_DOUBLE_EQ(r.units().front().rounds[0].c_fp, 1);
  EXPECT_DOUBLE_EQ(r.units().front().rounds[1].c_fp, 2);
}

TEST(Recorder, IntraInterClassification) {
  Recorder r;
  r.begin_round();
  r.shm_read(true, 3);
  r.shm_read(false, 5);
  r.shm_write(true, 1);
  r.shm_write(false, 2);
  r.msg_send(true, 7);
  r.msg_send(false, 8);
  r.msg_recv(true, 9);
  r.msg_recv(false, 10);
  r.end_round();
  const CostCounters t = r.totals();
  EXPECT_DOUBLE_EQ(t.d_r_a, 3);
  EXPECT_DOUBLE_EQ(t.d_r_e, 5);
  EXPECT_DOUBLE_EQ(t.d_w_a, 1);
  EXPECT_DOUBLE_EQ(t.d_w_e, 2);
  EXPECT_DOUBLE_EQ(t.m_s_a, 7);
  EXPECT_DOUBLE_EQ(t.m_s_e, 8);
  EXPECT_DOUBLE_EQ(t.m_r_a, 9);
  EXPECT_DOUBLE_EQ(t.m_r_e, 10);
}

TEST(Recorder, KappaKeepsMaximum) {
  Recorder r;
  r.begin_round();
  r.observe_kappa(3);
  r.observe_kappa(1);
  r.observe_kappa(7);
  r.end_round();
  EXPECT_DOUBLE_EQ(r.totals().kappa, 7);
}

TEST(Recorder, ToProcessPreservesCost) {
  Recorder r;
  for (int unit = 0; unit < 3; ++unit) {
    r.begin_unit();
    r.count_int(1);
    r.begin_round();
    r.count_fp(10);
    r.msg_send(false, 2);
    r.msg_recv(false, 2);
    r.end_round();
    r.count_int(2);
    r.end_unit();
  }
  const StampProcess proc = r.to_process(Attributes{});
  EXPECT_EQ(proc.unit_count(), 3u);

  const MachineParams mp;
  const EnergyParams ep;
  const ProcessCounts pc{.intra = 0, .inter = 1};
  // 3 units, each: 3 int outside + round(10 fp + L_e + g*(4)).
  const double per_unit = 3 + 10 + mp.L_e + mp.g_mp_e * 4;
  EXPECT_DOUBLE_EQ(proc.cost(mp, ep, pc).time, 3 * per_unit);
}

TEST(Recorder, ToProcessFoldsStrayIntoTrailingUnit) {
  Recorder r;
  r.begin_unit();
  r.count_fp(1);
  r.end_unit();
  r.count_int(5);  // stray local
  const StampProcess proc = r.to_process(Attributes{});
  EXPECT_EQ(proc.unit_count(), 2u);
  EXPECT_DOUBLE_EQ(proc.total_counters().c_int, 5);
}

TEST(Recorder, ClearResets) {
  Recorder r;
  r.begin_round();
  r.count_fp(10);
  r.end_round();
  r.clear();
  EXPECT_EQ(r.totals(), CostCounters{});
  EXPECT_EQ(r.unit_count(), 0u);
}

TEST(RecorderScopes, RaiiMatchesManualCalls) {
  Recorder manual;
  manual.begin_unit();
  manual.begin_round();
  manual.count_fp(4);
  manual.end_round();
  manual.end_unit();

  Recorder raii;
  {
    UnitScope u(raii);
    {
      RoundScope s(raii);
      raii.count_fp(4);
    }
  }
  EXPECT_EQ(raii.totals(), manual.totals());
  EXPECT_EQ(raii.unit_count(), manual.unit_count());
}

// Property: totals equal the sum over the structured view.
class RecorderTotalsTest : public ::testing::TestWithParam<int> {};

TEST_P(RecorderTotalsTest, TotalsMatchStructure) {
  const int units = GetParam();
  Recorder r;
  for (int u = 0; u < units; ++u) {
    UnitScope scope(r);
    r.count_int(u + 1);
    for (int round = 0; round <= u % 3; ++round) {
      RoundScope rs(r);
      r.count_fp(round + 1);
      r.shm_write(u % 2 == 0, 2);
    }
  }
  CostCounters manual;
  for (const Recorder::UnitRecord& u : r.units()) {
    manual += u.outside;
    for (const CostCounters& round : u.rounds) manual += round;
  }
  EXPECT_EQ(r.totals(), manual);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RecorderTotalsTest,
                         ::testing::Values(0, 1, 2, 5, 20));

}  // namespace
}  // namespace stamp::runtime
