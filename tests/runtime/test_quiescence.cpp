#include "runtime/quiescence.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace stamp::runtime {
namespace {

TEST(Quiescence, RejectsNonPositiveParties) {
  EXPECT_THROW(QuiescenceDetector(0), std::invalid_argument);
}

TEST(Quiescence, SinglePartyQuiescesImmediately) {
  QuiescenceDetector qd(1);
  const long c0 = qd.sweep_begin();
  EXPECT_TRUE(qd.try_quiesce(0, c0));
  EXPECT_TRUE(qd.done());
}

TEST(Quiescence, PublicationInvalidatesOldSample) {
  QuiescenceDetector qd(1);
  const long c0 = qd.sweep_begin();
  qd.published();
  EXPECT_FALSE(qd.try_quiesce(0, c0));  // counter moved past c0
  const long c1 = qd.sweep_begin();
  EXPECT_TRUE(qd.try_quiesce(0, c1));
}

TEST(Quiescence, NeedsEveryParty) {
  QuiescenceDetector qd(3);
  const long c0 = qd.sweep_begin();
  EXPECT_FALSE(qd.try_quiesce(0, c0));
  EXPECT_FALSE(qd.try_quiesce(1, c0));
  EXPECT_FALSE(qd.done());
  EXPECT_TRUE(qd.try_quiesce(2, c0));
  EXPECT_TRUE(qd.done());
}

TEST(Quiescence, StaleQuietMarksDoNotCount) {
  QuiescenceDetector qd(2);
  const long c0 = qd.sweep_begin();
  EXPECT_FALSE(qd.try_quiesce(0, c0));  // 0 quiet at epoch c0
  qd.published();                       // epoch advances
  const long c1 = qd.sweep_begin();
  // 1 is quiet at the new epoch, but 0's mark is stale: not done.
  EXPECT_FALSE(qd.try_quiesce(1, c1));
  EXPECT_FALSE(qd.done());
  // 0 re-quiesces at the current epoch: done.
  EXPECT_TRUE(qd.try_quiesce(0, c1));
}

TEST(Quiescence, RunToQuiescenceCountsSweeps) {
  QuiescenceDetector qd(1);
  int work_left = 5;
  const int sweeps = run_to_quiescence(
      qd, 0,
      [&] {
        if (work_left > 0) {
          --work_left;
          return true;
        }
        return false;
      },
      100);
  EXPECT_EQ(sweeps, 6);  // 5 publishing + 1 quiet
  EXPECT_TRUE(qd.done());
}

TEST(Quiescence, ActiveLimitBoundsPublishingSweeps) {
  QuiescenceDetector qd(1);
  const int sweeps = run_to_quiescence(qd, 0, [] { return true; }, 10);
  EXPECT_EQ(sweeps, 10);
  // Exhausting the budget aborts globally so peers do not hang.
  EXPECT_TRUE(qd.done());
  EXPECT_TRUE(qd.aborted());
}

TEST(Quiescence, BudgetExhaustionReleasesPeers) {
  // One party burns its budget without ever quiescing; the other must still
  // return promptly instead of spinning to the idle limit.
  QuiescenceDetector qd(2);
  std::jthread runaway([&] {
    (void)run_to_quiescence(qd, 0, [] { return true; }, 50);
  });
  const int peer_sweeps =
      run_to_quiescence(qd, 1, [] { return false; }, 50);
  runaway.join();
  EXPECT_TRUE(qd.done());
  EXPECT_TRUE(qd.aborted());
  EXPECT_LT(peer_sweeps, 1'000'000);
}

TEST(Quiescence, CleanQuiescenceIsNotAborted) {
  QuiescenceDetector qd(1);
  (void)run_to_quiescence(qd, 0, [] { return false; }, 10);
  EXPECT_TRUE(qd.done());
  EXPECT_FALSE(qd.aborted());
}

TEST(Quiescence, ConcurrentDiffusionTerminatesExactly) {
  // A token-diffusion system: each thread owns a counter; a thread "works"
  // while its value is below a target that depends on its neighbour, so work
  // cascades. All threads must stop, and only after all work is done.
  constexpr int kThreads = 8;
  constexpr int kTarget = 200;
  QuiescenceDetector qd(kThreads);
  std::vector<std::atomic<int>> values(kThreads);
  for (auto& v : values) v.store(0);

  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        (void)run_to_quiescence(
            qd, t,
            [&] {
              // Work while behind the left neighbour (or the target for 0).
              const int left =
                  t == 0 ? kTarget
                         : values[static_cast<std::size_t>(t - 1)].load();
              const int mine = values[static_cast<std::size_t>(t)].load();
              if (mine < left) {
                values[static_cast<std::size_t>(t)].fetch_add(1);
                return true;
              }
              return false;
            },
            /*active_limit=*/kTarget * kThreads + 10);
      });
    }
  }
  EXPECT_TRUE(qd.done());
  for (const auto& v : values) EXPECT_EQ(v.load(), kTarget);
}

TEST(Quiescence, PublicationsCounted) {
  QuiescenceDetector qd(2);
  EXPECT_EQ(qd.publications(), 0);
  qd.published();
  qd.published();
  EXPECT_EQ(qd.publications(), 2);
}

}  // namespace
}  // namespace stamp::runtime
