#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

// run_distributed is deprecated in favor of Evaluator::run; this file tests
// the executor layer directly (including the shim) on purpose.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace stamp::runtime {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 4,
                     .threads_per_processor = 4};

TEST(Executor, RunsOneBodyPerProcess) {
  std::atomic<int> calls{0};
  const RunResult r = run_distributed(kTopo, 8, Distribution::IntraProc,
                                      [&](Context&) { ++calls; });
  EXPECT_EQ(calls.load(), 8);
  EXPECT_EQ(r.recorders.size(), 8u);
  EXPECT_GT(r.wall_time.count(), 0);
}

TEST(Executor, ContextIdsAreDistinctAndComplete) {
  std::vector<std::atomic<int>> seen(8);
  (void)run_distributed(kTopo, 8, Distribution::InterProc, [&](Context& ctx) {
    seen[static_cast<std::size_t>(ctx.id())].fetch_add(1);
    EXPECT_EQ(ctx.process_count(), 8);
  });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(Executor, RecordersCollectPerProcessCounts) {
  const RunResult r =
      run_distributed(kTopo, 4, Distribution::IntraProc, [](Context& ctx) {
        ctx.fp_ops(ctx.id() + 1);
        ctx.int_ops(10);
      });
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(r.recorders[static_cast<std::size_t>(i)].totals().c_fp,
                     i + 1);
    EXPECT_DOUBLE_EQ(r.recorders[static_cast<std::size_t>(i)].totals().c_int, 10);
  }
  EXPECT_DOUBLE_EQ(r.total_counters().c_fp, 1 + 2 + 3 + 4);
}

TEST(Executor, IntraWithFollowsPlacement) {
  // 8 processes fill-first on 4-thread processors: 0-3 together, 4-7 together.
  (void)run_distributed(kTopo, 8, Distribution::IntraProc, [](Context& ctx) {
    const bool first_group = ctx.id() < 4;
    const int same = first_group ? (ctx.id() + 1) % 4 : 4 + (ctx.id() + 1) % 4;
    if (same != ctx.id()) {
      EXPECT_TRUE(ctx.intra_with(same));
    }
    const int other = first_group ? 4 : 0;
    EXPECT_FALSE(ctx.intra_with(other));
  });
}

TEST(Executor, ExceptionPropagates) {
  EXPECT_THROW((void)run_distributed(kTopo, 4, Distribution::IntraProc,
                                     [](Context& ctx) {
                                       if (ctx.id() == 2)
                                         throw std::runtime_error("boom");
                                     }),
               std::runtime_error);
}

TEST(Executor, CostsUsePlacementContext) {
  // The same recorded operations cost more when peers are inter-processor
  // (inter latency applies, plus inter bandwidth if charged that way).
  const auto body = [](Context& ctx) {
    RoundScope round(ctx.recorder());
    ctx.recorder().msg_send(false, 3);
    ctx.recorder().msg_recv(false, 3);
    ctx.fp_ops(5);
  };
  const RunResult intra = run_distributed(kTopo, 4, Distribution::IntraProc, body);
  const RunResult inter = run_distributed(kTopo, 4, Distribution::InterProc, body);

  const MachineParams mp;
  const EnergyParams ep;
  const PlacementMap pm_intra =
      PlacementMap::for_distribution(kTopo, 4, Distribution::IntraProc);
  const PlacementMap pm_inter =
      PlacementMap::for_distribution(kTopo, 4, Distribution::InterProc);
  const Cost c_intra = intra.total_cost(pm_intra, mp, ep);
  const Cost c_inter = inter.total_cost(pm_inter, mp, ep);
  // Same ops; the inter placement adds ell_e/L_e through the brackets.
  EXPECT_GT(c_inter.time, c_intra.time);
  EXPECT_DOUBLE_EQ(c_inter.energy, c_intra.energy);
}

TEST(Executor, SingleProcessRun) {
  const RunResult r = run_distributed(kTopo, 1, Distribution::IntraProc,
                                      [](Context& ctx) { ctx.fp_ops(42); });
  EXPECT_EQ(r.recorders.size(), 1u);
  EXPECT_DOUBLE_EQ(r.total_counters().c_fp, 42);
}

// Property: process_costs has one entry per process and parallel total is
// max/sum.
class ExecutorCostTest : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorCostTest, TotalCostIsParallelComposition) {
  const int n = GetParam();
  const PlacementMap pm =
      PlacementMap::for_distribution(kTopo, n, Distribution::IntraProc);
  const RunResult r = run_processes(pm, [](Context& ctx) {
    UnitScope unit(ctx.recorder());
    ctx.fp_ops(10 * (ctx.id() + 1));
  });
  const MachineParams mp;
  const EnergyParams ep;
  const std::vector<Cost> costs = r.process_costs(pm, mp, ep);
  ASSERT_EQ(costs.size(), static_cast<std::size_t>(n));
  const Cost total = r.total_cost(pm, mp, ep);
  double max_t = 0, sum_e = 0;
  for (const Cost& c : costs) {
    max_t = std::max(max_t, c.time);
    sum_e += c.energy;
  }
  EXPECT_DOUBLE_EQ(total.time, max_t);
  EXPECT_DOUBLE_EQ(total.energy, sum_e);
  EXPECT_DOUBLE_EQ(total.time, 10.0 * n);  // slowest process
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExecutorCostTest, ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace stamp::runtime
