#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace stamp::runtime {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 4,
                     .threads_per_processor = 4};

class ArmedPlan {
 public:
  explicit ArmedPlan(const fault::FaultPlan& plan) {
    fault::Injector::global().arm(plan);
  }
  ~ArmedPlan() { fault::Injector::global().disarm(); }
};

fault::FaultPlan fail_stop_process(int process) {
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::ProcFailStop, 1.0, 0, /*max_per_key=*/1,
            /*only_key=*/process);
  return plan;
}

TEST(FillFirstExcluding, SkipsRetiredProcessors) {
  // Exclude processor 0: four processes land on processor 1's four threads.
  const PlacementMap pm = PlacementMap::fill_first_excluding(kTopo, 4, {0});
  for (int p = 0; p < 4; ++p) EXPECT_EQ(pm.processor_of(p), 1);
  EXPECT_EQ(pm.process_count(), 4);
}

TEST(FillFirstExcluding, SpillsAcrossSurvivors) {
  const PlacementMap pm = PlacementMap::fill_first_excluding(kTopo, 6, {1, 2});
  for (int p = 0; p < 4; ++p) EXPECT_EQ(pm.processor_of(p), 0);
  for (int p = 4; p < 6; ++p) EXPECT_EQ(pm.processor_of(p), 3);
}

TEST(FillFirstExcluding, EmptyExclusionMatchesFillFirst) {
  const PlacementMap a = PlacementMap::fill_first(kTopo, 8);
  const PlacementMap b = PlacementMap::fill_first_excluding(kTopo, 8, {});
  for (int p = 0; p < 8; ++p) EXPECT_EQ(a.slot_of(p), b.slot_of(p));
}

TEST(FillFirstExcluding, ThrowsWhenSurvivorsCannotHostAll) {
  // 3 surviving processors x 4 threads = 12 slots < 13 processes.
  EXPECT_THROW(
      (void)PlacementMap::fill_first_excluding(kTopo, 13, {2}),
      std::invalid_argument);
}

TEST(FillFirstExcluding, RejectsBadProcessorIds) {
  EXPECT_THROW((void)PlacementMap::fill_first_excluding(kTopo, 1, {4}),
               std::invalid_argument);
  EXPECT_THROW((void)PlacementMap::fill_first_excluding(kTopo, 1, {-1}),
               std::invalid_argument);
}

TEST(Supervisor, NoFaultsBehavesLikeRunProcesses) {
  fault::Injector::global().disarm();
  const PlacementMap pm = PlacementMap::fill_first(kTopo, 4);
  const SupervisedResult sr = run_supervised(pm, [](Context& ctx) {
    ctx.int_ops(100 * (ctx.id() + 1));
  });
  EXPECT_FALSE(sr.failed_over());
  EXPECT_TRUE(sr.failed_processes.empty());
  EXPECT_TRUE(sr.excluded_processors.empty());
  EXPECT_DOUBLE_EQ(sr.result.total_counters().c_int, 100 + 200 + 300 + 400);
  EXPECT_EQ(sr.placement.processor_of(0), pm.processor_of(0));
}

TEST(Supervisor, FailoverRetiresProcessorAndCompletes) {
  const ArmedPlan armed(fail_stop_process(2));
  const PlacementMap pm = PlacementMap::fill_first(kTopo, 4);
  const SupervisedResult sr = run_supervised(pm, [](Context& ctx) {
    ctx.int_ops(100 * (ctx.id() + 1));
  });
  ASSERT_TRUE(sr.failed_over());
  ASSERT_EQ(sr.failed_processes.size(), 1u);
  EXPECT_EQ(sr.failed_processes[0], 2);
  // Process 2 lived on processor 0 (fill-first, 4 threads per processor).
  ASSERT_EQ(sr.excluded_processors.size(), 1u);
  EXPECT_EQ(sr.excluded_processors[0], 0);
  // The surviving placement hosts all four processes off processor 0...
  for (int p = 0; p < 4; ++p) EXPECT_NE(sr.placement.processor_of(p), 0);
  // ...and the completed run recorded every process's work exactly once.
  EXPECT_DOUBLE_EQ(sr.result.total_counters().c_int, 100 + 200 + 300 + 400);
}

TEST(Supervisor, ResultMatchesFaultFreeRunOnSurvivingPlacement) {
  const auto body = [](Context& ctx) {
    ctx.int_ops(10 * (ctx.id() + 1));
    ctx.fp_ops(3);
  };
  SupervisedResult sr = [&] {
    const ArmedPlan armed(fail_stop_process(1));
    return run_supervised(PlacementMap::fill_first(kTopo, 4), body);
  }();
  ASSERT_TRUE(sr.failed_over());
  const RunResult reference = run_processes(sr.placement, body);
  EXPECT_DOUBLE_EQ(sr.result.total_counters().c_int,
                   reference.total_counters().c_int);
  EXPECT_DOUBLE_EQ(sr.result.total_counters().c_fp,
                   reference.total_counters().c_fp);
}

TEST(Supervisor, GivesUpWhenFailoversExhausted) {
  // Every process fail-stops on every attempt: no budget survives that.
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::ProcFailStop, 1.0);
  const ArmedPlan armed(plan);
  EXPECT_THROW((void)run_supervised(PlacementMap::fill_first(kTopo, 4),
                                    [](Context&) {}, /*max_failovers=*/2),
               fault::ProcessFailure);
}

TEST(Supervisor, OtherExceptionsPropagateUnchanged) {
  fault::Injector::global().disarm();
  EXPECT_THROW((void)run_supervised(PlacementMap::fill_first(kTopo, 2),
                                    [](Context& ctx) {
                                      if (ctx.id() == 1)
                                        throw std::logic_error("not a fault");
                                    }),
               std::logic_error);
}

TEST(Supervisor, ProcStallDelaysButCompletes) {
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::ProcStall, 1.0, /*magnitude=*/1000.0);  // 1 us
  const ArmedPlan armed(plan);
  const SupervisedResult sr = run_supervised(
      PlacementMap::fill_first(kTopo, 4),
      [](Context& ctx) { ctx.int_ops(1); });
  EXPECT_FALSE(sr.failed_over());
  EXPECT_DOUBLE_EQ(sr.result.total_counters().c_int, 4);
  EXPECT_EQ(fault::Injector::global().injected(fault::FaultSite::ProcStall),
            4u);
}

}  // namespace
}  // namespace stamp::runtime
