#include "runtime/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace stamp::runtime {
namespace {

TEST(PhaseBarrier, RejectsNonPositiveParties) {
  EXPECT_THROW(PhaseBarrier(0), std::invalid_argument);
  EXPECT_THROW(PhaseBarrier(-3), std::invalid_argument);
}

TEST(PhaseBarrier, SinglePartyNeverBlocks) {
  PhaseBarrier b(1);
  for (int i = 0; i < 100; ++i) b.arrive_and_wait();
  EXPECT_EQ(b.phase(), 100u);
}

TEST(PhaseBarrier, AllThreadsSeeEachPhaseTogether) {
  constexpr int kThreads = 8;
  constexpr int kPhases = 200;
  PhaseBarrier barrier(kThreads);
  std::atomic<int> in_phase{0};
  std::atomic<bool> violation{false};

  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int phase = 0; phase < kPhases; ++phase) {
          in_phase.fetch_add(1);
          barrier.arrive_and_wait();
          // Between barriers every thread has arrived: counter is a multiple
          // of kThreads at the moment the barrier releases.
          const int count = in_phase.load();
          if (count % kThreads != 0 && count < (phase + 1) * kThreads)
            violation.store(true);
          barrier.arrive_and_wait();
        }
      });
    }
  }
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(barrier.phase(), 2u * kPhases);
}

TEST(PhaseBarrier, OrderingAcrossPhases) {
  // A value written before the barrier must be visible after it.
  constexpr int kThreads = 4;
  PhaseBarrier barrier(kThreads);
  std::vector<int> values(kThreads, 0);

  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        values[static_cast<std::size_t>(t)] = t + 1;
        barrier.arrive_and_wait();
        int sum = 0;
        for (int v : values) sum += v;
        EXPECT_EQ(sum, kThreads * (kThreads + 1) / 2);
        barrier.arrive_and_wait();
      });
    }
  }
}

TEST(SenseBarrier, RejectsNonPositiveParties) {
  EXPECT_THROW(SenseBarrier(0), std::invalid_argument);
}

TEST(SenseBarrier, SinglePartyNeverBlocks) {
  SenseBarrier b(1);
  for (int i = 0; i < 100; ++i) b.arrive_and_wait();
  SUCCEED();
}

TEST(SenseBarrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 500;
  SenseBarrier barrier(kThreads);
  std::vector<std::atomic<int>> counters(kThreads);
  std::atomic<bool> violation{false};

  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int phase = 0; phase < kPhases; ++phase) {
          counters[static_cast<std::size_t>(t)].store(phase + 1);
          barrier.arrive_and_wait();
          for (int u = 0; u < kThreads; ++u) {
            // No thread may still be in a previous phase after the barrier.
            if (counters[static_cast<std::size_t>(u)].load() < phase + 1)
              violation.store(true);
          }
          barrier.arrive_and_wait();
        }
      });
    }
  }
  EXPECT_FALSE(violation.load());
}

}  // namespace
}  // namespace stamp::runtime
