#include "machine/governor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stamp::machine {
namespace {

const Topology kTopo{.chips = 2, .processors_per_chip = 4,
                     .threads_per_processor = 4};  // 8 processors

std::vector<double> uniform_power(double p) {
  return std::vector<double>(8, p);
}

TEST(Governor, ValidatesInputs) {
  EXPECT_THROW((void)fit_envelope(uniform_power(1), kTopo, PowerEnvelope{}, 0),
               std::invalid_argument);
  EXPECT_THROW(
      (void)fit_envelope(uniform_power(1), kTopo, PowerEnvelope{}, 1.0, 2.0),
      std::invalid_argument);
  EXPECT_THROW((void)fit_envelope(std::vector<double>(3, 1.0), kTopo,
                                  PowerEnvelope{}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_envelope(std::vector<double>(8, -1.0), kTopo,
                                  PowerEnvelope{}),
               std::invalid_argument);
}

TEST(Governor, NoCapsMeansFullSpeed) {
  const GovernorResult r = fit_envelope(uniform_power(5), kTopo, PowerEnvelope{});
  EXPECT_TRUE(r.feasible);
  for (const OperatingPoint& p : r.points) EXPECT_DOUBLE_EQ(p.frequency, 1.0);
  EXPECT_DOUBLE_EQ(r.worst_slowdown, 1.0);
}

TEST(Governor, PerCoreCapScalesByCubeRoot) {
  PowerEnvelope env;
  env.per_processor = 1.0;
  const GovernorResult r = fit_envelope(uniform_power(8), kTopo, env);
  EXPECT_TRUE(r.feasible);
  for (const OperatingPoint& p : r.points) {
    EXPECT_NEAR(p.frequency, 0.5, 1e-12);  // cbrt(1/8)
    EXPECT_NEAR(scaled_power(8, p), 1.0, 1e-12);  // exactly at the cap
  }
  EXPECT_NEAR(r.worst_slowdown, 2.0, 1e-12);
}

TEST(Governor, CoresUnderCapStayAtFullSpeed) {
  PowerEnvelope env;
  env.per_processor = 10.0;
  std::vector<double> powers(8, 1.0);
  powers[3] = 80.0;  // only this core is hot
  const GovernorResult r = fit_envelope(powers, kTopo, env);
  EXPECT_TRUE(r.feasible);
  for (int c = 0; c < 8; ++c) {
    if (c == 3) {
      EXPECT_NEAR(r.points[3].frequency, 0.5, 1e-12);
    } else {
      EXPECT_DOUBLE_EQ(r.points[static_cast<std::size_t>(c)].frequency, 1.0);
    }
  }
}

TEST(Governor, ChipCapScalesWholeChipUniformly) {
  PowerEnvelope env;
  env.per_chip = 4.0;  // each chip's 4 cores at power 8 each = 32 >> 4
  const GovernorResult r = fit_envelope(uniform_power(8), kTopo, env);
  EXPECT_TRUE(r.feasible);
  const double expected = std::cbrt(4.0 / 32.0);
  for (const OperatingPoint& p : r.points)
    EXPECT_NEAR(p.frequency, expected, 1e-12);
  // Chip power exactly at the cap.
  double chip0 = 0;
  for (int c = 0; c < 4; ++c)
    chip0 += scaled_power(8, r.points[static_cast<std::size_t>(c)]);
  EXPECT_NEAR(chip0, 4.0, 1e-9);
}

TEST(Governor, SystemCapAppliesAfterChipCaps) {
  PowerEnvelope env;
  env.system = 8.0;  // total nominal demand 64
  const GovernorResult r = fit_envelope(uniform_power(8), kTopo, env);
  double total = 0;
  for (int c = 0; c < 8; ++c)
    total += scaled_power(8, r.points[static_cast<std::size_t>(c)]);
  EXPECT_NEAR(total, 8.0, 1e-9);
}

TEST(Governor, InfeasibleBelowFloor) {
  PowerEnvelope env;
  env.per_processor = 1e-9;  // would need f ~ 0
  const GovernorResult r =
      fit_envelope(uniform_power(100), kTopo, env, 1.0, 0.1);
  EXPECT_FALSE(r.feasible);
  for (const OperatingPoint& p : r.points)
    EXPECT_DOUBLE_EQ(p.frequency, 0.1);  // clamped to the floor
}

TEST(Governor, IdleCoresDoNotBindFeasibility) {
  PowerEnvelope env;
  env.per_processor = 1.0;
  std::vector<double> powers(8, 0.0);
  powers[0] = 1.0;  // exactly at cap
  const GovernorResult r = fit_envelope(powers, kTopo, env);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.points[0].frequency, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.min_frequency_used, 1.0);  // idle cores excluded
}

// Property: after fitting, every level of the envelope is respected (when
// feasible), for a sweep of cap tightness.
class GovernorSweep : public ::testing::TestWithParam<double> {};

TEST_P(GovernorSweep, CapsRespectedWhenFeasible) {
  const double cap = GetParam();
  PowerEnvelope env;
  env.per_processor = cap;
  env.per_chip = 3 * cap;
  env.system = 5 * cap;
  std::vector<double> powers;
  for (int c = 0; c < 8; ++c) powers.push_back(1.0 + c);
  const GovernorResult r = fit_envelope(powers, kTopo, env, 1.0, 0.01);
  if (!r.feasible) GTEST_SKIP() << "cap too tight for the floor";
  for (int c = 0; c < 8; ++c)
    EXPECT_LE(scaled_power(powers[static_cast<std::size_t>(c)],
                           r.points[static_cast<std::size_t>(c)]),
              env.per_processor + 1e-9);
  for (int chip = 0; chip < 2; ++chip) {
    double demand = 0;
    for (int i = 0; i < 4; ++i) {
      const int c = chip * 4 + i;
      demand += scaled_power(powers[static_cast<std::size_t>(c)],
                             r.points[static_cast<std::size_t>(c)]);
    }
    EXPECT_LE(demand, env.per_chip + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GovernorSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0));

}  // namespace
}  // namespace stamp::machine
