/// Property/fuzz tests of the machine simulator: randomized (but seeded)
/// trace soups with structurally matched sends/receives and barriers must
/// replay without deadlock, conserve per-operation energy exactly, respect
/// lower bounds, and be deterministic.

#include "machine/simulator.hpp"

#include <gtest/gtest.h>

#include <random>

namespace stamp::machine {
namespace {

using runtime::PlacementMap;

MachineModel fuzz_machine() {
  MachineModel m;
  m.topology = {.chips = 2, .processors_per_chip = 4, .threads_per_processor = 4};
  m.params = {.ell_a = 1, .ell_e = 6, .g_sh_a = 0.25, .g_sh_e = 1.5,
              .L_a = 3, .L_e = 12, .g_mp_a = 0.5, .g_mp_e = 2};
  m.energy = {.w_fp = 3, .w_int = 1, .w_d_r = 2, .w_d_w = 2.5, .w_m_s = 4,
              .w_m_r = 3.5};
  m.validate();
  return m;
}

struct FuzzSetup {
  std::vector<ProcessTrace> traces;
  double expected_energy = 0;
  std::vector<double> min_time;  // per-process lower bound (own ops, no waits)
};

/// Build a structurally valid random trace set: per round every process
/// computes, reads/writes shared memory, sends (n-1)*j messages (round-robin
/// delivers exactly j to each peer) and receives (n-1)*j, then barriers.
FuzzSetup make_fuzz(int n, int rounds, std::uint64_t seed,
                    const MachineModel& m) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> ops(0, 40);
  std::uniform_int_distribution<int> multiplicity(0, 2);
  FuzzSetup setup;
  setup.traces.resize(static_cast<std::size_t>(n));
  setup.min_time.assign(static_cast<std::size_t>(n), 0.0);

  for (int r = 0; r < rounds; ++r) {
    const int j = multiplicity(rng);  // same for everyone: counts match
    for (int i = 0; i < n; ++i) {
      auto& trace = setup.traces[static_cast<std::size_t>(i)];
      const double compute = ops(rng);
      const double fp = static_cast<double>(ops(rng) % 7) / 7.0 * compute;
      const double reads = ops(rng) % 9;
      const double writes = ops(rng) % 5;
      const bool intra_shm = (ops(rng) % 2) == 0;
      if (compute > 0)
        trace.push_back(TraceOp{TraceOp::Kind::Compute, compute, true, fp});
      if (reads > 0)
        trace.push_back(TraceOp{TraceOp::Kind::ShmRead, reads, intra_shm, 0});
      if (writes > 0)
        trace.push_back(TraceOp{TraceOp::Kind::ShmWrite, writes, intra_shm, 0});
      if (j > 0 && n > 1) {
        const double k = static_cast<double>(j) * (n - 1);
        trace.push_back(TraceOp{TraceOp::Kind::MsgSend, k, false, 0});
        trace.push_back(TraceOp{TraceOp::Kind::MsgRecv, k, false, 0});
      }
      trace.push_back(TraceOp{TraceOp::Kind::Barrier, 1, false, 0});

      setup.expected_energy += fp * m.energy.w_fp + (compute - fp) * m.energy.w_int;
      setup.expected_energy += reads * m.energy.w_d_r + writes * m.energy.w_d_w;
      if (j > 0 && n > 1)
        setup.expected_energy += static_cast<double>(j) * (n - 1) *
                                 (m.energy.w_m_s + m.energy.w_m_r);
      setup.min_time[static_cast<std::size_t>(i)] += compute;
    }
  }
  return setup;
}

class SimulatorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorFuzz, NoDeadlockEnergyExactDeterministic) {
  const std::uint64_t seed = GetParam();
  const MachineModel m = fuzz_machine();
  const int n = 2 + static_cast<int>(seed % 7);  // 2..8 processes
  const int rounds = 2 + static_cast<int>(seed % 5);
  const FuzzSetup setup = make_fuzz(n, rounds, seed, m);
  const PlacementMap pm = PlacementMap::one_per_processor(m.topology, n);

  const SimResult a = replay(setup.traces, pm, m);
  // Energy is a pure per-operation sum: must match the construction exactly.
  EXPECT_NEAR(a.energy, setup.expected_energy, 1e-6) << "seed " << seed;
  // Makespan dominates every per-process pure-compute lower bound.
  for (double floor_time : setup.min_time)
    EXPECT_GE(a.makespan + 1e-9, floor_time) << "seed " << seed;
  EXPECT_EQ(a.barrier_episodes, static_cast<std::size_t>(rounds));

  // Determinism: bit-identical on replay.
  const SimResult b = replay(setup.traces, pm, m);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.finish_times, b.finish_times);
}

TEST_P(SimulatorFuzz, LatencyMonotonicity) {
  const std::uint64_t seed = GetParam();
  MachineModel m = fuzz_machine();
  const int n = 2 + static_cast<int>(seed % 7);
  const FuzzSetup setup = make_fuzz(n, 3, seed, m);
  const PlacementMap pm = PlacementMap::one_per_processor(m.topology, n);
  const double base = replay(setup.traces, pm, m).makespan;

  m.params.L_e *= 3;
  m.params.ell_e *= 3;
  const double slower = replay(setup.traces, pm, m).makespan;
  EXPECT_GE(slower + 1e-9, base) << "seed " << seed;
}

TEST_P(SimulatorFuzz, UniformDvfsScalesComputeOnly) {
  const std::uint64_t seed = GetParam();
  const MachineModel m = fuzz_machine();
  const int n = 2 + static_cast<int>(seed % 7);
  const FuzzSetup setup = make_fuzz(n, 3, seed, m);
  const PlacementMap pm = PlacementMap::one_per_processor(m.topology, n);

  SimConfig half;
  half.operating_points.assign(
      static_cast<std::size_t>(m.topology.total_processors()),
      OperatingPoint{.frequency = 0.5});
  const SimResult nominal = replay(setup.traces, pm, m);
  const SimResult slow = replay(setup.traces, pm, m, half);
  // Compute stretches 2x, communication is frequency-independent: the
  // makespan grows, but by at most 2x.
  EXPECT_GE(slow.makespan + 1e-9, nominal.makespan);
  EXPECT_LE(slow.makespan, 2 * nominal.makespan + 1e-9);
  // Energy strictly drops (every op charged f^2 = 1/4).
  EXPECT_LT(slow.energy, nominal.energy + 1e-9);
}

TEST_P(SimulatorFuzz, SharedPipelineNeverFasterThanPrivate) {
  const std::uint64_t seed = GetParam();
  const MachineModel m = fuzz_machine();
  const int n = 2 + static_cast<int>(seed % 7);
  const FuzzSetup setup = make_fuzz(n, 3, seed, m);
  // Co-locate pairs so pipeline sharing has something to serialize.
  const PlacementMap pm = PlacementMap::fill_first(m.topology, n);
  // fill_first breaks the inter-message construction, so strip messages.
  std::vector<ProcessTrace> compute_only(setup.traces.size());
  for (std::size_t i = 0; i < setup.traces.size(); ++i)
    for (const TraceOp& op : setup.traces[i])
      if (op.kind == TraceOp::Kind::Compute ||
          op.kind == TraceOp::Kind::ShmRead ||
          op.kind == TraceOp::Kind::ShmWrite)
        compute_only[i].push_back(op);
  SimConfig shared;
  shared.share_pipeline = true;
  const double private_pipe = replay(compute_only, pm, m).makespan;
  const double shared_pipe = replay(compute_only, pm, m, shared).makespan;
  EXPECT_GE(shared_pipe + 1e-9, private_pipe) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace stamp::machine
