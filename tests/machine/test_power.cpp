#include "machine/power.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stamp::machine {
namespace {

TEST(Power, DynamicPowerIsCubic) {
  EXPECT_DOUBLE_EQ(dynamic_power({.frequency = 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(dynamic_power({.frequency = 2.0}), 8.0);
  EXPECT_DOUBLE_EQ(dynamic_power({.frequency = 0.5}), 0.125);
}

TEST(Power, TimeAndEnergyScales) {
  const OperatingPoint half{.frequency = 0.5};
  EXPECT_DOUBLE_EQ(time_scale(half), 2.0);    // half speed
  EXPECT_DOUBLE_EQ(energy_scale(half), 0.25); // quarter energy per op
  const OperatingPoint nominal{};
  EXPECT_DOUBLE_EQ(time_scale(nominal), 1.0);
  EXPECT_DOUBLE_EQ(energy_scale(nominal), 1.0);
}

TEST(Power, OperatingPointValidation) {
  EXPECT_THROW(OperatingPoint{.frequency = 0}.validate(), std::invalid_argument);
  EXPECT_THROW(OperatingPoint{.frequency = -2}.validate(), std::invalid_argument);
  EXPECT_NO_THROW(OperatingPoint{.frequency = 0.1}.validate());
}

TEST(Power, PaperExampleEightCoresAtHalfFrequency) {
  // "1 processor core clocked at frequency f consumes the same dynamic power
  // as 8 cores, each clocked at f/2."
  const PowerWallPoint one{.cores = 1, .frequency = 1.0};
  const PowerWallPoint eight{.cores = 8, .frequency = 0.5};
  EXPECT_DOUBLE_EQ(one.total_power(), eight.total_power());
  // "if we can get a speedup of more than 2 with the 8 cores, we will get a
  // better performance with the same power": 8 cores at f/2 run work W in
  // W/4 vs W -> speedup 4 > 2 at perfect efficiency.
  const double work = 1000;
  EXPECT_DOUBLE_EQ(one.parallel_time(work) / eight.parallel_time(work), 4.0);
}

TEST(Power, EqualPowerFrequencyIsCubeRoot) {
  EXPECT_DOUBLE_EQ(equal_power_frequency(1), 1.0);
  EXPECT_DOUBLE_EQ(equal_power_frequency(8), 0.5);
  EXPECT_NEAR(equal_power_frequency(27), 1.0 / 3.0, 1e-12);
  EXPECT_THROW((void)equal_power_frequency(0), std::invalid_argument);
}

TEST(Power, EqualPowerSpeedupIsTwoThirdsPower) {
  EXPECT_DOUBLE_EQ(equal_power_speedup(1), 1.0);
  EXPECT_DOUBLE_EQ(equal_power_speedup(8), 4.0);  // 8^(2/3)
  EXPECT_NEAR(equal_power_speedup(27), 9.0, 1e-12);
  // Efficiency scales the speedup linearly.
  EXPECT_DOUBLE_EQ(equal_power_speedup(8, 0.5), 2.0);
  EXPECT_THROW((void)equal_power_speedup(8, 0.0), std::invalid_argument);
  EXPECT_THROW((void)equal_power_speedup(8, 1.5), std::invalid_argument);
}

TEST(Power, EnergyAtEqualPowerDropsWithCores) {
  // Same power budget, shorter runtime => less energy for the same work.
  const double work = 1e6;
  const PowerWallPoint one{.cores = 1, .frequency = 1.0};
  const PowerWallPoint eight{.cores = 8, .frequency = equal_power_frequency(8)};
  EXPECT_NEAR(one.total_power(), eight.total_power(), 1e-9);
  EXPECT_LT(eight.energy(work), one.energy(work));
}

TEST(Power, ParallelTimeValidatesEfficiency) {
  const PowerWallPoint p{.cores = 4, .frequency = 1.0};
  EXPECT_THROW((void)p.parallel_time(100, 0), std::invalid_argument);
  EXPECT_THROW((void)p.parallel_time(100, 1.0001), std::invalid_argument);
}

// Property: speedup at equal power is monotone in core count and crosses 2
// exactly at cores = 2^(3/2) ~ 2.83 (so 3 cores already beat speedup 2).
class EqualPowerTest : public ::testing::TestWithParam<int> {};

TEST_P(EqualPowerTest, SpeedupMonotone) {
  const int cores = GetParam();
  EXPECT_GT(equal_power_speedup(cores + 1), equal_power_speedup(cores));
  EXPECT_NEAR(equal_power_speedup(cores),
              std::pow(static_cast<double>(cores), 2.0 / 3.0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EqualPowerTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 64));

}  // namespace
}  // namespace stamp::machine
