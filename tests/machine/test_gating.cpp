/// Tests of the leakage / imperfect-gating extension — the knobs behind the
/// paper's caveat that its first-order energy model assumes perfect clock
/// gating.

#include "machine/simulator.hpp"

#include <gtest/gtest.h>

namespace stamp::machine {
namespace {

using runtime::PlacementMap;

MachineModel test_machine() {
  MachineModel m;
  m.topology = {.chips = 1, .processors_per_chip = 4, .threads_per_processor = 4};
  m.params = {.ell_a = 2, .ell_e = 10, .g_sh_a = 0.5, .g_sh_e = 2,
              .L_a = 5, .L_e = 20, .g_mp_a = 1, .g_mp_e = 2};
  m.energy = {.w_fp = 4, .w_int = 1, .w_d_r = 2, .w_d_w = 2, .w_m_s = 3,
              .w_m_r = 3};
  return m;
}

std::vector<ProcessTrace> compute_traces(int n, double ops) {
  return std::vector<ProcessTrace>(
      static_cast<std::size_t>(n),
      {TraceOp{TraceOp::Kind::Compute, ops, true, 0}});
}

TEST(Gating, DefaultsMatchPaperModel) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 2);
  const SimResult r = replay(compute_traces(2, 100), pm, m);
  EXPECT_DOUBLE_EQ(r.energy_static, 0);
  EXPECT_DOUBLE_EQ(r.energy_idle, 0);
  EXPECT_DOUBLE_EQ(r.energy, r.energy_dynamic);
}

TEST(Gating, KnobsValidated) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 1);
  SimConfig bad;
  bad.static_power_per_core = -1;
  EXPECT_THROW((void)replay(compute_traces(1, 10), pm, m, bad),
               std::invalid_argument);
  bad = SimConfig{};
  bad.gating_effectiveness = 1.5;
  EXPECT_THROW((void)replay(compute_traces(1, 10), pm, m, bad),
               std::invalid_argument);
}

TEST(Gating, StaticPowerChargesOccupiedCoresForMakespan) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::one_per_processor(m.topology, 2);
  SimConfig cfg;
  cfg.static_power_per_core = 0.5;
  const SimResult r = replay(compute_traces(2, 100), pm, m, cfg);
  // 2 occupied cores x 0.5 power x makespan (100).
  EXPECT_DOUBLE_EQ(r.energy_static, 2 * 0.5 * r.makespan);
  EXPECT_DOUBLE_EQ(r.energy, r.energy_dynamic + r.energy_static);
}

TEST(Gating, UnoccupiedCoresDoNotLeak) {
  const MachineModel m = test_machine();  // 4 cores
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 1);  // 1 core
  SimConfig cfg;
  cfg.static_power_per_core = 1.0;
  const SimResult r = replay(compute_traces(1, 50), pm, m, cfg);
  EXPECT_DOUBLE_EQ(r.energy_static, 1.0 * r.makespan);  // one core only
}

TEST(Gating, PerfectlyBusyCoreHasNoIdleBurn) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 1);
  SimConfig cfg;
  cfg.gating_effectiveness = 0.0;  // worst case
  const SimResult r = replay(compute_traces(1, 100), pm, m, cfg);
  // The single process computes for the whole makespan: no idle time.
  EXPECT_NEAR(r.energy_idle, 0, 1e-9);
}

TEST(Gating, ImbalancedLoadBurnsIdleEnergyWithoutGating) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::one_per_processor(m.topology, 2);
  std::vector<ProcessTrace> traces(2);
  traces[0] = {TraceOp{TraceOp::Kind::Compute, 100, true, 0}};
  traces[1] = {TraceOp{TraceOp::Kind::Compute, 10, true, 0}};
  SimConfig ungated;
  ungated.gating_effectiveness = 0.0;
  const SimResult r = replay(traces, pm, m, ungated);
  // Core 1 idles for 90 time units, burning w_int per unit at f = 1.
  EXPECT_NEAR(r.energy_idle, 90.0 * m.energy.w_int, 1e-9);

  SimConfig half;
  half.gating_effectiveness = 0.5;
  const SimResult r_half = replay(traces, pm, m, half);
  EXPECT_NEAR(r_half.energy_idle, 45.0 * m.energy.w_int, 1e-9);

  const SimResult r_gated = replay(traces, pm, m);
  EXPECT_DOUBLE_EQ(r_gated.energy_idle, 0);
}

TEST(Gating, EnergyMonotoneInLeakKnobs) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::one_per_processor(m.topology, 3);
  std::vector<ProcessTrace> traces(3);
  traces[0] = {TraceOp{TraceOp::Kind::Compute, 120, true, 0}};
  traces[1] = {TraceOp{TraceOp::Kind::Compute, 60, true, 0}};
  traces[2] = {TraceOp{TraceOp::Kind::Compute, 30, true, 0}};
  double prev = -1;
  for (double gating : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    SimConfig cfg;
    cfg.gating_effectiveness = gating;
    cfg.static_power_per_core = 0.1;
    const SimResult r = replay(traces, pm, m, cfg);
    EXPECT_GT(r.energy, prev);
    prev = r.energy;
  }
}

TEST(Gating, DvfsInteractsWithIdleBurn) {
  // At f = 0.5 an idle un-gated core burns 0.5 * w_int * 0.25 per time unit
  // (f ops/unit at f^2 energy/op).
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::one_per_processor(m.topology, 2);
  std::vector<ProcessTrace> traces(2);
  traces[0] = {TraceOp{TraceOp::Kind::Compute, 100, true, 0}};
  traces[1] = {};  // fully idle occupied? empty trace -> zero-op process
  SimConfig cfg;
  cfg.gating_effectiveness = 0.0;
  cfg.operating_points.assign(4, OperatingPoint{.frequency = 0.5});
  const SimResult r = replay(traces, pm, m, cfg);
  // Makespan = 200 (100 ops at half speed); core 1 idle the whole time.
  EXPECT_DOUBLE_EQ(r.makespan, 200);
  const double expected_idle_core1 = 200 * 0.5 * m.energy.w_int * 0.25;
  // Core 0 is fully busy; only core 1 contributes idle burn.
  EXPECT_NEAR(r.energy_idle, expected_idle_core1, 1e-9);
}

}  // namespace
}  // namespace stamp::machine
