#include "machine/trace.hpp"

#include <gtest/gtest.h>

namespace stamp::machine {
namespace {

TEST(Trace, RoundOrderIsComputeSendReceive) {
  // Rounds exchange internally (send before receive) so replay never
  // deadlocks on the first round; see trace_of_round.
  CostCounters c;
  c.m_r_e = 2;
  c.c_fp = 5;
  c.c_int = 5;
  c.m_s_e = 2;
  const ProcessTrace t = trace_of_round(c, CommMode::Asynchronous);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].kind, TraceOp::Kind::Compute);
  EXPECT_DOUBLE_EQ(t[0].amount, 10);
  EXPECT_DOUBLE_EQ(t[0].fp, 5);
  EXPECT_EQ(t[1].kind, TraceOp::Kind::MsgSend);
  EXPECT_EQ(t[2].kind, TraceOp::Kind::MsgRecv);
}

TEST(Trace, SharedMemoryRoundOrder) {
  CostCounters c = counters::shared_memory(3, 2, 4, 1);
  c.c_int = 7;
  const ProcessTrace t = trace_of_round(c, CommMode::Asynchronous);
  // reads (intra, inter), compute, writes (intra, inter)
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0].kind, TraceOp::Kind::ShmRead);
  EXPECT_TRUE(t[0].intra);
  EXPECT_EQ(t[1].kind, TraceOp::Kind::ShmRead);
  EXPECT_FALSE(t[1].intra);
  EXPECT_EQ(t[2].kind, TraceOp::Kind::Compute);
  EXPECT_EQ(t[3].kind, TraceOp::Kind::ShmWrite);
  EXPECT_EQ(t[4].kind, TraceOp::Kind::ShmWrite);
}

TEST(Trace, SynchronousCommAppendsBarrier) {
  CostCounters c = counters::message_passing(1, 1, 0, 0);
  const ProcessTrace sync_trace = trace_of_round(c, CommMode::Synchronous);
  const ProcessTrace async_trace = trace_of_round(c, CommMode::Asynchronous);
  EXPECT_EQ(barrier_count(sync_trace), 1u);
  EXPECT_EQ(barrier_count(async_trace), 0u);
}

TEST(Trace, LocalOnlyRoundHasNoBarrier) {
  const ProcessTrace t =
      trace_of_round(counters::local(5, 5), CommMode::Synchronous);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].kind, TraceOp::Kind::Compute);
}

TEST(Trace, EmptyCountersGiveEmptyTrace) {
  EXPECT_TRUE(trace_of_round(CostCounters{}, CommMode::Synchronous).empty());
}

TEST(Trace, RecorderTracePreservesRoundStructure) {
  runtime::Recorder r;
  for (int unit = 0; unit < 2; ++unit) {
    r.begin_unit();
    r.begin_round();
    r.count_fp(3);
    r.msg_send(false, 1);
    r.msg_recv(false, 1);
    r.end_round();
    r.count_int(2);
    r.end_unit();
  }
  const ProcessTrace t = trace_of_recorder(r, CommMode::Synchronous);
  // Per unit: compute, send, recv, barrier, outside-compute = 5 ops.
  ASSERT_EQ(t.size(), 10u);
  EXPECT_EQ(barrier_count(t), 2u);
  EXPECT_EQ(t[4].kind, TraceOp::Kind::Compute);  // outside-of-round work
  EXPECT_DOUBLE_EQ(t[4].amount, 2);
}

TEST(Trace, RecorderTraceIncludesStray) {
  runtime::Recorder r;
  r.count_fp(5);  // stray local work, no unit
  const ProcessTrace t = trace_of_recorder(r, CommMode::Asynchronous);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].kind, TraceOp::Kind::Compute);
  EXPECT_DOUBLE_EQ(t[0].amount, 5);
}

TEST(Trace, ProcessTracePreservesTotals) {
  StampProcess proc;
  SUnit unit;
  CostCounters round = counters::message_passing(2, 2, 1, 1);
  round.c_fp = 4;
  unit.add_round(round);
  unit.add_local(1, 1);
  proc.add_repeated(unit, 3);

  const ProcessTrace t = trace_of_process(proc, CommMode::Asynchronous);
  double sends = 0, recvs = 0, compute = 0;
  for (const TraceOp& op : t) {
    if (op.kind == TraceOp::Kind::MsgSend) sends += op.amount;
    if (op.kind == TraceOp::Kind::MsgRecv) recvs += op.amount;
    if (op.kind == TraceOp::Kind::Compute) compute += op.amount;
  }
  EXPECT_DOUBLE_EQ(sends, 9);    // 3 * (2+1)
  EXPECT_DOUBLE_EQ(recvs, 9);
  EXPECT_DOUBLE_EQ(compute, 18); // 3 * (4 fp + 2 local outside)
}

// Property: totals of a recorder-derived trace match the recorder's totals.
class TraceTotalsTest : public ::testing::TestWithParam<int> {};

TEST_P(TraceTotalsTest, TraceConservesCounts) {
  const int units = GetParam();
  runtime::Recorder r;
  for (int u = 0; u < units; ++u) {
    runtime::UnitScope scope(r);
    runtime::RoundScope round(r);
    r.count_fp(u + 1);
    r.shm_read(u % 2 == 0, u + 2);
    r.shm_write(u % 2 == 1, 1);
    r.msg_send(false, u % 3);
    r.msg_recv(false, u % 3);
  }
  const CostCounters totals = r.totals();
  const ProcessTrace t = trace_of_recorder(r, CommMode::Asynchronous);
  double reads = 0, writes = 0, sends = 0, recvs = 0, compute = 0;
  for (const TraceOp& op : t) {
    switch (op.kind) {
      case TraceOp::Kind::ShmRead: reads += op.amount; break;
      case TraceOp::Kind::ShmWrite: writes += op.amount; break;
      case TraceOp::Kind::MsgSend: sends += op.amount; break;
      case TraceOp::Kind::MsgRecv: recvs += op.amount; break;
      case TraceOp::Kind::Compute: compute += op.amount; break;
      case TraceOp::Kind::Barrier: break;
    }
  }
  EXPECT_DOUBLE_EQ(reads, totals.d_r_a + totals.d_r_e);
  EXPECT_DOUBLE_EQ(writes, totals.d_w_a + totals.d_w_e);
  EXPECT_DOUBLE_EQ(sends, totals.m_s_a + totals.m_s_e);
  EXPECT_DOUBLE_EQ(recvs, totals.m_r_a + totals.m_r_e);
  EXPECT_DOUBLE_EQ(compute, totals.local_ops());
}

INSTANTIATE_TEST_SUITE_P(Sweep, TraceTotalsTest, ::testing::Values(1, 2, 5, 12));

}  // namespace
}  // namespace stamp::machine
