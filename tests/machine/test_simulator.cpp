#include "machine/simulator.hpp"

#include <gtest/gtest.h>

namespace stamp::machine {
namespace {

using runtime::PlacementMap;

MachineModel test_machine() {
  MachineModel m;
  m.name = "test";
  m.topology = {.chips = 1, .processors_per_chip = 4, .threads_per_processor = 4};
  m.params = {.ell_a = 2,
              .ell_e = 10,
              .g_sh_a = 0.5,
              .g_sh_e = 2,
              .L_a = 5,
              .L_e = 20,
              .g_mp_a = 1,
              .g_mp_e = 2};
  m.energy = {.w_fp = 4, .w_int = 1, .w_d_r = 2, .w_d_w = 2, .w_m_s = 3, .w_m_r = 3};
  m.validate();
  return m;
}

TEST(Simulator, ComputeOnlyTraceTakesAmountTime) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 1);
  std::vector<ProcessTrace> traces{
      {TraceOp{TraceOp::Kind::Compute, 100, true, 40}}};
  const SimResult r = replay(traces, pm, m);
  EXPECT_DOUBLE_EQ(r.makespan, 100);
  EXPECT_DOUBLE_EQ(r.energy, 40 * 4 + 60 * 1);
}

TEST(Simulator, ParallelComputeOverlaps) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 4);
  std::vector<ProcessTrace> traces(
      4, {TraceOp{TraceOp::Kind::Compute, 50, true, 0}});
  const SimResult r = replay(traces, pm, m);
  EXPECT_DOUBLE_EQ(r.makespan, 50);  // threads compute independently
  EXPECT_DOUBLE_EQ(r.energy, 4 * 50 * 1);
}

TEST(Simulator, SharedPipelineSerializesCoLocatedCompute) {
  MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 4);
  std::vector<ProcessTrace> traces(
      4, {TraceOp{TraceOp::Kind::Compute, 50, true, 0}});
  SimConfig cfg;
  cfg.share_pipeline = true;
  const SimResult r = replay(traces, pm, m, cfg);
  EXPECT_DOUBLE_EQ(r.makespan, 200);  // 4 threads share one pipeline
}

TEST(Simulator, ShmLatencyAndBandwidth) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 1);
  std::vector<ProcessTrace> traces{
      {TraceOp{TraceOp::Kind::ShmRead, 10, false, 0}}};
  const SimResult r = replay(traces, pm, m);
  // One request run: bandwidth 2 * 10 + latency 10.
  EXPECT_DOUBLE_EQ(r.makespan, 2 * 10 + 10);
  EXPECT_DOUBLE_EQ(r.energy, 10 * m.energy.w_d_r);
}

TEST(Simulator, L2ContentionQueuesAcrossProcessors) {
  const MachineModel m = test_machine();
  // Two processes on different cores, both hammering the chip's L2.
  const PlacementMap pm = PlacementMap::one_per_processor(m.topology, 2);
  std::vector<ProcessTrace> traces(
      2, {TraceOp{TraceOp::Kind::ShmRead, 10, false, 0}});
  const SimResult r = replay(traces, pm, m);
  // The L2 port serializes: second process finishes at 2*20 + ell.
  EXPECT_DOUBLE_EQ(r.makespan, 2 * (2 * 10) + 10);
  EXPECT_GT(r.l2_utilization[0], 0.75);
}

TEST(Simulator, L1PortsArePerCore) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::one_per_processor(m.topology, 2);
  std::vector<ProcessTrace> traces(
      2, {TraceOp{TraceOp::Kind::ShmRead, 10, true, 0}});
  const SimResult r = replay(traces, pm, m);
  // Separate L1s: no queueing. 0.5 * 10 + 2.
  EXPECT_DOUBLE_EQ(r.makespan, 0.5 * 10 + 2);
}

TEST(Simulator, MessageRoundTrip) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::one_per_processor(m.topology, 2);
  std::vector<ProcessTrace> traces(2);
  traces[0] = {TraceOp{TraceOp::Kind::MsgSend, 1, false, 0}};
  traces[1] = {TraceOp{TraceOp::Kind::MsgRecv, 1, false, 0}};
  const SimResult r = replay(traces, pm, m);
  // send: router service 2 (done at 2), arrival 2 + L_e = 22; recv: +g = 24.
  EXPECT_DOUBLE_EQ(r.finish_times[1], 2 + 20 + 2);
  EXPECT_DOUBLE_EQ(r.energy, m.energy.w_m_s + m.energy.w_m_r);
}

TEST(Simulator, IntraMessagesFasterThanInter) {
  const MachineModel m = test_machine();
  auto run_with = [&](Distribution d) {
    const PlacementMap pm = PlacementMap::for_distribution(m.topology, 2, d);
    const bool intra = d == Distribution::IntraProc;
    std::vector<ProcessTrace> traces(2);
    traces[0] = {TraceOp{TraceOp::Kind::MsgSend, 1, intra, 0}};
    traces[1] = {TraceOp{TraceOp::Kind::MsgRecv, 1, intra, 0}};
    return replay(traces, pm, m).makespan;
  };
  EXPECT_LT(run_with(Distribution::IntraProc), run_with(Distribution::InterProc));
}

TEST(Simulator, BarrierAlignsProcesses) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 2);
  std::vector<ProcessTrace> traces(2);
  traces[0] = {TraceOp{TraceOp::Kind::Compute, 10, true, 0},
               TraceOp{TraceOp::Kind::Barrier, 1, false, 0},
               TraceOp{TraceOp::Kind::Compute, 5, true, 0}};
  traces[1] = {TraceOp{TraceOp::Kind::Compute, 100, true, 0},
               TraceOp{TraceOp::Kind::Barrier, 1, false, 0},
               TraceOp{TraceOp::Kind::Compute, 5, true, 0}};
  const SimResult r = replay(traces, pm, m);
  // Both released at 100 + 1 (barrier latency), finish at 106.
  EXPECT_DOUBLE_EQ(r.finish_times[0], 106);
  EXPECT_DOUBLE_EQ(r.finish_times[1], 106);
  EXPECT_EQ(r.barrier_episodes, 1u);
}

TEST(Simulator, DvfsSlowsAndSavesEnergy) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 1);
  const std::vector<ProcessTrace> traces{
      {TraceOp{TraceOp::Kind::Compute, 100, true, 0}}};
  SimConfig slow;
  slow.operating_points = {OperatingPoint{.frequency = 0.5}};
  const SimResult nominal = replay(traces, pm, m);
  const SimResult halved = replay(traces, pm, m, slow);
  EXPECT_DOUBLE_EQ(halved.makespan, 2 * nominal.makespan);
  EXPECT_DOUBLE_EQ(halved.energy, 0.25 * nominal.energy);
  // Power drops by f^3 = 8x.
  EXPECT_NEAR(halved.power(), nominal.power() / 8.0, 1e-9);
}

TEST(Simulator, DeadlockDetected) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 1);
  // A receive with no sender anywhere.
  std::vector<ProcessTrace> traces{{TraceOp{TraceOp::Kind::MsgRecv, 1, true, 0}}};
  EXPECT_THROW((void)replay(traces, pm, m), std::runtime_error);
}

TEST(Simulator, MismatchedSizesRejected) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 2);
  std::vector<ProcessTrace> traces(1);
  EXPECT_THROW((void)replay(traces, pm, m), std::invalid_argument);
}

TEST(Simulator, UnequalBarrierCountsHandled) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 2);
  std::vector<ProcessTrace> traces(2);
  traces[0] = {TraceOp{TraceOp::Kind::Compute, 5, true, 0},
               TraceOp{TraceOp::Kind::Barrier, 1, false, 0},
               TraceOp{TraceOp::Kind::Barrier, 1, false, 0}};
  traces[1] = {TraceOp{TraceOp::Kind::Barrier, 1, false, 0}};
  const SimResult r = replay(traces, pm, m);
  // Episode 1 includes both; episode 2 only process 0.
  EXPECT_EQ(r.barrier_episodes, 2u);
}

// Property: all-to-all message rounds complete and makespan grows with the
// process count (more router traffic).
class SimScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(SimScaleTest, AllToAllScales) {
  const int n = GetParam();
  MachineModel m = test_machine();
  m.topology = {.chips = 1, .processors_per_chip = 8, .threads_per_processor = 4};
  const PlacementMap pm = PlacementMap::one_per_processor(m.topology, n);
  std::vector<ProcessTrace> traces(
      static_cast<std::size_t>(n),
      {TraceOp{TraceOp::Kind::MsgSend, static_cast<double>(n - 1), false, 0},
       TraceOp{TraceOp::Kind::MsgRecv, static_cast<double>(n - 1), false, 0}});
  const SimResult r = replay(traces, pm, m);
  EXPECT_GT(r.makespan, 0);
  EXPECT_DOUBLE_EQ(r.energy,
                   static_cast<double>(n) * (n - 1) *
                       (m.energy.w_m_s + m.energy.w_m_r));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimScaleTest, ::testing::Values(2, 3, 4, 6, 8));

}  // namespace
}  // namespace stamp::machine
