#include "machine/governor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace stamp::machine {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 4,
                     .threads_per_processor = 4};

TEST(Degrade, ValidatesInputs) {
  EXPECT_THROW((void)degrade_threads(-1.0, kTopo, PowerEnvelope{}),
               std::invalid_argument);
  EXPECT_THROW((void)degrade_threads(1.0, kTopo, PowerEnvelope{}, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)degrade_threads(1.0, kTopo, PowerEnvelope{}, 1.0, 0.5),
               std::invalid_argument);
}

TEST(Degrade, NoCapsKeepsEveryThread) {
  const DegradeResult r = degrade_threads(1.0, kTopo, PowerEnvelope{});
  EXPECT_TRUE(r.feasible);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.threads_per_processor, 4);
  EXPECT_DOUBLE_EQ(r.governor.min_frequency_used, 1.0);
}

TEST(Degrade, PaperThreeOfFourUnderPerCoreCap) {
  // The paper's Niagara conclusion: under a per-core power limit of
  // 3(x+y)w_int — three times one thread's demand — at most 3 of the core's
  // 4 hardware threads can run. With the default frequency floor of 1.0,
  // DVFS cannot absorb the overshoot, so exactly one thread is shed.
  PowerEnvelope env;
  env.per_processor = 3.0;  // 3x the per-thread power below
  const DegradeResult r = degrade_threads(1.0, kTopo, env);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.threads_per_processor, 3);
  // At k = 3 the cores sit exactly at the cap, at full frequency.
  EXPECT_DOUBLE_EQ(r.governor.min_frequency_used, 1.0);
  EXPECT_DOUBLE_EQ(r.governor.worst_slowdown, 1.0);
}

TEST(Degrade, TighterCapShedsMoreThreads) {
  PowerEnvelope env;
  env.per_processor = 1.5;  // hosts one thread, not two
  const DegradeResult r = degrade_threads(1.0, kTopo, env);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.threads_per_processor, 1);
}

TEST(Degrade, FloorBelowOneLetsDvfsAbsorbOvershoot) {
  // 4 threads demand 4.0 against a 3.5 cap: required f = cbrt(3.5/4) ~ 0.956.
  // With the floor relaxed to 0.9, DVFS absorbs it and no thread is shed.
  PowerEnvelope env;
  env.per_processor = 3.5;
  const DegradeResult r =
      degrade_threads(1.0, kTopo, env, /*min_acceptable_frequency=*/0.9);
  EXPECT_TRUE(r.feasible);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.threads_per_processor, 4);
  EXPECT_NEAR(r.governor.min_frequency_used, std::cbrt(3.5 / 4.0), 1e-12);
}

TEST(Degrade, InfeasibleWhenEvenOneThreadOvershoots) {
  PowerEnvelope env;
  env.per_processor = 0.5;  // below one thread's demand, floor at 1.0
  const DegradeResult r = degrade_threads(1.0, kTopo, env);
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.threads_per_processor, 1);  // carries the k = 1 fit
}

TEST(Degrade, ChipCapDegradesToo) {
  // Chip cap of 8 over 4 cores: k = 2 gives chip power 8, k = 3 gives 12.
  PowerEnvelope env;
  env.per_chip = 8.0;
  const DegradeResult r = degrade_threads(1.0, kTopo, env);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.threads_per_processor, 2);
}

TEST(Degrade, ZeroPowerThreadsNeverDegrade) {
  PowerEnvelope env;
  env.per_processor = 0.1;
  const DegradeResult r = degrade_threads(0.0, kTopo, env);
  EXPECT_TRUE(r.feasible);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.threads_per_processor, 4);
}

}  // namespace
}  // namespace stamp::machine
