#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "machine/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stamp::machine {
namespace {

using runtime::PlacementMap;

class ArmedPlan {
 public:
  explicit ArmedPlan(const fault::FaultPlan& plan) {
    fault::Injector::global().arm(plan);
  }
  ~ArmedPlan() { fault::Injector::global().disarm(); }
};

MachineModel test_machine() {
  MachineModel m;
  m.name = "test";
  m.topology = {.chips = 1, .processors_per_chip = 4,
                .threads_per_processor = 4};
  m.params = {.ell_a = 2,
              .ell_e = 10,
              .g_sh_a = 0.5,
              .g_sh_e = 2,
              .L_a = 5,
              .L_e = 20,
              .g_mp_a = 1,
              .g_mp_e = 2};
  m.energy = {.w_fp = 4, .w_int = 1, .w_d_r = 2, .w_d_w = 2, .w_m_s = 3,
              .w_m_r = 3};
  m.validate();
  return m;
}

fault::FaultPlan kill_core(int core) {
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::SimCoreFail, 1.0, 0, /*max_per_key=*/1,
            /*only_key=*/core);
  return plan;
}

TEST(SimFaults, CoreFailKillsReplayOnOccupiedCore) {
  const ArmedPlan armed(kill_core(0));
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 2);
  const std::vector<ProcessTrace> traces(
      2, {TraceOp{TraceOp::Kind::Compute, 50, true, 0}});
  try {
    (void)replay(traces, pm, m);
    FAIL() << "expected CoreFailure";
  } catch (const fault::CoreFailure& e) {
    EXPECT_EQ(e.core(), 0);
  }
}

TEST(SimFaults, CoreFailSparesUnoccupiedCores) {
  // The targeted core hosts no process, so its decision stream is never
  // consulted and the replay completes untouched.
  const ArmedPlan armed(kill_core(3));
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 2);
  const std::vector<ProcessTrace> traces(
      2, {TraceOp{TraceOp::Kind::Compute, 50, true, 0}});
  const SimResult r = replay(traces, pm, m);
  EXPECT_DOUBLE_EQ(r.makespan, 50);
}

TEST(SimFaults, ReplaceAroundDeadCoreAndReplay) {
  const MachineModel m = test_machine();
  const std::vector<ProcessTrace> traces(
      4, {TraceOp{TraceOp::Kind::Compute, 50, true, 0}});

  SimResult recovered;
  {
    const ArmedPlan armed(kill_core(0));
    const PlacementMap pm = PlacementMap::fill_first(m.topology, 4);
    try {
      (void)replay(traces, pm, m);
      FAIL() << "expected CoreFailure";
    } catch (const fault::CoreFailure& e) {
      // The simulated failover: retire the dead core, re-place, replay.
      // max_per_key=1 spent the injection, so the retry replays cleanly.
      const PlacementMap survivors =
          PlacementMap::fill_first_excluding(m.topology, 4, {e.core()});
      recovered = replay(traces, survivors, m);
    }
  }
  // The recovered run equals the fault-free run on the same surviving
  // placement.
  const PlacementMap survivors =
      PlacementMap::fill_first_excluding(m.topology, 4, {0});
  const SimResult reference = replay(traces, survivors, m);
  EXPECT_DOUBLE_EQ(recovered.makespan, reference.makespan);
  EXPECT_DOUBLE_EQ(recovered.energy, reference.energy);
}

TEST(SimFaults, LatencySpikeSlowsMemoryWithoutExtraEnergy) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 1);
  const std::vector<ProcessTrace> traces{
      {TraceOp{TraceOp::Kind::ShmRead, 10, true, 0}}};
  const SimResult baseline = replay(traces, pm, m);

  fault::FaultPlan plan;
  plan.with(fault::FaultSite::SimLatencySpike, 1.0, /*magnitude=*/3.0);
  const ArmedPlan armed(plan);
  const SimResult spiked = replay(traces, pm, m);
  // Demand triples (0.5*10 -> 15), latency ell stays: 15 + 2 vs 5 + 2.
  EXPECT_DOUBLE_EQ(baseline.makespan, 0.5 * 10 + 2);
  EXPECT_DOUBLE_EQ(spiked.makespan, 3 * 0.5 * 10 + 2);
  // A spike is a slow path, not extra work: energy is identical.
  EXPECT_DOUBLE_EQ(spiked.energy, baseline.energy);
}

TEST(SimFaults, SpikeMagnitudeBelowOneNeverSpeedsUp) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 1);
  const std::vector<ProcessTrace> traces{
      {TraceOp{TraceOp::Kind::ShmRead, 10, true, 0}}};
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::SimLatencySpike, 1.0, /*magnitude=*/0.25);
  const ArmedPlan armed(plan);
  const SimResult r = replay(traces, pm, m);
  EXPECT_DOUBLE_EQ(r.makespan, 0.5 * 10 + 2);  // clamped to x1
}

TEST(SimFaults, SeededSpikesAreDeterministic) {
  const MachineModel m = test_machine();
  const PlacementMap pm = PlacementMap::fill_first(m.topology, 4);
  std::vector<ProcessTrace> traces;
  for (int i = 0; i < 4; ++i)
    traces.push_back({TraceOp{TraceOp::Kind::ShmRead, 10, true, 0},
                      TraceOp{TraceOp::Kind::ShmWrite, 5, true, 0},
                      TraceOp{TraceOp::Kind::ShmRead, 7, false, 0}});
  fault::FaultPlan plan;
  plan.seed = 42;
  plan.with(fault::FaultSite::SimLatencySpike, 0.5, /*magnitude=*/4.0);

  const auto run = [&] {
    const ArmedPlan armed(plan);
    return replay(traces, pm, m);
  };
  const SimResult a = run();
  const SimResult b = run();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
}

}  // namespace
}  // namespace stamp::machine
