/// Integration: replaying recorded runs on the machine simulator must agree
/// with the analytic model to first order — same energy at nominal frequency,
/// times within the latency/contention corrections the simulator adds.

#include "algo/jacobi.hpp"
#include "core/core.hpp"
#include "machine/simulator.hpp"

#include <gtest/gtest.h>

namespace stamp {
namespace {

MachineModel flat_machine() {
  MachineModel m;
  m.topology = {.chips = 1, .processors_per_chip = 8, .threads_per_processor = 4};
  m.params = {.ell_a = 1,
              .ell_e = 4,
              .g_sh_a = 0.25,
              .g_sh_e = 1,
              .L_a = 2,
              .L_e = 8,
              .g_mp_a = 0.5,
              .g_mp_e = 1};
  m.energy = {.w_fp = 4, .w_int = 1, .w_d_r = 2, .w_d_w = 2, .w_m_s = 3, .w_m_r = 3};
  m.validate();
  return m;
}

TEST(ModelVsSim, EnergyIdenticalAtNominalFrequency) {
  // Energy in both the model and the simulator is a pure per-operation sum,
  // so they must agree exactly when f = 1 everywhere.
  const int n = 6;
  const algo::LinearSystem sys = algo::make_diagonally_dominant_system(n, 55);
  algo::JacobiOptions opt;
  opt.processes = n;
  const auto dist = algo::jacobi_distributed(sys, flat_machine().topology, opt);

  const MachineModel m = flat_machine();
  std::vector<machine::ProcessTrace> traces;
  for (const auto& rec : dist.run.recorders)
    traces.push_back(machine::trace_of_recorder(rec, CommMode::Synchronous));

  const machine::SimResult sim = machine::replay(traces, dist.placement, m);
  const Cost model = dist.run.total_cost(dist.placement, m.params, m.energy);
  EXPECT_NEAR(sim.energy, model.energy, 1e-6);
}

TEST(ModelVsSim, SimTimeWithinFirstOrderOfModel) {
  // The analytic time is a per-process bound that ignores queuing, and the
  // simulator adds barrier-wait and contention. Agreement requirement: same
  // order of magnitude, sim >= model's pure-compute floor, and within 4x.
  const int n = 8;
  const algo::LinearSystem sys = algo::make_diagonally_dominant_system(n, 91);
  algo::JacobiOptions opt;
  opt.processes = n;
  const auto dist = algo::jacobi_distributed(sys, flat_machine().topology, opt);

  const MachineModel m = flat_machine();
  std::vector<machine::ProcessTrace> traces;
  for (const auto& rec : dist.run.recorders)
    traces.push_back(machine::trace_of_recorder(rec, CommMode::Synchronous));

  const machine::SimResult sim = machine::replay(traces, dist.placement, m);
  const Cost model = dist.run.total_cost(dist.placement, m.params, m.energy);

  EXPECT_GT(sim.makespan, 0);
  EXPECT_GT(model.time, 0);
  const double ratio = sim.makespan / model.time;
  EXPECT_GT(ratio, 0.25) << "sim " << sim.makespan << " model " << model.time;
  EXPECT_LT(ratio, 4.0) << "sim " << sim.makespan << " model " << model.time;
}

TEST(ModelVsSim, IntraPlacementFasterInBoth) {
  const int n = 4;
  const algo::LinearSystem sys = algo::make_diagonally_dominant_system(n, 12);
  const MachineModel m = flat_machine();

  auto run_variant = [&](Distribution d) {
    algo::JacobiOptions opt;
    opt.processes = n;
    opt.distribution = d;
    const auto dist = algo::jacobi_distributed(sys, m.topology, opt);
    std::vector<machine::ProcessTrace> traces;
    for (const auto& rec : dist.run.recorders)
      traces.push_back(machine::trace_of_recorder(rec, CommMode::Synchronous));
    const machine::SimResult sim = machine::replay(traces, dist.placement, m);
    const Cost model = dist.run.total_cost(dist.placement, m.params, m.energy);
    return std::pair<double, double>(model.time, sim.makespan);
  };

  const auto [model_intra, sim_intra] = run_variant(Distribution::IntraProc);
  const auto [model_inter, sim_inter] = run_variant(Distribution::InterProc);
  EXPECT_LT(model_intra, model_inter);
  EXPECT_LT(sim_intra, sim_inter);
}

TEST(ModelVsSim, DvfsTradeTimeForPower) {
  // Run the same trace at f = 1 and f = 1/2 on every core: the simulator must
  // show the f^3 power law the Section 2.1 argument relies on.
  const int n = 4;
  const algo::LinearSystem sys = algo::make_diagonally_dominant_system(n, 8);
  algo::JacobiOptions opt;
  opt.processes = n;
  const MachineModel m = flat_machine();
  const auto dist = algo::jacobi_distributed(sys, m.topology, opt);
  std::vector<machine::ProcessTrace> traces;
  for (const auto& rec : dist.run.recorders)
    traces.push_back(machine::trace_of_recorder(rec, CommMode::Synchronous));

  const machine::SimResult nominal = machine::replay(traces, dist.placement, m);
  machine::SimConfig halved;
  halved.operating_points.assign(
      static_cast<std::size_t>(m.topology.total_processors()),
      machine::OperatingPoint{.frequency = 0.5});
  const machine::SimResult slow =
      machine::replay(traces, dist.placement, m, halved);

  // Compute slows 2x (communication latencies unchanged), energy of compute
  // ops drops 4x; overall: slower and lower-energy.
  EXPECT_GT(slow.makespan, nominal.makespan);
  EXPECT_LT(slow.energy, nominal.energy);
  EXPECT_LT(slow.power(), nominal.power());
}

}  // namespace
}  // namespace stamp
