/// Integration: nested STAMPs (rule 4 of Section 3.1). "A STAMP algorithm
/// can consist of any combinations of S-units, nested STAMPs (by invoking
/// other STAMP processes), or distributed STAMP processes."
///
/// The runtime is re-entrant: a process body may launch an inner program
/// with run_processes and fold the inner recorders' costs back into the
/// outer estimate with CostExpr (sequential outer, parallel inner) — exactly
/// the estimation recipe rule 4 prescribes once the structure is fixed.

#include "core/core.hpp"
#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>

// run_distributed is deprecated in favor of Evaluator::run; this file drives
// the layer under test through the executor directly on purpose (it sits
// below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace stamp {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

TEST(NestedStamp, InnerProgramRunsInsideOuterProcess) {
  // Outer: 2 coordinator processes. Each spawns an inner 3-process program.
  std::atomic<int> inner_bodies{0};
  std::vector<CostCounters> inner_totals(2);

  const runtime::RunResult outer = runtime::run_distributed(
      kTopo, 2, Distribution::InterProc, [&](runtime::Context& outer_ctx) {
        runtime::UnitScope unit(outer_ctx.recorder());
        outer_ctx.int_ops(5);  // coordination work

        // Nested STAMP: an inner intra_proc trio doing counted local work.
        const runtime::RunResult inner = runtime::run_distributed(
            kTopo, 3, Distribution::IntraProc, [&](runtime::Context& ctx) {
              runtime::UnitScope u(ctx.recorder());
              ctx.fp_ops(100);
              inner_bodies.fetch_add(1);
            });
        inner_totals[static_cast<std::size_t>(outer_ctx.id())] =
            inner.total_counters();
        outer_ctx.int_ops(1);  // join/check
      });

  EXPECT_EQ(inner_bodies.load(), 6);  // 2 outer x 3 inner
  for (const CostCounters& t : inner_totals) EXPECT_DOUBLE_EQ(t.c_fp, 300);
  EXPECT_DOUBLE_EQ(outer.total_counters().c_int, 12);
}

TEST(NestedStamp, CostExprPricesTheNestedStructure) {
  // Estimate the nested program of the previous test analytically:
  // outer = seq(local(0,5), par(3 x inner-unit), local(0,1)), two replicas in
  // parallel. Then verify the estimate against the measured counters priced
  // by the same formulas.
  const MachineModel m = presets::niagara();
  const ProcessCounts pc{};  // local-only work: no latency brackets

  const CostExpr inner_unit = CostExpr::local(100, 0);
  const CostExpr outer_one =
      CostExpr::seq({CostExpr::local(0, 5),
                     CostExpr::par({inner_unit, inner_unit, inner_unit}),
                     CostExpr::local(0, 1)});
  const CostExpr program = CostExpr::par({outer_one, outer_one});
  const Cost estimate = program.evaluate(m.params, m.energy, pc);

  // T per outer replica: 5 + max(100,100,100) + 1 = 106.
  EXPECT_DOUBLE_EQ(estimate.time, 106);
  // E: 2 replicas x (6 int + 3*100 fp).
  EXPECT_DOUBLE_EQ(estimate.energy,
                   2 * (6 * m.energy.w_int + 300 * m.energy.w_fp));

  // Measured: run it and price the recorded counters identically.
  std::vector<Cost> inner_cost(2);
  const runtime::RunResult outer = runtime::run_distributed(
      kTopo, 2, Distribution::InterProc, [&](runtime::Context& outer_ctx) {
        runtime::UnitScope unit(outer_ctx.recorder());
        outer_ctx.int_ops(5);
        const runtime::PlacementMap inner_pm =
            runtime::PlacementMap::fill_first(kTopo, 3);
        const runtime::RunResult inner =
            runtime::run_processes(inner_pm, [&](runtime::Context& ctx) {
              runtime::UnitScope u(ctx.recorder());
              ctx.fp_ops(100);
            });
        inner_cost[static_cast<std::size_t>(outer_ctx.id())] =
            inner.total_cost(inner_pm, m.params, m.energy);
        outer_ctx.int_ops(1);
      });

  // Rebuild the nested estimate from measurements: outer local cost +
  // measured inner parallel cost, two replicas in parallel.
  std::vector<Cost> outer_costs;
  for (int i = 0; i < 2; ++i) {
    const StampProcess proc =
        outer.recorders[static_cast<std::size_t>(i)].to_process(Attributes{});
    Cost c = proc.cost(m.params, m.energy, pc);
    c += inner_cost[static_cast<std::size_t>(i)];
    outer_costs.push_back(c);
  }
  const Cost measured = parallel(outer_costs);
  EXPECT_DOUBLE_EQ(measured.time, estimate.time);
  EXPECT_DOUBLE_EQ(measured.energy, estimate.energy);
}

TEST(NestedStamp, DeepNestingIsReentrant) {
  // Three levels: 2 -> 2 -> 2 processes; every leaf body runs exactly once.
  std::atomic<int> leaves{0};
  (void)runtime::run_distributed(
      kTopo, 2, Distribution::InterProc, [&](runtime::Context&) {
        (void)runtime::run_distributed(
            kTopo, 2, Distribution::IntraProc, [&](runtime::Context&) {
              (void)runtime::run_distributed(
                  kTopo, 2, Distribution::IntraProc,
                  [&](runtime::Context&) { leaves.fetch_add(1); });
            });
      });
  EXPECT_EQ(leaves.load(), 8);
}

}  // namespace
}  // namespace stamp
