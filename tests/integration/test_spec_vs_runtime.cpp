/// Integration: the three evaluation layers must agree end to end —
/// declarative specs (no execution), the instrumented runtime, and the
/// placement optimizer fed from measured profiles.

#include "algo/jacobi.hpp"
#include "core/core.hpp"
#include "machine/governor.hpp"
#include "machine/simulator.hpp"
#include "runtime/profile.hpp"

#include <gtest/gtest.h>

// run_distributed is deprecated in favor of Evaluator::run; this file drives
// the layer under test through the executor directly on purpose (it sits
// below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace stamp {
namespace {

TEST(SpecVsRuntime, JacobiSpecPredictsMeasuredRuntimeCost) {
  // Spec evaluation and the measured run must price the Jacobi S-rounds
  // identically when the spec's symbolic counters equal the real counts and
  // the placements coincide.
  const int n = 8;
  MachineModel m;
  m.topology = {.chips = 1, .processors_per_chip = 1,
                .threads_per_processor = 8};  // one wide core: all intra
  m.params = {.ell_a = 0, .ell_e = 0, .g_sh_a = 0, .g_sh_e = 0,
              .L_a = 5, .L_e = 5, .g_mp_a = 0.5, .g_mp_e = 0.5};
  m.validate();

  const algo::LinearSystem sys = algo::make_diagonally_dominant_system(n, 41);
  algo::JacobiOptions opt;
  opt.processes = n;
  const auto dist = algo::jacobi_distributed(sys, m.topology, opt);
  const int iters = dist.solution.iterations;

  spec::Program prog;
  prog.add(spec::ProcessBuilder("jacobi",
                                Attributes{Distribution::IntraProc,
                                           ExecMode::Asynchronous,
                                           CommMode::Synchronous})
               .replicas(n)
               .loop(analysis::jacobi_round_counters(n),
                     static_cast<std::size_t>(iters), 0, 3));
  const spec::Evaluation eval = prog.evaluate(m);

  const Cost measured = dist.run.total_cost(dist.placement, m.params, m.energy);
  EXPECT_NEAR(eval.total.time, measured.time, 1e-9);
  EXPECT_NEAR(eval.total.energy, measured.energy, 1e-9);
}

TEST(SpecVsRuntime, MeasuredProfilesFeedThePlacementOptimizer) {
  // Run Jacobi, extract profiles from the recorders, and check the optimizer
  // reproduces the co-location decision the paper's intra_proc keyword makes.
  const int n = 4;
  MachineModel m = presets::niagara();
  m.envelope = PowerEnvelope{};

  const algo::LinearSystem sys = algo::make_diagonally_dominant_system(n, 43);
  algo::JacobiOptions opt;
  opt.processes = n;
  const auto dist = algo::jacobi_distributed(sys, m.topology, opt);

  const std::vector<ProcessProfile> profiles =
      runtime::profiles_from_run(dist.run);
  ASSERT_EQ(profiles.size(), static_cast<std::size_t>(n));
  // Per-unit counts match the paper's per-round counts (plus the outside
  // checks folded in by the unit structure).
  EXPECT_DOUBLE_EQ(profiles[0].m_s + profiles[0].m_r, 2.0 * (n - 1));

  const PlacementResult best = place_best(profiles, m, Objective::D);
  EXPECT_TRUE(best.eval.feasible);
  // Communication-heavy Jacobi wants full co-location when power allows.
  EXPECT_EQ(best.eval.placement.group_size(best.eval.placement.processor_of[0]),
            n);
}

TEST(SpecVsRuntime, ProfileNormalizesPerUnit) {
  runtime::Recorder rec;
  for (int u = 0; u < 5; ++u) {
    runtime::UnitScope unit(rec);
    runtime::RoundScope round(rec);
    rec.count_fp(10);
    rec.msg_send(true, 3);
    rec.msg_recv(false, 3);
    rec.observe_kappa(u);
  }
  const ProcessProfile p = runtime::profile_from_recorder(rec);
  EXPECT_DOUBLE_EQ(p.units, 5);
  EXPECT_DOUBLE_EQ(p.c_fp, 10);
  EXPECT_DOUBLE_EQ(p.m_s, 3);
  EXPECT_DOUBLE_EQ(p.m_r, 3);
  EXPECT_DOUBLE_EQ(p.kappa, 4);  // max, not averaged
}

TEST(GovernorVsSimulator, FittedFrequenciesRespectEnvelopeInSimulation) {
  // Close the DVFS loop: measure Jacobi, compute per-core nominal power from
  // the model, fit frequencies to a tight envelope, replay on the simulator
  // at those operating points, and verify simulated power per core fits.
  const int n = 8;
  MachineModel m = presets::niagara();
  m.envelope = PowerEnvelope{};

  const algo::LinearSystem sys = algo::make_diagonally_dominant_system(n, 47);
  algo::JacobiOptions opt;
  opt.processes = n;
  opt.distribution = Distribution::InterProc;  // one per core
  const auto dist = algo::jacobi_distributed(sys, m.topology, opt);

  const std::vector<Cost> costs =
      dist.run.process_costs(dist.placement, m.params, m.energy);
  std::vector<double> core_power(
      static_cast<std::size_t>(m.topology.total_processors()), 0.0);
  for (int i = 0; i < n; ++i)
    core_power[static_cast<std::size_t>(dist.placement.processor_of(i))] +=
        costs[static_cast<std::size_t>(i)].power();

  PowerEnvelope tight;
  tight.per_processor = 0.5 * *std::max_element(core_power.begin(),
                                                core_power.end());
  const machine::GovernorResult fit =
      machine::fit_envelope(core_power, m.topology, tight);
  ASSERT_TRUE(fit.feasible);
  EXPECT_LT(fit.min_frequency_used, 1.0);

  // Scaled model power per core must now fit the cap.
  for (std::size_t c = 0; c < core_power.size(); ++c)
    EXPECT_LE(machine::scaled_power(core_power[c], fit.points[c]),
              tight.per_processor + 1e-9);

  // And the simulator agrees directionally: whole-machine average power
  // drops under the fitted operating points.
  std::vector<machine::ProcessTrace> traces;
  for (const auto& rec : dist.run.recorders)
    traces.push_back(machine::trace_of_recorder(rec, CommMode::Synchronous));
  const machine::SimResult nominal =
      machine::replay(traces, dist.placement, m);
  machine::SimConfig cfg;
  cfg.operating_points = fit.points;
  const machine::SimResult fitted =
      machine::replay(traces, dist.placement, m, cfg);
  EXPECT_LT(fitted.power(), nominal.power());
  EXPECT_GT(fitted.makespan, nominal.makespan);
}

}  // namespace
}  // namespace stamp
