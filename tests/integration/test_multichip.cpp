/// Integration: multi-chip topologies (the server preset) — placements span
/// chips, chip-level envelope caps bind, and the simulator's chip-shared L2
/// distinguishes on-chip sharers from cross-chip ones.

#include "algo/jacobi.hpp"
#include "core/core.hpp"
#include "machine/governor.hpp"
#include "machine/simulator.hpp"

#include <gtest/gtest.h>

namespace stamp {
namespace {

TEST(MultiChip, InterPlacementSpansChips) {
  const MachineModel m = presets::server();  // 4 chips x 8 cores x 4 threads
  const runtime::PlacementMap pm =
      runtime::PlacementMap::one_per_processor(m.topology, 12);
  EXPECT_EQ(pm.slot_of(0).chip, 0);
  EXPECT_EQ(pm.slot_of(8).chip, 1);
  EXPECT_EQ(pm.slot_of(11).chip, 1);
  EXPECT_FALSE(pm.same_processor(0, 8));
}

TEST(MultiChip, JacobiRunsAcrossChips) {
  const MachineModel m = presets::server();
  const algo::LinearSystem sys = algo::make_diagonally_dominant_system(12, 211);
  algo::JacobiOptions opt;
  opt.processes = 12;
  opt.distribution = Distribution::InterProc;  // spans 2 chips
  const auto dist = algo::jacobi_distributed(sys, m.topology, opt);
  EXPECT_TRUE(dist.solution.converged);
  const algo::JacobiResult seq = algo::jacobi_sequential(sys, 1e-10, 1000);
  for (std::size_t i = 0; i < seq.x.size(); ++i)
    EXPECT_NEAR(dist.solution.x[i], seq.x[i], 1e-8);
}

TEST(MultiChip, ChipCapBindsEvenWhenCoresFit) {
  const Topology topo{.chips = 2, .processors_per_chip = 4,
                      .threads_per_processor = 2};
  PowerEnvelope env;
  env.per_processor = 10;
  env.per_chip = 25;  // 4 cores x 10 would be 40: the chip cap binds first
  // 4 processes at power 8 on chip 0's four cores: per-core fine, chip over.
  const std::vector<double> powers{8, 8, 8, 8};
  const std::vector<int> procs{0, 1, 2, 3};
  EXPECT_FALSE(check_system(powers, procs, topo, env).feasible);
  // Spread 2+2 over both chips: fits.
  const std::vector<int> spread{0, 1, 4, 5};
  EXPECT_TRUE(check_system(powers, spread, topo, env).feasible);
}

TEST(MultiChip, SimulatorSeparatesL2PerChip) {
  MachineModel m;
  m.topology = {.chips = 2, .processors_per_chip = 2, .threads_per_processor = 2};
  m.params = {.ell_a = 1, .ell_e = 4, .g_sh_a = 0.25, .g_sh_e = 2,
              .L_a = 2, .L_e = 8, .g_mp_a = 0.5, .g_mp_e = 1};
  m.validate();
  // Two processes hammering inter-shm: same chip -> shared L2 queueing;
  // different chips -> independent L2s.
  std::vector<machine::ProcessTrace> traces(
      2, {machine::TraceOp{machine::TraceOp::Kind::ShmRead, 20, false, 0}});

  const runtime::PlacementMap same_chip =
      runtime::PlacementMap::one_per_processor(m.topology, 2);  // procs 0, 1
  const machine::SimResult contended = machine::replay(traces, same_chip, m);

  runtime::PlacementMap cross_chip(
      m.topology, {runtime::Slot{0, 0, 0}, runtime::Slot{1, 0, 0}});
  const machine::SimResult independent = machine::replay(traces, cross_chip, m);

  EXPECT_GT(contended.makespan, independent.makespan);
  // Independent chips: both finish exactly at service + latency.
  EXPECT_DOUBLE_EQ(independent.makespan, 2 * 20 + 4);
}

TEST(MultiChip, GovernorHandlesPerChipCaps) {
  const Topology topo{.chips = 2, .processors_per_chip = 4,
                      .threads_per_processor = 2};
  PowerEnvelope env;
  env.per_chip = 8;
  std::vector<double> powers(8, 4.0);  // 16 per chip nominal
  const machine::GovernorResult fit =
      machine::fit_envelope(powers, topo, env);
  EXPECT_TRUE(fit.feasible);
  for (int chip = 0; chip < 2; ++chip) {
    double demand = 0;
    for (int c = 0; c < 4; ++c)
      demand += machine::scaled_power(
          4.0, fit.points[static_cast<std::size_t>(chip * 4 + c)]);
    EXPECT_LE(demand, 8 + 1e-9);
  }
}

}  // namespace
}  // namespace stamp
