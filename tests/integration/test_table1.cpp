/// Integration: the Table 1 experiment end to end — the same workload in all
/// four (execution, communication) quadrants, with model costs attached.

#include "algo/histogram.hpp"
#include "core/core.hpp"

#include <gtest/gtest.h>

namespace stamp {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

algo::HistogramWorkload workload() {
  algo::HistogramWorkload w;
  w.processes = 8;
  w.bins = 4;
  w.items_per_process = 1000;
  w.rounds = 4;
  w.skew = 1.0;
  return w;
}

TEST(Table1, EnumerationMatchesPaper) {
  const auto& combos = table1_combinations();
  ASSERT_EQ(combos.size(), 4u);
  // Row 1: synchronous comm; row 2: asynchronous comm.
  EXPECT_EQ(combos[0].exec, ExecMode::Transactional);
  EXPECT_EQ(combos[0].comm, CommMode::Synchronous);
  EXPECT_EQ(combos[1].exec, ExecMode::Asynchronous);
  EXPECT_EQ(combos[1].comm, CommMode::Synchronous);
  EXPECT_EQ(combos[2].exec, ExecMode::Transactional);
  EXPECT_EQ(combos[2].comm, CommMode::Asynchronous);
  EXPECT_EQ(combos[3].exec, ExecMode::Asynchronous);
  EXPECT_EQ(combos[3].comm, CommMode::Asynchronous);
  EXPECT_EQ(combos[0].exec_keyword, "trans_exec");
  EXPECT_EQ(combos[0].comm_keyword, "synch_comm");
}

TEST(Table1, AllQuadrantsComputeTheSameAnswer) {
  const algo::HistogramWorkload w = workload();
  const std::vector<long long> ref = algo::histogram_reference(w);
  for (const ModeCombination& combo : table1_combinations()) {
    const algo::HistogramRunResult r =
        algo::run_histogram(kTopo, w, combo.exec, combo.comm);
    EXPECT_EQ(r.bins, ref) << combo.exec_keyword << "/" << combo.comm_keyword;
  }
}

TEST(Table1, QuadrantsDifferInModelCost) {
  const algo::HistogramWorkload w = workload();
  const MachineModel m = presets::niagara();

  std::vector<Cost> costs;
  for (const ModeCombination& combo : table1_combinations()) {
    const algo::HistogramRunResult r =
        algo::run_histogram(kTopo, w, combo.exec, combo.comm);
    costs.push_back(r.run.total_cost(r.placement, m.params, m.energy));
  }
  // The privatized async/async variant does no shared communication during
  // the parallel phase: it must be the cheapest in time and energy.
  for (std::size_t i = 0; i + 1 < costs.size(); ++i) {
    EXPECT_LT(costs[3].time, costs[i].time) << "quadrant " << i;
    EXPECT_LT(costs[3].energy, costs[i].energy) << "quadrant " << i;
  }
}

TEST(Table1, TransactionalQuadrantsShowRollbackKappa) {
  algo::HistogramWorkload w = workload();
  w.preemption_points = true;  // observable conflicts on any host
  const algo::HistogramRunResult r = algo::run_histogram(
      kTopo, w, ExecMode::Transactional, CommMode::Asynchronous);
  // kappa comes from STM retries here; with 8 processes on 4 hot bins there
  // must be at least some aborts, hence nonzero kappa somewhere.
  double max_kappa = 0;
  for (const auto& rec : r.run.recorders)
    max_kappa = std::max(max_kappa, rec.totals().kappa);
  EXPECT_GT(r.stm_aborts + static_cast<std::uint64_t>(max_kappa), 0u);
}

TEST(Table1, SynchronousQuadrantsSerializeOrBarrier) {
  const algo::HistogramWorkload w = workload();
  const algo::HistogramRunResult r = algo::run_histogram(
      kTopo, w, ExecMode::Asynchronous, CommMode::Synchronous);
  // The queued-cell variant must observe serialization under 8 writers.
  EXPECT_GE(r.worst_serialization, 1);
}

}  // namespace
}  // namespace stamp
