/// Integration: the closed-form analyses of core/analysis.hpp must agree with
/// what the instrumented runtime actually measures when the paper's
/// algorithms really execute on threads.

#include "algo/apsp.hpp"
#include "algo/jacobi.hpp"
#include "core/analysis.hpp"
#include "core/core.hpp"

#include <gtest/gtest.h>

namespace stamp {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

TEST(ModelVsRuntime, JacobiMeasuredCountsEqualAnalyticCounts) {
  const int n = 8;
  const algo::LinearSystem sys = algo::make_diagonally_dominant_system(n, 77);
  algo::JacobiOptions opt;
  opt.processes = n;
  const algo::DistributedJacobiResult dist =
      algo::jacobi_distributed(sys, kTopo, opt);

  const CostCounters analytic = analysis::jacobi_round_counters(n);
  for (const auto& rec : dist.run.recorders) {
    for (const auto& unit : rec.units()) {
      ASSERT_EQ(unit.rounds.size(), 1u);
      const CostCounters& round = unit.rounds[0];
      EXPECT_DOUBLE_EQ(round.local_ops(), analytic.local_ops());
      EXPECT_DOUBLE_EQ(round.msg_ops(), analytic.msg_ops());
    }
  }
}

TEST(ModelVsRuntime, JacobiModelTimeMatchesMeasuredCost) {
  // Evaluate the measured counters under the same (L, g) the closed form
  // uses; per-round model times must agree exactly.
  const int n = 6;
  const algo::LinearSystem sys = algo::make_diagonally_dominant_system(n, 13);
  algo::JacobiOptions opt;
  opt.processes = n;
  opt.distribution = Distribution::InterProc;
  const algo::DistributedJacobiResult dist =
      algo::jacobi_distributed(sys, kTopo, opt);

  MachineParams mp;
  mp.L_a = 0;
  mp.L_e = 5;
  mp.g_mp_a = 0;
  mp.g_mp_e = 0.5;
  mp.ell_a = 0;
  mp.ell_e = 0;
  mp.g_sh_a = 0;
  mp.g_sh_e = 0;
  const EnergyParams ep;

  const analysis::JacobiAnalysis closed =
      analysis::jacobi(n, {.L = 5, .g = 0.5}, ep);

  // All peers are inter under one_per_processor with n <= 8.
  const ProcessCounts pc{.intra = 0, .inter = n - 1};
  const auto& round = dist.run.recorders[0].units().front().rounds[0];
  const double measured_round_time = s_round_time(round, mp, pc);
  EXPECT_DOUBLE_EQ(measured_round_time, closed.T_s_round);

  const double measured_round_energy = s_round_energy(round, ep);
  EXPECT_DOUBLE_EQ(measured_round_energy, closed.E_s_round);
}

TEST(ModelVsRuntime, JacobiSUnitRespectsPaperBounds) {
  // T_S-unit >= 2n + 6/n + 7 >= 2n at the lower-bound parameters; the
  // measured unit cost evaluated at those parameters must respect it, and
  // the measured power must respect P <= (x+y) w_int.
  const int n = 8;
  const algo::LinearSystem sys = algo::make_diagonally_dominant_system(n, 5);
  algo::JacobiOptions opt;
  opt.processes = n;
  const algo::DistributedJacobiResult dist =
      algo::jacobi_distributed(sys, kTopo, opt);

  const analysis::JacobiParams lb = analysis::jacobi_lower_bound_params(n);
  MachineParams mp;
  mp.ell_a = mp.ell_e = 0;
  mp.g_sh_a = mp.g_sh_e = 0;
  mp.L_a = mp.L_e = lb.L;
  mp.g_mp_a = mp.g_mp_e = lb.g;

  const double x = 2, y = 2;
  EnergyParams ep;
  ep.w_int = 1;
  ep.w_fp = x;
  ep.w_m_s = ep.w_m_r = y;

  for (const auto& rec : dist.run.recorders) {
    const StampProcess proc = rec.to_process(Attributes{});
    const ProcessCounts pc{.intra = n - 1, .inter = 0};
    const Cost unit_cost = proc.cost(mp, ep, pc);
    const double per_unit_time =
        unit_cost.time / static_cast<double>(rec.unit_count());
    EXPECT_GE(per_unit_time + 1e-9, analysis::jacobi_T_s_unit_lower_bound(n));
    EXPECT_LE(unit_cost.power(),
              analysis::jacobi_power_upper_bound(x, y, ep.w_int) + 1e-9);
  }
}

TEST(ModelVsRuntime, ApspMeasuredReadsMatchAnalytic) {
  const int n = 6;
  const algo::Graph g = algo::make_random_graph(n, 19, 0.5);
  algo::ApspOptions opt;
  opt.comm = CommMode::Synchronous;
  opt.distribution = Distribution::InterProc;
  const algo::ApspResult r = algo::apsp_distributed(g, kTopo, opt);

  const CostCounters analytic = analysis::apsp_round_counters(n);
  for (int p = 0; p < n; ++p) {
    const auto& rec = r.run.recorders[static_cast<std::size_t>(p)];
    for (const auto& unit : rec.units()) {
      ASSERT_EQ(unit.rounds.size(), 1u);
      // Reads are exact; writes happen only on improvement, local ops exact.
      EXPECT_DOUBLE_EQ(unit.rounds[0].d_r_a + unit.rounds[0].d_r_e,
                       analytic.d_r_e);
      EXPECT_DOUBLE_EQ(unit.rounds[0].local_ops(), analytic.local_ops());
      EXPECT_LE(unit.rounds[0].d_w_a + unit.rounds[0].d_w_e, analytic.d_w_e);
    }
  }
}

TEST(ModelVsRuntime, PlacementChangesModelCostNotResults) {
  // Running the same Jacobi under intra vs inter placement must produce the
  // same solution but different model costs (the distribution trade-off).
  const int n = 8;
  const algo::LinearSystem sys = algo::make_diagonally_dominant_system(n, 3);
  algo::JacobiOptions intra;
  intra.processes = 8;
  intra.distribution = Distribution::IntraProc;
  algo::JacobiOptions inter = intra;
  inter.distribution = Distribution::InterProc;

  const auto r_intra = algo::jacobi_distributed(sys, kTopo, intra);
  const auto r_inter = algo::jacobi_distributed(sys, kTopo, inter);

  for (std::size_t i = 0; i < r_intra.solution.x.size(); ++i)
    EXPECT_DOUBLE_EQ(r_intra.solution.x[i], r_inter.solution.x[i]);

  const MachineModel m = presets::niagara();
  const Cost c_intra =
      r_intra.run.total_cost(r_intra.placement, m.params, m.energy);
  const Cost c_inter =
      r_inter.run.total_cost(r_inter.placement, m.params, m.energy);
  EXPECT_LT(c_intra.time, c_inter.time);       // intra communication is faster
  EXPECT_DOUBLE_EQ(c_intra.energy, c_inter.energy);  // same ops, same energy
}

TEST(ModelVsRuntime, EnvelopeDecisionFromMeasurement) {
  // Close the loop of the paper's power-envelope example: measure Jacobi,
  // compute per-thread power, derive the admissible thread count, and check
  // it against the closed-form 3-of-4 answer.
  const int n = 8;
  const algo::LinearSystem sys = algo::make_diagonally_dominant_system(n, 7);
  algo::JacobiOptions opt;
  opt.processes = n;
  const auto dist = algo::jacobi_distributed(sys, kTopo, opt);

  const double x = 2, y = 2;
  EnergyParams ep;
  ep.w_int = 1;
  ep.w_fp = x;
  ep.w_m_s = ep.w_m_r = y;
  const analysis::JacobiParams lb = analysis::jacobi_lower_bound_params(n);
  MachineParams mp;
  mp.ell_a = mp.ell_e = 0;
  mp.g_sh_a = mp.g_sh_e = 0;
  mp.L_a = mp.L_e = lb.L;
  mp.g_mp_a = mp.g_mp_e = lb.g;

  const StampProcess proc = dist.run.recorders[0].to_process(Attributes{});
  const Cost c = proc.cost(mp, ep, {.intra = n - 1, .inter = 0});
  const double measured_power = c.power();

  PowerEnvelope env;
  env.per_processor = 3 * (x + y) * ep.w_int;
  const int admissible = max_processes_per_processor(measured_power, env, 4);
  // Measured power is below the analytic bound, so at least 3 threads fit;
  // the paper's conclusion is that not more than 3 *bound-level* threads do.
  EXPECT_GE(admissible, 3);
  EXPECT_EQ(analysis::jacobi_max_threads_per_processor(
                x, y, ep.w_int, env.per_processor, 4),
            3);
}

}  // namespace
}  // namespace stamp
