#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stamp::sim {
namespace {

TEST(Engine, StartsAtTimeZeroEmpty) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0);
  EXPECT_TRUE(e.empty());
  EXPECT_FALSE(e.step());
}

TEST(Engine, EventsRunInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(5, [&](Engine&) { order.push_back(2); });
  e.schedule_at(1, [&](Engine&) { order.push_back(1); });
  e.schedule_at(9, [&](Engine&) { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 9);
}

TEST(Engine, SimultaneousEventsAreFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    e.schedule_at(4, [&, i](Engine&) { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double fired_at = -1;
  e.schedule_at(10, [&](Engine& eng) {
    eng.schedule_in(5, [&](Engine& inner) { fired_at = inner.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 15);
}

TEST(Engine, PastSchedulingRejected) {
  Engine e;
  e.schedule_at(10, [](Engine&) {});
  (void)e.step();
  EXPECT_THROW(e.schedule_at(5, [](Engine&) {}), std::invalid_argument);
  EXPECT_THROW(e.schedule_in(-1, [](Engine&) {}), std::invalid_argument);
}

TEST(Engine, CascadedEventsAllRun) {
  Engine e;
  int count = 0;
  std::function<void(Engine&)> chain = [&](Engine& eng) {
    ++count;
    if (count < 100) eng.schedule_in(1, chain);
  };
  e.schedule_at(0, chain);
  const std::size_t processed = e.run();
  EXPECT_EQ(processed, 100u);
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(e.now(), 99);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  for (int t = 0; t < 10; ++t)
    e.schedule_at(t, [&](Engine&) { ++fired; });
  (void)e.run_until(4.5);
  EXPECT_EQ(fired, 5);  // t = 0..4
  EXPECT_DOUBLE_EQ(e.now(), 4.5);
  EXPECT_EQ(e.pending(), 5u);
}

TEST(Engine, EventBudgetGuardsRunaway) {
  Engine e;
  std::function<void(Engine&)> forever = [&](Engine& eng) {
    eng.schedule_in(1, forever);
  };
  e.schedule_at(0, forever);
  EXPECT_THROW(e.run(1000), std::runtime_error);
}

TEST(FifoServer, IdleServerServesImmediately) {
  FifoServer s;
  EXPECT_DOUBLE_EQ(s.serve(10, 3), 13);
  EXPECT_DOUBLE_EQ(s.next_free(), 13);
}

TEST(FifoServer, BusyServerQueues) {
  FifoServer s;
  (void)s.serve(0, 10);
  // Arrives at 2 while busy until 10: starts at 10, done at 15.
  EXPECT_DOUBLE_EQ(s.serve(2, 5), 15);
}

TEST(FifoServer, GapsLeaveServerIdle) {
  FifoServer s;
  (void)s.serve(0, 1);
  EXPECT_DOUBLE_EQ(s.serve(100, 1), 101);
  EXPECT_DOUBLE_EQ(s.busy_time(), 2);
}

TEST(FifoServer, NegativeServiceRejected) {
  FifoServer s;
  EXPECT_THROW((void)s.serve(0, -1), std::invalid_argument);
}

// Property: total busy time equals the sum of service times regardless of
// arrival pattern.
class FifoServerTest : public ::testing::TestWithParam<int> {};

TEST_P(FifoServerTest, BusyTimeAdds) {
  const int n = GetParam();
  FifoServer s;
  double total = 0;
  for (int i = 0; i < n; ++i) {
    const double service = (i % 7) * 0.5;
    (void)s.serve((i * 13) % 50, service);
    total += service;
  }
  EXPECT_DOUBLE_EQ(s.busy_time(), total);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FifoServerTest, ::testing::Values(1, 5, 50, 500));

}  // namespace
}  // namespace stamp::sim
