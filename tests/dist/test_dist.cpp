#include "dist/dist.hpp"

#include "api/stamp.hpp"
#include "serve/protocol.hpp"
#include "serve/serve.hpp"
#include "sweep/journal.hpp"
#include "sweep/sweep.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace stamp::dist {
namespace {

namespace sw = stamp::sweep;

sw::SweepResult clean_sweep(const sw::SweepConfig& cfg) {
  sw::SweepOptions opts;
  opts.threads = 1;
  const Evaluator eval({.machine = cfg.base, .objective = cfg.objective});
  return eval.sweep(cfg, opts);
}

std::vector<std::string> axis_names(const sw::SweepConfig& cfg) {
  std::vector<std::string> names;
  for (const auto& axis : cfg.grid.axes()) names.push_back(axis.name);
  return names;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(testing::TempDir()) / name).string();
}

// The artifact's canonical number formatting: every JSON writer in the repo
// prints doubles at precision 15, and 15-significant-digit decimals round-trip
// decimal -> double -> decimal exactly — which is what makes a journal replay
// of wire-decoded records byte-identical to a local sweep.
std::string fmt15(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.15g", v);
  return buf;
}

// -- plan_shards --------------------------------------------------------------

TEST(PlanShards, CoversTheGridInContiguousCappedRuns) {
  const sw::SweepConfig cfg = sw::SweepConfig::tiny();  // 16 points
  const std::vector<ShardPlan> shards = plan_shards(cfg, nullptr, 5);
  ASSERT_EQ(shards.size(), 4u);
  EXPECT_EQ(shards[0], (ShardPlan{0, 0, 5}));
  EXPECT_EQ(shards[1], (ShardPlan{1, 5, 10}));
  EXPECT_EQ(shards[2], (ShardPlan{2, 10, 15}));
  EXPECT_EQ(shards[3], (ShardPlan{3, 15, 16}));
}

TEST(PlanShards, ZeroPointsPerShardClampsToOne) {
  const sw::SweepConfig cfg = sw::SweepConfig::tiny();
  const std::vector<ShardPlan> shards = plan_shards(cfg, nullptr, 0);
  ASSERT_EQ(shards.size(), cfg.grid.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i].begin, i);
    EXPECT_EQ(shards[i].end, i + 1);
  }
}

TEST(PlanShards, ResumedPointsNeverReappearInAShard) {
  const sw::SweepConfig cfg = sw::SweepConfig::tiny();
  const sw::SweepResult full = clean_sweep(cfg);

  // Journal a middle run [3, 11) as already completed.
  const std::string path = temp_path("dist_plan_resume.journal");
  std::filesystem::remove(path);
  {
    sw::Journal journal(path, cfg);
    for (std::size_t i = 3; i < 11; ++i) journal.append(full.records[i]);
  }
  const sw::ResumeState resume = sw::ResumeState::load(path, cfg);
  ASSERT_EQ(resume.completed_points(), 8u);

  const std::vector<ShardPlan> shards = plan_shards(cfg, &resume, 4);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0], (ShardPlan{0, 0, 3}));
  EXPECT_EQ(shards[1], (ShardPlan{1, 11, 15}));
  EXPECT_EQ(shards[2], (ShardPlan{2, 15, 16}));
  std::filesystem::remove(path);
}

// -- wire decoding ------------------------------------------------------------

TEST(Wire, ResponseIdFindsTheIdWithoutAFullDecode) {
  EXPECT_EQ(response_id(R"({"schema":"stamp-serve/v1","id":42,"status":200})"),
            42u);
  EXPECT_EQ(response_id(serve::error_response(9, 503, "draining")), 9u);
  EXPECT_EQ(response_id("not json at all"), std::nullopt);
  EXPECT_EQ(response_id(R"({"status":200})"), std::nullopt);
}

TEST(Wire, DecodeReanchorsAxesExactlyAndMetricsToArtifactPrecision) {
  const sw::SweepConfig cfg = sw::SweepConfig::tiny();
  const sw::SweepResult full = clean_sweep(cfg);
  const std::vector<std::string> names = axis_names(cfg);

  const std::string line = serve::ok_sweep_chunk(
      7, names, 4, std::span<const sw::SweepRecord>(full.records).subspan(4, 6));
  const ChunkResult chunk = decode_sweep_chunk(line, cfg);
  EXPECT_EQ(chunk.id, 7u);
  EXPECT_EQ(chunk.status, 200);
  EXPECT_EQ(chunk.begin, 4u);
  EXPECT_EQ(chunk.end, 10u);
  ASSERT_EQ(chunk.records.size(), 6u);
  for (std::size_t i = 0; i < chunk.records.size(); ++i) {
    const sw::SweepRecord& got = chunk.records[i];
    const sw::SweepRecord& want = full.records[4 + i];
    EXPECT_EQ(got.index, want.index);
    ASSERT_EQ(got.params.size(), want.params.size());
    // Re-anchoring means *exact* doubles, not round-tripped approximations.
    for (std::size_t a = 0; a < got.params.size(); ++a)
      EXPECT_EQ(got.params[a], want.params[a]);
    EXPECT_EQ(got.processes, want.processes);
    EXPECT_EQ(got.feasible, want.feasible);
    // Metrics cross the wire at precision 15 — bit-identity of the double is
    // not the contract; identity of the artifact bytes it prints as is.
    EXPECT_EQ(fmt15(got.metrics.D), fmt15(want.metrics.D));
    EXPECT_EQ(fmt15(got.metrics.PDP), fmt15(want.metrics.PDP));
    EXPECT_EQ(fmt15(got.metrics.EDP), fmt15(want.metrics.EDP));
    EXPECT_EQ(fmt15(got.metrics.ED2P), fmt15(want.metrics.ED2P));
    for (std::size_t m = 0; m < got.classical.size(); ++m)
      EXPECT_EQ(fmt15(got.classical[m]), fmt15(want.classical[m]));
  }
}

TEST(Wire, NonOkStatusCarriesTheErrorInsteadOfThrowing) {
  const sw::SweepConfig cfg = sw::SweepConfig::tiny();
  const ChunkResult chunk =
      decode_sweep_chunk(serve::error_response(3, 503, "draining"), cfg);
  EXPECT_EQ(chunk.id, 3u);
  EXPECT_EQ(chunk.status, 503);
  EXPECT_EQ(chunk.error, "draining");
  EXPECT_TRUE(chunk.records.empty());
}

TEST(Wire, MalformedLinesAndProtocolViolationsThrow) {
  const sw::SweepConfig cfg = sw::SweepConfig::tiny();
  const sw::SweepResult full = clean_sweep(cfg);
  const std::vector<std::string> names = axis_names(cfg);
  const std::string good = serve::ok_sweep_chunk(
      1, names, 0, std::span<const sw::SweepRecord>(full.records).subspan(0, 4));

  EXPECT_THROW(decode_sweep_chunk("{not json", cfg), WireError);
  EXPECT_THROW(decode_sweep_chunk(R"({"id":1,"status":200,"op":"evaluate"})",
                                  cfg),
               WireError);

  // Shift the claimed range: the points' own indexes no longer line up.
  std::string shifted = good;
  const std::size_t at = shifted.find("\"begin\":0");
  ASSERT_NE(at, std::string::npos);
  shifted.replace(at, 9, "\"begin\":1");
  EXPECT_THROW(decode_sweep_chunk(shifted, cfg), WireError);

  // Tamper with an axis value: the fmt15 grid check must reject the point.
  sw::SweepRecord forged = full.records[0];
  forged.params[0] += 1.0;
  const std::string bad_axis = serve::ok_sweep_chunk(
      1, names, 0, std::span<const sw::SweepRecord>(&forged, 1));
  EXPECT_THROW(decode_sweep_chunk(bad_axis, cfg), WireError);

  // A point claiming an index outside the grid.
  sw::SweepRecord outside = full.records[0];
  outside.index = cfg.grid.size() + 3;
  const std::string bad_index = serve::ok_sweep_chunk(
      1, names, cfg.grid.size() + 3,
      std::span<const sw::SweepRecord>(&outside, 1));
  EXPECT_THROW(decode_sweep_chunk(bad_index, cfg), WireError);
}

// -- the coordinator against real in-process servers --------------------------

TEST(Coordinator, RequiresAtLeastOneWorker) {
  EXPECT_THROW(Coordinator(sw::SweepConfig::tiny(), FleetOptions{}),
               std::invalid_argument);
}

TEST(Coordinator, FleetJournalReplaysToTheSingleNodeArtifact) {
  const sw::SweepConfig cfg = sw::SweepConfig::tiny();
  const std::string want = sw::to_json(clean_sweep(cfg));

  FleetOptions fleet;
  std::vector<std::unique_ptr<serve::Server>> servers;
  for (int i = 0; i < 2; ++i) {
    serve::ServerOptions options;
    options.port = 0;
    options.workers = 1;
    options.engine.grid = "tiny";
    servers.push_back(std::make_unique<serve::Server>(options));
    servers.back()->start();
    fleet.ports.push_back(servers.back()->port());
  }
  fleet.points_per_shard = 4;

  const std::string path = temp_path("dist_coordinator.journal");
  std::filesystem::remove(path);
  FleetStats stats;
  {
    sw::Journal journal(path, cfg);
    Coordinator coordinator(cfg, fleet);
    stats = coordinator.run(journal, nullptr);
  }
  for (auto& server : servers) server->drain();

  EXPECT_EQ(stats.shards, 4u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.records, cfg.grid.size());
  EXPECT_EQ(stats.worker_failures, 0u);
  EXPECT_FALSE(stats.cancelled);

  const sw::ResumeState merged = sw::ResumeState::load(path, cfg);
  ASSERT_EQ(merged.completed_points(), cfg.grid.size());
  sw::SweepOptions opts;
  opts.resume = &merged;
  opts.threads = 1;
  const Evaluator eval({.machine = cfg.base, .objective = cfg.objective});
  EXPECT_EQ(sw::to_json(eval.sweep(cfg, opts)), want);
  std::filesystem::remove(path);
}

// A resumed coordinator only dispatches the missing points, and the merged
// journal still replays to the single-node bytes — the coordinator-kill
// half of the fleet-chaos contract, minus the process boundary.
TEST(Coordinator, ResumeDispatchesOnlyMissingPoints) {
  const sw::SweepConfig cfg = sw::SweepConfig::tiny();
  const sw::SweepResult full = clean_sweep(cfg);
  const std::string want = sw::to_json(full);

  const std::string path = temp_path("dist_coordinator_resume.journal");
  std::filesystem::remove(path);
  {
    sw::Journal journal(path, cfg);
    for (std::size_t i = 0; i < 10; ++i) journal.append(full.records[i]);
  }
  const sw::ResumeState resume = sw::ResumeState::load(path, cfg);

  serve::ServerOptions options;
  options.port = 0;
  options.workers = 1;
  options.engine.grid = "tiny";
  serve::Server server(options);
  server.start();
  FleetOptions fleet;
  fleet.ports.push_back(server.port());
  fleet.points_per_shard = 4;

  FleetStats stats;
  {
    sw::Journal journal(path, cfg, &resume);
    Coordinator coordinator(cfg, fleet);
    stats = coordinator.run(journal, &resume);
  }
  server.drain();

  EXPECT_EQ(stats.shards, 2u);  // [10,14) and [14,16)
  EXPECT_EQ(stats.records, 6u);

  const sw::ResumeState merged = sw::ResumeState::load(path, cfg);
  ASSERT_EQ(merged.completed_points(), cfg.grid.size());
  sw::SweepOptions opts;
  opts.resume = &merged;
  opts.threads = 1;
  const Evaluator eval({.machine = cfg.base, .objective = cfg.objective});
  EXPECT_EQ(sw::to_json(eval.sweep(cfg, opts)), want);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace stamp::dist
