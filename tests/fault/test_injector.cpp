#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

namespace stamp::fault {
namespace {

/// Arm/disarm the global injector for one test, guaranteeing cleanup.
class ArmedPlan {
 public:
  explicit ArmedPlan(const FaultPlan& plan) { Injector::global().arm(plan); }
  ~ArmedPlan() { Injector::global().disarm(); }
};

std::vector<bool> schedule_of(FaultSite site, std::uint64_t key, int n) {
  std::vector<bool> fired;
  fired.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    fired.push_back(Injector::global().decide(site, key).has_value());
  return fired;
}

TEST(Injector, DisarmedNeverFiresAndFlagIsOff) {
  Injector::global().disarm();
  EXPECT_FALSE(injection_enabled());
  EXPECT_FALSE(Injector::global().decide(FaultSite::StmAbort, 0).has_value());
}

TEST(Injector, ArmSetsFlagAndDisarmClearsIt) {
  FaultPlan plan;
  plan.with(FaultSite::StmAbort, 0.5);
  const ArmedPlan armed(plan);
  EXPECT_TRUE(injection_enabled());
  EXPECT_TRUE(Injector::global().armed());
  Injector::global().disarm();
  EXPECT_FALSE(injection_enabled());
}

TEST(Injector, SameSeedGivesSameSchedule) {
  FaultPlan plan;
  plan.seed = 42;
  plan.with(FaultSite::MsgDrop, 0.3);

  std::vector<bool> first;
  {
    const ArmedPlan armed(plan);
    first = schedule_of(FaultSite::MsgDrop, 7, 200);
  }
  {
    const ArmedPlan armed(plan);
    EXPECT_EQ(schedule_of(FaultSite::MsgDrop, 7, 200), first);
  }

  int fired = 0;
  for (const bool f : first) fired += f ? 1 : 0;
  EXPECT_GT(fired, 0);    // p=0.3 over 200 decisions must fire sometimes
  EXPECT_LT(fired, 200);  // ... and must not always fire
}

TEST(Injector, DifferentSeedsGiveDifferentSchedules) {
  FaultPlan a;
  a.seed = 1;
  a.with(FaultSite::MsgDrop, 0.5);
  FaultPlan b = a;
  b.seed = 2;

  std::vector<bool> sa;
  {
    const ArmedPlan armed(a);
    sa = schedule_of(FaultSite::MsgDrop, 0, 100);
  }
  const ArmedPlan armed(b);
  EXPECT_NE(schedule_of(FaultSite::MsgDrop, 0, 100), sa);
}

TEST(Injector, SitesAndKeysAreIndependentStreams) {
  FaultPlan plan;
  plan.seed = 9;
  plan.with(FaultSite::MsgDrop, 0.5).with(FaultSite::MsgDuplicate, 0.5);

  std::vector<bool> drop_alone;
  {
    const ArmedPlan armed(plan);
    drop_alone = schedule_of(FaultSite::MsgDrop, 3, 100);
  }
  // Interleaving decisions on another site and another key must not perturb
  // the (MsgDrop, key 3) stream.
  const ArmedPlan armed(plan);
  std::vector<bool> drop_interleaved;
  for (int i = 0; i < 100; ++i) {
    static_cast<void>(Injector::global().decide(FaultSite::MsgDuplicate, 3));
    static_cast<void>(Injector::global().decide(FaultSite::MsgDrop, 4));
    drop_interleaved.push_back(
        Injector::global().decide(FaultSite::MsgDrop, 3).has_value());
  }
  EXPECT_EQ(drop_interleaved, drop_alone);
}

TEST(Injector, OnlyKeyTargetsASingleActor) {
  FaultPlan plan;
  plan.with(FaultSite::ProcFailStop, 1.0, 0, /*max_per_key=*/1,
            /*only_key=*/2);
  const ArmedPlan armed(plan);
  EXPECT_FALSE(
      Injector::global().decide(FaultSite::ProcFailStop, 0).has_value());
  EXPECT_FALSE(
      Injector::global().decide(FaultSite::ProcFailStop, 1).has_value());
  EXPECT_TRUE(
      Injector::global().decide(FaultSite::ProcFailStop, 2).has_value());
  // max_per_key=1: the targeted key fires exactly once.
  EXPECT_FALSE(
      Injector::global().decide(FaultSite::ProcFailStop, 2).has_value());
  EXPECT_EQ(Injector::global().injected(FaultSite::ProcFailStop), 1u);
}

TEST(Injector, MaxPerKeyCapsEachKeySeparately) {
  FaultPlan plan;
  plan.with(FaultSite::StmAbort, 1.0, 0, /*max_per_key=*/3);
  const ArmedPlan armed(plan);
  for (std::uint64_t key = 0; key < 2; ++key) {
    int fired = 0;
    for (int i = 0; i < 10; ++i)
      fired += Injector::global().decide(FaultSite::StmAbort, key) ? 1 : 0;
    EXPECT_EQ(fired, 3) << "key " << key;
  }
  EXPECT_EQ(Injector::global().injected(FaultSite::StmAbort), 6u);
  EXPECT_EQ(Injector::global().decisions(FaultSite::StmAbort), 20u);
}

TEST(Injector, MagnitudeIsDeliveredVerbatim) {
  FaultPlan plan;
  plan.with(FaultSite::SimLatencySpike, 1.0, 4.5);
  const ArmedPlan armed(plan);
  const auto injection =
      Injector::global().decide(FaultSite::SimLatencySpike, 0);
  ASSERT_TRUE(injection.has_value());
  EXPECT_DOUBLE_EQ(injection->magnitude, 4.5);
}

TEST(Injector, ActorScopeKeysDecideHere) {
  FaultPlan plan;
  plan.with(FaultSite::MsgDrop, 1.0, 0, /*max_per_key=*/1, /*only_key=*/5);
  const ArmedPlan armed(plan);
  EXPECT_EQ(current_actor(), 0u);
  {
    const ActorScope scope(5);
    EXPECT_EQ(current_actor(), 5u);
    EXPECT_TRUE(Injector::global().decide_here(FaultSite::MsgDrop));
    {
      const ActorScope inner(6);
      EXPECT_EQ(current_actor(), 6u);
      EXPECT_FALSE(Injector::global().decide_here(FaultSite::MsgDrop));
    }
    EXPECT_EQ(current_actor(), 5u);  // nesting restores the outer key
  }
  EXPECT_EQ(current_actor(), 0u);
}

TEST(Injector, ParallelScheduleMatchesSerialSchedule) {
  // Each actor draws its own decision stream; running four actors on four
  // threads must give every actor exactly the schedule it gets serially.
  constexpr int kActors = 4;
  constexpr int kDecisions = 100;
  FaultPlan plan;
  plan.seed = 7;
  plan.with(FaultSite::MsgDrop, 0.4);

  std::vector<std::vector<bool>> serial(kActors);
  {
    const ArmedPlan armed(plan);
    for (int a = 0; a < kActors; ++a)
      serial[static_cast<std::size_t>(a)] =
          schedule_of(FaultSite::MsgDrop, static_cast<std::uint64_t>(a),
                      kDecisions);
  }

  const ArmedPlan armed(plan);
  std::vector<std::vector<bool>> parallel(kActors);
  std::vector<std::thread> threads;
  threads.reserve(kActors);
  for (int a = 0; a < kActors; ++a) {
    threads.emplace_back([a, &parallel] {
      const ActorScope scope(static_cast<std::uint64_t>(a));
      auto& mine = parallel[static_cast<std::size_t>(a)];
      mine.reserve(kDecisions);
      for (int i = 0; i < kDecisions; ++i)
        mine.push_back(
            Injector::global().decide_here(FaultSite::MsgDrop).has_value());
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(parallel, serial);
}

TEST(Injector, InjectedBySiteListsOnlyFiringSites) {
  FaultPlan plan;
  plan.with(FaultSite::StmAbort, 1.0).with(FaultSite::MsgDrop, 0.0);
  const ArmedPlan armed(plan);
  static_cast<void>(Injector::global().decide(FaultSite::StmAbort, 0));
  static_cast<void>(Injector::global().decide(FaultSite::MsgDrop, 0));
  const auto by_site = Injector::global().injected_by_site();
  ASSERT_EQ(by_site.size(), 1u);
  EXPECT_EQ(by_site[0].first, "stm_abort");
  EXPECT_EQ(by_site[0].second, 1u);
}

TEST(Injector, ArmValidatesThePlan) {
  FaultPlan bad;
  bad.with(FaultSite::StmAbort, 2.0);  // probability outside [0, 1]
  EXPECT_THROW(Injector::global().arm(bad), std::invalid_argument);
  EXPECT_FALSE(injection_enabled());
}

TEST(Injector, SuppressedCountsOnlyKeyFiltering) {
  FaultPlan plan;
  plan.with(FaultSite::MsgDrop, 1.0, 0, /*max_per_key=*/0xFFFFFFFFFFFFFFFFull,
            /*only_key=*/7);
  const ArmedPlan armed(plan);
  static_cast<void>(Injector::global().decide(FaultSite::MsgDrop, 1));
  static_cast<void>(Injector::global().decide(FaultSite::MsgDrop, 2));
  static_cast<void>(Injector::global().decide(FaultSite::MsgDrop, 7));
  // Keys 1 and 2 were reached but filtered; key 7 fired.
  EXPECT_EQ(Injector::global().suppressed(FaultSite::MsgDrop), 2u);
  EXPECT_EQ(Injector::global().injected(FaultSite::MsgDrop), 1u);
}

TEST(Injector, SuppressedCountsMaxPerKeyExhaustion) {
  FaultPlan plan;
  plan.with(FaultSite::StmAbort, 1.0, 0, /*max_per_key=*/2);
  const ArmedPlan armed(plan);
  for (int i = 0; i < 5; ++i)
    static_cast<void>(Injector::global().decide(FaultSite::StmAbort, 0));
  // p=1.0: every decision wants to fire; 2 fire, 3 hit the spent budget.
  EXPECT_EQ(Injector::global().injected(FaultSite::StmAbort), 2u);
  EXPECT_EQ(Injector::global().suppressed(FaultSite::StmAbort), 3u);
  EXPECT_EQ(Injector::global().decisions(FaultSite::StmAbort), 5u);
}

TEST(Injector, RecordedScheduleReplaysVerbatim) {
  FaultPlan plan;
  plan.seed = 11;
  plan.with(FaultSite::MsgDrop, 0.3);
  Injector::global().arm(plan);
  const std::vector<bool> original = schedule_of(FaultSite::MsgDrop, 5, 100);
  const Schedule recorded = Injector::global().recorded();
  ASSERT_FALSE(recorded.empty());

  Injector::global().arm_replay(recorded);
  EXPECT_EQ(Injector::global().mode(), Injector::Mode::Replay);
  EXPECT_EQ(schedule_of(FaultSite::MsgDrop, 5, 100), original);
  // The replay's own record matches what it was fed.
  EXPECT_EQ(Injector::global().recorded(), recorded);
  Injector::global().disarm();
}

TEST(Injector, ReplayCarriesRecordedMagnitudes) {
  Schedule schedule;
  schedule.entries.push_back({FaultSite::SimLatencySpike, 0, 1, 7.25});
  Injector::global().arm_replay(schedule);
  EXPECT_FALSE(
      Injector::global().decide(FaultSite::SimLatencySpike, 0).has_value());
  const auto injection =
      Injector::global().decide(FaultSite::SimLatencySpike, 0);
  ASSERT_TRUE(injection.has_value());
  EXPECT_DOUBLE_EQ(injection->magnitude, 7.25);
  Injector::global().disarm();
}

TEST(Injector, EmptyReplayObservesStreamsWithoutFiring) {
  Injector::global().arm_replay(Schedule{});
  EXPECT_TRUE(injection_enabled());  // observe mode must count streams
  for (int i = 0; i < 3; ++i)
    EXPECT_FALSE(Injector::global().decide(FaultSite::StmAbort, 4).has_value());
  static_cast<void>(Injector::global().decide(FaultSite::MsgDrop, 9));
  const auto streams = Injector::global().observed_streams();
  ASSERT_EQ(streams.size(), 2u);
  EXPECT_EQ(streams[0].site, FaultSite::StmAbort);  // site order before key
  EXPECT_EQ(streams[0].key, 4u);
  EXPECT_EQ(streams[0].decisions, 3u);
  EXPECT_EQ(streams[0].injected, 0u);
  EXPECT_EQ(streams[1].site, FaultSite::MsgDrop);
  EXPECT_EQ(streams[1].key, 9u);
  Injector::global().disarm();
}

TEST(Injector, InjectorScopeOverridesCurrentPerThread) {
  Injector trial;
  Schedule schedule;
  schedule.entries.push_back({FaultSite::TestProbe, 0, 0, 0.0});
  trial.arm_replay(schedule);

  EXPECT_EQ(&Injector::current(), &Injector::global());
  {
    const InjectorScope scope(trial);
    EXPECT_EQ(&Injector::current(), &trial);
    EXPECT_TRUE(
        Injector::current().decide(FaultSite::TestProbe, 0).has_value());
    // Another thread without the scope still sees the global injector.
    std::thread([] {
      EXPECT_EQ(&Injector::current(), &Injector::global());
    }).join();
  }
  EXPECT_EQ(&Injector::current(), &Injector::global());
  EXPECT_EQ(trial.injected(FaultSite::TestProbe), 1u);
  EXPECT_EQ(Injector::global().injected(FaultSite::TestProbe), 0u);
}

TEST(Injector, ArmedInjectorsKeepEnabledUntilAllDisarm) {
  EXPECT_FALSE(injection_enabled());
  {
    Injector a;
    Injector b;
    a.arm_replay(Schedule{});
    b.arm_replay(Schedule{});
    EXPECT_TRUE(injection_enabled());
    a.disarm();
    EXPECT_TRUE(injection_enabled());  // b still armed
    b.disarm();
    EXPECT_FALSE(injection_enabled());
    a.arm_replay(Schedule{});  // destructor of an armed injector also drops it
  }
  EXPECT_FALSE(injection_enabled());
}

TEST(Injector, ArmResetsCounters) {
  FaultPlan plan;
  plan.with(FaultSite::StmAbort, 1.0);
  Injector::global().arm(plan);
  static_cast<void>(Injector::global().decide(FaultSite::StmAbort, 0));
  EXPECT_EQ(Injector::global().injected(FaultSite::StmAbort), 1u);
  Injector::global().arm(plan);  // re-arm: counters and key state reset
  EXPECT_EQ(Injector::global().injected(FaultSite::StmAbort), 0u);
  EXPECT_EQ(Injector::global().decisions(FaultSite::StmAbort), 0u);
  Injector::global().disarm();
}

}  // namespace
}  // namespace stamp::fault
