#include "fault/schedule.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace stamp::fault {
namespace {

Schedule sample() {
  Schedule s;
  s.entries.push_back({FaultSite::MsgDrop, 3, 1, 0.0});
  s.entries.push_back({FaultSite::StmAbort, 0, 2, 1.5});
  s.entries.push_back({FaultSite::StmAbort, 0, 0, 0.0});
  return s;
}

TEST(Schedule, CanonicalizeSortsBySiteKeyDecision) {
  Schedule s = sample();
  s.canonicalize();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.entries[0].site, FaultSite::StmAbort);
  EXPECT_EQ(s.entries[0].decision, 0u);
  EXPECT_EQ(s.entries[1].site, FaultSite::StmAbort);
  EXPECT_EQ(s.entries[1].decision, 2u);
  EXPECT_EQ(s.entries[2].site, FaultSite::MsgDrop);
}

TEST(Schedule, CanonicalizeDropsDuplicateTriplesKeepingFirstMagnitude) {
  Schedule s;
  s.entries.push_back({FaultSite::MsgDelay, 1, 4, 100.0});
  s.entries.push_back({FaultSite::MsgDelay, 1, 4, 999.0});  // same triple
  s.canonicalize();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.entries[0].magnitude, 100.0);
}

TEST(Schedule, JsonRoundTripsCanonically) {
  Schedule s = sample();
  s.canonicalize();
  const Schedule back = Schedule::from_json(s.to_json());
  EXPECT_EQ(back, s);
  // Byte-stable: serializing the parse reproduces the document.
  EXPECT_EQ(back.to_json(), s.to_json());
}

TEST(Schedule, EmptyScheduleRoundTrips) {
  const Schedule empty;
  EXPECT_TRUE(empty.empty());
  const Schedule back = Schedule::from_json(empty.to_json());
  EXPECT_TRUE(back.empty());
}

TEST(Schedule, FromJsonRejectsUnknownSite) {
  const std::string text =
      R"({"schema":"stamp-schedule/v1","entries":[)"
      R"({"site":"no_such_site","key":0,"decision":0,"magnitude":0}]})";
  EXPECT_THROW(static_cast<void>(Schedule::from_json(text)),
               std::invalid_argument);
}

TEST(Schedule, FromJsonRejectsWrongSchema) {
  EXPECT_THROW(static_cast<void>(Schedule::from_json(
                   R"({"schema":"stamp-chaos/v1","entries":[]})")),
               std::invalid_argument);
}

TEST(Schedule, FromJsonRejectsMissingFields) {
  const std::string text =
      R"({"schema":"stamp-schedule/v1","entries":[{"site":"stm_abort"}]})";
  EXPECT_THROW(static_cast<void>(Schedule::from_json(text)),
               std::invalid_argument);
}

TEST(Schedule, FromJsonRejectsNegativeNumbers) {
  const std::string text =
      R"({"schema":"stamp-schedule/v1","entries":[)"
      R"({"site":"stm_abort","key":-1,"decision":0,"magnitude":0}]})";
  EXPECT_THROW(static_cast<void>(Schedule::from_json(text)),
               std::invalid_argument);
}

TEST(Schedule, FromJsonRejectsMalformedJson) {
  EXPECT_ANY_THROW(static_cast<void>(Schedule::from_json("{not json")));
}

TEST(Schedule, MergeUnionsAndCanonicalizes) {
  Schedule a;
  a.entries.push_back({FaultSite::StmAbort, 0, 1, 0.0});
  Schedule b;
  b.entries.push_back({FaultSite::StmAbort, 0, 0, 0.0});
  b.entries.push_back({FaultSite::StmAbort, 0, 1, 0.0});  // duplicate of a's
  const Schedule merged = merge_schedules(a, b);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.entries[0].decision, 0u);
  EXPECT_EQ(merged.entries[1].decision, 1u);
}

}  // namespace
}  // namespace stamp::fault
