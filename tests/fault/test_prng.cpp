#include "fault/prng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace stamp::fault {
namespace {

TEST(FaultPrng, Mix64IsDeterministicAndNontrivial) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(mix64(0), 0u);  // the finalizer must not fix the common seed 0
}

TEST(FaultPrng, Mix64AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits; require
  // at least a quarter for every low bit position (a weak but cheap check).
  for (int bit = 0; bit < 16; ++bit) {
    const std::uint64_t a = mix64(0x1234'5678'9ABC'DEF0ull);
    const std::uint64_t b = mix64(0x1234'5678'9ABC'DEF0ull ^ (1ull << bit));
    int flipped = 0;
    for (std::uint64_t diff = a ^ b; diff != 0; diff &= diff - 1) ++flipped;
    EXPECT_GE(flipped, 16) << "bit " << bit;
  }
}

TEST(FaultPrng, CounterDrawIsPureInAllThreeInputs) {
  const std::uint64_t base = counter_draw(7, 11, 13);
  EXPECT_EQ(base, counter_draw(7, 11, 13));
  EXPECT_NE(base, counter_draw(8, 11, 13));
  EXPECT_NE(base, counter_draw(7, 12, 13));
  EXPECT_NE(base, counter_draw(7, 11, 14));
}

TEST(FaultPrng, CounterDrawStreamsDontCollideEarly) {
  // Distinct (stream, counter) pairs should yield distinct draws over a
  // small grid — a sanity check against accidental stream aliasing.
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 8; ++stream)
    for (std::uint64_t counter = 0; counter < 64; ++counter)
      seen.insert(counter_draw(42, stream, counter));
  EXPECT_EQ(seen.size(), 8u * 64u);
}

TEST(FaultPrng, U01CoversTheUnitIntervalHalfOpen) {
  EXPECT_GE(u01(0), 0.0);
  EXPECT_LT(u01(~0ull), 1.0);
  double lo = 1.0;
  double hi = 0.0;
  for (std::uint64_t c = 0; c < 1000; ++c) {
    const double x = u01(counter_draw(1, 2, c));
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
  EXPECT_LT(lo, 0.05);  // 1000 draws should span most of [0, 1)
  EXPECT_GT(hi, 0.95);
}

TEST(FaultPrng, SplitMixSequenceMatchesCounterDraws) {
  SplitMix64 gen(99);
  for (int i = 0; i < 10; ++i) {
    const double x = gen.next_u01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
  SplitMix64 again(99);
  SplitMix64 other(100);
  EXPECT_EQ(SplitMix64(99).next(), again.next());
  EXPECT_NE(SplitMix64(99).next(), other.next());
}

}  // namespace
}  // namespace stamp::fault
