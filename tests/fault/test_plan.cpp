#include "fault/plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace stamp::fault {
namespace {

TEST(FaultPlan, SiteNamesRoundTrip) {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    const auto back = site_from_name(site_name(site));
    ASSERT_TRUE(back.has_value()) << site_name(site);
    EXPECT_EQ(*back, site);
  }
  EXPECT_FALSE(site_from_name("no_such_site").has_value());
  EXPECT_FALSE(site_from_name("").has_value());
}

TEST(FaultPlan, TestProbeSiteExistsForCampaignSelfTests) {
  // The hook-less site the chaos-campaign CI gate seeds its deliberate
  // violation through; it must stay addressable by name.
  const auto site = site_from_name("test_probe");
  ASSERT_TRUE(site.has_value());
  EXPECT_EQ(*site, FaultSite::TestProbe);
}

TEST(FaultPlan, DefaultPlanIsInert) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.any_armed());
  for (std::size_t i = 0; i < kFaultSiteCount; ++i)
    EXPECT_FALSE(plan.spec(static_cast<FaultSite>(i)).armed());
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, WithBuilderArmsOneSite) {
  FaultPlan plan;
  plan.seed = 7;
  plan.with(FaultSite::MsgDrop, 0.5, 2.0, /*max_per_key=*/3, /*only_key=*/1);
  EXPECT_TRUE(plan.any_armed());
  const SiteSpec& spec = plan.spec(FaultSite::MsgDrop);
  EXPECT_DOUBLE_EQ(spec.probability, 0.5);
  EXPECT_DOUBLE_EQ(spec.magnitude, 2.0);
  EXPECT_EQ(spec.max_per_key, 3u);
  EXPECT_EQ(spec.only_key, 1);
  EXPECT_FALSE(plan.spec(FaultSite::StmAbort).armed());
}

TEST(FaultPlan, WithChainsFluently) {
  FaultPlan plan;
  plan.with(FaultSite::StmAbort, 0.1).with(FaultSite::MsgDelay, 0.2, 1000.0);
  EXPECT_TRUE(plan.spec(FaultSite::StmAbort).armed());
  EXPECT_TRUE(plan.spec(FaultSite::MsgDelay).armed());
}

TEST(FaultPlan, ValidateRejectsBadFields) {
  FaultPlan plan;
  plan.with(FaultSite::StmAbort, 1.5);
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  FaultPlan negative;
  negative.with(FaultSite::StmAbort, -0.1);
  EXPECT_THROW(negative.validate(), std::invalid_argument);

  FaultPlan magnitude;
  magnitude.with(FaultSite::MsgDelay, 0.5, -1.0);
  EXPECT_THROW(magnitude.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace stamp::fault
