#include "fault/retry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <stdexcept>

namespace stamp::fault {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::nanoseconds;

TEST(RetryPolicy, DefaultIsUnboundedSpinRetry) {
  const RetryPolicy policy = RetryPolicy::unbounded();
  EXPECT_LT(policy.max_retries, 0);
  EXPECT_EQ(policy.base_backoff.count(), 0);
  EXPECT_EQ(policy.deadline.count(), 0);
  EXPECT_NO_THROW(policy.validate());

  RetryState state(policy);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(state.allow_retry());
  EXPECT_EQ(state.retries(), 1000);
}

TEST(RetryPolicy, BoundedBudgetStopsAfterMaxRetries) {
  RetryState state(RetryPolicy::bounded(3));
  EXPECT_TRUE(state.allow_retry());   // retry 1
  EXPECT_TRUE(state.allow_retry());   // retry 2
  EXPECT_TRUE(state.allow_retry());   // retry 3
  EXPECT_FALSE(state.allow_retry());  // budget spent
  EXPECT_FALSE(state.deadline_passed());
}

TEST(RetryPolicy, ZeroRetriesMeansFailImmediately) {
  RetryState state(RetryPolicy::bounded(0));
  EXPECT_FALSE(state.allow_retry());
}

TEST(RetryPolicy, BackoffGrowsGeometricallyAndCaps) {
  RetryPolicy policy;
  policy.base_backoff = nanoseconds(100);
  policy.multiplier = 2.0;
  policy.max_backoff = nanoseconds(350);
  EXPECT_EQ(policy.backoff_for(1, 0), nanoseconds(100));
  EXPECT_EQ(policy.backoff_for(2, 0), nanoseconds(200));
  EXPECT_EQ(policy.backoff_for(3, 0), nanoseconds(350));  // capped, not 400
  EXPECT_EQ(policy.backoff_for(10, 0), nanoseconds(350));
}

TEST(RetryPolicy, JitterIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.base_backoff = nanoseconds(1000);
  policy.multiplier = 1.0;
  policy.jitter = 0.5;
  policy.jitter_seed = 42;
  bool saw_jitter = false;
  for (int attempt = 1; attempt <= 32; ++attempt) {
    const nanoseconds ns = policy.backoff_for(attempt, /*stream=*/7);
    // sleep = backoff * (1 - j + j*u01) with j=0.5 => [500, 1000) ns.
    EXPECT_GE(ns, nanoseconds(500)) << "attempt " << attempt;
    EXPECT_LE(ns, nanoseconds(1000)) << "attempt " << attempt;
    EXPECT_EQ(ns, policy.backoff_for(attempt, 7));  // same inputs, same draw
    if (ns != nanoseconds(1000)) saw_jitter = true;
  }
  EXPECT_TRUE(saw_jitter);
  // Streams draw independent jitter sequences.
  bool streams_differ = false;
  for (int attempt = 1; attempt <= 32 && !streams_differ; ++attempt)
    streams_differ =
        policy.backoff_for(attempt, 7) != policy.backoff_for(attempt, 8);
  EXPECT_TRUE(streams_differ);
}

TEST(RetryPolicy, ValidateRejectsBadFields) {
  RetryPolicy jitter;
  jitter.jitter = 1.5;
  EXPECT_THROW(jitter.validate(), std::invalid_argument);

  RetryPolicy multiplier;
  multiplier.multiplier = 0.5;
  EXPECT_THROW(multiplier.validate(), std::invalid_argument);

  RetryPolicy backoff;
  backoff.base_backoff = nanoseconds(-1);
  EXPECT_THROW(backoff.validate(), std::invalid_argument);
}

TEST(RetryPolicy, DeadlineTripsAllowRetry) {
  RetryPolicy policy;
  policy.deadline = nanoseconds(1);  // effectively already passed
  RetryState state(policy);
  while (!state.deadline_passed()) {
  }
  EXPECT_FALSE(state.allow_retry());
  EXPECT_TRUE(state.deadline_passed());
}

TEST(RetryCall, ReturnsFirstSuccess) {
  int calls = 0;
  const int value = retry_call(RetryPolicy::bounded(5), 0,
                               [&calls]() -> std::optional<int> {
                                 if (++calls < 3) return std::nullopt;
                                 return 42;
                               });
  EXPECT_EQ(value, 42);
  EXPECT_EQ(calls, 3);
}

TEST(RetryCall, ThrowsRetryExhaustedWithCount) {
  int calls = 0;
  try {
    static_cast<void>(retry_call(RetryPolicy::bounded(2), 0,
                                 [&calls]() -> std::optional<int> {
                                   ++calls;
                                   return std::nullopt;
                                 }));
    FAIL() << "expected RetryExhausted";
  } catch (const RetryExhausted& e) {
    EXPECT_EQ(e.retries(), 2);
  }
  EXPECT_EQ(calls, 3);  // first attempt + 2 retries
}

TEST(RetryCall, ThrowsDeadlineExceededWhenClockRunsOut) {
  RetryPolicy policy;
  policy.deadline = microseconds(200);
  EXPECT_THROW(
      static_cast<void>(retry_call(
          policy, 0, []() -> std::optional<int> { return std::nullopt; })),
      DeadlineExceeded);
}

}  // namespace
}  // namespace stamp::fault
