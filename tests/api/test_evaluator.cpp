#include "api/stamp.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

// The facade delegates to the deprecated entry points it replaces; comparing
// against them directly is the point of these tests.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace stamp {
namespace {

/// A deterministic little STAMP program: every process records the same
/// counter pattern, so two separate executions produce identical model costs.
void tiny_body(runtime::Context& ctx) {
  const runtime::UnitScope unit(ctx.recorder());
  {
    const runtime::RoundScope round(ctx.recorder());
    ctx.fp_ops(10);
    ctx.int_ops(5);
  }
}

TEST(Evaluator, DefaultsToNiagaraAndEdp) {
  const Evaluator eval;
  EXPECT_EQ(eval.machine().name, presets::niagara().name);
  EXPECT_EQ(eval.objective(), Objective::EDP);
}

TEST(Evaluator, RunMatchesManualRuntimeWorkflow) {
  const MachineModel machine = presets::niagara();
  const Evaluator eval({.machine = machine});

  const RunOutcome outcome = eval.run(4, Distribution::IntraProc, tiny_body);
  const runtime::RunResult manual = runtime::run_distributed(
      machine.topology, 4, Distribution::IntraProc, tiny_body);
  const runtime::PlacementMap placement =
      runtime::PlacementMap::for_distribution(machine.topology, 4,
                                              Distribution::IntraProc);

  ASSERT_EQ(outcome.run.recorders.size(), manual.recorders.size());
  EXPECT_EQ(outcome.run.total_counters(), manual.total_counters());
  EXPECT_EQ(outcome.placement.process_count(), placement.process_count());
  for (int p = 0; p < 4; ++p)
    EXPECT_EQ(outcome.placement.slot_of(p), placement.slot_of(p));
}

TEST(Evaluator, EvaluateMatchesManualCostAndEnvelope) {
  const MachineModel machine = presets::niagara();
  const Evaluator eval({.machine = machine, .objective = Objective::ED2P});
  const auto [outcome, evaluation] =
      eval.run_and_evaluate(4, Distribution::IntraProc, tiny_body);

  const Cost manual_total = outcome.run.total_cost(
      outcome.placement, machine.params, machine.energy);
  EXPECT_EQ(evaluation.total, manual_total);
  EXPECT_EQ(evaluation.process_costs,
            outcome.run.process_costs(outcome.placement, machine.params,
                                      machine.energy));
  EXPECT_DOUBLE_EQ(evaluation.objective_value,
                   metric_value(manual_total, Objective::ED2P));
  EXPECT_DOUBLE_EQ(evaluation.metrics.D, metrics_from(manual_total).D);
  EXPECT_EQ(evaluation.feasible, evaluation.envelope.feasible);
}

TEST(Evaluator, BestPlacementMatchesPlaceBest) {
  const MachineModel machine = presets::niagara();
  const Evaluator eval({.machine = machine, .objective = Objective::EDP});
  ProcessProfile profile;
  profile.c_fp = 100;
  profile.c_int = 20;
  profile.d_r = 8;
  profile.d_w = 4;
  const std::vector<ProcessProfile> profiles(6, profile);

  const PlacementResult a = eval.best_placement(profiles);
  const PlacementResult b = place_best(profiles, machine, Objective::EDP);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_DOUBLE_EQ(a.eval.objective, b.eval.objective);
  EXPECT_EQ(a.eval.placement.processor_of, b.eval.placement.processor_of);
}

TEST(Evaluator, SweepMatchesEngineAndThreadCountIsInvisible) {
  const Evaluator eval;
  const sweep::SweepConfig cfg = sweep::SweepConfig::tiny();
  const std::string serial = sweep::to_json(eval.sweep(cfg));
  const std::string threaded =
      sweep::to_json(eval.sweep(cfg, sweep::SweepOptions{.threads = 4}));
  const std::string engine = sweep::to_json(sweep::run_sweep_serial(cfg));
  EXPECT_EQ(serial, engine);
  EXPECT_EQ(serial, threaded);
}

TEST(Evaluator, DeprecatedSweepShimsMatchTheUnifiedSignature) {
  // The pre-unification overloads (threads as a bare argument) must keep
  // producing the identical artifact until their scheduled removal.
  const Evaluator eval;
  const sweep::SweepConfig cfg = sweep::SweepConfig::tiny();
  const std::string unified =
      sweep::to_json(eval.sweep(cfg, sweep::SweepOptions{.threads = 2}));
  EXPECT_EQ(sweep::to_json(eval.sweep(cfg, 2)), unified);
  EXPECT_EQ(sweep::to_json(eval.sweep(cfg, 2, sweep::SweepOptions{})),
            unified);
}

TEST(Evaluator, TracingDoesNotPerturbTheSweepArtifact) {
  const Evaluator eval;
  const sweep::SweepConfig cfg = sweep::SweepConfig::tiny();

  ASSERT_FALSE(Evaluator::tracing());
  const sweep::SweepOptions two_threads{.threads = 2};
  const std::string untraced = sweep::to_json(eval.sweep(cfg, two_threads));

  Evaluator::set_tracing(true);
  Evaluator::set_metrics(true);
  const std::string traced = sweep::to_json(eval.sweep(cfg, two_threads));
  Evaluator::set_tracing(false);
  Evaluator::set_metrics(false);
  Evaluator::clear_trace();

  EXPECT_EQ(traced, untraced);  // byte-identical artifact either way
}

TEST(Evaluator, TraceCoversSimulatorPoolAndCacheLayers) {
  const Evaluator eval;
  Evaluator::set_tracing(true);
  Evaluator::clear_trace();

  // Sweep on a pool: sweep + pool + cache spans.
  (void)eval.sweep(sweep::SweepConfig::tiny(), sweep::SweepOptions{.threads = 2});
  // Execute and replay a run: runtime + sim spans.
  const RunOutcome outcome = eval.run(2, Distribution::IntraProc, tiny_body);
  (void)eval.simulate_run(outcome.run, outcome.placement);

  const std::string json = Evaluator::trace_json();
  Evaluator::set_tracing(false);
  Evaluator::clear_trace();

  const obs::TraceSummary summary = obs::summarize_chrome_trace(json);
  std::set<std::string> categories;
  for (const auto& [category, count] : summary.events_by_category)
    categories.insert(category);
  EXPECT_TRUE(categories.contains("sweep"));
  EXPECT_TRUE(categories.contains("pool"));
  EXPECT_TRUE(categories.contains("cache"));
  EXPECT_TRUE(categories.contains("sim"));
  EXPECT_TRUE(categories.contains("runtime"));
  EXPECT_GT(summary.complete_spans, 0u);
}

TEST(Evaluator, SimulateRunAgreesWithDirectReplay) {
  const Evaluator eval;
  const RunOutcome outcome = eval.run(2, Distribution::IntraProc, tiny_body);

  std::vector<machine::ProcessTrace> traces;
  for (const runtime::Recorder& r : outcome.run.recorders)
    traces.push_back(machine::trace_of_recorder(r, CommMode::Synchronous));
  const machine::SimResult direct =
      machine::replay(traces, outcome.placement, eval.machine());
  const machine::SimResult facade =
      eval.simulate_run(outcome.run, outcome.placement);
  EXPECT_DOUBLE_EQ(facade.makespan, direct.makespan);
  EXPECT_DOUBLE_EQ(facade.energy, direct.energy);
}

TEST(Evaluator, ConstructorOptionsEnableRecorders) {
  ASSERT_FALSE(Evaluator::tracing());
  ASSERT_FALSE(Evaluator::metrics_on());
  {
    const Evaluator eval({.tracing = true, .metrics = true});
    EXPECT_TRUE(Evaluator::tracing());
    EXPECT_TRUE(Evaluator::metrics_on());
  }
  Evaluator::set_tracing(false);
  Evaluator::set_metrics(false);
  Evaluator::clear_trace();
}

TEST(Evaluator, MetricsRegistryIsTheGlobalOne) {
  EXPECT_EQ(&Evaluator::metrics_registry(), &obs::MetricsRegistry::global());
}

}  // namespace
}  // namespace stamp
