#include "api/stamp.hpp"

#include <gtest/gtest.h>

namespace stamp {
namespace {

TEST(EvaluatorFaults, WithFaultsArmsAndClearFaultsDisarms) {
  ASSERT_FALSE(Evaluator::faults_armed());
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.with(fault::FaultSite::StmAbort, 0.1);
  Evaluator::with_faults(plan);
  EXPECT_TRUE(Evaluator::faults_armed());
  EXPECT_TRUE(fault::injection_enabled());
  EXPECT_EQ(Evaluator::injector().plan().seed, 5u);
  Evaluator::clear_faults();
  EXPECT_FALSE(Evaluator::faults_armed());
  EXPECT_FALSE(fault::injection_enabled());
}

TEST(EvaluatorFaults, WithFaultsValidatesThePlan) {
  fault::FaultPlan bad;
  bad.with(fault::FaultSite::StmAbort, 2.0);
  EXPECT_THROW(Evaluator::with_faults(bad), std::invalid_argument);
  EXPECT_FALSE(Evaluator::faults_armed());
}

TEST(EvaluatorFaults, RunSupervisedCompletesAfterInjectedFailStop) {
  const Evaluator eval;
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::ProcFailStop, 1.0, 0, /*max_per_key=*/1,
            /*only_key=*/1);
  Evaluator::with_faults(plan);
  const runtime::SupervisedResult sr = eval.run_supervised(
      4, Distribution::IntraProc,
      [](runtime::Context& ctx) { ctx.int_ops(10 * (ctx.id() + 1)); });
  Evaluator::clear_faults();
  ASSERT_TRUE(sr.failed_over());
  EXPECT_EQ(sr.failed_processes, std::vector<int>{1});
  EXPECT_DOUBLE_EQ(sr.result.total_counters().c_int, 10 + 20 + 30 + 40);
  // The supervised run's result prices like any other run.
  const Evaluation evaluation = eval.evaluate(sr.result, sr.placement);
  EXPECT_GT(evaluation.total.time, 0);
}

TEST(EvaluatorFaults, InjectionCountersAreReadableAfterClear) {
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::StmAbort, 1.0, 0, /*max_per_key=*/2);
  Evaluator::with_faults(plan);
  (void)Evaluator::injector().decide(fault::FaultSite::StmAbort, 0);
  (void)Evaluator::injector().decide(fault::FaultSite::StmAbort, 0);
  Evaluator::clear_faults();
  // disarm() keeps counters for post-mortem reads.
  EXPECT_EQ(Evaluator::injector().injected(fault::FaultSite::StmAbort), 2u);
}

}  // namespace
}  // namespace stamp
