// The stamp-serve/v1 wire protocol: request parsing (strict — anything
// malformed is a ProtocolError carrying the request id once one was read)
// and response building (fixed key order, canonical numbers, one line, no
// trailing newline — the byte-identity contract the chaos harness cmp's).

#include "serve/protocol.hpp"

#include "report/json_parse.hpp"

#include <gtest/gtest.h>

#include <string>

namespace stamp::serve {
namespace {

TEST(Protocol, ParsesEveryOpWithItsFields) {
  const ServeRequest ev = parse_request(R"({"id":1,"op":"evaluate","index":5})");
  EXPECT_EQ(ev.id, 1u);
  EXPECT_EQ(ev.kind, RequestKind::Evaluate);
  EXPECT_EQ(ev.index, 5u);

  const ServeRequest ch =
      parse_request(R"({"id":2,"op":"sweep_chunk","begin":3,"end":9})");
  EXPECT_EQ(ch.kind, RequestKind::SweepChunk);
  EXPECT_EQ(ch.begin, 3u);
  EXPECT_EQ(ch.end, 9u);

  const ServeRequest se =
      parse_request(R"({"id":3,"op":"search","method":"anneal","seed":7})");
  EXPECT_EQ(se.kind, RequestKind::Search);
  EXPECT_EQ(se.method, SearchMethod::Anneal);
  EXPECT_EQ(se.seed, 7u);

  const ServeRequest bp =
      parse_request(R"({"id":4,"op":"best_placement","processes":8})");
  EXPECT_EQ(bp.kind, RequestKind::BestPlacement);
  EXPECT_EQ(bp.processes, 8);

  const ServeRequest burn =
      parse_request(R"({"id":5,"op":"burn","busy_ms":50})");
  EXPECT_EQ(burn.kind, RequestKind::Burn);
  EXPECT_EQ(burn.busy_ms, 50u);

  const ServeRequest st = parse_request(R"({"id":6,"op":"stats"})");
  EXPECT_EQ(st.kind, RequestKind::Stats);
}

TEST(Protocol, SearchDefaultsAndDeadlineOverride) {
  const ServeRequest se = parse_request(R"({"id":1,"op":"search"})");
  EXPECT_EQ(se.method, SearchMethod::BranchAndBound);
  EXPECT_EQ(se.seed, 1u);
  EXPECT_EQ(se.deadline_ms, 0u);

  const ServeRequest with_deadline =
      parse_request(R"({"id":1,"op":"stats","deadline_ms":250})");
  EXPECT_EQ(with_deadline.deadline_ms, 250u);
}

TEST(Protocol, MalformedRequestsThrow) {
  EXPECT_THROW((void)parse_request("not json"), ProtocolError);
  EXPECT_THROW((void)parse_request("[1,2]"), ProtocolError);
  EXPECT_THROW((void)parse_request(R"({"op":"stats"})"), ProtocolError);
  EXPECT_THROW((void)parse_request(R"({"id":1.5,"op":"stats"})"),
               ProtocolError);
  EXPECT_THROW((void)parse_request(R"({"id":-1,"op":"stats"})"),
               ProtocolError);
  EXPECT_THROW((void)parse_request(R"({"id":1})"), ProtocolError);
  EXPECT_THROW((void)parse_request(R"({"id":1,"op":"evaluate"})"),
               ProtocolError);
  EXPECT_THROW((void)parse_request(R"({"id":1,"op":"sweep_chunk","begin":0})"),
               ProtocolError);
  EXPECT_THROW(
      (void)parse_request(R"({"id":1,"op":"search","method":"psychic"})"),
      ProtocolError);
  EXPECT_THROW(
      (void)parse_request(R"({"id":1,"op":"best_placement","processes":0})"),
      ProtocolError);
  EXPECT_THROW(
      (void)parse_request(
          R"({"id":1,"op":"best_placement","processes":100001})"),
      ProtocolError);
}

// Once the id has been read, later parse failures carry it — the 400 line
// must reach the matching pipelined request, not id 0.
TEST(Protocol, ErrorsAfterTheIdCarryTheId) {
  try {
    (void)parse_request(R"({"id":42,"op":"warp"})");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.id(), 42u);
  }
  // But errors before the id (no id at all) report id 0.
  try {
    (void)parse_request(R"({"op":"stats"})");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.id(), 0u);
  }
}

TEST(Protocol, ErrorResponseShapeAndRoundTrip) {
  const std::string line = error_response(9, 503, "overloaded");
  EXPECT_EQ(line,
            R"({"schema":"stamp-serve/v1","id":9,"status":503,"error":"overloaded"})");
  // Every response must parse back through the project's own JSON parser.
  const auto root = report::JsonValue::parse(line);
  EXPECT_EQ(root.find("status")->as_number(), 503.0);
}

TEST(Protocol, OkBurnShape) {
  EXPECT_EQ(
      ok_burn(3, 25),
      R"({"schema":"stamp-serve/v1","id":3,"status":200,"op":"burn","busy_ms":25})");
}

TEST(Protocol, ResponsesAreSingleLines) {
  const std::string line = error_response(1, 400, "nope");
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace stamp::serve
