// The deterministic request engine: for every op except stats, the response
// line is a pure function of (request, grid preset). These tests pin that
// purity (two engines, same bytes), the 400/504 error mapping, and the
// chunk-bound guardrail.

#include "serve/engine.hpp"

#include "core/cancel.hpp"
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace stamp::serve {
namespace {

ServeRequest req(const std::string& line) { return parse_request(line); }

TEST(ServeEngine, UnknownGridPresetThrowsAtConstruction) {
  EngineOptions options;
  options.grid = "gargantuan";
  EXPECT_THROW(ServeEngine{options}, std::invalid_argument);
}

TEST(ServeEngine, ResponsesArePureFunctionsOfTheRequest) {
  ServeEngine a{EngineOptions{}};
  ServeEngine b{EngineOptions{}};
  for (const char* line : {
           R"({"id":1,"op":"evaluate","index":0})",
           R"({"id":2,"op":"sweep_chunk","begin":0,"end":16})",
           R"({"id":3,"op":"search","method":"bnb","seed":7})",
           R"({"id":4,"op":"search","method":"anneal","seed":9})",
           R"({"id":5,"op":"best_placement","processes":8})",
       }) {
    const std::string first = a.handle(req(line), nullptr);
    EXPECT_EQ(first, a.handle(req(line), nullptr)) << line;  // repeat, warm
    EXPECT_EQ(first, b.handle(req(line), nullptr)) << line;  // twin engine
    EXPECT_NE(first.find("\"status\":200"), std::string::npos) << first;
  }
}

TEST(ServeEngine, EvaluateMatchesTheChunkPath) {
  ServeEngine engine{EngineOptions{}};
  // The single-point op and the one-point chunk must price identically; the
  // chunk response embeds the same point object.
  const std::string point =
      engine.handle(req(R"({"id":1,"op":"evaluate","index":3})"), nullptr);
  const std::string chunk = engine.handle(
      req(R"({"id":1,"op":"sweep_chunk","begin":3,"end":4})"), nullptr);
  const auto brace = point.find("\"point\":");
  ASSERT_NE(brace, std::string::npos);
  const std::string body = point.substr(brace + 8);  // {...}}
  EXPECT_NE(chunk.find(body.substr(0, body.size() - 1)), std::string::npos)
      << "\npoint: " << point << "\nchunk: " << chunk;
}

TEST(ServeEngine, OutOfRangeRequestsAnswer400) {
  ServeEngine engine{EngineOptions{}};  // tiny grid: 16 points
  for (const char* line : {
           R"({"id":1,"op":"evaluate","index":16})",
           R"({"id":2,"op":"sweep_chunk","begin":4,"end":3})",
           R"({"id":3,"op":"sweep_chunk","begin":0,"end":17})",
       }) {
    const std::string got = engine.handle(req(line), nullptr);
    EXPECT_NE(got.find("\"status\":400"), std::string::npos) << got;
  }
}

TEST(ServeEngine, OversizedChunksAnswer400) {
  EngineOptions options;
  options.max_chunk_points = 4;
  ServeEngine engine{options};
  const std::string ok = engine.handle(
      req(R"({"id":1,"op":"sweep_chunk","begin":0,"end":4})"), nullptr);
  EXPECT_NE(ok.find("\"status\":200"), std::string::npos);
  const std::string too_big = engine.handle(
      req(R"({"id":1,"op":"sweep_chunk","begin":0,"end":5})"), nullptr);
  EXPECT_NE(too_big.find("\"status\":400"), std::string::npos);
  EXPECT_NE(too_big.find("chunk too large"), std::string::npos);
}

TEST(ServeEngine, StatsIsNotAnEngineOp) {
  ServeEngine engine{EngineOptions{}};
  const std::string got =
      engine.handle(req(R"({"id":1,"op":"stats"})"), nullptr);
  EXPECT_NE(got.find("\"status\":400"), std::string::npos);
}

TEST(ServeEngine, TrippedCancelAnswers504) {
  ServeEngine engine{EngineOptions{}};
  core::CancelToken cancel;
  cancel.request_cancel();
  for (const char* line : {
           R"({"id":1,"op":"evaluate","index":0})",
           R"({"id":2,"op":"sweep_chunk","begin":0,"end":16})",
           R"({"id":3,"op":"search"})",
           R"({"id":4,"op":"burn","busy_ms":10000})",
       }) {
    const std::string got = engine.handle(req(line), &cancel);
    EXPECT_NE(got.find("\"status\":504"), std::string::npos) << got;
  }
}

TEST(ServeEngine, SharedCacheServesRepeatedRequests) {
  ServeEngine engine{EngineOptions{}};
  (void)engine.handle(req(R"({"id":1,"op":"sweep_chunk","begin":0,"end":16})"),
                      nullptr);
  const std::uint64_t misses = engine.cache().misses();
  (void)engine.handle(req(R"({"id":2,"op":"sweep_chunk","begin":0,"end":16})"),
                      nullptr);
  EXPECT_EQ(engine.cache().misses(), misses);  // all hits the second time
  EXPECT_GT(engine.cache().hits(), 0u);
}

}  // namespace
}  // namespace stamp::serve
