// The supervised server end to end, over real loopback sockets: admission
// control (503 when the bounded queue is full), per-request deadlines (504),
// worker crash supervision (injected ServeWorkerFail, retried), stats, and
// the graceful-drain contract (finish in-flight work, then exact counters).

#include "serve/server.hpp"

#include "api/stamp.hpp"
#include "serve/protocol.hpp"
#include "serve/socket.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

namespace stamp::serve {
namespace {

using ReadStatus = Socket::ReadStatus;

/// Send `lines` over one connection and read exactly `expect` response
/// lines (any order — the workers race), failing the test on timeout.
std::vector<std::string> call(std::uint16_t port,
                              const std::vector<std::string>& lines,
                              std::size_t expect) {
  Socket sock = Socket::connect_to(port);
  EXPECT_TRUE(sock.valid());
  for (const std::string& line : lines) {
    EXPECT_TRUE(sock.write_all(line));
    EXPECT_TRUE(sock.write_all("\n"));
  }
  std::vector<std::string> responses;
  std::string line;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (responses.size() < expect &&
         std::chrono::steady_clock::now() < deadline) {
    const ReadStatus status = sock.read_line(line, /*timeout_ms=*/1000);
    if (status == ReadStatus::Line)
      responses.push_back(line);
    else if (status != ReadStatus::Timeout)
      break;
  }
  EXPECT_EQ(responses.size(), expect);
  return responses;
}

bool has_status(const std::string& line, int status) {
  return line.find("\"status\":" + std::to_string(status)) !=
         std::string::npos;
}

std::size_t count_with_status(const std::vector<std::string>& lines,
                              int status) {
  std::size_t n = 0;
  for (const std::string& line : lines)
    if (has_status(line, status)) ++n;
  return n;
}

TEST(Server, ServesRequestsAndDrainsCleanly) {
  ServerOptions options;
  Server server(options);
  server.start();
  ASSERT_NE(server.port(), 0);

  const auto responses = call(server.port(),
                              {
                                  R"({"id":1,"op":"evaluate","index":0})",
                                  R"({"id":2,"op":"best_placement","processes":4})",
                                  R"({"id":3,"op":"stats"})",
                              },
                              3);
  EXPECT_EQ(count_with_status(responses, 200), 3u);

  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.accepted, 2u);  // stats is answered inline, not queued
  EXPECT_EQ(stats.responses, 3u);
  EXPECT_EQ(stats.rejected_overload, 0u);
  EXPECT_EQ(stats.bad_requests, 0u);
  server.drain();  // idempotent
}

TEST(Server, ResponsesMatchADirectEngineByteForByte) {
  ServerOptions options;
  Server server(options);
  server.start();
  const std::string line = R"({"id":7,"op":"evaluate","index":3})";
  const auto responses = call(server.port(), {line}, 1);
  ASSERT_EQ(responses.size(), 1u);

  ServeEngine truth{EngineOptions{}};
  EXPECT_EQ(responses[0], truth.handle(parse_request(line), nullptr));
}

TEST(Server, MalformedLinesAnswer400AndCountAsBadRequests) {
  ServerOptions options;
  Server server(options);
  server.start();
  const auto responses = call(server.port(),
                              {
                                  "this is not json",
                                  R"({"id":5,"op":"teleport"})",
                              },
                              2);
  EXPECT_EQ(count_with_status(responses, 400), 2u);
  // The op error happened after the id was parsed, so it carries id 5.
  EXPECT_EQ(count_with_status(responses, 200), 0u);
  bool saw_id5 = false;
  for (const std::string& r : responses)
    if (r.find("\"id\":5") != std::string::npos) saw_id5 = true;
  EXPECT_TRUE(saw_id5);
  server.drain();
  EXPECT_EQ(server.stats().bad_requests, 2u);
}

// A full admission queue answers 503 instead of queueing unboundedly: one
// worker is pinned by a long burn, the queue holds one more, and everything
// past that must be rejected — but the accepted jobs still finish and the
// drain still comes back clean.
TEST(Server, OverloadAnswers503AndBoundsTheQueue) {
  ServerOptions options;
  options.workers = 1;
  options.queue_depth = 1;
  Server server(options);
  server.start();

  std::vector<std::string> lines;
  lines.emplace_back(R"({"id":1,"op":"burn","busy_ms":400})");
  for (int i = 2; i <= 8; ++i)
    lines.push_back(R"({"id":)" + std::to_string(i) +
                    R"(,"op":"burn","busy_ms":400})");
  const auto responses = call(server.port(), lines, lines.size());

  const std::size_t ok = count_with_status(responses, 200);
  const std::size_t overloaded = count_with_status(responses, 503);
  EXPECT_EQ(ok + overloaded, lines.size());
  EXPECT_GE(overloaded, 1u) << "queue of 1 never filled under 8 requests";
  EXPECT_GE(ok, 1u);

  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_overload, overloaded);
  EXPECT_EQ(stats.accepted + stats.rejected_overload, lines.size());
}

TEST(Server, DeadlineTripsLongRequestsTo504) {
  ServerOptions options;
  options.default_deadline = std::chrono::milliseconds(50);
  Server server(options);
  server.start();

  // The burn would run for 10s; the deadline must cut it to a 504 quickly.
  const auto start = std::chrono::steady_clock::now();
  const auto responses = call(
      server.port(), {R"({"id":1,"op":"burn","busy_ms":10000})"}, 1);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(has_status(responses[0], 504)) << responses[0];
  EXPECT_LT(elapsed, std::chrono::seconds(5));

  server.drain();
  EXPECT_GE(server.stats().deadline_hits, 1u);
}

TEST(Server, PerRequestDeadlineOverridesTheDefault) {
  ServerOptions options;  // no default deadline
  Server server(options);
  server.start();
  const auto responses = call(
      server.port(),
      {R"({"id":1,"op":"burn","busy_ms":10000,"deadline_ms":50})"}, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(has_status(responses[0], 504)) << responses[0];
  server.drain();
}

// An injected worker crash (ServeWorkerFail, keyed by request id) is caught
// by the supervisor and the job retried: the client still gets its 200 and
// the restart is counted.
TEST(Server, SupervisorRetriesCrashedWorkers) {
  fault::FaultPlan plan;
  plan.seed = 1;
  plan.with(fault::FaultSite::ServeWorkerFail, 1.0, 0, /*max_per_key=*/1);
  Evaluator::with_faults(plan);

  ServerOptions options;
  Server server(options);
  server.start();
  const std::string line = R"({"id":1,"op":"evaluate","index":2})";
  const auto responses = call(server.port(), {line}, 1);
  server.drain();
  Evaluator::clear_faults();

  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(has_status(responses[0], 200)) << responses[0];
  EXPECT_EQ(server.stats().worker_restarts, 1u);

  ServeEngine truth{EngineOptions{}};
  EXPECT_EQ(responses[0], truth.handle(parse_request(line), nullptr));
}

// A crash budget that runs out surfaces as a 500, not a hang or a lost job.
TEST(Server, ExhaustedSupervisionBudgetAnswers500) {
  fault::FaultPlan plan;
  plan.seed = 1;
  plan.with(fault::FaultSite::ServeWorkerFail, 1.0);  // crash every attempt
  Evaluator::with_faults(plan);

  ServerOptions options;
  options.supervision = fault::RetryPolicy::bounded(2);
  Server server(options);
  server.start();
  const auto responses =
      call(server.port(), {R"({"id":1,"op":"evaluate","index":0})"}, 1);
  server.drain();
  Evaluator::clear_faults();

  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(has_status(responses[0], 500)) << responses[0];
  EXPECT_GE(server.stats().worker_restarts, 1u);
}

TEST(Server, DrainedServerRefusesNewWork) {
  ServerOptions options;
  Server server(options);
  server.start();
  const std::uint16_t port = server.port();
  (void)call(port, {R"({"id":1,"op":"evaluate","index":0})"}, 1);
  server.drain();

  // The listener is closed: new connections must fail (immediately or on
  // first use), never hang.
  Socket sock = Socket::connect_to(port);
  if (sock.valid()) {
    std::string line;
    (void)sock.write_all("{\"id\":2,\"op\":\"stats\"}\n");
    const ReadStatus status = sock.read_line(line, /*timeout_ms=*/2000);
    EXPECT_NE(status, ReadStatus::Line);
  }
}

TEST(Server, StatsResponseReportsQueueAndCache) {
  ServerOptions options;
  Server server(options);
  server.start();
  (void)call(server.port(), {R"({"id":1,"op":"sweep_chunk","begin":0,"end":16})"},
             1);
  const auto responses =
      call(server.port(), {R"({"id":2,"op":"stats"})"}, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_NE(responses[0].find("\"queue_capacity\":64"), std::string::npos)
      << responses[0];
  EXPECT_NE(responses[0].find("\"cache\":"), std::string::npos);
  server.drain();
}

}  // namespace
}  // namespace stamp::serve
