// Regression tests for the socket layer's interrupted-syscall discipline: a
// SIGALRM storm (installed *without* SA_RESTART, so every slow syscall keeps
// returning EINTR) is kept running while connections are made and multi-
// megabyte payloads cross a real loopback socket. connect_to must complete
// the handshake an EINTR'd connect(2) left in flight (poll + SO_ERROR, not a
// failed retry of connect), and read_line/write_all must neither drop bytes
// nor mistake an interruption for EOF.

#include "serve/socket.hpp"

#include <gtest/gtest.h>

#include <sys/time.h>

#include <csignal>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>

namespace stamp::serve {
namespace {

extern "C" void on_alarm(int) {}

/// Scoped SIGALRM storm: an interval timer fires every 2ms into a handler
/// registered without SA_RESTART, so for the lifetime of this object every
/// blocking connect/poll/read/write in the process keeps getting EINTR'd.
class AlarmStorm {
 public:
  AlarmStorm() {
    struct sigaction sa = {};
    sa.sa_handler = on_alarm;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: interruptions must surface as EINTR
    sigaction(SIGALRM, &sa, &old_action_);
    itimerval timer = {};
    timer.it_interval.tv_usec = 2000;
    timer.it_value.tv_usec = 2000;
    setitimer(ITIMER_REAL, &timer, &old_timer_);
  }
  ~AlarmStorm() {
    itimerval off = {};
    setitimer(ITIMER_REAL, &off, nullptr);
    sigaction(SIGALRM, &old_action_, nullptr);
  }

 private:
  struct sigaction old_action_ = {};
  itimerval old_timer_ = {};
};

TEST(Socket, ConnectSurvivesASignalStorm) {
  const AlarmStorm storm;
  Listener listener = Listener::open(0);
  const std::uint16_t port = listener.local_port();

  // Accept-and-drop in the background so the backlog never fills.
  std::thread acceptor([&listener] {
    for (int accepted = 0; accepted < 64;) {
      if (auto conn = listener.accept_for(100); conn.has_value()) ++accepted;
    }
  });
  for (int i = 0; i < 64; ++i) {
    Socket sock = Socket::connect_to(port);
    EXPECT_TRUE(sock.valid()) << "connect " << i << " failed under SIGALRM";
  }
  acceptor.join();
}

TEST(Socket, MultiMegabyteEchoSurvivesASignalStorm) {
  const AlarmStorm storm;
  Listener listener = Listener::open(0);
  const std::uint16_t port = listener.local_port();

  // One 4 MiB line: far beyond any socket buffer, so write_all must loop
  // over partial writes — with EINTR landing between and inside them.
  std::string big(4u << 20, '\0');
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<char>('a' + (i * 131) % 26);
  constexpr std::size_t kMaxLine = 8u << 20;

  bool client_sent = false;
  bool client_got_line = false;
  std::string client_received;
  std::thread client([&] {
    Socket sock = Socket::connect_to(port);
    if (!sock.valid()) return;
    if (!sock.write_all(big) || !sock.write_all("\n")) return;
    client_sent = true;
    for (;;) {  // wait for the server's echo of the same line
      const auto status = sock.read_line(client_received, 200, kMaxLine);
      if (status == Socket::ReadStatus::Line) {
        client_got_line = true;
        return;
      }
      if (status != Socket::ReadStatus::Timeout) return;
    }
  });

  std::optional<Socket> conn;
  while (!conn.has_value()) conn = listener.accept_for(100);
  std::string line;
  for (;;) {
    const auto status = conn->read_line(line, 200, kMaxLine);
    if (status == Socket::ReadStatus::Line) break;
    ASSERT_EQ(status, Socket::ReadStatus::Timeout)
        << "interruption surfaced as EOF/error";
  }
  EXPECT_EQ(line.size(), big.size());
  EXPECT_EQ(line, big) << "payload corrupted in transit";
  ASSERT_TRUE(conn->write_all(line));
  ASSERT_TRUE(conn->write_all("\n"));
  client.join();

  EXPECT_TRUE(client_sent);
  EXPECT_TRUE(client_got_line);
  EXPECT_EQ(client_received, big);
}

}  // namespace
}  // namespace stamp::serve
