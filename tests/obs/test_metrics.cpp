#include "obs/metrics.hpp"

#include "report/json_parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace stamp::obs {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketEdges) {
  // Bucket 0 holds exact zeros; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);
  EXPECT_EQ(Histogram::bucket_of((std::uint64_t{1} << 63) - 1), 63);
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 63), 64);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64);

  EXPECT_EQ(Histogram::bucket_lower(0), 0u);
  EXPECT_EQ(Histogram::bucket_lower(1), 1u);
  EXPECT_EQ(Histogram::bucket_lower(2), 2u);
  EXPECT_EQ(Histogram::bucket_lower(3), 4u);
  EXPECT_EQ(Histogram::bucket_lower(64), std::uint64_t{1} << 63);

  Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(MetricsRegistry, GetOrCreateReturnsStableInstrument) {
  MetricsRegistry reg(4);
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(reg.counter("x").value(), 7u);
  // Same name, different kind: distinct instruments.
  reg.gauge("x").set(1.5);
  EXPECT_EQ(reg.counter("x").value(), 7u);
  EXPECT_DOUBLE_EQ(reg.gauge("x").value(), 1.5);
}

TEST(MetricsRegistry, SnapshotSortedByKindThenName) {
  MetricsRegistry reg(4);
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.gauge("depth").set(3);
  reg.histogram("lat").record(5);
  const std::vector<MetricSample> snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].name, "a");
  EXPECT_EQ(snap[0].kind, MetricSample::Kind::Counter);
  EXPECT_EQ(snap[1].name, "b");
  EXPECT_EQ(snap[2].name, "depth");
  EXPECT_EQ(snap[2].kind, MetricSample::Kind::Gauge);
  EXPECT_EQ(snap[3].name, "lat");
  EXPECT_EQ(snap[3].kind, MetricSample::Kind::Histogram);
  EXPECT_EQ(snap[3].count, 1u);
  EXPECT_EQ(snap[3].sum, 5u);
}

TEST(MetricsRegistry, ConcurrentUpdatesAreExact) {
  MetricsRegistry reg(8);
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) {
        reg.counter("hits").add();
        reg.histogram("lat").record(static_cast<std::uint64_t>(i % 17));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.counter("hits").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram("lat").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistry, JsonRoundTripsThroughParser) {
  MetricsRegistry reg(4);
  reg.counter("sim.replays").add(3);
  reg.gauge("pool.queue_depth").set(2.5);
  reg.histogram("pool.chunk_ns").record(0);
  reg.histogram("pool.chunk_ns").record(5);
  reg.histogram("pool.chunk_ns").record(5);

  const report::JsonValue doc = report::JsonValue::parse(reg.to_json());
  const report::JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("sim.replays"), nullptr);
  EXPECT_DOUBLE_EQ(counters->find("sim.replays")->as_number(), 3.0);

  const report::JsonValue* gauges = doc.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("pool.queue_depth")->as_number(), 2.5);

  const report::JsonValue* histograms = doc.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const report::JsonValue* h = histograms->find("pool.chunk_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("count")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(h->find("sum")->as_number(), 10.0);
  const report::JsonValue* buckets = h->find("buckets");
  ASSERT_NE(buckets, nullptr);
  // Two non-empty buckets: [0 lower 0] x1 and [4,8) x2.
  ASSERT_EQ(buckets->items().size(), 2u);
  EXPECT_DOUBLE_EQ(buckets->items()[0].items()[0].as_number(), 0.0);
  EXPECT_DOUBLE_EQ(buckets->items()[0].items()[1].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(buckets->items()[1].items()[0].as_number(), 4.0);
  EXPECT_DOUBLE_EQ(buckets->items()[1].items()[1].as_number(), 2.0);
}

TEST(MetricsRegistry, ResetZeroesButKeepsReferences) {
  MetricsRegistry reg(2);
  Counter& c = reg.counter("n");
  c.add(9);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&reg.counter("n"), &c);
}

TEST(MetricsEnabled, FlagFlips) {
  EXPECT_FALSE(metrics_enabled());
  set_metrics_enabled(true);
  EXPECT_TRUE(metrics_enabled());
  set_metrics_enabled(false);
  EXPECT_FALSE(metrics_enabled());
}

}  // namespace
}  // namespace stamp::obs
