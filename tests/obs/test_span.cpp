#include "obs/span.hpp"

#include "obs/export.hpp"
#include "report/json_parse.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

namespace stamp::obs {
namespace {

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder rec;
  rec.begin("a", "cat");
  rec.instant("mark", "cat");
  rec.end();
  EXPECT_EQ(rec.event_count(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(TraceRecorder, NestedSpansCloseInnermostFirst) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.begin("outer", "t");
  rec.begin("inner", "t");
  rec.arg("k", 7);  // attaches to the innermost open span
  rec.end();
  rec.end();
  const std::vector<TraceEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Events complete inner-first; snapshot sorts by start time, so the outer
  // span (earlier ts) comes first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_TRUE(events[0].args.empty());
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].first, "k");
  EXPECT_DOUBLE_EQ(events[1].args[0].second, 7.0);
  // The inner span starts no earlier and ends no later than the outer one.
  EXPECT_GE(events[1].ts_us, events[0].ts_us);
  EXPECT_LE(events[1].ts_us + events[1].dur_us,
            events[0].ts_us + events[0].dur_us);
}

TEST(TraceRecorder, ThreadsGetDistinctTids) {
  TraceRecorder rec;
  rec.set_enabled(true);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec] {
      rec.begin("work", "t");
      rec.end();
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<TraceEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads));
  std::set<int> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(rec.thread_count(), kThreads);
}

TEST(TraceRecorder, NestingIsPerThread) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.begin("main-outer", "t");
  std::thread other([&rec] {
    rec.begin("other", "t");
    rec.arg("who", 2);  // must attach to "other", not "main-outer"
    rec.end();
  });
  other.join();
  rec.end();
  const std::vector<TraceEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  for (const TraceEvent& e : events) {
    if (e.name == "other") {
      ASSERT_EQ(e.args.size(), 1u);
      EXPECT_EQ(e.args[0].first, "who");
    } else {
      EXPECT_TRUE(e.args.empty());
    }
  }
}

TEST(TraceRecorder, InstantsAndClear) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.instant("tick", "clock");
  ASSERT_EQ(rec.event_count(), 1u);
  const std::vector<TraceEvent> events = rec.snapshot();
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_DOUBLE_EQ(events[0].dur_us, 0.0);
  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
  // The recorder still records after clear.
  rec.begin("again", "t");
  rec.end();
  EXPECT_EQ(rec.event_count(), 1u);
}

TEST(TraceRecorder, HalfOpenSpanAcrossDisableNeverCompletes) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.begin("open", "t");
  rec.set_enabled(false);
  rec.end();  // no-op while disabled
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(ScopedSpan, InactiveWhenTracingDisabled) {
  ASSERT_FALSE(tracing_enabled());
  {
    ScopedSpan span = ScopedSpan::if_enabled("noop", "t");
    EXPECT_FALSE(span.active());
    span.arg("k", 1);  // must be a no-op, not a crash
  }
  EXPECT_EQ(TraceRecorder::global().event_count(), 0u);
}

TEST(ScopedSpan, RecordsOnGlobalWhenEnabled) {
  set_tracing_enabled(true);
  TraceRecorder::global().clear();
  {
    ScopedSpan span = ScopedSpan::if_enabled("scoped", "t");
    EXPECT_TRUE(span.active());
    span.arg("n", 3);
  }
  const std::vector<TraceEvent> events = TraceRecorder::global().snapshot();
  set_tracing_enabled(false);
  TraceRecorder::global().clear();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "scoped");
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].args[0].second, 3.0);
}

TEST(ChromeExport, RoundTripsThroughJsonParser) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.begin("outer", "sweep");
  rec.arg("points", 16);
  rec.begin("inner", "cache");
  rec.end();
  rec.end();
  rec.instant("marker", "sim");

  const std::string json = chrome_trace_json(rec.snapshot());
  const report::JsonValue doc = report::JsonValue::parse(json);
  const report::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 3u);
  std::set<std::string> categories;
  for (const report::JsonValue& e : events->items()) {
    categories.insert(e.find("cat")->as_string());
    EXPECT_DOUBLE_EQ(e.find("pid")->as_number(), 1.0);
    EXPECT_GE(e.find("ts")->as_number(), 0.0);
  }
  EXPECT_EQ(categories, (std::set<std::string>{"sweep", "cache", "sim"}));

  // The validator accepts its own exporter's output and counts correctly.
  const TraceSummary summary = summarize_chrome_trace(json);
  EXPECT_EQ(summary.events, 3u);
  EXPECT_EQ(summary.complete_spans, 2u);
  EXPECT_EQ(summary.instants, 1u);
}

TEST(ChromeExport, ValidatorRejectsStructuralProblems) {
  EXPECT_THROW(summarize_chrome_trace(std::string("{}")), std::runtime_error);
  EXPECT_THROW(summarize_chrome_trace(std::string("{\"traceEvents\": 3}")),
               std::runtime_error);
  EXPECT_THROW(
      summarize_chrome_trace(std::string(
          R"({"traceEvents":[{"name":"a","cat":"c","ph":"X","ts":-1,"dur":0,"pid":1,"tid":1}]})")),
      std::runtime_error);
  EXPECT_THROW(
      summarize_chrome_trace(std::string(
          R"({"traceEvents":[{"name":"a","cat":"c","ph":"Q","ts":0,"dur":0,"pid":1,"tid":1}]})")),
      std::runtime_error);
  // A minimal valid trace passes.
  const TraceSummary s = summarize_chrome_trace(std::string(
      R"({"traceEvents":[{"name":"a","cat":"c","ph":"X","ts":0,"dur":2,"pid":1,"tid":1}]})"));
  EXPECT_EQ(s.events, 1u);
  EXPECT_DOUBLE_EQ(s.total_span_us, 2.0);
}

}  // namespace
}  // namespace stamp::obs
