#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "msg/bounded_mailbox.hpp"
#include "msg/mailbox.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

namespace stamp::msg {
namespace {

class ArmedPlan {
 public:
  explicit ArmedPlan(const fault::FaultPlan& plan) {
    fault::Injector::global().arm(plan);
  }
  ~ArmedPlan() { fault::Injector::global().disarm(); }
};

int drain(Mailbox<int>& box) {
  int count = 0;
  while (box.try_receive().has_value()) ++count;
  return count;
}

TEST(MailboxFaults, DisarmedSendsAreLossless) {
  fault::Injector::global().disarm();
  Mailbox<int> box;
  for (int i = 0; i < 100; ++i) box.send(i);
  EXPECT_EQ(box.size(), 100u);
}

TEST(MailboxFaults, CertainDropLosesEveryMessage) {
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::MsgDrop, 1.0);
  const ArmedPlan armed(plan);
  Mailbox<int> box;
  for (int i = 0; i < 10; ++i) box.send(i);
  EXPECT_EQ(box.size(), 0u);
  EXPECT_EQ(fault::Injector::global().injected(fault::FaultSite::MsgDrop),
            10u);
}

TEST(MailboxFaults, CertainDuplicateDoublesEveryMessage) {
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::MsgDuplicate, 1.0);
  const ArmedPlan armed(plan);
  Mailbox<int> box;
  for (int i = 0; i < 5; ++i) box.send(i);
  EXPECT_EQ(box.size(), 10u);
  // Duplicates are adjacent copies of the original.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(box.receive(), i);
    EXPECT_EQ(box.receive(), i);
  }
}

TEST(MailboxFaults, DropBeatsDuplicate) {
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::MsgDrop, 1.0)
      .with(fault::FaultSite::MsgDuplicate, 1.0);
  const ArmedPlan armed(plan);
  Mailbox<int> box;
  for (int i = 0; i < 10; ++i) box.send(i);
  EXPECT_EQ(box.size(), 0u);  // a dropped message cannot also duplicate
}

TEST(MailboxFaults, MoveOnlyTypesSkipDuplication) {
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::MsgDuplicate, 1.0);
  const ArmedPlan armed(plan);
  Mailbox<std::unique_ptr<int>> box;
  box.send(std::make_unique<int>(7));
  EXPECT_EQ(box.size(), 1u);  // move-only T: the duplicate is silently elided
}

TEST(MailboxFaults, DelayOnlySlowsButNeverLoses) {
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::MsgDelay, 1.0, /*magnitude=*/100.0);  // 100 ns
  const ArmedPlan armed(plan);
  Mailbox<int> box;
  for (int i = 0; i < 20; ++i) box.send(i);
  EXPECT_EQ(box.size(), 20u);
  EXPECT_EQ(fault::Injector::global().injected(fault::FaultSite::MsgDelay),
            20u);
}

TEST(MailboxFaults, ScheduleIsDeterministicPerActor) {
  fault::FaultPlan plan;
  plan.seed = 42;
  plan.with(fault::FaultSite::MsgDrop, 0.3);

  const auto run = [&plan] {
    const ArmedPlan armed(plan);
    std::vector<int> delivered;
    for (std::uint64_t actor = 0; actor < 3; ++actor) {
      const fault::ActorScope scope(actor);
      Mailbox<int> box;
      for (int i = 0; i < 50; ++i) box.send(i);
      delivered.push_back(drain(box));
    }
    return delivered;
  };

  const std::vector<int> first = run();
  EXPECT_EQ(run(), first);  // same seed, same actors => same losses
  int total = 0;
  for (const int n : first) total += n;
  EXPECT_GT(total, 0);
  EXPECT_LT(total, 150);
}

TEST(MailboxFaults, OnlyKeyTargetsOneActorsTraffic) {
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::MsgDrop, 1.0, 0,
            /*max_per_key=*/std::numeric_limits<std::uint64_t>::max(),
            /*only_key=*/1);
  const ArmedPlan armed(plan);
  Mailbox<int> box;
  {
    const fault::ActorScope scope(0);
    box.send(1);
  }
  {
    const fault::ActorScope scope(1);
    box.send(2);  // dropped: this actor is targeted
  }
  EXPECT_EQ(box.size(), 1u);
  EXPECT_EQ(box.receive(), 1);
}

TEST(BoundedMailboxFaults, CertainDropNeverBlocksOnAFullQueue) {
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::MsgDrop, 1.0);
  const ArmedPlan armed(plan);
  BoundedMailbox<int> box(1);
  // Every send is dropped in transit, so even capacity 1 never fills and the
  // sender never blocks.
  for (int i = 0; i < 10; ++i) box.send(i);
  EXPECT_EQ(box.size(), 0u);
}

TEST(BoundedMailboxFaults, DuplicateRespectsCapacity) {
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::MsgDuplicate, 1.0);
  const ArmedPlan armed(plan);
  BoundedMailbox<int> box(3);
  box.send(1);  // enqueues 1 + duplicate => size 2
  box.send(2);  // enqueues 2; duplicate elided (queue full at 3)
  EXPECT_EQ(box.size(), 3u);
  EXPECT_EQ(box.receive(), 1);
  EXPECT_EQ(box.receive(), 1);
  EXPECT_EQ(box.receive(), 2);
}

TEST(BoundedMailboxFaults, DroppedSendForReportsHandedOff) {
  fault::FaultPlan plan;
  plan.with(fault::FaultSite::MsgDrop, 1.0);
  const ArmedPlan armed(plan);
  BoundedMailbox<int> box(1);
  int v = 5;
  // The sender handed the message to the transit; the transit lost it.
  EXPECT_TRUE(box.send_for(v, std::chrono::milliseconds(5)));
  EXPECT_EQ(box.size(), 0u);
}

}  // namespace
}  // namespace stamp::msg
