#include "msg/mailbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace stamp::msg {
namespace {

TEST(Mailbox, FifoWithinSingleSender) {
  Mailbox<int> box;
  for (int i = 0; i < 10; ++i) box.send(i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(box.receive(), i);
}

TEST(Mailbox, TryReceiveEmpty) {
  Mailbox<int> box;
  EXPECT_FALSE(box.try_receive().has_value());
  box.send(7);
  const auto v = box.try_receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(Mailbox, SizeAndEmpty) {
  Mailbox<std::string> box;
  EXPECT_TRUE(box.empty());
  box.send("a");
  box.send("b");
  EXPECT_EQ(box.size(), 2u);
  (void)box.receive();
  EXPECT_EQ(box.size(), 1u);
}

TEST(Mailbox, MoveOnlyPayloadsWork) {
  Mailbox<std::unique_ptr<int>> box;
  box.send(std::make_unique<int>(5));
  const auto p = box.receive();
  ASSERT_TRUE(p);
  EXPECT_EQ(*p, 5);
}

TEST(Mailbox, CloseUnblocksReceiversAndRejectsSenders) {
  Mailbox<int> box;
  box.send(1);
  box.close();
  EXPECT_EQ(box.receive(), 1);           // drains queued messages
  EXPECT_THROW((void)box.receive(), MailboxClosed);  // then throws
  EXPECT_THROW(box.send(2), MailboxClosed);
  EXPECT_TRUE(box.closed());
}

TEST(Mailbox, BlockedReceiverWakesOnSend) {
  Mailbox<int> box;
  std::atomic<int> got{-1};
  std::jthread receiver([&] { got.store(box.receive()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(got.load(), -1);  // still blocked
  box.send(42);
  receiver.join();
  EXPECT_EQ(got.load(), 42);
}

TEST(Mailbox, BlockedReceiverWakesOnClose) {
  Mailbox<int> box;
  std::atomic<bool> threw{false};
  std::jthread receiver([&] {
    try {
      (void)box.receive();
    } catch (const MailboxClosed&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  box.close();
  receiver.join();
  EXPECT_TRUE(threw.load());
}

TEST(Mailbox, ManyProducersOneConsumerDeliversEverything) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 1000;
  Mailbox<int> box;
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) box.send(p * kPerProducer + i);
      });
    }
  }
  std::set<int> received;
  for (int i = 0; i < kProducers * kPerProducer; ++i)
    received.insert(box.receive());
  EXPECT_EQ(received.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  EXPECT_EQ(*received.begin(), 0);
  EXPECT_EQ(*received.rbegin(), kProducers * kPerProducer - 1);
}

TEST(Mailbox, ConcurrentProducersAndConsumers) {
  constexpr int kMessages = 4000;
  Mailbox<int> box;
  std::atomic<long long> sum{0};
  std::atomic<int> consumed{0};
  {
    std::vector<std::jthread> workers;
    for (int c = 0; c < 4; ++c) {
      workers.emplace_back([&] {
        while (consumed.fetch_add(1) < kMessages) sum += box.receive();
      });
    }
    for (int p = 0; p < 4; ++p) {
      workers.emplace_back([&, p] {
        for (int i = p; i < kMessages; i += 4) box.send(i);
      });
    }
    // Consumers that over-claimed (fetch_add >= kMessages) exit immediately.
  }
  EXPECT_EQ(sum.load(), static_cast<long long>(kMessages) * (kMessages - 1) / 2);
}

}  // namespace
}  // namespace stamp::msg
