#include "msg/communicator.hpp"

#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

// run_distributed is deprecated in favor of Evaluator::run; this file drives
// the layer under test through the executor directly on purpose (it sits
// below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace stamp::msg {
namespace {

using runtime::Context;
using runtime::PlacementMap;
using runtime::RoundScope;
using runtime::RunResult;

const Topology kTopo{.chips = 1, .processors_per_chip = 4,
                     .threads_per_processor = 4};

TEST(Communicator, RejectsBadArguments) {
  EXPECT_THROW(Communicator<int>(0), std::invalid_argument);
  Communicator<int> comm(2);
  const PlacementMap pm =
      PlacementMap::for_distribution(kTopo, 2, Distribution::IntraProc);
  (void)runtime::run_processes(pm, [&](Context& ctx) {
    if (ctx.id() == 0) {
      EXPECT_THROW(comm.send(ctx, 5, 1), std::out_of_range);
    }
  });
}

TEST(Communicator, PointToPointDeliversWithProvenance) {
  Communicator<int> comm(2);
  (void)runtime::run_distributed(kTopo, 2, Distribution::IntraProc,
                                 [&](Context& ctx) {
                                   if (ctx.id() == 0) {
                                     comm.send(ctx, 1, 99);
                                   } else {
                                     const Envelope<int> env = comm.receive(ctx);
                                     EXPECT_EQ(env.from, 0);
                                     EXPECT_EQ(env.value, 99);
                                   }
                                 });
}

TEST(Communicator, SendCountsIntraVsInter) {
  // Fill-first on a 4-thread machine: 0-3 share a processor, 4 is alone.
  Communicator<int> comm(5);
  const RunResult r = runtime::run_distributed(
      kTopo, 5, Distribution::IntraProc, [&](Context& ctx) {
        if (ctx.id() == 0) {
          comm.send(ctx, 1, 1);  // intra
          comm.send(ctx, 4, 1);  // inter
        } else if (ctx.id() == 1 || ctx.id() == 4) {
          (void)comm.receive(ctx);
        }
      });
  const CostCounters c0 = r.recorders[0].totals();
  EXPECT_DOUBLE_EQ(c0.m_s_a, 1);
  EXPECT_DOUBLE_EQ(c0.m_s_e, 1);
  const CostCounters c1 = r.recorders[1].totals();
  EXPECT_DOUBLE_EQ(c1.m_r_a, 1);  // sender 0 is intra with 1
  const CostCounters c4 = r.recorders[4].totals();
  EXPECT_DOUBLE_EQ(c4.m_r_e, 1);  // sender 0 is inter with 4
}

TEST(Communicator, BroadcastReachesEveryPeer) {
  constexpr int kN = 6;
  Communicator<int> comm(kN);
  (void)runtime::run_distributed(kTopo, kN, Distribution::IntraProc,
                                 [&](Context& ctx) {
                                   if (ctx.id() == 0) {
                                     comm.broadcast(ctx, 7);
                                   } else {
                                     EXPECT_EQ(comm.receive(ctx).value, 7);
                                   }
                                 });
}

TEST(Communicator, ExchangeGathersAllValuesByRank) {
  constexpr int kN = 8;
  Communicator<int> comm(kN, CommMode::Synchronous);
  (void)runtime::run_distributed(
      kTopo, kN, Distribution::IntraProc, [&](Context& ctx) {
        const std::vector<int> values = comm.exchange(ctx, ctx.id() * 10);
        ASSERT_EQ(values.size(), static_cast<std::size_t>(kN));
        for (int i = 0; i < kN; ++i) EXPECT_EQ(values[static_cast<std::size_t>(i)], i * 10);
      });
}

TEST(Communicator, ExchangeCountsMatchJacobiFormula) {
  // n processes: each sends n-1 and receives n-1 per exchange.
  constexpr int kN = 5;
  Communicator<double> comm(kN, CommMode::Synchronous);
  const RunResult r = runtime::run_distributed(
      kTopo, kN, Distribution::IntraProc, [&](Context& ctx) {
        RoundScope round(ctx.recorder());
        (void)comm.exchange(ctx, 1.0);
      });
  for (const auto& rec : r.recorders) {
    const CostCounters c = rec.totals();
    EXPECT_DOUBLE_EQ(c.m_s_a + c.m_s_e, kN - 1.0);
    EXPECT_DOUBLE_EQ(c.m_r_a + c.m_r_e, kN - 1.0);
  }
}

TEST(Communicator, RepeatedExchangesStayConsistent) {
  // Everyone folds the exchanged values the same way each round, so all
  // processes must hold identical values in lock step (unsigned arithmetic:
  // wraparound is defined).
  constexpr int kN = 4;
  constexpr int kRounds = 50;
  Communicator<unsigned> comm(kN, CommMode::Synchronous);
  std::vector<unsigned> finals(kN, 0);
  (void)runtime::run_distributed(
      kTopo, kN, Distribution::IntraProc, [&](Context& ctx) {
        unsigned value = static_cast<unsigned>(ctx.id());
        for (int round = 0; round < kRounds; ++round) {
          const std::vector<unsigned> values = comm.exchange(ctx, value);
          value = std::accumulate(values.begin(), values.end(), 0u);
        }
        finals[static_cast<std::size_t>(ctx.id())] = value;
      });
  for (int i = 1; i < kN; ++i) EXPECT_EQ(finals[0], finals[static_cast<std::size_t>(i)]);
}

TEST(Communicator, AsyncModeSkipsBarrier) {
  // Under async_comm a process may run ahead: process 0 completes two
  // exchanges' worth of sends before process 1 receives anything. With only
  // sends and try_receive this cannot deadlock.
  Communicator<int> comm(2, CommMode::Asynchronous);
  (void)runtime::run_distributed(kTopo, 2, Distribution::IntraProc,
                                 [&](Context& ctx) {
                                   if (ctx.id() == 0) {
                                     comm.send(ctx, 1, 1);
                                     comm.send(ctx, 1, 2);
                                   } else {
                                     EXPECT_EQ(comm.receive(ctx).value, 1);
                                     EXPECT_EQ(comm.receive(ctx).value, 2);
                                   }
                                 });
}

TEST(Communicator, ExplicitBarrierAligns) {
  constexpr int kN = 4;
  Communicator<int> comm(kN, CommMode::Asynchronous);
  std::atomic<int> arrived{0};
  (void)runtime::run_distributed(kTopo, kN, Distribution::IntraProc,
                                 [&](Context& ctx) {
                                   (void)ctx;
                                   arrived.fetch_add(1);
                                   comm.barrier();
                                   EXPECT_EQ(arrived.load(), kN);
                                 });
}

TEST(Communicator, CloseAllPropagates) {
  Communicator<int> comm(2);
  (void)runtime::run_distributed(kTopo, 2, Distribution::IntraProc,
                                 [&](Context& ctx) {
                                   if (ctx.id() == 0) {
                                     comm.close_all();
                                   } else {
                                     try {
                                       (void)comm.receive(ctx);
                                       // Either got closed...
                                       FAIL() << "expected MailboxClosed";
                                     } catch (const MailboxClosed&) {
                                       SUCCEED();
                                     }
                                   }
                                 });
}

}  // namespace
}  // namespace stamp::msg
