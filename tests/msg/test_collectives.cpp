#include "msg/collectives.hpp"

#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include <numeric>

// run_distributed is deprecated in favor of Evaluator::run; this file drives
// the layer under test through the executor directly on purpose (it sits
// below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace stamp::msg {
namespace {

using runtime::Context;

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

long long rank_value(int id) { return 100 + id * 7; }

class CollectiveSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizeTest, BroadcastDeliversToEveryProcess) {
  const int n = GetParam();
  Communicator<long long> comm(n, CommMode::Asynchronous);
  std::vector<long long> got(static_cast<std::size_t>(n), -1);
  (void)runtime::run_distributed(
      kTopo, n, Distribution::IntraProc, [&](Context& ctx) {
        const long long v = ctx.id() == 2 % n ? 4242 : -7;
        got[static_cast<std::size_t>(ctx.id())] =
            broadcast_tree(ctx, comm, v, 2 % n);
      });
  for (long long v : got) EXPECT_EQ(v, 4242);
}

TEST_P(CollectiveSizeTest, ReduceSumsAtRoot) {
  const int n = GetParam();
  Communicator<long long> comm(n, CommMode::Asynchronous);
  long long expected = 0;
  for (int i = 0; i < n; ++i) expected += rank_value(i);
  std::vector<long long> result(static_cast<std::size_t>(n), -1);
  (void)runtime::run_distributed(
      kTopo, n, Distribution::IntraProc, [&](Context& ctx) {
        result[static_cast<std::size_t>(ctx.id())] = reduce_tree(
            ctx, comm, rank_value(ctx.id()),
            [](long long a, long long b) { return a + b; });
      });
  EXPECT_EQ(result[0], expected);
}

TEST_P(CollectiveSizeTest, ScanComputesPrefixPerRank) {
  const int n = GetParam();
  Communicator<long long> comm(n, CommMode::Asynchronous);
  std::vector<long long> result(static_cast<std::size_t>(n), -1);
  (void)runtime::run_distributed(
      kTopo, n, Distribution::IntraProc, [&](Context& ctx) {
        result[static_cast<std::size_t>(ctx.id())] = scan_inclusive(
            ctx, comm, rank_value(ctx.id()),
            [](long long a, long long b) { return a + b; });
      });
  long long prefix = 0;
  for (int i = 0; i < n; ++i) {
    prefix += rank_value(i);
    EXPECT_EQ(result[static_cast<std::size_t>(i)], prefix) << "rank " << i;
  }
}

TEST_P(CollectiveSizeTest, GatherCollectsByRank) {
  const int n = GetParam();
  Communicator<long long> comm(n, CommMode::Asynchronous);
  std::vector<long long> at_root;
  (void)runtime::run_distributed(
      kTopo, n, Distribution::IntraProc, [&](Context& ctx) {
        std::vector<long long> got =
            gather(ctx, comm, rank_value(ctx.id()), /*root=*/0);
        if (ctx.id() == 0) at_root = std::move(got);
        else EXPECT_TRUE(got.empty());
      });
  ASSERT_EQ(at_root.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(at_root[static_cast<std::size_t>(i)], rank_value(i));
}

TEST_P(CollectiveSizeTest, ScatterDistributesByRank) {
  const int n = GetParam();
  Communicator<long long> comm(n, CommMode::Asynchronous);
  std::vector<long long> got(static_cast<std::size_t>(n), -1);
  (void)runtime::run_distributed(
      kTopo, n, Distribution::IntraProc, [&](Context& ctx) {
        std::vector<long long> values;
        if (ctx.id() == 0)
          for (int i = 0; i < n; ++i) values.push_back(rank_value(i));
        got[static_cast<std::size_t>(ctx.id())] =
            scatter(ctx, comm, std::move(values), 0);
      });
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(got[static_cast<std::size_t>(i)], rank_value(i));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CollectiveSizeTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16));

class DoublingTest : public ::testing::TestWithParam<int> {};

TEST_P(DoublingTest, AllReduceGivesEveryoneTheTotal) {
  const int n = GetParam();
  Communicator<long long> comm(n, CommMode::Asynchronous);
  long long expected = 0;
  for (int i = 0; i < n; ++i) expected += rank_value(i);
  std::vector<long long> result(static_cast<std::size_t>(n), -1);
  (void)runtime::run_distributed(
      kTopo, n, Distribution::IntraProc, [&](Context& ctx) {
        result[static_cast<std::size_t>(ctx.id())] = all_reduce_doubling(
            ctx, comm, rank_value(ctx.id()),
            [](long long a, long long b) { return a + b; });
      });
  for (long long v : result) EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, DoublingTest,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(Collectives, DoublingRejectsNonPowerOfTwo) {
  Communicator<int> comm(3, CommMode::Asynchronous);
  (void)runtime::run_distributed(
      kTopo, 3, Distribution::IntraProc, [&](Context& ctx) {
        EXPECT_THROW((void)all_reduce_doubling(ctx, comm, 1,
                                               [](int a, int b) { return a + b; }),
                     std::invalid_argument);
      });
}

TEST(Collectives, ScatterValidatesVectorSize) {
  Communicator<int> comm(1, CommMode::Asynchronous);
  (void)runtime::run_distributed(
      kTopo, 1, Distribution::IntraProc, [&](Context& ctx) {
        EXPECT_THROW((void)scatter(ctx, comm, std::vector<int>{1, 2}, 0),
                     std::invalid_argument);
      });
}

TEST(Collectives, TreeMessageCountsAreLogarithmic) {
  // With n = 16, a binomial broadcast has 15 messages total (one receive per
  // non-root process) and the root sends exactly log2(16) = 4 of them.
  constexpr int kN = 16;
  Communicator<int> comm(kN, CommMode::Asynchronous);
  const auto run = runtime::run_distributed(
      kTopo, kN, Distribution::IntraProc,
      [&](Context& ctx) { (void)broadcast_tree(ctx, comm, 5, 0); });
  const CostCounters totals = run.total_counters();
  EXPECT_DOUBLE_EQ(totals.m_s_a + totals.m_s_e, kN - 1.0);
  EXPECT_DOUBLE_EQ(totals.m_r_a + totals.m_r_e, kN - 1.0);
  const CostCounters root = run.recorders[0].totals();
  EXPECT_DOUBLE_EQ(root.m_s_a + root.m_s_e, 4.0);
  EXPECT_DOUBLE_EQ(root.m_r_a + root.m_r_e, 0.0);
}

TEST(Collectives, ReduceChargesOneSendPerNonRoot) {
  constexpr int kN = 8;
  Communicator<long long> comm(kN, CommMode::Asynchronous);
  const auto run = runtime::run_distributed(
      kTopo, kN, Distribution::IntraProc, [&](Context& ctx) {
        (void)reduce_tree(ctx, comm, 1LL,
                          [](long long a, long long b) { return a + b; });
      });
  for (int i = 1; i < kN; ++i) {
    const CostCounters t = run.recorders[static_cast<std::size_t>(i)].totals();
    EXPECT_DOUBLE_EQ(t.m_s_a + t.m_s_e, 1.0) << "rank " << i;
  }
}

TEST(Collectives, AllGatherDeliversEveryValueToEveryone) {
  constexpr int kN = 6;
  Communicator<long long> comm(kN, CommMode::Asynchronous);
  Communicator<std::vector<long long>> vec_comm(kN, CommMode::Asynchronous);
  std::vector<std::vector<long long>> got(kN);
  (void)runtime::run_distributed(
      kTopo, kN, Distribution::IntraProc, [&](Context& ctx) {
        got[static_cast<std::size_t>(ctx.id())] =
            all_gather(ctx, vec_comm, comm, rank_value(ctx.id()), 0);
      });
  for (int p = 0; p < kN; ++p) {
    ASSERT_EQ(got[static_cast<std::size_t>(p)].size(),
              static_cast<std::size_t>(kN));
    for (int i = 0; i < kN; ++i)
      EXPECT_EQ(got[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)],
                rank_value(i));
  }
}

TEST(Collectives, MinAndMaxOperatorsWork) {
  constexpr int kN = 8;
  Communicator<long long> comm(kN, CommMode::Asynchronous);
  std::vector<long long> mins(kN, 0);
  (void)runtime::run_distributed(
      kTopo, kN, Distribution::IntraProc, [&](Context& ctx) {
        mins[static_cast<std::size_t>(ctx.id())] = all_reduce_doubling(
            ctx, comm, rank_value(ctx.id()),
            [](long long a, long long b) { return std::min(a, b); });
      });
  for (long long v : mins) EXPECT_EQ(v, rank_value(0));
}

}  // namespace
}  // namespace stamp::msg
