#include "msg/bounded_mailbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace stamp::msg {
namespace {

TEST(BoundedMailbox, CapacityValidated) {
  EXPECT_THROW(BoundedMailbox<int>(0), std::invalid_argument);
  const BoundedMailbox<int> box(3);
  EXPECT_EQ(box.capacity(), 3u);
}

TEST(BoundedMailbox, FifoWithinCapacity) {
  BoundedMailbox<int> box(4);
  for (int i = 0; i < 4; ++i) box.send(i);
  EXPECT_EQ(box.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(box.receive(), i);
}

TEST(BoundedMailbox, TrySendFailsWhenFull) {
  BoundedMailbox<int> box(2);
  int v = 1;
  EXPECT_TRUE(box.try_send(v));
  v = 2;
  EXPECT_TRUE(box.try_send(v));
  v = 3;
  EXPECT_FALSE(box.try_send(v));
  EXPECT_EQ(v, 3);  // value untouched on failure
  (void)box.receive();
  EXPECT_TRUE(box.try_send(v));
}

TEST(BoundedMailbox, FullSenderBlocksUntilReceive) {
  BoundedMailbox<int> box(1);
  box.send(1);
  std::atomic<bool> sent{false};
  std::jthread producer([&] {
    box.send(2);  // blocks: full
    sent.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(sent.load());
  EXPECT_EQ(box.receive(), 1);  // frees a slot
  producer.join();
  EXPECT_TRUE(sent.load());
  EXPECT_EQ(box.receive(), 2);
}

TEST(BoundedMailbox, CloseUnblocksBlockedSender) {
  BoundedMailbox<int> box(1);
  box.send(1);
  std::atomic<bool> threw{false};
  std::jthread producer([&] {
    try {
      box.send(2);
    } catch (const BoundedMailboxClosed&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.close();
  producer.join();
  EXPECT_TRUE(threw.load());
}

TEST(BoundedMailbox, CloseUnblocksTwoBlockedSendersAtOnce) {
  // Shutdown-race regression: close() must wake EVERY blocked sender, not
  // just one. With two senders parked on a full queue, a notify_one (or a
  // predicate that misses closed_) would leave the second thread blocked
  // forever and this test would hang.
  BoundedMailbox<int> box(1);
  box.send(1);
  std::atomic<int> threw{0};
  auto blocked_sender = [&](int value) {
    try {
      box.send(value);
    } catch (const BoundedMailboxClosed&) {
      threw.fetch_add(1);
    }
  };
  std::jthread first(blocked_sender, 2);
  std::jthread second(blocked_sender, 3);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(threw.load(), 0);  // both parked on the full queue
  box.close();
  first.join();
  second.join();
  EXPECT_EQ(threw.load(), 2);
}

TEST(BoundedMailbox, SendForTimesOutWhenFull) {
  BoundedMailbox<int> box(1);
  box.send(1);
  int v = 2;
  EXPECT_FALSE(box.send_for(v, std::chrono::milliseconds(5)));
  EXPECT_EQ(v, 2);  // value untouched on timeout
  EXPECT_EQ(box.receive(), 1);
  EXPECT_TRUE(box.send_for(v, std::chrono::milliseconds(5)));
  EXPECT_EQ(box.receive(), 2);
}

TEST(BoundedMailbox, SendForSucceedsOnceASlotFrees) {
  BoundedMailbox<int> box(1);
  box.send(1);
  std::jthread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(box.receive(), 1);
  });
  int v = 2;
  EXPECT_TRUE(box.send_for(v, std::chrono::seconds(5)));
  consumer.join();
  EXPECT_EQ(box.receive(), 2);
}

TEST(BoundedMailbox, SendForThrowsWhenClosedWhileWaiting) {
  BoundedMailbox<int> box(1);
  box.send(1);
  std::jthread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.close();
  });
  int v = 2;
  EXPECT_THROW((void)box.send_for(v, std::chrono::seconds(5)),
               BoundedMailboxClosed);
}

TEST(BoundedMailbox, RecvForTimesOutOnEmptyAndDeliversWhenFed) {
  BoundedMailbox<int> box(2);
  EXPECT_FALSE(box.recv_for(std::chrono::milliseconds(5)).has_value());
  box.send(9);
  const auto v = box.recv_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
}

TEST(BoundedMailbox, RecvForDrainsThenThrowsAfterClose) {
  BoundedMailbox<int> box(2);
  box.send(7);
  box.close();
  const auto v = box.recv_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_THROW((void)box.recv_for(std::chrono::milliseconds(5)),
               BoundedMailboxClosed);
}

// Regression for the timeout-vs-arrival race in recv_for: a message (or a
// close) that lands exactly as the deadline expires must beat the timeout.
// The old predicate-form wait could wake on the deadline, skip the final
// queue check, and report nullopt with a message sitting in the queue — a
// lost wakeup the serve drain path turns into a dropped request. The loop
// now re-checks the queue and the closed flag under the lock after a
// timed-out wait; this test hammers that window: a receiver with a tiny
// timeout races a sender timed to land on it, and every message must be
// either delivered or still in the queue — never both lost and queued.
TEST(BoundedMailbox, RecvForTimeoutRacingSendNeverLosesTheMessage) {
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    BoundedMailbox<int> box(1);
    std::atomic<bool> go{false};
    std::thread sender([&] {
      while (!go.load(std::memory_order_acquire)) {}
      box.send(round);
    });
    go.store(true, std::memory_order_release);
    // A 0ms wait expires immediately: the wait_until returns timeout on
    // nearly every round, so the final under-lock re-check is what must
    // find any message that squeaked in.
    const auto v = box.recv_for(std::chrono::milliseconds(0));
    sender.join();
    if (v.has_value()) {
      EXPECT_EQ(*v, round);
      EXPECT_EQ(box.size(), 0u);
    } else {
      // Timed out before the send landed: the message must still be there.
      EXPECT_EQ(box.receive(), round);
    }
  }
}

// The companion race: close() arriving on the expiring deadline must surface
// as BoundedMailboxClosed (the drain signal), not as a silent timeout the
// receiver would misread as "try again" against a dead mailbox.
TEST(BoundedMailbox, RecvForTimeoutRacingCloseThrowsNotTimesOut) {
  constexpr int kRounds = 200;
  int closed_seen = 0;
  for (int round = 0; round < kRounds; ++round) {
    BoundedMailbox<int> box(1);
    std::atomic<bool> go{false};
    std::thread closer([&] {
      while (!go.load(std::memory_order_acquire)) {}
      box.close();
    });
    go.store(true, std::memory_order_release);
    try {
      // A nullopt here means the final under-lock check saw the mailbox
      // still open; close() must have landed after recv_for returned. Either
      // way an empty optional is only ever "open at timeout", never a
      // swallowed close.
      EXPECT_FALSE(box.recv_for(std::chrono::milliseconds(0)).has_value());
    } catch (const BoundedMailboxClosed&) {
      ++closed_seen;
    }
    closer.join();
    EXPECT_TRUE(box.closed());
  }
  // Both outcomes are timing-dependent, but across 200 rounds the close must
  // win at least once — otherwise the race under test never happened.
  EXPECT_GT(closed_seen, 0);
}

TEST(BoundedMailbox, CloseDrainsThenThrows) {
  BoundedMailbox<int> box(2);
  box.send(7);
  box.close();
  EXPECT_EQ(box.receive(), 7);
  EXPECT_THROW((void)box.receive(), BoundedMailboxClosed);
  int v = 1;
  EXPECT_THROW((void)box.try_send(v), BoundedMailboxClosed);
  EXPECT_TRUE(box.closed());
}

TEST(BoundedMailbox, TryReceiveNonBlocking) {
  BoundedMailbox<int> box(2);
  EXPECT_FALSE(box.try_receive().has_value());
  box.send(5);
  const auto v = box.try_receive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

TEST(BoundedMailbox, BackpressureBoundsQueue) {
  // A fast producer against a slow consumer: the queue must never exceed the
  // capacity, and nothing may be lost.
  constexpr int kMessages = 2000;
  constexpr std::size_t kCapacity = 8;
  BoundedMailbox<int> box(kCapacity);
  std::atomic<std::size_t> max_seen{0};
  std::jthread producer([&] {
    for (int i = 0; i < kMessages; ++i) {
      box.send(i);
      std::size_t sz = box.size();
      std::size_t prev = max_seen.load();
      while (sz > prev && !max_seen.compare_exchange_weak(prev, sz)) {
      }
    }
  });
  long long sum = 0;
  for (int i = 0; i < kMessages; ++i) sum += box.receive();
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(kMessages) * (kMessages - 1) / 2);
  EXPECT_LE(max_seen.load(), kCapacity);
}

TEST(BoundedMailbox, CapacityOneActsAsRendezvousPipe) {
  BoundedMailbox<int> box(1);
  std::jthread producer([&] {
    for (int i = 0; i < 100; ++i) box.send(i);
  });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(box.receive(), i);
}

}  // namespace
}  // namespace stamp::msg
