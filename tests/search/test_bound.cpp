// Admissibility of the branch-and-bound lower bounds: for every axis prefix
// of a grid, the bound must not exceed the objective value of any grid point
// completing that prefix (the values the sweep actually records, feasibility
// preference and all). Violations would silently prune the optimum — the
// bit-identity property test would catch the symptom, this one catches the
// cause at the exact prefix that broke.

#include "api/stamp.hpp"
#include "search/bound.hpp"

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

namespace stamp::search {
namespace {

/// Check every prefix depth of every grid point against the exhaustively
/// evaluated records.
void expect_admissible(const sweep::SweepConfig& cfg) {
  SearchRequest req;
  req.config = cfg;
  req.method = SearchMethod::Exhaustive;
  req.record_trace = false;
  const Evaluator eval;
  const sweep::SweepResult swept = eval.sweep(cfg);
  ASSERT_EQ(swept.records.size(), cfg.grid.size());

  const BoundContext ctx(cfg);
  const std::size_t naxes = cfg.grid.axes().size();
  for (const sweep::SweepRecord& rec : swept.records) {
    const double value = metric_value(rec.metrics, cfg.objective);
    for (std::size_t depth = 0; depth <= naxes; ++depth) {
      const double bound =
          ctx.lower_bound(std::span<const double>(rec.params.data(), depth));
      ASSERT_LE(bound, value)
          << "inadmissible bound at depth " << depth << " of grid index "
          << rec.index;
    }
  }
}

TEST(SearchBound, AdmissibleOnCanonicalAllObjectives) {
  for (int o = 0; o < 4; ++o) {
    sweep::SweepConfig cfg = sweep::SweepConfig::canonical();
    cfg.objective = static_cast<Objective>(o);
    SCOPED_TRACE(std::string(to_string(cfg.objective)));
    expect_admissible(cfg);
  }
}

TEST(SearchBound, AdmissibleWithProcessAxis) {
  sweep::SweepConfig cfg = sweep::SweepConfig::canonical();
  cfg.grid.axis(std::string(sweep::axes::kProcesses), {1, 4, 16, 64});
  expect_admissible(cfg);
}

TEST(SearchBound, AdmissibleOnLocalOnlyWorkload) {
  // No communication at all: the shm/mp brackets must stay switched off in
  // the bound exactly as they do in the cost model.
  sweep::SweepConfig cfg = sweep::SweepConfig::canonical();
  cfg.profile.d_r = cfg.profile.d_w = 0;
  cfg.profile.m_s = cfg.profile.m_r = 0;
  cfg.workload = "local-only";
  expect_admissible(cfg);
}

TEST(SearchBound, EnergyIsExactAcrossTheGrid) {
  // Equation (2) gives every point of one config the same total energy; the
  // bound relies on that, so pin it against the evaluated records.
  const sweep::SweepConfig cfg = sweep::SweepConfig::canonical();
  const BoundContext ctx(cfg);
  const Evaluator eval;
  const sweep::SweepResult swept = eval.sweep(cfg);
  for (const sweep::SweepRecord& rec : swept.records) {
    // PDP = E for the recorded total cost.
    EXPECT_DOUBLE_EQ(rec.metrics.PDP, ctx.exact_energy())
        << "at grid index " << rec.index;
  }
}

TEST(SearchBound, FullPointPrefixBoundsThatPointTightly) {
  // At full depth every axis is fixed; the bound must still sit below the
  // exact value (it relaxes placement and process count), but within the
  // same order of magnitude — a vacuous bound (0, or -inf clamped) would
  // make branch-and-bound exhaustive.
  const sweep::SweepConfig cfg = sweep::SweepConfig::canonical();
  const Evaluator eval;
  const sweep::SweepResult swept = eval.sweep(cfg);
  const BoundContext ctx(cfg);
  for (const sweep::SweepRecord& rec : swept.records) {
    const double bound = ctx.lower_bound(rec.params);
    const double value = metric_value(rec.metrics, cfg.objective);
    ASSERT_LE(bound, value);
    ASSERT_GT(bound, 0.0) << "vacuous bound at grid index " << rec.index;
  }
}

}  // namespace
}  // namespace stamp::search
