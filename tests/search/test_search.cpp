// The guided search's exactness contract: on any grid, branch-and-bound
// returns the bit-identical winning record the exhaustive argmin produces —
// same index, same params, same metrics, same classical baselines — while
// pruning. Checked on ~50 randomized grids across all four objectives, plus
// the canonical config and the determinism/cancellation edges.

#include "api/stamp.hpp"
#include "fault/prng.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace stamp::search {
namespace {

/// A small random grid: a random subset of the known axes (plus always at
/// least two axes so there is structure to search), random value subsets.
sweep::SweepConfig random_config(std::uint64_t seed) {
  fault::SplitMix64 rng(seed);
  sweep::SweepConfig cfg;
  const auto pick = [&](std::vector<double> all, std::size_t min_count) {
    const std::size_t count =
        min_count + rng.next() % (all.size() - min_count + 1);
    // Keep a sorted prefix after a cheap shuffle so values stay distinct.
    for (std::size_t i = all.size(); i-- > 1;)
      std::swap(all[i], all[rng.next() % (i + 1)]);
    all.resize(count);
    return all;
  };
  cfg.grid.axis(std::string(sweep::axes::kCores), pick({1, 2, 4, 8}, 1))
      .axis(std::string(sweep::axes::kThreadsPerCore), pick({1, 2, 4}, 1));
  if (rng.next() % 2)
    cfg.grid.axis(std::string(sweep::axes::kEllE), pick({6, 12, 24, 40}, 1));
  if (rng.next() % 2)
    cfg.grid.axis(std::string(sweep::axes::kLE), pick({24, 48, 96}, 1));
  if (rng.next() % 2)
    cfg.grid.axis(std::string(sweep::axes::kGShE), pick({1, 2, 4, 8}, 1));
  if (rng.next() % 2)
    cfg.grid.axis(std::string(sweep::axes::kKappa), pick({0, 4, 8, 16}, 1));
  cfg.grid.axis(std::string(sweep::axes::kPlacement), pick({0, 1, 2}, 1));
  if (rng.next() % 2)
    cfg.grid.axis(std::string(sweep::axes::kProcesses), pick({4, 16, 64}, 1));

  cfg.base = presets::niagara();
  cfg.profile.c_fp = 500 + static_cast<double>(rng.next() % 4000);
  cfg.profile.c_int = 500 + static_cast<double>(rng.next() % 8000);
  cfg.profile.d_r = static_cast<double>(rng.next() % 2048);
  cfg.profile.d_w = static_cast<double>(rng.next() % 512);
  cfg.profile.m_s = static_cast<double>(rng.next() % 256);
  cfg.profile.m_r = static_cast<double>(rng.next() % 256);
  cfg.profile.kappa = static_cast<double>(rng.next() % 8);
  cfg.profile.units = 1 + static_cast<double>(rng.next() % 4);
  cfg.processes = 1 << (rng.next() % 7);
  cfg.objective = static_cast<Objective>(seed % 4);
  cfg.workload = "random-" + std::to_string(seed);
  return cfg;
}

SearchRequest request_for(const sweep::SweepConfig& cfg, SearchMethod method,
                          std::uint64_t seed = 1) {
  SearchRequest req;
  req.config = cfg;
  req.method = method;
  req.seed = seed;
  return req;
}

TEST(SearchProperty, BnbMatchesExhaustiveArgminOnRandomGrids) {
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    const sweep::SweepConfig cfg = random_config(1000 + trial);
    SCOPED_TRACE("trial " + std::to_string(trial) + " objective " +
                 std::string(to_string(cfg.objective)) + " points " +
                 std::to_string(cfg.grid.size()));

    const SearchResult oracle =
        run_search(request_for(cfg, SearchMethod::Exhaustive));
    SearchRequest bnb = request_for(cfg, SearchMethod::BranchAndBound);
    bnb.warm_start = trial % 2 == 0;  // exercise both incumbent paths
    const SearchResult found = run_search(bnb);

    ASSERT_TRUE(oracle.found);
    ASSERT_TRUE(found.found);
    EXPECT_EQ(found.best, oracle.best);  // bit-identical record
    EXPECT_EQ(oracle.stats.points_evaluated, cfg.grid.size());
  }
}

TEST(SearchProperty, BnbMatchesExhaustiveOnTenThousandPointGrids) {
  for (const std::uint64_t seed : {7ull, 8ull}) {
    sweep::SweepConfig cfg = random_config(seed);
    // Densify axes until the grid passes ~10^4 points.
    cfg.grid = sweep::ParamGrid{};
    cfg.grid.axis(std::string(sweep::axes::kCores), {1, 2, 4, 8})
        .axis(std::string(sweep::axes::kThreadsPerCore), {1, 2, 4})
        .axis(std::string(sweep::axes::kEllE), sweep::linspace(6, 40, 8))
        .axis(std::string(sweep::axes::kLE), sweep::linspace(24, 96, 8))
        .axis(std::string(sweep::axes::kGShE), sweep::linspace(1, 8, 4))
        .axis(std::string(sweep::axes::kKappa), {0, 8})
        .axis(std::string(sweep::axes::kPlacement), {0, 1, 2})
        .axis(std::string(sweep::axes::kProcesses), {4, 64});
    cfg.objective = seed % 2 ? Objective::EDP : Objective::D;
    ASSERT_GE(cfg.grid.size(), 10000u);

    const SearchResult oracle =
        run_search(request_for(cfg, SearchMethod::Exhaustive));
    const SearchResult found =
        run_search(request_for(cfg, SearchMethod::BranchAndBound));
    ASSERT_TRUE(found.found);
    EXPECT_EQ(found.best, oracle.best);
    // The whole point: the winner without the whole grid.
    EXPECT_LT(found.stats.points_evaluated, cfg.grid.size());
  }
}

TEST(SearchProperty, AllObjectivesAgreeWithSweepWinner) {
  for (int o = 0; o < 4; ++o) {
    sweep::SweepConfig cfg = sweep::SweepConfig::canonical();
    cfg.objective = static_cast<Objective>(o);
    SCOPED_TRACE(std::string(to_string(cfg.objective)));

    const Evaluator eval;
    const sweep::SweepResult swept = eval.sweep(cfg);
    const std::size_t winner =
        best_record_index(swept.records, cfg.objective);
    ASSERT_LT(winner, swept.records.size());

    const SearchResult found =
        eval.optimize(request_for(cfg, SearchMethod::BranchAndBound));
    ASSERT_TRUE(found.found);
    EXPECT_EQ(found.best, swept.records[winner]);
  }
}

TEST(Search, ExhaustiveEvaluatesEverythingAndMatchesSweep) {
  const sweep::SweepConfig cfg = sweep::SweepConfig::canonical();
  const Evaluator eval;
  const sweep::SweepResult swept = eval.sweep(cfg);
  const SearchResult oracle =
      eval.optimize(request_for(cfg, SearchMethod::Exhaustive));
  ASSERT_TRUE(oracle.found);
  EXPECT_EQ(oracle.stats.points_evaluated, cfg.grid.size());
  EXPECT_EQ(oracle.best,
            swept.records[best_record_index(swept.records, cfg.objective)]);
}

TEST(Search, BnbPrunesOnCanonical) {
  const sweep::SweepConfig cfg = sweep::SweepConfig::canonical();
  const SearchResult found =
      run_search(request_for(cfg, SearchMethod::BranchAndBound));
  ASSERT_TRUE(found.found);
  EXPECT_GT(found.stats.nodes_pruned, 0u);
  EXPECT_LT(found.stats.points_evaluated, cfg.grid.size());
}

TEST(Search, AnnealSameSeedIsByteIdentical) {
  const sweep::SweepConfig cfg = sweep::SweepConfig::canonical();
  SearchRequest req = request_for(cfg, SearchMethod::Anneal, 42);
  const std::string a = to_json(run_search(req));
  req.threads = 4;  // annealing is serial by contract; threads must not leak
  const std::string b = to_json(run_search(req));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(Search, AnnealDifferentSeedsSearchDifferently) {
  const sweep::SweepConfig cfg = sweep::SweepConfig::canonical();
  const SearchResult a = run_search(request_for(cfg, SearchMethod::Anneal, 1));
  const SearchResult b = run_search(request_for(cfg, SearchMethod::Anneal, 2));
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  // Both must still land on *a* good point; the trajectories should differ.
  EXPECT_NE(to_json(a), to_json(b));
}

TEST(Search, AnnealFindsCanonicalOptimum) {
  // Not guaranteed in general, but canonical() is small and well-behaved;
  // a failing seed here means the chain or polish regressed.
  const sweep::SweepConfig cfg = sweep::SweepConfig::canonical();
  const SearchResult oracle =
      run_search(request_for(cfg, SearchMethod::Exhaustive));
  const SearchResult found =
      run_search(request_for(cfg, SearchMethod::Anneal, 42));
  ASSERT_TRUE(found.found);
  EXPECT_EQ(found.best, oracle.best);
}

TEST(Search, BnbArtifactIdenticalAcrossThreadCounts) {
  sweep::SweepConfig cfg = sweep::SweepConfig::canonical();
  cfg.grid.axis(std::string(sweep::axes::kProcesses), {4, 16, 64});
  SearchRequest req = request_for(cfg, SearchMethod::BranchAndBound);
  req.leaf_block = 1024;  // large leaves so the pool actually engages
  const Evaluator eval;
  const std::string serial = to_json(eval.optimize(req));
  req.threads = 4;
  const std::string pooled = to_json(eval.optimize(req));
  EXPECT_EQ(serial, pooled);
}

TEST(Search, EmptyGridFindsNothing) {
  SearchRequest req;
  req.config.base = presets::niagara();
  for (const SearchMethod m : {SearchMethod::BranchAndBound,
                               SearchMethod::Anneal,
                               SearchMethod::Exhaustive}) {
    req.method = m;
    const SearchResult res = run_search(req);
    EXPECT_FALSE(res.found);
    EXPECT_EQ(res.grid_points, 0u);
    EXPECT_EQ(res.stats.points_evaluated, 0u);
  }
}

TEST(Search, PreCancelledTokenCancelsEveryMethod) {
  core::CancelToken token;
  token.request_cancel();
  SearchRequest req = request_for(sweep::SweepConfig::canonical(),
                                  SearchMethod::BranchAndBound);
  req.cancel = &token;
  for (const SearchMethod m : {SearchMethod::BranchAndBound,
                               SearchMethod::Anneal,
                               SearchMethod::Exhaustive}) {
    req.method = m;
    const SearchResult res = run_search(req);
    EXPECT_TRUE(res.cancelled);
    EXPECT_FALSE(res.found);
  }
}

TEST(Search, TraceCapTruncatesDeterministically) {
  SearchRequest req = request_for(sweep::SweepConfig::canonical(),
                                  SearchMethod::Exhaustive);
  req.max_trace_events = 2;
  const SearchResult res = run_search(req);
  EXPECT_EQ(res.trace.size(), 2u);
  EXPECT_TRUE(res.stats.trace_truncated);
}

TEST(Search, RecordBeatsOrdersLikeSweepWinner) {
  sweep::SweepRecord feasible_slow, feasible_fast, infeasible_fast;
  feasible_slow.index = 0;
  feasible_slow.feasible = true;
  feasible_slow.metrics.EDP = 10;
  feasible_fast.index = 1;
  feasible_fast.feasible = true;
  feasible_fast.metrics.EDP = 5;
  infeasible_fast.index = 2;
  infeasible_fast.metrics.EDP = 1;

  EXPECT_TRUE(record_beats(feasible_fast, feasible_slow, Objective::EDP));
  EXPECT_TRUE(record_beats(feasible_slow, infeasible_fast, Objective::EDP));
  EXPECT_FALSE(record_beats(infeasible_fast, feasible_fast, Objective::EDP));

  // Equal value: the lower grid index wins, in both argument orders.
  sweep::SweepRecord tie = feasible_fast;
  tie.index = 7;
  EXPECT_TRUE(record_beats(feasible_fast, tie, Objective::EDP));
  EXPECT_FALSE(record_beats(tie, feasible_fast, Objective::EDP));
}

}  // namespace
}  // namespace stamp::search
