#include "tools/cli.hpp"

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>
#include <vector>

namespace stamp::tools {
namespace {

/// argv helper: gtest owns the strings, the parser sees char**.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : args_(std::move(args)) {
    ptrs_.push_back(const_cast<char*>("prog"));
    for (std::string& a : args_) ptrs_.push_back(a.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(ptrs_.size()); }
  [[nodiscard]] char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> args_;
  std::vector<char*> ptrs_;
};

TEST(Cli, ParsesFlagsOptionsAndPositionals) {
  std::string grid;
  int threads = 0;
  bool stats = false;
  std::string input;
  Cli cli("prog", "test");
  cli.option_string("grid", &grid, "NAME", "grid")
      .option_int("threads", &threads, "N", "threads")
      .flag("stats", &stats, "stats")
      .positional("input", &input, "input file");

  Argv argv({"--grid", "tiny", "in.json", "--threads", "8", "--stats"});
  EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Ok);
  EXPECT_EQ(grid, "tiny");
  EXPECT_EQ(threads, 8);
  EXPECT_TRUE(stats);
  EXPECT_EQ(input, "in.json");
}

TEST(Cli, DefaultsSurviveWhenOptionsAbsent) {
  std::string grid = "canonical";
  int threads = 4;
  Cli cli("prog", "test");
  cli.option_string("grid", &grid, "NAME", "grid")
      .option_int("threads", &threads, "N", "threads");
  Argv argv({});
  EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Ok);
  EXPECT_EQ(grid, "canonical");
  EXPECT_EQ(threads, 4);
}

TEST(Cli, RepeatableOptionAccumulates) {
  std::vector<std::string> tols;
  Cli cli("prog", "test");
  cli.option_list("tol", &tols, "SPEC", "tolerance");
  Argv argv({"--tol", "D=0.1", "--tol", "EDP=0.2"});
  EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Ok);
  EXPECT_EQ(tols, (std::vector<std::string>{"D=0.1", "EDP=0.2"}));
}

TEST(Cli, ErrorsOnUnknownOptionMissingValueAndBadInt) {
  {
    Cli cli("prog", "test");
    Argv argv({"--bogus"});
    EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Error);
  }
  {
    int threads = 0;
    Cli cli("prog", "test");
    cli.option_int("threads", &threads, "N", "threads");
    Argv argv({"--threads"});
    EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Error);
  }
  {
    int threads = 0;
    Cli cli("prog", "test");
    cli.option_int("threads", &threads, "N", "threads");
    Argv argv({"--threads", "lots"});
    EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Error);
  }
  {
    int threads = 0;
    Cli cli("prog", "test");
    cli.option_int("threads", &threads, "N", "threads");
    Argv argv({"--threads", "-3"});
    EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Error);
  }
}

TEST(Cli, UnknownOptionSuggestsNearestName) {
  std::string grid;
  int threads = 0;
  Cli cli("prog", "test");
  cli.option_string("grid", &grid, "NAME", "grid")
      .option_int("threads", &threads, "N", "threads");
  Argv argv({"--grd", "tiny"});
  testing::internal::CaptureStderr();
  const Cli::Parse result = cli.parse(argv.argc(), argv.argv());
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(result, Cli::Parse::Error);
  EXPECT_NE(err.find("unknown option '--grd'"), std::string::npos);
  EXPECT_NE(err.find("did you mean '--grid'?"), std::string::npos);
}

TEST(Cli, UnknownOptionFarFromEverythingGetsNoSuggestion) {
  std::string grid;
  Cli cli("prog", "test");
  cli.option_string("grid", &grid, "NAME", "grid");
  Argv argv({"--frobnicate"});
  testing::internal::CaptureStderr();
  const Cli::Parse result = cli.parse(argv.argc(), argv.argv());
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(result, Cli::Parse::Error);
  EXPECT_EQ(err.find("did you mean"), std::string::npos);
}

TEST(Cli, DuplicateScalarOptionIsRejected) {
  {
    std::string grid;
    Cli cli("prog", "test");
    cli.option_string("grid", &grid, "NAME", "grid");
    Argv argv({"--grid", "tiny", "--grid", "canonical"});
    testing::internal::CaptureStderr();
    const Cli::Parse result = cli.parse(argv.argc(), argv.argv());
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(result, Cli::Parse::Error);
    EXPECT_NE(err.find("'--grid' given more than once"), std::string::npos);
  }
  {
    int threads = 0;
    Cli cli("prog", "test");
    cli.option_int("threads", &threads, "N", "threads");
    Argv argv({"--threads", "2", "--threads", "4"});
    EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Error);
  }
}

TEST(Cli, RepeatedFlagAndListStayAllowed) {
  bool stats = false;
  std::vector<std::string> tols;
  Cli cli("prog", "test");
  cli.flag("stats", &stats, "stats").option_list("tol", &tols, "SPEC", "tol");
  Argv argv({"--stats", "--tol", "a", "--stats", "--tol", "b"});
  EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Ok);
  EXPECT_TRUE(stats);
  EXPECT_EQ(tols, (std::vector<std::string>{"a", "b"}));
}

TEST(Cli, ParsesDoubleOption) {
  {
    double prob = 0;
    Cli cli("prog", "test");
    cli.option_double("prob", &prob, "P", "probability");
    Argv argv({"--prob", "0.25"});
    EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Ok);
    EXPECT_DOUBLE_EQ(prob, 0.25);
  }
  {
    double prob = 0;
    Cli cli("prog", "test");
    cli.option_double("prob", &prob, "P", "probability");
    Argv argv({"--prob", "1e-3"});
    EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Ok);
    EXPECT_DOUBLE_EQ(prob, 1e-3);
  }
  for (const char* bad : {"abc", "-0.5", "", "1.5x"}) {
    double prob = 0;
    Cli cli("prog", "test");
    cli.option_double("prob", &prob, "P", "probability");
    Argv argv({"--prob", bad});
    EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Error)
        << "value '" << bad << "'";
  }
}

TEST(Cli, ErrorsOnMissingAndExtraPositionals) {
  {
    std::string a;
    Cli cli("prog", "test");
    cli.positional("a", &a, "first");
    Argv argv({});
    EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Error);
  }
  {
    std::string a;
    Cli cli("prog", "test");
    cli.positional("a", &a, "first");
    Argv argv({"one", "two"});
    EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Error);
  }
}

TEST(Cli, ParsesU64OptionBeyondIntRange) {
  std::uint64_t ttl = 7;
  std::uint64_t seed = 0;
  Cli cli("prog", "test");
  cli.option_u64("ttl-ns", &ttl, "NS", "ttl")
      .option_u64("seed", &seed, "SEED", "seed");
  Argv argv({"--ttl-ns", "86400000000000", "--seed", "18446744073709551615"});
  EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Ok);
  EXPECT_EQ(ttl, 86400000000000u);                    // a day of nanoseconds
  EXPECT_EQ(seed, 18446744073709551615u);             // UINT64_MAX
}

TEST(Cli, U64RejectsSignsGarbageAndOverflow) {
  std::uint64_t v = 3;
  for (const char* bad : {"-1", "+2", "1.5", "abc", "", "18446744073709551616",
                          "99999999999999999999999"}) {
    Cli cli("prog", "test");
    cli.option_u64("n", &v, "N", "n");
    Argv argv({"--n", bad});
    testing::internal::CaptureStderr();
    EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Error) << bad;
    testing::internal::GetCapturedStderr();
    EXPECT_EQ(v, 3u) << "target clobbered by rejected value " << bad;
  }
}

// strtoull skips leading whitespace and then happily accepts a sign, so a
// shell-quoted `--admission-wait-ms ' -1'` would wrap to UINT64_MAX (a
// half-a-billion-year admission wait) without the leading-digit guard. Any
// value not starting with a digit must be a parse error, never wraparound.
TEST(Cli, U64RejectsWhitespacePrefixedSignsAndBlanks) {
  std::uint64_t v = 9;
  for (const char* bad : {" -1", "\t-1", "\n-1", " +1", " 1", " ", "\t"}) {
    Cli cli("prog", "test");
    cli.option_u64("admission-wait-ms", &v, "MS", "wait budget");
    Argv argv({"--admission-wait-ms", bad});
    testing::internal::CaptureStderr();
    EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Error)
        << '"' << bad << '"';
    testing::internal::GetCapturedStderr();
    EXPECT_EQ(v, 9u) << "target clobbered by rejected value \"" << bad << '"';
  }
}

TEST(Cli, DuplicateU64OptionIsRejected) {
  std::uint64_t v = 0;
  Cli cli("prog", "test");
  cli.option_u64("n", &v, "N", "n");
  Argv argv({"--n", "1", "--n", "2"});
  testing::internal::CaptureStderr();
  EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Error);
  testing::internal::GetCapturedStderr();
}

// The help column adapts to the widest `--name VALUE` row (clamped to a
// sane band) so long option names — the serve tool has several — stay
// aligned with their help text instead of overflowing the gutter.
TEST(Cli, HelpColumnAlignsLongAndShortOptionRows) {
  std::uint64_t n = 0;
  bool quick = false;
  Cli cli("prog", "test");
  cli.option_u64("admission-wait-ms", &n, "MS", "pause budget")
      .flag("q", &quick, "quick mode");
  Argv argv({"--help"});
  testing::internal::CaptureStdout();
  EXPECT_EQ(cli.parse(argv.argc(), argv.argv()), Cli::Parse::Help);
  const std::string help = testing::internal::GetCapturedStdout();
  // Both help strings start in the same column.
  const auto wait_line = help.find("--admission-wait-ms MS");
  const auto quick_line = help.find("--q");
  ASSERT_NE(wait_line, std::string::npos);
  ASSERT_NE(quick_line, std::string::npos);
  const auto wait_col = help.find("pause budget", wait_line) -
                        (help.rfind('\n', wait_line) + 1);
  const auto quick_col = help.find("quick mode", quick_line) -
                         (help.rfind('\n', quick_line) + 1);
  EXPECT_EQ(wait_col, quick_col) << help;
}

TEST(Cli, HelpShortCircuitsAndListsEveryOption) {
  std::string grid;
  bool stats = false;
  std::string input;
  Cli cli("prog", "does things");
  cli.option_string("grid", &grid, "NAME", "the grid preset")
      .flag("stats", &stats, "print stats")
      .positional("input", &input, "input file");

  Argv argv({"--help"});
  testing::internal::CaptureStdout();
  const Cli::Parse result = cli.parse(argv.argc(), argv.argv());
  const std::string help = testing::internal::GetCapturedStdout();
  EXPECT_EQ(result, Cli::Parse::Help);
  EXPECT_NE(help.find("usage: prog"), std::string::npos);
  EXPECT_NE(help.find("does things"), std::string::npos);
  EXPECT_NE(help.find("--grid NAME"), std::string::npos);
  EXPECT_NE(help.find("the grid preset"), std::string::npos);
  EXPECT_NE(help.find("--stats"), std::string::npos);
  EXPECT_NE(help.find("<input>"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST(Cli, GeneratedUsageNamesPositionalsInOrder) {
  std::string a;
  std::string b;
  Cli cli("gate", "compare");
  cli.positional("baseline.json", &a, "baseline")
      .positional("fresh.json", &b, "fresh");
  std::ostringstream ss;
  cli.print_usage(ss);
  EXPECT_EQ(ss.str(), "usage: gate <baseline.json> <fresh.json>\n");
}

Subcommands search_commands() {
  Subcommands commands("stamp_search", "find the optimum");
  commands.add("bnb", "exact branch-and-bound")
      .add("anneal", "simulated annealing")
      .add("exhaustive", "price every point");
  return commands;
}

TEST(Subcommands, SelectsTheNamedCommand) {
  const Subcommands commands = search_commands();
  std::string command;
  Argv argv({"anneal", "--seed", "7"});
  EXPECT_EQ(commands.select(argv.argc(), argv.argv(), &command),
            Cli::Parse::Ok);
  EXPECT_EQ(command, "anneal");
}

TEST(Subcommands, UnknownCommandSuggestsTheNearestName) {
  const Subcommands commands = search_commands();
  std::string command;
  Argv argv({"anneall"});
  testing::internal::CaptureStderr();
  EXPECT_EQ(commands.select(argv.argc(), argv.argv(), &command),
            Cli::Parse::Error);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("unknown command 'anneall'"), std::string::npos);
  EXPECT_NE(err.find("did you mean 'anneal'?"), std::string::npos);
}

TEST(Subcommands, WildlyWrongCommandGetsNoSuggestion) {
  const Subcommands commands = search_commands();
  std::string command;
  Argv argv({"frobnicate"});
  testing::internal::CaptureStderr();
  EXPECT_EQ(commands.select(argv.argc(), argv.argv(), &command),
            Cli::Parse::Error);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("did you mean"), std::string::npos);
}

TEST(Subcommands, MissingCommandAndLeadingOptionAreErrors) {
  const Subcommands commands = search_commands();
  std::string command;
  {
    Argv argv({});
    testing::internal::CaptureStderr();
    EXPECT_EQ(commands.select(argv.argc(), argv.argv(), &command),
              Cli::Parse::Error);
    testing::internal::GetCapturedStderr();
  }
  {
    Argv argv({"--seed", "7"});
    testing::internal::CaptureStderr();
    EXPECT_EQ(commands.select(argv.argc(), argv.argv(), &command),
              Cli::Parse::Error);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("expected a command"), std::string::npos);
  }
}

TEST(Subcommands, HelpListsEveryCommand) {
  const Subcommands commands = search_commands();
  std::string command;
  Argv argv({"--help"});
  testing::internal::CaptureStdout();
  EXPECT_EQ(commands.select(argv.argc(), argv.argv(), &command),
            Cli::Parse::Help);
  const std::string help = testing::internal::GetCapturedStdout();
  EXPECT_NE(help.find("usage: stamp_search <command> [options]"),
            std::string::npos);
  EXPECT_NE(help.find("bnb"), std::string::npos);
  EXPECT_NE(help.find("anneal"), std::string::npos);
  EXPECT_NE(help.find("exhaustive"), std::string::npos);
  EXPECT_NE(help.find("stamp_search <command> --help"), std::string::npos);
}

TEST(Subcommands, PerSubcommandCliCarriesTheCompoundProgramName) {
  // The pattern every subcommand tool uses: sub-Cli program = "prog cmd",
  // parsed over argv shifted past the command. Its --help and errors must
  // name the full compound command.
  const Subcommands commands = search_commands();
  std::string command;
  Argv argv({"bnb", "--leaf-block", "128"});
  ASSERT_EQ(commands.select(argv.argc(), argv.argv(), &command),
            Cli::Parse::Ok);

  int leaf_block = 64;
  Cli cli(commands.program() + " " + command, "exact search");
  cli.option_int("leaf-block", &leaf_block, "N", "leaf size");
  EXPECT_EQ(cli.parse(argv.argc() - 1, argv.argv() + 1), Cli::Parse::Ok);
  EXPECT_EQ(leaf_block, 128);

  std::ostringstream ss;
  cli.print_usage(ss);
  EXPECT_EQ(ss.str(), "usage: stamp_search bnb [options]\n");
}

}  // namespace
}  // namespace stamp::tools
