// Regression tests for the shared CLI signal plumbing (tools/signals.hpp),
// run against real child processes: the first SIGINT/SIGTERM must trip the
// cancel token (graceful drain), and a second delivery must restore the
// default disposition and re-raise — a hard exit observable in the wait
// status — so a wedged drain is killable with Ctrl-C Ctrl-C, not SIGKILL.
//
// The handlers mutate process-global signal state, so everything runs in
// forked children; the gtest process itself never installs them.

#include "tools/signals.hpp"

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <cerrno>
#include <csignal>
#include <ctime>
#include <unistd.h>

namespace {

void nap_ms(long ms) {
  timespec ts{};
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = (ms % 1000) * 1000000;
  nanosleep(&ts, nullptr);
}

// Block until one byte arrives on `fd`; false on EOF/error.
bool await_byte(int fd, char want) {
  char ch = 0;
  ssize_t n;
  do {
    n = read(fd, &ch, 1);
  } while (n < 0 && errno == EINTR);
  return n == 1 && ch == want;
}

// Fork a child that installs the shutdown handlers, reports readiness on the
// pipe, and then behaves per `wedge`: a graceful child exits 0 once the
// token trips; a wedged child acknowledges the first signal and then ignores
// the token forever — only the second-signal hard exit can end it.
pid_t spawn_child(int pipe_fds[2], bool wedge) {
  const pid_t pid = fork();
  if (pid != 0) {
    close(pipe_fds[1]);
    return pid;
  }
  close(pipe_fds[0]);
  stamp::tools::install_shutdown_handlers();
  (void)!write(pipe_fds[1], "r", 1);  // ready: handlers installed
  while (!stamp::tools::shutdown_requested()) nap_ms(1);
  (void)!write(pipe_fds[1], "c", 1);  // first signal seen
  if (!wedge) _exit(0);
  for (;;) pause();  // deliberately wedged: the token is ignored
}

TEST(Signals, FirstSignalDrainsGracefully) {
  for (const int sig : {SIGINT, SIGTERM}) {
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    const pid_t pid = spawn_child(fds, /*wedge=*/false);
    ASSERT_GT(pid, 0);
    ASSERT_TRUE(await_byte(fds[0], 'r'));
    ASSERT_EQ(kill(pid, sig), 0);
    ASSERT_TRUE(await_byte(fds[0], 'c'));
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    close(fds[0]);
    ASSERT_TRUE(WIFEXITED(status)) << "signal " << sig;
    EXPECT_EQ(WEXITSTATUS(status), 0) << "signal " << sig;
  }
}

TEST(Signals, SecondSignalHardExitsAWedgedDrain) {
  for (const int sig : {SIGINT, SIGTERM}) {
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    const pid_t pid = spawn_child(fds, /*wedge=*/true);
    ASSERT_GT(pid, 0);
    ASSERT_TRUE(await_byte(fds[0], 'r'));
    ASSERT_EQ(kill(pid, sig), 0);
    // Wait for the child to acknowledge the first signal before sending the
    // second, so the two deliveries can never coalesce as one pending signal.
    ASSERT_TRUE(await_byte(fds[0], 'c'));
    ASSERT_EQ(kill(pid, sig), 0);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    close(fds[0]);
    // Died *by* the signal — the re-raised default disposition — not by any
    // exit() path, and not still alive.
    ASSERT_TRUE(WIFSIGNALED(status)) << "signal " << sig;
    EXPECT_EQ(WTERMSIG(status), sig);
  }
}

// A SIGINT followed by a supervisor's SIGTERM (or vice versa) must also hard
// exit: the two shutdown signals share one delivery count.
TEST(Signals, MixedShutdownSignalsShareTheHardExitCount) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const pid_t pid = spawn_child(fds, /*wedge=*/true);
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(await_byte(fds[0], 'r'));
  ASSERT_EQ(kill(pid, SIGINT), 0);
  ASSERT_TRUE(await_byte(fds[0], 'c'));
  ASSERT_EQ(kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  close(fds[0]);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGTERM);
}

}  // namespace
