#include "tools/inject.hpp"

#include <gtest/gtest.h>

namespace stamp::tools {
namespace {

TEST(InjectSpec, ParsesFullSpecIntoThePlan) {
  fault::FaultPlan plan;
  const auto problem =
      parse_inject_spec("msg_drop=0.5,mag=2.5,max=3,key=7", plan);
  EXPECT_FALSE(problem.has_value()) << *problem;
  const fault::SiteSpec& spec = plan.spec(fault::FaultSite::MsgDrop);
  EXPECT_TRUE(spec.armed());
  EXPECT_DOUBLE_EQ(spec.probability, 0.5);
  EXPECT_DOUBLE_EQ(spec.magnitude, 2.5);
  EXPECT_EQ(spec.max_per_key, 3u);
  EXPECT_EQ(spec.only_key, 7);
}

TEST(InjectSpec, UnknownSiteListsValidSites) {
  fault::FaultPlan plan;
  const auto problem = parse_inject_spec("bogus_site=1.0", plan);
  ASSERT_TRUE(problem.has_value());
  EXPECT_NE(problem->find("unknown fault site 'bogus_site'"),
            std::string::npos);
  // The message must teach the valid vocabulary, not just reject.
  EXPECT_NE(problem->find("stm_abort"), std::string::npos);
  EXPECT_NE(problem->find("test_probe"), std::string::npos);
  EXPECT_FALSE(plan.any_armed());
}

TEST(InjectSpec, ProbabilityOutsideUnitIntervalIsRejected) {
  fault::FaultPlan plan;
  const auto over = parse_inject_spec("stm_abort=1.5", plan);
  ASSERT_TRUE(over.has_value());
  EXPECT_NE(over->find("outside [0, 1]"), std::string::npos);

  const auto under = parse_inject_spec("stm_abort=-0.5", plan);
  ASSERT_TRUE(under.has_value());
  EXPECT_NE(under->find("outside [0, 1]"), std::string::npos);
  EXPECT_FALSE(plan.any_armed());
}

TEST(InjectSpec, MalformedSpecsProduceClearErrors) {
  fault::FaultPlan plan;
  EXPECT_NE(parse_inject_spec("stm_abort", plan)->find("expected SITE=PROB"),
            std::string::npos);
  EXPECT_NE(parse_inject_spec("stm_abort=", plan)->find("missing probability"),
            std::string::npos);
  EXPECT_NE(parse_inject_spec("stm_abort=abc", plan)->find("bad number"),
            std::string::npos);
  EXPECT_NE(
      parse_inject_spec("stm_abort=0.5,bogus=1", plan)->find("unknown field"),
      std::string::npos);
  EXPECT_NE(
      parse_inject_spec("msg_delay=0.5,mag=-1", plan)->find("is negative"),
      std::string::npos);
  EXPECT_FALSE(plan.any_armed());
}

TEST(InjectSpec, FaultSiteNamesCoversEverySite) {
  const std::string names = fault_site_names();
  for (std::size_t i = 0; i < fault::kFaultSiteCount; ++i)
    EXPECT_NE(
        names.find(fault::site_name(static_cast<fault::FaultSite>(i))),
        std::string::npos);
}

}  // namespace
}  // namespace stamp::tools
