#include "sweep/journal.hpp"

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "report/atomic_file.hpp"
#include "sweep/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

// run_sweep/run_sweep_serial are deprecated in favor of Evaluator::sweep;
// this file exercises the sweep engine directly on purpose (it is the layer
// under test/measurement, below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace stamp::sweep {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::path(testing::TempDir()) / name).string();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << bytes;
}

std::size_t file_size(const std::string& path) {
  return static_cast<std::size_t>(fs::file_size(path));
}

/// A couple of genuinely evaluated records to journal (index 0 and 1 of the
/// tiny grid), so the torture corpus uses real payloads, not toy ones.
std::vector<SweepRecord> tiny_records() {
  static const SweepResult result = run_sweep_serial(SweepConfig::tiny());
  return result.records;
}

TEST(Journal, Crc32MatchesKnownVectors) {
  EXPECT_EQ(crc32(""), 0u);
  // The IEEE 802.3 check value for the standard nine-byte test input.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_NE(crc32("stamp"), crc32("stamq"));
}

TEST(Journal, HeaderAndRecordLinesRoundTripThroughResume) {
  const SweepConfig cfg = SweepConfig::tiny();
  const std::vector<SweepRecord> recs = tiny_records();
  const std::string path = temp_path("journal_roundtrip.journal");
  write_bytes(path, Journal::header_line(cfg) + Journal::record_line(recs[0]) +
                        Journal::record_line(recs[1]));

  const ResumeState resume = ResumeState::load(path, cfg);
  EXPECT_EQ(resume.grid_points(), cfg.grid.size());
  EXPECT_EQ(resume.completed_points(), 2u);
  EXPECT_FALSE(resume.truncated());
  EXPECT_EQ(resume.valid_bytes(), file_size(path));
  ASSERT_TRUE(resume.completed(0));
  ASSERT_TRUE(resume.completed(1));
  EXPECT_FALSE(resume.completed(2));
  // Doubles round-trip at the serialization level (15 significant digits), so
  // replayed records must re-emit byte-identical lines, which is the property
  // the byte-identical resumed artifact rests on.
  EXPECT_EQ(Journal::record_line(resume.record(0)),
            Journal::record_line(recs[0]));
  EXPECT_EQ(Journal::record_line(resume.record(1)),
            Journal::record_line(recs[1]));
  fs::remove(path);
}

// The torture corpus: truncate the journal at EVERY byte offset — through the
// header, through the first record, and through the last record. Loading must
// never crash and never over-count: the resume state is exactly the longest
// prefix of intact lines, and everything past it is reported as truncated.
TEST(Journal, TruncationAtEveryByteOffsetIsDetectedNeverFatal) {
  const SweepConfig cfg = SweepConfig::tiny();
  const std::vector<SweepRecord> recs = tiny_records();
  const std::string header = Journal::header_line(cfg);
  const std::string line0 = Journal::record_line(recs[0]);
  const std::string line1 = Journal::record_line(recs[1]);
  const std::string full = header + line0 + line1;
  // Clean-prefix boundaries: a cut exactly here leaves a well-formed journal.
  const std::size_t b1 = header.size();
  const std::size_t b2 = b1 + line0.size();
  const std::size_t b3 = b2 + line1.size();
  const std::string path = temp_path("journal_torture.journal");

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    write_bytes(path, full.substr(0, cut));
    ResumeState resume = ResumeState::load(path, cfg);

    std::size_t expect_valid = 0;
    if (cut >= b3)
      expect_valid = b3;
    else if (cut >= b2)
      expect_valid = b2;
    else if (cut >= b1)
      expect_valid = b1;
    const std::size_t expect_completed =
        expect_valid >= b3 ? 2u : (expect_valid >= b2 ? 1u : 0u);

    EXPECT_EQ(resume.valid_bytes(), expect_valid) << "cut at byte " << cut;
    EXPECT_EQ(resume.completed_points(), expect_completed)
        << "cut at byte " << cut;
    EXPECT_EQ(resume.truncated(), cut != expect_valid) << "cut at byte " << cut;
    // A torn header must degrade to "nothing completed", never to a
    // grid-size-mismatch error: the state is still sized for this grid.
    EXPECT_EQ(resume.grid_points(), cfg.grid.size()) << "cut at byte " << cut;
  }
  fs::remove(path);
}

// Opening a Journal over a torn file truncates it back to the validated
// prefix, so one crash can never compound into an unparseable journal.
TEST(Journal, ResumeTruncatesTornTailAndAppendsCleanly) {
  const SweepConfig cfg = SweepConfig::tiny();
  const std::vector<SweepRecord> recs = tiny_records();
  const std::string header = Journal::header_line(cfg);
  const std::string line0 = Journal::record_line(recs[0]);
  const std::string line1 = Journal::record_line(recs[1]);
  const std::string path = temp_path("journal_truncate.journal");
  // Tear the second record in half.
  write_bytes(path, header + line0 + line1.substr(0, line1.size() / 2));

  const ResumeState resume = ResumeState::load(path, cfg);
  ASSERT_TRUE(resume.truncated());
  ASSERT_EQ(resume.completed_points(), 1u);
  {
    Journal journal(path, cfg, &resume);
    EXPECT_EQ(file_size(path), resume.valid_bytes());  // tail dropped
    journal.append(recs[1]);
    EXPECT_EQ(journal.appended(), 1u);
  }
  EXPECT_EQ(file_size(path), resume.valid_bytes() + line1.size());

  const ResumeState after = ResumeState::load(path, cfg);
  EXPECT_FALSE(after.truncated());
  EXPECT_EQ(after.completed_points(), 2u);
  fs::remove(path);
}

TEST(Journal, IntactHeaderForDifferentSweepIsRejectedLoudly) {
  const SweepConfig tiny = SweepConfig::tiny();
  const std::string path = temp_path("journal_mismatch.journal");
  write_bytes(path, Journal::header_line(tiny));
  EXPECT_THROW(static_cast<void>(
                   ResumeState::load(path, SweepConfig::canonical())),
               std::runtime_error);
  fs::remove(path);
}

TEST(Journal, DuplicateRecordLinesReplayOnce) {
  const SweepConfig cfg = SweepConfig::tiny();
  const std::vector<SweepRecord> recs = tiny_records();
  const std::string path = temp_path("journal_duplicate.journal");
  const std::string line0 = Journal::record_line(recs[0]);
  write_bytes(path, Journal::header_line(cfg) + line0 + line0);

  const ResumeState resume = ResumeState::load(path, cfg);
  EXPECT_EQ(resume.completed_points(), 1u);  // never double-counted
  EXPECT_TRUE(resume.completed(0));
  EXPECT_FALSE(resume.truncated());
  fs::remove(path);
}

// Corruption in the middle (not just a torn tail) stops replay at the bad
// line: intact lines after it are discarded rather than trusted out of order.
TEST(Journal, CorruptMiddleLineStopsReplayThere) {
  const SweepConfig cfg = SweepConfig::tiny();
  const std::vector<SweepRecord> recs = tiny_records();
  std::string line0 = Journal::record_line(recs[0]);
  line0[line0.size() / 2] ^= 0x01;  // flip one payload bit: checksum fails
  const std::string header = Journal::header_line(cfg);
  const std::string path = temp_path("journal_corrupt.journal");
  write_bytes(path, header + line0 + Journal::record_line(recs[1]));

  const ResumeState resume = ResumeState::load(path, cfg);
  EXPECT_EQ(resume.completed_points(), 0u);
  EXPECT_EQ(resume.valid_bytes(), header.size());
  EXPECT_TRUE(resume.truncated());
  fs::remove(path);
}

TEST(Journal, FreshRunJournalsEveryPointAndResumeReplaysThemAll) {
  const SweepConfig cfg = SweepConfig::tiny();
  const std::string path = temp_path("journal_full.journal");
  fs::remove(path);
  SweepResult first;
  {
    Journal journal(path, cfg);
    SweepOptions opts;
    opts.journal = &journal;
    first = run_sweep_serial(cfg, opts);
    EXPECT_EQ(journal.appended(), cfg.grid.size());
  }
  EXPECT_EQ(first.stats.journaled_points, cfg.grid.size());

  const ResumeState resume = ResumeState::load(path, cfg);
  EXPECT_EQ(resume.completed_points(), cfg.grid.size());
  SweepOptions opts;
  opts.resume = &resume;
  const SweepResult replayed = run_sweep_serial(cfg, opts);
  EXPECT_EQ(replayed.stats.resumed_points, cfg.grid.size());
  EXPECT_EQ(replayed.stats.journaled_points, 0u);
  EXPECT_EQ(to_json(replayed), to_json(first));
  fs::remove(path);
}

// The acceptance property behind the CI job: kill a journaled sweep with an
// injected SweepPointFail, resume from the journal, and get an artifact
// byte-identical to an uninterrupted run — at any pool width.
TEST(Journal, KillAndResumeIsByteIdenticalAtAnyPoolWidth) {
  const SweepConfig cfg = SweepConfig::tiny();
  const std::string want = to_json(run_sweep_serial(cfg));

  for (const int width : {1, 4, 16}) {
    const std::string path =
        temp_path("journal_kill_w" + std::to_string(width) + ".journal");
    fs::remove(path);
    Pool pool(width);

    fault::FaultPlan plan;
    plan.seed = 42;
    plan.with(fault::FaultSite::SweepPointFail, 0.2);
    fault::Injector::global().arm(plan);
    bool failed = false;
    {
      Journal journal(path, cfg);
      SweepOptions opts;
      opts.journal = &journal;
      try {
        static_cast<void>(run_sweep(cfg, pool, opts));
      } catch (const fault::SweepPointFailure&) {
        failed = true;
      }
    }
    fault::Injector::global().disarm();
    ASSERT_TRUE(failed) << "width " << width;

    const ResumeState resume = ResumeState::load(path, cfg);
    // Fault decisions are keyed by grid index, so the set of failing points
    // (and with it the journaled set) is identical at every pool width.
    EXPECT_GT(resume.completed_points(), 0u) << "width " << width;
    ASSERT_LT(resume.completed_points(), cfg.grid.size()) << "width " << width;

    SweepOptions opts;
    opts.resume = &resume;
    const SweepResult resumed = run_sweep(cfg, pool, opts);
    EXPECT_EQ(resumed.stats.resumed_points, resume.completed_points());
    EXPECT_EQ(to_json(resumed), want) << "width " << width;
    fs::remove(path);
  }
}

// Creating a fresh journal must fsync its *parent directory* (observed via
// the report-layer commit observer): records fsynced into a file whose
// directory entry is not durable can vanish wholesale in a crash. A resumed
// journal reuses an existing entry, so no directory fsync is required.
std::vector<report::CommitStep>& journal_fsync_steps() {
  static std::vector<report::CommitStep> steps;
  return steps;
}

TEST(Journal, CreationFsyncsTheParentDirectory) {
  const SweepConfig cfg = SweepConfig::tiny();
  const std::vector<SweepRecord> recs = tiny_records();
  const std::string path = temp_path("journal_dir_fsync.journal");
  fs::remove(path);

  journal_fsync_steps().clear();
  report::set_commit_observer([](report::CommitStep step, const std::string&) {
    journal_fsync_steps().push_back(step);
  });

  {
    Journal journal(path, cfg);
    journal.append(recs[0]);
  }
  const auto after_create = journal_fsync_steps().size();
  EXPECT_GE(after_create, 1u) << "fresh journal never fsynced its directory";
  EXPECT_TRUE(std::count(journal_fsync_steps().begin(),
                         journal_fsync_steps().end(),
                         report::CommitStep::DirFsync) >= 1);

  // Reopening to continue an existing journal must not re-fsync the
  // directory: the entry is already durable, and the resume path must not
  // pay for (or depend on) a second directory sync.
  const ResumeState resume = ResumeState::load(path, cfg);
  {
    Journal journal(path, cfg, &resume);
    journal.append(recs[1]);
  }
  EXPECT_EQ(journal_fsync_steps().size(), after_create)
      << "continuing journal re-fsynced the directory";
  report::set_commit_observer(nullptr);
  fs::remove(path);
}

}  // namespace
}  // namespace stamp::sweep
