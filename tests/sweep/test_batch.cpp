// The batch evaluator's contract is bit-identity with the scalar reference
// path (batch.hpp): every record of every grid, at every pool width, through
// journal and resume. These tests compare real sweeps — the canonical
// 576-point baseline grid included — record by record and byte by byte
// against `evaluate_point_reference`, which keeps the original scalar
// pipeline alive precisely so this comparison stays honest.

#include "sweep/batch.hpp"

#include "sweep/journal.hpp"
#include "sweep/sweep.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

// run_sweep/run_sweep_serial are deprecated in favor of Evaluator::sweep;
// this file exercises the sweep engine directly on purpose (it is the layer
// under test/measurement, below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace stamp::sweep {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::path(testing::TempDir()) / name).string();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << bytes;
}

TEST(Batch, ReferencePathIsDeterministic) {
  const SweepConfig cfg = SweepConfig::tiny();
  for (std::size_t i = 0; i < cfg.grid.size(); ++i)
    EXPECT_EQ(evaluate_point_reference(cfg, i),
              evaluate_point_reference(cfg, i));
}

// Every record the batch path emits equals the scalar reference, over the
// full canonical grid (the checked-in baseline's 576 points — this is the
// grid CI `cmp`s against sweeps/baseline.json).
TEST(Batch, MatchesScalarReferenceOnEveryCanonicalPoint) {
  const SweepConfig cfg = SweepConfig::canonical();
  const SweepResult r = run_sweep_serial(cfg);
  ASSERT_EQ(r.records.size(), cfg.grid.size());
  for (std::size_t i = 0; i < cfg.grid.size(); ++i)
    EXPECT_EQ(r.records[i], evaluate_point_reference(cfg, i)) << "index " << i;
}

TEST(Batch, MatchesScalarReferenceAcrossPoolWidths) {
  const SweepConfig cfg = SweepConfig::tiny();
  for (const int width : {1, 4, 16}) {
    Pool pool(width);
    const SweepResult r = run_sweep(cfg, pool);
    ASSERT_EQ(r.records.size(), cfg.grid.size());
    for (std::size_t i = 0; i < cfg.grid.size(); ++i)
      EXPECT_EQ(r.records[i], evaluate_point_reference(cfg, i))
          << "width " << width << " index " << i;
  }
}

// Chunk boundaries: kBatch-point sub-batches must not perturb records near
// their edges. A grid sized to leave a ragged final sub-batch (2*kBatch + 3
// points) is compared to the reference at the exact boundary indices.
TEST(Batch, RaggedSubBatchBoundariesMatchTheReference) {
  SweepConfig cfg = SweepConfig::tiny();
  cfg.grid = ParamGrid{};
  cfg.grid.axis(std::string(axes::kCores), {2, 4, 8, 16})
      .axis(std::string(axes::kEllE), linspace(8, 40, 0x80 + 1))
      .axis(std::string(axes::kKappa), {0});
  ASSERT_EQ(cfg.grid.size(), 4u * 129u);  // 516 = 2*256 + 4: ragged tail
  const SweepResult r = run_sweep_serial(cfg);
  for (const std::size_t i :
       {std::size_t{0}, BatchEvaluator::kBatch - 1, BatchEvaluator::kBatch,
        2 * BatchEvaluator::kBatch - 1, 2 * BatchEvaluator::kBatch,
        cfg.grid.size() - 1}) {
    EXPECT_EQ(r.records[i], evaluate_point_reference(cfg, i)) << "index " << i;
  }
}

// An axis with repeated values makes two grid points share a canonical
// parameter tuple — the only way a Cartesian grid produces cache hits. The
// batch path must hit (not recompute) and the duplicate points' records must
// still match the reference independently.
TEST(Batch, DuplicateAxisValuesHitTheCacheWithoutChangingRecords) {
  SweepConfig cfg = SweepConfig::tiny();
  cfg.grid = ParamGrid{};
  cfg.grid.axis(std::string(axes::kCores), {4, 4})
      .axis(std::string(axes::kKappa), {0, 8});
  const SweepResult r = run_sweep_serial(cfg);
  const auto points = static_cast<std::uint64_t>(cfg.grid.size());
  EXPECT_EQ(r.stats.cache_hits + r.stats.cache_misses, points);
  EXPECT_EQ(r.stats.cache_misses, 2u);  // two distinct tuples
  EXPECT_EQ(r.stats.cache_hits, 2u);    // the duplicated-cores replays
  for (std::size_t i = 0; i < cfg.grid.size(); ++i)
    EXPECT_EQ(r.records[i], evaluate_point_reference(cfg, i)) << "index " << i;
}

// The TTL/admission cache mode must be invisible to sweeps: a batch run
// through a CacheOptions-constructed cache with the defaults (no TTL, no
// admission) reproduces the classic sweep records bit for bit — this is the
// in-process half of the CI gate that `cmp`s a fresh canonical sweep against
// sweeps/baseline.json.
TEST(Batch, CacheOptionsDefaultsLeaveSweepRecordsBitIdentical) {
  const SweepConfig cfg = SweepConfig::tiny();
  const SweepResult classic = run_sweep_serial(cfg);

  CostCache cache{CacheOptions{}};
  std::vector<SweepRecord> records(cfg.grid.size());
  const SweepOptions options;
  BatchEvaluator evaluator(cfg, cache, options);
  (void)evaluator.run_range(0, cfg.grid.size(), records, /*fail_fast=*/true,
                            nullptr, nullptr);
  ASSERT_EQ(records.size(), classic.records.size());
  for (std::size_t i = 0; i < records.size(); ++i)
    EXPECT_EQ(records[i], classic.records[i]) << "index " << i;
  EXPECT_EQ(cache.expirations(), 0u);
  EXPECT_EQ(cache.admission_rejections(), 0u);
}

// Resume byte-identity through the batch path: journal half the points of an
// uninterrupted run, resume against that journal at several pool widths, and
// require the artifact bytes (not just the records) to be identical to the
// uninterrupted run's.
TEST(Batch, ResumedRunsAreByteIdenticalAtEveryWidth) {
  const SweepConfig cfg = SweepConfig::tiny();
  const SweepResult full = run_sweep_serial(cfg);
  const std::string want = to_json(full);

  std::string journal_bytes{Journal::header_line(cfg)};
  std::size_t journaled = 0;
  for (std::size_t i = 0; i < full.records.size(); i += 2) {
    journal_bytes += Journal::record_line(full.records[i]);
    ++journaled;
  }
  const std::string path = temp_path("batch_resume.journal");
  write_bytes(path, journal_bytes);
  const ResumeState resume = ResumeState::load(path, cfg);
  ASSERT_EQ(resume.completed_points(), journaled);

  SweepOptions options;
  options.resume = &resume;
  const SweepResult serial = run_sweep_serial(cfg, options);
  EXPECT_EQ(serial.stats.resumed_points, journaled);
  EXPECT_EQ(to_json(serial), want);
  for (const int width : {1, 4, 16}) {
    Pool pool(width);
    const SweepResult pooled = run_sweep(cfg, pool, options);
    EXPECT_EQ(pooled.stats.resumed_points, journaled);
    EXPECT_EQ(to_json(pooled), want) << "width " << width;
  }
}

// A journaled batch run appends exactly the lines a byte-for-byte replay
// needs: header + one framed record per point, in index order for the
// serial driver.
TEST(Batch, SerialJournalHoldsEveryRecordInIndexOrder) {
  const SweepConfig cfg = SweepConfig::tiny();
  const std::string path = temp_path("batch_journal.journal");
  SweepResult result;
  {
    Journal journal(path, cfg);
    SweepOptions options;
    options.journal = &journal;
    result = run_sweep_serial(cfg, options);
    EXPECT_EQ(journal.appended(), cfg.grid.size());
  }
  EXPECT_EQ(result.stats.journaled_points, cfg.grid.size());

  std::string want{Journal::header_line(cfg)};
  for (const SweepRecord& rec : result.records)
    want += Journal::record_line(rec);
  std::ifstream is(path, std::ios::binary);
  const std::string got((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace stamp::sweep
