#include "sweep/cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace stamp::sweep {
namespace {

TEST(Cache, MissComputesThenHitsShareTheValue) {
  CostCache cache;
  int computes = 0;
  const std::vector<double> key{1, 2, 3};
  auto compute = [&] {
    ++computes;
    return PointCost{{10, 20}, true, 4};
  };
  const PointCost first = cache.get_or_compute(key, compute);
  const PointCost second = cache.get_or_compute(key, compute);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(first, second);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, DistinctKeysComputeSeparately) {
  CostCache cache;
  int computes = 0;
  auto make = [&](double t) {
    return [&computes, t] {
      ++computes;
      return PointCost{{t, t}, true, 1};
    };
  };
  (void)cache.get_or_compute(std::vector<double>{1}, make(1));
  (void)cache.get_or_compute(std::vector<double>{2}, make(2));
  // A key is its full tuple, not a prefix.
  (void)cache.get_or_compute(std::vector<double>{1, 0}, make(3));
  EXPECT_EQ(computes, 3);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(Cache, ClearResetsEverything) {
  CostCache cache;
  (void)cache.get_or_compute(std::vector<double>{1},
                             [] { return PointCost{}; });
  (void)cache.get_or_compute(std::vector<double>{1},
                             [] { return PointCost{}; });
  cache.clear();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Cache, ConcurrentQueriesAccountForEveryLookup) {
  CostCache cache(8);
  constexpr int kThreads = 8;
  constexpr int kKeys = 32;
  constexpr int kQueriesPerThread = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const double key = (q + t) % kKeys;
        const PointCost pc = cache.get_or_compute(
            std::vector<double>{key},
            [key] { return PointCost{{key, 2 * key}, true, 1}; });
        // Whoever computed it, the value for this key is deterministic.
        ASSERT_EQ(pc.cost.time, key);
        ASSERT_EQ(pc.cost.energy, 2 * key);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kQueriesPerThread);
  EXPECT_GE(cache.misses(), static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
}

}  // namespace
}  // namespace stamp::sweep
