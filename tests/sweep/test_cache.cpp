#include "sweep/cache.hpp"

#include "sweep/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

namespace stamp::sweep {
namespace {

TEST(Cache, MissComputesThenHitsShareTheValue) {
  CostCache cache;
  int computes = 0;
  const std::vector<double> key{1, 2, 3};
  auto compute = [&] {
    ++computes;
    return PointCost{{10, 20}, true, 4};
  };
  const PointCost first = cache.get_or_compute(key, compute);
  const PointCost second = cache.get_or_compute(key, compute);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(first, second);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, DistinctKeysComputeSeparately) {
  CostCache cache;
  int computes = 0;
  auto make = [&](double t) {
    return [&computes, t] {
      ++computes;
      return PointCost{{t, t}, true, 1};
    };
  };
  (void)cache.get_or_compute(std::vector<double>{1}, make(1));
  (void)cache.get_or_compute(std::vector<double>{2}, make(2));
  // A key is its full tuple, not a prefix.
  (void)cache.get_or_compute(std::vector<double>{1, 0}, make(3));
  EXPECT_EQ(computes, 3);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(Cache, ClearResetsEverything) {
  CostCache cache;
  (void)cache.get_or_compute(std::vector<double>{1},
                             [] { return PointCost{}; });
  (void)cache.get_or_compute(std::vector<double>{1},
                             [] { return PointCost{}; });
  cache.clear();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Cache, ConcurrentQueriesAccountForEveryLookup) {
  CostCache cache(8);
  constexpr int kThreads = 8;
  constexpr int kKeys = 32;
  constexpr int kQueriesPerThread = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const double key = (q + t) % kKeys;
        const PointCost pc = cache.get_or_compute(
            std::vector<double>{key},
            [key] { return PointCost{{key, 2 * key}, true, 1}; });
        // Whoever computed it, the value for this key is deterministic.
        ASSERT_EQ(pc.cost.time, key);
        ASSERT_EQ(pc.cost.energy, 2 * key);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kQueriesPerThread);
  EXPECT_GE(cache.misses(), static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
}

// Satellite regression: -0.0 and 0.0 are the same grid value; a bitwise key
// treated them as distinct and silently defeated memoization.
TEST(Cache, NegativeZeroSharesTheEntryWithPositiveZero) {
  CostCache cache;
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return PointCost{{1, 2}, true, 1};
  };
  (void)cache.get_or_compute(std::vector<double>{0.0, 5.0}, compute);
  const PointCost hit =
      cache.get_or_compute(std::vector<double>{-0.0, 5.0}, compute);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(hit.cost.time, 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(CostCache::hash_key(std::vector<double>{0.0, 5.0}),
            CostCache::hash_key(std::vector<double>{-0.0, 5.0}));
}

// Satellite regression: NaN keys never match themselves and Inf grid values
// are upstream bugs — both are rejected instead of poisoning the table.
TEST(Cache, NonFiniteKeyComponentsThrow) {
  CostCache cache;
  auto compute = [] { return PointCost{}; };
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(
      (void)cache.get_or_compute(std::vector<double>{1.0, nan}, compute),
      std::invalid_argument);
  EXPECT_THROW(
      (void)cache.get_or_compute(std::vector<double>{inf}, compute),
      std::invalid_argument);
  EXPECT_THROW(
      (void)cache.get_or_compute(std::vector<double>{-inf, 2.0}, compute),
      std::invalid_argument);
  // A rejected lookup counts as neither hit nor miss and inserts nothing.
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

// Satellite regression: two threads missing on the SAME key concurrently
// must produce exactly one insert — one miss, one hit, size 1, and no stale
// FIFO slot (the old string-map path double-counted the miss and let the
// eviction order drift from the live table).
TEST(Cache, SameKeyRaceInsertsOnceAndCountsEveryLookupOnce) {
  for (int rep = 0; rep < 50; ++rep) {
    CostCache cache(1, 4);  // bounded, one shard: drift would be visible
    std::atomic<int> in_compute{0};
    std::atomic<int> computes{0};
    const std::vector<double> key{3.25, -7.5};
    auto worker = [&] {
      (void)cache.get_or_compute(key, [&] {
        in_compute.fetch_add(1, std::memory_order_acq_rel);
        // Hold the compute window open until both threads are inside it
        // (or the peer has already finished — then it hit, which is fine).
        for (int spin = 0;
             spin < 10000 && in_compute.load(std::memory_order_acquire) < 2;
             ++spin)
          std::this_thread::yield();
        computes.fetch_add(1, std::memory_order_acq_rel);
        return PointCost{{1, 1}, true, 2};
      });
    };
    std::thread a(worker);
    std::thread b(worker);
    a.join();
    b.join();
    EXPECT_EQ(cache.hits() + cache.misses(), 2u);
    EXPECT_EQ(cache.misses(), 1u) << "a racing miss must not double-count";
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.evictions(), 0u);
    // Whether both threads computed or one hit directly, the entry is live:
    const PointCost pc = cache.get_or_compute(key, [] {
      ADD_FAILURE() << "recompute after a settled insert";
      return PointCost{};
    });
    EXPECT_EQ(pc.processes, 2);
  }
}

TEST(Cache, BoundedEvictionIsFifoAndCountersStayExact) {
  CostCache cache(1, 3);  // one shard, three entries
  auto make = [](double t) {
    return [t] { return PointCost{{t, t}, true, 1}; };
  };
  for (double k = 1; k <= 5; ++k)
    (void)cache.get_or_compute(std::vector<double>{k}, make(k));
  // FIFO: keys 1 and 2 (the oldest) were evicted; 3, 4, 5 survive.
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_EQ(cache.misses(), 5u);
  int recomputes = 0;
  for (double k = 3; k <= 5; ++k) {
    (void)cache.get_or_compute(std::vector<double>{k}, [&] {
      ++recomputes;
      return PointCost{};
    });
  }
  EXPECT_EQ(recomputes, 0) << "surviving keys must still hit";
  // Key 1 was evicted, so it recomputes (evicting 3, the now-oldest).
  (void)cache.get_or_compute(std::vector<double>{1}, make(1));
  EXPECT_EQ(cache.evictions(), 3u);
  EXPECT_EQ(cache.size(), 3u);
}

// Satellite stress: bounded eviction churning under the work-stealing pool.
// The invariants that used to drift (size vs the eviction order, miss
// counts) must hold exactly after heavy concurrent mixed hit/miss/evict
// traffic, and every lookup must observe its key's deterministic value.
TEST(Cache, BoundedEvictionStressUnderPool) {
  CostCache cache(4, 8);  // at most 32 live entries
  Pool pool(4);
  constexpr std::size_t kQueries = 20'000;
  constexpr int kKeys = 96;  // 3x the bound: constant eviction pressure
  pool.parallel_for(kQueries, [&](std::size_t i) {
    const double key = static_cast<double>((i * 17) % kKeys);
    const PointCost pc = cache.get_or_compute(
        std::vector<double>{key, key / 2},
        [key] { return PointCost{{key, 3 * key}, true, 1}; });
    ASSERT_EQ(pc.cost.time, key);
    ASSERT_EQ(pc.cost.energy, 3 * key);
  });
  EXPECT_EQ(cache.hits() + cache.misses(), kQueries);
  EXPECT_LE(cache.size(), 32u);
  EXPECT_GE(cache.misses(), static_cast<std::uint64_t>(kKeys));
  // Every insert beyond the capacity evicted exactly one entry.
  EXPECT_EQ(cache.evictions() + cache.size(),
            static_cast<std::size_t>(cache.misses()));
}

// Regression: free-list reuse must match by key arity across the whole free
// list. When mixed-arity keys interleave under a size bound, a mismatched
// entry parked at the back used to block reuse of everything beneath it, so
// every insert carved a fresh entry and arena span — unbounded growth under
// a bounded cache. Entry capacity must stay O(bound), not O(inserts).
TEST(Cache, MixedArityEvictionReusesFreedEntries) {
  // One shard, ONE entry: with strictly alternating arities the evicted
  // entry is always the opposite arity of the incoming key, so the back of
  // the free list never matched and every one of the 200 inserts used to
  // carve a fresh entry.
  CostCache cache(1, 1);
  for (int round = 0; round < 200; ++round) {
    const double k = round;
    if (round % 2 == 0)
      (void)cache.get_or_compute(std::vector<double>{k},
                                 [] { return PointCost{}; });
    else
      (void)cache.get_or_compute(std::vector<double>{k, k, k},
                                 [] { return PointCost{}; });
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 199u);
  // One live entry plus at most one parked free entry per arity (2 arities).
  // Pre-fix this grew to 200.
  EXPECT_LE(cache.entry_capacity(), 3u);
}

// ---- TTL / admission mode (CacheOptions) -----------------------------------

// The injectable clock for TTL tests: a plain function pointer, so the
// current time lives in a global the test advances explicitly.
std::atomic<std::uint64_t> g_fake_now_ns{0};
std::uint64_t fake_now_ns() { return g_fake_now_ns.load(); }

CacheOptions ttl_options(std::uint64_t ttl_ns) {
  CacheOptions options;
  options.shards = 1;
  options.ttl = std::chrono::nanoseconds(ttl_ns);
  options.now_ns = &fake_now_ns;
  return options;
}

TEST(Cache, TtlStaleEntryIsRefreshedInPlace) {
  g_fake_now_ns = 0;
  CostCache cache{ttl_options(100)};
  int computes = 0;
  const std::vector<double> key{1, 2};
  auto compute = [&] {
    ++computes;
    return PointCost{{double(computes), 0}, true, 1};
  };

  EXPECT_EQ(cache.get_or_compute(key, compute).cost.time, 1.0);
  g_fake_now_ns = 100;  // age == ttl: still fresh (stale is age > ttl)
  EXPECT_EQ(cache.get_or_compute(key, compute).cost.time, 1.0);
  EXPECT_EQ(cache.hits(), 1u);

  g_fake_now_ns = 101;  // one past: stale, recomputed and refreshed in place
  EXPECT_EQ(cache.get_or_compute(key, compute).cost.time, 2.0);
  EXPECT_EQ(cache.expirations(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.entry_capacity(), 1u);  // same entry record, not a new one

  // The refresh re-arms the TTL from the refresh time.
  g_fake_now_ns = 150;
  EXPECT_EQ(cache.get_or_compute(key, compute).cost.time, 2.0);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(computes, 2);
}

// Concurrent probes racing on one stale entry: every thread may compute, but
// exactly one refresh is counted and every other lookup resolves as a hit of
// the refreshed value — hits + misses still equals the number of calls.
TEST(Cache, TtlConcurrentProbesOnStaleEntryCountOneExpiration) {
  g_fake_now_ns = 0;
  CostCache cache{ttl_options(10)};
  const std::vector<double> key{7};
  const PointCost value{{42, 7}, true, 2};
  (void)cache.get_or_compute(key, [&] { return value; });
  g_fake_now_ns = 1000;  // far past the ttl

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const PointCost got = cache.get_or_compute(key, [&] { return value; });
      EXPECT_EQ(got, value);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(cache.expirations(), 1u);
  EXPECT_EQ(cache.misses(), 2u);  // the initial insert + the one refresh
  EXPECT_EQ(cache.hits(), static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, AdmissionFirstMissOnFullShardIsRejectedSecondIsAdmitted) {
  CacheOptions options;
  options.shards = 1;
  options.max_entries_per_shard = 2;
  options.admission = true;
  CostCache cache{options};
  const std::vector<double> a{1}, b{2}, c{3};
  const auto make = [](double t) {
    return [t] { return PointCost{{t, 0}, true, 1}; };
  };

  // The shard fills without doorkeeper involvement.
  (void)cache.get_or_compute(a, make(1));
  (void)cache.get_or_compute(b, make(2));
  EXPECT_EQ(cache.admission_rejections(), 0u);

  // First sight of c on the full shard: computed, returned, NOT inserted.
  EXPECT_EQ(cache.get_or_compute(c, make(3)).cost.time, 3.0);
  EXPECT_EQ(cache.admission_rejections(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Second miss on c: the doorkeeper remembers it, so it earns the slot —
  // evicting the FIFO-oldest entry (a).
  EXPECT_EQ(cache.get_or_compute(c, make(3)).cost.time, 3.0);
  EXPECT_EQ(cache.admission_rejections(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 0u);

  // c now hits; a was the eviction victim and misses (and is itself now
  // subject to admission).
  (void)cache.get_or_compute(c, make(3));
  EXPECT_EQ(cache.hits(), 1u);
  (void)cache.get_or_compute(a, make(1));
  EXPECT_EQ(cache.admission_rejections(), 2u);
}

// Racing first-sight misses on one new key against a full shard: whatever
// the interleaving, the doorkeeper rejects exactly one probe, exactly one
// insert happens, and every remaining lookup is a hit — the counters are
// exact, not approximate, under concurrency.
TEST(Cache, AdmissionRejectionsAreCountedExactlyUnderConcurrency) {
  CacheOptions options;
  options.shards = 1;
  options.max_entries_per_shard = 2;
  options.admission = true;
  CostCache cache{options};
  (void)cache.get_or_compute(std::vector<double>{1},
                             [] { return PointCost{}; });
  (void)cache.get_or_compute(std::vector<double>{2},
                             [] { return PointCost{}; });

  constexpr int kThreads = 8;
  const std::vector<double> fresh{3};
  const PointCost value{{3, 0}, true, 1};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const PointCost got = cache.get_or_compute(fresh, [&] { return value; });
      EXPECT_EQ(got, value);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(cache.admission_rejections(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  // 2 fill misses + the rejected probe + the inserting probe; the other 6
  // probes of `fresh` resolved as hits.
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(2 + kThreads));
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(Cache, ClearResetsTtlAndAdmissionState) {
  g_fake_now_ns = 0;
  CacheOptions options = ttl_options(10);
  options.max_entries_per_shard = 1;
  options.admission = true;
  CostCache cache{options};
  const std::vector<double> a{1}, b{2};
  (void)cache.get_or_compute(a, [] { return PointCost{}; });
  (void)cache.get_or_compute(b, [] { return PointCost{}; });  // rejected
  g_fake_now_ns = 100;
  (void)cache.get_or_compute(a, [] { return PointCost{}; });  // refresh
  EXPECT_EQ(cache.admission_rejections(), 1u);
  EXPECT_EQ(cache.expirations(), 1u);

  cache.clear();
  EXPECT_EQ(cache.expirations(), 0u);
  EXPECT_EQ(cache.admission_rejections(), 0u);
  EXPECT_EQ(cache.size(), 0u);
  // A cleared doorkeeper has forgotten b: its next miss on a full shard is
  // a first sight again.
  (void)cache.get_or_compute(a, [] { return PointCost{}; });
  (void)cache.get_or_compute(b, [] { return PointCost{}; });
  EXPECT_EQ(cache.admission_rejections(), 1u);
}

TEST(Cache, HashIsLengthSeededAndOrderSensitive) {
  const std::vector<double> ab{1.0, 2.0};
  const std::vector<double> ba{2.0, 1.0};
  const std::vector<double> a{1.0};
  EXPECT_NE(CostCache::hash_key(ab), CostCache::hash_key(ba));
  EXPECT_NE(CostCache::hash_key(ab), CostCache::hash_key(a));
  EXPECT_EQ(CostCache::hash_key(ab), CostCache::hash_key(ab));
  EXPECT_THROW(
      (void)CostCache::hash_key(
          std::vector<double>{std::numeric_limits<double>::quiet_NaN()}),
      std::invalid_argument);
}

}  // namespace
}  // namespace stamp::sweep
