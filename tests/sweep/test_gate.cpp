#include "sweep/gate.hpp"

#include "sweep/sweep.hpp"

#include <gtest/gtest.h>

#include <string>

// run_sweep/run_sweep_serial are deprecated in favor of Evaluator::sweep;
// this file exercises the sweep engine directly on purpose (it is the layer
// under test/measurement, below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace stamp::sweep {
namespace {

/// A minimal single-axis stamp-sweep/v1 document with caller-provided point
/// bodies, for precise control over the numbers the gate sees.
std::string doc(const std::string& points) {
  return R"({"schema":"stamp-sweep/v1","workload":"w","objective":"EDP",)"
         R"("axes":["a"],"points":[)" +
         points + "]}";
}

/// One point with parameter a=`a` and the given metric values.
std::string point(double a, const std::string& d, const std::string& pdp = "10",
                  const std::string& edp = "1000",
                  const std::string& ed2p = "100000",
                  const std::string& feasible = "true") {
  return R"({"params":{"a":)" + std::to_string(a) + R"(},"processes":2,)" +
         R"("feasible":)" + feasible + R"(,"metrics":{"D":)" + d +
         R"(,"PDP":)" + pdp + R"(,"EDP":)" + edp + R"(,"ED2P":)" + ed2p +
         R"(},"models":{"PRAM":50,"BSP":80}})";
}

TEST(Gate, IdenticalDocumentsPass) {
  const std::string text = doc(point(1, "100") + "," + point(2, "200"));
  const GateReport r = compare_sweeps_text(text, text);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.points_compared, 2u);
  EXPECT_TRUE(r.issues.empty());
}

TEST(Gate, RealSweepSelfComparisonPasses) {
  const std::string json = to_json(run_sweep_serial(SweepConfig::tiny()));
  const GateReport r = compare_sweeps_text(json, json);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.points_compared, SweepConfig::tiny().grid.size());
}

// The acceptance demonstration: perturbing a cost-model constant (here the
// per-flop energy weight w_fp) must trip the gate.
TEST(Gate, PerturbedCostModelConstantFailsTheGate) {
  SweepConfig cfg = SweepConfig::tiny();
  const std::string baseline = to_json(run_sweep_serial(cfg));
  cfg.base.energy.w_fp *= 1.5;  // the perturbation
  const std::string fresh = to_json(run_sweep_serial(cfg));
  const GateReport r = compare_sweeps_text(baseline, fresh);
  EXPECT_FALSE(r.ok);
  // Energy-bearing metrics drift; pure-time D does not (w_fp is energy-only).
  bool pdp_drift = false;
  for (const GateIssue& i : r.issues)
    if (i.kind == GateIssue::Kind::Drift && i.metric == "PDP")
      pdp_drift = true;
  EXPECT_TRUE(pdp_drift);
}

TEST(Gate, ExactlyAtToleranceIsAPass) {
  // Default D tolerance is 0.02; |98 - 100| / max(100, 98) == 0.02 exactly.
  const GateReport r = compare_sweeps_text(doc(point(1, "100")),
                                           doc(point(1, "98")));
  EXPECT_TRUE(r.ok) << (r.issues.empty() ? "" : r.issues[0].describe());
}

TEST(Gate, JustOverToleranceFails) {
  const GateReport r = compare_sweeps_text(doc(point(1, "100")),
                                           doc(point(1, "97.9")));
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_EQ(r.issues[0].kind, GateIssue::Kind::Drift);
  EXPECT_EQ(r.issues[0].metric, "D");
}

TEST(Gate, CustomTolerancesOverrideDefaults) {
  GateTolerances loose;
  loose.D = 0.5;
  const GateReport r = compare_sweeps_text(doc(point(1, "100")),
                                           doc(point(1, "60")), loose);
  EXPECT_TRUE(r.ok);
}

TEST(Gate, PointMissingFromBaselineFails) {
  const GateReport r = compare_sweeps_text(
      doc(point(1, "100")), doc(point(1, "100") + "," + point(2, "200")));
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_EQ(r.issues[0].kind, GateIssue::Kind::MissingInBaseline);
}

TEST(Gate, PointMissingFromFreshFails) {
  const GateReport r = compare_sweeps_text(
      doc(point(1, "100") + "," + point(2, "200")), doc(point(1, "100")));
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_EQ(r.issues[0].kind, GateIssue::Kind::MissingInFresh);
}

TEST(Gate, NaNMetricFails) {
  // JsonWriter serializes NaN as null; the gate must treat it as failure on
  // either side, even when both sides are null.
  const std::string good = doc(point(1, "100"));
  const std::string bad = doc(point(1, "null"));
  for (const auto& [base, fresh] :
       {std::pair{good, bad}, {bad, good}, {bad, bad}}) {
    const GateReport r = compare_sweeps_text(base, fresh);
    EXPECT_FALSE(r.ok);
    ASSERT_EQ(r.issues.size(), 1u);
    EXPECT_EQ(r.issues[0].kind, GateIssue::Kind::NotANumber);
  }
}

TEST(Gate, MissingMetricKeyFails) {
  const std::string missing_edp =
      doc(R"({"params":{"a":1},"processes":2,"feasible":true,)"
          R"("metrics":{"D":100,"PDP":10,"ED2P":100000},)"
          R"("models":{"PRAM":50,"BSP":80}})");
  const GateReport r = compare_sweeps_text(doc(point(1, "100")), missing_edp);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_EQ(r.issues[0].kind, GateIssue::Kind::MissingMetric);
  EXPECT_EQ(r.issues[0].metric, "EDP");
}

TEST(Gate, FeasibilityFlipFails) {
  const GateReport r = compare_sweeps_text(
      doc(point(1, "100")),
      doc(point(1, "100", "10", "1000", "100000", "false")));
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_EQ(r.issues[0].kind, GateIssue::Kind::FeasibilityFlip);
}

TEST(Gate, ClassicalModelDriftAlsoTrips) {
  const std::string fresh =
      doc(R"({"params":{"a":1},"processes":2,"feasible":true,)"
          R"("metrics":{"D":100,"PDP":10,"EDP":1000,"ED2P":100000},)"
          R"("models":{"PRAM":50,"BSP":120}})");
  const GateReport r = compare_sweeps_text(doc(point(1, "100")), fresh);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_EQ(r.issues[0].metric, "BSP");
}

TEST(Gate, SchemaMismatchShortCircuits) {
  const std::string other =
      R"({"schema":"stamp-sweep/v1","workload":"w","objective":"EDP",)"
      R"("axes":["b"],"points":[)" +
      point(1, "100") + "]}";
  const GateReport r = compare_sweeps_text(doc(point(1, "100")), other);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_EQ(r.issues[0].kind, GateIssue::Kind::SchemaMismatch);
}

TEST(Gate, MalformedDocumentThrows) {
  EXPECT_THROW((void)compare_sweeps_text("{", doc(point(1, "1"))),
               report::JsonParseError);
  // Header matches, but "points" is not an array.
  EXPECT_THROW(
      (void)compare_sweeps_text(R"({"schema":"stamp-sweep/v1","workload":"w",)"
                                R"("objective":"EDP","axes":["a"],)"
                                R"("points":{}})",
                                doc(point(1, "1"))),
      std::runtime_error);
}

}  // namespace
}  // namespace stamp::sweep
