#include "sweep/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

// run_sweep/run_sweep_serial are deprecated in favor of Evaluator::sweep;
// this file exercises the sweep engine directly on purpose (it is the layer
// under test/measurement, below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace stamp::sweep {
namespace {

TEST(Sweep, CanonicalGridIsLargeEnoughToGate) {
  const SweepConfig cfg = SweepConfig::canonical();
  EXPECT_GE(cfg.grid.size(), 256u);  // the acceptance floor
  EXPECT_EQ(cfg.grid.size(), 576u);
}

TEST(Sweep, SerialRunIsDeterministic) {
  const SweepConfig cfg = SweepConfig::tiny();
  const SweepResult a = run_sweep_serial(cfg);
  const SweepResult b = run_sweep_serial(cfg);
  EXPECT_EQ(a.records, b.records);
}

TEST(Sweep, PooledRecordsMatchSerialRecords) {
  const SweepConfig cfg = SweepConfig::tiny();
  const SweepResult serial = run_sweep_serial(cfg);
  Pool pool(4);
  const SweepResult pooled = run_sweep(cfg, pool);
  EXPECT_EQ(serial.records, pooled.records);
}

// The acceptance property: over a >= 256-point grid, a 4-thread pool emits
// byte-identical JSON to a 1-thread pool (and to the serial reference).
TEST(Sweep, JsonIsByteIdenticalAcrossPoolWidths) {
  const SweepConfig cfg = SweepConfig::canonical();
  ASSERT_GE(cfg.grid.size(), 256u);
  Pool one(1);
  Pool four(4);
  const std::string json1 = to_json(run_sweep(cfg, one));
  const std::string json4 = to_json(run_sweep(cfg, four));
  EXPECT_EQ(json1, json4);
  EXPECT_EQ(json1, to_json(run_sweep_serial(cfg)));
}

// The memoization contract since the batch evaluator: one cache probe per
// point (all four metrics derive from the one memoized (T, E) pair). A
// Cartesian grid never repeats a full parameter tuple, so every probe of a
// serial sweep is the miss that computes the point.
TEST(Sweep, BatchPathProbesTheCacheOncePerPoint) {
  const SweepConfig cfg = SweepConfig::tiny();
  const SweepResult r = run_sweep_serial(cfg);
  const auto points = static_cast<std::uint64_t>(cfg.grid.size());
  EXPECT_EQ(r.stats.cache_misses, points);
  EXPECT_EQ(r.stats.cache_hits, 0u);
}

TEST(Sweep, PooledCacheAccountsForEveryQuery) {
  const SweepConfig cfg = SweepConfig::tiny();
  Pool pool(4);
  const SweepResult r = run_sweep(cfg, pool);
  const auto points = static_cast<std::uint64_t>(cfg.grid.size());
  // One probe per point; every probe is counted exactly once (hit or miss),
  // and at least one miss per distinct tuple is unavoidable.
  EXPECT_EQ(r.stats.cache_hits + r.stats.cache_misses, points);
  EXPECT_GE(r.stats.cache_misses, points);
}

TEST(Sweep, MetricsAreConsistentDerivationsOfOneCost) {
  const SweepResult r = run_sweep_serial(SweepConfig::tiny());
  for (const SweepRecord& rec : r.records) {
    EXPECT_DOUBLE_EQ(rec.metrics.EDP, rec.metrics.PDP * rec.metrics.D);
    EXPECT_DOUBLE_EQ(rec.metrics.ED2P, rec.metrics.EDP * rec.metrics.D);
    EXPECT_GT(rec.metrics.D, 0);
    EXPECT_GT(rec.metrics.PDP, 0);
  }
}

TEST(Sweep, RecordsAreSortedByGridIndexWithDecodedParams) {
  const SweepConfig cfg = SweepConfig::tiny();
  const SweepResult r = run_sweep_serial(cfg);
  ASSERT_EQ(r.records.size(), cfg.grid.size());
  for (std::size_t i = 0; i < r.records.size(); ++i) {
    EXPECT_EQ(r.records[i].index, i);
    EXPECT_EQ(r.records[i].params, cfg.grid.point(i));
  }
}

TEST(Sweep, SelectsAProcessCountWithinTheHardwareBound) {
  const SweepConfig cfg = SweepConfig::canonical();
  const SweepResult r = run_sweep_serial(cfg);
  for (const SweepRecord& rec : r.records) {
    const int cores = static_cast<int>(
        cfg.grid.value(rec.params, axes::kCores));
    const int tpc = static_cast<int>(
        cfg.grid.value(rec.params, axes::kThreadsPerCore));
    EXPECT_GE(rec.processes, 1);
    EXPECT_LE(rec.processes, std::min(cfg.processes, cores * tpc));
  }
}

TEST(Sweep, ClassicalModelPredictionsAreFinite) {
  const SweepResult r = run_sweep_serial(SweepConfig::tiny());
  for (const SweepRecord& rec : r.records)
    for (const double t : rec.classical) {
      EXPECT_TRUE(std::isfinite(t));
      EXPECT_GT(t, 0);
    }
}

TEST(Sweep, MachineParameterAxesActuallyChangeTheMetrics) {
  // Two points that differ only in ell_e must price shared-memory latency
  // differently somewhere in the grid (sanity against dead axes).
  const SweepConfig cfg = SweepConfig::canonical();
  const SweepResult r = run_sweep_serial(cfg);
  const int ell_axis = cfg.grid.axis_index(std::string(axes::kEllE));
  ASSERT_GE(ell_axis, 0);
  bool any_difference = false;
  for (std::size_t i = 0; i + 1 < r.records.size() && !any_difference; ++i) {
    for (std::size_t j = i + 1; j < r.records.size(); ++j) {
      std::vector<double> a = r.records[i].params;
      std::vector<double> b = r.records[j].params;
      a[static_cast<std::size_t>(ell_axis)] = 0;
      b[static_cast<std::size_t>(ell_axis)] = 0;
      if (a == b && r.records[i].metrics != r.records[j].metrics) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

// Regression: integer-coded axis values are validated *before* the
// double -> int cast. A NaN, out-of-int-range, or non-positive processes
// value used to hit the cast unchecked (UB for out-of-range, a silent
// clamp-to-1 for non-positive); now every such value throws.
TEST(Sweep, SetupPointRejectsUnrepresentableIntegerAxisValues) {
  SweepConfig cfg = SweepConfig::tiny();
  cfg.grid = ParamGrid{};
  cfg.grid.axis(std::string(axes::kProcesses), {16});

  EXPECT_EQ(setup_point(cfg, std::vector<double>{16}).processes, 16);
  for (const double bad :
       {std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(), 1e18, -3.0, 0.0}) {
    EXPECT_THROW((void)setup_point(cfg, std::vector<double>{bad}),
                 std::invalid_argument)
        << "processes axis value " << bad;
  }

  cfg.grid = ParamGrid{};
  cfg.grid.axis(std::string(axes::kPlacement), {0});
  EXPECT_THROW(
      (void)setup_point(cfg, std::vector<double>{-1e18}),
      std::invalid_argument);  // pre-cast range check, not UB then a throw
}

TEST(Sweep, JsonArtifactCarriesTheStableSchema) {
  const std::string json = to_json(run_sweep_serial(SweepConfig::tiny()));
  EXPECT_NE(json.find("\"schema\":\"stamp-sweep/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"points\":["), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{\"D\":"), std::string::npos);
  EXPECT_NE(json.find("\"models\":{\"PRAM\":"), std::string::npos);
}

}  // namespace
}  // namespace stamp::sweep
