/// Byte-identity harness: the `stamp-sweep/v1` artifact must be identical no
/// matter how the sweep is scheduled. For each config the serial reference
/// JSON is compared against pool runs at 1, 4, and 16 threads (1 = degenerate
/// pool, 4 = oversubscribed on small machines, 16 = more workers than most
/// grids have natural chunks, so the range-claiming scheduler's stealing and
/// remainder-parking paths all execute). Any scheduling dependence — records
/// keyed by completion order, cache effects leaking into records, float
/// reassociation — shows up here as a byte diff.

#include "sweep/sweep.hpp"

#include <gtest/gtest.h>

#include <string>

// run_sweep/run_sweep_serial are deprecated in favor of Evaluator::sweep;
// this file exercises the sweep engine directly on purpose (it is the layer
// under test/measurement, below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace stamp::sweep {
namespace {

void expect_identical_at_every_width(const SweepConfig& cfg) {
  const std::string serial = to_json(run_sweep_serial(cfg));
  for (const int threads : {1, 4, 16}) {
    Pool pool(threads);
    const std::string pooled = to_json(run_sweep(cfg, pool));
    EXPECT_EQ(serial, pooled)
        << "artifact differs from serial at " << threads << " threads";
  }
}

TEST(SweepIdentity, TinyGridIsSchedulingIndependent) {
  expect_identical_at_every_width(SweepConfig::tiny());
}

TEST(SweepIdentity, CanonicalGridIsSchedulingIndependent) {
  const SweepConfig cfg = SweepConfig::canonical();
  ASSERT_GE(cfg.grid.size(), 256u);  // the gate's acceptance floor
  expect_identical_at_every_width(cfg);
}

// The bench configuration: canonical plus a `processes` bound axis. This is
// the 8-axis grid BENCH_sweep.json reports on, and the axis doubles the
// number of distinct cache keys per machine configuration.
TEST(SweepIdentity, EightAxisBenchGridIsSchedulingIndependent) {
  SweepConfig cfg = SweepConfig::canonical();
  cfg.grid.axis(std::string(axes::kProcesses), {16, 64});
  cfg.workload = "uniform-comm-bench8";
  ASSERT_EQ(cfg.grid.size(), 1152u);
  expect_identical_at_every_width(cfg);
}

}  // namespace
}  // namespace stamp::sweep
