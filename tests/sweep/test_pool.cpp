#include "sweep/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace stamp::sweep {
namespace {

TEST(Pool, RejectsNonPositiveWidth) {
  EXPECT_THROW(Pool(0), std::invalid_argument);
  EXPECT_THROW(Pool(-3), std::invalid_argument);
}

TEST(Pool, SingleThreadRunsEveryIndexInline) {
  Pool pool(1);
  std::vector<int> hits(100, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(pool.steals(), 0u);  // nobody to steal from
}

TEST(Pool, EveryIndexExactlyOnceAcrossWorkers) {
  Pool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Pool, ZeroItemsReturnsImmediately) {
  Pool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Pool, PoolIsReusableAcrossLoops) {
  Pool pool(3);
  std::atomic<long long> sum{0};
  for (int rep = 0; rep < 20; ++rep) {
    sum.store(0);
    pool.parallel_for(1000, [&](std::size_t i) {
      sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
  }
}

TEST(Pool, UnevenWorkStillCompletes) {
  Pool pool(4);
  std::atomic<int> done{0};
  pool.parallel_for(64, [&](std::size_t i) {
    if (i % 16 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 64);
}

// A scheduling scenario in which at least one steal MUST happen for the loop
// to finish. With Pool(2) and 4 single-index chunks, distribution is
// round-robin: worker 0 (the caller) owns {0, 2}, worker 1 owns {1, 3}.
// Owners pop LIFO, so worker 1 starts with index 3 — which blocks until
// index 1 runs. Index 1 sits in worker 1's deque behind the blocked owner,
// so only a steal (by the caller, after it drains 2 and 0) can run it. If
// stealing were broken this test would deadlock rather than pass.
TEST(Pool, StealsWorkFromABlockedPeer) {
  Pool pool(2);
  std::atomic<bool> index1_done{false};
  pool.parallel_for(4, [&](std::size_t i) {
    if (i == 3) {
      while (!index1_done.load(std::memory_order_acquire))
        std::this_thread::yield();
    }
    if (i == 1) index1_done.store(true, std::memory_order_release);
  });
  EXPECT_GE(pool.steals(), 1u);
}

TEST(Pool, FirstExceptionPropagatesAndLoopDrains) {
  Pool pool(4);
  std::atomic<int> executed{0};
  auto run = [&] {
    pool.parallel_for(100, [&](std::size_t i) {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (i == 37) throw std::runtime_error("boom at 37");
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
  // The pool must be usable again after a throwing loop.
  std::atomic<int> after{0};
  pool.parallel_for(10, [&](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 10);
}

}  // namespace
}  // namespace stamp::sweep
