#include "sweep/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace stamp::sweep {
namespace {

TEST(Pool, RejectsNonPositiveWidth) {
  EXPECT_THROW(Pool(0), std::invalid_argument);
  EXPECT_THROW(Pool(-3), std::invalid_argument);
}

TEST(Pool, SingleThreadRunsEveryIndexInline) {
  Pool pool(1);
  std::vector<int> hits(100, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(pool.steals(), 0u);  // nobody to steal from
}

TEST(Pool, EveryIndexExactlyOnceAcrossWorkers) {
  Pool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Pool, ZeroItemsReturnsImmediately) {
  Pool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Pool, PoolIsReusableAcrossLoops) {
  Pool pool(3);
  std::atomic<long long> sum{0};
  for (int rep = 0; rep < 20; ++rep) {
    sum.store(0);
    pool.parallel_for(1000, [&](std::size_t i) {
      sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
  }
}

TEST(Pool, UnevenWorkStillCompletes) {
  Pool pool(4);
  std::atomic<int> done{0};
  pool.parallel_for(64, [&](std::size_t i) {
    if (i % 16 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 64);
}

// A scheduling scenario in which at least one steal MUST happen for the loop
// to finish. With Pool(2) and n = 16, the static partition gives worker 0
// (the caller) the range [0, 8) and worker 1 the range [8, 16). Owners claim
// from the front, so the first index worker 1 can run is 8 — and the body
// blocks index 8 until some index > 8 has executed. Worker 1 is stuck, so an
// index > 8 can only run after a steal splits worker 1's remaining range
// (whichever worker ends up running index 8, stolen back halves always run
// before the range's front). If stealing were broken this test would
// deadlock rather than pass.
TEST(Pool, StealsWorkFromABlockedPeer) {
  Pool pool(2);
  std::atomic<int> high_done{0};
  pool.parallel_for(16, [&](std::size_t i) {
    if (i > 8) high_done.fetch_add(1, std::memory_order_acq_rel);
    if (i == 8) {
      while (high_done.load(std::memory_order_acquire) == 0)
        std::this_thread::yield();
    }
  });
  EXPECT_GE(pool.steals(), 1u);
}

// Satellite regression: an empty loop returns without notifying, so repeated
// parallel_for(0) calls cause no worker wakeup storm (and no deadlock).
TEST(Pool, EmptyLoopNeverWakesWorkers) {
  Pool pool(4);
  const std::uint64_t wakeups_before = pool.wakeups();
  for (int rep = 0; rep < 1000; ++rep)
    pool.parallel_for(0, [](std::size_t) { FAIL() << "body ran for n == 0"; });
  EXPECT_EQ(pool.wakeups(), wakeups_before);
  EXPECT_EQ(pool.steals(), 0u);
  // The pool is still fully functional afterwards.
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 8);
}

// Satellite regression: fewer indices than workers leaves some workers with
// empty ranges; every index must still run exactly once and the loop must
// terminate (idle workers yield-spin until pending hits zero).
TEST(Pool, FewerItemsThanWorkersCompletes) {
  Pool pool(8);
  for (std::size_t n = 1; n < 8; ++n) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

// Satellite regression: a body that throws on the *last* index still
// rethrows exactly once after the loop drains — every other index executes.
TEST(Pool, ThrowOnLastIndexRethrowsExactlyOnceAfterDrain) {
  Pool pool(4);
  constexpr std::size_t kN = 128;
  std::atomic<int> executed{0};
  int caught = 0;
  try {
    pool.parallel_for(kN, [&](std::size_t i) {
      if (i == kN - 1) throw std::runtime_error("boom at the end");
      executed.fetch_add(1, std::memory_order_relaxed);
    });
  } catch (const std::runtime_error&) {
    ++caught;
  }
  EXPECT_EQ(caught, 1);
  EXPECT_EQ(executed.load(), static_cast<int>(kN) - 1);
  // And the pool is reusable after the failed loop.
  std::atomic<int> after{0};
  pool.parallel_for(10, [&](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 10);
}

// Regression for the cross-loop steal race: a worker that lingers in
// try_steal after one loop drains holds a stale range snapshot; if the next
// loop reinstalled ranges underneath it, the stale CAS could succeed by ABA
// (back-to-back same-size loops repack identical (begin, end) words) and the
// stale park would clobber a freshly installed slot — losing indices and
// hanging parallel_for. run_slab now quiesces on the draining-worker count
// before installing. Many short same-size loops with uneven bodies maximize
// the window: stealing is frequent and loop turnover is constant.
TEST(Pool, BackToBackSameSizeLoopsNeverLoseIndices) {
  Pool pool(4);
  constexpr int kReps = 2000;
  constexpr std::size_t kN = 64;
  std::atomic<long long> sum{0};
  for (int rep = 0; rep < kReps; ++rep) {
    pool.parallel_for(kN, [&](std::size_t i) {
      if (i % 32 == 0) std::this_thread::yield();  // encourage steals
      sum.fetch_add(static_cast<long long>(i) + 1,
                    std::memory_order_relaxed);
    });
  }
  const long long per_loop = static_cast<long long>(kN) * (kN + 1) / 2;
  EXPECT_EQ(sum.load(), kReps * per_loop);
}

// Range-claiming sanity at scale: a large loop sums every index exactly once
// across many workers (CAS claims/splits never drop or double-run an index).
TEST(Pool, LargeLoopSumsEveryIndexOnce) {
  Pool pool(4);
  constexpr std::size_t kN = 1 << 20;
  std::atomic<long long> sum{0};
  pool.parallel_for(kN, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
  });
  const long long n = static_cast<long long>(kN);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(Pool, FirstExceptionPropagatesAndLoopDrains) {
  Pool pool(4);
  std::atomic<int> executed{0};
  auto run = [&] {
    pool.parallel_for(100, [&](std::size_t i) {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (i == 37) throw std::runtime_error("boom at 37");
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
  // The pool must be usable again after a throwing loop.
  std::atomic<int> after{0};
  pool.parallel_for(10, [&](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 10);
}

}  // namespace
}  // namespace stamp::sweep
