#include "core/cancel.hpp"

#include "fault/retry.hpp"
#include "sweep/journal.hpp"
#include "sweep/pool.hpp"
#include "sweep/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <string>
#include <thread>

// run_sweep/run_sweep_serial are deprecated in favor of Evaluator::sweep;
// this file exercises the sweep engine directly on purpose (it is the layer
// under test/measurement, below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace stamp::sweep {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::path(testing::TempDir()) / name).string();
}

std::size_t evaluated_count(const SweepResult& result) {
  // Evaluated records always select >= 1 process; skipped (cancelled) points
  // keep the default-initialized record.
  std::size_t n = 0;
  for (const SweepRecord& rec : result.records)
    if (rec.processes > 0) ++n;
  return n;
}

TEST(PoolCancel, PreCancelledTokenRunsNothingAndPoolStaysUsable) {
  Pool pool(4);
  core::CancelToken token;
  token.request_cancel();
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(
      256, [&ran](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); },
      &token);
  EXPECT_EQ(ran.load(), 0u);

  // The loop drained with exact accounting, so the pool must be reusable.
  token.reset();
  pool.parallel_for(
      256, [&ran](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); },
      &token);
  EXPECT_EQ(ran.load(), 256u);
}

TEST(PoolCancel, CancelMidLoopDrainsWithoutDeadlockOrFullRun) {
  Pool pool(4);
  core::CancelToken token;
  constexpr std::size_t kN = 100000;
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(
      kN,
      [&](std::size_t) {
        if (ran.fetch_add(1, std::memory_order_relaxed) + 1 == 64)
          token.request_cancel();
      },
      &token);
  // Indices already past their cancellation check finish; everything else is
  // skipped. Returning at all proves the skipped tail was still accounted.
  EXPECT_GE(ran.load(), 64u);
  EXPECT_LT(ran.load(), kN);

  std::atomic<std::size_t> again{0};
  pool.parallel_for(kN, [&again](std::size_t) {
    again.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(again.load(), kN);
}

TEST(PoolCancel, UntrippedTokenRunsEveryIndex) {
  Pool pool(2);
  core::CancelToken token;
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(
      512, [&ran](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); },
      &token);
  EXPECT_EQ(ran.load(), 512u);
  EXPECT_FALSE(token.cancelled());
}

TEST(SweepCancel, PreCancelledSweepSkipsEverythingAndJournalsNothing) {
  const SweepConfig cfg = SweepConfig::tiny();
  const std::string path = temp_path("cancel_precancelled.journal");
  fs::remove(path);
  core::CancelToken token;
  token.request_cancel();
  SweepResult result;
  {
    Journal journal(path, cfg);
    SweepOptions opts;
    opts.cancel = &token;
    opts.journal = &journal;
    result = run_sweep_serial(cfg, opts);
  }
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.records.size(), cfg.grid.size());
  EXPECT_EQ(evaluated_count(result), 0u);
  EXPECT_EQ(result.stats.skipped_points, cfg.grid.size());
  EXPECT_EQ(result.stats.journaled_points, 0u);

  const ResumeState resume = ResumeState::load(path, cfg);
  EXPECT_EQ(resume.completed_points(), 0u);
  fs::remove(path);
}

// The signal-path integration property: wherever an asynchronous trip lands,
// the drained result and the journal agree on exactly which points completed,
// and resuming finishes the sweep byte-identical to an uninterrupted run.
TEST(SweepCancel, AsyncCancelJournalsExactlyTheCompletedPoints) {
  const SweepConfig cfg = SweepConfig::canonical();
  Pool pool(4);
  const std::string want = to_json(run_sweep(cfg, pool));
  const std::string path = temp_path("cancel_async.journal");
  fs::remove(path);

  core::CancelToken token;
  SweepResult result;
  {
    Journal journal(path, cfg);
    SweepOptions opts;
    opts.cancel = &token;
    opts.journal = &journal;
    std::thread tripper([&token] {
      std::this_thread::sleep_for(std::chrono::microseconds(300));
      token.request_cancel();
    });
    result = run_sweep(cfg, pool, opts);
    tripper.join();
  }

  const std::size_t completed = evaluated_count(result);
  EXPECT_EQ(result.stats.skipped_points, cfg.grid.size() - completed);
  EXPECT_EQ(result.cancelled, completed < cfg.grid.size());
  EXPECT_EQ(result.stats.journaled_points, completed);

  const ResumeState resume = ResumeState::load(path, cfg);
  EXPECT_EQ(resume.completed_points(), completed);
  for (std::size_t i = 0; i < cfg.grid.size(); ++i)
    EXPECT_EQ(resume.completed(i), result.records[i].processes > 0)
        << "point " << i;

  SweepOptions opts;
  opts.resume = &resume;
  EXPECT_EQ(to_json(run_sweep(cfg, pool, opts)), want);
  fs::remove(path);
}

TEST(SweepCancel, TokenTrippedAfterCompletionLeavesResultClean) {
  const SweepConfig cfg = SweepConfig::tiny();
  core::CancelToken token;
  SweepOptions opts;
  opts.cancel = &token;
  const SweepResult result = run_sweep_serial(cfg, opts);
  token.request_cancel();  // too late: the run already drained
  EXPECT_FALSE(result.cancelled);
  EXPECT_EQ(result.stats.skipped_points, 0u);
  EXPECT_EQ(evaluated_count(result), cfg.grid.size());
}

TEST(SweepCancel, PointDeadlineFailsTheSweepSeriallyAndPooled) {
  const SweepConfig cfg = SweepConfig::tiny();
  SweepOptions opts;
  opts.point_deadline = std::chrono::nanoseconds(1);
  EXPECT_THROW(static_cast<void>(run_sweep_serial(cfg, opts)),
               fault::DeadlineExceeded);
  Pool pool(4);
  EXPECT_THROW(static_cast<void>(run_sweep(cfg, pool, opts)),
               fault::DeadlineExceeded);
}

TEST(SweepCancel, GenerousPointDeadlineChangesNothing) {
  const SweepConfig cfg = SweepConfig::tiny();
  const std::string want = to_json(run_sweep_serial(cfg));
  SweepOptions opts;
  opts.point_deadline = std::chrono::hours(1);
  EXPECT_EQ(to_json(run_sweep_serial(cfg, opts)), want);
}

}  // namespace
}  // namespace stamp::sweep
