#include "sweep/grid.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace stamp::sweep {
namespace {

TEST(Grid, SizeIsProductOfAxisSizes) {
  ParamGrid g;
  EXPECT_EQ(g.size(), 0u);  // no axes, nothing to evaluate
  g.axis("a", {1, 2, 3});
  EXPECT_EQ(g.size(), 3u);
  g.axis("b", {10, 20});
  EXPECT_EQ(g.size(), 6u);
  g.axis("c", {0});
  EXPECT_EQ(g.size(), 6u);
}

TEST(Grid, LastAxisVariesFastest) {
  ParamGrid g;
  g.axis("hi", {0, 1}).axis("lo", {5, 6, 7});
  EXPECT_EQ(g.point(0), (std::vector<double>{0, 5}));
  EXPECT_EQ(g.point(1), (std::vector<double>{0, 6}));
  EXPECT_EQ(g.point(2), (std::vector<double>{0, 7}));
  EXPECT_EQ(g.point(3), (std::vector<double>{1, 5}));
  EXPECT_EQ(g.point(5), (std::vector<double>{1, 7}));
}

TEST(Grid, EveryPointIsDistinct) {
  ParamGrid g;
  g.axis("a", {1, 2}).axis("b", {3, 4, 5}).axis("c", {6, 7});
  std::set<std::vector<double>> seen;
  for (std::size_t i = 0; i < g.size(); ++i) seen.insert(g.point(i));
  EXPECT_EQ(seen.size(), g.size());
}

TEST(Grid, ValueLooksUpByAxisName) {
  ParamGrid g;
  g.axis("cores", {2, 4}).axis("kappa", {0, 8});
  const std::vector<double> p = g.point(3);
  EXPECT_EQ(g.value(p, "cores"), 4);
  EXPECT_EQ(g.value(p, "kappa"), 8);
  EXPECT_THROW((void)g.value(p, "nope"), std::invalid_argument);
}

TEST(Grid, AxisIndexFindsAxes) {
  ParamGrid g;
  g.axis("x", {1}).axis("y", {2});
  EXPECT_EQ(g.axis_index("x"), 0);
  EXPECT_EQ(g.axis_index("y"), 1);
  EXPECT_EQ(g.axis_index("z"), -1);
}

TEST(Grid, RejectsBadAxes) {
  ParamGrid g;
  EXPECT_THROW(g.axis("empty", {}), std::invalid_argument);
  g.axis("a", {1});
  EXPECT_THROW(g.axis("a", {2}), std::invalid_argument);  // duplicate
}

TEST(Grid, PointIndexOutOfRangeThrows) {
  ParamGrid g;
  g.axis("a", {1, 2});
  EXPECT_THROW((void)g.point(2), std::out_of_range);
}

}  // namespace
}  // namespace stamp::sweep
