#include "sweep/grid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <span>
#include <stdexcept>
#include <vector>

namespace stamp::sweep {
namespace {

TEST(Grid, SizeIsProductOfAxisSizes) {
  ParamGrid g;
  EXPECT_EQ(g.size(), 0u);  // no axes, nothing to evaluate
  g.axis("a", {1, 2, 3});
  EXPECT_EQ(g.size(), 3u);
  g.axis("b", {10, 20});
  EXPECT_EQ(g.size(), 6u);
  g.axis("c", {0});
  EXPECT_EQ(g.size(), 6u);
}

TEST(Grid, LastAxisVariesFastest) {
  ParamGrid g;
  g.axis("hi", {0, 1}).axis("lo", {5, 6, 7});
  EXPECT_EQ(g.point(0), (std::vector<double>{0, 5}));
  EXPECT_EQ(g.point(1), (std::vector<double>{0, 6}));
  EXPECT_EQ(g.point(2), (std::vector<double>{0, 7}));
  EXPECT_EQ(g.point(3), (std::vector<double>{1, 5}));
  EXPECT_EQ(g.point(5), (std::vector<double>{1, 7}));
}

TEST(Grid, EveryPointIsDistinct) {
  ParamGrid g;
  g.axis("a", {1, 2}).axis("b", {3, 4, 5}).axis("c", {6, 7});
  std::set<std::vector<double>> seen;
  for (std::size_t i = 0; i < g.size(); ++i) seen.insert(g.point(i));
  EXPECT_EQ(seen.size(), g.size());
}

TEST(Grid, ValueLooksUpByAxisName) {
  ParamGrid g;
  g.axis("cores", {2, 4}).axis("kappa", {0, 8});
  const std::vector<double> p = g.point(3);
  EXPECT_EQ(g.value(p, "cores"), 4);
  EXPECT_EQ(g.value(p, "kappa"), 8);
  EXPECT_THROW((void)g.value(p, "nope"), std::invalid_argument);
}

TEST(Grid, AxisIndexFindsAxes) {
  ParamGrid g;
  g.axis("x", {1}).axis("y", {2});
  EXPECT_EQ(g.axis_index("x"), 0);
  EXPECT_EQ(g.axis_index("y"), 1);
  EXPECT_EQ(g.axis_index("z"), -1);
}

TEST(Grid, RejectsBadAxes) {
  ParamGrid g;
  EXPECT_THROW(g.axis("empty", {}), std::invalid_argument);
  g.axis("a", {1});
  EXPECT_THROW(g.axis("a", {2}), std::invalid_argument);  // duplicate
}

TEST(Grid, PointIndexOutOfRangeThrows) {
  ParamGrid g;
  g.axis("a", {1, 2});
  EXPECT_THROW((void)g.point(2), std::out_of_range);
}

// A mixed-arity grid that exercises every decode edge: arity-1 axes at the
// front, middle, and back (their digit never advances), plus a fast axis.
ParamGrid mixed_grid() {
  ParamGrid g;
  g.axis("one_hi", {42})
      .axis("a", {1, 2, 3})
      .axis("one_mid", {-0.5})
      .axis("b", {10, 20})
      .axis("one_lo", {7})
      .axis("c", {100, 200, 300, 400});
  return g;
}

TEST(Grid, DecodeIntoMatchesPointAtEveryIndex) {
  const ParamGrid g = mixed_grid();
  ASSERT_EQ(g.size(), 24u);
  std::vector<double> out(g.axes().size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g.decode_into(i, out);
    EXPECT_EQ(out, g.point(i)) << "index " << i;
  }
}

TEST(Grid, DecodeIntoValidatesIndexAndSpanSize) {
  const ParamGrid g = mixed_grid();
  std::vector<double> out(g.axes().size());
  EXPECT_THROW(g.decode_into(g.size(), out), std::out_of_range);
  std::vector<double> wrong(g.axes().size() + 1);
  EXPECT_THROW(g.decode_into(0, wrong), std::invalid_argument);
  std::vector<double> small(g.axes().size() - 1);
  EXPECT_THROW(g.decode_into(0, small), std::invalid_argument);
}

// Exhaustive: every (begin, end) range of the mixed grid, including empty
// ranges and ranges that straddle every axis-period boundary, must decode to
// exactly what point() yields index by index.
TEST(Grid, DecodeChunkMatchesPointOverEveryRange) {
  const ParamGrid g = mixed_grid();
  const std::size_t naxes = g.axes().size();
  for (std::size_t begin = 0; begin <= g.size(); ++begin) {
    for (std::size_t end = begin; end <= g.size(); ++end) {
      const std::size_t count = end - begin;
      std::vector<double> soa(naxes * count);
      g.decode_chunk(begin, end, soa);
      for (std::size_t k = 0; k < count; ++k) {
        const std::vector<double> expected = g.point(begin + k);
        for (std::size_t a = 0; a < naxes; ++a) {
          EXPECT_EQ(soa[a * count + k], expected[a])
              << "range [" << begin << ", " << end << ") axis " << a
              << " offset " << k;
        }
      }
    }
  }
}

TEST(Grid, DecodeChunkValidatesRangeAndBufferSize) {
  const ParamGrid g = mixed_grid();
  std::vector<double> soa(g.axes().size() * 2);
  EXPECT_THROW(g.decode_chunk(3, 2, soa), std::out_of_range);
  std::vector<double> oversized(g.axes().size() * (g.size() + 1));
  EXPECT_THROW(g.decode_chunk(0, g.size() + 1, oversized), std::out_of_range);
  EXPECT_THROW(g.decode_chunk(0, 3, soa), std::invalid_argument);  // too small
  EXPECT_THROW(g.decode_chunk(0, 1, soa), std::invalid_argument);  // too big
  g.decode_chunk(0, 2, soa);  // exact size is fine
}

TEST(GridCursor, WalksTheWholeGridInPointOrder) {
  const ParamGrid g = mixed_grid();
  GridCursor cur(g);
  for (std::size_t i = 0; i < g.size(); ++i) {
    ASSERT_FALSE(cur.done());
    EXPECT_EQ(cur.index(), i);
    const std::span<const double> v = cur.values();
    EXPECT_EQ(std::vector<double>(v.begin(), v.end()), g.point(i));
    cur.advance();
  }
  EXPECT_TRUE(cur.done());
  cur.advance();  // no-op once done
  EXPECT_TRUE(cur.done());
}

TEST(GridCursor, StartsMidGridAndRejectsPastTheEnd) {
  const ParamGrid g = mixed_grid();
  for (const std::size_t start : {std::size_t{1}, std::size_t{7},
                                  g.size() - 1}) {
    GridCursor cur(g, start);
    ASSERT_FALSE(cur.done());
    EXPECT_EQ(cur.index(), start);
    const std::span<const double> v = cur.values();
    EXPECT_EQ(std::vector<double>(v.begin(), v.end()), g.point(start));
  }
  EXPECT_TRUE(GridCursor(g, g.size()).done());  // exhausted, not an error
  EXPECT_THROW(GridCursor(g, g.size() + 1), std::out_of_range);
}

TEST(Linspace, EndpointsAreExactAndSpacingIsEven) {
  const std::vector<double> v = linspace(8, 40, 16);
  ASSERT_EQ(v.size(), 16u);
  EXPECT_EQ(v.front(), 8.0);  // exact, not 8 ± rounding
  EXPECT_EQ(v.back(), 40.0);
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    EXPECT_LT(v[i], v[i + 1]);
    EXPECT_NEAR(v[i + 1] - v[i], (40.0 - 8.0) / 15.0, 1e-12);
  }
}

TEST(Linspace, DegenerateCountsAndBadBoundsThrowOrCollapse) {
  EXPECT_EQ(linspace(3, 9, 1), (std::vector<double>{3}));
  const std::vector<double> two = linspace(-1, 1, 2);
  EXPECT_EQ(two, (std::vector<double>{-1, 1}));
  EXPECT_THROW((void)linspace(0, 1, 0), std::invalid_argument);
  EXPECT_THROW((void)linspace(std::nan(""), 1, 4), std::invalid_argument);
  EXPECT_THROW((void)linspace(0, std::numeric_limits<double>::infinity(), 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace stamp::sweep
