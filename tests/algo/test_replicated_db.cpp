#include "algo/replicated_db.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace stamp::algo {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

TEST(ReplicatedDb, ValidatesArguments) {
  DbWorkload w;
  w.servers = 0;
  EXPECT_THROW((void)run_replicated_db(kTopo, w, DbMode::SharedLog),
               std::invalid_argument);
  w = DbWorkload{};
  w.keys = 0;
  EXPECT_THROW((void)run_replicated_db(kTopo, w, DbMode::SharedLog),
               std::invalid_argument);
  w = DbWorkload{};
  w.hot_fraction = 2;
  EXPECT_THROW((void)run_replicated_db(kTopo, w, DbMode::Sharded),
               std::invalid_argument);
}

TEST(ReplicatedDb, ModeNames) {
  EXPECT_STREQ(to_string(DbMode::SharedLog), "shared-log");
  EXPECT_STREQ(to_string(DbMode::Sharded), "sharded");
}

TEST(ReplicatedDb, ReferenceIsDeterministic) {
  DbWorkload w;
  EXPECT_EQ(replicated_db_reference(w), replicated_db_reference(w));
}

TEST(ReplicatedDb, SharedLogAllReplicasConsistent) {
  DbWorkload w;
  w.servers = 8;
  w.ops_per_server = 500;
  const DbRunResult r = run_replicated_db(kTopo, w, DbMode::SharedLog);
  EXPECT_TRUE(r.consistent);
  EXPECT_EQ(r.state, replicated_db_reference(w));
  // The multi-writer log is the serialization point the paper's quadrant
  // names: contention must be observable.
  EXPECT_GE(r.worst_serialization, 1);
}

TEST(ReplicatedDb, ShardedMatchesReferenceWithoutSerialization) {
  DbWorkload w;
  w.servers = 8;
  w.ops_per_server = 500;
  const DbRunResult r = run_replicated_db(kTopo, w, DbMode::Sharded);
  EXPECT_TRUE(r.consistent);
  EXPECT_EQ(r.state, replicated_db_reference(w));
  EXPECT_DOUBLE_EQ(r.worst_serialization, 0);  // no shared log touched
  EXPECT_GT(r.messages_routed, 0);
}

TEST(ReplicatedDb, SingleServerDegenerate) {
  DbWorkload w;
  w.servers = 1;
  w.ops_per_server = 200;
  for (const DbMode mode : {DbMode::SharedLog, DbMode::Sharded}) {
    const DbRunResult r = run_replicated_db(kTopo, w, mode);
    EXPECT_TRUE(r.consistent) << to_string(mode);
    if (mode == DbMode::Sharded) {
      EXPECT_EQ(r.messages_routed, 0);
    }
  }
}

TEST(ReplicatedDb, HotSpotRoutesToOneOwner) {
  DbWorkload w;
  w.servers = 4;
  w.ops_per_server = 400;
  w.hot_fraction = 1.0;  // every op targets key 0 -> owner 0
  const DbRunResult r = run_replicated_db(kTopo, w, DbMode::Sharded);
  EXPECT_TRUE(r.consistent);
  // 3 of 4 servers forward everything.
  EXPECT_EQ(r.messages_routed, 3LL * 400);
}

TEST(ReplicatedDb, SharedLogCountsSerializedWrites) {
  DbWorkload w;
  w.servers = 4;
  w.ops_per_server = 250;
  const DbRunResult r = run_replicated_db(kTopo, w, DbMode::SharedLog);
  ASSERT_TRUE(r.consistent);
  const CostCounters t = r.run.total_counters();
  // One shared read+write per appended op plus one log read per replica.
  EXPECT_GE(t.shm_accesses(), 4.0 * 250 * 2);
  EXPECT_EQ(t.msg_ops(), 0);
}

TEST(ReplicatedDb, ShardedCountsMessagesNotSharedMemory) {
  DbWorkload w;
  w.servers = 4;
  w.ops_per_server = 250;
  const DbRunResult r = run_replicated_db(kTopo, w, DbMode::Sharded);
  ASSERT_TRUE(r.consistent);
  const CostCounters t = r.run.total_counters();
  EXPECT_EQ(t.shm_accesses(), 0);
  EXPECT_GT(t.msg_ops(), 0);
}

class DbSweep : public ::testing::TestWithParam<std::tuple<DbMode, int, double>> {};

TEST_P(DbSweep, ConsistentAcrossShapes) {
  const auto [mode, servers, hot] = GetParam();
  DbWorkload w;
  w.servers = servers;
  w.ops_per_server = 300;
  w.keys = 32;
  w.hot_fraction = hot;
  const DbRunResult r = run_replicated_db(kTopo, w, mode);
  EXPECT_TRUE(r.consistent)
      << to_string(mode) << " servers=" << servers << " hot=" << hot;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DbSweep,
    ::testing::Combine(::testing::Values(DbMode::SharedLog, DbMode::Sharded),
                       ::testing::Values(1, 2, 5, 8),
                       ::testing::Values(0.0, 0.5, 1.0)));

}  // namespace
}  // namespace stamp::algo
