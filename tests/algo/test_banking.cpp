#include "algo/banking.hpp"

#include <gtest/gtest.h>

// run_distributed is deprecated in favor of Evaluator::run; this file drives
// the layer under test through the executor directly on purpose (it sits
// below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace stamp::algo {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

TEST(Bank, ConstructionValidated) {
  EXPECT_THROW(Bank(1, 100), std::invalid_argument);
  const Bank bank(4, 100);
  EXPECT_EQ(bank.account_count(), 4);
  EXPECT_EQ(bank.total_balance(), 400);
}

TEST(Bank, TransferMovesMoney) {
  Bank bank(4, 100);
  stm::StmRuntime rt;
  (void)runtime::run_distributed(
      kTopo, 1, Distribution::IntraProc, [&](runtime::Context& ctx) {
        EXPECT_TRUE(bank.transfer(ctx, rt, 0, 1, 30));
      });
  EXPECT_EQ(bank.account(0).peek(), 70);
  EXPECT_EQ(bank.account(1).peek(), 130);
  EXPECT_EQ(bank.total_balance(), 400);
}

TEST(Bank, InsufficientFundsRollsBackBothSubtransactions) {
  Bank bank(4, 100);
  stm::StmRuntime rt;
  (void)runtime::run_distributed(
      kTopo, 1, Distribution::IntraProc, [&](runtime::Context& ctx) {
        // The withdraw sub-aborts; the deposit must not survive either.
        EXPECT_FALSE(bank.transfer(ctx, rt, 0, 1, 1000));
      });
  EXPECT_EQ(bank.account(0).peek(), 100);
  EXPECT_EQ(bank.account(1).peek(), 100);
}

TEST(Bank, SelfTransferRejected) {
  Bank bank(4, 100);
  stm::StmRuntime rt;
  (void)runtime::run_distributed(kTopo, 1, Distribution::IntraProc,
                                 [&](runtime::Context& ctx) {
                                   EXPECT_THROW(
                                       (void)bank.transfer(ctx, rt, 2, 2, 1),
                                       std::invalid_argument);
                                 });
}

TEST(Bank, ExactDrainSucceedsOverdraftFails) {
  Bank bank(2, 50);
  stm::StmRuntime rt;
  (void)runtime::run_distributed(
      kTopo, 1, Distribution::IntraProc, [&](runtime::Context& ctx) {
        EXPECT_TRUE(bank.transfer(ctx, rt, 0, 1, 50));   // to exactly zero
        EXPECT_FALSE(bank.transfer(ctx, rt, 0, 1, 1));   // now empty
      });
  EXPECT_EQ(bank.account(0).peek(), 0);
  EXPECT_EQ(bank.account(1).peek(), 100);
}

TEST(Bank, BalanceReadsAtomically) {
  Bank bank(2, 75);
  stm::StmRuntime rt;
  (void)runtime::run_distributed(kTopo, 1, Distribution::IntraProc,
                                 [&](runtime::Context& ctx) {
                                   EXPECT_EQ(bank.balance(ctx, rt, 0), 75);
                                 });
}

TEST(TransferWorkload, ConservesMoneyUnderContention) {
  TransferWorkload w;
  w.processes = 8;
  w.transfers_per_process = 400;
  w.accounts = 8;
  w.hot_fraction = 0.5;  // heavy contention on the hot pair
  const TransferRunResult r = run_transfer_workload(kTopo, w, "backoff");
  EXPECT_EQ(r.balance_before, r.balance_after);
  EXPECT_EQ(r.attempted,
            static_cast<long long>(w.processes) * w.transfers_per_process);
  EXPECT_EQ(r.attempted, r.committed + r.insufficient);
  EXPECT_GT(r.committed, 0);
}

TEST(TransferWorkload, HotSpotRaisesAborts) {
  TransferWorkload uniform;
  uniform.processes = 8;
  uniform.transfers_per_process = 500;
  uniform.accounts = 256;
  uniform.hot_fraction = 0.0;
  uniform.preemption_points = true;
  const TransferRunResult cold = run_transfer_workload(kTopo, uniform, "passive");

  TransferWorkload hot = uniform;
  hot.hot_fraction = 1.0;  // everything on one pair
  const TransferRunResult contended = run_transfer_workload(kTopo, hot, "passive");

  EXPECT_GT(contended.stm_aborts, cold.stm_aborts);
}

TEST(TransferWorkload, KappaReflectsRetries) {
  TransferWorkload w;
  w.processes = 8;
  w.transfers_per_process = 300;
  w.hot_fraction = 1.0;
  w.preemption_points = true;
  const TransferRunResult r = run_transfer_workload(kTopo, w, "passive");
  double max_kappa = 0;
  for (const auto& rec : r.run.recorders)
    max_kappa = std::max(max_kappa, rec.totals().kappa);
  EXPECT_LE(max_kappa, static_cast<double>(r.stm_max_retries));
  if (r.stm_aborts > 0) {
    EXPECT_GT(max_kappa, 0);
  }
}

TEST(TransferWorkload, ValidatesArguments) {
  TransferWorkload w;
  w.processes = 0;
  EXPECT_THROW((void)run_transfer_workload(kTopo, w), std::invalid_argument);
  w = TransferWorkload{};
  w.hot_fraction = 1.5;
  EXPECT_THROW((void)run_transfer_workload(kTopo, w), std::invalid_argument);
  w = TransferWorkload{};
  EXPECT_THROW((void)run_transfer_workload(kTopo, w, "no-such-manager"),
               std::invalid_argument);
}

// Conservation must hold under every contention manager and distribution.
class TransferSweep
    : public ::testing::TestWithParam<std::tuple<const char*, Distribution>> {};

TEST_P(TransferSweep, MoneyConserved) {
  const auto [manager, dist] = GetParam();
  TransferWorkload w;
  w.processes = 6;
  w.transfers_per_process = 250;
  w.accounts = 16;
  w.hot_fraction = 0.3;
  w.distribution = dist;
  const TransferRunResult r = run_transfer_workload(kTopo, w, manager);
  EXPECT_EQ(r.balance_before, r.balance_after);
  EXPECT_EQ(r.attempted, r.committed + r.insufficient);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransferSweep,
    ::testing::Combine(::testing::Values("passive", "polite", "backoff", "karma"),
                       ::testing::Values(Distribution::IntraProc,
                                         Distribution::InterProc)));

}  // namespace
}  // namespace stamp::algo
