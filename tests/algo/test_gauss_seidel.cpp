#include "algo/gauss_seidel.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stamp::algo {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

TEST(GaussSeidel, SequentialConverges) {
  const LinearSystem sys = make_diagonally_dominant_system(12, 101);
  const JacobiResult r = gauss_seidel_sequential(sys, 1e-12, 1000);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(jacobi_residual(sys, r.x), 1e-9);
}

TEST(GaussSeidel, ConvergesFasterThanJacobi) {
  // The point of the two-phase splitting: fewer iterations than Jacobi on
  // the same system at the same tolerance.
  const LinearSystem sys = make_diagonally_dominant_system(16, 103);
  const JacobiResult jacobi = jacobi_sequential(sys, 1e-11, 2000);
  const JacobiResult gs = gauss_seidel_sequential(sys, 1e-11, 2000);
  ASSERT_TRUE(jacobi.converged);
  ASSERT_TRUE(gs.converged);
  EXPECT_LT(gs.iterations, jacobi.iterations);
}

TEST(GaussSeidel, DistributedValidatesArguments) {
  const LinearSystem sys = make_diagonally_dominant_system(4, 1);
  GaussSeidelOptions opt;
  opt.processes = 5;
  EXPECT_THROW((void)gauss_seidel_distributed(sys, kTopo, opt),
               std::invalid_argument);
}

TEST(GaussSeidel, DistributedMatchesSequentialExactly) {
  // Barriered phases reproduce the sequential update order bit-for-bit at
  // every process count.
  const LinearSystem sys = make_diagonally_dominant_system(13, 107);
  const JacobiResult seq = gauss_seidel_sequential(sys, 1e-12, 1000);
  for (int p : {1, 2, 4, 7, 13}) {
    GaussSeidelOptions opt;
    opt.processes = p;
    opt.tolerance = 1e-12;
    const GaussSeidelResult dist = gauss_seidel_distributed(sys, kTopo, opt);
    ASSERT_TRUE(dist.converged) << "p=" << p;
    EXPECT_EQ(dist.iterations, seq.iterations) << "p=" << p;
    for (std::size_t i = 0; i < seq.x.size(); ++i)
      EXPECT_DOUBLE_EQ(dist.x[i], seq.x[i]) << "p=" << p << " i=" << i;
  }
}

TEST(GaussSeidel, TwoRoundsPerIterationRecorded) {
  const LinearSystem sys = make_diagonally_dominant_system(8, 109);
  GaussSeidelOptions opt;
  opt.processes = 4;
  const GaussSeidelResult r = gauss_seidel_distributed(sys, kTopo, opt);
  ASSERT_TRUE(r.converged);
  for (const auto& rec : r.run.recorders) {
    ASSERT_EQ(rec.unit_count(), static_cast<std::size_t>(r.iterations));
    for (const auto& unit : rec.units())
      EXPECT_EQ(unit.rounds.size(), 2u);  // red phase + black phase
  }
}

TEST(GaussSeidel, SharedAccessCountsPerIteration) {
  const int n = 8;
  const LinearSystem sys = make_diagonally_dominant_system(n, 113);
  GaussSeidelOptions opt;
  opt.processes = 4;
  const GaussSeidelResult r = gauss_seidel_distributed(sys, kTopo, opt);
  ASSERT_TRUE(r.converged);
  const CostCounters t = r.run.recorders[0].totals();
  // Per iteration: two full-matrix reads (p*width*... = n per snapshot row
  // layout -> n reads per snapshot over p rows of width 2) and two block
  // publishes of 2 writes each.
  EXPECT_DOUBLE_EQ(t.d_r_a + t.d_r_e,
                   static_cast<double>(r.iterations) * 2 * n);
  EXPECT_DOUBLE_EQ(t.d_w_a + t.d_w_e,
                   static_cast<double>(r.iterations) * 2 * 2);
}

}  // namespace
}  // namespace stamp::algo
