#include "algo/matmul.hpp"

#include <gtest/gtest.h>

namespace stamp::algo {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

TEST(Matmul, ValidatesArguments) {
  EXPECT_THROW(make_random_matrix(0, 4, 1), std::invalid_argument);
  MatmulWorkload w;
  w.processes = 0;
  EXPECT_THROW((void)run_matmul(kTopo, w), std::invalid_argument);
  w = MatmulWorkload{};
  w.processes = 65;
  w.n = 64;
  EXPECT_THROW((void)run_matmul(kTopo, w), std::invalid_argument);
}

TEST(Matmul, ReferenceShapeMismatchRejected) {
  const Matrix a = make_random_matrix(3, 4, 1);
  const Matrix b = make_random_matrix(3, 4, 2);
  EXPECT_THROW((void)matmul_reference(a, b), std::invalid_argument);
}

TEST(Matmul, ReferenceHandComputed) {
  Matrix a{2, 2, {1, 2, 3, 4}};
  Matrix b{2, 2, {5, 6, 7, 8}};
  const Matrix c = matmul_reference(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(Matmul, DistributedMatchesReference) {
  MatmulWorkload w;
  w.processes = 8;
  w.n = 48;
  const MatmulRunResult r = run_matmul(kTopo, w);
  EXPECT_LT(r.max_abs_error, 1e-12);
}

TEST(Matmul, SingleProcessDegenerate) {
  MatmulWorkload w;
  w.processes = 1;
  w.n = 16;
  const MatmulRunResult r = run_matmul(kTopo, w);
  EXPECT_LT(r.max_abs_error, 1e-12);
}

TEST(Matmul, FlopsAreCounted) {
  MatmulWorkload w;
  w.processes = 4;
  w.n = 32;
  const MatmulRunResult r = run_matmul(kTopo, w);
  // 2 n^3 flops total across all processes and panels.
  EXPECT_DOUBLE_EQ(r.run.total_counters().c_fp,
                   2.0 * w.n * w.n * w.n);
}

TEST(Matmul, PanelBroadcastsAreCounted) {
  MatmulWorkload w;
  w.processes = 8;
  w.n = 32;
  const MatmulRunResult r = run_matmul(kTopo, w);
  ASSERT_LT(r.max_abs_error, 1e-12);
  // p panel broadcasts, each p-1 messages: p (p-1) sends total.
  const CostCounters t = r.run.total_counters();
  EXPECT_DOUBLE_EQ(t.m_s_a + t.m_s_e,
                   static_cast<double>(w.processes) * (w.processes - 1));
}

class MatmulSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MatmulSweep, CorrectAcrossShapes) {
  const auto [processes, n] = GetParam();
  if (processes > n) GTEST_SKIP();
  MatmulWorkload w;
  w.processes = processes;
  w.n = n;
  const MatmulRunResult r = run_matmul(kTopo, w);
  EXPECT_LT(r.max_abs_error, 1e-11) << "p=" << processes << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatmulSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 7, 8),
                                            ::testing::Values(8, 17, 40)));

}  // namespace
}  // namespace stamp::algo
