#include "algo/reduce.hpp"

#include <gtest/gtest.h>

namespace stamp::algo {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

TEST(Reduce, ValidatesArguments) {
  ReduceWorkload w;
  w.processes = 0;
  EXPECT_THROW((void)run_reduce(kTopo, w, ReduceVariant::Tree),
               std::invalid_argument);
  w = ReduceWorkload{};
  w.processes = 6;  // not a power of two
  EXPECT_THROW((void)run_reduce(kTopo, w, ReduceVariant::Doubling),
               std::invalid_argument);
  w = ReduceWorkload{};
  w.elements = -1;
  EXPECT_THROW((void)run_reduce(kTopo, w, ReduceVariant::Tree),
               std::invalid_argument);
}

TEST(Reduce, VariantNames) {
  EXPECT_STREQ(to_string(ReduceVariant::Tree), "tree");
  EXPECT_STREQ(to_string(ReduceVariant::Doubling), "doubling");
  EXPECT_STREQ(to_string(ReduceVariant::Queued), "queued");
  EXPECT_STREQ(to_string(ReduceVariant::Stm), "stm");
}

TEST(Reduce, SingleProcessDegenerate) {
  ReduceWorkload w;
  w.processes = 1;
  w.elements = 1000;
  for (const ReduceVariant v : {ReduceVariant::Tree, ReduceVariant::Doubling,
                                ReduceVariant::Queued, ReduceVariant::Stm}) {
    const ReduceRunResult r = run_reduce(kTopo, w, v);
    EXPECT_TRUE(r.correct()) << to_string(v);
  }
}

TEST(Reduce, EmptyArrayGivesZero) {
  ReduceWorkload w;
  w.processes = 4;
  w.elements = 0;
  const ReduceRunResult r = run_reduce(kTopo, w, ReduceVariant::Tree);
  EXPECT_EQ(r.result, 0);
  EXPECT_TRUE(r.correct());
}

TEST(Reduce, QueuedVariantObservesSerialization) {
  ReduceWorkload w;
  w.processes = 8;
  w.elements = 1 << 12;
  const ReduceRunResult r = run_reduce(kTopo, w, ReduceVariant::Queued);
  EXPECT_TRUE(r.correct());
  EXPECT_GE(r.worst_serialization, 1);
}

TEST(Reduce, TreeVariantUsesLogDepthMessages) {
  ReduceWorkload w;
  w.processes = 8;
  w.elements = 1 << 12;
  const ReduceRunResult r = run_reduce(kTopo, w, ReduceVariant::Tree);
  EXPECT_TRUE(r.correct());
  // Total messages of a binomial reduce: p - 1.
  const CostCounters totals = r.run.total_counters();
  EXPECT_DOUBLE_EQ(totals.m_s_a + totals.m_s_e, w.processes - 1.0);
}

TEST(Reduce, LocalWorkIsCounted) {
  ReduceWorkload w;
  w.processes = 4;
  w.elements = 4096;
  const ReduceRunResult r = run_reduce(kTopo, w, ReduceVariant::Tree);
  // One int op per element was charged across the processes.
  EXPECT_GE(r.run.total_counters().c_int, static_cast<double>(w.elements));
}

// Every variant must agree with the sequential sum over a parameter sweep.
class ReduceSweep
    : public ::testing::TestWithParam<std::tuple<ReduceVariant, int, long long>> {
};

TEST_P(ReduceSweep, MatchesSequentialSum) {
  const auto [variant, processes, elements] = GetParam();
  if (variant == ReduceVariant::Doubling && (processes & (processes - 1)) != 0)
    GTEST_SKIP() << "doubling needs 2^k";
  ReduceWorkload w;
  w.processes = processes;
  w.elements = elements;
  const ReduceRunResult r = run_reduce(kTopo, w, variant);
  EXPECT_TRUE(r.correct())
      << to_string(variant) << " p=" << processes << " n=" << elements;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReduceSweep,
    ::testing::Combine(::testing::Values(ReduceVariant::Tree,
                                         ReduceVariant::Doubling,
                                         ReduceVariant::Queued,
                                         ReduceVariant::Stm),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1LL, 100LL, 10'000LL)));

}  // namespace
}  // namespace stamp::algo
