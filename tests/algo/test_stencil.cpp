#include "algo/stencil.hpp"

#include <gtest/gtest.h>

namespace stamp::algo {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

TEST(Stencil, ValidatesArguments) {
  StencilProblem bad;
  bad.cells = 0;
  EXPECT_THROW((void)stencil_sequential(bad, 1), std::invalid_argument);
  bad = StencilProblem{};
  bad.alpha = 0.7;  // unstable
  EXPECT_THROW((void)stencil_sequential(bad, 1), std::invalid_argument);
  StencilOptions opt;
  opt.processes = 100;
  EXPECT_THROW((void)stencil_distributed(StencilProblem{}, kTopo, opt),
               std::invalid_argument);
}

TEST(Stencil, SequentialApproachesSteadyState) {
  // With fixed boundaries 100 / 0, the steady state is linear in x.
  StencilProblem prob;
  prob.cells = 16;
  const std::vector<double> u = stencil_sequential(prob, 20'000);
  for (int i = 0; i < prob.cells; ++i) {
    const double x = static_cast<double>(i + 1) / (prob.cells + 1);
    const double expected = prob.left + x * (prob.right - prob.left);
    EXPECT_NEAR(u[static_cast<std::size_t>(i)], expected, 0.5) << "cell " << i;
  }
}

TEST(Stencil, HeatFlowsMonotonicallyFromHotBoundary) {
  StencilProblem prob;
  prob.cells = 24;
  const std::vector<double> u = stencil_sequential(prob, 500);
  for (int i = 1; i < prob.cells; ++i)
    EXPECT_GE(u[static_cast<std::size_t>(i - 1)] + 1e-12,
              u[static_cast<std::size_t>(i)]);
}

TEST(Stencil, DistributedMatchesSequentialExactly) {
  StencilProblem prob;
  prob.cells = 23;
  for (int p : {1, 2, 4, 8}) {
    StencilOptions opt;
    opt.processes = p;
    opt.steps = 300;
    const StencilResult r = stencil_distributed(prob, kTopo, opt);
    const std::vector<double> expected = stencil_sequential(prob, opt.steps);
    ASSERT_EQ(r.temperature.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_DOUBLE_EQ(r.temperature[i], expected[i]) << "p=" << p << " i=" << i;
  }
}

TEST(Stencil, HaloCommunicationIsConstantPerRound) {
  StencilProblem prob;
  prob.cells = 32;
  StencilOptions opt;
  opt.processes = 8;
  opt.steps = 50;
  const StencilResult r = stencil_distributed(prob, kTopo, opt);
  for (int i = 0; i < opt.processes; ++i) {
    const CostCounters t = r.run.recorders[static_cast<std::size_t>(i)].totals();
    const double neighbours = (i > 0 ? 1.0 : 0.0) + (i + 1 < opt.processes ? 1.0 : 0.0);
    EXPECT_DOUBLE_EQ(t.m_s_a + t.m_s_e, opt.steps * neighbours) << "rank " << i;
    EXPECT_DOUBLE_EQ(t.m_r_a + t.m_r_e, opt.steps * neighbours) << "rank " << i;
  }
}

TEST(Stencil, SparseBeatsAllToAllInTheModel) {
  // Same process count: the stencil's per-round messages are O(1) per
  // process; Jacobi's all-to-all is O(p). The model must price the stencil's
  // communication share lower.
  const int p = 8;
  StencilProblem prob;
  prob.cells = 64;
  StencilOptions opt;
  opt.processes = p;
  opt.steps = 100;
  const StencilResult r = stencil_distributed(prob, kTopo, opt);
  const CostCounters t = r.run.recorders[1].totals();  // interior rank
  // 2 sends per round vs Jacobi's p-1 = 7.
  EXPECT_DOUBLE_EQ(t.m_s_a + t.m_s_e, 2.0 * opt.steps);
}

}  // namespace
}  // namespace stamp::algo
