#include "algo/apsp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stamp::algo {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

TEST(Graph, GeneratorValidates) {
  EXPECT_THROW(make_random_graph(0, 1), std::invalid_argument);
  EXPECT_THROW(make_random_graph(4, 1, -0.5), std::invalid_argument);
  EXPECT_THROW(make_random_graph(4, 1, 0.5, 0.5), std::invalid_argument);
}

TEST(Graph, GeneratorDeterministicWithDiagonalZero) {
  const Graph a = make_random_graph(10, 5, 0.4);
  const Graph b = make_random_graph(10, 5, 0.4);
  EXPECT_EQ(a.weight, b.weight);
  for (int i = 0; i < a.n; ++i) EXPECT_DOUBLE_EQ(a.w(i, i), 0);
}

TEST(FloydWarshall, TinyGraphByHand) {
  // 0 -> 1 (5), 1 -> 2 (3), 0 -> 2 (20): best 0->2 is 8.
  Graph g;
  g.n = 3;
  g.weight = {0, 5, 20, Graph::kInfinity, 0, 3, Graph::kInfinity,
              Graph::kInfinity, 0};
  const std::vector<double> d = floyd_warshall(g);
  EXPECT_DOUBLE_EQ(d[0 * 3 + 2], 8);
  EXPECT_DOUBLE_EQ(d[0 * 3 + 1], 5);
  EXPECT_TRUE(std::isinf(d[1 * 3 + 0]));
}

TEST(FloydWarshall, TriangleInequalityHolds) {
  const Graph g = make_random_graph(12, 17, 0.5);
  const std::vector<double> d = floyd_warshall(g);
  const int n = g.n;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k)
        EXPECT_LE(d[static_cast<std::size_t>(i) * n + j],
                  d[static_cast<std::size_t>(i) * n + k] +
                      d[static_cast<std::size_t>(k) * n + j] + 1e-9);
}

TEST(ApspDistributed, SynchronousMatchesFloydWarshall) {
  const Graph g = make_random_graph(10, 23, 0.35);
  ApspOptions opt;
  opt.comm = CommMode::Synchronous;
  const ApspResult r = apsp_distributed(g, kTopo, opt);
  const std::vector<double> exact = floyd_warshall(g);
  ASSERT_EQ(r.distances.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i)
    EXPECT_DOUBLE_EQ(r.distances[i], exact[i]) << "index " << i;
}

TEST(ApspDistributed, AsynchronousMatchesFloydWarshall) {
  const Graph g = make_random_graph(10, 29, 0.35);
  ApspOptions opt;
  opt.comm = CommMode::Asynchronous;
  opt.max_rounds = 200;
  const ApspResult r = apsp_distributed(g, kTopo, opt);
  const std::vector<double> exact = floyd_warshall(g);
  for (std::size_t i = 0; i < exact.size(); ++i)
    EXPECT_DOUBLE_EQ(r.distances[i], exact[i]) << "index " << i;
}

TEST(ApspDistributed, DisconnectedGraphKeepsInfinity) {
  Graph g;
  g.n = 4;
  g.weight.assign(16, Graph::kInfinity);
  for (int i = 0; i < 4; ++i) g.weight[static_cast<std::size_t>(i) * 4 + i] = 0;
  g.weight[0 * 4 + 1] = 2;  // only edge
  ApspOptions opt;
  opt.comm = CommMode::Synchronous;
  const ApspResult r = apsp_distributed(g, kTopo, opt);
  EXPECT_DOUBLE_EQ(r.distances[0 * 4 + 1], 2);
  EXPECT_TRUE(std::isinf(r.distances[1 * 4 + 0]));
  EXPECT_TRUE(std::isinf(r.distances[2 * 4 + 3]));
}

TEST(ApspDistributed, SharedAccessesAreCounted) {
  const int n = 6;
  const Graph g = make_random_graph(n, 31, 0.5);
  ApspOptions opt;
  opt.comm = CommMode::Synchronous;
  const ApspResult r = apsp_distributed(g, kTopo, opt);
  for (int p = 0; p < n; ++p) {
    const CostCounters t =
        r.run.recorders[static_cast<std::size_t>(p)].totals();
    const double rounds = r.rounds[static_cast<std::size_t>(p)];
    ASSERT_GT(rounds, 0);
    // Each round reads the whole matrix.
    EXPECT_DOUBLE_EQ(t.d_r_a + t.d_r_e, rounds * n * n);
    // Writes only when the row improved: bounded by rounds * n.
    EXPECT_LE(t.d_w_a + t.d_w_e, rounds * n);
  }
}

TEST(ApspDistributed, InterProcPlacementChargesMostReadsInter) {
  const int n = 6;
  const Graph g = make_random_graph(n, 37, 0.5);
  ApspOptions opt;
  opt.comm = CommMode::Synchronous;
  opt.distribution = Distribution::InterProc;
  const ApspResult r = apsp_distributed(g, kTopo, opt);
  const CostCounters t = r.run.recorders[0].totals();
  EXPECT_GT(t.d_r_e, t.d_r_a);  // only the own row is intra
}

TEST(ApspDistributed, SyncTerminatesWithinDiameterPlusOneRounds) {
  const Graph g = make_random_graph(12, 41, 0.6);  // dense: small diameter
  ApspOptions opt;
  opt.comm = CommMode::Synchronous;
  const ApspResult r = apsp_distributed(g, kTopo, opt);
  for (int rounds : r.rounds) {
    EXPECT_GT(rounds, 0);
    EXPECT_LE(rounds, g.n + 1);
  }
}

// Sweep density and size; both variants must agree with Floyd-Warshall.
class ApspSweep
    : public ::testing::TestWithParam<std::tuple<int, double, CommMode>> {};

TEST_P(ApspSweep, CorrectAcrossShapes) {
  const auto [n, density, comm] = GetParam();
  const Graph g = make_random_graph(n, 100 + n, density);
  ApspOptions opt;
  opt.comm = comm;
  opt.max_rounds = 40 * n;
  const ApspResult r = apsp_distributed(g, kTopo, opt);
  const std::vector<double> exact = floyd_warshall(g);
  for (std::size_t i = 0; i < exact.size(); ++i)
    EXPECT_DOUBLE_EQ(r.distances[i], exact[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApspSweep,
    ::testing::Combine(::testing::Values(2, 5, 9, 14),
                       ::testing::Values(0.1, 0.4, 0.9),
                       ::testing::Values(CommMode::Synchronous,
                                         CommMode::Asynchronous)));

}  // namespace
}  // namespace stamp::algo
