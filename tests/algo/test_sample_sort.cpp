#include "algo/sample_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace stamp::algo {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

TEST(SampleSort, ValidatesArguments) {
  SortWorkload w;
  w.processes = 0;
  EXPECT_THROW((void)run_sample_sort(kTopo, w), std::invalid_argument);
  w = SortWorkload{};
  w.elements = -1;
  EXPECT_THROW((void)run_sample_sort(kTopo, w), std::invalid_argument);
}

TEST(SampleSort, InputDeterministic) {
  SortWorkload w;
  EXPECT_EQ(sort_input(w), sort_input(w));
  SortWorkload other = w;
  other.seed += 1;
  EXPECT_NE(sort_input(w), sort_input(other));
}

TEST(SampleSort, SingleProcessIsJustLocalSort) {
  SortWorkload w;
  w.processes = 1;
  w.elements = 2048;
  const SortRunResult r = run_sample_sort(kTopo, w);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.bucket_sizes[0], w.elements);
}

TEST(SampleSort, SortsUniformKeys) {
  SortWorkload w;
  w.processes = 8;
  w.elements = 1 << 13;
  const SortRunResult r = run_sample_sort(kTopo, w);
  EXPECT_TRUE(r.correct);
  // All elements accounted for.
  EXPECT_EQ(std::accumulate(r.bucket_sizes.begin(), r.bucket_sizes.end(), 0LL),
            w.elements);
}

TEST(SampleSort, SplittersBalanceUniformLoad) {
  SortWorkload w;
  w.processes = 8;
  w.elements = 1 << 14;
  const SortRunResult r = run_sample_sort(kTopo, w);
  ASSERT_TRUE(r.correct);
  const long long ideal = w.elements / w.processes;
  for (long long size : r.bucket_sizes) {
    EXPECT_GT(size, ideal / 3) << "severe imbalance";
    EXPECT_LT(size, ideal * 3) << "severe imbalance";
  }
}

TEST(SampleSort, SkewedKeysStillSortCorrectly) {
  SortWorkload w;
  w.processes = 8;
  w.elements = 1 << 13;
  w.skew = 3.0;
  const SortRunResult r = run_sample_sort(kTopo, w);
  EXPECT_TRUE(r.correct);
}

TEST(SampleSort, CommunicationIsCounted) {
  SortWorkload w;
  w.processes = 4;
  w.elements = 4096;
  const SortRunResult r = run_sample_sort(kTopo, w);
  ASSERT_TRUE(r.correct);
  const CostCounters totals = r.run.total_counters();
  // The bucket exchange alone sends p(p-1) vectors.
  EXPECT_GE(totals.m_s_a + totals.m_s_e,
            static_cast<double>(w.processes) * (w.processes - 1));
  EXPECT_GT(totals.c_int, 0);
}

TEST(SampleSort, TinyInputsAndEdgeCases) {
  for (long long elements : {0LL, 1LL, 7LL, 63LL}) {
    SortWorkload w;
    w.processes = 4;
    w.elements = elements;
    const SortRunResult r = run_sample_sort(kTopo, w);
    EXPECT_TRUE(r.correct) << "n=" << elements;
  }
}

class SampleSortSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SampleSortSweep, CorrectAcrossShapes) {
  const auto [processes, skew] = GetParam();
  SortWorkload w;
  w.processes = processes;
  w.elements = 5000;
  w.skew = skew;
  const SortRunResult r = run_sample_sort(kTopo, w);
  EXPECT_TRUE(r.correct) << "p=" << processes << " skew=" << skew;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SampleSortSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 8, 16),
                       ::testing::Values(0.0, 1.0, 4.0)));

}  // namespace
}  // namespace stamp::algo
