#include "algo/pagerank.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace stamp::algo {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

TEST(PageRank, ValidatesArguments) {
  const Graph g = make_random_graph(8, 1, 0.5);
  PageRankOptions opt;
  opt.processes = 9;
  EXPECT_THROW((void)pagerank_distributed(g, kTopo, opt), std::invalid_argument);
  opt = PageRankOptions{};
  opt.damping = 1.5;
  EXPECT_THROW((void)pagerank_distributed(g, kTopo, opt), std::invalid_argument);
  opt = PageRankOptions{};
  opt.damping = 0;
  EXPECT_THROW((void)pagerank_distributed(g, kTopo, opt), std::invalid_argument);
}

TEST(PageRank, ReferenceSumsToOne) {
  const Graph g = make_random_graph(12, 61, 0.3);
  const std::vector<double> r = pagerank_reference(g, 0.85, 1e-12, 500);
  const double total = std::accumulate(r.begin(), r.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  for (double v : r) EXPECT_GT(v, 0);
}

TEST(PageRank, SynchronousMatchesReferenceClosely) {
  const Graph g = make_random_graph(10, 63, 0.35);
  PageRankOptions opt;
  opt.processes = 5;
  opt.comm = CommMode::Synchronous;
  opt.tolerance = 1e-12;
  opt.max_rounds = 500;
  const PageRankResult r = pagerank_distributed(g, kTopo, opt);
  const std::vector<double> expected =
      pagerank_reference(g, opt.damping, opt.tolerance, opt.max_rounds);
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR(r.ranks[i], expected[i], 1e-9) << "vertex " << i;
}

TEST(PageRank, AsynchronousConvergesToSameFixedPoint) {
  const Graph g = make_random_graph(10, 67, 0.35);
  PageRankOptions opt;
  opt.processes = 5;
  opt.comm = CommMode::Asynchronous;
  opt.tolerance = 1e-12;
  opt.max_rounds = 500;
  const PageRankResult r = pagerank_distributed(g, kTopo, opt);
  const std::vector<double> expected =
      pagerank_reference(g, opt.damping, 1e-13, 1000);
  // Chaotic iteration: same contraction fixed point, looser tolerance.
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR(r.ranks[i], expected[i], 1e-6) << "vertex " << i;
}

TEST(PageRank, MassConservedDistributed) {
  const Graph g = make_random_graph(12, 71, 0.3);
  PageRankOptions opt;
  opt.processes = 6;
  const PageRankResult r = pagerank_distributed(g, kTopo, opt);
  EXPECT_NEAR(std::accumulate(r.ranks.begin(), r.ranks.end(), 0.0), 1.0, 1e-6);
}

TEST(PageRank, DanglingVerticesHandled) {
  // A sink vertex (no out-edges) must not leak rank mass.
  Graph g;
  g.n = 4;
  g.weight.assign(16, Graph::kInfinity);
  for (int i = 0; i < 4; ++i) g.weight[static_cast<std::size_t>(i) * 4 + i] = 0;
  g.weight[0 * 4 + 1] = 1;
  g.weight[1 * 4 + 2] = 1;
  g.weight[2 * 4 + 3] = 1;  // 3 is dangling
  PageRankOptions opt;
  opt.processes = 4;
  opt.max_rounds = 300;
  const PageRankResult r = pagerank_distributed(g, kTopo, opt);
  EXPECT_NEAR(std::accumulate(r.ranks.begin(), r.ranks.end(), 0.0), 1.0, 1e-6);
  // Downstream of the chain accumulates more rank than the head.
  EXPECT_GT(r.ranks[3], r.ranks[0]);
}

TEST(PageRank, CountersShowFpHeavyRounds) {
  const Graph g = make_random_graph(8, 73, 0.4);
  PageRankOptions opt;
  opt.processes = 4;
  const PageRankResult r = pagerank_distributed(g, kTopo, opt);
  const CostCounters t = r.run.total_counters();
  EXPECT_GT(t.c_fp, 0);
  EXPECT_GT(t.shm_accesses(), 0);
}

class PageRankSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(PageRankSweep, SynchronousCorrectAcrossShapes) {
  const auto [processes, damping] = GetParam();
  const Graph g = make_random_graph(11, 300 + processes, 0.3);
  PageRankOptions opt;
  opt.processes = processes;
  opt.damping = damping;
  opt.tolerance = 1e-12;
  opt.max_rounds = 600;
  const PageRankResult r = pagerank_distributed(g, kTopo, opt);
  const std::vector<double> expected =
      pagerank_reference(g, damping, opt.tolerance, opt.max_rounds);
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR(r.ranks[i], expected[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PageRankSweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 11),
                       ::testing::Values(0.5, 0.85, 0.95)));

}  // namespace
}  // namespace stamp::algo
