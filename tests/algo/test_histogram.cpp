#include "algo/histogram.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace stamp::algo {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

HistogramWorkload small_workload() {
  HistogramWorkload w;
  w.processes = 6;
  w.bins = 8;
  w.items_per_process = 500;
  w.rounds = 5;
  return w;
}

TEST(Histogram, ReferenceCountsAllItems) {
  const HistogramWorkload w = small_workload();
  const std::vector<long long> ref = histogram_reference(w);
  const long long total = std::accumulate(ref.begin(), ref.end(), 0LL);
  EXPECT_EQ(total, static_cast<long long>(w.processes) * w.items_per_process);
}

TEST(Histogram, SkewConcentratesLowBins) {
  HistogramWorkload w = small_workload();
  w.items_per_process = 5000;
  w.skew = 0;
  const std::vector<long long> uniform = histogram_reference(w);
  w.skew = 3.0;
  const std::vector<long long> skewed = histogram_reference(w);
  EXPECT_GT(skewed[0], uniform[0] * 2);
}

TEST(Histogram, WorkloadValidated) {
  HistogramWorkload w = small_workload();
  w.bins = 0;
  EXPECT_THROW(
      (void)run_histogram(kTopo, w, ExecMode::Transactional, CommMode::Synchronous),
      std::invalid_argument);
}

// All four Table-1 quadrants must produce the exact reference histogram.
struct QuadrantParam {
  ExecMode exec;
  CommMode comm;
};

class QuadrantTest : public ::testing::TestWithParam<QuadrantParam> {};

TEST_P(QuadrantTest, MatchesReference) {
  const HistogramWorkload w = small_workload();
  const std::vector<long long> ref = histogram_reference(w);
  const HistogramRunResult r =
      run_histogram(kTopo, w, GetParam().exec, GetParam().comm);
  EXPECT_EQ(r.bins, ref);
}

TEST_P(QuadrantTest, CountersReflectSubstrate) {
  const HistogramWorkload w = small_workload();
  const HistogramRunResult r =
      run_histogram(kTopo, w, GetParam().exec, GetParam().comm);
  const CostCounters totals = r.run.total_counters();
  if (GetParam().exec == ExecMode::Transactional) {
    // STM charges transactional reads/writes as shared-memory accesses.
    EXPECT_GT(totals.shm_accesses(), 0);
    EXPECT_GT(r.stm_commits, 0u);
  } else if (GetParam().comm == CommMode::Synchronous) {
    EXPECT_GT(totals.shm_accesses(), 0);
    EXPECT_EQ(r.stm_commits, 0u);
    EXPECT_GE(r.worst_serialization, 1);
  } else {
    // Privatized variant: no shared accesses during the parallel phase.
    EXPECT_EQ(totals.shm_accesses(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllQuadrants, QuadrantTest,
    ::testing::Values(QuadrantParam{ExecMode::Transactional, CommMode::Synchronous},
                      QuadrantParam{ExecMode::Asynchronous, CommMode::Synchronous},
                      QuadrantParam{ExecMode::Transactional, CommMode::Asynchronous},
                      QuadrantParam{ExecMode::Asynchronous, CommMode::Asynchronous}),
    [](const ::testing::TestParamInfo<QuadrantParam>& param_info) {
      return std::string(param_info.param.exec == ExecMode::Transactional ? "trans"
                                                                    : "async") +
             "_" +
             (param_info.param.comm == CommMode::Synchronous ? "synch" : "async");
    });

TEST(Histogram, TransactionalContentionShowsAborts) {
  HistogramWorkload w = small_workload();
  w.processes = 8;
  w.bins = 2;  // tiny bin count: heavy conflicts
  w.items_per_process = 2000;
  w.preemption_points = true;
  const HistogramRunResult r =
      run_histogram(kTopo, w, ExecMode::Transactional, CommMode::Asynchronous);
  EXPECT_GT(r.stm_aborts, 0u);
  const std::vector<long long> ref = histogram_reference(w);
  EXPECT_EQ(r.bins, ref);  // correctness despite aborts
}

TEST(Histogram, SerializedVariantObservesQueueing) {
  HistogramWorkload w = small_workload();
  w.processes = 8;
  w.bins = 1;  // one hot cell
  w.items_per_process = 3000;
  w.preemption_points = true;
  const HistogramRunResult r =
      run_histogram(kTopo, w, ExecMode::Asynchronous, CommMode::Synchronous);
  EXPECT_GT(r.worst_serialization, 1);  // kappa visible at the hot spot
}

TEST(Histogram, ZeroItemsIsFine) {
  HistogramWorkload w = small_workload();
  w.items_per_process = 0;
  const HistogramRunResult r =
      run_histogram(kTopo, w, ExecMode::Asynchronous, CommMode::Asynchronous);
  for (long long b : r.bins) EXPECT_EQ(b, 0);
}

}  // namespace
}  // namespace stamp::algo
