#include "algo/jacobi.hpp"

#include "core/analysis.hpp"

#include <gtest/gtest.h>

namespace stamp::algo {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

TEST(JacobiSystem, GeneratorValidatesArguments) {
  EXPECT_THROW(make_diagonally_dominant_system(0, 1), std::invalid_argument);
  EXPECT_THROW(make_diagonally_dominant_system(4, 1, 1.0), std::invalid_argument);
}

TEST(JacobiSystem, GeneratorIsDeterministic) {
  const LinearSystem a = make_diagonally_dominant_system(8, 42);
  const LinearSystem b = make_diagonally_dominant_system(8, 42);
  EXPECT_EQ(a.A, b.A);
  EXPECT_EQ(a.b, b.b);
  const LinearSystem c = make_diagonally_dominant_system(8, 43);
  EXPECT_NE(a.A, c.A);
}

TEST(JacobiSystem, DiagonallyDominant) {
  const LinearSystem sys = make_diagonally_dominant_system(16, 7, 2.0);
  for (int i = 0; i < sys.n; ++i) {
    double off = 0;
    for (int j = 0; j < sys.n; ++j)
      if (i != j) off += std::abs(sys.a(i, j));
    EXPECT_GT(std::abs(sys.a(i, i)), off);
  }
}

TEST(JacobiSequential, ConvergesToSolution) {
  const LinearSystem sys = make_diagonally_dominant_system(12, 3);
  const JacobiResult r = jacobi_sequential(sys, 1e-12, 1000);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(jacobi_residual(sys, r.x), 1e-9);
}

TEST(JacobiSequential, RespectsIterationCap) {
  const LinearSystem sys = make_diagonally_dominant_system(12, 3);
  const JacobiResult r = jacobi_sequential(sys, 0.0, 5);  // unreachable tol
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 5);
}

TEST(JacobiDistributed, MatchesSequentialSolution) {
  const LinearSystem sys = make_diagonally_dominant_system(16, 11);
  const JacobiResult seq = jacobi_sequential(sys, 1e-12, 1000);
  JacobiOptions opt;
  opt.processes = 4;
  opt.tolerance = 1e-12;
  const DistributedJacobiResult dist = jacobi_distributed(sys, kTopo, opt);
  ASSERT_TRUE(dist.solution.converged);
  ASSERT_EQ(dist.solution.x.size(), seq.x.size());
  for (std::size_t i = 0; i < seq.x.size(); ++i)
    EXPECT_NEAR(dist.solution.x[i], seq.x[i], 1e-9);
  // Synchronous rounds: identical iterate sequence, identical count.
  EXPECT_EQ(dist.solution.iterations, seq.iterations);
}

TEST(JacobiDistributed, ValidatesProcessCount) {
  const LinearSystem sys = make_diagonally_dominant_system(4, 1);
  JacobiOptions opt;
  opt.processes = 5;  // more processes than unknowns
  EXPECT_THROW((void)jacobi_distributed(sys, kTopo, opt), std::invalid_argument);
  opt.processes = 0;
  EXPECT_THROW((void)jacobi_distributed(sys, kTopo, opt), std::invalid_argument);
}

TEST(JacobiDistributed, OneProcessPerComponentMatchesPaperCounts) {
  // The paper's mapping: n processes, each owning one component. Per S-round
  // and per process: 2n local ops (2n-1 fp), n-1 sends, n-1 receives.
  const int n = 8;
  const LinearSystem sys = make_diagonally_dominant_system(n, 5);
  JacobiOptions opt;
  opt.processes = n;
  opt.tolerance = 1e-10;
  const DistributedJacobiResult dist = jacobi_distributed(sys, kTopo, opt);
  const int iters = dist.solution.iterations;
  ASSERT_GT(iters, 0);
  for (const auto& rec : dist.run.recorders) {
    const CostCounters t = rec.totals();
    EXPECT_DOUBLE_EQ(t.m_s_a + t.m_s_e, static_cast<double>(iters) * (n - 1));
    EXPECT_DOUBLE_EQ(t.m_r_a + t.m_r_e, static_cast<double>(iters) * (n - 1));
    EXPECT_DOUBLE_EQ(t.c_fp, static_cast<double>(iters) * (2 * n - 1));
    // Per-unit structure: every unit holds exactly one round.
    EXPECT_EQ(rec.unit_count(), static_cast<std::size_t>(iters));
  }
}

TEST(JacobiDistributed, RecordedRoundMatchesAnalyticCounters) {
  const int n = 6;
  const LinearSystem sys = make_diagonally_dominant_system(n, 9);
  JacobiOptions opt;
  opt.processes = n;
  const DistributedJacobiResult dist = jacobi_distributed(sys, kTopo, opt);
  const CostCounters analytic = analysis::jacobi_round_counters(n);
  const auto& unit = dist.run.recorders[0].units().front();
  ASSERT_EQ(unit.rounds.size(), 1u);
  const CostCounters& measured = unit.rounds[0];
  EXPECT_DOUBLE_EQ(measured.c_fp, analytic.c_fp);
  EXPECT_DOUBLE_EQ(measured.m_s_a + measured.m_s_e,
                   analytic.m_s_a + analytic.m_s_e);
  EXPECT_DOUBLE_EQ(measured.m_r_a + measured.m_r_e,
                   analytic.m_r_a + analytic.m_r_e);
}

TEST(JacobiDistributed, IntraPlacementChargesIntra) {
  const LinearSystem sys = make_diagonally_dominant_system(4, 2);
  JacobiOptions opt;
  opt.processes = 4;
  opt.distribution = Distribution::IntraProc;
  const DistributedJacobiResult dist = jacobi_distributed(sys, kTopo, opt);
  const CostCounters t = dist.run.recorders[0].totals();
  EXPECT_GT(t.m_s_a, 0);
  EXPECT_DOUBLE_EQ(t.m_s_e, 0);  // 4 processes fit one processor

  JacobiOptions inter = opt;
  inter.distribution = Distribution::InterProc;
  const DistributedJacobiResult dist2 = jacobi_distributed(sys, kTopo, inter);
  const CostCounters t2 = dist2.run.recorders[0].totals();
  EXPECT_DOUBLE_EQ(t2.m_s_a, 0);
  EXPECT_GT(t2.m_s_e, 0);
}

TEST(JacobiDistributed, ThreadCapSpillsToMoreProcessors) {
  const LinearSystem sys = make_diagonally_dominant_system(4, 2);
  JacobiOptions opt;
  opt.processes = 4;
  opt.max_threads_per_processor = 3;  // the paper's power-envelope setting
  const DistributedJacobiResult dist = jacobi_distributed(sys, kTopo, opt);
  const std::vector<int> occ = dist.placement.occupancy();
  EXPECT_EQ(occ[0], 3);
  EXPECT_EQ(occ[1], 1);
}

// Parameterized correctness sweep over process counts.
class JacobiProcessSweep : public ::testing::TestWithParam<int> {};

TEST_P(JacobiProcessSweep, CorrectForAnyBlocking) {
  const int p = GetParam();
  const LinearSystem sys = make_diagonally_dominant_system(13, 21);
  const JacobiResult seq = jacobi_sequential(sys, 1e-11, 500);
  JacobiOptions opt;
  opt.processes = p;
  opt.tolerance = 1e-11;
  const DistributedJacobiResult dist = jacobi_distributed(sys, kTopo, opt);
  for (std::size_t i = 0; i < seq.x.size(); ++i)
    EXPECT_NEAR(dist.solution.x[i], seq.x[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sweep, JacobiProcessSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 13));

}  // namespace
}  // namespace stamp::algo
