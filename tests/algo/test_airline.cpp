#include "algo/airline.hpp"

#include <gtest/gtest.h>

// run_distributed is deprecated in favor of Evaluator::run; this file drives
// the layer under test through the executor directly on purpose (it sits
// below the facade).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif


namespace stamp::algo {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

TEST(FlightNetwork, ConstructionValidated) {
  EXPECT_THROW(FlightNetwork(2, 10), std::invalid_argument);
  EXPECT_THROW(FlightNetwork(3, -1), std::invalid_argument);
  const FlightNetwork net(5, 10);
  EXPECT_EQ(net.leg_count(), 5);
  EXPECT_EQ(net.remaining(0), 10);
  EXPECT_EQ(net.booked_total(10), 0);
}

TEST(Reserve, AllLegsAvailableSucceeds) {
  FlightNetwork net(4, 10);
  stm::StmRuntime rt;
  (void)runtime::run_distributed(
      kTopo, 1, Distribution::IntraProc, [&](runtime::Context& ctx) {
        const ReserveOutcome out =
            reserve(ctx, rt, net, {0, 1, 2}, ReservePolicy::Partial);
        EXPECT_TRUE(out.success);
        EXPECT_EQ(out.legs_committed, 3);
      });
  EXPECT_EQ(net.remaining(0), 9);
  EXPECT_EQ(net.remaining(1), 9);
  EXPECT_EQ(net.remaining(2), 9);
  EXPECT_EQ(net.remaining(3), 10);
}

TEST(Reserve, ItineraryValidated) {
  FlightNetwork net(4, 10);
  stm::StmRuntime rt;
  (void)runtime::run_distributed(
      kTopo, 1, Distribution::IntraProc, [&](runtime::Context& ctx) {
        EXPECT_THROW(
            (void)reserve(ctx, rt, net, {}, ReservePolicy::Partial),
            std::invalid_argument);
        EXPECT_THROW(
            (void)reserve(ctx, rt, net, {0, 1, 2, 3}, ReservePolicy::Partial),
            std::invalid_argument);
      });
}

TEST(Reserve, NoneAvailableFails) {
  FlightNetwork net(3, 0);  // everything full
  stm::StmRuntime rt;
  (void)runtime::run_distributed(
      kTopo, 1, Distribution::IntraProc, [&](runtime::Context& ctx) {
        const ReserveOutcome out =
            reserve(ctx, rt, net, {0, 1, 2}, ReservePolicy::Partial);
        EXPECT_FALSE(out.success);
        EXPECT_EQ(out.legs_committed, 0);
      });
}

TEST(Reserve, PartialPolicyKeepsCommittedLegs) {
  FlightNetwork net(3, 1);
  // Drain leg 1 so the middle leg fails.
  net.seats(1).poke(0);
  stm::StmRuntime rt;
  (void)runtime::run_distributed(
      kTopo, 1, Distribution::IntraProc, [&](runtime::Context& ctx) {
        const ReserveOutcome out =
            reserve(ctx, rt, net, {0, 1, 2}, ReservePolicy::Partial);
        // "the committed leg is not full": success with 2 of 3.
        EXPECT_TRUE(out.success);
        EXPECT_EQ(out.legs_committed, 2);
      });
  EXPECT_EQ(net.remaining(0), 0);
  EXPECT_EQ(net.remaining(1), 0);
  EXPECT_EQ(net.remaining(2), 0);
}

TEST(Reserve, AllOrNothingCompensates) {
  FlightNetwork net(3, 1);
  net.seats(1).poke(0);
  stm::StmRuntime rt;
  (void)runtime::run_distributed(
      kTopo, 1, Distribution::IntraProc, [&](runtime::Context& ctx) {
        const ReserveOutcome out =
            reserve(ctx, rt, net, {0, 1, 2}, ReservePolicy::AllOrNothing);
        EXPECT_FALSE(out.success);
        EXPECT_EQ(out.legs_committed, 0);
      });
  // The seats on legs 0 and 2 were released again.
  EXPECT_EQ(net.remaining(0), 1);
  EXPECT_EQ(net.remaining(2), 1);
}

TEST(ReservationWorkload, NeverOverbooks) {
  ReservationWorkload w;
  w.processes = 8;
  w.reservations_per_process = 400;
  w.legs = 6;
  w.seats_per_leg = 50;  // scarce: heavy competition for seats
  const ReservationRunResult r = run_reservation_workload(kTopo, w);
  EXPECT_EQ(r.overbooked_legs, 0);
  EXPECT_EQ(r.attempted,
            static_cast<long long>(w.processes) * w.reservations_per_process);
  EXPECT_EQ(r.attempted, r.succeeded + r.failed);
}

TEST(ReservationWorkload, BookedSeatsMatchLegCommits) {
  ReservationWorkload w;
  w.processes = 4;
  w.reservations_per_process = 200;
  w.legs = 8;
  w.seats_per_leg = 100;
  const ReservationRunResult r = run_reservation_workload(kTopo, w);
  FlightNetwork reference(w.legs, w.seats_per_leg);
  // Total seats decremented across the network equals legs booked.
  EXPECT_EQ(r.legs_booked, r.legs_booked);
  EXPECT_GE(r.legs_booked, r.succeeded);  // each success books >= 1 leg
  EXPECT_LE(r.legs_booked, 3 * r.attempted);
}

TEST(ReservationWorkload, AllOrNothingBooksCompleteItinerariesOnly) {
  ReservationWorkload w;
  w.processes = 6;
  w.reservations_per_process = 300;
  w.legs = 5;
  w.seats_per_leg = 40;
  w.policy = ReservePolicy::AllOrNothing;
  const ReservationRunResult r = run_reservation_workload(kTopo, w);
  EXPECT_EQ(r.overbooked_legs, 0);
  // Under all-or-nothing every success books exactly 3 legs.
  EXPECT_EQ(r.legs_booked, 3 * r.succeeded);
}

TEST(ReservationWorkload, PartialBooksAtLeastAsManySeats) {
  ReservationWorkload partial;
  partial.processes = 6;
  partial.reservations_per_process = 300;
  partial.legs = 5;
  partial.seats_per_leg = 40;
  partial.policy = ReservePolicy::Partial;
  ReservationWorkload strict = partial;
  strict.policy = ReservePolicy::AllOrNothing;
  const ReservationRunResult rp = run_reservation_workload(kTopo, partial);
  const ReservationRunResult rs = run_reservation_workload(kTopo, strict);
  // Partial commits keep seats that all-or-nothing would release.
  EXPECT_GE(rp.legs_booked, rs.legs_booked);
}

// Policy x distribution sweep: invariants must hold everywhere.
class ReservationSweep
    : public ::testing::TestWithParam<std::tuple<ReservePolicy, Distribution>> {};

TEST_P(ReservationSweep, InvariantsHold) {
  const auto [policy, dist] = GetParam();
  ReservationWorkload w;
  w.processes = 5;
  w.reservations_per_process = 200;
  w.legs = 4;
  w.seats_per_leg = 30;
  w.policy = policy;
  w.distribution = dist;
  const ReservationRunResult r = run_reservation_workload(kTopo, w);
  EXPECT_EQ(r.overbooked_legs, 0);
  EXPECT_EQ(r.attempted, r.succeeded + r.failed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReservationSweep,
    ::testing::Combine(::testing::Values(ReservePolicy::Partial,
                                         ReservePolicy::AllOrNothing),
                       ::testing::Values(Distribution::IntraProc,
                                         Distribution::InterProc)));

}  // namespace
}  // namespace stamp::algo
