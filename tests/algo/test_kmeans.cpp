#include "algo/kmeans.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace stamp::algo {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

TEST(KMeans, ValidatesArguments) {
  KMeansWorkload w;
  w.processes = 0;
  EXPECT_THROW((void)kmeans_distributed(kTopo, w), std::invalid_argument);
  w = KMeansWorkload{};
  w.clusters = 0;
  EXPECT_THROW((void)kmeans_input(w), std::invalid_argument);
}

TEST(KMeans, InputIsDeterministicBlobs) {
  KMeansWorkload w;
  EXPECT_EQ(kmeans_input(w), kmeans_input(w));
}

TEST(KMeans, ReferenceFindsTheBlobCentres) {
  KMeansWorkload w;
  w.points = 8192;
  w.clusters = 4;
  w.rounds = 15;
  const std::vector<Point2> c = kmeans_reference(w);
  // Blobs are centred at (k*1000, k*1000) with sigma 150: each centroid must
  // land near one blob centre.
  for (const Point2& centroid : c) {
    long long best = 1LL << 60;
    for (int k = 0; k < w.clusters; ++k) {
      const long long dx = centroid.x - k * 1000;
      const long long dy = centroid.y - k * 1000;
      best = std::min(best, dx * dx + dy * dy);
    }
    EXPECT_LT(best, 200LL * 200);  // within 200 of a blob centre
  }
}

TEST(KMeans, DistributedMatchesReferenceBitExactly) {
  // Integer sums make the tree reduction exact: the distributed centroids
  // equal the sequential reference at every process count.
  KMeansWorkload w;
  w.points = 3000;
  w.clusters = 5;
  w.rounds = 10;
  const std::vector<Point2> expected = kmeans_reference(w);
  for (int p : {1, 2, 4, 8}) {
    w.processes = p;
    const KMeansResult r = kmeans_distributed(kTopo, w);
    EXPECT_EQ(r.centroids, expected) << "p=" << p;
  }
}

TEST(KMeans, ClusterSizesCoverAllPoints) {
  KMeansWorkload w;
  w.processes = 4;
  w.points = 2048;
  const KMeansResult r = kmeans_distributed(kTopo, w);
  EXPECT_EQ(std::accumulate(r.cluster_sizes.begin(), r.cluster_sizes.end(), 0LL),
            w.points);
}

TEST(KMeans, CollectiveMessageCountsAreLogDepth) {
  KMeansWorkload w;
  w.processes = 8;
  w.points = 1024;
  w.rounds = 6;
  const KMeansResult r = kmeans_distributed(kTopo, w);
  const CostCounters t = r.run.total_counters();
  // Per round: reduce p-1 msgs + broadcast p-1 msgs = 14 total across all
  // processes.
  EXPECT_DOUBLE_EQ(t.m_s_a + t.m_s_e, w.rounds * 2.0 * (w.processes - 1));
}

TEST(KMeans, EmptyPointSetKeepsSeedCentroids) {
  KMeansWorkload w;
  w.processes = 2;
  w.points = 0;
  w.clusters = 3;
  const KMeansResult r = kmeans_distributed(kTopo, w);
  ASSERT_EQ(r.centroids.size(), 3u);
  for (int k = 0; k < 3; ++k)
    EXPECT_EQ(r.centroids[static_cast<std::size_t>(k)],
              (Point2{k * 1000, k * 1000}));
}

}  // namespace
}  // namespace stamp::algo
