#include "algo/bfs.hpp"

#include <gtest/gtest.h>

namespace stamp::algo {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

TEST(Bfs, ValidatesArguments) {
  const Graph g = make_random_graph(8, 1, 0.5);
  BfsOptions opt;
  opt.processes = 9;
  EXPECT_THROW((void)bfs_distributed(g, kTopo, opt), std::invalid_argument);
  opt = BfsOptions{};
  opt.source = 8;
  EXPECT_THROW((void)bfs_distributed(g, kTopo, opt), std::invalid_argument);
}

TEST(Bfs, ReferenceOnHandBuiltChain) {
  // 0 -> 1 -> 2 -> 3, plus 3 -> 0 back edge; vertex 4 isolated.
  Graph g;
  g.n = 5;
  g.weight.assign(25, Graph::kInfinity);
  for (int i = 0; i < 5; ++i) g.weight[static_cast<std::size_t>(i) * 5 + i] = 0;
  g.weight[0 * 5 + 1] = 1;
  g.weight[1 * 5 + 2] = 1;
  g.weight[2 * 5 + 3] = 1;
  g.weight[3 * 5 + 0] = 1;
  const std::vector<int> d = bfs_reference(g, 0);
  EXPECT_EQ(d, (std::vector<int>{0, 1, 2, 3, -1}));
}

TEST(Bfs, DistributedMatchesReferenceSynchronous) {
  const Graph g = make_random_graph(12, 51, 0.25);
  BfsOptions opt;
  opt.processes = 6;
  opt.comm = CommMode::Synchronous;
  const BfsResult r = bfs_distributed(g, kTopo, opt);
  EXPECT_EQ(r.depth, bfs_reference(g, opt.source));
}

TEST(Bfs, DistributedMatchesReferenceAsynchronous) {
  const Graph g = make_random_graph(12, 53, 0.25);
  BfsOptions opt;
  opt.processes = 6;
  opt.comm = CommMode::Asynchronous;
  const BfsResult r = bfs_distributed(g, kTopo, opt);
  EXPECT_EQ(r.depth, bfs_reference(g, opt.source));
}

TEST(Bfs, UnreachableVerticesStayMinusOne) {
  Graph g;
  g.n = 6;
  g.weight.assign(36, Graph::kInfinity);
  for (int i = 0; i < 6; ++i) g.weight[static_cast<std::size_t>(i) * 6 + i] = 0;
  g.weight[0 * 6 + 1] = 1;  // only 0 -> 1
  BfsOptions opt;
  opt.processes = 3;
  const BfsResult r = bfs_distributed(g, kTopo, opt);
  EXPECT_EQ(r.depth[0], 0);
  EXPECT_EQ(r.depth[1], 1);
  for (int v = 2; v < 6; ++v) EXPECT_EQ(r.depth[static_cast<std::size_t>(v)], -1);
}

TEST(Bfs, NonDefaultSource) {
  const Graph g = make_random_graph(10, 57, 0.3);
  BfsOptions opt;
  opt.processes = 5;
  opt.source = 7;
  const BfsResult r = bfs_distributed(g, kTopo, opt);
  EXPECT_EQ(r.depth, bfs_reference(g, 7));
  EXPECT_EQ(r.depth[7], 0);
}

TEST(Bfs, SharedReadsAreCounted) {
  const Graph g = make_random_graph(8, 59, 0.4);
  BfsOptions opt;
  opt.processes = 4;
  const BfsResult r = bfs_distributed(g, kTopo, opt);
  EXPECT_GT(r.run.total_counters().shm_accesses(), 0);
}

class BfsSweep
    : public ::testing::TestWithParam<std::tuple<int, double, CommMode>> {};

TEST_P(BfsSweep, MatchesReference) {
  const auto [processes, density, comm] = GetParam();
  const Graph g = make_random_graph(13, 200 + processes, density);
  BfsOptions opt;
  opt.processes = processes;
  opt.comm = comm;
  const BfsResult r = bfs_distributed(g, kTopo, opt);
  EXPECT_EQ(r.depth, bfs_reference(g, opt.source))
      << "p=" << processes << " density=" << density;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BfsSweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 13),
                       ::testing::Values(0.1, 0.3, 0.7),
                       ::testing::Values(CommMode::Synchronous,
                                         CommMode::Asynchronous)));

}  // namespace
}  // namespace stamp::algo
