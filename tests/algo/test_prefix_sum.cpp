#include "algo/prefix_sum.hpp"

#include <gtest/gtest.h>

namespace stamp::algo {
namespace {

const Topology kTopo{.chips = 1, .processors_per_chip = 8,
                     .threads_per_processor = 4};

TEST(PrefixSum, ValidatesArguments) {
  PrefixSumWorkload w;
  w.processes = 0;
  EXPECT_THROW((void)run_prefix_sum(kTopo, w), std::invalid_argument);
  w = PrefixSumWorkload{};
  w.elements = -5;
  EXPECT_THROW((void)run_prefix_sum(kTopo, w), std::invalid_argument);
}

TEST(PrefixSum, ReferenceIsInclusive) {
  const std::vector<long long> in{3, -1, 4, 1, -5};
  const std::vector<long long> out = prefix_sum_reference(in);
  EXPECT_EQ(out, (std::vector<long long>{3, 2, 6, 7, 2}));
}

TEST(PrefixSum, EmptyInput) {
  PrefixSumWorkload w;
  w.processes = 4;
  w.elements = 0;
  const PrefixSumRunResult r = run_prefix_sum(kTopo, w);
  EXPECT_TRUE(r.correct());
  EXPECT_TRUE(r.output.empty());
}

TEST(PrefixSum, SingleProcess) {
  PrefixSumWorkload w;
  w.processes = 1;
  w.elements = 1024;
  EXPECT_TRUE(run_prefix_sum(kTopo, w).correct());
}

TEST(PrefixSum, InputDeterministic) {
  PrefixSumWorkload w;
  EXPECT_EQ(prefix_sum_input(w), prefix_sum_input(w));
}

TEST(PrefixSum, ScanMessagesAreLogDepth) {
  PrefixSumWorkload w;
  w.processes = 8;
  w.elements = 1 << 12;
  const PrefixSumRunResult r = run_prefix_sum(kTopo, w);
  EXPECT_TRUE(r.correct());
  // Hillis-Steele over 8 ranks: 3 phases; each process sends <= 3 messages.
  for (const auto& rec : r.run.recorders) {
    const CostCounters t = rec.totals();
    EXPECT_LE(t.m_s_a + t.m_s_e, 3.0);
  }
}

// Correctness across process counts and sizes (including non-dividing).
class PrefixSumSweep
    : public ::testing::TestWithParam<std::tuple<int, long long>> {};

TEST_P(PrefixSumSweep, MatchesReference) {
  const auto [processes, elements] = GetParam();
  PrefixSumWorkload w;
  w.processes = processes;
  w.elements = elements;
  const PrefixSumRunResult r = run_prefix_sum(kTopo, w);
  EXPECT_TRUE(r.correct()) << "p=" << processes << " n=" << elements;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrefixSumSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16),
                       ::testing::Values(1LL, 7LL, 1000LL, 4096LL)));

}  // namespace
}  // namespace stamp::algo
