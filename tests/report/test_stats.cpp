#include "report/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace stamp::report {
namespace {

TEST(Stats, EmptySampleIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0);
  EXPECT_EQ(s.stddev, 0);
}

TEST(Stats, SingleValue) {
  const std::vector<double> v{5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 5);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 5);
  EXPECT_DOUBLE_EQ(s.stddev, 0);
  EXPECT_DOUBLE_EQ(s.p50, 5);
}

TEST(Stats, KnownSample) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5);
  EXPECT_DOUBLE_EQ(s.min, 2);
  EXPECT_DOUBLE_EQ(s.max, 9);
  // Sample stddev with n-1: sqrt(32/7).
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 1), 40);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0 / 3.0), 20);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> v{40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25);
}

TEST(Stats, PercentileClampsQ) {
  const std::vector<double> v{1, 2};
  EXPECT_DOUBLE_EQ(percentile(v, -1), 1);
  EXPECT_DOUBLE_EQ(percentile(v, 2), 2);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0);
}

TEST(Stats, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(110, 100), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(90, 100), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(0, 0), 0);
  EXPECT_TRUE(std::isinf(relative_error(1, 0)));
  EXPECT_DOUBLE_EQ(relative_error(-5, -4), 0.25);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> v{1, 4, 16};
  EXPECT_NEAR(geometric_mean(v), 4, 1e-12);
  const std::vector<double> with_zero{1, 0, 4};
  EXPECT_DOUBLE_EQ(geometric_mean(with_zero), 0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0);
}

// Property: min <= p50 <= p90 <= p99 <= max and mean in [min, max].
class SummaryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SummaryPropertyTest, OrderingInvariants) {
  const int n = GetParam();
  std::vector<double> v;
  for (int i = 0; i < n; ++i)
    v.push_back(std::sin(i * 0.7) * 100 + (i % 13));
  const Summary s = summarize(v);
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_GE(s.mean, s.min);
  EXPECT_LE(s.mean, s.max);
  EXPECT_GE(s.stddev, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SummaryPropertyTest,
                         ::testing::Values(1, 2, 10, 100, 1000));

}  // namespace
}  // namespace stamp::report
