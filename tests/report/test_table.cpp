#include "report/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace stamp::report {
namespace {

TEST(Table, RequiresHeaders) {
  EXPECT_THROW(Table("t", {}), std::invalid_argument);
}

TEST(Table, RowWidthEnforced) {
  Table t("t", {"a", "b"});
  EXPECT_THROW(t.add_row({Cell{1LL}}), std::invalid_argument);
  EXPECT_NO_THROW(t.add_row({Cell{1LL}, Cell{2LL}}));
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.column_count(), 2u);
}

TEST(Table, FormatsCellTypes) {
  Table t("t", {"x"});
  EXPECT_EQ(t.format_cell(Cell{std::string("hi")}), "hi");
  EXPECT_EQ(t.format_cell(Cell{42LL}), "42");
  EXPECT_EQ(t.format_cell(Cell{1.5}), "1.500");
  t.set_precision(1);
  EXPECT_EQ(t.format_cell(Cell{1.55}), "1.6");
}

TEST(Table, PrintContainsHeadersAndValues) {
  Table t("My Title", {"name", "value"});
  t.add_row({Cell{std::string("alpha")}, Cell{3.25}});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("My Title"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.250"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);  // box rules
}

TEST(Table, StreamOperator) {
  Table t("t", {"a"});
  t.add_text_row({"v"});
  std::ostringstream os;
  os << t;
  EXPECT_FALSE(os.str().empty());
}

TEST(Table, CsvEscapesSpecials) {
  Table t("csv", {"plain", "with,comma", "with\"quote"});
  t.add_row({Cell{std::string("a,b")}, Cell{std::string("c\"d")}, Cell{7LL}});
  std::ostringstream os;
  t.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# csv"), std::string::npos);
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"c\"\"d\""), std::string::npos);
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
}

TEST(Table, CsvRowsLineUp) {
  Table t("t", {"a", "b"});
  t.add_row({Cell{1LL}, Cell{2LL}});
  t.add_row({Cell{3LL}, Cell{4LL}});
  std::ostringstream os;
  t.write_csv(os);
  std::istringstream is(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, 4);  // comment + header + 2 rows
}

TEST(Table, ColumnsWidenToFit) {
  Table t("t", {"x"});
  t.add_text_row({"a-very-long-cell-value"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("a-very-long-cell-value"), std::string::npos);
}

TEST(PrintSection, EmitsBanner) {
  std::ostringstream os;
  print_section(os, "hello");
  EXPECT_NE(os.str().find("== hello"), std::string::npos);
  EXPECT_NE(os.str().find("===="), std::string::npos);
}

}  // namespace
}  // namespace stamp::report
