#include "report/json_parse.hpp"

#include "report/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

namespace stamp::report {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-3.5e2").as_number(), -350.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("0.125").as_number(), 0.125);
  EXPECT_EQ(JsonValue::parse(R"("hello")").as_string(), "hello");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\/d")").as_string(), "a\"b\\c/d");
  EXPECT_EQ(JsonValue::parse(R"("tab\there\nnewline")").as_string(),
            "tab\there\nnewline");
  EXPECT_EQ(JsonValue::parse(R"("\b\f\r")").as_string(), "\b\f\r");
  // \uXXXX decodes to UTF-8: é is U+00E9, ∑ is U+2211.
  EXPECT_EQ(JsonValue::parse(R"("é")").as_string(), "\xC3\xA9");
  EXPECT_EQ(JsonValue::parse(R"("∑")").as_string(), "\xE2\x88\x91");
}

TEST(JsonParse, ArraysAndNesting) {
  const JsonValue v = JsonValue::parse(R"([1, [2, 3], {"k": [true]}])");
  ASSERT_EQ(v.kind(), JsonValue::Kind::Array);
  ASSERT_EQ(v.items().size(), 3u);
  EXPECT_DOUBLE_EQ(v.items()[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(v.items()[1].items()[1].as_number(), 3.0);
  EXPECT_TRUE(v.items()[2].find("k")->items()[0].as_bool());
  EXPECT_TRUE(JsonValue::parse("[]").items().empty());
  EXPECT_TRUE(JsonValue::parse("{}").members().empty());
}

TEST(JsonParse, ObjectMemberOrderIsPreserved) {
  const JsonValue v = JsonValue::parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(JsonParse, FindHandlesPresentAbsentAndNonObject) {
  const JsonValue v = JsonValue::parse(R"({"x": 7})");
  ASSERT_NE(v.find("x"), nullptr);
  EXPECT_DOUBLE_EQ(v.find("x")->as_number(), 7.0);
  EXPECT_EQ(v.find("y"), nullptr);
  EXPECT_EQ(JsonValue::parse("[1]").find("x"), nullptr);
}

TEST(JsonParse, KindMismatchThrows) {
  const JsonValue n = JsonValue::parse("3");
  EXPECT_THROW((void)n.as_bool(), std::logic_error);
  EXPECT_THROW((void)n.as_string(), std::logic_error);
  EXPECT_THROW((void)n.items(), std::logic_error);
  EXPECT_THROW((void)n.members(), std::logic_error);
}

TEST(JsonParse, MalformedDocumentsThrowWithOffset) {
  for (const char* bad :
       {"", "{", "[1,", R"({"a" 1})", R"({"a":})", "tru", "1.2.3",
        R"("unterminated)", R"("bad \x escape")", "[1] trailing", "{,}",
        R"({"a":1,})"}) {
    EXPECT_THROW((void)JsonValue::parse(bad), JsonParseError) << bad;
  }
  try {
    (void)JsonValue::parse("[1, }");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_GE(e.offset(), 4u);
  }
}

TEST(JsonParse, RoundTripsTheWriter) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .kv("name", "sweep \"x\"\n")
      .kv("pi", 3.141592653589793)
      .kv("count", 576)
      .kv("ok", true)
      .key("nan");
  w.value(std::numeric_limits<double>::quiet_NaN());  // writer emits null
  w.key("list").begin_array().value(1).value(2.5).end_array().end_object();
  ASSERT_TRUE(w.complete());

  const JsonValue v = JsonValue::parse(os.str());
  EXPECT_EQ(v.find("name")->as_string(), "sweep \"x\"\n");
  // The writer prints 15 significant digits, so the round trip is near-exact
  // rather than bit-exact.
  EXPECT_NEAR(v.find("pi")->as_number(), 3.141592653589793, 1e-14);
  EXPECT_DOUBLE_EQ(v.find("count")->as_number(), 576.0);
  EXPECT_TRUE(v.find("ok")->as_bool());
  EXPECT_TRUE(v.find("nan")->is_null());
  ASSERT_EQ(v.find("list")->items().size(), 2u);
  EXPECT_DOUBLE_EQ(v.find("list")->items()[1].as_number(), 2.5);
}

TEST(JsonParse, WhitespaceEverywhereIsFine) {
  const JsonValue v =
      JsonValue::parse("  \n\t{ \"a\" :\r\n [ 1 , 2 ] }  \n");
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("a")->items().size(), 2u);
}

}  // namespace
}  // namespace stamp::report
