#include "report/json.hpp"

#include "report/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace stamp::report {
namespace {

std::string render(void (*build)(JsonWriter&)) {
  std::ostringstream os;
  JsonWriter w(os);
  build(w);
  EXPECT_TRUE(w.complete());
  return os.str();
}

TEST(Json, Scalars) {
  EXPECT_EQ(render([](JsonWriter& w) { w.value("hi"); }), "\"hi\"");
  EXPECT_EQ(render([](JsonWriter& w) { w.value(42LL); }), "42");
  EXPECT_EQ(render([](JsonWriter& w) { w.value(true); }), "true");
  EXPECT_EQ(render([](JsonWriter& w) { w.null(); }), "null");
}

TEST(Json, NumbersFormatted) {
  EXPECT_EQ(render([](JsonWriter& w) { w.value(1.5); }), "1.5");
  // NaN/Inf become null (JSON has no such literals).
  EXPECT_EQ(render([](JsonWriter& w) {
              w.value(std::numeric_limits<double>::quiet_NaN());
            }),
            "null");
  EXPECT_EQ(render([](JsonWriter& w) {
              w.value(std::numeric_limits<double>::infinity());
            }),
            "null");
}

TEST(Json, ObjectAndArray) {
  const std::string out = render([](JsonWriter& w) {
    w.begin_object();
    w.kv("name", "stamp");
    w.key("values");
    w.begin_array();
    w.value(1LL);
    w.value(2LL);
    w.end_array();
    w.kv("ok", true);
    w.end_object();
  });
  EXPECT_EQ(out, R"({"name":"stamp","values":[1,2],"ok":true})");
}

TEST(Json, NestedContainers) {
  const std::string out = render([](JsonWriter& w) {
    w.begin_array();
    w.begin_object();
    w.kv("a", 1LL);
    w.end_object();
    w.begin_object();
    w.kv("b", 2LL);
    w.end_object();
    w.end_array();
  });
  EXPECT_EQ(out, R"([{"a":1},{"b":2}])");
}

TEST(Json, Escaping) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonWriter::escape(std::string_view("x\x01y", 3)), "x\\u0001y");
  const std::string out =
      render([](JsonWriter& w) { w.value("quote\" and \\slash"); });
  EXPECT_EQ(out, "\"quote\\\" and \\\\slash\"");
}

TEST(Json, StructureErrorsThrow) {
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.value(1LL), std::logic_error);  // value without key
  }
  {
    JsonWriter w(os);
    EXPECT_THROW(w.key("k"), std::logic_error);  // key at root
  }
  {
    JsonWriter w(os);
    w.begin_array();
    EXPECT_THROW(w.end_object(), std::logic_error);  // mismatched close
  }
  {
    JsonWriter w(os);
    w.begin_object();
    w.key("k");
    EXPECT_THROW(w.key("k2"), std::logic_error);  // two keys in a row
  }
  {
    JsonWriter w(os);
    w.value(1LL);
    EXPECT_THROW(w.value(2LL), std::logic_error);  // two roots
  }
}

TEST(Json, CompleteTracksState) {
  std::ostringstream os;
  JsonWriter w(os);
  EXPECT_FALSE(w.complete());
  w.begin_object();
  EXPECT_FALSE(w.complete());
  w.end_object();
  EXPECT_TRUE(w.complete());
}

TEST(Json, TableExport) {
  Table t("results", {"name", "count", "ratio"});
  t.add_row({Cell{std::string("alpha")}, Cell{3LL}, Cell{0.5}});
  t.add_row({Cell{std::string("beta")}, Cell{7LL}, Cell{1.25}});
  std::ostringstream os;
  t.write_json(os);
  EXPECT_EQ(os.str(),
            R"({"title":"results","rows":[)"
            R"({"name":"alpha","count":3,"ratio":0.5},)"
            R"({"name":"beta","count":7,"ratio":1.25}]})");
}

}  // namespace
}  // namespace stamp::report
