#include "report/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace stamp::report {
namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

std::string temp_path(const std::string& name) {
  return (fs::path(testing::TempDir()) / name).string();
}

TEST(AtomicFileWriter, CommitCreatesFileWithExactContent) {
  const std::string path = temp_path("atomic_commit.txt");
  fs::remove(path);
  {
    AtomicFileWriter writer(path);
    ASSERT_TRUE(writer.ok());
    EXPECT_FALSE(fs::exists(path));  // nothing at the real path before commit
    writer.stream() << "hello\nworld\n";
    writer.commit();
  }
  EXPECT_EQ(read_file(path), "hello\nworld\n");
  fs::remove(path);
}

TEST(AtomicFileWriter, CommitRemovesTempFile) {
  const std::string path = temp_path("atomic_temp_gone.txt");
  std::string temp;
  {
    AtomicFileWriter writer(path);
    temp = writer.temp_path();
    writer.stream() << "x";
    EXPECT_TRUE(fs::exists(temp));
    writer.commit();
  }
  EXPECT_FALSE(fs::exists(temp));
  fs::remove(path);
}

// The crash-safety property: a writer that never commits (the process died,
// an error bailed out) must leave the destination byte-for-byte untouched
// and unlink its temp file.
TEST(AtomicFileWriter, DestructorWithoutCommitLeavesDestinationUntouched) {
  const std::string path = temp_path("atomic_uncommitted.txt");
  AtomicFileWriter::write_file(path, "original");
  std::string temp;
  {
    AtomicFileWriter writer(path);
    temp = writer.temp_path();
    writer.stream() << "torn partial write";
  }
  EXPECT_EQ(read_file(path), "original");
  EXPECT_FALSE(fs::exists(temp));
  fs::remove(path);
}

TEST(AtomicFileWriter, AbortIsIdempotentAndCommitlessOverwriteKeepsOld) {
  const std::string path = temp_path("atomic_abort.txt");
  AtomicFileWriter::write_file(path, "keep me");
  AtomicFileWriter writer(path);
  writer.stream() << "discard me";
  writer.abort();
  writer.abort();  // second abort must be a no-op
  EXPECT_FALSE(fs::exists(writer.temp_path()));
  EXPECT_EQ(read_file(path), "keep me");
  fs::remove(path);
}

TEST(AtomicFileWriter, CommitAtomicallyReplacesExistingFile) {
  const std::string path = temp_path("atomic_replace.txt");
  AtomicFileWriter::write_file(path, "old contents");
  {
    AtomicFileWriter writer(path);
    writer.stream() << "new contents";
    writer.commit();
  }
  EXPECT_EQ(read_file(path), "new contents");
  fs::remove(path);
}

TEST(AtomicFileWriter, UnopenablePathReportsNotOkAndCommitThrows) {
  const std::string path =
      temp_path("no_such_dir_atomic") + "/nested/out.json";
  AtomicFileWriter writer(path);
  EXPECT_FALSE(writer.ok());
  writer.stream() << "goes nowhere";
  EXPECT_THROW(writer.commit(), std::runtime_error);
  EXPECT_FALSE(fs::exists(path));
}

TEST(AtomicFileWriter, WriteFileConvenienceRoundTrips) {
  const std::string path = temp_path("atomic_write_file.txt");
  AtomicFileWriter::write_file(path, "payload \x01\x02 bytes\n");
  EXPECT_EQ(read_file(path), "payload \x01\x02 bytes\n");
  AtomicFileWriter::write_file(path, "second");
  EXPECT_EQ(read_file(path), "second");
  fs::remove(path);
}

TEST(AtomicFileWriter, WriteFileThrowsOnUnopenablePath) {
  const std::string path = temp_path("no_such_dir_wf") + "/nested/out.json";
  EXPECT_THROW(AtomicFileWriter::write_file(path, "x"), std::runtime_error);
}

// -- commit observer: fd discipline and crash injection -----------------------
//
// The observer is a plain function pointer (it must be settable from tests
// without allocation), so the capture state is file-static. The RAII guard
// clears it even when an EXPECT fails mid-test.

std::vector<std::pair<CommitStep, std::string>>& observed() {
  static std::vector<std::pair<CommitStep, std::string>> steps;
  return steps;
}
CommitStep g_throw_on = CommitStep::TempFsync;
bool g_throw_armed = false;

void recording_observer(CommitStep step, const std::string& path) {
  observed().emplace_back(step, path);
  if (g_throw_armed && step == g_throw_on)
    throw std::runtime_error("injected crash");
}

struct ObserverGuard {
  explicit ObserverGuard(bool throw_armed = false,
                         CommitStep throw_on = CommitStep::TempFsync) {
    observed().clear();
    g_throw_armed = throw_armed;
    g_throw_on = throw_on;
    set_commit_observer(recording_observer);
  }
  ~ObserverGuard() { set_commit_observer(nullptr); }
};

TEST(AtomicFileWriter, CommitRunsTempFsyncRenameDirFsyncInOrder) {
  const std::string path = temp_path("atomic_observer_order.txt");
  fs::remove(path);
  const ObserverGuard guard;
  AtomicFileWriter writer(path);
  writer.stream() << "payload";
  writer.commit();
  ASSERT_EQ(observed().size(), 3u);
  EXPECT_EQ(observed()[0].first, CommitStep::TempFsync);
  EXPECT_EQ(observed()[0].second, writer.temp_path());
  EXPECT_EQ(observed()[1].first, CommitStep::Rename);
  EXPECT_EQ(observed()[1].second, path);
  EXPECT_EQ(observed()[2].first, CommitStep::DirFsync);
  // The durability step must fsync the *directory* containing the artifact —
  // an fd opened on the parent, not on the file — or the rename itself can
  // vanish in a crash.
  EXPECT_EQ(observed()[2].second, fs::path(path).parent_path().string());
  EXPECT_TRUE(fs::is_directory(observed()[2].second));
  fs::remove(path);
}

TEST(AtomicFileWriter, CrashBeforeRenameLeavesOldContentAndNoTemp) {
  const std::string path = temp_path("atomic_crash_pre_rename.txt");
  AtomicFileWriter::write_file(path, "old");
  const ObserverGuard guard(/*throw_armed=*/true, CommitStep::Rename);
  AtomicFileWriter writer(path);
  writer.stream() << "new";
  EXPECT_THROW(writer.commit(), std::runtime_error);
  EXPECT_EQ(read_file(path), "old");
  EXPECT_FALSE(fs::exists(writer.temp_path()));
  fs::remove(path);
}

TEST(AtomicFileWriter, CrashAfterRenameLeavesNewContentInPlace) {
  const std::string path = temp_path("atomic_crash_post_rename.txt");
  AtomicFileWriter::write_file(path, "old");
  const ObserverGuard guard(/*throw_armed=*/true, CommitStep::DirFsync);
  AtomicFileWriter writer(path);
  writer.stream() << "new";
  // The injected crash hits after the rename: the failure propagates, but
  // the destination already holds the new bytes — never a torn in-between.
  EXPECT_THROW(writer.commit(), std::runtime_error);
  EXPECT_EQ(read_file(path), "new");
  EXPECT_FALSE(fs::exists(writer.temp_path()));
  fs::remove(path);
}

TEST(AtomicFileWriter, FsyncParentDirectoryNotifiesWithTheDirectory) {
  const std::string path = temp_path("atomic_fsync_parent_probe.txt");
  AtomicFileWriter::write_file(path, "x");
  const ObserverGuard guard;
  fsync_parent_directory(path);
  ASSERT_EQ(observed().size(), 1u);
  EXPECT_EQ(observed()[0].first, CommitStep::DirFsync);
  EXPECT_EQ(observed()[0].second, fs::path(path).parent_path().string());
  EXPECT_TRUE(fs::is_directory(observed()[0].second));
  fs::remove(path);
}

}  // namespace
}  // namespace stamp::report
