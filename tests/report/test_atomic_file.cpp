#include "report/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace stamp::report {
namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

std::string temp_path(const std::string& name) {
  return (fs::path(testing::TempDir()) / name).string();
}

TEST(AtomicFileWriter, CommitCreatesFileWithExactContent) {
  const std::string path = temp_path("atomic_commit.txt");
  fs::remove(path);
  {
    AtomicFileWriter writer(path);
    ASSERT_TRUE(writer.ok());
    EXPECT_FALSE(fs::exists(path));  // nothing at the real path before commit
    writer.stream() << "hello\nworld\n";
    writer.commit();
  }
  EXPECT_EQ(read_file(path), "hello\nworld\n");
  fs::remove(path);
}

TEST(AtomicFileWriter, CommitRemovesTempFile) {
  const std::string path = temp_path("atomic_temp_gone.txt");
  std::string temp;
  {
    AtomicFileWriter writer(path);
    temp = writer.temp_path();
    writer.stream() << "x";
    EXPECT_TRUE(fs::exists(temp));
    writer.commit();
  }
  EXPECT_FALSE(fs::exists(temp));
  fs::remove(path);
}

// The crash-safety property: a writer that never commits (the process died,
// an error bailed out) must leave the destination byte-for-byte untouched
// and unlink its temp file.
TEST(AtomicFileWriter, DestructorWithoutCommitLeavesDestinationUntouched) {
  const std::string path = temp_path("atomic_uncommitted.txt");
  AtomicFileWriter::write_file(path, "original");
  std::string temp;
  {
    AtomicFileWriter writer(path);
    temp = writer.temp_path();
    writer.stream() << "torn partial write";
  }
  EXPECT_EQ(read_file(path), "original");
  EXPECT_FALSE(fs::exists(temp));
  fs::remove(path);
}

TEST(AtomicFileWriter, AbortIsIdempotentAndCommitlessOverwriteKeepsOld) {
  const std::string path = temp_path("atomic_abort.txt");
  AtomicFileWriter::write_file(path, "keep me");
  AtomicFileWriter writer(path);
  writer.stream() << "discard me";
  writer.abort();
  writer.abort();  // second abort must be a no-op
  EXPECT_FALSE(fs::exists(writer.temp_path()));
  EXPECT_EQ(read_file(path), "keep me");
  fs::remove(path);
}

TEST(AtomicFileWriter, CommitAtomicallyReplacesExistingFile) {
  const std::string path = temp_path("atomic_replace.txt");
  AtomicFileWriter::write_file(path, "old contents");
  {
    AtomicFileWriter writer(path);
    writer.stream() << "new contents";
    writer.commit();
  }
  EXPECT_EQ(read_file(path), "new contents");
  fs::remove(path);
}

TEST(AtomicFileWriter, UnopenablePathReportsNotOkAndCommitThrows) {
  const std::string path =
      temp_path("no_such_dir_atomic") + "/nested/out.json";
  AtomicFileWriter writer(path);
  EXPECT_FALSE(writer.ok());
  writer.stream() << "goes nowhere";
  EXPECT_THROW(writer.commit(), std::runtime_error);
  EXPECT_FALSE(fs::exists(path));
}

TEST(AtomicFileWriter, WriteFileConvenienceRoundTrips) {
  const std::string path = temp_path("atomic_write_file.txt");
  AtomicFileWriter::write_file(path, "payload \x01\x02 bytes\n");
  EXPECT_EQ(read_file(path), "payload \x01\x02 bytes\n");
  AtomicFileWriter::write_file(path, "second");
  EXPECT_EQ(read_file(path), "second");
  fs::remove(path);
}

TEST(AtomicFileWriter, WriteFileThrowsOnUnopenablePath) {
  const std::string path = temp_path("no_such_dir_wf") + "/nested/out.json";
  EXPECT_THROW(AtomicFileWriter::write_file(path, "x"), std::runtime_error);
}

}  // namespace
}  // namespace stamp::report
