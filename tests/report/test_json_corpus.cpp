/// \file test_json_corpus.cpp
/// \brief Hostile-input corpus for the JSON parser: every malformed document
///        must raise JsonParseError — never crash, hang, or return garbage —
///        because stamp_gate feeds it externally produced artifacts.

#include "report/json_parse.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace stamp::report {
namespace {

/// Exercise one input end-to-end: either it parses or it throws
/// JsonParseError. Anything else (another exception type, UB caught by a
/// sanitizer) fails the test.
bool parses(const std::string& text) {
  try {
    (void)JsonValue::parse(text);
    return true;
  } catch (const JsonParseError&) {
    return false;
  }
}

TEST(JsonCorpus, TruncationsOfAValidDocumentNeverCrash) {
  const std::string doc =
      R"({"schema":"stamp-sweep/v1","points":[{"D":1.5,"ok":true},null]})";
  // Every proper prefix is malformed; every one must throw cleanly.
  for (std::size_t len = 0; len < doc.size(); ++len)
    EXPECT_FALSE(parses(doc.substr(0, len))) << "prefix length " << len;
  EXPECT_TRUE(parses(doc));
}

TEST(JsonCorpus, DeepNestingIsRejectedNotStackOverflowed) {
  // 100k unclosed '[' would recurse off the stack without the depth cap.
  const std::string deep_open(100000, '[');
  EXPECT_FALSE(parses(deep_open));

  std::string deep_closed(50000, '[');
  deep_closed.append(50000, ']');
  EXPECT_FALSE(parses(deep_closed));

  std::string deep_objects;
  for (int i = 0; i < 10000; ++i) deep_objects += R"({"a":)";
  deep_objects += "1";
  for (int i = 0; i < 10000; ++i) deep_objects += "}";
  EXPECT_FALSE(parses(deep_objects));

  // Nesting under the cap stays accepted.
  std::string shallow(200, '[');
  shallow.append(200, ']');
  EXPECT_TRUE(parses(shallow));
}

TEST(JsonCorpus, NonFiniteNumberSpellingsAreRejected) {
  for (const char* bad : {"NaN", "nan", "Infinity", "-Infinity", "inf",
                          "-inf", "1e999999", R"({"x": NaN})",
                          R"([Infinity])"}) {
    EXPECT_FALSE(parses(bad)) << bad;
  }
}

TEST(JsonCorpus, DuplicateKeysParseWithFirstWins) {
  // Duplicate keys are legal JSON (RFC 8259 leaves semantics open); the
  // parser preserves both members and find() returns the first.
  const JsonValue v = JsonValue::parse(R"({"k": 1, "k": 2})");
  ASSERT_EQ(v.members().size(), 2u);
  EXPECT_DOUBLE_EQ(v.find("k")->as_number(), 1.0);
}

TEST(JsonCorpus, MalformedEscapesAndStringsAreRejected) {
  for (const char* bad :
       {R"("\q")", R"("\u12")", R"("\u12G4")", R"("\)", R"("\u)",
        "\"unterminated", R"({"a": "b)", R"(")"}) {
    EXPECT_FALSE(parses(bad)) << bad;
  }
}

TEST(JsonCorpus, StructuralGarbageIsRejected) {
  for (const char* bad :
       {"", "   ", ",", ":", "}", "]", "{]", "[}", "[,]", "{:1}", "[1 2]",
        R"({"a": 1 "b": 2})", R"({42: "numeric key"})", "[1]]", "{}{}",
        "truefalse", "nul", "+1", "--1", "0x10", "'single'"}) {
    EXPECT_FALSE(parses(bad)) << bad;
  }
}

TEST(JsonCorpus, BinaryGarbageNeverCrashes) {
  // Every single byte value as a one-byte document, plus a few longer blobs.
  for (int b = 0; b < 256; ++b) {
    const std::string one(1, static_cast<char>(b));
    (void)parses(one);  // must not crash; most throw, digits parse
  }
  const std::vector<std::string> blobs = {
      std::string("\x00\x01\x02", 3),
      std::string(1024, '\xFF'),
      "{\"k\": \"\x80\x81\"}",  // raw high bytes inside a string
  };
  for (const std::string& blob : blobs) (void)parses(blob);
}

TEST(JsonCorpus, HugeFlatDocumentsStayLinear) {
  // Breadth is fine (no recursion involved): a 50k-element flat array.
  std::string flat = "[0";
  for (int i = 1; i < 50000; ++i) {
    flat += ',';
    flat += std::to_string(i % 10);
  }
  flat += ']';
  const JsonValue v = JsonValue::parse(flat);
  EXPECT_EQ(v.items().size(), 50000u);
}

}  // namespace
}  // namespace stamp::report
