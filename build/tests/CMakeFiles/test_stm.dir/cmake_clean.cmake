file(REMOVE_RECURSE
  "CMakeFiles/test_stm.dir/stm/test_contention.cpp.o"
  "CMakeFiles/test_stm.dir/stm/test_contention.cpp.o.d"
  "CMakeFiles/test_stm.dir/stm/test_stm_concurrent.cpp.o"
  "CMakeFiles/test_stm.dir/stm/test_stm_concurrent.cpp.o.d"
  "CMakeFiles/test_stm.dir/stm/test_tarray.cpp.o"
  "CMakeFiles/test_stm.dir/stm/test_tarray.cpp.o.d"
  "CMakeFiles/test_stm.dir/stm/test_transaction.cpp.o"
  "CMakeFiles/test_stm.dir/stm/test_transaction.cpp.o.d"
  "CMakeFiles/test_stm.dir/stm/test_versioned_lock.cpp.o"
  "CMakeFiles/test_stm.dir/stm/test_versioned_lock.cpp.o.d"
  "test_stm"
  "test_stm.pdb"
  "test_stm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
