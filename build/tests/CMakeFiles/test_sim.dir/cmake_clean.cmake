file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/machine/test_gating.cpp.o"
  "CMakeFiles/test_sim.dir/machine/test_gating.cpp.o.d"
  "CMakeFiles/test_sim.dir/machine/test_governor.cpp.o"
  "CMakeFiles/test_sim.dir/machine/test_governor.cpp.o.d"
  "CMakeFiles/test_sim.dir/machine/test_power.cpp.o"
  "CMakeFiles/test_sim.dir/machine/test_power.cpp.o.d"
  "CMakeFiles/test_sim.dir/machine/test_simulator.cpp.o"
  "CMakeFiles/test_sim.dir/machine/test_simulator.cpp.o.d"
  "CMakeFiles/test_sim.dir/machine/test_simulator_fuzz.cpp.o"
  "CMakeFiles/test_sim.dir/machine/test_simulator_fuzz.cpp.o.d"
  "CMakeFiles/test_sim.dir/machine/test_trace.cpp.o"
  "CMakeFiles/test_sim.dir/machine/test_trace.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_engine.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_engine.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
