file(REMOVE_RECURSE
  "CMakeFiles/test_msg.dir/msg/test_bounded_mailbox.cpp.o"
  "CMakeFiles/test_msg.dir/msg/test_bounded_mailbox.cpp.o.d"
  "CMakeFiles/test_msg.dir/msg/test_collectives.cpp.o"
  "CMakeFiles/test_msg.dir/msg/test_collectives.cpp.o.d"
  "CMakeFiles/test_msg.dir/msg/test_communicator.cpp.o"
  "CMakeFiles/test_msg.dir/msg/test_communicator.cpp.o.d"
  "CMakeFiles/test_msg.dir/msg/test_mailbox.cpp.o"
  "CMakeFiles/test_msg.dir/msg/test_mailbox.cpp.o.d"
  "test_msg"
  "test_msg.pdb"
  "test_msg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
