file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_analysis.cpp.o"
  "CMakeFiles/test_core.dir/core/test_analysis.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cost_model.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cost_model.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_counters.cpp.o"
  "CMakeFiles/test_core.dir/core/test_counters.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_crossover.cpp.o"
  "CMakeFiles/test_core.dir/core/test_crossover.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_envelope.cpp.o"
  "CMakeFiles/test_core.dir/core/test_envelope.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_metrics.cpp.o"
  "CMakeFiles/test_core.dir/core/test_metrics.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_params.cpp.o"
  "CMakeFiles/test_core.dir/core/test_params.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_placement.cpp.o"
  "CMakeFiles/test_core.dir/core/test_placement.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_process.cpp.o"
  "CMakeFiles/test_core.dir/core/test_process.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_spec.cpp.o"
  "CMakeFiles/test_core.dir/core/test_spec.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
