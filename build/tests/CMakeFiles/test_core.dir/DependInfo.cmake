
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_analysis.cpp" "tests/CMakeFiles/test_core.dir/core/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_analysis.cpp.o.d"
  "/root/repo/tests/core/test_cost_model.cpp" "tests/CMakeFiles/test_core.dir/core/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_cost_model.cpp.o.d"
  "/root/repo/tests/core/test_counters.cpp" "tests/CMakeFiles/test_core.dir/core/test_counters.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_counters.cpp.o.d"
  "/root/repo/tests/core/test_crossover.cpp" "tests/CMakeFiles/test_core.dir/core/test_crossover.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_crossover.cpp.o.d"
  "/root/repo/tests/core/test_envelope.cpp" "tests/CMakeFiles/test_core.dir/core/test_envelope.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_envelope.cpp.o.d"
  "/root/repo/tests/core/test_metrics.cpp" "tests/CMakeFiles/test_core.dir/core/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_metrics.cpp.o.d"
  "/root/repo/tests/core/test_params.cpp" "tests/CMakeFiles/test_core.dir/core/test_params.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_params.cpp.o.d"
  "/root/repo/tests/core/test_placement.cpp" "tests/CMakeFiles/test_core.dir/core/test_placement.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_placement.cpp.o.d"
  "/root/repo/tests/core/test_process.cpp" "tests/CMakeFiles/test_core.dir/core/test_process.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_process.cpp.o.d"
  "/root/repo/tests/core/test_spec.cpp" "tests/CMakeFiles/test_core.dir/core/test_spec.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/stamp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/stamp_models.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/stamp_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/stamp_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/stamp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stamp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/stamp_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
