file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/test_model_vs_runtime.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_model_vs_runtime.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_model_vs_sim.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_model_vs_sim.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_multichip.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_multichip.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_nested.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_nested.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_spec_vs_runtime.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_spec_vs_runtime.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_table1.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_table1.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
