file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/runtime/test_barrier.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_barrier.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_executor.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_executor.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_instrument.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_instrument.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_placement_map.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_placement_map.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_quiescence.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_quiescence.cpp.o.d"
  "test_runtime"
  "test_runtime.pdb"
  "test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
