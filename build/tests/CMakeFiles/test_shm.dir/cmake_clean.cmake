file(REMOVE_RECURSE
  "CMakeFiles/test_shm.dir/shm/test_shared_region.cpp.o"
  "CMakeFiles/test_shm.dir/shm/test_shared_region.cpp.o.d"
  "CMakeFiles/test_shm.dir/shm/test_swmr_matrix.cpp.o"
  "CMakeFiles/test_shm.dir/shm/test_swmr_matrix.cpp.o.d"
  "test_shm"
  "test_shm.pdb"
  "test_shm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
