
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/algo/test_airline.cpp" "tests/CMakeFiles/test_algo.dir/algo/test_airline.cpp.o" "gcc" "tests/CMakeFiles/test_algo.dir/algo/test_airline.cpp.o.d"
  "/root/repo/tests/algo/test_apsp.cpp" "tests/CMakeFiles/test_algo.dir/algo/test_apsp.cpp.o" "gcc" "tests/CMakeFiles/test_algo.dir/algo/test_apsp.cpp.o.d"
  "/root/repo/tests/algo/test_banking.cpp" "tests/CMakeFiles/test_algo.dir/algo/test_banking.cpp.o" "gcc" "tests/CMakeFiles/test_algo.dir/algo/test_banking.cpp.o.d"
  "/root/repo/tests/algo/test_bfs.cpp" "tests/CMakeFiles/test_algo.dir/algo/test_bfs.cpp.o" "gcc" "tests/CMakeFiles/test_algo.dir/algo/test_bfs.cpp.o.d"
  "/root/repo/tests/algo/test_gauss_seidel.cpp" "tests/CMakeFiles/test_algo.dir/algo/test_gauss_seidel.cpp.o" "gcc" "tests/CMakeFiles/test_algo.dir/algo/test_gauss_seidel.cpp.o.d"
  "/root/repo/tests/algo/test_histogram.cpp" "tests/CMakeFiles/test_algo.dir/algo/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/test_algo.dir/algo/test_histogram.cpp.o.d"
  "/root/repo/tests/algo/test_jacobi.cpp" "tests/CMakeFiles/test_algo.dir/algo/test_jacobi.cpp.o" "gcc" "tests/CMakeFiles/test_algo.dir/algo/test_jacobi.cpp.o.d"
  "/root/repo/tests/algo/test_kmeans.cpp" "tests/CMakeFiles/test_algo.dir/algo/test_kmeans.cpp.o" "gcc" "tests/CMakeFiles/test_algo.dir/algo/test_kmeans.cpp.o.d"
  "/root/repo/tests/algo/test_matmul.cpp" "tests/CMakeFiles/test_algo.dir/algo/test_matmul.cpp.o" "gcc" "tests/CMakeFiles/test_algo.dir/algo/test_matmul.cpp.o.d"
  "/root/repo/tests/algo/test_pagerank.cpp" "tests/CMakeFiles/test_algo.dir/algo/test_pagerank.cpp.o" "gcc" "tests/CMakeFiles/test_algo.dir/algo/test_pagerank.cpp.o.d"
  "/root/repo/tests/algo/test_prefix_sum.cpp" "tests/CMakeFiles/test_algo.dir/algo/test_prefix_sum.cpp.o" "gcc" "tests/CMakeFiles/test_algo.dir/algo/test_prefix_sum.cpp.o.d"
  "/root/repo/tests/algo/test_reduce.cpp" "tests/CMakeFiles/test_algo.dir/algo/test_reduce.cpp.o" "gcc" "tests/CMakeFiles/test_algo.dir/algo/test_reduce.cpp.o.d"
  "/root/repo/tests/algo/test_replicated_db.cpp" "tests/CMakeFiles/test_algo.dir/algo/test_replicated_db.cpp.o" "gcc" "tests/CMakeFiles/test_algo.dir/algo/test_replicated_db.cpp.o.d"
  "/root/repo/tests/algo/test_sample_sort.cpp" "tests/CMakeFiles/test_algo.dir/algo/test_sample_sort.cpp.o" "gcc" "tests/CMakeFiles/test_algo.dir/algo/test_sample_sort.cpp.o.d"
  "/root/repo/tests/algo/test_stencil.cpp" "tests/CMakeFiles/test_algo.dir/algo/test_stencil.cpp.o" "gcc" "tests/CMakeFiles/test_algo.dir/algo/test_stencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/stamp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/stamp_models.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/stamp_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/stamp_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/stamp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stamp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/stamp_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
