# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_jacobi_solver "/root/repo/build/examples/jacobi_solver" "16" "4")
set_tests_properties(example_jacobi_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bank_server "/root/repo/build/examples/bank_server" "4" "500" "0.3")
set_tests_properties(example_bank_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_flight_booking "/root/repo/build/examples/flight_booking" "4" "300" "100")
set_tests_properties(example_flight_booking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_apsp_roadmap "/root/repo/build/examples/apsp_roadmap" "10" "0.3")
set_tests_properties(example_apsp_roadmap PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_power_advisor "/root/repo/build/examples/power_advisor" "niagara" "EDP")
set_tests_properties(example_power_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_model_explorer "/root/repo/build/examples/model_explorer" "12")
set_tests_properties(example_model_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat_monitor "/root/repo/build/examples/heat_monitor" "24" "4" "100")
set_tests_properties(example_heat_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat_monitor_json "/root/repo/build/examples/heat_monitor" "16" "2" "50" "--json")
set_tests_properties(example_heat_monitor_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
