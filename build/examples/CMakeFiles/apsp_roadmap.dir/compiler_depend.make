# Empty compiler generated dependencies file for apsp_roadmap.
# This may be replaced when dependencies are built.
