file(REMOVE_RECURSE
  "CMakeFiles/flight_booking.dir/flight_booking.cpp.o"
  "CMakeFiles/flight_booking.dir/flight_booking.cpp.o.d"
  "flight_booking"
  "flight_booking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flight_booking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
