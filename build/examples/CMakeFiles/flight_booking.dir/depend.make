# Empty dependencies file for flight_booking.
# This may be replaced when dependencies are built.
