file(REMOVE_RECURSE
  "CMakeFiles/heat_monitor.dir/heat_monitor.cpp.o"
  "CMakeFiles/heat_monitor.dir/heat_monitor.cpp.o.d"
  "heat_monitor"
  "heat_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
