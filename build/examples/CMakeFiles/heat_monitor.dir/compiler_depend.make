# Empty compiler generated dependencies file for heat_monitor.
# This may be replaced when dependencies are built.
