
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/jacobi_solver.cpp" "examples/CMakeFiles/jacobi_solver.dir/jacobi_solver.cpp.o" "gcc" "examples/CMakeFiles/jacobi_solver.dir/jacobi_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/stamp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/stamp_models.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/stamp_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/stamp_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/stamp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stamp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/stamp_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
