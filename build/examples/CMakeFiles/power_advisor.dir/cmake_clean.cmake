file(REMOVE_RECURSE
  "CMakeFiles/power_advisor.dir/power_advisor.cpp.o"
  "CMakeFiles/power_advisor.dir/power_advisor.cpp.o.d"
  "power_advisor"
  "power_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
