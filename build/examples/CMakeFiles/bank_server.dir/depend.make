# Empty dependencies file for bank_server.
# This may be replaced when dependencies are built.
