file(REMOVE_RECURSE
  "CMakeFiles/bank_server.dir/bank_server.cpp.o"
  "CMakeFiles/bank_server.dir/bank_server.cpp.o.d"
  "bank_server"
  "bank_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
