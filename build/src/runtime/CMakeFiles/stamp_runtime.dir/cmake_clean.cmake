file(REMOVE_RECURSE
  "CMakeFiles/stamp_runtime.dir/executor.cpp.o"
  "CMakeFiles/stamp_runtime.dir/executor.cpp.o.d"
  "CMakeFiles/stamp_runtime.dir/instrument.cpp.o"
  "CMakeFiles/stamp_runtime.dir/instrument.cpp.o.d"
  "CMakeFiles/stamp_runtime.dir/placement_map.cpp.o"
  "CMakeFiles/stamp_runtime.dir/placement_map.cpp.o.d"
  "CMakeFiles/stamp_runtime.dir/profile.cpp.o"
  "CMakeFiles/stamp_runtime.dir/profile.cpp.o.d"
  "libstamp_runtime.a"
  "libstamp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stamp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
