
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/executor.cpp" "src/runtime/CMakeFiles/stamp_runtime.dir/executor.cpp.o" "gcc" "src/runtime/CMakeFiles/stamp_runtime.dir/executor.cpp.o.d"
  "/root/repo/src/runtime/instrument.cpp" "src/runtime/CMakeFiles/stamp_runtime.dir/instrument.cpp.o" "gcc" "src/runtime/CMakeFiles/stamp_runtime.dir/instrument.cpp.o.d"
  "/root/repo/src/runtime/placement_map.cpp" "src/runtime/CMakeFiles/stamp_runtime.dir/placement_map.cpp.o" "gcc" "src/runtime/CMakeFiles/stamp_runtime.dir/placement_map.cpp.o.d"
  "/root/repo/src/runtime/profile.cpp" "src/runtime/CMakeFiles/stamp_runtime.dir/profile.cpp.o" "gcc" "src/runtime/CMakeFiles/stamp_runtime.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stamp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
