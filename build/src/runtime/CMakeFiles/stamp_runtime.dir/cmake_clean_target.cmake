file(REMOVE_RECURSE
  "libstamp_runtime.a"
)
