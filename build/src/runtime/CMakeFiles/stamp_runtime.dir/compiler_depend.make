# Empty compiler generated dependencies file for stamp_runtime.
# This may be replaced when dependencies are built.
