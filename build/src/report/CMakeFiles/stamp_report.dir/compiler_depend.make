# Empty compiler generated dependencies file for stamp_report.
# This may be replaced when dependencies are built.
