file(REMOVE_RECURSE
  "libstamp_report.a"
)
