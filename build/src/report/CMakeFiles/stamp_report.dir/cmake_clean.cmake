file(REMOVE_RECURSE
  "CMakeFiles/stamp_report.dir/json.cpp.o"
  "CMakeFiles/stamp_report.dir/json.cpp.o.d"
  "CMakeFiles/stamp_report.dir/stats.cpp.o"
  "CMakeFiles/stamp_report.dir/stats.cpp.o.d"
  "CMakeFiles/stamp_report.dir/table.cpp.o"
  "CMakeFiles/stamp_report.dir/table.cpp.o.d"
  "libstamp_report.a"
  "libstamp_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stamp_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
