file(REMOVE_RECURSE
  "libstamp_algo.a"
)
