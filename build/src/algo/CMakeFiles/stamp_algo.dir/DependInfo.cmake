
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/airline.cpp" "src/algo/CMakeFiles/stamp_algo.dir/airline.cpp.o" "gcc" "src/algo/CMakeFiles/stamp_algo.dir/airline.cpp.o.d"
  "/root/repo/src/algo/apsp.cpp" "src/algo/CMakeFiles/stamp_algo.dir/apsp.cpp.o" "gcc" "src/algo/CMakeFiles/stamp_algo.dir/apsp.cpp.o.d"
  "/root/repo/src/algo/banking.cpp" "src/algo/CMakeFiles/stamp_algo.dir/banking.cpp.o" "gcc" "src/algo/CMakeFiles/stamp_algo.dir/banking.cpp.o.d"
  "/root/repo/src/algo/bfs.cpp" "src/algo/CMakeFiles/stamp_algo.dir/bfs.cpp.o" "gcc" "src/algo/CMakeFiles/stamp_algo.dir/bfs.cpp.o.d"
  "/root/repo/src/algo/gauss_seidel.cpp" "src/algo/CMakeFiles/stamp_algo.dir/gauss_seidel.cpp.o" "gcc" "src/algo/CMakeFiles/stamp_algo.dir/gauss_seidel.cpp.o.d"
  "/root/repo/src/algo/histogram.cpp" "src/algo/CMakeFiles/stamp_algo.dir/histogram.cpp.o" "gcc" "src/algo/CMakeFiles/stamp_algo.dir/histogram.cpp.o.d"
  "/root/repo/src/algo/jacobi.cpp" "src/algo/CMakeFiles/stamp_algo.dir/jacobi.cpp.o" "gcc" "src/algo/CMakeFiles/stamp_algo.dir/jacobi.cpp.o.d"
  "/root/repo/src/algo/kmeans.cpp" "src/algo/CMakeFiles/stamp_algo.dir/kmeans.cpp.o" "gcc" "src/algo/CMakeFiles/stamp_algo.dir/kmeans.cpp.o.d"
  "/root/repo/src/algo/matmul.cpp" "src/algo/CMakeFiles/stamp_algo.dir/matmul.cpp.o" "gcc" "src/algo/CMakeFiles/stamp_algo.dir/matmul.cpp.o.d"
  "/root/repo/src/algo/pagerank.cpp" "src/algo/CMakeFiles/stamp_algo.dir/pagerank.cpp.o" "gcc" "src/algo/CMakeFiles/stamp_algo.dir/pagerank.cpp.o.d"
  "/root/repo/src/algo/prefix_sum.cpp" "src/algo/CMakeFiles/stamp_algo.dir/prefix_sum.cpp.o" "gcc" "src/algo/CMakeFiles/stamp_algo.dir/prefix_sum.cpp.o.d"
  "/root/repo/src/algo/reduce.cpp" "src/algo/CMakeFiles/stamp_algo.dir/reduce.cpp.o" "gcc" "src/algo/CMakeFiles/stamp_algo.dir/reduce.cpp.o.d"
  "/root/repo/src/algo/replicated_db.cpp" "src/algo/CMakeFiles/stamp_algo.dir/replicated_db.cpp.o" "gcc" "src/algo/CMakeFiles/stamp_algo.dir/replicated_db.cpp.o.d"
  "/root/repo/src/algo/sample_sort.cpp" "src/algo/CMakeFiles/stamp_algo.dir/sample_sort.cpp.o" "gcc" "src/algo/CMakeFiles/stamp_algo.dir/sample_sort.cpp.o.d"
  "/root/repo/src/algo/stencil.cpp" "src/algo/CMakeFiles/stamp_algo.dir/stencil.cpp.o" "gcc" "src/algo/CMakeFiles/stamp_algo.dir/stencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stamp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/stamp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/stamp_stm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
