# Empty compiler generated dependencies file for stamp_algo.
# This may be replaced when dependencies are built.
