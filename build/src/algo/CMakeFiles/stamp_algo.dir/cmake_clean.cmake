file(REMOVE_RECURSE
  "CMakeFiles/stamp_algo.dir/airline.cpp.o"
  "CMakeFiles/stamp_algo.dir/airline.cpp.o.d"
  "CMakeFiles/stamp_algo.dir/apsp.cpp.o"
  "CMakeFiles/stamp_algo.dir/apsp.cpp.o.d"
  "CMakeFiles/stamp_algo.dir/banking.cpp.o"
  "CMakeFiles/stamp_algo.dir/banking.cpp.o.d"
  "CMakeFiles/stamp_algo.dir/bfs.cpp.o"
  "CMakeFiles/stamp_algo.dir/bfs.cpp.o.d"
  "CMakeFiles/stamp_algo.dir/gauss_seidel.cpp.o"
  "CMakeFiles/stamp_algo.dir/gauss_seidel.cpp.o.d"
  "CMakeFiles/stamp_algo.dir/histogram.cpp.o"
  "CMakeFiles/stamp_algo.dir/histogram.cpp.o.d"
  "CMakeFiles/stamp_algo.dir/jacobi.cpp.o"
  "CMakeFiles/stamp_algo.dir/jacobi.cpp.o.d"
  "CMakeFiles/stamp_algo.dir/kmeans.cpp.o"
  "CMakeFiles/stamp_algo.dir/kmeans.cpp.o.d"
  "CMakeFiles/stamp_algo.dir/matmul.cpp.o"
  "CMakeFiles/stamp_algo.dir/matmul.cpp.o.d"
  "CMakeFiles/stamp_algo.dir/pagerank.cpp.o"
  "CMakeFiles/stamp_algo.dir/pagerank.cpp.o.d"
  "CMakeFiles/stamp_algo.dir/prefix_sum.cpp.o"
  "CMakeFiles/stamp_algo.dir/prefix_sum.cpp.o.d"
  "CMakeFiles/stamp_algo.dir/reduce.cpp.o"
  "CMakeFiles/stamp_algo.dir/reduce.cpp.o.d"
  "CMakeFiles/stamp_algo.dir/replicated_db.cpp.o"
  "CMakeFiles/stamp_algo.dir/replicated_db.cpp.o.d"
  "CMakeFiles/stamp_algo.dir/sample_sort.cpp.o"
  "CMakeFiles/stamp_algo.dir/sample_sort.cpp.o.d"
  "CMakeFiles/stamp_algo.dir/stencil.cpp.o"
  "CMakeFiles/stamp_algo.dir/stencil.cpp.o.d"
  "libstamp_algo.a"
  "libstamp_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stamp_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
