
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stm/contention.cpp" "src/stm/CMakeFiles/stamp_stm.dir/contention.cpp.o" "gcc" "src/stm/CMakeFiles/stamp_stm.dir/contention.cpp.o.d"
  "/root/repo/src/stm/transaction.cpp" "src/stm/CMakeFiles/stamp_stm.dir/transaction.cpp.o" "gcc" "src/stm/CMakeFiles/stamp_stm.dir/transaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stamp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/stamp_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
