# Empty dependencies file for stamp_stm.
# This may be replaced when dependencies are built.
