file(REMOVE_RECURSE
  "libstamp_stm.a"
)
