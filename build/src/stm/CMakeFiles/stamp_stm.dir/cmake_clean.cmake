file(REMOVE_RECURSE
  "CMakeFiles/stamp_stm.dir/contention.cpp.o"
  "CMakeFiles/stamp_stm.dir/contention.cpp.o.d"
  "CMakeFiles/stamp_stm.dir/transaction.cpp.o"
  "CMakeFiles/stamp_stm.dir/transaction.cpp.o.d"
  "libstamp_stm.a"
  "libstamp_stm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stamp_stm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
