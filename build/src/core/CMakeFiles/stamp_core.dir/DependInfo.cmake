
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/stamp_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/stamp_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/attributes.cpp" "src/core/CMakeFiles/stamp_core.dir/attributes.cpp.o" "gcc" "src/core/CMakeFiles/stamp_core.dir/attributes.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/stamp_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/stamp_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/counters.cpp" "src/core/CMakeFiles/stamp_core.dir/counters.cpp.o" "gcc" "src/core/CMakeFiles/stamp_core.dir/counters.cpp.o.d"
  "/root/repo/src/core/crossover.cpp" "src/core/CMakeFiles/stamp_core.dir/crossover.cpp.o" "gcc" "src/core/CMakeFiles/stamp_core.dir/crossover.cpp.o.d"
  "/root/repo/src/core/envelope.cpp" "src/core/CMakeFiles/stamp_core.dir/envelope.cpp.o" "gcc" "src/core/CMakeFiles/stamp_core.dir/envelope.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/stamp_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/stamp_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/stamp_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/stamp_core.dir/params.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/stamp_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/stamp_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/process.cpp" "src/core/CMakeFiles/stamp_core.dir/process.cpp.o" "gcc" "src/core/CMakeFiles/stamp_core.dir/process.cpp.o.d"
  "/root/repo/src/core/spec.cpp" "src/core/CMakeFiles/stamp_core.dir/spec.cpp.o" "gcc" "src/core/CMakeFiles/stamp_core.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
