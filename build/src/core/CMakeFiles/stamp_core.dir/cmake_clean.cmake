file(REMOVE_RECURSE
  "CMakeFiles/stamp_core.dir/analysis.cpp.o"
  "CMakeFiles/stamp_core.dir/analysis.cpp.o.d"
  "CMakeFiles/stamp_core.dir/attributes.cpp.o"
  "CMakeFiles/stamp_core.dir/attributes.cpp.o.d"
  "CMakeFiles/stamp_core.dir/cost_model.cpp.o"
  "CMakeFiles/stamp_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/stamp_core.dir/counters.cpp.o"
  "CMakeFiles/stamp_core.dir/counters.cpp.o.d"
  "CMakeFiles/stamp_core.dir/crossover.cpp.o"
  "CMakeFiles/stamp_core.dir/crossover.cpp.o.d"
  "CMakeFiles/stamp_core.dir/envelope.cpp.o"
  "CMakeFiles/stamp_core.dir/envelope.cpp.o.d"
  "CMakeFiles/stamp_core.dir/metrics.cpp.o"
  "CMakeFiles/stamp_core.dir/metrics.cpp.o.d"
  "CMakeFiles/stamp_core.dir/params.cpp.o"
  "CMakeFiles/stamp_core.dir/params.cpp.o.d"
  "CMakeFiles/stamp_core.dir/placement.cpp.o"
  "CMakeFiles/stamp_core.dir/placement.cpp.o.d"
  "CMakeFiles/stamp_core.dir/process.cpp.o"
  "CMakeFiles/stamp_core.dir/process.cpp.o.d"
  "CMakeFiles/stamp_core.dir/spec.cpp.o"
  "CMakeFiles/stamp_core.dir/spec.cpp.o.d"
  "libstamp_core.a"
  "libstamp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stamp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
