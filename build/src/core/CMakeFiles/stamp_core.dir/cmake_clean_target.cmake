file(REMOVE_RECURSE
  "libstamp_core.a"
)
