# Empty dependencies file for stamp_core.
# This may be replaced when dependencies are built.
