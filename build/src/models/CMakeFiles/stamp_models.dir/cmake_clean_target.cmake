file(REMOVE_RECURSE
  "libstamp_models.a"
)
