# Empty dependencies file for stamp_models.
# This may be replaced when dependencies are built.
