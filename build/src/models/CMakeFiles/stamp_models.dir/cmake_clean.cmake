file(REMOVE_RECURSE
  "CMakeFiles/stamp_models.dir/models.cpp.o"
  "CMakeFiles/stamp_models.dir/models.cpp.o.d"
  "CMakeFiles/stamp_models.dir/speedup.cpp.o"
  "CMakeFiles/stamp_models.dir/speedup.cpp.o.d"
  "libstamp_models.a"
  "libstamp_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stamp_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
