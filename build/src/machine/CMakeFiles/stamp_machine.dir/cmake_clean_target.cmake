file(REMOVE_RECURSE
  "libstamp_machine.a"
)
