file(REMOVE_RECURSE
  "CMakeFiles/stamp_machine.dir/governor.cpp.o"
  "CMakeFiles/stamp_machine.dir/governor.cpp.o.d"
  "CMakeFiles/stamp_machine.dir/power.cpp.o"
  "CMakeFiles/stamp_machine.dir/power.cpp.o.d"
  "CMakeFiles/stamp_machine.dir/simulator.cpp.o"
  "CMakeFiles/stamp_machine.dir/simulator.cpp.o.d"
  "CMakeFiles/stamp_machine.dir/trace.cpp.o"
  "CMakeFiles/stamp_machine.dir/trace.cpp.o.d"
  "libstamp_machine.a"
  "libstamp_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stamp_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
