# Empty compiler generated dependencies file for stamp_machine.
# This may be replaced when dependencies are built.
