
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/governor.cpp" "src/machine/CMakeFiles/stamp_machine.dir/governor.cpp.o" "gcc" "src/machine/CMakeFiles/stamp_machine.dir/governor.cpp.o.d"
  "/root/repo/src/machine/power.cpp" "src/machine/CMakeFiles/stamp_machine.dir/power.cpp.o" "gcc" "src/machine/CMakeFiles/stamp_machine.dir/power.cpp.o.d"
  "/root/repo/src/machine/simulator.cpp" "src/machine/CMakeFiles/stamp_machine.dir/simulator.cpp.o" "gcc" "src/machine/CMakeFiles/stamp_machine.dir/simulator.cpp.o.d"
  "/root/repo/src/machine/trace.cpp" "src/machine/CMakeFiles/stamp_machine.dir/trace.cpp.o" "gcc" "src/machine/CMakeFiles/stamp_machine.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stamp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/stamp_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
