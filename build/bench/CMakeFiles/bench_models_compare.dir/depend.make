# Empty dependencies file for bench_models_compare.
# This may be replaced when dependencies are built.
