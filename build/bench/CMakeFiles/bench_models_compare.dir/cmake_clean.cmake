file(REMOVE_RECURSE
  "CMakeFiles/bench_models_compare.dir/bench_models_compare.cpp.o"
  "CMakeFiles/bench_models_compare.dir/bench_models_compare.cpp.o.d"
  "bench_models_compare"
  "bench_models_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_models_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
