file(REMOVE_RECURSE
  "CMakeFiles/bench_power_wall.dir/bench_power_wall.cpp.o"
  "CMakeFiles/bench_power_wall.dir/bench_power_wall.cpp.o.d"
  "bench_power_wall"
  "bench_power_wall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_power_wall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
