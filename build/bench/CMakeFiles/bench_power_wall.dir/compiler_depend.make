# Empty compiler generated dependencies file for bench_power_wall.
# This may be replaced when dependencies are built.
