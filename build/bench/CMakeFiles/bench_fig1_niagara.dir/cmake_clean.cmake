file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_niagara.dir/bench_fig1_niagara.cpp.o"
  "CMakeFiles/bench_fig1_niagara.dir/bench_fig1_niagara.cpp.o.d"
  "bench_fig1_niagara"
  "bench_fig1_niagara.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_niagara.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
