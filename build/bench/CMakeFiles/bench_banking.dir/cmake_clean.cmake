file(REMOVE_RECURSE
  "CMakeFiles/bench_banking.dir/bench_banking.cpp.o"
  "CMakeFiles/bench_banking.dir/bench_banking.cpp.o.d"
  "bench_banking"
  "bench_banking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_banking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
