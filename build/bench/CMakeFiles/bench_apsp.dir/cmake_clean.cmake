file(REMOVE_RECURSE
  "CMakeFiles/bench_apsp.dir/bench_apsp.cpp.o"
  "CMakeFiles/bench_apsp.dir/bench_apsp.cpp.o.d"
  "bench_apsp"
  "bench_apsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_apsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
