# Empty dependencies file for bench_airline.
# This may be replaced when dependencies are built.
