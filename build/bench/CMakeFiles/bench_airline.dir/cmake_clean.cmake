file(REMOVE_RECURSE
  "CMakeFiles/bench_airline.dir/bench_airline.cpp.o"
  "CMakeFiles/bench_airline.dir/bench_airline.cpp.o.d"
  "bench_airline"
  "bench_airline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_airline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
