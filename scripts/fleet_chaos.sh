#!/usr/bin/env bash
# Distributed-sweep identity and chaos, from the outside: real stamp_serve
# worker processes, real sockets, the stamp_fleet coordinator.
#
# Phase A (identity): stamp_fleet in spawn mode at 1, 2 and 4 workers must
# produce an artifact byte-identical (`cmp`) to a single-node stamp_sweep of
# the same canonical grid.
#
# Phase B (worker kill): two attached workers evaluate the grid under an
# armed transit-delay fault (so shards take long enough for the kill to
# land); one worker is SIGKILLed mid-sweep. The coordinator must declare it
# dead, reassign its shards to the survivor, and the final artifact must
# still be byte-identical to the single-node reference.
#
# Phase C (coordinator kill + resume): the coordinator itself is SIGTERMed
# mid-sweep (exit 3, journal preserved), then rerun with --resume against
# the same workers. Only missing points are re-dispatched, and the merged
# artifact must again match the reference byte for byte.
#
# Usage: scripts/fleet_chaos.sh [BUILD_DIR]
#   BUILD_DIR defaults to "build". The caller (CI) wraps this script in
#   `timeout`; every client here has bounded retries and the workers are
#   killed hard on exit.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SWEEP="$BUILD_DIR/tools/stamp_sweep"
FLEET="$BUILD_DIR/tools/stamp_fleet"
SERVE="$BUILD_DIR/tools/stamp_serve"
[ -x "$SWEEP" ] && [ -x "$FLEET" ] && [ -x "$SERVE" ] || {
  echo "fleet_chaos: build tool_stamp_sweep, tool_stamp_fleet and tool_stamp_serve first" >&2
  exit 2
}

WORK="$(mktemp -d)"
WORKER_PIDS=()
FLEET_PID=""
# Kill EVERY child this script spawned — the workers and any background
# stamp_fleet coordinator still in flight (an early failure between spawning
# the coordinator and `wait` would otherwise leak it past our exit).
cleanup() {
  for pid in "${WORKER_PIDS[@]:-}" "$FLEET_PID"; do
    [ -n "$pid" ] && kill -KILL "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

# Start one stamp_serve worker; sets LAST_PORT (parsed from the server's
# stdout — the echo contract) and LAST_PID, and appends the pid to
# WORKER_PIDS. Results come back in globals rather than on stdout: a
# command substitution would run this in a subshell and silently lose the
# pid bookkeeping the kill phases and the EXIT trap depend on.
start_worker() {
  local out="$WORK/worker_port.${#WORKER_PIDS[@]}"
  "$SERVE" --port 0 --grid canonical --workers 2 "$@" \
    >"$out" 2>>"$WORK/workers.log" &
  LAST_PID=$!
  WORKER_PIDS+=("$LAST_PID")
  local port=""
  for _ in $(seq 1 100); do
    port="$(head -n 1 "$out" 2>/dev/null | tr -d '[:space:]')"
    [ -n "$port" ] && break
    sleep 0.1
  done
  case "$port" in
    ''|*[!0-9]*)
      echo "fleet_chaos: no port on worker stdout; log:" >&2
      cat "$WORK/workers.log" >&2
      exit 1;;
  esac
  LAST_PORT="$port"
}

echo "== reference: single-node stamp_sweep =="
"$SWEEP" --grid canonical --threads 4 --out "$WORK/ref.json"

echo "== phase A: spawn-mode identity at 1/2/4 workers =="
for n in 1 2 4; do
  "$FLEET" --grid canonical --workers "$n" --serve-bin "$SERVE" \
    --out "$WORK/fleet_$n.json"
  cmp "$WORK/ref.json" "$WORK/fleet_$n.json"
  echo "-- $n worker(s): identical"
done

# Phases B and C attach to externally managed workers armed with a
# deterministic per-request transit delay (80ms per shard), so a ~600-point
# grid in 8-point shards stays in flight for seconds — long enough for a
# mid-sweep kill to land, with answers still byte-identical to clean ones.
echo "== phase B: worker killed mid-sweep =="
start_worker --inject msg_delay=1.0,mag=80000000
P1="$LAST_PORT"
start_worker --inject msg_delay=1.0,mag=80000000
P2="$LAST_PORT"
VICTIM_PID="$LAST_PID"
"$FLEET" --grid canonical --connect "$P1" --connect "$P2" \
  --points-per-shard 8 --stats \
  --out "$WORK/fleet_kill.json" 2>"$WORK/fleet_kill.log" &
FLEET_PID=$!
sleep 0.6
kill -KILL "$VICTIM_PID"
status=0
wait "$FLEET_PID" || status=$?
FLEET_PID=""
if [ "$status" -ne 0 ]; then
  echo "fleet_chaos: fleet exited $status after worker kill; log:" >&2
  cat "$WORK/fleet_kill.log" >&2
  exit 1
fi
cmp "$WORK/ref.json" "$WORK/fleet_kill.json"
grep -Eq '[^0-9][1-9][0-9]* worker failure' "$WORK/fleet_kill.log" || {
  echo "fleet_chaos: worker kill landed too late (no failure recorded); log:" >&2
  cat "$WORK/fleet_kill.log" >&2
  exit 1
}
echo "-- survivor finished the sweep: identical"

echo "== phase C: coordinator killed mid-sweep, then resumed =="
"$FLEET" --grid canonical --connect "$P1" \
  --points-per-shard 8 --journal "$WORK/fleet.journal" \
  --out "$WORK/fleet_resumed.json" 2>"$WORK/fleet_resume.log" &
FLEET_PID=$!
sleep 0.6
kill -TERM "$FLEET_PID"
status=0
wait "$FLEET_PID" || status=$?
FLEET_PID=""
if [ "$status" -ne 3 ]; then
  echo "fleet_chaos: killed coordinator exited $status, want 3; log:" >&2
  cat "$WORK/fleet_resume.log" >&2
  exit 1
fi
[ -f "$WORK/fleet.journal" ] || { echo "fleet_chaos: journal lost" >&2; exit 1; }
"$FLEET" --grid canonical --connect "$P1" \
  --points-per-shard 8 --resume "$WORK/fleet.journal" \
  --out "$WORK/fleet_resumed.json" 2>>"$WORK/fleet_resume.log"
cmp "$WORK/ref.json" "$WORK/fleet_resumed.json"
echo "-- resumed coordinator: identical"

echo "fleet_chaos: OK"
