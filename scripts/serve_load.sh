#!/usr/bin/env bash
# Load- and chaos-test the evaluation server from the outside: real
# stamp_serve processes, real sockets, the stamp_call pipelining client.
#
# Phase A (availability + byte-identity): for each seed, a server is started
# with the full transport/worker fault plan armed (every request's worker
# crashes once, half the admissions are dropped in transit, some sends are
# delayed). The client must still get every response, the responses must be
# byte-identical to an uninjected server's, and SIGTERM must drain cleanly
# (exit 0) with the metrics flushed.
#
# Phase B (backpressure): a deliberately tiny server (1 worker, queue depth
# 1) is flooded with burn requests. Overload must surface as explicit 503
# lines — bounded, counted, never a hang or unbounded memory — and the drain
# must still exit 0.
#
# Usage: scripts/serve_load.sh [BUILD_DIR] [SEED...]
#   BUILD_DIR defaults to "build"; seeds default to "1 7 42".
# The caller (CI) wraps this script in `timeout` — nothing in here waits
# unboundedly: stamp_call has a global deadline and the server is killed
# hard if a graceful drain stalls.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift || true
if [ $# -gt 0 ]; then SEEDS=("$@"); else SEEDS=(1 7 42); fi

SERVE="$BUILD_DIR/tools/stamp_serve"
CALL="$BUILD_DIR/tools/stamp_call"
[ -x "$SERVE" ] && [ -x "$CALL" ] || {
  echo "serve_load: build tool_stamp_serve and stamp_call first" >&2
  exit 2
}

WORK="$(mktemp -d)"
SERVER_PID=""
SERVER_PIDS=()
# Kill EVERY server this script ever spawned, not just the latest: a failure
# between start_server calls (or a drain that never ran) must not leak a
# listening stamp_serve past our exit.
cleanup() {
  for pid in "${SERVER_PIDS[@]:-}" "$SERVER_PID"; do
    [ -n "$pid" ] && kill -KILL "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

# Start a server with the given extra flags; sets SERVER_PID and PORT.
# The port comes from the server's stdout (the bound port is the only thing
# it ever prints there), cross-checked against --port-file: the two must
# agree, or the echo contract scripts and stamp_fleet rely on is broken.
start_server() {
  rm -f "$WORK/port" "$WORK/port_stdout"
  "$SERVE" --port 0 --port-file "$WORK/port" "$@" \
    >"$WORK/port_stdout" 2>>"$WORK/server.log" &
  SERVER_PID=$!
  SERVER_PIDS+=("$SERVER_PID")
  for _ in $(seq 1 100); do
    [ -s "$WORK/port_stdout" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
      echo "serve_load: server died at startup; log:" >&2
      cat "$WORK/server.log" >&2
      exit 1
    }
    sleep 0.1
  done
  [ -s "$WORK/port_stdout" ] || { echo "serve_load: no port on stdout" >&2; exit 1; }
  PORT="$(head -n 1 "$WORK/port_stdout" | tr -d '[:space:]')"
  case "$PORT" in
    ''|*[!0-9]*) echo "serve_load: bad port '$PORT' on stdout" >&2; exit 1;;
  esac
  for _ in $(seq 1 100); do
    [ -s "$WORK/port" ] && break
    sleep 0.1
  done
  [ "$(cat "$WORK/port")" = "$PORT" ] || {
    echo "serve_load: stdout port $PORT != port file $(cat "$WORK/port")" >&2
    exit 1
  }
}

# SIGTERM the server and require a graceful exit code 0.
drain_server() {
  kill -TERM "$SERVER_PID"
  local status=0
  wait "$SERVER_PID" || status=$?
  SERVER_PID=""
  if [ "$status" -ne 0 ]; then
    echo "serve_load: drain exited $status, want 0; log:" >&2
    cat "$WORK/server.log" >&2
    exit 1
  fi
}

# A deterministic request mix (no stats op: stats is not byte-stable).
make_requests() {
  local out="$1"
  : > "$out"
  local id=1
  for index in 0 3 7 11 15; do
    echo "{\"id\":$id,\"op\":\"evaluate\",\"index\":$index}" >> "$out"
    id=$((id + 1))
  done
  echo "{\"id\":$id,\"op\":\"sweep_chunk\",\"begin\":0,\"end\":8}" >> "$out"; id=$((id + 1))
  echo "{\"id\":$id,\"op\":\"sweep_chunk\",\"begin\":8,\"end\":16}" >> "$out"; id=$((id + 1))
  for n in 2 4 8; do
    echo "{\"id\":$id,\"op\":\"best_placement\",\"processes\":$n}" >> "$out"
    id=$((id + 1))
  done
  echo "{\"id\":$id,\"op\":\"search\",\"method\":\"bnb\",\"seed\":7}" >> "$out"; id=$((id + 1))
  echo "{\"id\":$id,\"op\":\"search\",\"method\":\"anneal\",\"seed\":7}" >> "$out"
}

make_requests "$WORK/requests.ndjson"

echo "== reference run (no faults) =="
start_server --workers 2
"$CALL" --port "$PORT" --timeout-ms 60000 --retry-ms 2000 \
  --out "$WORK/expected.ndjson" "$WORK/requests.ndjson"
drain_server
[ -s "$WORK/expected.ndjson" ] || { echo "serve_load: empty reference" >&2; exit 1; }

echo "== phase A: chaos availability + byte-identity =="
for seed in "${SEEDS[@]}"; do
  echo "-- seed $seed"
  start_server --workers 2 --fault-seed "$seed" \
    --metrics "$WORK/metrics_$seed.json" \
    --inject serve_worker_fail=1.0,max=1 \
    --inject msg_drop=0.5,max=1 \
    --inject msg_delay=0.25,mag=20000000,max=1
  "$CALL" --port "$PORT" --timeout-ms 60000 --retry-ms 2000 \
    --out "$WORK/chaos_$seed.ndjson" "$WORK/requests.ndjson"
  drain_server
  cmp "$WORK/expected.ndjson" "$WORK/chaos_$seed.ndjson"
  [ -s "$WORK/metrics_$seed.json" ] || {
    echo "serve_load: metrics not flushed on drain" >&2
    exit 1
  }
done

echo "== phase B: overload backpressure =="
: > "$WORK/burns.ndjson"
for id in $(seq 1 12); do
  echo "{\"id\":$id,\"op\":\"burn\",\"busy_ms\":300}" >> "$WORK/burns.ndjson"
done
start_server --workers 1 --queue-depth 1
# No retry within the window: a 503 is a final answer for this phase.
"$CALL" --port "$PORT" --timeout-ms 60000 --retry-ms 30000 \
  --out "$WORK/burst.ndjson" "$WORK/burns.ndjson"
drain_server
total=$(wc -l < "$WORK/burst.ndjson")
ok=$(grep -c '"status":200' "$WORK/burst.ndjson" || true)
rejected=$(grep -c '"status":503' "$WORK/burst.ndjson" || true)
echo "burst: $total answered, $ok ok, $rejected rejected"
[ "$total" -eq 12 ] || { echo "serve_load: lost burst responses" >&2; exit 1; }
[ "$rejected" -ge 1 ] || { echo "serve_load: queue never overflowed" >&2; exit 1; }
[ "$ok" -ge 1 ] || { echo "serve_load: nothing succeeded under load" >&2; exit 1; }
[ $((ok + rejected)) -eq 12 ] || {
  echo "serve_load: unexpected status mix" >&2
  exit 1
}

echo "serve_load: OK (seeds: ${SEEDS[*]})"
