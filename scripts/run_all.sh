#!/usr/bin/env bash
# Build, test, and regenerate every paper artifact. Outputs land in
# test_output.txt and bench_output.txt at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $(basename "$b")" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo "Done: see test_output.txt and bench_output.txt"
