#!/usr/bin/env bash
# Build, test, and regenerate every paper artifact. Outputs land in
# test_output.txt and bench_output.txt at the repository root, and the sweep
# regression baseline in sweeps/baseline.json.
set -euo pipefail
cd "$(dirname "$0")/.."

# Pick a generator: reuse whatever an existing build tree was configured
# with (mixing generators in one tree is a hard CMake error); otherwise
# prefer Ninja when available and fall back to the default Makefiles.
generator_args=()
if [ ! -f build/CMakeCache.txt ] && command -v ninja >/dev/null 2>&1; then
  generator_args=(-G Ninja)
fi

cmake -B build "${generator_args[@]}"
cmake --build build -j "$(nproc)"

ctest --test-dir build --output-on-failure -j "$(nproc)" 2>&1 | tee test_output.txt

# Refresh the sweep regression baseline (see README "CI and regression
# gating"). Deliberately single-threaded: the artifact is byte-identical at
# any pool width, so one thread keeps the refresh boring and reproducible.
mkdir -p sweeps
build/tools/stamp_sweep --grid canonical --threads 1 --out sweeps/baseline.json
build/tools/stamp_gate sweeps/baseline.json sweeps/baseline.json

: > bench_output.txt
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $(basename "$b")" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo "Done: see test_output.txt, bench_output.txt, sweeps/baseline.json"
