/// Example: the airline-reservation system of Section 4 — multi-leg
/// itineraries booked through independent [trans_exec, async_comm]
/// subtransactions with the paper's partial-commit decision procedure.
///
/// Usage: flight_booking [processes] [reservations-per-process] [seats-per-leg]

#include "algo/airline.hpp"
#include "core/core.hpp"
#include "report/table.hpp"

#include <cstdlib>
#include <iostream>

int main(int argc, char** argv) {
  using namespace stamp;

  algo::ReservationWorkload w;
  w.processes = argc > 1 ? std::atoi(argv[1]) : 8;
  w.reservations_per_process = argc > 2 ? std::atoi(argv[2]) : 1000;
  w.seats_per_leg = argc > 3 ? std::atoi(argv[3]) : 150;
  w.legs = 10;

  const MachineModel machine = presets::niagara();
  std::cout << "Flight network: " << w.legs << " legs x " << w.seats_per_leg
            << " seats; " << w.processes << " booking processes x "
            << w.reservations_per_process
            << " three-leg itineraries [inter_proc, trans_exec, async_comm]\n\n";

  report::Table table("Policy comparison",
                      {"policy", "succeeded", "failed", "legs booked",
                       "overbooked", "aborts"});
  for (const algo::ReservePolicy policy :
       {algo::ReservePolicy::Partial, algo::ReservePolicy::AllOrNothing}) {
    algo::ReservationWorkload run_w = w;
    run_w.policy = policy;
    const algo::ReservationRunResult r =
        algo::run_reservation_workload(machine.topology, run_w, "backoff");
    table.add_row(
        {std::string(policy == algo::ReservePolicy::Partial ? "partial"
                                                            : "all-or-nothing"),
         r.succeeded, r.failed, r.legs_booked, r.overbooked_legs,
         static_cast<long long>(r.stm_aborts)});
    if (r.overbooked_legs != 0) {
      std::cerr << "OVERBOOKING DETECTED — atomicity violated\n";
      return 1;
    }
  }
  table.print(std::cout);

  std::cout << "\nThe partial policy keeps committed legs when an itinerary\n"
               "only partially books (the paper's 'the committed leg is not\n"
               "full' branch); all-or-nothing compensates them. Neither ever\n"
               "overbooks a leg.\n";
  return 0;
}
