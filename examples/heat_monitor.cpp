/// Example: the halo-exchange heat stencil with machine-readable output —
/// runs the distributed solver, verifies against the sequential scheme,
/// prices the run on a chosen machine, and emits both a console table and a
/// JSON document (for plots/dashboards).
///
/// Usage: heat_monitor [cells] [processes] [steps] [--json]

#include "algo/stencil.hpp"
#include "core/core.hpp"
#include "report/json.hpp"
#include "report/table.hpp"

#include <cmath>
#include <cstring>
#include <iostream>

int main(int argc, char** argv) {
  using namespace stamp;

  algo::StencilProblem prob;
  prob.cells = argc > 1 ? std::atoi(argv[1]) : 48;
  algo::StencilOptions opt;
  opt.processes = argc > 2 ? std::atoi(argv[2]) : 8;
  opt.steps = argc > 3 ? std::atoi(argv[3]) : 400;
  const bool json = argc > 4 && std::strcmp(argv[4], "--json") == 0;
  if (prob.cells < 1 || opt.processes < 1 || opt.processes > prob.cells ||
      opt.steps < 1) {
    std::cerr << "usage: heat_monitor [cells] [1 <= processes <= cells] "
                 "[steps] [--json]\n";
    return 1;
  }

  const MachineModel machine = presets::niagara();
  const algo::StencilResult r =
      algo::stencil_distributed(prob, machine.topology, opt);
  const std::vector<double> expected = algo::stencil_sequential(prob, opt.steps);

  double worst_err = 0;
  for (std::size_t i = 0; i < expected.size(); ++i)
    worst_err = std::max(worst_err, std::abs(r.temperature[i] - expected[i]));

  const Cost cost = r.run.total_cost(r.placement, machine.params, machine.energy);
  const Metrics metrics = metrics_from(cost);

  if (json) {
    report::JsonWriter w(std::cout);
    w.begin_object();
    w.kv("cells", prob.cells);
    w.kv("processes", opt.processes);
    w.kv("steps", opt.steps);
    w.kv("verification_error", worst_err);
    w.key("model");
    w.begin_object();
    w.kv("time", cost.time);
    w.kv("energy", cost.energy);
    w.kv("power", cost.power());
    w.kv("EDP", metrics.EDP);
    w.end_object();
    w.key("temperature");
    w.begin_array();
    for (double t : r.temperature) w.value(t);
    w.end_array();
    w.end_object();
    std::cout << '\n';
    return 0;
  }

  std::cout << "Heat rod: " << prob.cells << " cells, boundaries " << prob.left
            << " / " << prob.right << ", " << opt.processes
            << " STAMP processes x " << opt.steps
            << " steps [intra_proc, async_exec, synch_comm]\n\n";

  report::Table table("Temperature profile (every 8th cell)",
                      {"cell", "temperature"});
  table.set_precision(2);
  for (int i = 0; i < prob.cells; i += 8)
    table.add_row({static_cast<long long>(i),
                   r.temperature[static_cast<std::size_t>(i)]});
  table.print(std::cout);

  std::cout << "\nVerification vs sequential scheme: max |err| = " << worst_err
            << (worst_err == 0 ? " (bit-exact)" : "") << "\n"
            << "Model cost: " << cost << "  metrics " << metrics << "\n"
            << "Halo exchange: ~2 messages/process/round regardless of "
               "process count.\n";
  return 0;
}
