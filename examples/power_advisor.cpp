/// Example: the model as a deployment advisor — given a machine preset and an
/// objective (D / PDP / EDP / ED2P), pick the best algorithm variant for a
/// shared-update job and the best thread placement under the power envelope.
///
/// This is the workflow the paper's conclusion sketches: "by looking at the
/// complexity measures of given algorithms, one can determine if the overall
/// performance can be optimized."
///
/// Usage: power_advisor [embedded|desktop|server|niagara] [D|PDP|EDP|ED2P]

#include "algo/histogram.hpp"
#include "api/stamp.hpp"
#include "report/table.hpp"

#include <cstring>
#include <iostream>

namespace {

stamp::MachineModel preset_by_name(const char* name) {
  using namespace stamp::presets;
  if (std::strcmp(name, "embedded") == 0) return embedded();
  if (std::strcmp(name, "desktop") == 0) return desktop();
  if (std::strcmp(name, "server") == 0) return server();
  return niagara();
}

stamp::Objective objective_by_name(const char* name) {
  using stamp::Objective;
  if (std::strcmp(name, "D") == 0) return Objective::D;
  if (std::strcmp(name, "PDP") == 0) return Objective::PDP;
  if (std::strcmp(name, "ED2P") == 0) return Objective::ED2P;
  return Objective::EDP;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stamp;

  const MachineModel machine = preset_by_name(argc > 1 ? argv[1] : "niagara");
  const Objective objective = objective_by_name(argc > 2 ? argv[2] : "EDP");

  const Evaluator eval({.machine = machine, .objective = objective});

  std::cout << "Advisor for machine '" << machine.name << "', objective "
            << to_string(objective) << "\n\n";

  // -- 1. Pick the algorithm variant: run each Table-1 quadrant, score. ------
  algo::HistogramWorkload w;
  w.processes = std::min(8, machine.topology.total_threads());
  w.bins = 8;
  w.items_per_process = 1000;
  w.rounds = 5;

  struct Variant {
    const char* name;
    ExecMode exec;
    CommMode comm;
  };
  const Variant variants[] = {
      {"trans_exec + synch_comm", ExecMode::Transactional, CommMode::Synchronous},
      {"async_exec + synch_comm", ExecMode::Asynchronous, CommMode::Synchronous},
      {"trans_exec + async_comm", ExecMode::Transactional, CommMode::Asynchronous},
      {"async_exec + async_comm", ExecMode::Asynchronous, CommMode::Asynchronous},
  };

  std::vector<Cost> costs;
  report::Table table("Algorithm variants", {"variant", "T", "E", "objective"});
  table.set_precision(0);
  for (const Variant& v : variants) {
    const algo::HistogramRunResult r =
        algo::run_histogram(machine.topology, w, v.exec, v.comm);
    const Evaluation e = eval.evaluate(r.run, r.placement);
    costs.push_back(e.total);
    table.add_row({std::string(v.name), e.total.time, e.total.energy,
                   e.objective_value});
  }
  table.print(std::cout);
  const int best = select_best(costs, objective);
  std::cout << "\nRecommended variant: " << variants[best].name << "\n\n";

  // -- 2. Pick the placement under the envelope. -------------------------------
  ProcessProfile profile;
  profile.c_fp = 200;
  profile.c_int = 40;
  profile.d_r = 8;
  profile.d_w = 4;
  profile.units = 50;
  const std::vector<ProcessProfile> profiles(
      static_cast<std::size_t>(w.processes), profile);

  const PlacementResult placement = eval.best_placement(profiles);
  std::cout << "Recommended placement (" << placement.strategy << "): ";
  for (int p : placement.eval.placement.processor_of) std::cout << p << ' ';
  std::cout << "\n  objective " << placement.eval.objective << ", feasible: "
            << (placement.eval.feasible ? "yes" : "NO — relax the envelope")
            << ", examined " << placement.placements_examined
            << " placements\n";

  if (machine.envelope.per_processor > 0) {
    const double per_process = placement.eval.process_costs[0].power();
    std::cout << "  per-process power " << per_process << "; per-core cap "
              << machine.envelope.per_processor << " admits "
              << max_processes_per_processor(
                     per_process, machine.envelope,
                     machine.topology.threads_per_processor)
              << " such processes per core.\n";
  }
  return 0;
}
