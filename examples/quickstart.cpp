/// Quickstart: the STAMP workflow in one file.
///
/// 1. Describe a machine (or pick a preset) and hand it to a
///    `stamp::Evaluator` — the single entry point to the stack.
/// 2. Write a STAMP program against the runtime API — processes, S-rounds,
///    communication through the instrumented substrates.
/// 3. Run it for real on threads; the recorders capture the operation counts
///    the cost model needs.
/// 4. Read the evaluation: execution time / energy / power, the four
///    selection metrics, and power-envelope feasibility, all from one call.

#include "api/stamp.hpp"
#include "msg/communicator.hpp"

#include <iostream>
#include <numeric>

int main() {
  using namespace stamp;

  // -- 1. The machine: Figure 1's Niagara (8 cores x 4 threads). -------------
  const Evaluator eval({.machine = presets::niagara()});
  std::cout << "Machine: " << eval.machine() << "\n\n";

  // -- 2/3. A tiny STAMP program: 4 processes compute partial sums and
  //         exchange them every round [intra_proc, async_exec, synch_comm].
  constexpr int kProcesses = 4;
  constexpr int kRounds = 3;
  msg::Communicator<long> comm(kProcesses, CommMode::Synchronous);

  const auto [outcome, evaluation] = eval.run_and_evaluate(
      kProcesses, Distribution::IntraProc, [&](runtime::Context& ctx) {
        long value = ctx.id() + 1;
        for (int round = 0; round < kRounds; ++round) {
          const runtime::UnitScope unit(ctx.recorder());  // one S-unit
          ctx.int_ops(1);                                 // loop check
          {
            const runtime::RoundScope sround(ctx.recorder());  // one S-round
            // Local computation: double the value (1 int op, counted).
            value *= 2;
            ctx.int_ops(1);
            // Communication: all-to-all exchange with implicit barrier.
            const std::vector<long> all = comm.exchange(ctx, value);
            value = std::accumulate(all.begin(), all.end(), 0L);
            ctx.int_ops(kProcesses);  // the reduction
          }
        }
      });

  // -- 4. Model evaluation. ----------------------------------------------------
  std::cout << "Recorded per process: " << outcome.run.recorders[0].totals()
            << "\n";
  std::cout << "Model cost (parallel composition): " << evaluation.total << "\n";
  std::cout << "Metrics: " << evaluation.metrics << "\n";

  // Envelope check: does this fit the Niagara cores' power budgets?
  std::cout << "Power on the shared core: " << evaluation.envelope.system.demand
            << " total vs system cap " << evaluation.envelope.system.cap
            << " -> " << (evaluation.feasible ? "fits" : "DOES NOT FIT") << "\n";
  return 0;
}
