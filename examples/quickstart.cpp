/// Quickstart: the STAMP workflow in one file.
///
/// 1. Describe a machine (or pick a preset).
/// 2. Write a STAMP program against the runtime API — processes, S-rounds,
///    communication through the instrumented substrates.
/// 3. Run it for real on threads; the recorders capture the operation counts
///    the cost model needs.
/// 4. Evaluate execution time / energy / power, check the power envelope, and
///    pick placements with the model.

#include "core/core.hpp"
#include "msg/communicator.hpp"
#include "runtime/executor.hpp"

#include <iostream>
#include <numeric>

int main() {
  using namespace stamp;

  // -- 1. The machine: Figure 1's Niagara (8 cores x 4 threads). -------------
  const MachineModel machine = presets::niagara();
  std::cout << "Machine: " << machine << "\n\n";

  // -- 2/3. A tiny STAMP program: 4 processes compute partial sums and
  //         exchange them every round [intra_proc, async_exec, synch_comm].
  constexpr int kProcesses = 4;
  constexpr int kRounds = 3;
  msg::Communicator<long> comm(kProcesses, CommMode::Synchronous);

  const runtime::RunResult run = runtime::run_distributed(
      machine.topology, kProcesses, Distribution::IntraProc,
      [&](runtime::Context& ctx) {
        long value = ctx.id() + 1;
        for (int round = 0; round < kRounds; ++round) {
          const runtime::UnitScope unit(ctx.recorder());  // one S-unit
          ctx.int_ops(1);                                 // loop check
          {
            const runtime::RoundScope sround(ctx.recorder());  // one S-round
            // Local computation: double the value (1 int op, counted).
            value *= 2;
            ctx.int_ops(1);
            // Communication: all-to-all exchange with implicit barrier.
            const std::vector<long> all = comm.exchange(ctx, value);
            value = std::accumulate(all.begin(), all.end(), 0L);
            ctx.int_ops(kProcesses);  // the reduction
          }
        }
      });

  // -- 4. Model evaluation. ----------------------------------------------------
  const runtime::PlacementMap placement = runtime::PlacementMap::for_distribution(
      machine.topology, kProcesses, Distribution::IntraProc);
  const Cost cost = run.total_cost(placement, machine.params, machine.energy);
  const Metrics m = metrics_from(cost);

  std::cout << "Recorded per process: " << run.recorders[0].totals() << "\n";
  std::cout << "Model cost (parallel composition): " << cost << "\n";
  std::cout << "Metrics: " << m << "\n";

  // Envelope check: does this fit one Niagara core's power budget?
  std::vector<double> powers;
  for (const Cost& c : run.process_costs(placement, machine.params, machine.energy))
    powers.push_back(c.power());
  const EnvelopeCheck check = check_processor(powers, machine.envelope);
  std::cout << "Power on the shared core: " << check.demand << " vs cap "
            << check.cap << " -> " << (check.feasible ? "fits" : "DOES NOT FIT")
            << "\n";
  return 0;
}
