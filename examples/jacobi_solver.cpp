/// Example: solve a dense linear system with the distributed STAMP Jacobi of
/// Section 4 and report the full model analysis alongside the numerics.
///
/// Usage: jacobi_solver [n] [processes]

#include "algo/jacobi.hpp"
#include "api/stamp.hpp"
#include "report/table.hpp"

#include <cstdlib>
#include <iostream>

int main(int argc, char** argv) {
  using namespace stamp;

  const int n = argc > 1 ? std::atoi(argv[1]) : 24;
  const int processes = argc > 2 ? std::atoi(argv[2]) : 8;
  if (n < 1 || processes < 1 || processes > n) {
    std::cerr << "usage: jacobi_solver [n >= 1] [1 <= processes <= n]\n";
    return 1;
  }

  const MachineModel machine = presets::niagara();
  const algo::LinearSystem sys = algo::make_diagonally_dominant_system(n, 2024);

  std::cout << "Solving a " << n << "x" << n
            << " diagonally dominant system with " << processes
            << " STAMP processes [intra_proc, async_exec, synch_comm] on '"
            << machine.name << "'\n\n";

  algo::JacobiOptions opt;
  opt.processes = processes;
  opt.tolerance = 1e-10;
  const algo::DistributedJacobiResult result =
      algo::jacobi_distributed(sys, machine.topology, opt);

  std::cout << "Converged: " << (result.solution.converged ? "yes" : "no")
            << " in " << result.solution.iterations << " iterations; residual "
            << algo::jacobi_residual(sys, result.solution.x) << "\n\n";

  // Per-process instrumentation -> model costs, via the Evaluator facade.
  const Evaluator evaluator({.machine = machine});
  const Evaluation ev = evaluator.evaluate(result.run, result.placement);

  report::Table table("Per-process model costs",
                      {"process", "fp ops", "msgs", "T model", "E model", "P"});
  table.set_precision(1);
  for (std::size_t i = 0; i < ev.process_costs.size(); ++i) {
    const CostCounters t = result.run.recorders[i].totals();
    table.add_row({static_cast<long long>(i), t.c_fp, t.msg_ops(),
                   ev.process_costs[i].time, ev.process_costs[i].energy,
                   ev.process_costs[i].power()});
  }
  table.print(std::cout);

  std::cout << "\nParallel composition: " << ev.total << "\n"
            << "Metrics: " << ev.metrics << "\n";

  // The Section 4 power-envelope advice for this machine.
  const double per_thread = ev.process_costs.front().power();
  const int admissible = max_processes_per_processor(
      per_thread, machine.envelope, machine.topology.threads_per_processor);
  std::cout << "\nEnvelope advice: per-thread power " << per_thread
            << ", per-core cap " << machine.envelope.per_processor << " -> up to "
            << admissible << " Jacobi threads per "
            << machine.topology.threads_per_processor << "-thread core.\n";
  return 0;
}
