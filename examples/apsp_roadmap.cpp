/// Example: all-pairs shortest paths on a synthetic road network using the
/// asynchronous single-writer/multi-reader STAMP algorithm of Section 4,
/// with the synchronous variant as a cross-check.
///
/// Usage: apsp_roadmap [vertices] [density]

#include "algo/apsp.hpp"
#include "core/core.hpp"
#include "report/table.hpp"

#include <cmath>
#include <cstdlib>
#include <iostream>

int main(int argc, char** argv) {
  using namespace stamp;

  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  const double density = argc > 2 ? std::atof(argv[2]) : 0.25;
  if (n < 2 || density <= 0 || density > 1) {
    std::cerr << "usage: apsp_roadmap [vertices >= 2] [0 < density <= 1]\n";
    return 1;
  }

  const MachineModel machine = presets::niagara();
  if (n > machine.topology.total_threads()) {
    std::cerr << "vertices must not exceed " << machine.topology.total_threads()
              << " (one STAMP process per row)\n";
    return 1;
  }

  const algo::Graph g = algo::make_random_graph(n, 7777, density, 25.0);
  std::cout << "Road network: " << n << " junctions, density " << density
            << "; one STAMP process per row [inter_proc, async_exec, "
               "async_comm]\n\n";

  const std::vector<double> exact = algo::floyd_warshall(g);

  report::Table table("Variants", {"comm", "rounds (max)", "correct",
                                   "T model", "E model"});
  table.set_precision(1);
  for (const CommMode comm : {CommMode::Asynchronous, CommMode::Synchronous}) {
    algo::ApspOptions opt;
    opt.comm = comm;
    opt.max_rounds = 50 * n;
    const algo::ApspResult r = algo::apsp_distributed(g, machine.topology, opt);
    int max_rounds = 0;
    for (int rounds : r.rounds) max_rounds = std::max(max_rounds, rounds);
    bool correct = true;
    for (std::size_t i = 0; i < exact.size(); ++i) {
      const double a = r.distances[i];
      const double b = exact[i];
      if (std::isinf(a) != std::isinf(b) ||
          (!std::isinf(a) && std::abs(a - b) > 1e-9))
        correct = false;
    }
    const Cost cost = r.run.total_cost(r.placement, machine.params, machine.energy);
    table.add_row({std::string(keyword(comm)),
                   static_cast<long long>(max_rounds),
                   std::string(correct ? "yes" : "NO"), cost.time,
                   cost.energy});
  }
  table.print(std::cout);

  // Print a few example routes.
  std::cout << "\nSample shortest distances:\n";
  for (int i = 0; i < std::min(n, 4); ++i) {
    for (int j = 0; j < std::min(n, 4); ++j) {
      const double d = exact[static_cast<std::size_t>(i) * n + j];
      std::cout << "  " << i << " -> " << j << ": ";
      if (d == algo::Graph::kInfinity)
        std::cout << "unreachable";
      else
        std::cout << d;
    }
    std::cout << '\n';
  }
  return 0;
}
