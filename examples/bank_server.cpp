/// Example: a transactional bank (Section 4's transfer) under a mixed
/// workload, demonstrating the trans_exec attribute end to end — atomic
/// nested transfers, business-level aborts, contention statistics, and the
/// conservation invariant.
///
/// Usage: bank_server [processes] [transfers-per-process] [hot-fraction]

#include "algo/banking.hpp"
#include "core/core.hpp"
#include "report/table.hpp"

#include <cstdlib>
#include <iostream>

int main(int argc, char** argv) {
  using namespace stamp;

  algo::TransferWorkload w;
  w.processes = argc > 1 ? std::atoi(argv[1]) : 8;
  w.transfers_per_process = argc > 2 ? std::atoi(argv[2]) : 2000;
  w.hot_fraction = argc > 3 ? std::atof(argv[3]) : 0.3;
  w.accounts = 32;
  w.initial_balance = 500;

  const MachineModel machine = presets::niagara();
  std::cout << "Bank: " << w.accounts << " accounts x " << w.initial_balance
            << "; " << w.processes << " teller processes x "
            << w.transfers_per_process << " transfers, hot fraction "
            << w.hot_fraction << " [intra_proc, trans_exec]\n\n";

  const algo::TransferRunResult r =
      algo::run_transfer_workload(machine.topology, w, "karma");

  report::Table table("Results", {"quantity", "value"});
  table.add_row({std::string("transfers committed"), r.committed});
  table.add_row({std::string("insufficient funds"), r.insufficient});
  table.add_row({std::string("STM commits"), static_cast<long long>(r.stm_commits)});
  table.add_row({std::string("STM aborts"), static_cast<long long>(r.stm_aborts)});
  table.add_row({std::string("worst rollback chain"),
                 static_cast<long long>(r.stm_max_retries)});
  table.add_row({std::string("balance before"), r.balance_before});
  table.add_row({std::string("balance after"), r.balance_after});
  table.print(std::cout);

  std::cout << "\nConservation invariant: "
            << (r.balance_before == r.balance_after ? "HELD" : "VIOLATED")
            << "\n";

  const Cost cost = r.run.total_cost(r.placement, machine.params, machine.energy);
  std::cout << "Model cost: " << cost << "  metrics " << metrics_from(cost)
            << "\n";
  return r.balance_before == r.balance_after ? 0 : 1;
}
