/// Example: the analytic workflow with no execution at all — write the
/// paper's algorithms as attributed specs (spec::Program), evaluate them on
/// every machine preset, check envelopes, and let the DVFS governor fit the
/// ones that do not — the pure "back of the envelope" use of the model.
///
/// Usage: model_explorer [n]

#include "core/core.hpp"
#include "machine/governor.hpp"
#include "report/table.hpp"

#include <cstdlib>
#include <iostream>

int main(int argc, char** argv) {
  using namespace stamp;

  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  if (n < 2) {
    std::cerr << "usage: model_explorer [n >= 2]\n";
    return 1;
  }

  // -- The paper's three examples as specs. -----------------------------------
  spec::Program program;
  program.add(
      spec::ProcessBuilder("Jacobi", Attributes{Distribution::IntraProc,
                                                ExecMode::Asynchronous,
                                                CommMode::Synchronous})
          .replicas(std::min(n, 4))
          .loop(analysis::jacobi_round_counters(n), /*iterations=*/25, 0, 3));
  program.add(
      spec::ProcessBuilder("transfer", Attributes{Distribution::IntraProc,
                                                  ExecMode::Transactional,
                                                  CommMode::Synchronous})
          .replicas(2)
          .loop(analysis::transfer_counters(/*rollbacks=*/0.2, true), 500, 0, 5));
  program.add(
      spec::ProcessBuilder("APSP", Attributes{Distribution::InterProc,
                                              ExecMode::Asynchronous,
                                              CommMode::Asynchronous})
          .replicas(std::min(n, 4))
          .loop(analysis::apsp_round_counters(n), /*rounds=*/3, 0, 3));

  std::cout << "Program under analysis (paper-style annotations):\n\n";
  program.describe(std::cout);

  // -- Evaluate on every preset. -----------------------------------------------
  for (const MachineModel& machine :
       {presets::niagara(), presets::desktop(), presets::embedded(),
        presets::server()}) {
    report::print_section(std::cout, "Machine: " + machine.name);
    spec::Evaluation eval;
    try {
      eval = program.evaluate(machine);
    } catch (const ParamError& e) {
      std::cout << "does not fit: " << e.what() << "\n";
      continue;
    }

    report::Table table("Per-spec costs",
                        {"process", "replicas", "T/replica", "E/replica",
                         "P/replica", "cores"});
    table.set_precision(1);
    for (const spec::SpecCost& sc : eval.specs)
      table.add_row({sc.name, static_cast<long long>(sc.replicas),
                     sc.per_replica.time, sc.per_replica.energy, sc.power,
                     static_cast<long long>(sc.processors_spanned)});
    table.print(std::cout);
    std::cout << "Total: " << eval.total << "  metrics " << eval.metrics
              << "\nEnvelope: " << (eval.fits_envelope ? "fits" : "VIOLATED")
              << " (" << eval.hardware_threads_used << " threads on "
              << eval.processors_used << " cores)\n";

    // -- If the envelope is violated, let the governor fit frequencies. ------
    if (!eval.fits_envelope) {
      std::vector<double> core_power(
          static_cast<std::size_t>(machine.topology.total_processors()), 0.0);
      for (const spec::SpecCost& sc : eval.specs) {
        const int per_core =
            (sc.replicas + sc.processors_spanned - 1) / sc.processors_spanned;
        for (int c = 0; c < sc.processors_spanned; ++c)
          core_power[static_cast<std::size_t>(sc.first_processor + c)] +=
              sc.power * per_core;
      }
      const machine::GovernorResult fit = machine::fit_envelope(
          core_power, machine.topology, machine.envelope);
      std::cout << "Governor: "
                << (fit.feasible ? "fits after DVFS" : "cannot fit") << "; "
                << "slowest core at f = " << fit.min_frequency_used
                << " (slowdown " << fit.worst_slowdown << "x)\n";
    }
  }
  std::cout << "\nNo thread was ever started: every number above came from the\n"
               "closed-form model — the paper's 'quickly compare algorithmic\n"
               "approaches in the context of a multithreaded platform'.\n";
  return 0;
}
