#pragma once
/// \file fault_hooks.hpp
/// \brief The message-layer fault hook shared by Mailbox and BoundedMailbox.
///
/// Each send consults three sites in a fixed order — MsgDelay, MsgDrop,
/// MsgDuplicate — so every site's per-actor decision stream advances exactly
/// once per send regardless of which faults fire (that fixed cadence is what
/// keeps the schedule deterministic). Decisions are keyed by the calling
/// thread's ActorScope; the executor scopes each process thread to its
/// process id, so Communicator sends inherit a stable key. Costs one relaxed
/// load when injection is off.

#include "fault/injector.hpp"

#include <chrono>
#include <thread>

namespace stamp::msg::detail {

/// What the fault layer decided for one send.
struct SendFaults {
  bool drop = false;       ///< discard the message instead of enqueueing
  bool duplicate = false;  ///< enqueue a second copy (copyable T only)
};

/// Runs the per-send decision cadence. A fired MsgDelay sleeps here, before
/// any lock is taken (the delay models transit latency, not lock hold time);
/// its magnitude is in nanoseconds. Drop beats duplicate when both fire.
inline SendFaults check_send_faults() {
  SendFaults faults;
  if (!fault::injection_enabled()) return faults;
  auto& injector = fault::Injector::current();
  if (const auto delay = injector.decide_here(fault::FaultSite::MsgDelay)) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::nano>(delay->magnitude));
  }
  faults.drop = injector.decide_here(fault::FaultSite::MsgDrop).has_value();
  faults.duplicate =
      injector.decide_here(fault::FaultSite::MsgDuplicate).has_value();
  if (faults.drop) faults.duplicate = false;
  return faults;
}

}  // namespace stamp::msg::detail
