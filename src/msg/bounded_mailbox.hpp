#pragma once
/// \file bounded_mailbox.hpp
/// \brief A bounded blocking mailbox — backpressure for server-style STAMP
///        programs.
///
/// The unbounded Mailbox models the paper's idealized message queues; real
/// servers bound their queues so fast producers block instead of exhausting
/// memory. `BoundedMailbox` adds a capacity: `send` blocks while full,
/// `try_send` fails fast. Blocked senders are exactly the synch_comm
/// "blocked processes in message passing" behaviour, so this is also the
/// building block for rendezvous-style channels (capacity 1).

#include "msg/fault_hooks.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace stamp::msg {

/// Thrown when sending to / receiving from a closed bounded mailbox.
class BoundedMailboxClosed : public std::runtime_error {
 public:
  BoundedMailboxClosed() : std::runtime_error("bounded mailbox closed") {}
};

template <typename T>
class BoundedMailbox {
 public:
  explicit BoundedMailbox(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0)
      throw std::invalid_argument("BoundedMailbox: capacity must be >= 1");
  }

  BoundedMailbox(const BoundedMailbox&) = delete;
  BoundedMailbox& operator=(const BoundedMailbox&) = delete;

  /// Blocks while the mailbox is full; throws BoundedMailboxClosed if closed.
  /// With fault injection armed the send may be dropped, delayed, or (when
  /// there is spare capacity) duplicated.
  void send(T value) {
    const detail::SendFaults faults = detail::check_send_faults();
    if (faults.drop) return;
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return queue_.size() < capacity_ || closed_; });
    if (closed_) throw BoundedMailboxClosed();
    queue_.push_back(std::move(value));
    const bool duplicated = maybe_duplicate(faults);
    lock.unlock();
    if (duplicated)
      not_empty_.notify_all();
    else
      not_empty_.notify_one();
  }

  /// Like `send`, but gives up after `timeout` instead of blocking
  /// indefinitely on a full mailbox. Returns true once enqueued; on timeout
  /// returns false with `value` untouched, so the caller can retry or shed
  /// the message. Throws BoundedMailboxClosed if the mailbox closes while
  /// waiting. A dropped (injected) send reports true: the sender handed the
  /// message off, the transit lost it.
  template <typename Rep, typename Period>
  [[nodiscard]] bool send_for(T& value,
                              std::chrono::duration<Rep, Period> timeout) {
    const detail::SendFaults faults = detail::check_send_faults();
    if (faults.drop) {
      T lost = std::move(value);
      static_cast<void>(lost);
      return true;
    }
    std::unique_lock lock(mutex_);
    if (!not_full_.wait_for(lock, timeout, [&] {
          return queue_.size() < capacity_ || closed_;
        }))
      return false;
    if (closed_) throw BoundedMailboxClosed();
    queue_.push_back(std::move(value));
    const bool duplicated = maybe_duplicate(faults);
    lock.unlock();
    if (duplicated)
      not_empty_.notify_all();
    else
      not_empty_.notify_one();
    return true;
  }

  /// Non-blocking send; returns false when full (value untouched) and throws
  /// when closed.
  [[nodiscard]] bool try_send(T& value) {
    {
      const std::scoped_lock lock(mutex_);
      if (closed_) throw BoundedMailboxClosed();
      if (queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until a message is available; drains after close, then throws.
  [[nodiscard]] T receive() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) throw BoundedMailboxClosed();
    T value = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Like `receive`, but gives up after `timeout`: returns nullopt when no
  /// message arrived in time. Throws BoundedMailboxClosed once the mailbox is
  /// closed and drained.
  ///
  /// Written as an explicit predicate loop over `wait_until` rather than a
  /// predicated `wait_for`, for two reasons. First, a spurious wakeup can
  /// never surface as an early nullopt: every wakeup re-tests the real state
  /// and only an expired deadline with a genuinely empty queue gives up.
  /// Second, the timeout-vs-close race is decided deliberately: when the
  /// deadline and a `close()` land together, close wins — the caller gets the
  /// terminal BoundedMailboxClosed, not a nullopt that invites another wait
  /// on a mailbox that will never deliver. (Regression-tested against
  /// concurrent close in tests/msg/test_bounded_mailbox.cpp.)
  template <typename Rep, typename Period>
  [[nodiscard]] std::optional<T> recv_for(
      std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::unique_lock lock(mutex_);
    for (;;) {
      if (!queue_.empty()) {
        T value = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return value;
      }
      if (closed_) throw BoundedMailboxClosed();
      if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout) {
        // One final predicate check under the lock: a message or a close that
        // raced the expiring deadline beats the timeout.
        if (!queue_.empty()) continue;
        if (closed_) throw BoundedMailboxClosed();
        return std::nullopt;
      }
    }
  }

  [[nodiscard]] std::optional<T> try_receive() {
    std::optional<T> value;
    {
      const std::scoped_lock lock(mutex_);
      if (queue_.empty()) return std::nullopt;
      value = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Close: senders and blocked senders throw; receivers drain then throw.
  ///
  /// Shutdown-race audit: `closed_` is only written under `mutex_`, and both
  /// wait predicates (`not_full_`'s and `not_empty_`'s) test it, so the two
  /// notify_all calls below cannot race with a waiter re-checking a stale
  /// predicate — a sender blocked on a full queue and a receiver blocked on
  /// an empty one are BOTH guaranteed to wake and observe `closed_`.
  /// (Regression-tested with two simultaneously blocked senders in
  /// tests/msg/test_bounded_mailbox.cpp.)
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return queue_.size();
  }
  [[nodiscard]] bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

 private:
  /// Duplication is best-effort under a capacity: the copy is enqueued only
  /// when space remains (a duplicate must never turn into a blocking send).
  /// Caller holds `mutex_`; returns whether a second message was enqueued.
  [[nodiscard]] bool maybe_duplicate(const detail::SendFaults& faults) {
    if constexpr (std::is_copy_constructible_v<T>) {
      if (faults.duplicate && queue_.size() < capacity_) {
        queue_.push_back(queue_.back());
        return true;
      }
    } else {
      static_cast<void>(faults);
    }
    return false;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace stamp::msg
