#pragma once
/// \file bounded_mailbox.hpp
/// \brief A bounded blocking mailbox — backpressure for server-style STAMP
///        programs.
///
/// The unbounded Mailbox models the paper's idealized message queues; real
/// servers bound their queues so fast producers block instead of exhausting
/// memory. `BoundedMailbox` adds a capacity: `send` blocks while full,
/// `try_send` fails fast. Blocked senders are exactly the synch_comm
/// "blocked processes in message passing" behaviour, so this is also the
/// building block for rendezvous-style channels (capacity 1).

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

namespace stamp::msg {

/// Thrown when sending to / receiving from a closed bounded mailbox.
class BoundedMailboxClosed : public std::runtime_error {
 public:
  BoundedMailboxClosed() : std::runtime_error("bounded mailbox closed") {}
};

template <typename T>
class BoundedMailbox {
 public:
  explicit BoundedMailbox(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0)
      throw std::invalid_argument("BoundedMailbox: capacity must be >= 1");
  }

  BoundedMailbox(const BoundedMailbox&) = delete;
  BoundedMailbox& operator=(const BoundedMailbox&) = delete;

  /// Blocks while the mailbox is full; throws BoundedMailboxClosed if closed.
  void send(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return queue_.size() < capacity_ || closed_; });
    if (closed_) throw BoundedMailboxClosed();
    queue_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
  }

  /// Non-blocking send; returns false when full (value untouched) and throws
  /// when closed.
  [[nodiscard]] bool try_send(T& value) {
    {
      const std::scoped_lock lock(mutex_);
      if (closed_) throw BoundedMailboxClosed();
      if (queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until a message is available; drains after close, then throws.
  [[nodiscard]] T receive() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) throw BoundedMailboxClosed();
    T value = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  [[nodiscard]] std::optional<T> try_receive() {
    std::optional<T> value;
    {
      const std::scoped_lock lock(mutex_);
      if (queue_.empty()) return std::nullopt;
      value = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Close: senders and blocked senders throw; receivers drain then throw.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return queue_.size();
  }
  [[nodiscard]] bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace stamp::msg
