#pragma once
/// \file communicator.hpp
/// \brief Typed point-to-point messaging and collectives among the STAMP
///        processes of one program, with intra/inter instrumentation.
///
/// A `Communicator<T>` owns one mailbox per process. Sends and receives are
/// charged to the acting process's Recorder, classified intra- vs
/// inter-processor from the placement map (the sender/receiver pair's slots).
/// `synch_comm` programs get an implicit barrier from `exchange()`; under
/// `async_comm` the designer synchronizes explicitly, as the paper requires.

#include "core/attributes.hpp"
#include "msg/mailbox.hpp"
#include "runtime/barrier.hpp"
#include "runtime/executor.hpp"

#include <memory>
#include <vector>

namespace stamp::msg {

/// A delivered message with its provenance (needed to classify the receive).
template <typename T>
struct Envelope {
  int from = -1;
  T value{};
};

template <typename T>
class Communicator {
 public:
  /// \param parties   number of STAMP processes
  /// \param comm_mode Synchronous adds a barrier at the end of `exchange`
  ///                  (the paper's "implicit barrier synchronization").
  explicit Communicator(int parties, CommMode comm_mode = CommMode::Synchronous)
      : mode_(comm_mode), barrier_(parties) {
    if (parties < 1)
      throw std::invalid_argument("Communicator: parties < 1");
    boxes_.reserve(static_cast<std::size_t>(parties));
    for (int i = 0; i < parties; ++i)
      boxes_.push_back(std::make_unique<Mailbox<Envelope<T>>>());
  }

  [[nodiscard]] int parties() const noexcept {
    return static_cast<int>(boxes_.size());
  }
  [[nodiscard]] CommMode mode() const noexcept { return mode_; }

  /// Point-to-point send; charged to `ctx`'s process as one message send.
  /// Fault injection applies at the underlying mailbox (drop/delay/dup keyed
  /// by the sending process — the executor scopes each process thread to its
  /// id); the send cost is charged either way, because a message lost in
  /// transit was still paid for by the sender.
  void send(runtime::Context& ctx, int to, T value) {
    check_peer(to);
    ctx.recorder().msg_send(ctx.intra_with(to));
    boxes_[static_cast<std::size_t>(to)]->send(
        Envelope<T>{ctx.id(), std::move(value)});
  }

  /// Blocking receive from own mailbox; charged as one message receive,
  /// classified by the sender's placement.
  [[nodiscard]] Envelope<T> receive(runtime::Context& ctx) {
    Envelope<T> env = boxes_[static_cast<std::size_t>(ctx.id())]->receive();
    ctx.recorder().msg_recv(ctx.intra_with(env.from));
    return env;
  }

  /// Non-blocking receive.
  [[nodiscard]] std::optional<Envelope<T>> try_receive(runtime::Context& ctx) {
    std::optional<Envelope<T>> env =
        boxes_[static_cast<std::size_t>(ctx.id())]->try_receive();
    if (env) ctx.recorder().msg_recv(ctx.intra_with(env->from));
    return env;
  }

  /// Send `value` to every other process (n-1 sends).
  void broadcast(runtime::Context& ctx, const T& value) {
    for (int peer = 0; peer < parties(); ++peer) {
      if (peer == ctx.id()) continue;
      send(ctx, peer, value);
    }
  }

  /// Receive exactly one message from every other process; returns values
  /// indexed by sender (own slot holds `own`).
  [[nodiscard]] std::vector<T> receive_from_all(runtime::Context& ctx, T own) {
    std::vector<T> values(static_cast<std::size_t>(parties()));
    values[static_cast<std::size_t>(ctx.id())] = std::move(own);
    for (int k = 0; k + 1 < parties(); ++k) {
      Envelope<T> env = receive(ctx);
      values[static_cast<std::size_t>(env.from)] = std::move(env.value);
    }
    return values;
  }

  /// All-to-all exchange of one value per process: broadcast + receive-all,
  /// then, under synch_comm, the implicit barrier.
  [[nodiscard]] std::vector<T> exchange(runtime::Context& ctx, T value) {
    broadcast(ctx, value);
    std::vector<T> values = receive_from_all(ctx, std::move(value));
    if (mode_ == CommMode::Synchronous) barrier_.arrive_and_wait();
    return values;
  }

  /// Explicit barrier (for async_comm programs that need one at specific
  /// points, per the paper's "the designer should specify some
  /// synchronization mechanism explicitly").
  void barrier() { barrier_.arrive_and_wait(); }

  /// Closes every mailbox (shutdown path for server-style programs).
  void close_all() {
    for (auto& b : boxes_) b->close();
  }

 private:
  void check_peer(int peer) const {
    if (peer < 0 || peer >= parties())
      throw std::out_of_range("Communicator: peer out of range");
  }

  CommMode mode_;
  runtime::PhaseBarrier barrier_;
  std::vector<std::unique_ptr<Mailbox<Envelope<T>>>> boxes_;
};

}  // namespace stamp::msg
