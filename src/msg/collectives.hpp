#pragma once
/// \file collectives.hpp
/// \brief Tree-structured collective operations over a Communicator.
///
/// The all-to-all `exchange` of communicator.hpp costs Theta(n) messages per
/// process per round. The collectives here are the log-depth alternatives a
/// STAMP algorithm designer reaches for when the exchange term dominates
/// T_S-round: binomial-tree broadcast and reduce, recursive-doubling
/// all-reduce, and a Hillis–Steele scan. All are fully instrumented — every
/// send/receive lands in the acting process's recorder with the right
/// intra/inter classification, so the cost model prices them like any other
/// communication.
///
/// Semantics notes:
///  * every process of the communicator must call the collective, with the
///    same `root` where applicable (MPI-style collective semantics);
///  * a Communicator mailbox is a single FIFO per process, so combining
///    operators must be **commutative and associative** (a parent may receive
///    its children's contributions in any order);
///  * phased collectives (all-reduce, scan) barrier between phases so
///    messages of different phases cannot interleave.

#include "msg/communicator.hpp"

#include <functional>
#include <stdexcept>
#include <vector>

namespace stamp::msg {

/// Binomial-tree broadcast: O(log n) rounds; every process receives exactly
/// one message and forwards to its subtree. Returns the broadcast value.
template <typename T>
[[nodiscard]] T broadcast_tree(runtime::Context& ctx, Communicator<T>& comm,
                               T value, int root = 0) {
  const int n = comm.parties();
  const int me = (ctx.id() - root + n) % n;  // rank relative to the root
  T current = std::move(value);

  // Parent of r is r - lowbit(r); receive once, then forward to children
  // r + m for every power of two m below lowbit(r) (or below the tree span
  // for the root).
  int span = 1;  // lowbit(me), or smallest power of two >= n for the root
  if (me != 0) {
    Envelope<T> env = comm.receive(ctx);
    current = std::move(env.value);
    while ((me & span) == 0) span <<= 1;
  } else {
    while (span < n) span <<= 1;
  }
  for (int m = span >> 1; m > 0; m >>= 1) {
    if (me + m < n) {
      const int child = (me + m + root) % n;
      comm.send(ctx, child, current);
    }
  }
  return current;
}

/// Binomial-tree reduce: combines all values at `root` with `op` (commutative
/// and associative). The root returns the full reduction; non-root processes
/// return their partial accumulation (whatever they combined before sending
/// it upward).
template <typename T, typename Op>
[[nodiscard]] T reduce_tree(runtime::Context& ctx, Communicator<T>& comm,
                            T value, Op op, int root = 0) {
  const int n = comm.parties();
  const int me = (ctx.id() - root + n) % n;
  T acc = std::move(value);
  for (int bit = 1; bit < n; bit <<= 1) {
    if ((me & bit) != 0) {
      const int parent = ((me - bit) + root) % n;
      comm.send(ctx, parent, std::move(acc));
      return T{};  // contribution handed off
    }
    if (me + bit < n) {
      Envelope<T> env = comm.receive(ctx);
      acc = op(std::move(acc), std::move(env.value));
    }
  }
  return acc;
}

/// Recursive-doubling all-reduce: O(log n) phases, every process ends with
/// the full reduction. Requires a power-of-two party count. Phases are
/// barrier-separated so partner messages cannot cross phases.
template <typename T, typename Op>
[[nodiscard]] T all_reduce_doubling(runtime::Context& ctx, Communicator<T>& comm,
                                    T value, Op op) {
  const int n = comm.parties();
  if ((n & (n - 1)) != 0)
    throw std::invalid_argument("all_reduce_doubling: parties must be 2^k");
  T acc = std::move(value);
  for (int bit = 1; bit < n; bit <<= 1) {
    const int partner = ctx.id() ^ bit;
    comm.send(ctx, partner, acc);
    Envelope<T> env = comm.receive(ctx);
    acc = op(std::move(acc), std::move(env.value));
    comm.barrier();
  }
  return acc;
}

/// Hillis–Steele inclusive scan over process ranks: process i ends with
/// op(value_0, ..., value_i). O(log n) barrier-separated phases; any n.
template <typename T, typename Op>
[[nodiscard]] T scan_inclusive(runtime::Context& ctx, Communicator<T>& comm,
                               T value, Op op) {
  const int n = comm.parties();
  T acc = std::move(value);
  for (int offset = 1; offset < n; offset <<= 1) {
    if (ctx.id() + offset < n) comm.send(ctx, ctx.id() + offset, acc);
    if (ctx.id() - offset >= 0) {
      Envelope<T> env = comm.receive(ctx);
      acc = op(std::move(env.value), std::move(acc));
    }
    comm.barrier();
  }
  return acc;
}

/// Gather: every process sends its value to `root`, which receives them
/// indexed by sender. Non-root processes get an empty vector.
template <typename T>
[[nodiscard]] std::vector<T> gather(runtime::Context& ctx, Communicator<T>& comm,
                                    T value, int root = 0) {
  const int n = comm.parties();
  if (ctx.id() != root) {
    comm.send(ctx, root, std::move(value));
    return {};
  }
  std::vector<T> values(static_cast<std::size_t>(n));
  values[static_cast<std::size_t>(root)] = std::move(value);
  for (int k = 0; k + 1 < n; ++k) {
    Envelope<T> env = comm.receive(ctx);
    values[static_cast<std::size_t>(env.from)] = std::move(env.value);
  }
  return values;
}

/// Scatter: `root` sends values[i] to process i; everyone returns their slice.
template <typename T>
[[nodiscard]] T scatter(runtime::Context& ctx, Communicator<T>& comm,
                        std::vector<T> values, int root = 0) {
  const int n = comm.parties();
  if (ctx.id() == root) {
    if (static_cast<int>(values.size()) != n)
      throw std::invalid_argument("scatter: need one value per process");
    for (int peer = 0; peer < n; ++peer) {
      if (peer == root) continue;
      comm.send(ctx, peer, std::move(values[static_cast<std::size_t>(peer)]));
    }
    return std::move(values[static_cast<std::size_t>(root)]);
  }
  return comm.receive(ctx).value;
}

/// All-gather built from gather + broadcast (works for any n).
template <typename T>
[[nodiscard]] std::vector<T> all_gather(runtime::Context& ctx,
                                        Communicator<std::vector<T>>& vec_comm,
                                        Communicator<T>& comm, T value,
                                        int root = 0) {
  std::vector<T> gathered = gather(ctx, comm, std::move(value), root);
  return broadcast_tree(ctx, vec_comm, std::move(gathered), root);
}

}  // namespace stamp::msg
