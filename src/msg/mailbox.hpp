#pragma once
/// \file mailbox.hpp
/// \brief Blocking multi-producer mailboxes — the message queues of STAMP
///        processes ("an S-unit receives messages by reading from its
///        incoming message queue").

#include "msg/fault_hooks.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace stamp::msg {

/// Thrown when receiving from a mailbox that is closed and drained.
class MailboxClosed : public std::runtime_error {
 public:
  MailboxClosed() : std::runtime_error("mailbox closed") {}
};

/// An unbounded, blocking, multi-producer multi-consumer queue. Values are
/// moved in and out (CP.31: pass data between threads by value).
template <typename T>
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueue one message. Throws MailboxClosed if the mailbox was closed.
  /// With fault injection armed, the send may be dropped (message lost in
  /// transit — the enqueue never happens), delayed, or duplicated.
  void send(T value) {
    const detail::SendFaults faults = detail::check_send_faults();
    if (faults.drop) return;
    bool duplicated = false;
    {
      const std::scoped_lock lock(mutex_);
      if (closed_) throw MailboxClosed();
      queue_.push_back(std::move(value));
      if constexpr (std::is_copy_constructible_v<T>) {
        if (faults.duplicate) {
          queue_.push_back(queue_.back());
          duplicated = true;
        }
      }
    }
    // Two messages need two wakeups; notify_all covers any number of waiters.
    if (duplicated)
      cv_.notify_all();
    else
      cv_.notify_one();
  }

  /// Blocks until a message is available; throws MailboxClosed once the
  /// mailbox is closed and empty.
  [[nodiscard]] T receive() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) throw MailboxClosed();
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Non-blocking receive.
  [[nodiscard]] std::optional<T> try_receive() {
    const std::scoped_lock lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Closes the mailbox: further sends throw; receivers drain then throw.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return queue_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace stamp::msg
