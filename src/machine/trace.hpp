#pragma once
/// \file trace.hpp
/// \brief Execution traces the machine simulator replays.
///
/// A trace is the ordered operation stream of one STAMP process. The S-round
/// structure fixes the order within a round — receive/read, local compute,
/// send/write, then (under synch_comm) a barrier — so a trace can be
/// synthesized from a `StampProcess` cost structure without re-running the
/// program.

#include "core/attributes.hpp"
#include "core/process.hpp"
#include "runtime/instrument.hpp"

#include <cstdint>
#include <vector>

namespace stamp::machine {

/// One operation of a process trace.
struct TraceOp {
  enum class Kind : std::uint8_t {
    Compute,   ///< `amount` local operations
    ShmRead,   ///< `amount` shared-memory reads (intra flag chooses L1 vs L2)
    ShmWrite,  ///< `amount` shared-memory writes
    MsgSend,   ///< `amount` message sends (delivery after L)
    MsgRecv,   ///< wait for and consume `amount` incoming messages
    Barrier,   ///< synchronize with all other processes
  };

  Kind kind = Kind::Compute;
  double amount = 0;
  bool intra = false;  ///< intra-processor (L1/core-local) vs inter
  double fp = 0;       ///< for Compute: the floating-point share of `amount`
                       ///  (energy accounting; the rest charges as integer)

  friend bool operator==(const TraceOp&, const TraceOp&) = default;
};

using ProcessTrace = std::vector<TraceOp>;

/// Synthesize the trace of one S-round from its counters:
/// receives, shared reads, compute, shared writes, sends — the canonical
/// S-round order ("at the beginning of each S-round, an S-unit receives
/// messages or reads the shared memory; ... at the end ... sends or writes").
/// Appends a barrier when `comm == Synchronous`.
[[nodiscard]] ProcessTrace trace_of_round(const CostCounters& counters,
                                          CommMode comm);

/// Synthesize the full trace of a recorded `StampProcess`. The process's
/// aggregate is flattened to one round (totals preserved; per-round latency
/// structure lost) — prefer `trace_of_recorder` when a Recorder is at hand.
[[nodiscard]] ProcessTrace trace_of_process(const StampProcess& process,
                                            CommMode comm);

/// Synthesize a trace from a Recorder, preserving the unit/round structure:
/// each recorded S-round becomes receive/read -> compute -> send/write
/// (+ barrier under synch_comm), with outside-of-round work appended after
/// each unit's rounds.
[[nodiscard]] ProcessTrace trace_of_recorder(const runtime::Recorder& recorder,
                                             CommMode comm);

/// Total barriers in a trace (used to check barrier episode matching).
[[nodiscard]] std::size_t barrier_count(const ProcessTrace& trace);

}  // namespace stamp::machine
