#pragma once
/// \file simulator.hpp
/// \brief Trace-replay simulator of a CMP/CMT machine.
///
/// Replays per-process operation traces on a machine with explicit resources:
/// each hardware thread computes independently at its core's operating point;
/// each core has a private L1 port (intra-processor shared memory) and an
/// intra-core message port; each chip has a shared L2 port (inter-processor
/// shared memory); inter-processor messages egress through per-core crossbar
/// ports (the crossbar is non-blocking from each source). Latencies add
/// after bandwidth service, per the model's `latency + g * accesses` shape.
///
/// Power follows the gated first-order model: energy = sum of per-operation
/// energies, scaled f^2 by DVFS; time scales 1/f. The simulator gives the
/// "simulated" column of the benches; its results should respect the analytic
/// bounds (T_sim within first-order agreement of T_model; E identical when
/// all frequencies are nominal).

#include "core/cost_model.hpp"
#include "core/params.hpp"
#include "machine/power.hpp"
#include "machine/trace.hpp"
#include "runtime/placement_map.hpp"
#include "sim/engine.hpp"

#include <stdexcept>
#include <vector>

namespace stamp::machine {

/// Simulator knobs.
struct SimConfig {
  double barrier_latency = 1.0;  ///< time to complete a barrier episode
  /// Per-core operating points (global processor id -> point). Empty = all
  /// nominal. Shorter than the processor count = remaining cores nominal.
  std::vector<OperatingPoint> operating_points;
  /// When true, hardware threads of one core share its pipeline (CMT issue
  /// contention); when false each thread computes at full rate, matching the
  /// analytic model's assumption.
  bool share_pipeline = false;

  /// Leakage: static power burned by every *occupied* core for the whole
  /// makespan, in the model's power units. The paper's first-order model
  /// assumes 0 (perfect gating); real silicon does not.
  double static_power_per_core = 0;
  /// Clock-gating effectiveness in [0, 1]: 1 = idle functional units consume
  /// nothing (the paper's assumption); 0 = an idle occupied core burns
  /// dynamic power as if executing integer operations. Intermediate values
  /// interpolate.
  double gating_effectiveness = 1.0;

  /// Validate the gating/leakage knobs; called by replay.
  void validate_extras() const {
    if (static_power_per_core < 0)
      throw std::invalid_argument("SimConfig: negative static power");
    if (gating_effectiveness < 0 || gating_effectiveness > 1)
      throw std::invalid_argument("SimConfig: gating effectiveness in [0,1]");
  }

  [[nodiscard]] OperatingPoint point_for(int processor) const {
    if (processor < static_cast<int>(operating_points.size()))
      return operating_points[static_cast<std::size_t>(processor)];
    return OperatingPoint{};
  }
};

/// Outcome of one replay.
struct SimResult {
  std::vector<sim::Time> finish_times;  ///< per process
  sim::Time makespan = 0;               ///< max finish time
  double energy = 0;                    ///< total energy, all processes
  std::size_t barrier_episodes = 0;
  std::vector<double> l1_utilization;   ///< per core, busy/makespan
  std::vector<double> l2_utilization;   ///< per chip
  std::vector<double> router_utilization;  ///< per core (crossbar egress)
  double energy_dynamic = 0;  ///< gated per-operation energy (the model's E)
  double energy_static = 0;   ///< leakage (static_power_per_core term)
  double energy_idle = 0;     ///< imperfect-gating idle burn

  [[nodiscard]] Cost as_cost() const noexcept { return {makespan, energy}; }
  [[nodiscard]] double power() const noexcept {
    return makespan > 0 ? energy / makespan : 0;
  }
};

/// Replay `traces` (one per process) on the machine. Processes map to
/// hardware threads via `placement`. Throws std::runtime_error on deadlock
/// (all processes blocked) or on a receive with no possible sender.
[[nodiscard]] SimResult replay(const std::vector<ProcessTrace>& traces,
                               const runtime::PlacementMap& placement,
                               const MachineModel& machine,
                               const SimConfig& config = {});

}  // namespace stamp::machine
