#include "machine/power.hpp"

#include <cmath>

namespace stamp::machine {

double equal_power_frequency(int cores) {
  if (cores < 1) throw std::invalid_argument("equal_power_frequency: cores < 1");
  return std::cbrt(1.0 / static_cast<double>(cores));
}

double equal_power_speedup(int cores, double efficiency) {
  if (efficiency <= 0 || efficiency > 1)
    throw std::invalid_argument("parallel efficiency must be in (0, 1]");
  return static_cast<double>(cores) * equal_power_frequency(cores) * efficiency;
}

}  // namespace stamp::machine
