#include "machine/simulator.hpp"

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace stamp::machine {
namespace {

struct ProcState {
  sim::Time t = 0;
  std::size_t pc = 0;
  bool at_barrier = false;
  std::vector<sim::Time> inbox;  // min-heap of message arrival times

  [[nodiscard]] bool finished(const ProcessTrace& trace) const noexcept {
    return pc >= trace.size();
  }
};

void inbox_push(std::vector<sim::Time>& heap, sim::Time arrival) {
  heap.push_back(arrival);
  std::push_heap(heap.begin(), heap.end(), std::greater<>());
}

sim::Time inbox_pop(std::vector<sim::Time>& heap) {
  std::pop_heap(heap.begin(), heap.end(), std::greater<>());
  const sim::Time arrival = heap.back();
  heap.pop_back();
  return arrival;
}

}  // namespace

SimResult replay(const std::vector<ProcessTrace>& traces,
                 const runtime::PlacementMap& placement,
                 const MachineModel& machine, const SimConfig& config) {
  const int n = static_cast<int>(traces.size());
  if (n != placement.process_count())
    throw std::invalid_argument("replay: traces vs placement size mismatch");
  machine.validate();

  // Observability: one span for the replay, one per barrier episode (the
  // simulator's realization of S-round boundaries), counters at the end.
  // All of it is behind one relaxed atomic load when disabled.
  const obs::Clock::time_point wall_start = obs::Clock::now();
  obs::ScopedSpan replay_span = obs::ScopedSpan::if_enabled("sim.replay", "sim");
  replay_span.arg("processes", static_cast<double>(n));
  obs::ScopedSpan round_span;
  auto begin_round = [&](std::size_t episode) {
    round_span = obs::ScopedSpan();  // close the previous round's span first
    round_span = obs::ScopedSpan::if_enabled("sim.round", "sim");
    round_span.arg("episode", static_cast<double>(episode));
  };
  if (obs::tracing_enabled()) begin_round(0);
  std::uint64_t ops_compute = 0;
  std::uint64_t ops_shm = 0;
  std::uint64_t ops_msg = 0;
  std::uint64_t recv_stalls = 0;
  std::uint64_t send_loopbacks = 0;

  const MachineParams& mp = machine.params;
  const EnergyParams& ep = machine.energy;
  const int cores = machine.topology.total_processors();
  const int chips = machine.topology.chips;

  std::vector<sim::FifoServer> l1(static_cast<std::size_t>(cores));
  std::vector<sim::FifoServer> pipeline(static_cast<std::size_t>(cores));
  std::vector<sim::FifoServer> core_msg(static_cast<std::size_t>(cores));
  std::vector<sim::FifoServer> l2(static_cast<std::size_t>(chips));
  // The crossbar is non-blocking from each source: inter-processor messages
  // egress through a per-core port (service g_mp_e), not one chip-wide queue.
  std::vector<sim::FifoServer> router(static_cast<std::size_t>(cores));

  std::vector<ProcState> procs(static_cast<std::size_t>(n));
  std::vector<int> core_of(static_cast<std::size_t>(n));
  std::vector<int> chip_of(static_cast<std::size_t>(n));
  std::vector<double> freq(static_cast<std::size_t>(n));
  std::vector<double> e_scale(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    core_of[static_cast<std::size_t>(i)] = placement.processor_of(i);
    chip_of[static_cast<std::size_t>(i)] = placement.slot_of(i).chip;
    const OperatingPoint op = config.point_for(core_of[static_cast<std::size_t>(i)]);
    op.validate();
    freq[static_cast<std::size_t>(i)] = op.frequency;
    e_scale[static_cast<std::size_t>(i)] = energy_scale(op);
  }

  // Fault injection, simulator sites. SimCoreFail is decided once per
  // occupied core (keyed by the global core id) before the replay starts;
  // a fired decision kills the replay with CoreFailure so the caller can
  // re-place around the dead core. SimLatencySpike is decided per memory/
  // send op (keyed by the process id) and multiplies that op's service
  // demand by the spec's magnitude — a transient slow path, not extra work,
  // so energy is not scaled. The replay is single-threaded, so both streams
  // are deterministic by construction.
  if (fault::injection_enabled()) {
    std::vector<bool> core_used(static_cast<std::size_t>(cores), false);
    for (int i = 0; i < n; ++i) {
      const int core = core_of[static_cast<std::size_t>(i)];
      core_used[static_cast<std::size_t>(core)] = true;
    }
    for (int c = 0; c < cores; ++c) {
      if (!core_used[static_cast<std::size_t>(c)]) continue;
      if (fault::Injector::current().decide(fault::FaultSite::SimCoreFail,
                                           static_cast<std::uint64_t>(c)))
        throw fault::CoreFailure(c);
    }
  }
  auto spiked = [](int process, double demand) {
    if (!fault::injection_enabled()) return demand;
    if (const auto spike = fault::Injector::current().decide(
            fault::FaultSite::SimLatencySpike,
            static_cast<std::uint64_t>(process)))
      return demand * std::max(1.0, spike->magnitude);
    return demand;
  };

  // Per-process remaining-barrier bookkeeping for unequal barrier counts.
  std::vector<std::size_t> total_barriers(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i)
    total_barriers[static_cast<std::size_t>(i)] =
        barrier_count(traces[static_cast<std::size_t>(i)]);
  std::size_t episodes_completed = 0;

  // Round-robin cursors so sends spread over eligible peers.
  std::vector<std::size_t> intra_cursor(static_cast<std::size_t>(n), 0);
  std::vector<std::size_t> inter_cursor(static_cast<std::size_t>(n), 0);

  double energy = 0;
  std::size_t barrier_episodes = 0;
  // Per-core activity integral (time the core's threads spent executing ops)
  // for the imperfect-gating idle charge.
  std::vector<double> core_active(static_cast<std::size_t>(cores), 0.0);

  auto msg_count = [](double amount) {
    return static_cast<long long>(std::llround(amount));
  };

  auto pick_peer = [&](int from, bool intra) -> int {
    std::size_t& cursor = intra ? intra_cursor[static_cast<std::size_t>(from)]
                                : inter_cursor[static_cast<std::size_t>(from)];
    for (int tries = 0; tries < n; ++tries) {
      const int candidate = static_cast<int>((cursor + tries) % n);
      if (candidate == from) continue;
      if (placement.same_processor(from, candidate) == intra) {
        cursor = static_cast<std::size_t>(candidate) + 1;
        return candidate;
      }
    }
    return -1;  // no eligible peer; delivery loops back to self
  };

  auto try_release_barrier = [&]() {
    for (int i = 0; i < n; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      if (total_barriers[ui] > episodes_completed && !procs[ui].at_barrier)
        return;  // somebody still on the way
    }
    sim::Time release = 0;
    bool any = false;
    for (int i = 0; i < n; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      if (total_barriers[ui] > episodes_completed) {
        release = std::max(release, procs[ui].t);
        any = true;
      }
    }
    if (!any) return;
    release += config.barrier_latency;
    for (int i = 0; i < n; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      if (total_barriers[ui] > episodes_completed && procs[ui].at_barrier) {
        procs[ui].t = release;
        procs[ui].at_barrier = false;
        ++procs[ui].pc;
      }
    }
    ++episodes_completed;
    ++barrier_episodes;
    if (obs::tracing_enabled()) begin_round(episodes_completed);
  };

  auto runnable = [&](int i) {
    const auto ui = static_cast<std::size_t>(i);
    const ProcState& p = procs[ui];
    if (p.finished(traces[ui]) || p.at_barrier) return false;
    const TraceOp& op = traces[ui][p.pc];
    if (op.kind == TraceOp::Kind::MsgRecv)
      return static_cast<long long>(p.inbox.size()) >= msg_count(op.amount);
    return true;
  };

  auto all_finished = [&]() {
    for (int i = 0; i < n; ++i)
      if (!procs[static_cast<std::size_t>(i)].finished(
              traces[static_cast<std::size_t>(i)]))
        return false;
    return true;
  };

  while (!all_finished()) {
    int pick = -1;
    for (int i = 0; i < n; ++i) {
      if (!runnable(i)) continue;
      if (pick < 0 ||
          procs[static_cast<std::size_t>(i)].t < procs[static_cast<std::size_t>(pick)].t)
        pick = i;
    }
    if (pick < 0) {
      if (obs::tracing_enabled())
        obs::TraceRecorder::global().instant("sim.deadlock", "sim");
      throw std::runtime_error(
          "machine::replay: deadlock (no runnable process; mismatched "
          "receives or barriers)");
    }

    const auto ui = static_cast<std::size_t>(pick);
    ProcState& p = procs[ui];
    const TraceOp& op = traces[ui][p.pc];
    const int core = core_of[ui];
    const int chip = chip_of[ui];
    const double f = freq[ui];
    const double es = e_scale[ui];

    switch (op.kind) {
      case TraceOp::Kind::Compute: {
        const double duration = op.amount / f;
        if (config.share_pipeline) {
          p.t = pipeline[static_cast<std::size_t>(core)].serve(p.t, duration);
        } else {
          p.t += duration;
        }
        core_active[static_cast<std::size_t>(core)] += duration;
        const double int_ops = op.amount - op.fp;
        energy += (op.fp * ep.w_fp + int_ops * ep.w_int) * es;
        ++ops_compute;
        ++p.pc;
        break;
      }
      case TraceOp::Kind::ShmRead:
      case TraceOp::Kind::ShmWrite: {
        const bool read = op.kind == TraceOp::Kind::ShmRead;
        const double g = op.intra ? mp.g_sh_a : mp.g_sh_e;
        const double ell = op.intra ? mp.ell_a : mp.ell_e;
        sim::FifoServer& port = op.intra ? l1[static_cast<std::size_t>(core)]
                                         : l2[static_cast<std::size_t>(chip)];
        const double demand = spiked(pick, g * op.amount);
        p.t = port.serve(p.t, demand) + ell;
        core_active[static_cast<std::size_t>(core)] += demand + ell;
        energy += op.amount * (read ? ep.w_d_r : ep.w_d_w) * es;
        ++ops_shm;
        ++p.pc;
        break;
      }
      case TraceOp::Kind::MsgSend: {
        const long long k = msg_count(op.amount);
        // One spike decision per send op; a fired spike slows all k messages.
        const double g = spiked(pick, op.intra ? mp.g_mp_a : mp.g_mp_e);
        const double L = op.intra ? mp.L_a : mp.L_e;
        sim::FifoServer& port = op.intra
                                    ? core_msg[static_cast<std::size_t>(core)]
                                    : router[static_cast<std::size_t>(core)];
        for (long long m = 0; m < k; ++m) {
          const sim::Time done = port.serve(p.t, g);
          const int peer = pick_peer(pick, op.intra);
          if (peer < 0) ++send_loopbacks;
          const auto dest = static_cast<std::size_t>(peer >= 0 ? peer : pick);
          inbox_push(procs[dest].inbox, done + L);
        }
        // The sender's own clock advances by its occupancy of the port.
        p.t = std::max(p.t, port.next_free());
        core_active[static_cast<std::size_t>(core)] +=
            g * static_cast<double>(k);
        energy += static_cast<double>(k) * ep.w_m_s * es;
        ++ops_msg;
        ++p.pc;
        break;
      }
      case TraceOp::Kind::MsgRecv: {
        const long long k = msg_count(op.amount);
        const double g = op.intra ? mp.g_mp_a : mp.g_mp_e;
        sim::Time ready = p.t;
        for (long long m = 0; m < k; ++m)
          ready = std::max(ready, inbox_pop(p.inbox));
        if (ready > p.t) ++recv_stalls;
        // Receive processing occupies the receiver for g per message.
        p.t = ready + g * static_cast<double>(k);
        core_active[static_cast<std::size_t>(core)] +=
            g * static_cast<double>(k);
        energy += static_cast<double>(k) * ep.w_m_r * es;
        ++ops_msg;
        ++p.pc;
        break;
      }
      case TraceOp::Kind::Barrier: {
        p.at_barrier = true;
        try_release_barrier();
        break;
      }
    }
  }

  SimResult result;
  result.finish_times.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    result.finish_times[static_cast<std::size_t>(i)] =
        procs[static_cast<std::size_t>(i)].t;
    result.makespan =
        std::max(result.makespan, procs[static_cast<std::size_t>(i)].t);
  }
  result.energy_dynamic = energy;
  result.barrier_episodes = barrier_episodes;

  // Static leakage and imperfect-gating idle burn, per occupied core.
  std::vector<bool> occupied(static_cast<std::size_t>(cores), false);
  for (int i = 0; i < n; ++i) occupied[static_cast<std::size_t>(core_of[static_cast<std::size_t>(i)])] = true;
  config.validate_extras();
  for (int c = 0; c < cores; ++c) {
    const auto uc = static_cast<std::size_t>(c);
    if (!occupied[uc]) continue;
    result.energy_static += config.static_power_per_core * result.makespan;
    if (config.gating_effectiveness < 1.0) {
      const OperatingPoint point = config.point_for(c);
      const double idle =
          std::max(0.0, result.makespan - std::min(core_active[uc], result.makespan));
      // Un-gated idle units burn as if retiring integer ops at frequency f:
      // f ops per time unit, each op's energy scaled f^2.
      result.energy_idle += (1.0 - config.gating_effectiveness) * idle *
                            point.frequency * ep.w_int * energy_scale(point);
    }
  }
  result.energy = result.energy_dynamic + result.energy_static + result.energy_idle;

  auto utilization = [&](const std::vector<sim::FifoServer>& servers) {
    std::vector<double> u;
    u.reserve(servers.size());
    for (const sim::FifoServer& s : servers)
      u.push_back(result.makespan > 0 ? s.busy_time() / result.makespan : 0.0);
    return u;
  };
  result.l1_utilization = utilization(l1);
  result.l2_utilization = utilization(l2);
  result.router_utilization = utilization(router);

  if (obs::metrics_enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.counter("sim.replays").add();
    reg.counter("sim.barrier_episodes").add(barrier_episodes);
    reg.counter("sim.ops.compute").add(ops_compute);
    reg.counter("sim.ops.shm").add(ops_shm);
    reg.counter("sim.ops.msg").add(ops_msg);
    reg.counter("sim.recv_stalls").add(recv_stalls);
    reg.counter("sim.send_loopbacks").add(send_loopbacks);
    reg.histogram("sim.replay_ns").record(obs::nanos_since(wall_start));
  }
  round_span = obs::ScopedSpan();  // args must land on replay_span (innermost)
  replay_span.arg("barrier_episodes", static_cast<double>(barrier_episodes));
  replay_span.arg("makespan", result.makespan);
  return result;
}

}  // namespace stamp::machine
