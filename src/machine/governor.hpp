#pragma once
/// \file governor.hpp
/// \brief A DVFS governor: pick per-core operating points so the program fits
///        the power envelope — the other lever (besides placement) the paper's
///        conclusion offers for "meeting the power limit".
///
/// Dynamic power scales as f^3, so a core whose nominal-power demand P
/// exceeds its cap can run at f = cbrt(cap / P) and fit exactly. The governor
/// applies that per core, then scales chips/system uniformly if those caps
/// still bind. Performance degrades by 1/f (the model's time scale), which
/// callers can price by re-simulating with the returned operating points.

#include "core/params.hpp"
#include "machine/power.hpp"

#include <span>
#include <vector>

namespace stamp::machine {

struct GovernorResult {
  std::vector<OperatingPoint> points;  ///< one per processor (global id)
  bool feasible = true;   ///< false if caps cannot be met even at min_frequency
  double min_frequency_used = 1.0;  ///< slowest core after fitting
  double worst_slowdown = 1.0;      ///< 1 / min_frequency_used
};

/// Fit per-core frequencies to the envelope.
///
/// \param nominal_core_power  dynamic power each core would dissipate at
///                            f = 1 (index = global processor id; pass 0 for
///                            idle cores).
/// \param topology            for chip grouping.
/// \param envelope            per-processor / per-chip / system caps (0 = none).
/// \param max_frequency       cores never exceed this (default nominal 1.0).
/// \param min_frequency       floor below which the governor gives up and
///                            reports infeasible (default 0.05).
[[nodiscard]] GovernorResult fit_envelope(std::span<const double> nominal_core_power,
                                          const Topology& topology,
                                          const PowerEnvelope& envelope,
                                          double max_frequency = 1.0,
                                          double min_frequency = 0.05);

/// What thread-shedding degradation settled on.
struct DegradeResult {
  int threads_per_processor = 0;  ///< threads per core the envelope can host
  GovernorResult governor;        ///< the frequency fit at that thread count
  bool degraded = false;  ///< true when threads were shed below the topology's
  bool feasible = true;   ///< false when even one thread per core won't fit
};

/// Graceful degradation when DVFS alone cannot acceptably meet the envelope:
/// shed hardware threads per core. Each occupied core's nominal power is
/// `k * per_thread_power` when k of its threads run. Starting from the full
/// `topology.threads_per_processor`, k is reduced until `fit_envelope` is
/// feasible without any core dropping below `min_acceptable_frequency`. The
/// default floor of 1.0 means threads are shed rather than slowed — exactly
/// the paper's conclusion that under a `3(x+y)·w_int` per-core cap at most
/// 3 of a core's 4 hardware threads can run. A floor below 1.0 lets DVFS
/// absorb part of the overshoot before the next thread is shed. When even
/// k = 1 does not fit, the result reports infeasible and carries the k = 1
/// fit (clamped at the floor).
[[nodiscard]] DegradeResult degrade_threads(
    double per_thread_power, const Topology& topology,
    const PowerEnvelope& envelope, double min_acceptable_frequency = 1.0,
    double max_frequency = 1.0);

/// Power a core dissipates at operating point `p` given its nominal demand.
[[nodiscard]] inline double scaled_power(double nominal_power,
                                         const OperatingPoint& p) noexcept {
  return nominal_power * dynamic_power(p);
}

}  // namespace stamp::machine
