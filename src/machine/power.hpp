#pragma once
/// \file power.hpp
/// \brief The DVFS power model: dynamic power scales with f^3, performance
///        with f (Section 2.1's "power wall" arithmetic).
///
/// With supply voltage scaled proportionally to frequency, dynamic power is
/// P_dyn = C f V^2 ~ f^3 and performance ~ f. Hence one core at frequency f
/// burns the same dynamic power as 8 cores at f/2 — the paper's motivating
/// example — and energy per operation scales with f^2.

#include <stdexcept>

namespace stamp::machine {

/// Frequency/voltage operating point, relative to the nominal point (1.0).
struct OperatingPoint {
  double frequency = 1.0;  ///< relative clock frequency (perf multiplier)

  void validate() const {
    if (frequency <= 0)
      throw std::invalid_argument("OperatingPoint: frequency must be > 0");
  }
};

/// Dynamic power of one active core at `p`, relative to nominal power 1.
[[nodiscard]] inline double dynamic_power(const OperatingPoint& p) noexcept {
  return p.frequency * p.frequency * p.frequency;  // f^3
}

/// Time multiplier for work at `p`: operations take 1/f of nominal time.
[[nodiscard]] inline double time_scale(const OperatingPoint& p) noexcept {
  return 1.0 / p.frequency;
}

/// Energy multiplier per operation at `p`: E = P * t ~ f^3 / f = f^2.
[[nodiscard]] inline double energy_scale(const OperatingPoint& p) noexcept {
  return p.frequency * p.frequency;
}

/// The paper's comparison: `cores` cores at frequency `f` vs one core at
/// frequency 1. Equal-power condition: cores * f^3 == 1.
struct PowerWallPoint {
  int cores = 1;
  double frequency = 1.0;

  /// Total dynamic power of the configuration (all cores active).
  [[nodiscard]] double total_power() const noexcept {
    return cores * frequency * frequency * frequency;
  }

  /// Time to execute `work` perfectly-parallel operations (speedup = cores).
  [[nodiscard]] double parallel_time(double work, double efficiency = 1.0) const {
    if (efficiency <= 0 || efficiency > 1)
      throw std::invalid_argument("parallel efficiency must be in (0, 1]");
    return work / (cores * frequency * efficiency);
  }

  /// Energy to execute `work` operations.
  [[nodiscard]] double energy(double work, double efficiency = 1.0) const {
    return total_power() * parallel_time(work, efficiency);
  }
};

/// Frequency at which `cores` cores dissipate the same total dynamic power
/// as one core at nominal frequency: f = (1/cores)^(1/3).
[[nodiscard]] double equal_power_frequency(int cores);

/// Speedup of `cores` cores at equal power over one nominal core, for a
/// workload with parallel `efficiency` in (0, 1]: cores^(2/3) * efficiency.
[[nodiscard]] double equal_power_speedup(int cores, double efficiency = 1.0);

}  // namespace stamp::machine
