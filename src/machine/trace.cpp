#include "machine/trace.hpp"

namespace stamp::machine {
namespace {

void push_if(ProcessTrace& trace, TraceOp::Kind kind, double amount, bool intra) {
  if (amount > 0) trace.push_back(TraceOp{kind, amount, intra});
}

}  // namespace

ProcessTrace trace_of_round(const CostCounters& c, CommMode comm) {
  // The paper's S-round receives at the beginning and sends at the end, with
  // messages arriving from the *previous* round. Replaying that literally
  // deadlocks on the first round (nothing is in flight yet), so the trace
  // performs the equivalent rotation: each round reads, computes, writes,
  // sends, and then receives this round's exchange — the same pattern the
  // runtime's `exchange` (broadcast, then receive-all) executes.
  ProcessTrace trace;
  push_if(trace, TraceOp::Kind::ShmRead, c.d_r_a, true);
  push_if(trace, TraceOp::Kind::ShmRead, c.d_r_e, false);
  if (c.local_ops() > 0)
    trace.push_back(TraceOp{TraceOp::Kind::Compute, c.local_ops(), true, c.c_fp});
  push_if(trace, TraceOp::Kind::ShmWrite, c.d_w_a, true);
  push_if(trace, TraceOp::Kind::ShmWrite, c.d_w_e, false);
  push_if(trace, TraceOp::Kind::MsgSend, c.m_s_a, true);
  push_if(trace, TraceOp::Kind::MsgSend, c.m_s_e, false);
  push_if(trace, TraceOp::Kind::MsgRecv, c.m_r_a, true);
  push_if(trace, TraceOp::Kind::MsgRecv, c.m_r_e, false);
  if (comm == CommMode::Synchronous &&
      (c.uses_message_passing() || c.uses_shared_memory()))
    trace.push_back(TraceOp{TraceOp::Kind::Barrier, 1, false});
  return trace;
}

ProcessTrace trace_of_process(const StampProcess& process, CommMode comm) {
  // Reconstruct from the process's structure: for each S-unit, the rounds in
  // order, with outside-of-round local work charged after the rounds (the
  // loop-condition/termination checks of the paper's examples).
  ProcessTrace trace;
  // StampProcess does not expose units directly; approximate through
  // total_counters when structure is unavailable. Prefer per-round synthesis:
  // callers holding a Recorder should use trace_of_recorder below. Here we
  // flatten the aggregate as a single round plus local work, which preserves
  // totals but not per-round latencies.
  const CostCounters total = process.total_counters();
  CostCounters comm_part = total;
  comm_part.c_fp = 0;
  comm_part.c_int = 0;
  ProcessTrace round = trace_of_round(comm_part, comm);
  // Insert the compute between reads and writes.
  ProcessTrace result;
  bool compute_inserted = false;
  for (const TraceOp& op : round) {
    const bool is_write_side = op.kind == TraceOp::Kind::ShmWrite ||
                               op.kind == TraceOp::Kind::MsgSend ||
                               op.kind == TraceOp::Kind::Barrier;
    if (is_write_side && !compute_inserted) {
      if (total.local_ops() > 0)
        result.push_back(
            TraceOp{TraceOp::Kind::Compute, total.local_ops(), true, total.c_fp});
      compute_inserted = true;
    }
    result.push_back(op);
  }
  if (!compute_inserted && total.local_ops() > 0)
    result.push_back(
        TraceOp{TraceOp::Kind::Compute, total.local_ops(), true, total.c_fp});
  return result;
}

ProcessTrace trace_of_recorder(const runtime::Recorder& recorder, CommMode comm) {
  ProcessTrace trace;
  auto append = [&](const ProcessTrace& part) {
    trace.insert(trace.end(), part.begin(), part.end());
  };
  auto append_local = [&](const CostCounters& c) {
    if (c.local_ops() > 0)
      trace.push_back(
          TraceOp{TraceOp::Kind::Compute, c.local_ops(), true, c.c_fp});
  };
  for (const runtime::Recorder::UnitRecord& unit : recorder.units()) {
    for (const CostCounters& round : unit.rounds)
      append(trace_of_round(round, comm));
    append_local(unit.outside);
  }
  const CostCounters& stray = recorder.stray();
  if (stray.uses_shared_memory() || stray.uses_message_passing()) {
    append(trace_of_round(stray, comm));
  } else {
    append_local(stray);
  }
  return trace;
}

std::size_t barrier_count(const ProcessTrace& trace) {
  std::size_t n = 0;
  for (const TraceOp& op : trace)
    if (op.kind == TraceOp::Kind::Barrier) ++n;
  return n;
}

}  // namespace stamp::machine
