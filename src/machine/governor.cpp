#include "machine/governor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stamp::machine {

GovernorResult fit_envelope(std::span<const double> nominal_core_power,
                            const Topology& topology,
                            const PowerEnvelope& envelope, double max_frequency,
                            double min_frequency) {
  topology.validate();
  envelope.validate();
  if (max_frequency <= 0 || min_frequency <= 0 || min_frequency > max_frequency)
    throw std::invalid_argument("fit_envelope: bad frequency bounds");
  if (static_cast<int>(nominal_core_power.size()) != topology.total_processors())
    throw std::invalid_argument(
        "fit_envelope: need one nominal power per processor");
  for (double p : nominal_core_power)
    if (p < 0) throw std::invalid_argument("fit_envelope: negative power");

  const int procs = topology.total_processors();
  GovernorResult result;
  result.points.assign(static_cast<std::size_t>(procs),
                       OperatingPoint{max_frequency});

  // Pass 1: per-core caps. f = cbrt(cap / P_nominal), clamped.
  if (envelope.per_processor > 0) {
    for (int c = 0; c < procs; ++c) {
      const double p = nominal_core_power[static_cast<std::size_t>(c)];
      if (p <= 0) continue;
      const double fit = std::cbrt(envelope.per_processor / p);
      result.points[static_cast<std::size_t>(c)].frequency =
          std::min(max_frequency, fit);
    }
  }

  auto chip_power = [&](int chip) {
    double total = 0;
    for (int i = 0; i < topology.processors_per_chip; ++i) {
      const int c = chip * topology.processors_per_chip + i;
      total += scaled_power(nominal_core_power[static_cast<std::size_t>(c)],
                            result.points[static_cast<std::size_t>(c)]);
    }
    return total;
  };

  // Pass 2: per-chip caps — scale every core of an over-budget chip
  // uniformly (power is homogeneous of degree 3 in the scale factor).
  if (envelope.per_chip > 0) {
    for (int chip = 0; chip < topology.chips; ++chip) {
      const double demand = chip_power(chip);
      if (demand <= envelope.per_chip || demand <= 0) continue;
      const double scale = std::cbrt(envelope.per_chip / demand);
      for (int i = 0; i < topology.processors_per_chip; ++i) {
        const int c = chip * topology.processors_per_chip + i;
        result.points[static_cast<std::size_t>(c)].frequency *= scale;
      }
    }
  }

  // Pass 3: system cap — uniform scale over everything.
  if (envelope.system > 0) {
    double demand = 0;
    for (int chip = 0; chip < topology.chips; ++chip) demand += chip_power(chip);
    if (demand > envelope.system && demand > 0) {
      const double scale = std::cbrt(envelope.system / demand);
      for (auto& point : result.points) point.frequency *= scale;
    }
  }

  // Report the floor; clamp and mark infeasible if we fell through it.
  result.min_frequency_used = max_frequency;
  for (std::size_t c = 0; c < result.points.size(); ++c) {
    if (nominal_core_power[c] <= 0) continue;  // idle cores don't bind
    double& f = result.points[c].frequency;
    if (f < min_frequency) {
      result.feasible = false;
      f = min_frequency;
    }
    result.min_frequency_used = std::min(result.min_frequency_used, f);
  }
  result.worst_slowdown = 1.0 / result.min_frequency_used;
  return result;
}

DegradeResult degrade_threads(double per_thread_power, const Topology& topology,
                              const PowerEnvelope& envelope,
                              double min_acceptable_frequency,
                              double max_frequency) {
  topology.validate();
  if (per_thread_power < 0)
    throw std::invalid_argument("degrade_threads: negative per-thread power");
  if (min_acceptable_frequency <= 0 ||
      min_acceptable_frequency > max_frequency)
    throw std::invalid_argument("degrade_threads: bad frequency floor");

  const auto procs = static_cast<std::size_t>(topology.total_processors());
  DegradeResult result;
  for (int k = topology.threads_per_processor; k >= 1; --k) {
    const std::vector<double> powers(procs, k * per_thread_power);
    GovernorResult fit =
        fit_envelope(powers, topology, envelope, max_frequency,
                     min_acceptable_frequency);
    result.threads_per_processor = k;
    result.degraded = k < topology.threads_per_processor;
    result.feasible = fit.feasible;
    result.governor = std::move(fit);
    if (result.feasible) return result;
  }
  // Even one thread per core overshoots: report the k = 1 fit, infeasible.
  return result;
}

}  // namespace stamp::machine
