#pragma once
/// \file instrument.hpp
/// \brief Per-process operation recording — the empirical source of the cost
///        model's counters.
///
/// Each STAMP process owns one `Recorder`. The substrates (msg / shm / stm)
/// report every communication operation to the recorder of the process that
/// performs it, classified intra- vs inter-processor by the placement map.
/// Recorders are strictly single-owner (one per process, touched only by the
/// thread running that process), so counting is plain arithmetic — no atomics
/// perturbing the measured program (guideline CP.3: minimize shared writable
/// data).
///
/// A recorder also tracks S-round / S-unit structure: `begin_unit()`,
/// `begin_round()` / `end_round()`, `end_unit()` delimit where operations
/// land, so a full `StampProcess` cost structure can be rebuilt from a run.

#include "core/counters.hpp"
#include "core/process.hpp"

#include <cstddef>
#include <vector>

namespace stamp::runtime {

/// Records the operations of one STAMP process as it executes.
class Recorder {
 public:
  /// Counters of one recorded S-unit: its rounds plus outside-of-round work.
  struct UnitRecord {
    std::vector<CostCounters> rounds;
    CostCounters outside;
  };

  Recorder() = default;

  // -- local computation ------------------------------------------------------
  void count_fp(double n = 1) noexcept { current().c_fp += n; }
  void count_int(double n = 1) noexcept { current().c_int += n; }

  // -- shared memory ------------------------------------------------------------
  void shm_read(bool intra, double n = 1) noexcept {
    (intra ? current().d_r_a : current().d_r_e) += n;
  }
  void shm_write(bool intra, double n = 1) noexcept {
    (intra ? current().d_w_a : current().d_w_e) += n;
  }

  // -- message passing -----------------------------------------------------------
  void msg_send(bool intra, double n = 1) noexcept {
    (intra ? current().m_s_a : current().m_s_e) += n;
  }
  void msg_recv(bool intra, double n = 1) noexcept {
    (intra ? current().m_r_a : current().m_r_e) += n;
  }

  // -- serialization / rollback ---------------------------------------------------
  /// Report an observed serialization length or rollback count for one shared
  /// location / transaction; kappa keeps the maximum.
  void observe_kappa(double k) noexcept {
    if (k > current().kappa) current().kappa = k;
  }

  // -- structure ---------------------------------------------------------------
  /// Opens a new S-unit; subsequent operations outside rounds are "local
  /// computation outside S-rounds".
  void begin_unit();
  /// Opens an S-round inside the current unit (implicitly opens a unit if
  /// none is open).
  void begin_round();
  void end_round();
  void end_unit();

  /// True while inside an S-round.
  [[nodiscard]] bool in_round() const noexcept { return in_round_; }
  [[nodiscard]] std::size_t unit_count() const noexcept { return units_.size(); }

  /// Structured view of everything recorded, unit by unit.
  [[nodiscard]] const std::vector<UnitRecord>& units() const noexcept {
    return units_;
  }
  /// Operations recorded outside any unit.
  [[nodiscard]] const CostCounters& stray() const noexcept { return stray_; }

  /// Aggregate counters over everything recorded so far.
  [[nodiscard]] CostCounters totals() const noexcept;

  /// Rebuild the structural `StampProcess` (one S-unit per begin/end pair,
  /// one S-round per round). Operations recorded outside any unit are folded
  /// into a trailing unit.
  [[nodiscard]] StampProcess to_process(const Attributes& attrs) const;

  /// Reset to empty.
  void clear();

 private:
  CostCounters& current() noexcept;

  std::vector<UnitRecord> units_;
  CostCounters stray_;  // operations outside any unit
  bool in_unit_ = false;
  bool in_round_ = false;
};

/// RAII guards for round/unit structure (CP.20: RAII, never plain begin/end).
class UnitScope {
 public:
  explicit UnitScope(Recorder& r) : rec_(r) { rec_.begin_unit(); }
  ~UnitScope() { rec_.end_unit(); }
  UnitScope(const UnitScope&) = delete;
  UnitScope& operator=(const UnitScope&) = delete;

 private:
  Recorder& rec_;
};

class RoundScope {
 public:
  explicit RoundScope(Recorder& r) : rec_(r) { rec_.begin_round(); }
  ~RoundScope() { rec_.end_round(); }
  RoundScope(const RoundScope&) = delete;
  RoundScope& operator=(const RoundScope&) = delete;

 private:
  Recorder& rec_;
};

}  // namespace stamp::runtime
