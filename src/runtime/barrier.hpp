#pragma once
/// \file barrier.hpp
/// \brief Phase barriers for synch_comm rounds.
///
/// `PhaseBarrier` is a blocking barrier (condition-variable based,
/// CP.42: never wait without a condition); `SenseBarrier` is a spinning
/// sense-reversing barrier for short phases. Both are reusable across any
/// number of phases.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>

namespace stamp::runtime {

/// Blocking reusable barrier for `parties` participants.
class PhaseBarrier {
 public:
  explicit PhaseBarrier(int parties) : parties_(parties) {
    if (parties < 1) throw std::invalid_argument("PhaseBarrier: parties < 1");
  }

  PhaseBarrier(const PhaseBarrier&) = delete;
  PhaseBarrier& operator=(const PhaseBarrier&) = delete;

  /// Blocks until all parties have arrived at this phase.
  void arrive_and_wait() {
    std::unique_lock lock(mutex_);
    const std::uint64_t phase = phase_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++phase_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return phase_ != phase; });
    }
  }

  [[nodiscard]] int parties() const noexcept { return parties_; }
  /// Number of completed phases.
  [[nodiscard]] std::uint64_t phase() const {
    const std::scoped_lock lock(mutex_);
    return phase_;
  }

 private:
  const int parties_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t phase_ = 0;
};

/// Spinning sense-reversing barrier (centralized counter). Appropriate when
/// phases are much shorter than a context switch.
class SenseBarrier {
 public:
  explicit SenseBarrier(int parties) : parties_(parties), remaining_(parties) {
    if (parties < 1) throw std::invalid_argument("SenseBarrier: parties < 1");
  }

  SenseBarrier(const SenseBarrier&) = delete;
  SenseBarrier& operator=(const SenseBarrier&) = delete;

  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        // spin; the phases this barrier is meant for are sub-microsecond
      }
    }
  }

  [[nodiscard]] int parties() const noexcept { return parties_; }

 private:
  const int parties_;
  std::atomic<int> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace stamp::runtime
