#include "runtime/profile.hpp"

#include <algorithm>

namespace stamp::runtime {

ProcessProfile profile_from_recorder(const Recorder& recorder, double units) {
  const CostCounters totals = recorder.totals();
  double n = units;
  if (n <= 0) n = static_cast<double>(std::max<std::size_t>(recorder.unit_count(), 1));

  ProcessProfile p;
  p.units = n;
  p.c_fp = totals.c_fp / n;
  p.c_int = totals.c_int / n;
  p.d_r = (totals.d_r_a + totals.d_r_e) / n;
  p.d_w = (totals.d_w_a + totals.d_w_e) / n;
  p.m_s = (totals.m_s_a + totals.m_s_e) / n;
  p.m_r = (totals.m_r_a + totals.m_r_e) / n;
  p.kappa = totals.kappa;  // a bound, not an average
  return p;
}

std::vector<ProcessProfile> profiles_from_run(const RunResult& run) {
  std::vector<ProcessProfile> profiles;
  profiles.reserve(run.recorders.size());
  for (const Recorder& r : run.recorders)
    profiles.push_back(profile_from_recorder(r));
  return profiles;
}

}  // namespace stamp::runtime
