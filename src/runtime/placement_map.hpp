#pragma once
/// \file placement_map.hpp
/// \brief Logical placement of STAMP processes onto the machine topology.
///
/// The runtime executes on however many OS threads the host provides, but
/// *charging* an operation as intra- or inter-processor follows the logical
/// placement: two processes communicate intra-processor iff they are mapped
/// to hardware threads of the same (chip, processor) pair.

#include "core/attributes.hpp"
#include "core/cost_model.hpp"
#include "core/params.hpp"

#include <stdexcept>
#include <vector>

namespace stamp::runtime {

/// One hardware-thread slot.
struct Slot {
  int chip = 0;
  int processor = 0;  ///< processor index within the chip
  int thread = 0;     ///< hardware thread index within the processor

  /// Global processor id, chip-major.
  [[nodiscard]] int global_processor(const Topology& t) const noexcept {
    return chip * t.processors_per_chip + processor;
  }
  friend bool operator==(const Slot&, const Slot&) = default;
};

/// Maps process ids [0, n) to slots on a topology.
class PlacementMap {
 public:
  PlacementMap() = default;
  PlacementMap(Topology topology, std::vector<Slot> slots);

  /// Place n processes filling each processor's threads before moving on
  /// (the natural realization of `intra_proc`: co-locate as much as possible,
  /// exactly what the paper prescribes for Jacobi).
  [[nodiscard]] static PlacementMap fill_first(const Topology& t, int n,
                                               int max_threads_per_processor = 0);

  /// `fill_first`, but never placing a process on any of the given global
  /// processor ids — the surviving placement after fail-stop faults retire
  /// processors (run_supervised's re-placement). Throws when the surviving
  /// processors cannot host n processes.
  [[nodiscard]] static PlacementMap fill_first_excluding(
      const Topology& t, int n, const std::vector<int>& excluded_processors,
      int max_threads_per_processor = 0);

  /// Place n processes one per processor, wrapping when all processors are
  /// used (the natural realization of `inter_proc`).
  [[nodiscard]] static PlacementMap one_per_processor(const Topology& t, int n);

  /// Place according to an attribute: IntraProc -> fill_first,
  /// InterProc -> one_per_processor.
  [[nodiscard]] static PlacementMap for_distribution(const Topology& t, int n,
                                                     Distribution d);

  [[nodiscard]] int process_count() const noexcept {
    return static_cast<int>(slots_.size());
  }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const Slot& slot_of(int process) const;

  /// True iff the two processes share a (chip, processor) pair.
  [[nodiscard]] bool same_processor(int a, int b) const;

  /// Global processor id of a process.
  [[nodiscard]] int processor_of(int process) const;

  /// Number of processes on each global processor id.
  [[nodiscard]] std::vector<int> occupancy() const;

  /// The cost model's process-count context for one process: how many peers
  /// are intra (same processor) vs inter.
  [[nodiscard]] ProcessCounts process_counts_for(int process) const;

 private:
  Topology topology_{};
  std::vector<Slot> slots_;
};

}  // namespace stamp::runtime
