#include "runtime/instrument.hpp"

namespace stamp::runtime {

CostCounters& Recorder::current() noexcept {
  if (!in_unit_) return stray_;
  UnitRecord& u = units_.back();
  return in_round_ ? u.rounds.back() : u.outside;
}

void Recorder::begin_unit() {
  if (in_round_) end_round();
  units_.emplace_back();
  in_unit_ = true;
}

void Recorder::begin_round() {
  if (!in_unit_) begin_unit();
  if (in_round_) end_round();
  units_.back().rounds.emplace_back();
  in_round_ = true;
}

void Recorder::end_round() { in_round_ = false; }

void Recorder::end_unit() {
  in_round_ = false;
  in_unit_ = false;
}

CostCounters Recorder::totals() const noexcept {
  CostCounters total = stray_;
  for (const UnitRecord& u : units_) {
    total += u.outside;
    for (const CostCounters& r : u.rounds) total += r;
  }
  return total;
}

StampProcess Recorder::to_process(const Attributes& attrs) const {
  StampProcess proc(attrs);
  for (const UnitRecord& u : units_) {
    SUnit unit;
    for (const CostCounters& r : u.rounds) unit.add_round(r);
    unit.add_local(u.outside.c_fp, u.outside.c_int);
    proc.add_unit(std::move(unit));
  }
  if (stray_.local_ops() > 0 || stray_.uses_shared_memory() ||
      stray_.uses_message_passing()) {
    SUnit trailing;
    if (stray_.uses_shared_memory() || stray_.uses_message_passing()) {
      trailing.add_round(stray_);
    } else {
      trailing.add_local(stray_.c_fp, stray_.c_int);
    }
    proc.add_unit(std::move(trailing));
  }
  return proc;
}

void Recorder::clear() {
  units_.clear();
  stray_ = CostCounters{};
  in_unit_ = false;
  in_round_ = false;
}

}  // namespace stamp::runtime
