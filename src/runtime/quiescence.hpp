#pragma once
/// \file quiescence.hpp
/// \brief Global quiescence detection for asynchronous (async_comm) iterative
///        algorithms — the termination piece the paper's APSP example leaves
///        implicit.
///
/// Protocol: a shared publication counter is incremented *after* each
/// process publishes changes (so seeing the increment implies the data is
/// visible). A process that completes a sweep with no changes, and whose
/// counter reading is unchanged across the sweep, is *quiet at* that counter
/// value. When every process is quiet at the same, still-current counter
/// value, the system has reached a fixed point: every process has performed a
/// complete no-change sweep after the last publication anywhere.
///
/// Usage per iteration:
///   const long c0 = qd.sweep_begin();
///   bool changed = <read snapshot, compute, publish if improved>;
///   if (changed) { qd.published(); continue; }
///   if (qd.try_quiesce(my_id, c0)) break;   // globally done
///   std::this_thread::yield();               // let the laggards run

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

namespace stamp::runtime {

class QuiescenceDetector {
 public:
  explicit QuiescenceDetector(int parties)
      : quiet_at_(static_cast<std::size_t>(parties)) {
    if (parties < 1)
      throw std::invalid_argument("QuiescenceDetector: parties < 1");
    for (auto& q : quiet_at_) q.store(-1, std::memory_order_relaxed);
  }

  QuiescenceDetector(const QuiescenceDetector&) = delete;
  QuiescenceDetector& operator=(const QuiescenceDetector&) = delete;

  /// Sample the publication counter before reading shared state.
  [[nodiscard]] long sweep_begin() const noexcept {
    return counter_.load(std::memory_order_seq_cst);
  }

  /// Call after publishing changes (stores must precede this call; the
  /// seq_cst increment then makes "counter observed" imply "data visible").
  void published() noexcept { counter_.fetch_add(1, std::memory_order_seq_cst); }

  /// Report a no-change sweep that began at counter value `c0`. Returns true
  /// when global quiescence is established (the caller may stop).
  [[nodiscard]] bool try_quiesce(int id, long c0) noexcept {
    if (counter_.load(std::memory_order_seq_cst) != c0) return false;
    quiet_at_[static_cast<std::size_t>(id)].store(c0, std::memory_order_seq_cst);
    for (const auto& q : quiet_at_)
      if (q.load(std::memory_order_seq_cst) != c0) return false;
    if (counter_.load(std::memory_order_seq_cst) != c0) return false;
    done_.store(true, std::memory_order_release);
    return true;
  }

  /// True once any process established global quiescence (or aborted).
  [[nodiscard]] bool done() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

  /// Abandon the computation: unblocks every looping party promptly. Used
  /// when a party exhausts its sweep budget — without this the others would
  /// spin forever waiting for it to go quiet.
  void abort() noexcept {
    aborted_.store(true, std::memory_order_release);
    done_.store(true, std::memory_order_release);
  }

  /// True when termination came from abort() rather than real quiescence.
  [[nodiscard]] bool aborted() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }

  [[nodiscard]] long publications() const noexcept {
    return counter_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<long> counter_{0};
  std::vector<std::atomic<long>> quiet_at_;
  std::atomic<bool> done_{false};
  std::atomic<bool> aborted_{false};
};

/// Drive an asynchronous sweep loop to quiescence.
///
/// `sweep()` must: read shared state, compute, publish any improvements, and
/// return whether it published. `active_limit` bounds the number of
/// *publishing* sweeps (a safety valve against livelock); quiet re-sweeps are
/// not counted against it but are capped at `idle_limit` consecutive ones.
/// Returns the number of sweeps executed.
template <typename SweepFn>
int run_to_quiescence(QuiescenceDetector& qd, int id, SweepFn&& sweep,
                      int active_limit, int idle_limit = 1'000'000) {
  int sweeps = 0;
  int active = 0;
  int idle_streak = 0;
  while (!qd.done()) {
    if (active >= active_limit || idle_streak >= idle_limit) {
      // Out of budget: abandon globally so peers do not wait for us forever.
      qd.abort();
      break;
    }
    const long c0 = qd.sweep_begin();
    ++sweeps;
    if (sweep()) {
      qd.published();
      ++active;
      idle_streak = 0;
      continue;
    }
    ++idle_streak;
    if (qd.try_quiesce(id, c0)) break;
    std::this_thread::yield();
  }
  return sweeps;
}

}  // namespace stamp::runtime
