#include "runtime/placement_map.hpp"

#include <algorithm>
#include <tuple>

namespace stamp::runtime {

PlacementMap::PlacementMap(Topology topology, std::vector<Slot> slots)
    : topology_(topology), slots_(std::move(slots)) {
  topology_.validate();
  for (const Slot& s : slots_) {
    if (s.chip < 0 || s.chip >= topology_.chips || s.processor < 0 ||
        s.processor >= topology_.processors_per_chip || s.thread < 0 ||
        s.thread >= topology_.threads_per_processor)
      throw std::invalid_argument("PlacementMap: slot outside topology");
  }
  // No two processes may share one hardware thread.
  std::vector<Slot> sorted = slots_;
  std::sort(sorted.begin(), sorted.end(), [](const Slot& a, const Slot& b) {
    return std::tie(a.chip, a.processor, a.thread) <
           std::tie(b.chip, b.processor, b.thread);
  });
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
    throw std::invalid_argument("PlacementMap: two processes on one thread");
}

PlacementMap PlacementMap::fill_first(const Topology& t, int n,
                                      int max_threads_per_processor) {
  const int per_proc = max_threads_per_processor > 0
                           ? std::min(max_threads_per_processor,
                                      t.threads_per_processor)
                           : t.threads_per_processor;
  if (n > t.total_processors() * per_proc)
    throw std::invalid_argument("fill_first: not enough hardware threads");
  std::vector<Slot> slots;
  slots.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int proc_global = i / per_proc;
    Slot s;
    s.chip = proc_global / t.processors_per_chip;
    s.processor = proc_global % t.processors_per_chip;
    s.thread = i % per_proc;
    slots.push_back(s);
  }
  return PlacementMap(t, std::move(slots));
}

PlacementMap PlacementMap::fill_first_excluding(
    const Topology& t, int n, const std::vector<int>& excluded_processors,
    int max_threads_per_processor) {
  const int per_proc = max_threads_per_processor > 0
                           ? std::min(max_threads_per_processor,
                                      t.threads_per_processor)
                           : t.threads_per_processor;
  std::vector<bool> excluded(static_cast<std::size_t>(t.total_processors()),
                             false);
  for (const int p : excluded_processors) {
    if (p < 0 || p >= t.total_processors())
      throw std::invalid_argument(
          "fill_first_excluding: excluded processor outside topology");
    excluded[static_cast<std::size_t>(p)] = true;
  }
  std::vector<Slot> slots;
  slots.reserve(static_cast<std::size_t>(n));
  int placed = 0;
  for (int proc_global = 0;
       proc_global < t.total_processors() && placed < n; ++proc_global) {
    if (excluded[static_cast<std::size_t>(proc_global)]) continue;
    for (int thread = 0; thread < per_proc && placed < n; ++thread) {
      Slot s;
      s.chip = proc_global / t.processors_per_chip;
      s.processor = proc_global % t.processors_per_chip;
      s.thread = thread;
      slots.push_back(s);
      ++placed;
    }
  }
  if (placed < n)
    throw std::invalid_argument(
        "fill_first_excluding: not enough surviving hardware threads");
  return PlacementMap(t, std::move(slots));
}

PlacementMap PlacementMap::one_per_processor(const Topology& t, int n) {
  const int procs = t.total_processors();
  if (n > procs * t.threads_per_processor)
    throw std::invalid_argument("one_per_processor: not enough hardware threads");
  std::vector<Slot> slots;
  slots.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int proc_global = i % procs;
    Slot s;
    s.chip = proc_global / t.processors_per_chip;
    s.processor = proc_global % t.processors_per_chip;
    s.thread = i / procs;  // wraps onto additional threads once all procs used
    slots.push_back(s);
  }
  return PlacementMap(t, std::move(slots));
}

PlacementMap PlacementMap::for_distribution(const Topology& t, int n,
                                            Distribution d) {
  return d == Distribution::IntraProc ? fill_first(t, n)
                                      : one_per_processor(t, n);
}

const Slot& PlacementMap::slot_of(int process) const {
  if (process < 0 || process >= process_count())
    throw std::out_of_range("PlacementMap: process id out of range");
  return slots_[static_cast<std::size_t>(process)];
}

bool PlacementMap::same_processor(int a, int b) const {
  const Slot& sa = slot_of(a);
  const Slot& sb = slot_of(b);
  return sa.chip == sb.chip && sa.processor == sb.processor;
}

int PlacementMap::processor_of(int process) const {
  return slot_of(process).global_processor(topology_);
}

std::vector<int> PlacementMap::occupancy() const {
  std::vector<int> occ(static_cast<std::size_t>(topology_.total_processors()), 0);
  for (int i = 0; i < process_count(); ++i)
    ++occ[static_cast<std::size_t>(processor_of(i))];
  return occ;
}

ProcessCounts PlacementMap::process_counts_for(int process) const {
  ProcessCounts pc;
  for (int i = 0; i < process_count(); ++i) {
    if (i == process) continue;
    if (same_processor(process, i))
      ++pc.intra;
    else
      ++pc.inter;
  }
  return pc;
}

}  // namespace stamp::runtime
