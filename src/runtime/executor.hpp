#pragma once
/// \file executor.hpp
/// \brief Real multithreaded execution of STAMP programs with per-process
///        instrumentation.
///
/// The executor runs one OS thread per STAMP process (processes are
/// abstractions of hardware threads, and the algorithms we run use modest
/// process counts). Each process receives a `Context` giving its id, its
/// logical placement, and its private `Recorder`. After the run, the
/// per-process counter records feed the analytic cost model — this is the
/// "measured" column of the benches.

#include "core/compat.hpp"
#include "core/cost_model.hpp"
#include "runtime/instrument.hpp"
#include "runtime/placement_map.hpp"

#include <chrono>
#include <functional>
#include <vector>

namespace stamp::runtime {

/// Everything a STAMP process body may touch.
class Context {
 public:
  Context(int id, Recorder& recorder, const PlacementMap& placement)
      : id_(id), recorder_(&recorder), placement_(&placement) {}

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] int process_count() const noexcept {
    return placement_->process_count();
  }
  [[nodiscard]] Recorder& recorder() const noexcept { return *recorder_; }
  [[nodiscard]] const PlacementMap& placement() const noexcept {
    return *placement_;
  }

  /// True iff `peer` is co-located on this process's processor — the
  /// classification every substrate uses to charge intra vs inter.
  [[nodiscard]] bool intra_with(int peer) const {
    return placement_->same_processor(id_, peer);
  }

  /// Count local work (the body still performs the real computation; these
  /// record what the model charges).
  void fp_ops(double n) const noexcept { recorder_->count_fp(n); }
  void int_ops(double n) const noexcept { recorder_->count_int(n); }

 private:
  int id_;
  Recorder* recorder_;
  const PlacementMap* placement_;
};

/// The body of a STAMP process.
using ProcessBody = std::function<void(Context&)>;

/// Result of one execution: per-process recorders plus wall-clock time.
struct RunResult {
  std::vector<Recorder> recorders;
  std::chrono::nanoseconds wall_time{0};

  /// Per-process model cost, evaluated with each process's placement-derived
  /// ProcessCounts.
  [[nodiscard]] std::vector<Cost> process_costs(const PlacementMap& placement,
                                                const MachineParams& mp,
                                                const EnergyParams& ep) const;

  /// Parallel composition of the per-process costs (max time, total energy).
  [[nodiscard]] Cost total_cost(const PlacementMap& placement,
                                const MachineParams& mp,
                                const EnergyParams& ep) const;

  /// Sum of all counters over all processes.
  [[nodiscard]] CostCounters total_counters() const;
};

/// Runs `body` once per process under `placement`; blocks until all complete.
/// Any exception escaping a process body is rethrown (first one wins) after
/// all threads have been joined.
[[nodiscard]] RunResult run_processes(const PlacementMap& placement,
                                      const ProcessBody& body);

/// What `run_supervised` did to complete the run.
struct SupervisedResult {
  RunResult result;       ///< the successful run (failed attempts discarded)
  PlacementMap placement; ///< the placement the successful run used
  std::vector<int> failed_processes;    ///< fail-stopped process ids, in order
  std::vector<int> excluded_processors; ///< processors retired across failovers

  [[nodiscard]] bool failed_over() const noexcept {
    return !failed_processes.empty();
  }
};

/// Supervised execution: like `run_processes`, but an injected fail-stop
/// (fault::ProcessFailure) retires the hosting processor and re-runs the
/// whole program on the surviving placement (same process count, fill-first
/// over the remaining processors). Gives up — rethrowing the failure — after
/// `max_failovers` re-placements, or when the survivors cannot host all
/// processes. Other exceptions propagate unchanged.
[[nodiscard]] SupervisedResult run_supervised(const PlacementMap& placement,
                                              const ProcessBody& body,
                                              int max_failovers = 1);

/// Convenience: place `n` processes per `distribution` on `topology`, run.
/// \deprecated Scheduled for removal once the last in-tree caller migrates;
/// new code must go through the facade.
STAMP_DEPRECATED(
    "use stamp::Evaluator::run (api/stamp.hpp); run_distributed will be "
    "removed in a future release")
[[nodiscard]] RunResult run_distributed(const Topology& topology, int n,
                                        Distribution distribution,
                                        const ProcessBody& body);

}  // namespace stamp::runtime
