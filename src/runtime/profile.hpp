#pragma once
/// \file profile.hpp
/// \brief Bridge from measured runs to the placement optimizer: turn a
///        Recorder's counters into the distribution-agnostic ProcessProfile
///        that `place_best` and friends consume.
///
/// The optimizer wants per-S-unit counts without an intra/inter commitment
/// (it re-splits them per candidate placement); a recorder holds counts that
/// were classified under one concrete placement. The bridge merges the
/// columns back together and normalizes by the number of recorded units.

#include "core/placement.hpp"
#include "runtime/executor.hpp"
#include "runtime/instrument.hpp"

#include <vector>

namespace stamp::runtime {

/// Profile of one process from its recorder. `units` defaults to the number
/// of recorded S-units (minimum 1 so per-unit division is well-defined).
[[nodiscard]] ProcessProfile profile_from_recorder(const Recorder& recorder,
                                                   double units = 0);

/// Profiles for every process of a finished run.
[[nodiscard]] std::vector<ProcessProfile> profiles_from_run(const RunResult& run);

}  // namespace stamp::runtime
