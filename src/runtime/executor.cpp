#include "runtime/executor.hpp"

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

#include <exception>
#include <mutex>
#include <thread>

namespace stamp::runtime {

namespace {

/// Executor hook sites, keyed by the process id. A fired ProcStall sleeps
/// `magnitude` nanoseconds before the body starts; a fired ProcFailStop
/// throws fault::ProcessFailure, which run_processes rethrows after joining
/// all threads and run_supervised turns into a re-placement.
void maybe_inject_process_faults(int process) {
  if (!fault::injection_enabled()) return;
  auto& injector = fault::Injector::current();
  const auto key = static_cast<std::uint64_t>(process);
  if (const auto stall = injector.decide(fault::FaultSite::ProcStall, key))
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::nano>(stall->magnitude));
  if (injector.decide(fault::FaultSite::ProcFailStop, key))
    throw fault::ProcessFailure(process);
}

}  // namespace

std::vector<Cost> RunResult::process_costs(const PlacementMap& placement,
                                           const MachineParams& mp,
                                           const EnergyParams& ep) const {
  std::vector<Cost> costs;
  costs.reserve(recorders.size());
  for (std::size_t i = 0; i < recorders.size(); ++i) {
    const ProcessCounts pc =
        placement.process_counts_for(static_cast<int>(i));
    const StampProcess proc = recorders[i].to_process(Attributes{});
    costs.push_back(proc.cost(mp, ep, pc));
  }
  return costs;
}

Cost RunResult::total_cost(const PlacementMap& placement,
                           const MachineParams& mp,
                           const EnergyParams& ep) const {
  const std::vector<Cost> costs = process_costs(placement, mp, ep);
  return parallel(std::span<const Cost>(costs));
}

CostCounters RunResult::total_counters() const {
  CostCounters total;
  for (const Recorder& r : recorders) total += r.totals();
  return total;
}

RunResult run_processes(const PlacementMap& placement, const ProcessBody& body) {
  const int n = placement.process_count();
  RunResult result;
  result.recorders.resize(static_cast<std::size_t>(n));

  std::exception_ptr first_error;
  std::mutex error_mutex;

  obs::ScopedSpan run_span = obs::ScopedSpan::if_enabled("runtime.run", "runtime");
  run_span.arg("processes", static_cast<double>(n));

  // Process threads inherit the caller's injector (a campaign trial's
  // InjectorScope override, or the global one): fault decisions made on a
  // spawned thread must draw from the trial that spawned it, not from
  // whatever another concurrent trial armed globally.
  fault::Injector& injector = fault::Injector::current();

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([&, i] {
        const fault::InjectorScope inject_scope(injector);
        // Each OS thread records under its own tid; the span covers the whole
        // process body, and its wall time feeds the latency histogram.
        obs::ScopedSpan process_span =
            obs::ScopedSpan::if_enabled("runtime.process", "runtime");
        process_span.arg("process", static_cast<double>(i));
        const obs::Clock::time_point t0 = obs::Clock::now();
        Context ctx(i, result.recorders[static_cast<std::size_t>(i)], placement);
        // The thread acts as process i for the whole body: mailbox-level
        // fault decisions made on this thread draw from process i's streams.
        const fault::ActorScope actor(static_cast<std::uint64_t>(i));
        try {
          maybe_inject_process_faults(i);
          body(ctx);
        } catch (...) {
          const std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        if (obs::metrics_enabled())
          obs::MetricsRegistry::global()
              .histogram("runtime.process_ns")
              .record(obs::nanos_since(t0));
      });
    }
  }  // jthreads join here
  result.wall_time = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start);

  if (obs::metrics_enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.counter("runtime.runs").add();
    reg.counter("runtime.processes").add(static_cast<std::uint64_t>(n));
  }
  if (first_error) std::rethrow_exception(first_error);
  return result;
}

SupervisedResult run_supervised(const PlacementMap& placement,
                                const ProcessBody& body, int max_failovers) {
  SupervisedResult supervised;
  supervised.placement = placement;
  const int n = placement.process_count();
  for (;;) {
    try {
      supervised.result = run_processes(supervised.placement, body);
      return supervised;
    } catch (const fault::ProcessFailure& failure) {
      if (static_cast<int>(supervised.failed_processes.size()) >=
          max_failovers)
        throw;
      supervised.failed_processes.push_back(failure.process());
      supervised.excluded_processors.push_back(
          supervised.placement.processor_of(failure.process()));
      if (obs::tracing_enabled())
        obs::TraceRecorder::global().instant("runtime.failover", "runtime");
      if (obs::metrics_enabled())
        obs::MetricsRegistry::global().counter("runtime.failovers").add();
      supervised.placement = PlacementMap::fill_first_excluding(
          placement.topology(), n, supervised.excluded_processors);
    }
  }
}

RunResult run_distributed(const Topology& topology, int n,
                          Distribution distribution, const ProcessBody& body) {
  const PlacementMap placement =
      PlacementMap::for_distribution(topology, n, distribution);
  return run_processes(placement, body);
}

}  // namespace stamp::runtime
