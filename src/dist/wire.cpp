#include "dist/wire.hpp"

#include "models/models.hpp"
#include "sweep/grid.hpp"

#include <sstream>
#include <string_view>

namespace stamp::dist {
namespace {

using report::JsonValue;

/// Canonical double formatting — must match the journal/artifact writer
/// (JsonWriter emits precision-15 shortest-round-trip), so equality of the
/// formatted strings is exactly "re-emitting this value reproduces the same
/// bytes".
std::string fmt15(double v) {
  std::ostringstream ss;
  ss.precision(15);
  ss << v;
  return ss.str();
}

double require_number(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind() != JsonValue::Kind::Number)
    throw WireError("sweep_chunk response: missing numeric field '" +
                    std::string(key) + "'");
  return v->as_number();
}

std::uint64_t require_u64(const JsonValue& obj, std::string_view key) {
  const double d = require_number(obj, key);
  if (d < 0 || d != d)
    throw WireError("sweep_chunk response: field '" + std::string(key) +
                    "' must be a nonnegative integer");
  return static_cast<std::uint64_t>(d);
}

sweep::SweepRecord decode_point(const JsonValue& point,
                                const sweep::SweepConfig& cfg,
                                std::vector<double>& scratch) {
  sweep::SweepRecord rec;
  rec.index = static_cast<std::size_t>(require_u64(point, "index"));
  const sweep::ParamGrid& grid = cfg.grid;
  if (rec.index >= grid.size())
    throw WireError("sweep_chunk response: point index " +
                    std::to_string(rec.index) + " outside the grid");

  const JsonValue* params = point.find("params");
  if (params == nullptr || params->kind() != JsonValue::Kind::Object)
    throw WireError("sweep_chunk response: point lacks a params object");
  // Validate the worker's axis values against our own decode of the same
  // index, then keep OUR doubles: the journal must hold the grid's exact
  // bit patterns, not a double that round-tripped through NDJSON.
  const auto& axes = grid.axes();
  scratch.resize(axes.size());
  grid.decode_into(rec.index, scratch);
  if (params->members().size() != axes.size())
    throw WireError("sweep_chunk response: point " + std::to_string(rec.index) +
                    " has " + std::to_string(params->members().size()) +
                    " params, grid has " + std::to_string(axes.size()) +
                    " axes");
  for (std::size_t a = 0; a < axes.size(); ++a) {
    const JsonValue* v = params->find(axes[a].name);
    if (v == nullptr || v->kind() != JsonValue::Kind::Number)
      throw WireError("sweep_chunk response: point " +
                      std::to_string(rec.index) + " lacks axis '" +
                      axes[a].name + "'");
    if (fmt15(v->as_number()) != fmt15(scratch[a]))
      throw WireError("sweep_chunk response: point " +
                      std::to_string(rec.index) + " axis '" + axes[a].name +
                      "' value " + fmt15(v->as_number()) +
                      " contradicts the grid's " + fmt15(scratch[a]));
  }
  rec.params = scratch;

  const double processes = require_number(point, "processes");
  rec.processes = static_cast<int>(processes);
  const JsonValue* feasible = point.find("feasible");
  if (feasible == nullptr || feasible->kind() != JsonValue::Kind::Bool)
    throw WireError("sweep_chunk response: point " + std::to_string(rec.index) +
                    " lacks a boolean 'feasible'");
  rec.feasible = feasible->as_bool();

  const JsonValue* metrics = point.find("metrics");
  if (metrics == nullptr || metrics->kind() != JsonValue::Kind::Object)
    throw WireError("sweep_chunk response: point " + std::to_string(rec.index) +
                    " lacks a metrics object");
  rec.metrics.D = require_number(*metrics, "D");
  rec.metrics.PDP = require_number(*metrics, "PDP");
  rec.metrics.EDP = require_number(*metrics, "EDP");
  rec.metrics.ED2P = require_number(*metrics, "ED2P");

  const JsonValue* models = point.find("models");
  if (models == nullptr || models->kind() != JsonValue::Kind::Object)
    throw WireError("sweep_chunk response: point " + std::to_string(rec.index) +
                    " lacks a models object (worker speaks an older protocol"
                    " revision?)");
  for (int k = 0; k < models::kModelKindCount; ++k)
    rec.classical[static_cast<std::size_t>(k)] = require_number(
        *models, models::to_string(static_cast<models::ModelKind>(k)));
  return rec;
}

}  // namespace

std::optional<std::uint64_t> response_id(const std::string& line) {
  try {
    const JsonValue root = JsonValue::parse(line);
    const JsonValue* id = root.find("id");
    if (id == nullptr || id->kind() != JsonValue::Kind::Number)
      return std::nullopt;
    const double d = id->as_number();
    if (d < 0 || d != d) return std::nullopt;
    return static_cast<std::uint64_t>(d);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

ChunkResult decode_sweep_chunk(const std::string& line,
                               const sweep::SweepConfig& cfg) {
  JsonValue root;
  try {
    root = JsonValue::parse(line);
  } catch (const std::exception& e) {
    throw WireError(std::string("sweep_chunk response is not JSON: ") +
                    e.what());
  }
  ChunkResult out;
  out.id = require_u64(root, "id");
  out.status = static_cast<int>(require_number(root, "status"));
  if (out.status != 200) {
    if (const JsonValue* err = root.find("error");
        err != nullptr && err->kind() == JsonValue::Kind::String)
      out.error = err->as_string();
    return out;
  }
  const JsonValue* op = root.find("op");
  if (op == nullptr || op->kind() != JsonValue::Kind::String ||
      op->as_string() != "sweep_chunk")
    throw WireError("response is not a sweep_chunk");
  out.begin = require_u64(root, "begin");
  out.end = require_u64(root, "end");
  if (out.begin > out.end || out.end > cfg.grid.size())
    throw WireError("sweep_chunk response: range [" +
                    std::to_string(out.begin) + ", " + std::to_string(out.end) +
                    ") outside the grid");
  const JsonValue* points = root.find("points");
  if (points == nullptr || points->kind() != JsonValue::Kind::Array)
    throw WireError("sweep_chunk response lacks a points array");
  const std::size_t want = static_cast<std::size_t>(out.end - out.begin);
  if (points->items().size() != want)
    throw WireError("sweep_chunk response: got " +
                    std::to_string(points->items().size()) + " points, want " +
                    std::to_string(want));
  out.records.reserve(want);
  std::vector<double> scratch;
  std::size_t expect = static_cast<std::size_t>(out.begin);
  for (const JsonValue& point : points->items()) {
    sweep::SweepRecord rec = decode_point(point, cfg, scratch);
    if (rec.index != expect)
      throw WireError("sweep_chunk response: point index " +
                      std::to_string(rec.index) + " out of order, want " +
                      std::to_string(expect));
    ++expect;
    out.records.push_back(std::move(rec));
  }
  return out;
}

}  // namespace stamp::dist
