#pragma once
/// \file dist.hpp
/// \brief Umbrella header for the distributed-sweep layer: wire decoding of
///        sweep_chunk responses and the sharding coordinator.

#include "dist/coordinator.hpp"  // IWYU pragma: export
#include "dist/wire.hpp"         // IWYU pragma: export
