#pragma once
/// \file wire.hpp
/// \brief Decoding of `stamp-serve/v1` sweep_chunk responses into
///        `sweep::SweepRecord`s the coordinator can journal.
///
/// The fleet coordinator's byte-identity contract rests on this file: a
/// worker's wire point is only accepted when its index lies inside the
/// dispatched shard and its axis values match the coordinator's own grid
/// under the canonical precision-15 formatting (the same check the journal's
/// resume path applies). Accepted records are re-anchored to the grid's
/// exact doubles, so what gets journaled — and later replayed into the
/// merged artifact — is bit-for-bit what a single-node sweep would have
/// produced, regardless of which worker evaluated the point.

#include "report/json_parse.hpp"
#include "sweep/sweep.hpp"

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace stamp::dist {

/// One decoded sweep_chunk response.
struct ChunkResult {
  std::uint64_t id = 0;   ///< echoed request id
  int status = 0;         ///< HTTP-style status from the wire
  std::string error;      ///< error message for non-200 statuses
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::vector<sweep::SweepRecord> records;  ///< exactly end - begin on 200
};

/// Thrown when a response parses as JSON but violates the protocol or
/// contradicts the coordinator's grid — a misbehaving worker must be loud.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Extract the `id` field from a raw response line without a full decode;
/// nullopt when the line is not an object with a numeric id. Used to match
/// pipelined responses to outstanding shards before committing to a parse.
[[nodiscard]] std::optional<std::uint64_t> response_id(const std::string& line);

/// Decode one response line against the sweep configuration. For status 200
/// the points are validated (index within [begin, end), every index present
/// exactly once, axis values fmt15-equal to the grid's) and re-anchored to
/// the grid's exact doubles. Throws WireError on any violation; non-200
/// statuses decode to a ChunkResult carrying the status and error message.
[[nodiscard]] ChunkResult decode_sweep_chunk(const std::string& line,
                                             const sweep::SweepConfig& cfg);

}  // namespace stamp::dist
