#include "dist/coordinator.hpp"

#include "dist/wire.hpp"
#include "serve/socket.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace stamp::dist {
namespace {

/// The server rejects chunks above its own cap; stay under it.
constexpr std::size_t kMaxChunkPoints = 4096;

std::string request_line(std::uint64_t id, std::uint64_t begin,
                         std::uint64_t end) {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"op\":\"sweep_chunk\",\"begin\":" << begin
     << ",\"end\":" << end << "}\n";
  return os.str();
}

}  // namespace

std::vector<ShardPlan> plan_shards(const sweep::SweepConfig& cfg,
                                   const sweep::ResumeState* resume,
                                   std::size_t points_per_shard) {
  const std::size_t shard_size =
      std::clamp<std::size_t>(points_per_shard, 1, kMaxChunkPoints);
  std::vector<ShardPlan> shards;
  const std::size_t total = cfg.grid.size();
  std::size_t i = 0;
  while (i < total) {
    if (resume != nullptr && resume->completed(i)) {
      ++i;
      continue;
    }
    // Grow a contiguous run of missing points, capped at the shard size.
    std::size_t end = i + 1;
    while (end < total && end - i < shard_size &&
           (resume == nullptr || !resume->completed(end)))
      ++end;
    shards.push_back(ShardPlan{shards.size(), i, end});
    i = end;
  }
  return shards;
}

/// Everything the worker threads share; lives on run()'s stack.
struct Coordinator::Shared {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<ShardPlan> pending;
  std::size_t remaining = 0;  ///< shards not yet journaled
  FleetStats stats;
  std::atomic<std::uint64_t> next_id{1};
  sweep::Journal* journal = nullptr;
  std::exception_ptr fatal;  ///< first non-retryable failure, rethrown by run

  [[nodiscard]] bool done_locked() const noexcept {
    return remaining == 0 || fatal != nullptr;
  }
};

Coordinator::Coordinator(sweep::SweepConfig cfg, FleetOptions opts)
    : cfg_(std::move(cfg)), opts_(std::move(opts)) {
  if (opts_.ports.empty())
    throw std::invalid_argument("Coordinator: no worker ports");
}

FleetStats Coordinator::run(sweep::Journal& journal,
                            const sweep::ResumeState* resume) {
  Shared shared;
  shared.journal = &journal;
  {
    const std::vector<ShardPlan> shards =
        plan_shards(cfg_, resume, opts_.points_per_shard);
    shared.pending.assign(shards.begin(), shards.end());
    shared.remaining = shards.size();
    shared.stats.shards = shards.size();
  }

  const auto cancelled = [this]() noexcept {
    return opts_.cancel != nullptr && opts_.cancel->cancelled();
  };

  auto worker_loop = [&](std::size_t slot) {
    serve::Socket sock;
    int reconnects_left = opts_.reconnect_attempts;

    // Re-establish the connection, spending the worker's reconnect budget.
    const auto reconnect = [&]() -> bool {
      while (reconnects_left > 0 && !cancelled()) {
        --reconnects_left;
        sock = serve::Socket::connect_to(opts_.ports[slot]);
        if (sock.valid()) return true;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts_.reconnect_delay_ms));
      }
      return false;
    };

    for (;;) {
      ShardPlan shard;
      {
        std::unique_lock<std::mutex> lock(shared.mutex);
        // Wait for a shard, completion, or cancellation. The cancel token
        // has no wakeup hook, so waiters poll it.
        while (shared.pending.empty() && !shared.done_locked() && !cancelled())
          shared.cv.wait_for(lock, std::chrono::milliseconds(50));
        if (shared.done_locked() || cancelled()) return;
        shard = shared.pending.front();
        shared.pending.pop_front();
      }

      bool journaled = false;
      while (!journaled && !cancelled()) {
        if (!sock.valid() && !reconnect()) {
          // Worker dead (or cancelled mid-reconnect): hand the shard back.
          std::lock_guard<std::mutex> lock(shared.mutex);
          shared.pending.push_front(shard);
          if (!cancelled()) {
            shared.stats.reassigned += 1;
            shared.stats.worker_failures += 1;
          }
          shared.cv.notify_all();
          return;
        }
        if (opts_.on_dispatch) opts_.on_dispatch(shard.index, slot);
        const std::uint64_t id =
            shared.next_id.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(shared.mutex);
          shared.stats.dispatched += 1;
        }
        if (!sock.write_all(request_line(id, shard.begin, shard.end))) {
          sock.close();
          std::lock_guard<std::mutex> lock(shared.mutex);
          shared.stats.reconnects += 1;
          continue;
        }

        // Read until our response or the per-shard deadline.
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(opts_.response_timeout_ms);
        bool resend = false;
        while (!resend && !journaled) {
          if (cancelled()) break;
          const auto remaining_ms =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - std::chrono::steady_clock::now())
                  .count();
          if (remaining_ms <= 0) {
            sock.close();  // stale connection: whatever arrives is suspect
            resend = true;
            break;
          }
          std::string line;
          const auto status = sock.read_line(
              line, static_cast<int>(std::min<long long>(remaining_ms, 500)));
          if (status == serve::Socket::ReadStatus::Timeout) continue;
          if (status != serve::Socket::ReadStatus::Line) {
            sock.close();
            resend = true;
            break;
          }
          const std::optional<std::uint64_t> got = response_id(line);
          if (!got.has_value() || *got != id) continue;  // stale straggler
          ChunkResult chunk;
          try {
            chunk = decode_sweep_chunk(line, cfg_);
          } catch (...) {
            std::lock_guard<std::mutex> lock(shared.mutex);
            if (shared.fatal == nullptr) shared.fatal = std::current_exception();
            shared.cv.notify_all();
            return;
          }
          if (chunk.status == 503) {
            // Admission pushback: the worker is draining or overloaded.
            // Brief pause, then resend — the shard is still ours.
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
            resend = true;
            break;
          }
          if (chunk.status != 200) {
            // 400/500 are deterministic for this request: any worker would
            // answer the same, so retrying elsewhere cannot help.
            std::lock_guard<std::mutex> lock(shared.mutex);
            if (shared.fatal == nullptr)
              shared.fatal = std::make_exception_ptr(std::runtime_error(
                  "fleet: worker answered status " +
                  std::to_string(chunk.status) + " for shard [" +
                  std::to_string(shard.begin) + ", " +
                  std::to_string(shard.end) + "): " + chunk.error));
            shared.cv.notify_all();
            return;
          }
          if (chunk.begin != shard.begin || chunk.end != shard.end) {
            std::lock_guard<std::mutex> lock(shared.mutex);
            if (shared.fatal == nullptr)
              shared.fatal = std::make_exception_ptr(
                  WireError("fleet: response range mismatch for shard [" +
                            std::to_string(shard.begin) + ", " +
                            std::to_string(shard.end) + ")"));
            shared.cv.notify_all();
            return;
          }
          // Journal the shard; Journal::append is thread-safe and the
          // resume replay orders records by index, so append order across
          // shards does not matter.
          for (const sweep::SweepRecord& rec : chunk.records)
            shared.journal->append(rec);
          {
            std::lock_guard<std::mutex> lock(shared.mutex);
            shared.stats.completed += 1;
            shared.stats.records += chunk.records.size();
            shared.remaining -= 1;
            shared.cv.notify_all();
          }
          journaled = true;
        }
        if (resend) {
          std::lock_guard<std::mutex> lock(shared.mutex);
          shared.stats.reconnects += 1;
        }
      }
      if (!journaled) {
        // Cancelled mid-shard: put it back so a resume sees it as missing.
        std::lock_guard<std::mutex> lock(shared.mutex);
        shared.pending.push_front(shard);
        shared.cv.notify_all();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(opts_.ports.size());
  for (std::size_t slot = 0; slot < opts_.ports.size(); ++slot)
    threads.emplace_back(worker_loop, slot);
  for (std::thread& t : threads) t.join();

  if (shared.fatal != nullptr) std::rethrow_exception(shared.fatal);
  if (cancelled()) {
    shared.stats.cancelled = true;
    return shared.stats;
  }
  if (shared.remaining > 0)
    throw std::runtime_error(
        "fleet: all " + std::to_string(opts_.ports.size()) +
        " workers failed with " + std::to_string(shared.remaining) +
        " shard(s) outstanding (journal kept; rerun with --resume)");
  return shared.stats;
}

}  // namespace stamp::dist
